// Command costsense-vet runs the project's custom static-analysis
// suite (internal/analysis) over the module — the compile-time half of
// the simulator's determinism, allocation-free and concurrency
// contracts. Nine analyzers: detmap, detsource, hotpathalloc,
// hotpathtrans, arenaref, shardsync, lockguard, ctxflow and errflow;
// the last four ride on module-local interprocedural effect summaries
// (may a callee block, allocate, take a lock, spawn?). It is
// self-contained on the standard library, so it runs offline with the
// bare toolchain:
//
//	go run ./cmd/costsense-vet ./...
//	go run ./cmd/costsense-vet ./internal/sim ./internal/pq
//	go run ./cmd/costsense-vet -audit ./...
//
// Diagnostics print as file:line:col: analyzer: message and a nonzero
// exit status marks the tree dirty; CI runs it as a blocking lint job
// (scripts/lint.sh locally).
//
// -audit switches to inventory mode: instead of diagnostics it prints
// a byte-deterministic JSON report of every //costsense: suppression
// and marker directive in the analyzed packages — file, line, verb,
// justification — flagging stale suppressions (no analyzer consults
// them any more), missing justifications and unknown verbs, any of
// which exit 1. The nightly CI job archives the report; diffing two
// nightlies shows exactly which audited exceptions appeared or
// disappeared.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"costsense/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "costsense-vet:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	audit := false
	if len(args) > 0 && args[0] == "-audit" {
		audit = true
		args = args[1:]
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		return err
	}
	rels, err := expandPatterns(loader, moduleDir, args)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadPackages(rels)
	if err != nil {
		return err
	}
	tracker := analysis.NewTracker()
	diags := analysis.Check(loader, pkgs, tracker)
	if audit {
		return runAudit(loader, pkgs, tracker)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		rel, err := filepath.Rel(moduleDir, d.Pos.Filename)
		if err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// runAudit prints the directive inventory and exits 1 when any
// directive is stale, unjustified or unknown.
func runAudit(loader *analysis.Loader, pkgs []*analysis.Package, tracker *analysis.Tracker) error {
	report := analysis.BuildAudit(loader, pkgs, tracker)
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if report.Problems() {
		fmt.Fprintf(os.Stderr, "costsense-vet -audit: %d stale, %d unjustified, %d unknown directive(s)\n",
			report.Stale, report.Unjustified, report.Unknown)
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves ./... style patterns to module-relative
// package directories.
func expandPatterns(l *analysis.Loader, moduleDir string, patterns []string) ([]string, error) {
	all, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		switch {
		case pat == "...":
			for _, rel := range all {
				add(rel)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			matched := false
			for _, rel := range all {
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					add(rel)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matched no packages", pat)
			}
		default:
			if _, err := os.Stat(filepath.Join(moduleDir, filepath.FromSlash(pat))); err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			add(pat)
		}
	}
	return out, nil
}
