package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"text/tabwriter"
)

// TestExperimentsRunClean executes every experiment function once,
// catching panics and empty output — the harness itself is part of the
// deliverable.
func TestExperimentsRunClean(t *testing.T) {
	for _, e := range experiments() {
		t.Run(e.id, func(t *testing.T) {
			var buf bytes.Buffer
			w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
			e.run(w)
			w.Flush()
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("experiment %s produced almost no output: %q", e.id, out)
			}
			if !strings.Contains(out, "\t") && !strings.Contains(out, "  ") {
				t.Fatalf("experiment %s produced no table", e.id)
			}
		})
	}
}

// TestParallelDriversMatchSerial pins the RunTrials acceptance
// criterion: the experiments that fan their cases across workers must
// print byte-identical tables whether the pool has one worker or many.
func TestParallelDriversMatchSerial(t *testing.T) {
	parallelized := map[string]bool{"fig2": true, "fig3": true, "fig4": true, "lowerbound": true}
	render := func(e experiment) string {
		var buf bytes.Buffer
		w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
		e.run(w)
		w.Flush()
		return buf.String()
	}
	for _, e := range experiments() {
		if !parallelized[e.id] {
			continue
		}
		t.Run(e.id, func(t *testing.T) {
			old := runtime.GOMAXPROCS(1)
			serial := render(e)
			runtime.GOMAXPROCS(4)
			parallel := render(e)
			runtime.GOMAXPROCS(old)
			if serial != parallel {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}

func TestVerifyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification gate")
	}
	if err := verifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIDispatch(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := run(nil); err == nil {
		t.Fatal("no args should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should error")
	}
}

// TestObservabilityFlags runs a driver end to end with -trace and
// -metrics and checks both artifacts are written and parse as JSON.
func TestObservabilityFlags(t *testing.T) {
	defer func() { instr = instruments{} }() // don't leak flag state into other tests
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	if err := run([]string{"-trace", trace, "-metrics", metrics, "exp", "fig1"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, metrics} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s is not valid JSON: %v", p, err)
		}
	}
	var tr struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	data, _ := os.ReadFile(trace)
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	slices := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("trace has no message slices")
	}
	// A second identical invocation must produce byte-identical exports.
	trace2 := filepath.Join(dir, "trace2.json")
	metrics2 := filepath.Join(dir, "metrics2.json")
	if err := run([]string{"-trace", trace2, "-metrics", metrics2, "exp", "fig1"}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{trace, trace2}, {metrics, metrics2}} {
		a, _ := os.ReadFile(pair[0])
		b, _ := os.ReadFile(pair[1])
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ between identical invocations", pair[0], pair[1])
		}
	}
}

func TestRatioFormatting(t *testing.T) {
	if got := ratio(6, 3); got != "2.00" {
		t.Fatalf("ratio(6,3) = %s", got)
	}
	if got := ratio(1, 0); got != "-" {
		t.Fatalf("ratio(1,0) = %s", got)
	}
}
