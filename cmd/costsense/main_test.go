package main

import (
	"bytes"
	"strings"
	"testing"
	"text/tabwriter"
)

// TestExperimentsRunClean executes every experiment function once,
// catching panics and empty output — the harness itself is part of the
// deliverable.
func TestExperimentsRunClean(t *testing.T) {
	for _, e := range experiments() {
		t.Run(e.id, func(t *testing.T) {
			var buf bytes.Buffer
			w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
			e.run(w)
			w.Flush()
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("experiment %s produced almost no output: %q", e.id, out)
			}
			if !strings.Contains(out, "\t") && !strings.Contains(out, "  ") {
				t.Fatalf("experiment %s produced no table", e.id)
			}
		})
	}
}

func TestVerifyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification gate")
	}
	if err := verifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIDispatch(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := run(nil); err == nil {
		t.Fatal("no args should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestRatioFormatting(t *testing.T) {
	if got := ratio(6, 3); got != "2.00" {
		t.Fatalf("ratio(6,3) = %s", got)
	}
	if got := ratio(1, 0); got != "-" {
		t.Fatalf("ratio(1,0) = %s", got)
	}
}
