package main

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"text/tabwriter"

	"costsense"
)

// chaosSpec is the parsed -faults flag: the fault regime of the chaos
// experiment's headline run.
type chaosSpec struct {
	drop, dup     float64
	crashes, down int
	seed          int64
}

// chaosCfg holds the active spec; run() overwrites it when -faults is
// given.
var chaosCfg = chaosSpec{drop: 0.10, dup: 0.02, crashes: 1, down: 1, seed: 7}

// parseFaultSpec parses "drop=0.1,dup=0.02,crash=1,down=2,seed=7";
// omitted keys keep their defaults.
func parseFaultSpec(s string) (chaosSpec, error) {
	sp := chaosCfg
	if s == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return sp, fmt.Errorf("faults: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "drop":
			sp.drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			sp.dup, err = strconv.ParseFloat(v, 64)
		case "crash":
			sp.crashes, err = strconv.Atoi(v)
		case "down":
			sp.down, err = strconv.Atoi(v)
		case "seed":
			sp.seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return sp, fmt.Errorf("faults: unknown key %q (have drop, dup, crash, down, seed)", k)
		}
		if err != nil {
			return sp, fmt.Errorf("faults: bad %s value %q: %v", k, v, err)
		}
	}
	if sp.drop < 0 || sp.drop >= 1 || sp.dup < 0 || sp.dup >= 1 {
		return sp, fmt.Errorf("faults: drop and dup must be in [0, 1)")
	}
	if sp.crashes < 0 || sp.down < 0 {
		return sp, fmt.Errorf("faults: crash and down must be >= 0")
	}
	return sp, nil
}

// chaosOutcome classifies one faulty run: "ok" (exact fault-free
// result), "degraded" (terminated with a different result), "reported"
// (returned a protocol-incompleteness error), or "event-limit"
// (stopped by the watchdog). A hang is the one outcome the harness
// forbids — the event limit converts it into a report.
func chaosOutcome(err error, sameResult bool) string {
	if err != nil {
		var el *costsense.ErrEventLimit
		if errors.As(err, &el) {
			return "event-limit"
		}
		return "reported"
	}
	if sameResult {
		return "ok"
	}
	return "degraded"
}

// sameTree reports whether two sorted MST edge lists are identical.
func sameTree(a, b *costsense.MSTResult) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// expChaos is the chaos-run harness: protocols wrapped in the reliable
// layer on deliberately faulty networks. The headline run follows the
// -faults spec; the sweep crosses drop rates with mid-run fail-stop
// crashes over GHS and measures γ_w's reliability overhead versus drop
// rate. Every cell must terminate on its own or report (incomplete
// protocol / event limit) — graceful degradation, never a hang.
func expChaos(w *tabwriter.Writer) {
	sp := chaosCfg
	const watchdog = 2_000_000

	g := costsense.RandomConnected(20, 45, costsense.UniformWeights(32, sp.seed), sp.seed)
	golden := must(costsense.RunGHS(g))

	fmt.Fprintln(w, "ghs run\tdrop\tdup\tcrashes\toutcome\tcomm\tretx\tgiveups\tc/c₀")
	plan := costsense.RandomFaultPlan(g, sp.seed, sp.drop, sp.dup, sp.crashes, sp.down, 200)
	opt, layer := costsense.InstallReliable(costsense.ReliableConfig{})
	opts := append([]costsense.Option{opt, costsense.WithFaults(plan),
		costsense.WithSeed(sp.seed), costsense.WithEventLimit(watchdog)}, instrOpts(g)...)
	res, err := costsense.RunGHS(g, opts...)
	comm := int64(0)
	if err == nil {
		comm = res.Stats.Comm
	}
	fmt.Fprintf(w, "spec\t%.2f\t%.2f\t%d\t%s\t%d\t%d\t%d\t%s\n",
		sp.drop, sp.dup, sp.crashes, chaosOutcome(err, err == nil && sameTree(res, golden)),
		comm, layer.Retransmits(), layer.GiveUps(), ratio(comm, golden.Stats.Comm))

	// Sweep: drop rate x mid-run fail-stop crashes. Crash-free cells
	// must reproduce the exact fault-free tree through the reliable
	// layer; crashed cells may degrade but must terminate or report.
	drops := []float64{0, 0.05, 0.10, 0.20}
	crashCounts := []int{0, 1, 2}
	rows := must(runTrials(len(drops)*len(crashCounts), func(i int) (string, error) {
		d := drops[i/len(crashCounts)]
		c := crashCounts[i%len(crashCounts)]
		plan := costsense.FaultPlan{Drop: d, Dup: 0.02}
		for k := 0; k < c; k++ {
			// Non-root victims (never node 0), staggered mid-run.
			plan.Crashes = append(plan.Crashes,
				costsense.Crash{Node: costsense.NodeID(g.N() - 1 - k), At: int64(30 * (k + 1))})
		}
		opt, layer := costsense.InstallReliable(costsense.ReliableConfig{})
		res, err := costsense.RunGHS(g, opt, costsense.WithFaults(plan),
			costsense.WithSeed(sp.seed), costsense.WithEventLimit(watchdog))
		outcome := chaosOutcome(err, err == nil && sameTree(res, golden))
		if c == 0 && outcome != "ok" {
			return "", fmt.Errorf("crash-free cell drop=%.2f did not reproduce the fault-free tree: %s", d, outcome)
		}
		comm := int64(0)
		if err == nil {
			comm = res.Stats.Comm
		}
		return fmt.Sprintf("sweep\t%.2f\t0.02\t%d\t%s\t%d\t%d\t%d\t%s\n",
			d, c, outcome, comm, layer.Retransmits(), layer.GiveUps(),
			ratio(comm, golden.Stats.Comm)), nil
	}))
	for _, r := range rows {
		fmt.Fprint(w, r)
	}

	// γ_w reliability overhead: the synchronizer's SPT workload must
	// stay exact under drops, at a measured extra c_π over the
	// fault-free unwrapped run (acks + retransmissions).
	g2 := costsense.RandomConnected(14, 30, costsense.UniformWeights(16, 3), 3)
	refProcs := costsense.NewSPTSyncProcs(g2, 0)
	ref := must(costsense.SyncRun(g2, refProcs, 1_000_000))
	want := costsense.SPTSyncDists(refProcs)
	base := func() *costsense.SynchOverhead {
		procs := costsense.NewSPTSyncProcs(g2, 0)
		return must(costsense.RunSynchGammaW(g2, procs, ref.Stats.Pulses+2, 2,
			costsense.WithSeed(sp.seed)))
	}()

	fmt.Fprintln(w, "\nγ_w spt\tdrop\toutcome\tcomm\tretx\tc/c₀")
	gammaRows := must(runTrials(len(drops), func(i int) (string, error) {
		d := drops[i]
		procs := costsense.NewSPTSyncProcs(g2, 0)
		opt, layer := costsense.InstallReliable(costsense.ReliableConfig{})
		ov, err := costsense.RunSynchGammaW(g2, procs, ref.Stats.Pulses+2, 2, opt,
			costsense.WithFaults(costsense.FaultPlan{Drop: d, Dup: 0.02}),
			costsense.WithSeed(sp.seed), costsense.WithEventLimit(20_000_000))
		exact := err == nil
		if exact {
			dists := costsense.SPTSyncDists(procs)
			for v := range want {
				if dists[v] != want[v] {
					exact = false
					break
				}
			}
		}
		outcome := chaosOutcome(err, exact)
		if outcome != "ok" {
			return "", fmt.Errorf("γ_w at drop=%.2f must stay exact through the reliable layer, got %s", d, outcome)
		}
		return fmt.Sprintf("γ_w spt\t%.2f\t%s\t%d\t%d\t%s\n",
			d, outcome, ov.Stats.Comm, layer.Retransmits(),
			ratio(ov.Stats.Comm, base.Stats.Comm)), nil
	}))
	for _, r := range gammaRows {
		fmt.Fprint(w, r)
	}

	fmt.Fprintln(w, "\nreliable layer: crash-free cells reproduce exact fault-free results; crashed cells")
	fmt.Fprintln(w, "degrade to terminate-or-report (event-limit watchdog) — no cell may hang")
}
