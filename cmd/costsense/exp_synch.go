package main

import (
	"fmt"
	"math"
	"text/tabwriter"

	"costsense"
)

// expSynch reproduces §4 / Lemma 4.8: per-pulse overhead of the
// synchronizers, sweeping n and the γ_w cluster parameter k. The
// protocol under synchronization is the synchronous SPT flood of §9.1.
func expSynch(w *tabwriter.Writer) {
	fmt.Fprintln(w, "-- sweep n (k=2), dense graphs with heavy edges --")
	fmt.Fprintln(w, "n\t𝓔\tC(α)/pulse\tC(β)/pulse\tC(γw)/pulse\tC(γw)/(kn·logW)\tT(α)/pulse\tT(γw)/pulse")
	for _, n := range []int{16, 24, 32, 48} {
		g := costsense.Complete(n, costsense.UniformWeights(64, int64(n)))
		pulses := costsense.Diameter(g) + 2
		a := must(costsense.RunSynchAlpha(g, costsense.NewSPTSyncProcs(g, 0), pulses))
		b := must(costsense.RunSynchBeta(g, costsense.NewSPTSyncProcs(g, 0), pulses))
		c := must(costsense.RunSynchGammaW(g, costsense.NewSPTSyncProcs(g, 0), pulses, 2, instrOpts(g)...))
		logW := math.Log2(64)
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%.0f\t%.0f\n",
			n, g.TotalWeight(), a.CommPerPulse, b.CommPerPulse, c.CommPerPulse,
			c.CommPerPulse/(2*float64(n)*logW), a.TimePerPulse, c.TimePerPulse)
	}
	fmt.Fprintln(w, "\n-- sweep k (γ_w growth factor), dense graph n=48 --")
	fmt.Fprintln(w, "k\tC(γw)/pulse\tT(γw)/pulse")
	g := costsense.Complete(48, costsense.UniformWeights(32, 9))
	pulses := costsense.Diameter(g) + 2
	for _, k := range []int{2, 4, 8, 16, 32} {
		c := must(costsense.RunSynchGammaW(g, costsense.NewSPTSyncProcs(g, 0), pulses, k))
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", k, c.CommPerPulse, c.TimePerPulse)
	}
	fmt.Fprintln(w, "\npaper: C(γw) = O(kn·logW) per pulse vs C(α) = O(𝓔);")
	fmt.Fprintln(w, "γ_w undercuts α as graphs get dense, and k trades comm for time")
}
