package main

import (
	"fmt"
	"math"

	"costsense"
)

// verifyAll re-runs a compact version of every experiment and asserts
// the paper's qualitative predictions as hard pass/fail checks — a
// CI-style gate on the reproduction (`costsense verify`).
func verifyAll() error {
	type check struct {
		name string
		run  func() error
	}
	checks := []check{
		{"E1 global function at O(𝓥)/O(𝓓)", func() error {
			g := costsense.RandomConnected(64, 180, costsense.UniformWeights(24, 1), 1)
			in := make([]int64, g.N())
			var want int64
			for i := range in {
				in[i] = int64(i)
				want += int64(i)
			}
			res, _, err := costsense.ComputeViaSLT(g, 0, 2, in, costsense.Sum)
			if err != nil {
				return err
			}
			if res.Value != want {
				return fmt.Errorf("wrong value %d", res.Value)
			}
			if res.Stats.Comm > 4*costsense.MSTWeight(g) {
				return fmt.Errorf("comm %d above 4𝓥", res.Stats.Comm)
			}
			if res.Stats.FinishTime > 10*costsense.Diameter(g) {
				return fmt.Errorf("time %d above 10𝓓", res.Stats.FinishTime)
			}
			return nil
		}},
		{"E2 SLT bounds over q", func() error {
			g := costsense.ShallowLightGap(96)
			hub := costsense.NodeID(g.N() - 1)
			for _, q := range []int64{1, 2, 8} {
				tree, _, err := costsense.BuildSLT(g, hub, q)
				if err != nil {
					return err
				}
				if !costsense.IsShallowLight(g, tree, q) {
					return fmt.Errorf("q=%d violates SLT bounds", q)
				}
			}
			return nil
		}},
		{"E4 γ* beats α* by ≥100x when d<<W", func() error {
			g := costsense.HeavyChordRing(48, 50_000)
			a, err := costsense.RunClockAlpha(g, 8)
			if err != nil {
				return err
			}
			c, err := costsense.RunClockGamma(g, 8)
			if err != nil {
				return err
			}
			if err := c.CausalOK(g); err != nil {
				return err
			}
			if 100*c.MaxDelay() > a.MaxDelay() {
				return fmt.Errorf("γ* %d vs α* %d: gap below 100x", c.MaxDelay(), a.MaxDelay())
			}
			return nil
		}},
		{"E5 γ_w undercuts α on dense graphs", func() error {
			g := costsense.Complete(32, costsense.UniformWeights(64, 2))
			pulses := costsense.Diameter(g) + 2
			a, err := costsense.RunSynchAlpha(g, costsense.NewSPTSyncProcs(g, 0), pulses)
			if err != nil {
				return err
			}
			c, err := costsense.RunSynchGammaW(g, costsense.NewSPTSyncProcs(g, 0), pulses, 2)
			if err != nil {
				return err
			}
			if c.CommPerPulse*2 > a.CommPerPulse {
				return fmt.Errorf("C(γw)=%.0f vs C(α)=%.0f: gap below 2x", c.CommPerPulse, a.CommPerPulse)
			}
			return nil
		}},
		{"E6 controller caps a runaway at the threshold", func() error {
			g := costsense.Ring(12, costsense.ConstWeights(3))
			procs := make([]costsense.Process, g.N())
			for v := range procs {
				procs[v] = runawayProc{}
			}
			res, _, err := costsense.RunControlled(g, procs, 0, 1000, costsense.WithEventLimit(10_000_000))
			if err != nil {
				return err
			}
			if !res.Exhausted || res.Consumed > 1000 {
				return fmt.Errorf("not capped: exhausted=%v consumed=%d", res.Exhausted, res.Consumed)
			}
			logc := math.Log2(1000)
			if res.Stats.Comm > int64(8*1000*logc*logc) {
				return fmt.Errorf("total damage %d above O(c log²c)", res.Stats.Comm)
			}
			return nil
		}},
		{"E7 CONhybrid winner flips with the regime", func() error {
			tree := costsense.RandomConnected(40, 39, costsense.UniformWeights(16, 3), 3)
			r1, err := costsense.RunCONHybrid(tree, 0)
			if err != nil {
				return err
			}
			if r1.Winner != "dfs" {
				return fmt.Errorf("on a tree winner=%s", r1.Winner)
			}
			r2, err := costsense.RunCONHybrid(costsense.HardConnectivity(24, 24), 0)
			if err != nil {
				return err
			}
			if r2.Winner != "mst" {
				return fmt.Errorf("on G_n winner=%s", r2.Winner)
			}
			return nil
		}},
		{"E8 G_n separates the scaling regimes by ≥100x", func() error {
			rep, err := costsense.RunGnExperiment(32, 32)
			if err != nil {
				return err
			}
			if rep.FloodComm < 100*rep.HybridComm {
				return fmt.Errorf("flood %d vs hybrid %d: gap below 100x", rep.FloodComm, rep.HybridComm)
			}
			return nil
		}},
		{"E9 all MST algorithms agree with Kruskal", func() error {
			g := costsense.RandomConnected(48, 130, costsense.UniformWeights(64, 4), 4)
			vv := costsense.MSTWeight(g)
			ghs, err := costsense.RunGHS(g)
			if err != nil {
				return err
			}
			fast, err := costsense.RunMSTFast(g)
			if err != nil {
				return err
			}
			hy, err := costsense.RunMSTHybrid(g, 0)
			if err != nil {
				return err
			}
			if ghs.Weight() != vv || fast.Weight() != vv || hy.Result.Weight() != vv {
				return fmt.Errorf("MST disagreement")
			}
			return nil
		}},
		{"E10 all SPT algorithms agree with Dijkstra", func() error {
			g := costsense.Grid(6, 6, costsense.UniformWeights(20, 5))
			want := costsense.Dijkstra(g, 0)
			recur, err := costsense.RunSPTRecur(g, 0, costsense.DefaultStripLen(g, 0))
			if err != nil {
				return err
			}
			synch, err := costsense.RunSPTSynch(g, 0, 2)
			if err != nil {
				return err
			}
			for v := range want.Dist {
				if recur.Dist[v] != want.Dist[v] || synch.Dist[v] != want.Dist[v] {
					return fmt.Errorf("SPT disagreement at %d", v)
				}
			}
			return nil
		}},
		{"E11 strip sync cost falls with ℓ", func() error {
			g := costsense.Grid(7, 7, costsense.UniformWeights(12, 6))
			r1, err := costsense.RunSPTRecur(g, 0, 1)
			if err != nil {
				return err
			}
			r2, err := costsense.RunSPTRecur(g, 0, 16)
			if err != nil {
				return err
			}
			if r2.Stats.Comm >= r1.Stats.Comm {
				return fmt.Errorf("strip ℓ=16 comm %d not below ℓ=1 comm %d", r2.Stats.Comm, r1.Stats.Comm)
			}
			return nil
		}},
		{"E12 tree edge-cover has the Def 3.1 properties", func() error {
			g := costsense.HeavyChordRing(64, 100_000)
			tc := costsense.NewTreeCover(g)
			if !tc.CoversAllEdges() {
				return fmt.Errorf("cover misses an edge")
			}
			d := costsense.MaxNeighborDist(g)
			logn := int64(math.Ceil(math.Log2(float64(g.N()))))
			if tc.MaxDepth() > 4*d*logn {
				return fmt.Errorf("depth %d above 4·d·logn", tc.MaxDepth())
			}
			return nil
		}},
		{"E13 SLT dominates MST/SPT for β", func() error {
			g := costsense.ShallowLightGap(96)
			hub := costsense.NodeID(g.N() - 1)
			pulses := costsense.Diameter(g) + 2
			sltTree, _, err := costsense.BuildSLT(g, hub, 2)
			if err != nil {
				return err
			}
			ovSLT, err := costsense.RunSynchBetaTree(g, costsense.NewSPTSyncProcs(g, hub), pulses, sltTree)
			if err != nil {
				return err
			}
			ovMST, err := costsense.RunSynchBetaTree(g, costsense.NewSPTSyncProcs(g, hub), pulses, costsense.PrimTree(g, hub))
			if err != nil {
				return err
			}
			ovSPT, err := costsense.RunSynchBetaTree(g, costsense.NewSPTSyncProcs(g, hub), pulses, costsense.Dijkstra(g, hub).Tree(g))
			if err != nil {
				return err
			}
			if ovSLT.TimePerPulse*2 > ovMST.TimePerPulse {
				return fmt.Errorf("SLT time %.0f not well below MST %.0f", ovSLT.TimePerPulse, ovMST.TimePerPulse)
			}
			if ovSLT.CommPerPulse*2 > ovSPT.CommPerPulse {
				return fmt.Errorf("SLT comm %.0f not well below SPT %.0f", ovSLT.CommPerPulse, ovSPT.CommPerPulse)
			}
			return nil
		}},
		{"E14 routing: SLT tables light and shallow", func() error {
			g := costsense.ShallowLightGap(64)
			hub := costsense.NodeID(g.N() - 1)
			sltTree, _, err := costsense.BuildSLT(g, hub, 2)
			if err != nil {
				return err
			}
			r, err := costsense.NewTreeRouter(g, sltTree)
			if err != nil {
				return err
			}
			if r.TableWeight() > 2*costsense.MSTWeight(g) {
				return fmt.Errorf("table weight %d above 2𝓥", r.TableWeight())
			}
			maxHub, err := r.MaxCostFrom(hub)
			if err != nil {
				return err
			}
			if maxHub > 5*costsense.Diameter(g) {
				return fmt.Errorf("hub route %d above 5𝓓", maxHub)
			}
			return nil
		}},
	}
	failed := 0
	for _, c := range checks {
		if err := c.run(); err != nil {
			failed++
			fmt.Printf("FAIL  %-45s %v\n", c.name, err)
			continue
		}
		fmt.Printf("ok    %s\n", c.name)
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d verification checks failed", failed, len(checks))
	}
	fmt.Printf("\nall %d reproduction checks passed\n", len(checks))
	return nil
}

// runawayProc answers every message forever.
type runawayProc struct{}

func (runawayProc) Init(ctx costsense.Context) {
	if ctx.ID() == 0 {
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, 0)
		}
	}
}

func (runawayProc) Handle(ctx costsense.Context, from costsense.NodeID, _ costsense.Message) {
	ctx.Send(from, 0)
}
