package main

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only behind -http
	"os"
	"path/filepath"
	"strings"
	"time"

	"costsense"
)

// instruments holds the observability configuration parsed from the
// global flags, plus the per-experiment observer state. One experiment
// gets at most one instrumented run: the first run site that calls
// instrOpts claims the observers, so `-trace` on a sweep records a
// representative execution, not an arbitrary interleaving of all of
// them.
type instruments struct {
	tracePath    string // -trace: Chrome trace_event JSON output file
	metricsPath  string // -metrics: per-edge/per-class metrics JSON output file
	critpathPath string // -critpath: critical-path analysis JSON output file
	progress     bool   // -progress: per-sweep progress lines on stderr
	httpAddr     string // -http: expvar + pprof debug server address
	shards       int    // -shards: run simulations on the sharded engine
	multi        bool   // running several experiments: tag output files by id

	expID   string
	armed   bool
	trace   *costsense.TraceObserver
	metrics *costsense.MetricsObserver
	causal  *costsense.CausalObserver
}

var instr instruments

// Sweep progress gauges, served at /debug/vars when -http is set and
// updated by the -progress sink.
var (
	trialsDone  = expvar.NewInt("costsense_trials_done")
	trialsTotal = expvar.NewInt("costsense_trials_total")
)

// begin resets the per-experiment observer slot.
func (in *instruments) begin(expID string) {
	in.expID = expID
	in.armed = in.tracePath != "" || in.metricsPath != "" || in.critpathPath != ""
	in.trace = nil
	in.metrics = nil
	in.causal = nil
}

// instrOpts claims the current experiment's observer slot for a run
// over g and returns the simulator options attaching the requested
// observers; later calls (and runs without -trace/-metrics) get nil.
// Call it only from serial driver code, never inside RunTrials
// closures — first-wins under parallel scheduling would record
// whichever trial a worker reached first.
func instrOpts(g *costsense.Graph) []costsense.Option {
	var opts []costsense.Option
	if instr.shards > 1 {
		// The sharded engine is byte-identical to the serial one, so
		// every table and artifact is unchanged; only wall-clock (on a
		// multi-core host) moves.
		opts = append(opts, costsense.WithShards(instr.shards))
	}
	if !instr.armed {
		return opts
	}
	instr.armed = false
	obs := make([]costsense.Observer, 0, 3)
	if instr.metricsPath != "" {
		instr.metrics = costsense.NewMetricsObserver(g)
		obs = append(obs, instr.metrics)
	}
	if instr.tracePath != "" {
		instr.trace = costsense.NewTraceObserver(g)
		obs = append(obs, instr.trace)
	}
	if instr.critpathPath != "" {
		instr.causal = costsense.NewCausalObserver(g)
		obs = append(obs, instr.causal)
	}
	return append(opts, costsense.WithObserver(costsense.NewTeeObserver(obs...)))
}

// flush writes the experiment's recorded artifacts to the -trace and
// -metrics files.
func (in *instruments) flush() error {
	if in.trace != nil {
		if err := writeArtifact(in.outPath(in.tracePath), "trace", in.trace.Export); err != nil {
			return err
		}
	}
	if in.metrics != nil {
		if err := writeArtifact(in.outPath(in.metricsPath), "metrics", in.metrics.WriteJSON); err != nil {
			return err
		}
	}
	if in.causal != nil {
		if err := writeArtifact(in.outPath(in.critpathPath), "critical path", in.causal.WriteJSON); err != nil {
			return err
		}
	}
	if in.armed {
		// -trace/-metrics was set but the experiment never ran a
		// simulation (e.g. the pure graph-theory experiments).
		fmt.Fprintf(os.Stderr, "costsense: experiment %s has no instrumentable simulation run\n", in.expID)
		in.armed = false
	}
	return nil
}

// outPath tags the configured output path with the experiment id when
// several experiments run in one invocation, so `exp all -trace
// out.json` writes out.clock.json, out.fig1.json, ...
func (in *instruments) outPath(p string) string {
	if !in.multi {
		return p
	}
	ext := filepath.Ext(p)
	return strings.TrimSuffix(p, ext) + "." + in.expID + ext
}

func writeArtifact(path, kind string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		//costsense:err-ok the write error is the one worth reporting; Close here only releases the fd
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "costsense: wrote %s to %s\n", kind, path)
	return nil
}

// runTrials is the drivers' RunTrials: identical results, plus the
// -progress sink (stderr lines and the expvar gauges) when enabled.
func runTrials[T any](n int, trial func(int) (T, error)) ([]T, error) {
	var sink costsense.TrialSink
	if instr.progress {
		p := costsense.NewProgressMeter(os.Stderr, instr.expID, 0)
		p.OnDone = func(done, total int) {
			trialsDone.Set(int64(done))
			trialsTotal.Set(int64(total))
		}
		sink = p
	}
	return costsense.RunTrialsObserved(n, trial, sink)
}

// serveDebug serves expvar (/debug/vars) and pprof (/debug/pprof)
// until ctx is cancelled, then shuts the listener down gracefully so
// an in-flight scrape isn't cut mid-response. Opt-in via -http;
// telemetry only.
func serveDebug(ctx context.Context, addr string) {
	fmt.Fprintf(os.Stderr, "costsense: serving /debug/vars and /debug/pprof on %s\n", addr)
	srv := &http.Server{Addr: addr, Handler: http.DefaultServeMux}
	go func() {
		<-ctx.Done()
		//costsense:ctx-ok grace window: the parent ctx is already cancelled; the 2s budget must outlive it
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "costsense: debug server shutdown:", err)
			// Grace window elapsed with a scrape still in flight: cut
			// the remaining connections so the process can exit.
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "costsense: debug server close:", err)
			}
		}
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "costsense: debug server:", err)
	}
}
