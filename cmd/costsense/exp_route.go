package main

import (
	"fmt"
	"text/tabwriter"

	"costsense"
)

// expRouting measures the routing application (§1.1's motivating
// domain): next-hop tables over SPT / MST / SLT trees, comparing table
// weight (the cost of maintaining the state) against route quality.
func expRouting(w *tabwriter.Writer) {
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		{"bkj-sep-64", costsense.ShallowLightGap(64)},
		{"grid-7x7", costsense.Grid(7, 7, costsense.UniformWeights(16, 3))},
		{"rand-48", costsense.RandomConnected(48, 120, costsense.UniformWeights(24, 4), 4)},
	}
	fmt.Fprintln(w, "graph\ttree\ttable w(T)\tw(T)/𝓥\tmax hub route\t/𝓓\tmean stretch\tmax stretch")
	for _, c := range cases {
		g := c.g
		hub := costsense.NodeID(g.N() - 1)
		vv := costsense.MSTWeight(g)
		dd := costsense.Diameter(g)
		sltTree, _, err := costsense.BuildSLT(g, hub, 2)
		if err != nil {
			panic(err)
		}
		trees := []struct {
			name string
			t    *costsense.Tree
		}{
			{"SPT", costsense.Dijkstra(g, hub).Tree(g)},
			{"MST", costsense.PrimTree(g, hub)},
			{"SLT(q=2)", sltTree},
		}
		for _, tc := range trees {
			r, err := costsense.NewTreeRouter(g, tc.t)
			if err != nil {
				panic(err)
			}
			maxHub := must(r.MaxCostFrom(hub))
			st := must(r.Stretch())
			fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%d\t%.2f\t%.2f\t%.1f\n",
				c.name, tc.name, r.TableWeight(), float64(r.TableWeight())/float64(vv),
				maxHub, float64(maxHub)/float64(dd), st.Mean, st.Max)
		}
	}
	fmt.Fprintln(w, "\nprediction: SLT tables weigh O(𝓥) like the MST's while keeping hub routes")
	fmt.Fprintln(w, "within (2q+1)𝓓 like the SPT's — neither extreme achieves both")
}
