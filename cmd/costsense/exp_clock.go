package main

import (
	"fmt"
	"math"
	"text/tabwriter"

	"costsense"
)

// expClock reproduces §3: pulse delays of the three clock
// synchronizers on graphs with d << W, where γ* should beat α* by a
// factor of ~W/(d log² n).
func expClock(w *tabwriter.Writer) {
	const pulses = 10
	fmt.Fprintln(w, "graph\tn\tW\td\t𝓓\tα* delay\tβ* delay\tγ* delay\tγ*/(d·log²n)\tα*/γ*")
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		{"chord-32-1e3", costsense.HeavyChordRing(32, 1_000)},
		{"chord-32-1e4", costsense.HeavyChordRing(32, 10_000)},
		{"chord-32-1e5", costsense.HeavyChordRing(32, 100_000)},
		{"chord-64-1e4", costsense.HeavyChordRing(64, 10_000)},
		{"chord-128-1e4", costsense.HeavyChordRing(128, 10_000)},
		{"grid-8x8", costsense.Grid(8, 8, costsense.UniformWeights(64, 7))},
	}
	for _, c := range cases {
		g := c.g
		alpha := must(costsense.RunClockAlpha(g, pulses))
		beta := must(costsense.RunClockBeta(g, pulses))
		gamma := must(costsense.RunClockGamma(g, pulses, instrOpts(g)...))
		for _, r := range []*costsense.ClockResult{alpha, beta, gamma} {
			if err := r.CausalOK(g); err != nil {
				panic(err)
			}
		}
		d := costsense.MaxNeighborDist(g)
		logn := math.Log2(float64(g.N()))
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.1fx\n",
			c.name, g.N(), g.MaxWeight(), d, costsense.Diameter(g),
			alpha.MaxDelay(), beta.MaxDelay(), gamma.MaxDelay(),
			float64(gamma.MaxDelay())/(float64(d)*logn*logn),
			float64(alpha.MaxDelay())/float64(gamma.MaxDelay()))
	}
	fmt.Fprintln(w, "\npaper: α* = O(W), β* = Ω(𝓓), γ* = O(d·log²n); γ* wins by ~W/(d log²n) when d << W")

	fmt.Fprintln(w, "\n-- γ* under capacitated links (the paper's congestion model) --")
	fmt.Fprintln(w, "graph\tγ* delay (plain)\tγ* delay (congested)\tcongestion factor\tedge load (cover)")
	for _, c := range []struct {
		name string
		g    *costsense.Graph
	}{
		{"chord-64", costsense.HeavyChordRing(64, 100_000)},
		{"grid-8x8", costsense.Grid(8, 8, costsense.UniformWeights(10, 3))},
		{"rand-64", costsense.RandomConnected(64, 160, costsense.UniformWeights(24, 9), 9)},
	} {
		plain := must(costsense.RunClockGamma(c.g, pulses))
		cong := must(costsense.RunClockGamma(c.g, pulses, costsense.WithCongestion()))
		if err := cong.CausalOK(c.g); err != nil {
			panic(err)
		}
		load := costsense.NewTreeCover(c.g).MaxEdgeLoad(c.g)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\n", c.name, plain.MaxDelay(), cong.MaxDelay(),
			float64(cong.MaxDelay())/float64(plain.MaxDelay()), load)
	}
	fmt.Fprintln(w, "\nwith serialization on, the delay grows with the cover's edge load (the")
	fmt.Fprintln(w, "paper's O(log n) congestion factor) and still never approaches W")
}
