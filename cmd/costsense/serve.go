package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"costsense/internal/serve"
)

// registerDebugMetrics mounts h at /debug/metrics on the default mux
// exactly once per process; later calls (a second serve in one test
// binary) swap the backing handler instead of re-registering, which
// would panic the mux.
var (
	debugMetricsOnce sync.Once
	debugMetricsCur  atomic.Pointer[http.Handler]
)

func registerDebugMetrics(h http.Handler) {
	debugMetricsCur.Store(&h)
	debugMetricsOnce.Do(func() {
		http.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			(*debugMetricsCur.Load()).ServeHTTP(w, r)
		})
	})
}

// runServe runs `costsense serve`: the persistent experiment service.
// It blocks until the listener fails or the process receives SIGINT or
// SIGTERM; on a signal it stops admitting jobs, drains the queue
// within -drain, and exits 0. A second signal during the drain
// journals failed(reason=killed) for in-flight work (when -journal is
// set) and exits 1 — the next start on the same journal reports the
// kill instead of re-running blind.
//
//costsense:ctx-ok subcommand root: the signal context created below is the process's cancellation source
func runServe(args []string) error {
	fs := flag.NewFlagSet("costsense serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen `address` for the experiment API")
	queueCap := fs.Int("queue", 16, "max queued jobs before submissions get 429 (`n`)")
	cacheMB := fs.Int("cache-mb", 256, "substrate cache budget in `MiB`")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown `deadline` for queued and running jobs")
	journal := fs.String("journal", "", "job journal `path`; enables crash recovery (restart re-runs incomplete jobs)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job `deadline` for specs without timeout_ms; 0 = none")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}

	// Two-stage signal handling: the first SIGINT/SIGTERM cancels ctx
	// and starts the drain; a second one during the drain marks
	// in-flight work killed in the journal and exits hard. A plain
	// channel (not NotifyContext's re-armed default handler) so the
	// process gets to journal before dying.
	//costsense:ctx-ok process root: the first signal cancels this context; the pump goroutine below is its source
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	s, err := serve.Open(serve.Config{
		QueueCap:    *queueCap,
		CacheBytes:  int64(*cacheMB) << 20,
		JournalPath: *journal,
		JobTimeout:  *jobTimeout,
		// The default mux carries expvar's /debug/vars and (via the
		// blank import in instrument.go) /debug/pprof.
		DebugHandler: http.DefaultServeMux,
		Logger:       serve.NewLogger(os.Stderr),
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// Signal pump; it lives for the remainder of the process (runServe
	// returning ends the process, and with it the pump).
	go func() {
		first := true
		for range sigCh {
			if first {
				first = false
				cancel()
				continue
			}
			// Second signal mid-drain: record the kill, then die.
			fmt.Fprintln(os.Stderr, "costsense: second signal; killing in-flight jobs")
			s.MarkKilled()
			os.Exit(1)
		}
	}()

	// One registry, both muxes: the API mux serves GET /metrics
	// directly, and the same handler is mounted on the default (debug)
	// mux so the /debug/ surface — and any -http debug listener sharing
	// it — scrapes identical state. Guarded: the default mux panics on
	// duplicate registration and serve can run twice in one test
	// process.
	registerDebugMetrics(s.MetricsHandler())
	s.Start()
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	//costsense:ctx-ok terminates when ListenAndServe returns — guaranteed by the Shutdown below; errCh is buffered so the send never parks
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "costsense: serving experiments on http://%s (POST /api/v1/jobs)\n", *addr)
	if *journal != "" {
		fmt.Fprintf(os.Stderr, "costsense: journaling jobs to %s\n", *journal)
	}

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "costsense: signal received; draining jobs (deadline %s)\n", *drain)

	//costsense:ctx-ok drain window: the signal ctx is already cancelled; the deadline must outlive it
	shCtx, shCancel := context.WithTimeout(context.Background(), *drain)
	defer shCancel()
	drainErr := s.Drain(shCtx)
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "costsense: http shutdown:", err)
		// Graceful shutdown failed (deadline hit with connections still
		// open): force-close them so ListenAndServe below is guaranteed
		// to return.
		if err := httpSrv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "costsense: http close:", err)
		}
	}
	<-errCh // ListenAndServe has returned ErrServerClosed
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "costsense: drain deadline hit; unfinished jobs were failed")
	} else {
		fmt.Fprintln(os.Stderr, "costsense: drained cleanly")
	}
	return nil
}
