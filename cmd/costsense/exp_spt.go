package main

import (
	"fmt"
	"text/tabwriter"

	"costsense"
	"costsense/internal/sim"
)

// expFig4 reproduces Figure 4: the SPT algorithms across regimes.
func expFig4(w *tabwriter.Writer) {
	fmt.Fprintln(w, "graph\t𝓔\t𝓓\tcentr comm\tcentr/n²𝓥\trecur comm\trecur time\tsynch comm\tsynch time\thybrid comm\twinner")
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		{"sparse-40", costsense.RandomConnected(40, 60, costsense.UniformWeights(16, 1), 1)},
		{"dense-28", costsense.Complete(28, costsense.UniformWeights(32, 2))},
		{"grid-6x6", costsense.Grid(6, 6, costsense.UniformWeights(16, 3))},
		{"chord-32", costsense.HeavyChordRing(32, 64)},
	}
	// The sweep below runs in parallel; record the representative
	// -trace/-metrics execution serially, up front.
	if o := instrOpts(cases[0].g); o != nil {
		must(costsense.RunSPTRecur(cases[0].g, 0, costsense.DefaultStripLen(cases[0].g, 0), o...))
	}
	rows := must(runTrials(len(cases), func(i int) (string, error) {
		c := cases[i]
		g := c.g
		n := int64(g.N())
		vv := costsense.MSTWeight(g)
		want := costsense.Dijkstra(g, 0)
		check := func(name string, dist []int64) error {
			for v := range dist {
				if dist[v] != want.Dist[v] {
					return fmt.Errorf("%s/%s: Dist[%d] = %d, want %d", c.name, name, v, dist[v], want.Dist[v])
				}
			}
			return nil
		}
		centr := must(costsense.RunSPTCentr(g, 0))
		if err := check("centr", centr.Dist); err != nil {
			return "", err
		}
		recur := must(costsense.RunSPTRecur(g, 0, costsense.DefaultStripLen(g, 0)))
		if err := check("recur", recur.Dist); err != nil {
			return "", err
		}
		synch := must(costsense.RunSPTSynch(g, 0, 2))
		if err := check("synch", synch.Dist); err != nil {
			return "", err
		}
		hyRes, winner, err := costsense.RunSPTHybrid(g, 0, 2)
		if err != nil {
			return "", err
		}
		if err := check("hybrid", hyRes.Dist); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			c.name, g.TotalWeight(), costsense.Diameter(g),
			centr.Stats.Comm, ratio(centr.Stats.Comm, n*n*vv),
			recur.Stats.Comm, recur.Stats.FinishTime,
			synch.Stats.Comm, synch.Stats.FinishTime,
			hyRes.Stats.Comm, winner), nil
	}))
	for _, r := range rows {
		fmt.Fprint(w, r)
	}
	fmt.Fprintln(w, "\npaper: centr = O(n²𝓥) comm; recur = O(𝓔^{1+ε}) comm / O(𝓓^{1+ε}) time;")
	fmt.Fprintln(w, "synch = O(𝓔 + 𝓓kn·logn) comm / O(𝓓·log_k n·logn) time; hybrid takes the min")
}

// expStrips reproduces Figure 9: the strip-depth tradeoff of SPTrecur.
func expStrips(w *tabwriter.Writer) {
	g := costsense.Grid(8, 8, costsense.UniformWeights(16, 5))
	dd := costsense.Diameter(g)
	fmt.Fprintf(w, "grid-8x8, 𝓓=%d, 𝓔=%d\n\n", dd, g.TotalWeight())
	fmt.Fprintln(w, "strip ℓ\tstrips\ttotal comm\tsync comm\tproto comm\ttime")
	for _, l := range []int64{1, 2, 4, 8, 16, 32, dd + 1} {
		res := must(costsense.RunSPTRecur(g, 0, l, instrOpts(g)...))
		strips := (dd + l - 1) / l
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
			l, strips, res.Stats.Comm,
			res.Stats.CommOf(sim.ClassSync), res.Stats.CommOf(sim.ClassProto),
			res.Stats.FinishTime)
	}
	fmt.Fprintln(w, "\npaper (strip method): synchronization cost falls as ℓ grows (𝓓/ℓ global rounds);")
	fmt.Fprintln(w, "ℓ ≈ √𝓓 balances the two, giving the 𝓓^{1+ε} curve")
}
