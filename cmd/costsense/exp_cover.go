package main

import (
	"fmt"
	"math"
	"text/tabwriter"

	"costsense"
	"costsense/internal/cover"
)

// expCover reproduces Theorem 1.1 [AP91]: the cover coarsening
// radius/degree tradeoff, sweeping k on a ball cover.
func expCover(w *tabwriter.Writer) {
	g := costsense.Grid(12, 12, costsense.UnitWeights())
	s := cover.BallCover(g, 2)
	radS := s.Radius(g)
	fmt.Fprintf(w, "radius-2 ball cover on grid-12x12: |S|=%d, Rad(S)=%d\n\n", len(s), radS)
	fmt.Fprintln(w, "k\t|T|\tRad(T)\tRad(T)/Rad(S)\t2k+1\tΔ(T)\tk·|S|^{1/k}")
	for _, k := range []int{1, 2, 3, 4, 6} {
		t := cover.Coarsen(g, s, k)
		radT := t.Radius(g)
		deg := t.MaxDegree(g.N())
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%d\t%d\t%.1f\n",
			k, len(t), radT, float64(radT)/float64(radS), 2*k+1, deg,
			float64(k)*math.Pow(float64(len(s)), 1/float64(k)))
	}
	fmt.Fprintln(w, "\npaper (Thm 1.1): Rad(T) <= (2k-1)·Rad(S), Δ(T) = O(k·|S|^{1/k}) — radius grows, degree falls with k")

	fmt.Fprintln(w, "\n-- tree edge-cover (Lemma 3.2, feeds clock synchronizer γ*) --")
	fmt.Fprintln(w, "graph\td\tW\ttrees\tmax depth\tdepth/(d·logn)\tmax edge load\tlog n")
	for _, c := range []struct {
		name string
		g    *costsense.Graph
	}{
		{"chord-64", costsense.HeavyChordRing(64, 100000)},
		{"grid-8x8", costsense.Grid(8, 8, costsense.UniformWeights(10, 8))},
		{"rand-64", costsense.RandomConnected(64, 160, costsense.UniformWeights(24, 9), 9)},
	} {
		tc := costsense.NewTreeCover(c.g)
		d := costsense.MaxNeighborDist(c.g)
		logn := math.Log2(float64(c.g.N()))
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%d\t%.1f\n",
			c.name, d, c.g.MaxWeight(), len(tc.Trees), tc.MaxDepth(),
			float64(tc.MaxDepth())/(float64(d)*logn), tc.MaxEdgeLoad(c.g), logn)
	}
	fmt.Fprintln(w, "\npaper (Def 3.1): depth O(d·logn), each edge in O(logn) trees, every edge covered")
}
