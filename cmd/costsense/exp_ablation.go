package main

import (
	"fmt"
	"text/tabwriter"

	"costsense"
	"costsense/internal/synch"
)

// expAblation isolates the design choices DESIGN.md calls out:
//
//  1. which spanning tree β-style synchronizers run over (the SLT
//     choice vs the MST / SPT extremes, §2's motivation applied to §3
//     and §4);
//  2. the coarsening parameter k of the γ* tree edge-cover (the
//     Thm 1.1 radius/degree trade surfacing as pulse delay).
func expAblation(w *tabwriter.Writer) {
	fmt.Fprintln(w, "-- β synchronizer tree choice (BKJ separation instance n=96) --")
	g := costsense.ShallowLightGap(96)
	hub := costsense.NodeID(g.N() - 1)
	pulses := costsense.Diameter(g) + 2
	sltTree, _, err := costsense.BuildSLT(g, hub, 2)
	if err != nil {
		panic(err)
	}
	trees := []struct {
		name string
		t    *costsense.Tree
	}{
		{"SLT(q=2)", sltTree},
		{"MST", costsense.PrimTree(g, hub)},
		{"SPT", costsense.Dijkstra(g, hub).Tree(g)},
	}
	fmt.Fprintln(w, "tree\tw(T)\tdepth(T)\tC(β)/pulse\tT(β)/pulse")
	for _, tc := range trees {
		ov := must(synch.RunBetaTree(g, costsense.NewSPTSyncProcs(g, hub), pulses, tc.t, instrOpts(g)...))
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\n",
			tc.name, tc.t.Weight(), tc.t.Height(), ov.CommPerPulse, ov.TimePerPulse)
	}
	fmt.Fprintln(w, "\nprediction: the SLT matches the MST's C = O(𝓥) and the SPT's T = O(𝓓) at once;")
	fmt.Fprintln(w, "the MST pays T = O(√n·𝓓), the SPT pays C = O(√n·𝓥) on this instance")

	fmt.Fprintln(w, "\n-- β* clock synchronizer over the same trees --")
	fmt.Fprintln(w, "tree\tpulse delay\tsync comm/pulse")
	const clockPulses = 8
	for _, tc := range trees {
		res := must(costsense.RunClockBetaTree(g, clockPulses, tc.t))
		if err := res.CausalOK(g); err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\n", tc.name, res.MaxDelay(),
			res.Stats.Comm/clockPulses)
	}

	fmt.Fprintln(w, "\n-- γ* tree edge-cover coarsening k (grid-7x7, uniform weights) --")
	gc := costsense.Grid(7, 7, costsense.UniformWeights(12, 5))
	fmt.Fprintln(w, "k\ttrees\tmax depth\tpulse delay\tsync comm/pulse")
	for _, k := range []int{2, 3, 4, 6, 8} {
		tc := costsense.NewTreeCoverK(gc, k)
		res := must(costsense.RunClockGammaK(gc, clockPulses, k))
		if err := res.CausalOK(gc); err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n",
			k, len(tc.Trees), tc.MaxDepth(), res.MaxDelay(), res.Stats.Comm/clockPulses)
	}
	fmt.Fprintln(w, "\nprediction (Thm 1.1): larger k deepens the cover trees (radius ~2k·d) but")
	fmt.Fprintln(w, "shrinks their number/overlap — pulse delay grows, per-pulse traffic falls")
}
