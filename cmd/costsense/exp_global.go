package main

import (
	"fmt"
	"math/rand"
	"text/tabwriter"

	"costsense"
)

// testbed returns the graph families the experiments sweep over.
func testbed() []struct {
	name string
	g    *costsense.Graph
} {
	return []struct {
		name string
		g    *costsense.Graph
	}{
		{"path-64", costsense.Path(64, costsense.UniformWeights(16, 1))},
		{"ring-64", costsense.Ring(64, costsense.UniformWeights(16, 2))},
		{"grid-8x8", costsense.Grid(8, 8, costsense.UniformWeights(16, 3))},
		{"rand-64-200", costsense.RandomConnected(64, 200, costsense.UniformWeights(32, 4), 4)},
		{"complete-32", costsense.Complete(32, costsense.UniformWeights(64, 5))},
		{"bkj-sep-64", costsense.ShallowLightGap(64)},
	}
}

// expFig1 reproduces Figure 1: global symmetric compact function
// computation achieves O(𝓥) communication and O(𝓓) time (upper, via
// SLT) against the Ω(𝓥)/Ω(𝓓) lower bounds.
func expFig1(w *tabwriter.Writer) {
	fmt.Fprintln(w, "graph\t𝓥\t𝓓\tcomm\tcomm/𝓥\ttime\ttime/𝓓\tvalue ok")
	for _, tb := range testbed() {
		g := tb.g
		n := g.N()
		rng := rand.New(rand.NewSource(42))
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = rng.Int63n(1000)
		}
		res, _, err := costsense.ComputeViaSLT(g, 0, 2, inputs, costsense.Sum, instrOpts(g)...)
		if err != nil {
			panic(err)
		}
		var want int64
		for _, x := range inputs {
			want += x
		}
		vv := costsense.MSTWeight(g)
		dd := costsense.Diameter(g)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%d\t%s\t%v\n",
			tb.name, vv, dd, res.Stats.Comm, ratio(res.Stats.Comm, vv),
			res.Stats.FinishTime, ratio(res.Stats.FinishTime, dd), res.Value == want)
	}
	fmt.Fprintln(w, "\npaper: comm = Θ(𝓥), time = Θ(𝓓) — constant ratios across families")
}

// expSLT reproduces the Figure 5/6 construction: sweeps the trade-off
// parameter q and verifies Lemma 2.4 (weight) and Lemma 2.5 (depth).
func expSLT(w *tabwriter.Writer) {
	g := costsense.ShallowLightGap(128)
	hub := costsense.NodeID(g.N() - 1)
	vv := costsense.MSTWeight(g)
	dd := costsense.Diameter(g)
	fmt.Fprintf(w, "separation instance n=%d: 𝓥=%d 𝓓=%d", g.N(), vv, dd)
	spt := costsense.Dijkstra(g, hub).Tree(g)
	mstT := costsense.PrimTree(g, hub)
	fmt.Fprintf(w, "  w(SPT)=%d (%.1f𝓥)  depth(MST)=%d (%.1f𝓓)\n\n",
		spt.Weight(), float64(spt.Weight())/float64(vv), mstT.Height(), float64(mstT.Height())/float64(dd))
	fmt.Fprintln(w, "q\tw(T)\tw(T)/𝓥\t(1+2/q) bound\tdepth(T)\tdepth/𝓓\tbreakpoints")
	for _, q := range []int64{1, 2, 4, 8, 16, 64} {
		tree, info, err := costsense.BuildSLT(g, hub, q)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%d\t%.2f\t%d\n",
			q, tree.Weight(), float64(tree.Weight())/float64(vv), 1+2/float64(q),
			tree.Height(), float64(tree.Height())/float64(dd), len(info.Breakpoints))
	}
	fmt.Fprintln(w, "\npaper: w(T) <= (1+2/q)𝓥 (Lemma 2.4), depth(T) = O(q𝓓) (Lemma 2.5)")
}

// expSLTDist reproduces Theorem 2.7: the distributed SLT construction
// costs O(𝓥n²) communication and O(𝓓n²) time.
func expSLTDist(w *tabwriter.Writer) {
	fmt.Fprintln(w, "n\t𝓥\t𝓓\tcomm\tcomm/(𝓥n²)\ttime\ttime/(𝓓n²)")
	for _, n := range []int{16, 24, 32, 48} {
		g := costsense.RandomConnected(n, 3*n, costsense.UniformWeights(16, int64(n)), int64(n))
		res, err := costsense.BuildSLTDistributed(g, 0, 2)
		if err != nil {
			panic(err)
		}
		vv := costsense.MSTWeight(g)
		dd := costsense.Diameter(g)
		n2 := int64(n) * int64(n)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			n, vv, dd, res.Stats.Comm, ratio(res.Stats.Comm, vv*n2),
			res.Stats.FinishTime, ratio(res.Stats.FinishTime, dd*n2))
	}
	fmt.Fprintln(w, "\npaper: O(𝓥n²) comm, O(𝓓n²) time — ratios bounded and falling")
}
