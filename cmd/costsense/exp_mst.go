package main

import (
	"fmt"
	"math"
	"text/tabwriter"

	"costsense"
)

// expFig3 reproduces Figure 3: the four MST algorithms across regimes.
func expFig3(w *tabwriter.Writer) {
	fmt.Fprintln(w, "graph\t𝓔\t𝓥\tghs comm\tghs/(𝓔+𝓥lgn)\tcentr comm\tcentr/n𝓥\tfast comm\tfast time\tghs time\thybrid comm\twinner")
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		{"sparse-48", costsense.RandomConnected(48, 70, costsense.UniformWeights(24, 1), 1)},
		{"dense-32", costsense.Complete(32, costsense.UniformWeights(64, 2))},
		{"grid-7x7", costsense.Grid(7, 7, costsense.UniformWeights(32, 3))},
		{"Gn-20", costsense.HardConnectivity(20, 20)},
		{"heavystar-32", heavyStar(32, 4096)},
	}
	// The sweep below runs in parallel; record the representative
	// -trace/-metrics execution serially, up front.
	if o := instrOpts(cases[0].g); o != nil {
		must(costsense.RunGHS(cases[0].g, o...))
	}
	rows := must(runTrials(len(cases), func(i int) (string, error) {
		c := cases[i]
		g := c.g
		ee := g.TotalWeight()
		vv := costsense.MSTWeight(g)
		logn := int64(math.Ceil(math.Log2(float64(g.N()))))
		ghs := must(costsense.RunGHS(g))
		centr := must(costsense.RunMSTCentr(g, 0))
		fast := must(costsense.RunMSTFast(g))
		hy := must(costsense.RunMSTHybrid(g, 0))
		// All four must find the same (unique up to ties) MST weight.
		if ghs.Weight() != vv || fast.Weight() != vv || hy.Result.Weight() != vv {
			return "", fmt.Errorf("%s: MST weight mismatch", c.name)
		}
		if centr.Tree(g, 0).Weight() != vv {
			return "", fmt.Errorf("%s: centr weight mismatch", c.name)
		}
		return fmt.Sprintf("%s\t%d\t%d\t%d\t%s\t%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
			c.name, ee, vv,
			ghs.Stats.Comm, ratio(ghs.Stats.Comm, ee+vv*logn),
			centr.Stats.Comm, ratio(centr.Stats.Comm, int64(g.N())*vv),
			fast.Stats.Comm, fast.Stats.FinishTime, ghs.Stats.FinishTime,
			hy.Result.Stats.Comm, hy.Winner), nil
	}))
	for _, r := range rows {
		fmt.Fprint(w, r)
	}
	fmt.Fprintln(w, "\npaper: ghs = O(𝓔+𝓥logn) comm; centr = O(n𝓥); fast trades comm (x log𝓥) for time;")
	fmt.Fprintln(w, "hybrid = O(min{𝓔+𝓥logn, n𝓥}) — winner flips between sparse and G_n regimes")
}

// heavyStar is the §8.3 stress case: a unit path (the MST) plus a star
// of very heavy non-tree edges at vertex 0, forcing GHS into a long
// serial scan.
func heavyStar(n int, heavy int64) *costsense.Graph {
	b := costsense.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(costsense.NodeID(i), costsense.NodeID(i+1), 1)
	}
	for i := 2; i < n; i++ {
		b.AddEdge(0, costsense.NodeID(i), heavy)
	}
	return b.MustBuild()
}
