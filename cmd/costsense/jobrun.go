package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"costsense/internal/serve"
)

// runJobrun runs `costsense jobrun`: a resilient one-shot client for a
// running experiment server. It submits one spec (from -spec or
// stdin), follows the job's NDJSON progress stream on stderr, and
// writes the result JSON to stdout. The client rides out backpressure
// (429 + Retry-After), drains and crash-restarts: a dropped stream is
// resumed from its ?from= offset, so a server killed mid-sweep and
// restarted with the same -journal finishes the job and this command
// still exits with its byte-exact result. Exit is nonzero when the
// job fails (the typed reason is printed) or the server stays gone.
func runJobrun(args []string) error {
	fs := flag.NewFlagSet("costsense jobrun", flag.ContinueOnError)
	base := fs.String("server", "http://localhost:8080", "experiment server base `url`")
	specPath := fs.String("spec", "-", "spec JSON `file` (- = stdin)")
	quiet := fs.Bool("quiet", false, "suppress the progress stream on stderr")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("jobrun takes no positional arguments (got %q)", fs.Args())
	}

	var in io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close() //costsense:err-ok read-only handle, fully consumed below
		in = f
	}
	var spec serve.Spec
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("jobrun: decoding spec: %w", err)
	}

	//costsense:ctx-ok process root: SIGINT/SIGTERM are the cancellation source for the client below
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := &serve.Client{Base: *base}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	st, result, err := c.Run(ctx, spec, progress)
	if err != nil {
		return fmt.Errorf("jobrun: %w", err)
	}
	if st.State != "done" {
		return fmt.Errorf("jobrun: job %s failed (reason=%s): %s", st.ID, st.Reason, st.Error)
	}
	if _, err := os.Stdout.Write(result); err != nil {
		return fmt.Errorf("jobrun: writing result: %w", err)
	}
	return nil
}
