// Command costsense regenerates every table and figure of the paper's
// evaluation on the simulator. Each experiment prints the measured
// weighted communication / time next to the bound the paper states, so
// the shapes can be compared directly (see EXPERIMENTS.md).
//
// Usage:
//
//	costsense exp <id>     run one experiment
//	costsense exp all      run every experiment
//	costsense list         list experiment ids
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// experiment is one reproducible table/figure.
type experiment struct {
	id    string
	title string
	run   func(*tabwriter.Writer)
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "Figure 1 — global function computation: O(𝓥) comm, O(𝓓) time", expFig1},
		{"slt", "Figure 5/6 + Lemmas 2.4/2.5 — shallow-light tree bounds over q", expSLT},
		{"sltdist", "Theorem 2.7 — distributed SLT construction", expSLTDist},
		{"clock", "§3 — clock synchronizers α*, β*, γ*: pulse delay", expClock},
		{"synch", "§4, Lemma 4.8 — synchronizer γ_w per-pulse overhead", expSynch},
		{"controller", "§5, Corollary 5.1 — controller overhead and runaway cutoff", expController},
		{"fig2", "Figure 2 — connectivity: DFS, CONflood, CONhybrid vs min{𝓔, n𝓥}", expFig2},
		{"lowerbound", "§7.1, Lemma 7.2 — Ω(n𝓥) lower-bound family G_n", expLowerBound},
		{"fig3", "Figure 3 — MST algorithms", expFig3},
		{"fig4", "Figure 4 — SPT algorithms", expFig4},
		{"strips", "Figure 9 — SPTrecur strip-depth sweep", expStrips},
		{"cover", "Theorem 1.1 [AP91] — cover coarsening tradeoff", expCover},
		{"ablation", "design-choice ablations: β tree choice, γ* cover parameter", expAblation},
		{"routing", "routing application: table weight vs route quality per tree", expRouting},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "costsense:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	exps := experiments()
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "verify":
		return verifyAll()
	case "list":
		for _, e := range exps {
			fmt.Printf("%-11s %s\n", e.id, e.title)
		}
		return nil
	case "exp":
		if len(args) < 2 {
			return usage()
		}
		want := args[1]
		byID := make(map[string]experiment, len(exps))
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			byID[e.id] = e
			ids = append(ids, e.id)
		}
		if want == "all" {
			for _, e := range exps {
				runOne(e)
			}
			return nil
		}
		e, ok := byID[want]
		if !ok {
			sort.Strings(ids)
			return fmt.Errorf("unknown experiment %q (have %v)", want, ids)
		}
		runOne(e)
		return nil
	default:
		return usage()
	}
}

func runOne(e experiment) {
	fmt.Printf("== %s: %s\n\n", e.id, e.title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	e.run(w)
	w.Flush()
	fmt.Println()
}

func usage() error {
	return fmt.Errorf("usage: costsense {list | exp <id> | exp all | verify}")
}

// ratio formats a measured/bound quotient.
func ratio(measured, bound int64) string {
	if bound == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(measured)/float64(bound))
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
