// Command costsense regenerates every table and figure of the paper's
// evaluation on the simulator. Each experiment prints the measured
// weighted communication / time next to the bound the paper states, so
// the shapes can be compared directly (see EXPERIMENTS.md).
//
// Usage:
//
//	costsense [flags] exp <id>     run one experiment
//	costsense [flags] exp all      run every experiment
//	costsense list                 list experiment ids
//	costsense serve [flags]        persistent experiment service (HTTP API
//	                               with substrate cache and, with -journal,
//	                               crash recovery; see README, "Server mode")
//	costsense jobrun [flags]       submit one spec to a running server and
//	                               follow it to completion, resuming the
//	                               stream across server restarts
//
// Observability flags (see DESIGN.md, "Observability"):
//
//	-trace f.json     record one representative run per experiment as
//	                  Chrome trace_event JSON (Perfetto / about:tracing)
//	-metrics f.json   per-edge and per-class metrics of that run
//	-critpath f.json  happens-before critical path of that run: the causal
//	                  message chain realizing the completion time, with
//	                  on/off-path cost attribution and slack histogram
//	-progress         per-sweep progress lines (done/total, ETA) on stderr
//	-http addr        serve expvar (/debug/vars) and pprof (/debug/pprof)
//	-shards n         run the instrumented simulations on the sharded
//	                  engine (byte-identical results; see DESIGN.md)
//
// Chaos harness (see DESIGN.md, "Fault injection & reliable delivery"):
//
//	-faults spec      fault regime for `exp chaos`, e.g.
//	                  drop=0.1,dup=0.02,crash=1,down=2,seed=7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// experiment is one reproducible table/figure.
type experiment struct {
	id    string
	title string
	run   func(*tabwriter.Writer)
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "Figure 1 — global function computation: O(𝓥) comm, O(𝓓) time", expFig1},
		{"slt", "Figure 5/6 + Lemmas 2.4/2.5 — shallow-light tree bounds over q", expSLT},
		{"sltdist", "Theorem 2.7 — distributed SLT construction", expSLTDist},
		{"clock", "§3 — clock synchronizers α*, β*, γ*: pulse delay", expClock},
		{"synch", "§4, Lemma 4.8 — synchronizer γ_w per-pulse overhead", expSynch},
		{"controller", "§5, Corollary 5.1 — controller overhead and runaway cutoff", expController},
		{"fig2", "Figure 2 — connectivity: DFS, CONflood, CONhybrid vs min{𝓔, n𝓥}", expFig2},
		{"lowerbound", "§7.1, Lemma 7.2 — Ω(n𝓥) lower-bound family G_n", expLowerBound},
		{"fig3", "Figure 3 — MST algorithms", expFig3},
		{"fig4", "Figure 4 — SPT algorithms", expFig4},
		{"strips", "Figure 9 — SPTrecur strip-depth sweep", expStrips},
		{"cover", "Theorem 1.1 [AP91] — cover coarsening tradeoff", expCover},
		{"ablation", "design-choice ablations: β tree choice, γ* cover parameter", expAblation},
		{"routing", "routing application: table weight vs route quality per tree", expRouting},
		{"chaos", "robustness — fault injection + reliable delivery: graceful degradation", expChaos},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "costsense:", err)
		os.Exit(1)
	}
}

//costsense:ctx-ok CLI root: the debug listener is the only spawn, and it is cancelled by the deferred stopDebug before run returns
func run(args []string) error {
	fs := flag.NewFlagSet("costsense", flag.ContinueOnError)
	fs.StringVar(&instr.tracePath, "trace", "", "write a Chrome trace_event JSON of one representative run per experiment to `file`")
	fs.StringVar(&instr.metricsPath, "metrics", "", "write per-edge/per-class metrics JSON of that run to `file`")
	fs.StringVar(&instr.critpathPath, "critpath", "", "write the critical-path analysis JSON of that run to `file`")
	fs.BoolVar(&instr.progress, "progress", false, "report sweep progress (trials done/total, ETA) on stderr")
	fs.StringVar(&instr.httpAddr, "http", "", "serve expvar and pprof on `addr` (e.g. localhost:6060)")
	fs.IntVar(&instr.shards, "shards", 0, "run simulations on the sharded engine with `n` shards (results are byte-identical to serial; 0 or 1 = serial)")
	var faults string
	fs.StringVar(&faults, "faults", "", "fault `spec` for the chaos experiment, e.g. drop=0.1,dup=0.02,crash=1,down=2,seed=7")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if faults != "" {
		sp, err := parseFaultSpec(faults)
		if err != nil {
			return err
		}
		chaosCfg = sp
	}
	instr.multi = false
	if instr.httpAddr != "" {
		// The debug listener lives for the rest of the invocation and is
		// shut down gracefully (in-flight scrapes finish) when run
		// returns.
		//costsense:ctx-ok process root: the CLI has no inherited context; stopDebug is deferred
		debugCtx, stopDebug := context.WithCancel(context.Background())
		defer stopDebug()
		go serveDebug(debugCtx, instr.httpAddr)
	}
	exps := experiments()
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "jobrun":
		return runJobrun(args[1:])
	case "verify":
		return verifyAll()
	case "list":
		for _, e := range exps {
			fmt.Printf("%-11s %s\n", e.id, e.title)
		}
		return nil
	case "exp":
		if len(args) < 2 {
			return usage()
		}
		want := args[1]
		byID := make(map[string]experiment, len(exps))
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			byID[e.id] = e
			ids = append(ids, e.id)
		}
		if want == "all" {
			instr.multi = true
			for _, e := range exps {
				if err := runOne(e); err != nil {
					return err
				}
			}
			return nil
		}
		e, ok := byID[want]
		if !ok {
			sort.Strings(ids)
			return fmt.Errorf("unknown experiment %q (have %v)", want, ids)
		}
		return runOne(e)
	default:
		return usage()
	}
}

func runOne(e experiment) error {
	instr.begin(e.id)
	fmt.Printf("== %s: %s\n\n", e.id, e.title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	e.run(w)
	if err := w.Flush(); err != nil {
		return fmt.Errorf("%s: writing results: %w", e.id, err)
	}
	fmt.Println()
	return instr.flush()
}

func usage() error {
	return fmt.Errorf("usage: costsense [-trace f] [-metrics f] [-critpath f] [-progress] [-http addr] [-shards n] [-faults spec] {list | exp <id> | exp all | verify | serve [-addr a] [-queue n] [-cache-mb n] [-drain d] [-journal f] [-job-timeout d] | jobrun [-server url] [-spec f]}")
}

// ratio formats a measured/bound quotient.
func ratio(measured, bound int64) string {
	if bound == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(measured)/float64(bound))
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
