package main

import (
	"fmt"
	"text/tabwriter"

	"costsense"
)

// expFig2 reproduces Figure 2: connectivity / spanning tree
// construction. DFS and CONflood pay Θ(𝓔); CONhybrid tracks
// min{𝓔, n𝓥} on both sides of the crossover.
func expFig2(w *tabwriter.Writer) {
	fmt.Fprintln(w, "graph\t𝓔\tn𝓥\tmin\tflood\tDFS\tMSTcentr\thybrid\thybrid/minstd\twinner")
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		// 𝓔 << n𝓥: trees and sparse graphs — DFS side wins.
		{"tree-48", costsense.RandomConnected(48, 47, costsense.UniformWeights(16, 1), 1)},
		{"sparse-48", costsense.RandomConnected(48, 70, costsense.UniformWeights(16, 2), 2)},
		// n𝓥 << 𝓔: the hard family — MSTcentr side wins.
		{"Gn-24", costsense.HardConnectivity(24, 24)},
		{"Gn-32", costsense.HardConnectivity(32, 32)},
		// middle ground
		{"rand-40-150", costsense.RandomConnected(40, 150, costsense.UniformWeights(40, 3), 3)},
	}
	// The sweep below runs in parallel; record the representative
	// -trace/-metrics execution serially, up front.
	if o := instrOpts(cases[0].g); o != nil {
		must(costsense.RunCONHybrid(cases[0].g, 0, o...))
	}
	rows := must(runTrials(len(cases), func(i int) (string, error) {
		c := cases[i]
		g := c.g
		ee := g.TotalWeight()
		nv := int64(g.N()) * costsense.MSTWeight(g)
		minB := ee
		if nv < minB {
			minB = nv
		}
		fl := must(costsense.RunFlood(g, 0))
		dfs := must(costsense.RunDFS(g, 0))
		mc := must(costsense.RunMSTCentr(g, 0))
		hy := must(costsense.RunCONHybrid(g, 0))
		minStd := dfs.Stats.Comm
		if mc.Stats.Comm < minStd {
			minStd = mc.Stats.Comm
		}
		return fmt.Sprintf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			c.name, ee, nv, minB, fl.Stats.Comm, dfs.Stats.Comm, mc.Stats.Comm,
			hy.Stats.Comm, ratio(hy.Stats.Comm, minStd), hy.Winner), nil
	}))
	for _, r := range rows {
		fmt.Fprint(w, r)
	}
	fmt.Fprintln(w, "\npaper: DFS/flood = O(𝓔); CONhybrid = O(min{𝓔, n𝓥}) against the Ω(min{𝓔, n𝓥}) lower bound")
}

// expLowerBound reproduces §7.1 / Lemma 7.2: scaling on the G_n family.
func expLowerBound(w *tabwriter.Writer) {
	fmt.Fprintln(w, "n\tX\t𝓔 (≈nX⁴)\tn𝓥 (≈n²X)\tflood\tDFS\tMSTcentr\thybrid\tMSTcentr/n𝓥")
	sizes := []int{12, 16, 24, 32, 48}
	rows := must(runTrials(len(sizes), func(i int) (string, error) {
		n := sizes[i]
		rep, err := costsense.RunGnExperiment(n, int64(n))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			rep.N, rep.X, rep.E, rep.NV, rep.FloodComm, rep.DFSComm,
			rep.MSTComm, rep.HybridComm, ratio(rep.MSTComm, rep.NV)), nil
	}))
	for _, r := range rows {
		fmt.Fprint(w, r)
	}
	fmt.Fprintln(w, "\npaper: any algorithm needs Ω(n𝓥) = Ω(n²X) on G_n; edge-bound algorithms pay Θ(nX⁴)")
	fmt.Fprintln(w, "expected scaling: MSTcentr/hybrid grow ~n³ (n²X with X=n); flood/DFS grow ~n⁵")
}
