package main

import (
	"fmt"
	"math"
	"text/tabwriter"

	"costsense"
	"costsense/internal/basic"
	"costsense/internal/sim"
)

// expController reproduces §5 / Corollary 5.1: overhead of the
// controller on correct executions and the cutoff of runaway ones.
func expController(w *tabwriter.Writer) {
	fmt.Fprintln(w, "-- correct executions (flood workload) --")
	fmt.Fprintln(w, "graph\tc_π\tcontrolled comm\tcontrol msgs comm\ttotal/(c·log²c)\texhausted")
	cases := []struct {
		name string
		g    *costsense.Graph
	}{
		{"rand-48", costsense.RandomConnected(48, 120, costsense.UniformWeights(16, 1), 1)},
		{"grid-7x7", costsense.Grid(7, 7, costsense.UniformWeights(8, 2))},
		{"path-48", costsense.Path(48, costsense.UniformWeights(12, 3))},
		{"complete-24", costsense.Complete(24, costsense.UniformWeights(16, 4))},
	}
	for _, c := range cases {
		g := c.g
		// Threshold: the schedule-free flood bound c_π <= 2𝓔.
		cpi := 2 * g.TotalWeight()
		res, _, err := costsense.RunControlled(g, floodProcs(g), 0, cpi, instrOpts(g)...)
		if err != nil {
			panic(err)
		}
		logc := math.Log2(float64(cpi))
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3f\t%v\n",
			c.name, cpi, res.Stats.Comm, res.ControlComm,
			float64(res.Stats.Comm)/(float64(cpi)*logc*logc), res.Exhausted)
	}

	fmt.Fprintln(w, "\n-- runaway protocol (infinite ping-pong), threshold sweep --")
	fmt.Fprintln(w, "threshold\tconsumed\ttotal comm\tstopped")
	g := costsense.Ring(12, costsense.ConstWeights(3))
	for _, th := range []int64{100, 500, 2000, 10000} {
		procs := make([]sim.Process, g.N())
		for v := range procs {
			procs[v] = &pingBomb{}
		}
		res, _, err := costsense.RunControlled(g, procs, 0, th, costsense.WithEventLimit(20_000_000))
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\n", th, res.Consumed, res.Stats.Comm, res.Exhausted)
	}
	fmt.Fprintln(w, "\npaper (Cor 5.1): controlled complexity O(c_π·log²c_π); incorrect executions stopped at the threshold")
}

func floodProcs(g *costsense.Graph) []sim.Process {
	procs := make([]sim.Process, g.N())
	for v := range procs {
		procs[v] = &basic.FloodProc{Source: 0}
	}
	return procs
}

// pingBomb is a diverging protocol: every receipt is answered.
type pingBomb struct{}

func (pingBomb) Init(ctx sim.Context) {
	if ctx.ID() == 0 {
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "boom")
		}
	}
}

func (pingBomb) Handle(ctx sim.Context, from costsense.NodeID, _ sim.Message) {
	ctx.Send(from, "boom")
}
