module costsense

go 1.22
