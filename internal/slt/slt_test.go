package slt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

func checkSLT(t *testing.T, g *graph.Graph, v0 graph.NodeID, q int64) *graph.Tree {
	t.Helper()
	tree, info, err := Build(g, v0, q)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Spanning() {
		t.Fatal("SLT does not span")
	}
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)
	if w := tree.Weight(); w > WeightBound(q, vv) {
		t.Fatalf("w(T) = %d > (1+2/q)𝓥 = %d (q=%d, 𝓥=%d)", w, WeightBound(q, vv), q, vv)
	}
	if h := tree.Height(); h > DepthBound(q, dd) {
		t.Fatalf("depth(T) = %d > (2q+1)𝓓 = %d (q=%d, 𝓓=%d)", h, DepthBound(q, dd), q, dd)
	}
	if !IsShallowLight(g, tree, q) {
		t.Fatal("IsShallowLight disagrees with explicit checks")
	}
	if len(info.Tour) != 2*g.N()-1 {
		t.Fatalf("tour length %d, want %d", len(info.Tour), 2*g.N()-1)
	}
	if len(info.Breakpoints) == 0 || info.Breakpoints[0] != 0 {
		t.Fatalf("breakpoints must start at 0: %v", info.Breakpoints)
	}
	return tree
}

func TestBuildOnSeparationGraph(t *testing.T) {
	// On the [BKJ83] separation instance neither the MST nor the SPT is
	// shallow-light, so the algorithm must do real work.
	g := graph.ShallowLightGap(30)
	hub := graph.NodeID(g.N() - 1)
	for _, q := range []int64{1, 2, 4, 8} {
		checkSLT(t, g, hub, q)
	}
	// Sanity: the MST itself violates the depth bound for small q, so
	// the test above is not vacuous.
	mst := graph.PrimTree(g, hub)
	if mst.Height() <= DepthBound(2, graph.Diameter(g)) {
		t.Skip("separation instance unexpectedly mild") // defensive; should not happen for n=30
	}
}

func TestBuildFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(20, graph.UniformWeights(9, 1))},
		{"ring", graph.Ring(21, graph.UniformWeights(9, 2))},
		{"grid", graph.Grid(5, 6, graph.UniformWeights(9, 3))},
		{"complete", graph.Complete(15, graph.UniformWeights(50, 4))},
		{"random", graph.RandomConnected(40, 100, graph.UniformWeights(30, 5), 5)},
		{"star", graph.Star(17, graph.UniformWeights(9, 6))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, q := range []int64{1, 3, 10} {
				checkSLT(t, tt.g, 0, q)
			}
		})
	}
}

func TestBuildTrivialGraphs(t *testing.T) {
	single := graph.NewBuilder(1).MustBuild()
	tree, _, err := Build(single, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Spanning() || tree.Weight() != 0 {
		t.Fatal("singleton SLT wrong")
	}
	pair := graph.Path(2, graph.ConstWeights(5))
	tree, _, err = Build(pair, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Weight() != 5 || tree.Root != 1 {
		t.Fatalf("pair SLT weight=%d root=%d", tree.Weight(), tree.Root)
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights())
	if _, _, err := Build(g, 0, 0); err == nil {
		t.Error("q=0 should error")
	}
	disc := graph.NewBuilder(3).MustBuild()
	if _, _, err := Build(disc, 0, 2); err == nil {
		t.Error("disconnected graph should error")
	}
}

func TestSLTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(64, seed), seed)
		v0 := graph.NodeID(rng.Intn(n))
		q := 1 + rng.Int63n(8)
		tree, _, err := Build(g, v0, q)
		if err != nil {
			return false
		}
		return tree.Spanning() && IsShallowLight(g, tree, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQTradeoffMonotonicity(t *testing.T) {
	// Larger q may only help weight (fewer grafts): w(T_q) is
	// non-increasing in q up to SPT tie-breaks; check the endpoints.
	g := graph.ShallowLightGap(40)
	hub := graph.NodeID(g.N() - 1)
	t1, _, err := Build(g, hub, 1)
	if err != nil {
		t.Fatal(err)
	}
	t64, _, err := Build(g, hub, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t64.Weight() > t1.Weight() {
		t.Errorf("weight should shrink with q: q=64 gives %d, q=1 gives %d", t64.Weight(), t1.Weight())
	}
	if t1.Height() > t64.Height() {
		t.Errorf("depth should shrink with 1/q: q=1 gives %d, q=64 gives %d", t1.Height(), t64.Height())
	}
}

func TestRunDistributedMatchesBounds(t *testing.T) {
	g := graph.RandomConnected(25, 60, graph.UniformWeights(20, 11), 11)
	res, err := RunDistributed(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tree.Spanning() {
		t.Fatal("distributed SLT does not span")
	}
	if !IsShallowLight(g, res.Tree, 2) {
		t.Fatalf("distributed SLT violates bounds: w=%d depth=%d", res.Tree.Weight(), res.Tree.Height())
	}
	// Theorem 2.7: O(𝓥n²) communication, O(𝓓n²) time.
	n := int64(g.N())
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)
	if res.Stats.Comm > 10*vv*n*n {
		t.Errorf("distributed SLT comm %d > 10𝓥n² = %d", res.Stats.Comm, 10*vv*n*n)
	}
	if res.Stats.FinishTime > 10*dd*n*n {
		t.Errorf("distributed SLT time %d > 10𝓓n² = %d", res.Stats.FinishTime, 10*dd*n*n)
	}
}

func TestCorollary23GlobalComputationCost(t *testing.T) {
	// Corollary 2.3 backbone: an SLT supports global function
	// computation with O(𝓥) communication (2·w(T)) and O(𝓓) time
	// (2·depth(T)); verify the tree-level quantities directly.
	g := graph.RandomConnected(50, 120, graph.UniformWeights(25, 17), 17)
	tree, _, err := Build(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)
	if 2*tree.Weight() > 2*WeightBound(2, vv) {
		t.Errorf("2w(T) = %d exceeds O(𝓥)", 2*tree.Weight())
	}
	if 2*tree.Height() > 2*DepthBound(2, dd) {
		t.Errorf("2depth(T) = %d exceeds O(𝓓)", 2*tree.Height())
	}
}

func TestGPrimeStructure(t *testing.T) {
	// G' = T_M ∪ grafted SPT paths: it must contain every MST edge and
	// weigh at most the Lemma 2.4 bound.
	g := graph.ShallowLightGap(48)
	hub := graph.NodeID(g.N() - 1)
	q := int64(2)
	_, info, err := Build(g, hub, q)
	if err != nil {
		t.Fatal(err)
	}
	gp := info.GPrime
	if gp.N() != g.N() {
		t.Fatal("G' changed the vertex set")
	}
	mst := graph.PrimTree(g, hub)
	for _, e := range mst.Edges() {
		if gp.Weight(e.U, e.V) < 0 {
			t.Fatalf("G' misses MST edge %v", e)
		}
	}
	if gp.TotalWeight() > WeightBound(q, graph.MSTWeight(g)) {
		t.Fatalf("w(G') = %d above the Lemma 2.4 bound %d",
			gp.TotalWeight(), WeightBound(q, graph.MSTWeight(g)))
	}
	if !gp.Connected() {
		t.Fatal("G' must be connected")
	}
}

func TestBreakpointsAreMonotone(t *testing.T) {
	g := graph.RandomConnected(40, 100, graph.UniformWeights(20, 31), 31)
	_, info, err := Build(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(info.Breakpoints); i++ {
		if info.Breakpoints[i] <= info.Breakpoints[i-1] {
			t.Fatalf("breakpoints not increasing: %v", info.Breakpoints)
		}
		if info.Breakpoints[i] >= len(info.Tour) {
			t.Fatalf("breakpoint %d beyond the tour", info.Breakpoints[i])
		}
	}
}
