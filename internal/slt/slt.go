// Package slt implements shallow-light trees (§2 of the paper): spanning
// trees that simultaneously approximate a minimum spanning tree in weight
// and a shortest path tree in depth. A spanning tree T rooted at v0 is
// shallow-light (SLT) when
//
//	w(T)    = O(𝓥)   (within (1 + 2/q) of the MST weight), and
//	depth(T) = O(𝓓)   (within (2q + 1) of the graph diameter),
//
// for the chosen trade-off parameter q >= 1. (Lemma 2.4 gives the weight
// bound exactly; the depth constant follows the classical analysis — the
// paper states q+1 for the breakpoint segment plus the root path, which
// telescopes to at most 2q+1 against 𝓓.)
//
// The construction is the algorithm of Figure 5: walk the Euler tour of
// an MST, place a breakpoint whenever the accumulated tour distance
// exceeds q times the shortest-path-tree distance, graft the SPT paths
// between consecutive breakpoints onto the MST, and return a shortest
// path tree of the resulting subgraph.
package slt

import (
	"fmt"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Info reports the internals of one SLT construction.
type Info struct {
	// Breakpoints are the Euler-tour positions where SPT paths were
	// grafted (the B_i of §2.2, step 4).
	Breakpoints []int
	// Tour is the Euler tour of the MST (the line L).
	Tour []graph.NodeID
	// GPrime is the subgraph G' = T_M ∪ grafted paths.
	GPrime *graph.Graph
}

// Build constructs a shallow-light tree of g rooted at v0 with trade-off
// parameter q >= 1.
func Build(g *graph.Graph, v0 graph.NodeID, q int64) (*graph.Tree, *Info, error) {
	if q < 1 {
		return nil, nil, fmt.Errorf("slt: q must be >= 1, got %d", q)
	}
	if !g.Connected() {
		return nil, nil, fmt.Errorf("slt: graph is disconnected")
	}
	tm := graph.PrimTree(g, v0)
	sp := graph.Dijkstra(g, v0)
	ts := sp.Tree(g)
	return build(g, v0, q, tm, ts)
}

func build(g *graph.Graph, v0 graph.NodeID, q int64, tm, ts *graph.Tree) (*graph.Tree, *Info, error) {
	info := &Info{Tour: tm.EulerTour()}

	// Line L: lineDist[i] = weighted distance from tour position 0 to
	// position i along the tour (each step is one MST edge).
	tour := info.Tour
	lineDist := make([]int64, len(tour))
	for i := 1; i < len(tour); i++ {
		a, b := tour[i-1], tour[i]
		w := g.Weight(a, b)
		lineDist[i] = lineDist[i-1] + w
	}

	// Edges of G': start from the MST.
	keep := make(map[[2]graph.NodeID]bool)
	addEdge := func(u, v graph.NodeID) {
		if u > v {
			u, v = v, u
		}
		keep[[2]graph.NodeID{u, v}] = true
	}
	for _, e := range tm.Edges() {
		addEdge(e.U, e.V)
	}
	addPath := func(path []graph.NodeID) {
		for i := 1; i < len(path); i++ {
			addEdge(path[i-1], path[i])
		}
	}
	// tsPath returns the vertices of Path(x, y, Ts): up from both ends
	// to the lowest common ancestor.
	depth := ts.Depths()
	tsPath := func(x, y graph.NodeID) []graph.NodeID {
		var up []graph.NodeID
		var down []graph.NodeID
		for x != y {
			if depth[x] >= depth[y] && x != ts.Root {
				up = append(up, x)
				x = ts.Parent[x]
			} else {
				down = append(down, y)
				y = ts.Parent[y]
			}
		}
		up = append(up, x)
		for i := len(down) - 1; i >= 0; i-- {
			up = append(up, down[i])
		}
		return up
	}
	tsDist := func(x, y graph.NodeID) int64 { return ts.TreeDist(x, y) }

	// Breakpoint scan (§2.2 step 4 / Figure 5).
	info.Breakpoints = []int{0}
	x := 0
	for y := 1; y < len(tour); y++ {
		if lineDist[y]-lineDist[x] > q*tsDist(tour[x], tour[y]) {
			addPath(tsPath(tour[x], tour[y]))
			info.Breakpoints = append(info.Breakpoints, y)
			x = y
		}
	}

	// G' and the final shortest path tree rooted at v0.
	gp := g.Subgraph(func(e graph.Edge) bool {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		return keep[[2]graph.NodeID{u, v}]
	})
	info.GPrime = gp
	t := graph.Dijkstra(gp, v0).Tree(g)
	if !t.Spanning() {
		return nil, nil, fmt.Errorf("slt: internal error: G' does not span")
	}
	return t, info, nil
}

// WeightBound returns the Lemma 2.4 bound (1 + 2/q)·𝓥, rounded up.
func WeightBound(q, mstWeight int64) int64 {
	return mstWeight + (2*mstWeight+q-1)/q
}

// DepthBound returns the conservative Lemma 2.5 depth bound (2q+1)·𝓓.
func DepthBound(q, diam int64) int64 {
	return (2*q + 1) * diam
}

// IsShallowLight verifies both SLT bounds for a tree built with
// parameter q.
func IsShallowLight(g *graph.Graph, t *graph.Tree, q int64) bool {
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)
	return t.Weight() <= WeightBound(q, vv) && t.Height() <= DepthBound(q, dd)
}

// DistributedResult is the outcome of the distributed construction.
type DistributedResult struct {
	Tree *graph.Tree
	Info *Info
	// Stats aggregates the three distributed stages: MSTcentr,
	// SPTcentr, and the final SPTcentr on G' (Thm 2.7: O(𝓥·n²)
	// communication, O(𝓓·n²) time overall).
	Stats sim.Stats
}

// RunDistributed executes the distributed SLT construction of Theorem
// 2.7 on the simulator:
//
//  1. algorithm MSTcentr builds T_M (O(n𝓥) communication);
//  2. algorithm SPTcentr builds T_s (O(n·w(SPT)) = O(n²𝓥));
//  3. the root — which, by the full-information invariant of §6.3/6.4,
//     knows both trees entirely — computes the Euler tour, breakpoints
//     and G' locally at no communication cost;
//  4. algorithm SPTcentr restricted to G' produces the final tree.
func RunDistributed(g *graph.Graph, v0 graph.NodeID, q int64, opts ...sim.Option) (*DistributedResult, error) {
	if q < 1 {
		return nil, fmt.Errorf("slt: q must be >= 1, got %d", q)
	}
	mstRes, err := basic.RunMSTCentr(g, v0, opts...)
	if err != nil {
		return nil, fmt.Errorf("slt: MST stage: %w", err)
	}
	sptRes, err := basic.RunSPTCentr(g, v0, opts...)
	if err != nil {
		return nil, fmt.Errorf("slt: SPT stage: %w", err)
	}
	tm := mstRes.Tree(g, v0)
	ts := sptRes.Tree(g, v0)
	_, info, err := build(g, v0, q, tm, ts)
	if err != nil {
		return nil, err
	}
	finalRes, err := basic.RunSPTCentr(info.GPrime, v0, opts...)
	if err != nil {
		return nil, fmt.Errorf("slt: final SPT stage: %w", err)
	}
	finalTree := finalRes.Tree(info.GPrime, v0)

	res := &DistributedResult{Tree: finalTree, Info: info}
	for _, s := range []*sim.Stats{mstRes.Stats, sptRes.Stats, finalRes.Stats} {
		res.Stats.Messages += s.Messages
		res.Stats.Comm += s.Comm
		res.Stats.FinishTime += s.FinishTime // stages run sequentially
	}
	return res, nil
}
