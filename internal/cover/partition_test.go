package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

func checkPartition(t *testing.T, g *graph.Graph, k int) *Partition {
	t.Helper()
	p := NewPartition(g, k)
	n := g.N()
	// Every vertex in exactly one cluster.
	for v := 0; v < n; v++ {
		c := p.ClusterOf[v]
		if c < 0 || c >= p.NumClusters() {
			t.Fatalf("vertex %d unassigned", v)
		}
		if !p.Trees[c].Contains(graph.NodeID(v)) {
			t.Fatalf("vertex %d not in its cluster tree %d", v, c)
		}
	}
	// Trees are disjoint and their sizes sum to n.
	total := 0
	for _, tr := range p.Trees {
		total += tr.Size()
	}
	if total != n {
		t.Fatalf("cluster tree sizes sum to %d, want %d", total, n)
	}
	// Hop depth <= k.
	if d := p.MaxHopDepth(); d > k {
		t.Fatalf("MaxHopDepth = %d > k = %d", d, k)
	}
	// Preferred edge count <= n^{1+1/k} (the γ bound).
	bound := math.Pow(float64(n), 1+1/float64(k))
	if float64(len(p.Preferred)) > bound {
		t.Fatalf("preferred edges %d > n^{1+1/k} = %.1f", len(p.Preferred), bound)
	}
	// Preferred edges connect distinct clusters, one per pair.
	seen := make(map[[2]int]bool)
	for _, e := range p.Preferred {
		cu, cv := p.ClusterOf[e.U], p.ClusterOf[e.V]
		if cu == cv {
			t.Fatalf("preferred edge %v inside one cluster", e)
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		if seen[[2]int{cu, cv}] {
			t.Fatalf("duplicate preferred edge for pair (%d,%d)", cu, cv)
		}
		seen[[2]int{cu, cv}] = true
	}
	// Every neighboring cluster pair has a preferred edge.
	for _, e := range g.Edges() {
		cu, cv := p.ClusterOf[e.U], p.ClusterOf[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		if !seen[[2]int{cu, cv}] {
			t.Fatalf("neighboring clusters (%d,%d) lack a preferred edge", cu, cv)
		}
	}
	return p
}

func TestPartitionGrid(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		checkPartition(t, graph.Grid(6, 6, graph.UnitWeights()), k)
	}
}

func TestPartitionRandom(t *testing.T) {
	g := graph.RandomConnected(60, 150, graph.UniformWeights(20, 4), 4)
	for _, k := range []int{1, 2, 4} {
		checkPartition(t, g, k)
	}
}

func TestPartitionExtremes(t *testing.T) {
	g := graph.Path(12, graph.UnitWeights())
	// k = 1: growth factor n, clusters are single BFS layers ≈ stars.
	p1 := checkPartition(t, g, 1)
	// Large k: growth factor → 1, one cluster swallows the whole path.
	pBig := checkPartition(t, g, 100)
	if pBig.NumClusters() > p1.NumClusters() {
		t.Fatalf("larger k should give fewer clusters: k=100 gives %d, k=1 gives %d",
			pBig.NumClusters(), p1.NumClusters())
	}
	if pBig.NumClusters() != 1 {
		t.Fatalf("k=100 on a path should give one cluster, got %d", pBig.NumClusters())
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(9, seed), seed)
		k := 1 + rng.Intn(5)
		p := NewPartition(g, k)
		if p.MaxHopDepth() > k {
			return false
		}
		total := 0
		for _, tr := range p.Trees {
			total += tr.Size()
		}
		return total == n && p.TreeEdgeTotal() == n-p.NumClusters()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
