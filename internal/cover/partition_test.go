package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

func checkPartition(t *testing.T, g *graph.Graph, k int) *Partition {
	t.Helper()
	p := NewPartition(g, k)
	n := g.N()
	// Every vertex in exactly one cluster.
	for v := 0; v < n; v++ {
		c := p.ClusterOf[v]
		if c < 0 || c >= p.NumClusters() {
			t.Fatalf("vertex %d unassigned", v)
		}
		if !p.Trees[c].Contains(graph.NodeID(v)) {
			t.Fatalf("vertex %d not in its cluster tree %d", v, c)
		}
	}
	// Trees are disjoint and their sizes sum to n.
	total := 0
	for _, tr := range p.Trees {
		total += tr.Size()
	}
	if total != n {
		t.Fatalf("cluster tree sizes sum to %d, want %d", total, n)
	}
	// Hop depth <= k.
	if d := p.MaxHopDepth(); d > k {
		t.Fatalf("MaxHopDepth = %d > k = %d", d, k)
	}
	// Preferred edge count <= n^{1+1/k} (the γ bound).
	bound := math.Pow(float64(n), 1+1/float64(k))
	if float64(len(p.Preferred)) > bound {
		t.Fatalf("preferred edges %d > n^{1+1/k} = %.1f", len(p.Preferred), bound)
	}
	// Preferred edges connect distinct clusters, one per pair.
	seen := make(map[[2]int]bool)
	for _, e := range p.Preferred {
		cu, cv := p.ClusterOf[e.U], p.ClusterOf[e.V]
		if cu == cv {
			t.Fatalf("preferred edge %v inside one cluster", e)
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		if seen[[2]int{cu, cv}] {
			t.Fatalf("duplicate preferred edge for pair (%d,%d)", cu, cv)
		}
		seen[[2]int{cu, cv}] = true
	}
	// Every neighboring cluster pair has a preferred edge.
	for _, e := range g.Edges() {
		cu, cv := p.ClusterOf[e.U], p.ClusterOf[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		if !seen[[2]int{cu, cv}] {
			t.Fatalf("neighboring clusters (%d,%d) lack a preferred edge", cu, cv)
		}
	}
	return p
}

func TestPartitionGrid(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		checkPartition(t, graph.Grid(6, 6, graph.UnitWeights()), k)
	}
}

func TestPartitionRandom(t *testing.T) {
	g := graph.RandomConnected(60, 150, graph.UniformWeights(20, 4), 4)
	for _, k := range []int{1, 2, 4} {
		checkPartition(t, g, k)
	}
}

func TestPartitionExtremes(t *testing.T) {
	g := graph.Path(12, graph.UnitWeights())
	// k = 1: growth factor n, clusters are single BFS layers ≈ stars.
	p1 := checkPartition(t, g, 1)
	// Large k: growth factor → 1, one cluster swallows the whole path.
	pBig := checkPartition(t, g, 100)
	if pBig.NumClusters() > p1.NumClusters() {
		t.Fatalf("larger k should give fewer clusters: k=100 gives %d, k=1 gives %d",
			pBig.NumClusters(), p1.NumClusters())
	}
	if pBig.NumClusters() != 1 {
		t.Fatalf("k=100 on a path should give one cluster, got %d", pBig.NumClusters())
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(9, seed), seed)
		k := 1 + rng.Intn(5)
		p := NewPartition(g, k)
		if p.MaxHopDepth() > k {
			return false
		}
		total := 0
		for _, tr := range p.Trees {
			total += tr.Size()
		}
		return total == n && p.TreeEdgeTotal() == n-p.NumClusters()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionGrowthBalance characterizes the cluster-size
// distribution NewPartitionGrowth produces on random connected graphs —
// the input the sharded engine's partitioner (internal/sim) bin-packs
// onto workers. Two regimes, both pinned here because the engine's
// fallback logic depends on them:
//
//   - Sparse (m ~ 1.5n): the BFS growing stops early and often, so
//     there are plenty of clusters and the largest stays a bounded
//     fraction of the graph — LPT packing onto a handful of shards is
//     balanced.
//   - Dense (m >> n): the diameter is tiny, the first cluster swallows
//     a majority of the vertices, and no packing of whole clusters can
//     balance — the engine must take its contiguous-split fallback
//     (exercised by TestShardedDegeneratePartitions in internal/sim).
func TestPartitionGrowthBalance(t *testing.T) {
	largest := func(p *Partition) int {
		size := make([]int, p.NumClusters())
		for _, cl := range p.ClusterOf {
			size[cl]++
		}
		max := 0
		for _, s := range size {
			if s > max {
				max = s
			}
		}
		return max
	}

	sparse := []struct {
		n, m int
		seed int64
	}{
		{n: 60, m: 90, seed: 1},
		{n: 120, m: 180, seed: 2},
		{n: 200, m: 300, seed: 3},
		{n: 300, m: 450, seed: 4},
		{n: 400, m: 520, seed: 5},
	}
	for _, c := range sparse {
		g := graph.RandomConnected(c.n, c.m, graph.UniformWeights(64, c.seed), c.seed)
		p := NewPartitionGrowth(g, 2)
		if nc := p.NumClusters(); nc < 8 {
			t.Errorf("sparse n=%d m=%d seed=%d: %d clusters, want >= 8 for sharding", c.n, c.m, c.seed, nc)
		}
		if max := largest(p); 5*max > 3*c.n {
			t.Errorf("sparse n=%d m=%d seed=%d: largest cluster %d of %d vertices — too dominant to pack", c.n, c.m, c.seed, max, c.n)
		}
	}

	dense := []struct {
		n, m int
		seed int64
	}{
		{n: 60, m: 180, seed: 1},
		{n: 200, m: 800, seed: 3},
	}
	for _, c := range dense {
		g := graph.RandomConnected(c.n, c.m, graph.UniformWeights(64, c.seed), c.seed)
		p := NewPartitionGrowth(g, 2)
		if max := largest(p); 2*max <= c.n {
			t.Errorf("dense n=%d m=%d seed=%d: largest cluster %d of %d — expected a dominant cluster (fallback regime)", c.n, c.m, c.seed, max, c.n)
		}
	}
}

// ClusterGrowth is NewPartitionGrowth minus the tree/preferred-edge
// materialization; the assignment itself must be bit-for-bit the same
// map, cluster indices included.
func TestClusterGrowthMatchesPartition(t *testing.T) {
	for _, f := range []int{2, 3} {
		for _, tc := range []struct{ n, m int }{{1, 0}, {2, 1}, {60, 90}, {200, 300}, {200, 800}, {317, 1000}} {
			g := graph.RandomConnected(tc.n, tc.m, graph.UniformWeights(32, int64(tc.n)), int64(7*tc.n+f))
			want := NewPartitionGrowth(g, f)
			got, nc := ClusterGrowth(g, f)
			if nc != want.NumClusters() {
				t.Fatalf("f=%d n=%d m=%d: %d clusters, partition has %d", f, tc.n, tc.m, nc, want.NumClusters())
			}
			for v, c := range got {
				if c != want.ClusterOf[v] {
					t.Fatalf("f=%d n=%d m=%d: vertex %d in cluster %d, partition says %d", f, tc.n, tc.m, v, c, want.ClusterOf[v])
				}
			}
		}
	}
}
