package cover

import (
	"math"
	"sort"

	"costsense/internal/graph"
)

// Partition is the cluster partition underlying synchronizer γ of
// [Awe85a]: a partition of V into disjoint clusters, each with a rooted
// spanning tree of hop-depth at most k, plus one "preferred" edge
// between every pair of neighboring clusters. The classical guarantees
// are Σ tree sizes = n and at most n^{1+1/k} preferred edges.
type Partition struct {
	// ClusterOf maps each vertex to its cluster index.
	ClusterOf []int
	// Trees holds one rooted spanning tree per cluster, in host IDs.
	Trees []*graph.Tree
	// Preferred holds the minimum-weight edge between each pair of
	// neighboring clusters.
	Preferred []graph.Edge
}

// NewPartition builds the synchronizer-γ partition with parameter
// k >= 1 by greedy BFS cluster growing: a cluster keeps absorbing its
// next BFS layer while that layer would grow it by a factor of at least
// n^(1/k); this bounds the hop-radius of every cluster by k.
func NewPartition(g *graph.Graph, k int) *Partition {
	growth := math.Pow(float64(g.N()), 1/float64(k))
	return newPartitionGrowth(g, growth)
}

// NewPartitionGrowth builds the partition with an explicit growth
// factor f >= 2 — the parametrization of [Awe85a]'s synchronizer γ:
// cluster hop-radius is at most log_f(n), while the per-pulse
// communication grows with f. Larger f therefore trades communication
// for time, which is the k knob of the paper's γ_w (Lemma 4.8:
// C = O(kn·logW), T = O(log_k n·logW)).
func NewPartitionGrowth(g *graph.Graph, f int) *Partition {
	if f < 2 {
		panic("cover: NewPartitionGrowth needs factor >= 2")
	}
	return newPartitionGrowth(g, float64(f))
}

func newPartitionGrowth(g *graph.Graph, growth float64) *Partition {
	n := g.N()
	p := &Partition{ClusterOf: make([]int, n)}
	for i := range p.ClusterOf {
		p.ClusterOf[i] = -1
	}
	if n == 0 {
		return p
	}

	for start := 0; start < n; start++ {
		if p.ClusterOf[start] != -1 {
			continue
		}
		idx := len(p.Trees)
		parent := make([]graph.NodeID, n)
		for i := range parent {
			parent[i] = -1
		}
		cluster := []graph.NodeID{graph.NodeID(start)}
		p.ClusterOf[start] = idx
		frontier := []graph.NodeID{graph.NodeID(start)}
		for {
			// Next BFS layer among unassigned vertices.
			var layer []graph.NodeID
			layerParent := make(map[graph.NodeID]graph.NodeID)
			for _, v := range frontier {
				for _, h := range g.Adj(v) {
					if p.ClusterOf[h.To] == -1 {
						if _, seen := layerParent[h.To]; !seen {
							layerParent[h.To] = v
							layer = append(layer, h.To)
						}
					}
				}
			}
			if len(layer) == 0 {
				break
			}
			if float64(len(cluster)+len(layer)) < growth*float64(len(cluster)) {
				break // growth too slow: stop expanding this cluster
			}
			sort.Slice(layer, func(i, j int) bool { return layer[i] < layer[j] })
			for _, v := range layer {
				p.ClusterOf[v] = idx
				parent[v] = layerParent[v]
				cluster = append(cluster, v)
			}
			frontier = layer
		}
		p.Trees = append(p.Trees, graph.NewTree(g, graph.NodeID(start), parent))
	}

	// Preferred edges: lightest edge between each neighboring cluster
	// pair, ties broken by edge order.
	best := make(map[[2]int]graph.Edge)
	for _, e := range g.Edges() {
		cu, cv := p.ClusterOf[e.U], p.ClusterOf[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		key := [2]int{cu, cv}
		if cur, ok := best[key]; !ok || e.W < cur.W {
			best[key] = e
		}
	}
	keys := make([][2]int, 0, len(best))
	//costsense:nondet-ok keys are sorted immediately below before any use
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		p.Preferred = append(p.Preferred, best[k])
	}
	return p
}

// ClusterGrowth runs the same greedy BFS cluster growing as
// NewPartitionGrowth(g, f) but materializes only the vertex→cluster
// assignment: no spanning trees, no preferred edges. The full
// Partition costs Θ(n·#clusters) just to allocate and zero one
// tree's worth of arrays per cluster, which is quadratic on the
// window-local graphs the sharded engine partitions; this walk is
// O(n+m) total. The assignment is identical to
// NewPartitionGrowth(g, f).ClusterOf (tested).
func ClusterGrowth(g *graph.Graph, f int) (clusterOf []int, numClusters int) {
	if f < 2 {
		panic("cover: ClusterGrowth needs factor >= 2")
	}
	n := g.N()
	clusterOf = make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	inLayer := make([]bool, n)
	var layer, frontier []graph.NodeID
	idx := 0
	for start := 0; start < n; start++ {
		if clusterOf[start] != -1 {
			continue
		}
		clusterOf[start] = idx
		size := 1
		frontier = append(frontier[:0], graph.NodeID(start))
		for {
			// Next BFS layer among unassigned vertices, deduplicated
			// through the reusable inLayer scratch instead of a
			// per-layer map.
			layer = layer[:0]
			for _, v := range frontier {
				for _, h := range g.Adj(v) {
					if clusterOf[h.To] == -1 && !inLayer[h.To] {
						inLayer[h.To] = true
						layer = append(layer, h.To)
					}
				}
			}
			for _, v := range layer {
				inLayer[v] = false
			}
			if len(layer) == 0 {
				break
			}
			if float64(size+len(layer)) < float64(f)*float64(size) {
				break // growth too slow: stop expanding this cluster
			}
			for _, v := range layer {
				clusterOf[v] = idx
			}
			size += len(layer)
			frontier = append(frontier[:0], layer...)
		}
		idx++
	}
	return clusterOf, idx
}

// NumClusters returns the number of clusters.
func (p *Partition) NumClusters() int { return len(p.Trees) }

// MaxHopDepth returns the maximum hop (unweighted) depth over cluster
// trees — bounded by k for NewPartition(g, k).
func (p *Partition) MaxHopDepth() int {
	m := 0
	for _, t := range p.Trees {
		var rec func(v graph.NodeID, d int)
		rec = func(v graph.NodeID, d int) {
			if d > m {
				m = d
			}
			for _, c := range t.Children(v) {
				rec(c, d+1)
			}
		}
		rec(t.Root, 0)
	}
	return m
}

// TreeEdgeTotal returns the total number of tree edges (= n − #clusters).
func (p *Partition) TreeEdgeTotal() int {
	s := 0
	for _, t := range p.Trees {
		s += t.Size() - 1
	}
	return s
}
