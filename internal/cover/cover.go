// Package cover implements the sparse-cover machinery the paper imports
// from [AP91] ("Routing with polynomial communication-space trade-off")
// and [AP90b] ("Sparse partitions"):
//
//   - cluster and cover primitives (§1.2 of the paper),
//   - the cover-coarsening algorithm of Theorem 1.1,
//   - the tree edge-cover of Definition 3.1 / Lemma 3.2 used by clock
//     synchronizer γ*,
//   - the cluster partition used by network synchronizer γ [Awe85a].
package cover

import (
	"fmt"
	"math"
	"sort"

	"costsense/internal/graph"
)

// Cluster is a set of vertices S such that G(S) is connected.
type Cluster []graph.NodeID

// contains reports membership; clusters are small, so a linear scan is
// used at call sites that do not hold an index.
func (c Cluster) contains(v graph.NodeID) bool {
	for _, u := range c {
		if u == v {
			return true
		}
	}
	return false
}

// normalize sorts and deduplicates the cluster in place.
func (c Cluster) normalize() Cluster {
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	var last graph.NodeID = -1
	for _, v := range c {
		if v != last {
			out = append(out, v)
		}
		last = v
	}
	return out
}

// Radius returns Rad(S) = min_{v∈S} Rad(v, G(S)), the radius of the
// subgraph induced by the cluster, together with a center vertex
// realizing it. It returns (-1, -1) if G(S) is disconnected (not a legal
// cluster).
func (c Cluster) Radius(g *graph.Graph) (int64, graph.NodeID) {
	sub, orig := g.InducedSubgraph(c)
	r, center := graph.Radius(sub)
	if r == graph.Unreachable {
		return -1, -1
	}
	return r, orig[center]
}

// IsCluster reports whether G(S) is connected and S is nonempty.
func (c Cluster) IsCluster(g *graph.Graph) bool {
	if len(c) == 0 {
		return false
	}
	sub, _ := g.InducedSubgraph(c)
	return sub.Connected()
}

// Cover is a collection of clusters whose union is V.
type Cover []Cluster

// IsCover reports whether the union of the clusters is all of V.
func (s Cover) IsCover(n int) bool {
	seen := make([]bool, n)
	for _, c := range s {
		for _, v := range c {
			if int(v) >= n {
				return false
			}
			seen[v] = true
		}
	}
	for _, ok := range seen {
		if !ok {
			return false
		}
	}
	return true
}

// Radius returns Rad(S) = max_i Rad(S_i).
func (s Cover) Radius(g *graph.Graph) int64 {
	var m int64
	for _, c := range s {
		r, _ := c.Radius(g)
		if r < 0 {
			return -1
		}
		if r > m {
			m = r
		}
	}
	return m
}

// MaxDegree returns Δ(S) = max_v deg_S(v), the maximum number of
// clusters any vertex occurs in.
func (s Cover) MaxDegree(n int) int {
	deg := make([]int, n)
	m := 0
	for _, c := range s {
		for _, v := range c {
			deg[v]++
			if deg[v] > m {
				m = deg[v]
			}
		}
	}
	return m
}

// Subsumes reports whether for every S_i in s there is a T_j in t with
// S_i ⊆ T_j.
func Subsumes(t, s Cover, n int) bool {
	// Index t's clusters per vertex to avoid quadratic blowup.
	in := make([][]int, n)
	for j, c := range t {
		for _, v := range c {
			in[v] = append(in[v], j)
		}
	}
	for _, si := range s {
		if len(si) == 0 {
			continue
		}
		found := false
		for _, j := range in[si[0]] {
			if clusterContainsAll(t[j], si) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func clusterContainsAll(big, small Cluster) bool {
	set := make(map[graph.NodeID]bool, len(big))
	for _, v := range big {
		set[v] = true
	}
	for _, v := range small {
		if !set[v] {
			return false
		}
	}
	return true
}

// Coarsen implements Theorem 1.1 [AP91]: given a graph G, an initial
// cover S and an integer k >= 1, it constructs a cover T such that
//
//	(1) T subsumes S,
//	(2) Rad(T) <= (2k+1)·Rad(S)   (the paper states 2k−1; the classical
//	    merging argument yields 2k+1 with Rad(S) measured on induced
//	    subgraphs, which is what the downstream bounds need), and
//	(3) Δ(T) = O(k·|S|^{1/k}).
//
// The construction is the Awerbuch–Peleg coalescing procedure: repeatedly
// grow a kernel of clusters by swallowing every remaining cluster that
// intersects it, stopping as soon as one growth step multiplies the
// kernel by less than |S|^{1/k}; the swallowed kernel is removed and its
// union (including the final fringe) becomes an output cluster.
func Coarsen(g *graph.Graph, s Cover, k int) Cover {
	if k < 1 {
		panic(fmt.Sprintf("cover: Coarsen needs k >= 1, got %d", k))
	}
	if len(s) == 0 {
		return nil
	}
	threshold := math.Pow(float64(len(s)), 1/float64(k))
	remaining := make(map[int]bool, len(s))
	for i := range s {
		remaining[i] = true
	}
	// memberOf[v] = indices of remaining clusters containing v.
	memberOf := make([][]int, g.N())
	for i, c := range s {
		for _, v := range c {
			memberOf[v] = append(memberOf[v], i)
		}
	}

	var out Cover
	for len(remaining) > 0 {
		// Pick the lowest remaining cluster index for determinism.
		seed := -1
		//costsense:nondet-ok min-reduction over keys; order cannot reach the result
		for i := range remaining {
			if seed < 0 || i < seed {
				seed = i
			}
		}
		z := map[int]bool{seed: true}
		for {
			zPrev := z
			// Y = union of clusters in zPrev.
			inY := make(map[graph.NodeID]bool)
			//costsense:nondet-ok set union; membership is order-independent
			for i := range zPrev {
				for _, v := range s[i] {
					inY[v] = true
				}
			}
			// Z = all remaining clusters intersecting Y.
			z = make(map[int]bool)
			//costsense:nondet-ok set union; membership is order-independent
			for v := range inY {
				for _, i := range memberOf[v] {
					if remaining[i] {
						z[i] = true
					}
				}
			}
			if float64(len(z)) <= threshold*float64(len(zPrev)) {
				// Output cluster: union of the final Z (superset of Y,
				// so every removed cluster is subsumed). Remove only the
				// kernel zPrev; the fringe Z \ zPrev stays for later
				// stages, keeping the degree bound.
				var y Cluster
				//costsense:nondet-ok append order is erased by normalize (sort+dedup) below
				for i := range z {
					y = append(y, s[i]...)
				}
				out = append(out, y.normalize())
				//costsense:nondet-ok deletion of a fixed key set; order cannot reach the result
				for i := range zPrev {
					delete(remaining, i)
				}
				break
			}
		}
	}
	return out
}

// PathCover returns the initial cover S = {Path(u, v, G) : (u, v) ∈ E}
// used by Lemma 3.2: one cluster per network edge, holding the vertices
// of a shortest u–v path. Rad(S) <= d = MaxNeighborDist(G).
func PathCover(g *graph.Graph) Cover {
	sps := make([]*graph.ShortestPaths, g.N())
	s := make(Cover, 0, g.M())
	for _, e := range g.Edges() {
		if sps[e.U] == nil {
			sps[e.U] = graph.Dijkstra(g, e.U)
		}
		path := sps[e.U].PathTo(e.V)
		s = append(s, Cluster(path).normalize())
	}
	return s
}

// SingletonCover returns the trivial cover {{v} : v ∈ V}, radius 0.
func SingletonCover(n int) Cover {
	s := make(Cover, n)
	for v := 0; v < n; v++ {
		s[v] = Cluster{graph.NodeID(v)}
	}
	return s
}

// BallCover returns the cover of all balls of weighted radius rho:
// {B(v, rho) : v ∈ V}.
func BallCover(g *graph.Graph, rho int64) Cover {
	s := make(Cover, g.N())
	for v := 0; v < g.N(); v++ {
		sp := graph.Dijkstra(g, graph.NodeID(v))
		var ball Cluster
		for u, d := range sp.Dist {
			if d != graph.Unreachable && d <= rho {
				ball = append(ball, graph.NodeID(u))
			}
		}
		s[v] = ball.normalize()
	}
	return s
}
