package cover

import (
	"math"

	"costsense/internal/graph"
)

// TreeCover is the tree edge-cover of Definition 3.1: a collection M of
// rooted trees (given in host-graph vertex IDs) such that
//
//	(1) every edge of G appears in at most O(log n) trees of M,
//	(2) the weighted depth of each tree is at most O(log n · d), where
//	    d = MaxNeighborDist(G), and
//	(3) for every edge (u,v) of G, at least one tree contains both u
//	    and v.
type TreeCover struct {
	Trees []*graph.Tree
	// Home[e] is the index of a tree containing both endpoints of the
	// e-th graph edge (property 3).
	Home []int
}

// NewTreeCover constructs a tree edge-cover following Lemma 3.2: apply
// Theorem 1.1 to the initial cover S = {Path(u,v,G) : (u,v) ∈ E} with
// parameter k = ceil(log2 n), then pick a shortest-path spanning tree of
// each output cluster, rooted at the cluster's center.
func NewTreeCover(g *graph.Graph) *TreeCover {
	k := int(math.Ceil(math.Log2(float64(g.N()))))
	if k < 1 {
		k = 1
	}
	return NewTreeCoverK(g, k)
}

// NewTreeCoverK is NewTreeCover with an explicit coarsening parameter,
// exposed for the experiments that sweep k.
func NewTreeCoverK(g *graph.Graph, k int) *TreeCover {
	s := PathCover(g)
	t := Coarsen(g, s, k)

	tc := &TreeCover{Home: make([]int, g.M())}
	for i := range tc.Home {
		tc.Home[i] = -1
	}
	for idx, c := range t {
		sub, orig := g.InducedSubgraph(c)
		_, center := graph.Radius(sub)
		sp := graph.Dijkstra(sub, center)
		// Translate the SPT parent array back to host IDs.
		parent := make([]graph.NodeID, g.N())
		for i := range parent {
			parent[i] = -1
		}
		for v := range sp.Parent {
			if sp.Parent[v] >= 0 {
				parent[orig[v]] = orig[sp.Parent[v]]
			}
		}
		tree := graph.NewTree(g, orig[center], parent)
		tc.Trees = append(tc.Trees, tree)
		// Record this tree as home for every graph edge it covers.
		for eid, e := range g.Edges() {
			if tc.Home[eid] < 0 && tree.Contains(e.U) && tree.Contains(e.V) {
				tc.Home[eid] = idx
			}
		}
		_ = idx
	}
	return tc
}

// MaxEdgeLoad returns the maximum, over graph edges, of the number of
// trees using that edge as a tree edge (property 1 of Def 3.1).
func (tc *TreeCover) MaxEdgeLoad(g *graph.Graph) int {
	load := make(map[[2]graph.NodeID]int)
	for _, t := range tc.Trees {
		for _, e := range t.Edges() {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			load[[2]graph.NodeID{u, v}]++
		}
	}
	m := 0
	//costsense:nondet-ok max-reduction over values; order cannot reach the result
	for _, c := range load {
		if c > m {
			m = c
		}
	}
	return m
}

// MaxVertexLoad returns the maximum number of trees any vertex belongs
// to. Message congestion at a vertex during γ* is proportional to it.
func (tc *TreeCover) MaxVertexLoad(n int) int {
	deg := make([]int, n)
	m := 0
	for _, t := range tc.Trees {
		for _, v := range t.Members() {
			deg[v]++
			if deg[v] > m {
				m = deg[v]
			}
		}
	}
	return m
}

// MaxDepth returns the maximum weighted tree depth (property 2).
func (tc *TreeCover) MaxDepth() int64 {
	var m int64
	for _, t := range tc.Trees {
		if h := t.Height(); h > m {
			m = h
		}
	}
	return m
}

// CoversAllEdges reports property 3: every graph edge has a home tree.
func (tc *TreeCover) CoversAllEdges() bool {
	for _, h := range tc.Home {
		if h < 0 {
			return false
		}
	}
	return true
}

// Neighboring reports whether trees i and j share at least one vertex
// (the γ* notion of neighboring trees).
func (tc *TreeCover) Neighboring(i, j int) bool {
	for _, v := range tc.Trees[i].Members() {
		if tc.Trees[j].Contains(v) {
			return true
		}
	}
	return false
}
