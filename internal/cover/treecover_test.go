package cover

import (
	"math"
	"testing"

	"costsense/internal/graph"
)

func checkTreeCover(t *testing.T, g *graph.Graph) *TreeCover {
	t.Helper()
	tc := NewTreeCover(g)
	n := g.N()
	logn := math.Log2(float64(n))
	if logn < 1 {
		logn = 1
	}
	// Property 3: every edge has a home tree.
	if !tc.CoversAllEdges() {
		t.Fatal("tree cover misses some edge")
	}
	for eid, e := range g.Edges() {
		tr := tc.Trees[tc.Home[eid]]
		if !tr.Contains(e.U) || !tr.Contains(e.V) {
			t.Fatalf("home tree of edge %v does not contain both endpoints", e)
		}
	}
	// Property 2: depth O(d log n). Constant 4 covers the 2k+1 radius
	// slack of Coarsen.
	d := graph.MaxNeighborDist(g)
	if got, bound := tc.MaxDepth(), int64(4*logn)*d+1; got > bound {
		t.Fatalf("MaxDepth = %d > 4·d·log n = %d", got, bound)
	}
	// Property 1: edge load O(log n); vertex load likewise.
	if got := tc.MaxEdgeLoad(g); float64(got) > 6*logn {
		t.Fatalf("MaxEdgeLoad = %d > 6 log n = %.1f", got, 6*logn)
	}
	if got := tc.MaxVertexLoad(n); float64(got) > 8*logn {
		t.Fatalf("MaxVertexLoad = %d > 8 log n = %.1f", got, 8*logn)
	}
	return tc
}

func TestTreeCoverHeavyChordRing(t *testing.T) {
	checkTreeCover(t, graph.HeavyChordRing(40, 1000))
}

func TestTreeCoverGrid(t *testing.T) {
	checkTreeCover(t, graph.Grid(6, 6, graph.UniformWeights(10, 2)))
}

func TestTreeCoverRandom(t *testing.T) {
	checkTreeCover(t, graph.RandomConnected(50, 120, graph.UniformWeights(30, 9), 9))
}

func TestTreeCoverNeighboring(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights())
	tc := NewTreeCover(g)
	// On a path, consecutive trees must overlap somewhere; sanity-check
	// the Neighboring predicate agrees with shared membership.
	for i := range tc.Trees {
		for j := range tc.Trees {
			shared := false
			for _, v := range tc.Trees[i].Members() {
				if tc.Trees[j].Contains(v) {
					shared = true
					break
				}
			}
			if tc.Neighboring(i, j) != shared {
				t.Fatalf("Neighboring(%d,%d) = %v, membership says %v", i, j, tc.Neighboring(i, j), shared)
			}
		}
	}
}

func TestTreeCoverDepthBeatsW(t *testing.T) {
	// The point of γ*: on graphs with d << W, tree depth O(d log n)
	// must be far below W.
	g := graph.HeavyChordRing(64, 100000)
	tc := NewTreeCover(g)
	if tc.MaxDepth() >= g.MaxWeight() {
		t.Fatalf("tree cover depth %d should be << W = %d", tc.MaxDepth(), g.MaxWeight())
	}
}
