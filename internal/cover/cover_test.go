package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

func TestClusterRadius(t *testing.T) {
	g := graph.Path(5, graph.ConstWeights(2))
	c := Cluster{0, 1, 2, 3, 4}
	r, center := c.Radius(g)
	if r != 4 || center != 2 {
		t.Fatalf("Radius = %d at %d, want 4 at 2", r, center)
	}
	// Disconnected set is not a cluster.
	bad := Cluster{0, 4}
	if r, _ := bad.Radius(g); r != -1 {
		t.Fatalf("disconnected cluster radius = %d, want -1", r)
	}
	if bad.IsCluster(g) {
		t.Error("disconnected set reported as cluster")
	}
	if !c.IsCluster(g) {
		t.Error("full path not reported as cluster")
	}
}

func TestCoverBasics(t *testing.T) {
	g := graph.Ring(6, graph.UnitWeights())
	s := Cover{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}}
	if !s.IsCover(6) {
		t.Fatal("should be a cover")
	}
	if s.MaxDegree(6) != 2 {
		t.Fatalf("MaxDegree = %d, want 2", s.MaxDegree(6))
	}
	if r := s.Radius(g); r != 1 {
		t.Fatalf("Radius = %d, want 1", r)
	}
	missing := Cover{{0, 1}, {2, 3}}
	if missing.IsCover(6) {
		t.Fatal("incomplete cover reported complete")
	}
}

func TestSubsumes(t *testing.T) {
	s := Cover{{0, 1}, {2, 3}}
	big := Cover{{0, 1, 2, 3}}
	if !Subsumes(big, s, 4) {
		t.Error("big should subsume s")
	}
	partial := Cover{{0, 1, 2}}
	if Subsumes(partial, s, 4) {
		t.Error("partial should not subsume s (misses {2,3})")
	}
	if !Subsumes(s, s, 4) {
		t.Error("cover should subsume itself")
	}
}

func TestSingletonAndBallCovers(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights())
	s := SingletonCover(5)
	if !s.IsCover(5) || s.Radius(g) != 0 {
		t.Fatal("singleton cover wrong")
	}
	b := BallCover(g, 1)
	if !b.IsCover(5) {
		t.Fatal("ball cover should cover V")
	}
	// Ball around vertex 2 with rho=1 is {1,2,3}.
	if len(b[2]) != 3 {
		t.Fatalf("ball(2,1) = %v, want 3 vertices", b[2])
	}
	if r := b.Radius(g); r > 1 {
		t.Fatalf("ball cover radius = %d, want <= 1", r)
	}
}

func TestPathCover(t *testing.T) {
	g := graph.HeavyChordRing(10, 100)
	s := PathCover(g)
	if len(s) != g.M() {
		t.Fatalf("PathCover has %d clusters, want m=%d", len(s), g.M())
	}
	if !s.IsCover(g.N()) {
		t.Fatal("path cover must cover V (every vertex has an edge)")
	}
	d := graph.MaxNeighborDist(g)
	if r := s.Radius(g); r > d {
		t.Fatalf("Rad(PathCover) = %d > d = %d", r, d)
	}
}

// checkCoarsen validates the three properties of Theorem 1.1 on one
// instance, with the constant-factor slack documented in Coarsen.
func checkCoarsen(t *testing.T, g *graph.Graph, s Cover, k int) {
	t.Helper()
	out := Coarsen(g, s, k)
	n := g.N()
	if !out.IsCover(n) {
		t.Fatal("coarsened cover does not cover V")
	}
	if !Subsumes(out, s, n) {
		t.Fatal("coarsened cover does not subsume input")
	}
	radS := s.Radius(g)
	radT := out.Radius(g)
	if radT < 0 {
		t.Fatal("output cluster disconnected")
	}
	bound := int64(2*k+1) * radS
	if radS == 0 {
		bound = 0
	}
	if radT > bound {
		t.Fatalf("Rad(T) = %d > (2k+1)Rad(S) = %d (k=%d, Rad(S)=%d)", radT, bound, k, radS)
	}
	// Degree: Δ(T) = O(k·|S|^{1/k}); allow constant 4.
	degBound := 4 * float64(k) * math.Pow(float64(len(s)), 1/float64(k))
	if deg := out.MaxDegree(n); float64(deg) > degBound+1 {
		t.Fatalf("Δ(T) = %d exceeds 4k|S|^{1/k} = %.1f", deg, degBound)
	}
}

func TestCoarsenSingletons(t *testing.T) {
	g := graph.Grid(5, 5, graph.UnitWeights())
	for _, k := range []int{1, 2, 3, 5} {
		checkCoarsen(t, g, SingletonCover(g.N()), k)
	}
}

func TestCoarsenBalls(t *testing.T) {
	g := graph.RandomConnected(40, 90, graph.UniformWeights(8, 5), 5)
	for _, k := range []int{1, 2, 3} {
		checkCoarsen(t, g, BallCover(g, 10), k)
	}
}

func TestCoarsenPathCover(t *testing.T) {
	g := graph.HeavyChordRing(30, 64)
	for _, k := range []int{2, 3, 5} {
		checkCoarsen(t, g, PathCover(g), k)
	}
}

func TestCoarsenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(16, seed), seed)
		k := 1 + rng.Intn(4)
		s := BallCover(g, 1+rng.Int63n(20))
		out := Coarsen(g, s, k)
		if !out.IsCover(n) || !Subsumes(out, s, n) {
			return false
		}
		radS, radT := s.Radius(g), out.Radius(g)
		if radT < 0 {
			return false
		}
		if radS == 0 {
			return radT == 0
		}
		return radT <= int64(2*k+1)*radS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenDegreeTradeoff(t *testing.T) {
	// Theorem 1.1's tradeoff: Δ(T) = O(k·|S|^{1/k}) shrinks as k grows
	// (paying in radius). With k ~ log|S| the kernel keeps growing until
	// it stabilizes, so the degree must drop far below |S|.
	g := graph.Grid(6, 6, graph.UnitWeights())
	s := BallCover(g, 2)
	kBig := int(math.Ceil(math.Log2(float64(len(s)))))
	degBig := Coarsen(g, s, kBig).MaxDegree(g.N())
	if float64(degBig) > 4*float64(kBig)*math.Pow(float64(len(s)), 1/float64(kBig)) {
		t.Fatalf("Δ(T) with k=log|S| = %d, want O(log|S|)", degBig)
	}
	deg1 := Coarsen(g, s, 1).MaxDegree(g.N())
	if degBig > deg1 {
		t.Fatalf("degree should not grow with k: k=%d gives %d, k=1 gives %d", kBig, degBig, deg1)
	}
}
