package spt

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/synch"
)

// Result is the outcome of a distributed SPT construction.
type Result struct {
	// Dist[v] is the weighted distance from the source.
	Dist []int64
	// Parent[v] is the SPT parent (-1 at the source).
	Parent []graph.NodeID
	Stats  *sim.Stats
}

// Tree converts the result into a rooted graph.Tree.
func (r *Result) Tree(g *graph.Graph, src graph.NodeID) *graph.Tree {
	return graph.NewTree(g, src, r.Parent)
}

// RunSPTSynch executes algorithm SPTsynch (§9.1): the synchronous SPT
// flood under synchronizer γ_w with cluster parameter k.
// Communication O(𝓔 + 𝓓·kn·log n), time O(𝓓·log_k n·log n).
func RunSPTSynch(g *graph.Graph, src graph.NodeID, k int, opts ...sim.Option) (*Result, error) {
	ecc := graph.Eccentricity(g, src)
	if ecc == graph.Unreachable {
		return nil, fmt.Errorf("spt: graph is disconnected")
	}
	procs := synch.NewSPTProcs(g, src)
	ov, err := synch.RunGammaW(g, procs, ecc+1, k, opts...)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dist:   make([]int64, g.N()),
		Parent: make([]graph.NodeID, g.N()),
		Stats:  ov.Stats,
	}
	for v := range procs {
		p := procs[v].(*synch.SPTSyncProc)
		if p.Dist < 0 {
			return nil, fmt.Errorf("spt: node %d unreached under SPTsynch", v)
		}
		res.Dist[v] = p.Dist
		res.Parent[v] = p.Parent
	}
	return res, nil
}

// RunSPTRecur executes algorithm SPTrecur (§9.2, the strip method)
// with strip depth stripLen >= 1. stripLen = 1 degenerates to the
// fully layered DIJKSTRA algorithm; larger strips trade time for the
// synchronization communication (𝓓/ℓ global rounds).
func RunSPTRecur(g *graph.Graph, src graph.NodeID, stripLen int64, opts ...sim.Option) (*Result, error) {
	if stripLen < 1 {
		return nil, fmt.Errorf("spt: stripLen must be >= 1, got %d", stripLen)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("spt: graph is disconnected")
	}
	nodes := make([]*recurNode, g.N())
	procs := make([]sim.Process, g.N())
	for v := range procs {
		nodes[v] = &recurNode{src: src, stripLen: stripLen, n: int64(g.N())}
		procs[v] = nodes[v]
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dist:   make([]int64, g.N()),
		Parent: make([]graph.NodeID, g.N()),
		Stats:  stats,
	}
	for v, nd := range nodes {
		if !nd.Settled {
			return nil, fmt.Errorf("spt: node %d never settled under SPTrecur", v)
		}
		res.Dist[v] = nd.Dist
		res.Parent[v] = nd.Parent
	}
	return res, nil
}

// DefaultStripLen picks ℓ ≈ √𝓓, balancing the 𝓓²/ℓ synchronization
// time against the ℓ-deep in-strip cascades.
func DefaultStripLen(g *graph.Graph, src graph.NodeID) int64 {
	ecc := graph.Eccentricity(g, src)
	l := int64(1)
	for l*l < ecc {
		l++
	}
	return l
}

// RunSPTHybrid executes algorithm SPThybrid (§9.3): the source picks
// the cheaper of SPTsynch and SPTrecur from the topology — free under
// the paper's full-information model (§1.4.1) — and runs it. It
// returns the result and the winner's name.
func RunSPTHybrid(g *graph.Graph, src graph.NodeID, k int, opts ...sim.Option) (*Result, string, error) {
	ecc := graph.Eccentricity(g, src)
	if ecc == graph.Unreachable {
		return nil, "", fmt.Errorf("spt: graph is disconnected")
	}
	n := int64(g.N())
	ee := g.TotalWeight()
	l := DefaultStripLen(g, src)
	// Predicted communication, Fig. 4: SPTsynch pays 𝓔 + 𝓓·kn·log n;
	// SPTrecur pays 𝓔 plus (𝓓/ℓ) tree-synchronization rounds of
	// weight ≤ w(SPT) ≤ n𝓓 each.
	log2n := int64(1)
	for v := int64(2); v < n; v *= 2 {
		log2n++
	}
	predSynch := ee + ecc*int64(k)*n*log2n
	predRecur := ee + (ecc/l+1)*n*ecc/l
	if predSynch <= predRecur {
		res, err := RunSPTSynch(g, src, k, opts...)
		return res, "synch", err
	}
	res, err := RunSPTRecur(g, src, l, opts...)
	return res, "recur", err
}
