package spt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

func checkSPT(t *testing.T, g *graph.Graph, src graph.NodeID, res *Result) {
	t.Helper()
	want := graph.Dijkstra(g, src)
	for v := range res.Dist {
		if res.Dist[v] != want.Dist[v] {
			t.Fatalf("Dist[%d] = %d, want %d", v, res.Dist[v], want.Dist[v])
		}
	}
	tree := res.Tree(g, src)
	if !tree.Spanning() {
		t.Fatal("SPT parents do not span")
	}
	depths := tree.Depths()
	for v := range depths {
		if depths[v] != want.Dist[v] {
			t.Fatalf("tree depth[%d] = %d, want %d (parents not shortest)", v, depths[v], want.Dist[v])
		}
	}
}

func TestSPTRecurKnown(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	b.AddEdge(2, 3, 2)
	b.AddEdge(0, 3, 10)
	g := b.MustBuild()
	for _, l := range []int64{1, 3, 100} {
		res, err := RunSPTRecur(g, 0, l)
		if err != nil {
			t.Fatalf("stripLen %d: %v", l, err)
		}
		checkSPT(t, g, 0, res)
	}
}

func TestSPTRecurFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(20, graph.UniformWeights(9, 1))},
		{"ring", graph.Ring(15, graph.UniformWeights(9, 2))},
		{"grid", graph.Grid(5, 5, graph.UniformWeights(12, 3))},
		{"complete", graph.Complete(12, graph.UniformWeights(40, 4))},
		{"heavychord", graph.HeavyChordRing(20, 64)},
		{"random", graph.RandomConnected(35, 90, graph.UniformWeights(25, 5), 5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, l := range []int64{1, 4, DefaultStripLen(tt.g, 0)} {
				res, err := RunSPTRecur(tt.g, 0, l)
				if err != nil {
					t.Fatalf("stripLen %d: %v", l, err)
				}
				checkSPT(t, tt.g, 0, res)
			}
		})
	}
}

func TestSPTRecurProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(30, seed), seed)
		src := graph.NodeID(rng.Intn(n))
		l := 1 + rng.Int63n(10)
		res, err := RunSPTRecur(g, src, l)
		if err != nil {
			t.Log(err)
			return false
		}
		want := graph.Dijkstra(g, src)
		for v := range res.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Logf("seed %d l=%d: Dist[%d]=%d want %d", seed, l, v, res.Dist[v], want.Dist[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSPTRecurRandomDelays(t *testing.T) {
	// Within-strip relaxation is unsynchronized; it must stay correct
	// under arbitrary delay interleavings.
	g := graph.RandomConnected(25, 60, graph.UniformWeights(20, 7), 7)
	for seed := int64(0); seed < 8; seed++ {
		res, err := RunSPTRecur(g, 0, 5, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSPT(t, g, 0, res)
	}
}

func TestSPTRecurStripTradeoff(t *testing.T) {
	// Figure 9 shape: growing ℓ cuts synchronization rounds (less sync
	// comm) at similar or better time, until cascades dominate.
	g := graph.Grid(6, 6, graph.UniformWeights(10, 9))
	res1, err := RunSPTRecur(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	resL, err := RunSPTRecur(g, 0, DefaultStripLen(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if resL.Stats.CommOf(sim.ClassSync) >= res1.Stats.CommOf(sim.ClassSync) {
		t.Errorf("sync comm should fall with strip length: l=1 gives %d, l=√D gives %d",
			res1.Stats.CommOf(sim.ClassSync), resL.Stats.CommOf(sim.ClassSync))
	}
}

func TestSPTSynch(t *testing.T) {
	g := graph.RandomConnected(20, 50, graph.UniformWeights(10, 11), 11)
	res, err := RunSPTSynch(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSPT(t, g, 0, res)
}

func TestSPTSynchSweepK(t *testing.T) {
	g := graph.HeavyChordRing(16, 16)
	for _, k := range []int{1, 2, 4} {
		res, err := RunSPTSynch(g, 0, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkSPT(t, g, 0, res)
	}
}

func TestSPTHybrid(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"dense", graph.Complete(14, graph.UniformWeights(20, 13))},
		{"sparse long", graph.Path(25, graph.UniformWeights(15, 14))},
		{"random", graph.RandomConnected(25, 60, graph.UniformWeights(20, 15), 15)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, winner, err := RunSPTHybrid(tt.g, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if winner != "synch" && winner != "recur" {
				t.Fatalf("unknown winner %q", winner)
			}
			checkSPT(t, tt.g, 0, res)
		})
	}
}

func TestSPTErrors(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights())
	if _, err := RunSPTRecur(g, 0, 0); err == nil {
		t.Error("stripLen 0 should error")
	}
	disc := graph.NewBuilder(3).MustBuild()
	if _, err := RunSPTRecur(disc, 0, 1); err == nil {
		t.Error("disconnected should error")
	}
	if _, err := RunSPTSynch(disc, 0, 2); err == nil {
		t.Error("disconnected should error (synch)")
	}
}
