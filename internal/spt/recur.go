// Package spt implements the shortest path tree algorithms of §9:
//
//   - SPTsynch — the synchronous SPT algorithm (flood on the weighted
//     synchronous network, §9.1) executed under synchronizer γ_w:
//     communication O(𝓔 + 𝓓·kn·log n), time O(𝓓·log_k n·log n);
//   - SPTrecur — the strip method of §9.2 (after [Awe89]): the distance
//     range is cut into strips of depth ℓ; strips are processed
//     sequentially under global synchronization over the growing tree,
//     while relaxation inside a strip runs unsynchronized with
//     Dijkstra–Scholten termination detection. Each edge is explored at
//     most once per direction (the exploration of edge (u,v) is
//     scheduled for the strip containing dist(u)+w(u,v)), giving
//     communication O(𝓔 + (𝓓/ℓ)·w(T)) and time O(𝓓²/ℓ + 𝓓) — the
//     𝓓^(1+ε) tradeoff curve of the paper for ℓ = 𝓓^(1-ε). (The full
//     [Awe89] recursion nests this construction; one level reproduces
//     the measured shapes.)
//   - SPThybrid — §9.3: runs whichever of the two is predicted cheaper
//     (in the paper's full-information model the topology is known
//     everywhere, so this arbitration is free).
package spt

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// SPTrecur messages.
type (
	// MsgExplore proposes the label Label = dist(sender) + w(e).
	MsgExplore struct{ Label int64 }
	// MsgExpAck acknowledges an exploration. Engaged marks the
	// receiver's adoption of the sender as its settle-parent; NewCount
	// then carries the number of nodes settled in the receiver's
	// engagement subtree this strip.
	MsgExpAck struct {
		Engaged  bool
		NewCount int64
	}
	// MsgAdvance settles the previous strip and starts strip S; it
	// travels down the tree and the engagement edges.
	MsgAdvance struct{ S int64 }
	// MsgQuiet reports strip S quiescence up the tree; Settled counts
	// the subtree's newly settled nodes.
	MsgQuiet struct {
		S       int64
		Settled int64
	}
)

// recurNode is the per-node state of the strip algorithm.
type recurNode struct {
	src      graph.NodeID
	stripLen int64
	n        int64

	// Outputs.
	Settled bool
	Dist    int64
	Parent  graph.NodeID // SPT parent (label giver)

	strip     int64
	tentative int64
	hasTent   bool
	curBest   graph.NodeID          // label giver: SPT parent candidate
	explored  map[graph.NodeID]bool // explorations scheduled at settle time

	endParent    graph.NodeID // first engager: delivers MsgAdvance
	curActivator graph.NodeID // ack deferred to it until quiet
	endAckSent   bool
	deficit      int
	newCount     int64 // settled nodes accumulated from engaged acks

	tparent    graph.NodeID
	tchildren  []graph.NodeID
	dsChildren []graph.NodeID

	childQuiet   map[int64]int
	childSettled map[int64]int64
	quietSent    map[int64]bool

	// Source only.
	settledTotal int64
	done         bool
}

var _ sim.Process = (*recurNode)(nil)

func (r *recurNode) stripOf(label int64) int64 {
	// Strip s >= 1 covers labels in ((s-1)·ℓ, s·ℓ].
	return (label + r.stripLen - 1) / r.stripLen
}

// Init settles the source and starts strip 1.
func (r *recurNode) Init(ctx sim.Context) {
	r.explored = make(map[graph.NodeID]bool)
	r.childQuiet = make(map[int64]int)
	r.childSettled = make(map[int64]int64)
	r.quietSent = make(map[int64]bool)
	r.endParent = -1
	r.curActivator = -1
	r.tparent = -1
	r.Parent = -1
	r.Dist = -1
	if ctx.ID() != r.src {
		return
	}
	r.Settled = true
	r.Dist = 0
	r.settledTotal = 1
	r.advance(ctx, 1)
}

// advance moves a settled node into strip s: forward the advance,
// adopt this strip's engagement children, and emit the explorations
// scheduled for s.
func (r *recurNode) advance(ctx sim.Context, s int64) {
	r.strip = s
	for _, c := range r.tchildren {
		ctx.SendClass(c, MsgAdvance{S: s}, sim.ClassSync)
	}
	for _, c := range r.dsChildren {
		ctx.SendClass(c, MsgAdvance{S: s}, sim.ClassSync)
	}
	r.tchildren = append(r.tchildren, r.dsChildren...)
	r.dsChildren = nil
	r.newCount = 0
	for _, h := range ctx.Neighbors() {
		if r.explored[h.To] {
			continue
		}
		if r.stripOf(r.Dist+h.W) == s {
			r.explored[h.To] = true
			r.deficit++
			ctx.Send(h.To, MsgExplore{Label: r.Dist + h.W})
		}
	}
	r.checkQuiet(ctx)
}

// settle finalizes this node at the end of its strip.
func (r *recurNode) settle(ctx sim.Context, s int64) {
	r.Settled = true
	r.Dist = r.tentative
	r.Parent = r.curBest
	r.tparent = r.endParent
	r.advance(ctx, s)
}

// checkQuiet reports strip quiescence: at an engaged unsettled node by
// acking its activator; at a settled tree node by converging up.
func (r *recurNode) checkQuiet(ctx sim.Context) {
	if r.deficit != 0 {
		return
	}
	if !r.Settled {
		if r.curActivator >= 0 {
			engaged := !r.endAckSent && r.curActivator == r.endParent
			count := int64(0)
			if engaged {
				r.endAckSent = true
				count = 1 + r.newCount
				r.newCount = 0
			}
			ctx.SendClass(r.curActivator, MsgExpAck{Engaged: engaged, NewCount: count}, sim.ClassAck)
			r.curActivator = -1
		}
		return
	}
	s := r.strip
	if r.quietSent[s] || r.childQuiet[s] != len(r.tchildren) {
		return
	}
	r.quietSent[s] = true
	subtree := r.newCount + r.childSettled[s]
	if r.tparent >= 0 {
		ctx.SendClass(r.tparent, MsgQuiet{S: s, Settled: subtree}, sim.ClassSync)
		return
	}
	// Source: strip s is globally quiet.
	if r.done {
		return // the post-final advance needs no successor
	}
	r.settledTotal += subtree
	if r.settledTotal >= r.n {
		// One final advance settles the last strip's nodes.
		r.done = true
	}
	r.advance(ctx, s+1)
}

// Handle processes exploration, ack, and strip control traffic.
func (r *recurNode) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgExplore:
		r.onExplore(ctx, from, msg)
	case MsgExpAck:
		r.deficit--
		if msg.Engaged {
			r.dsChildren = append(r.dsChildren, from)
			r.newCount += msg.NewCount
		}
		r.checkQuiet(ctx)
	case MsgAdvance:
		if r.Settled {
			r.advance(ctx, msg.S)
			return
		}
		r.settle(ctx, msg.S)
	case MsgQuiet:
		r.childQuiet[msg.S]++
		r.childSettled[msg.S] += msg.Settled
		r.checkQuiet(ctx)
	default:
		panic(fmt.Sprintf("spt: recur got %T", m))
	}
}

func (r *recurNode) onExplore(ctx sim.Context, from graph.NodeID, msg MsgExplore) {
	if r.Settled {
		ctx.SendClass(from, MsgExpAck{}, sim.ClassAck)
		return
	}
	improved := !r.hasTent || msg.Label < r.tentative
	if improved {
		r.hasTent = true
		r.tentative = msg.Label
		r.curBest = from
		// In-strip cascade: forward improved labels that stay within
		// the current strip; heavier continuations wait until this
		// node settles and schedules them by strip. Edges are not
		// marked explored here: a further improvement re-forwards the
		// better label, and the last (final) improvement leaves every
		// in-strip neighbor with the correct label.
		s := r.stripOf(msg.Label)
		for _, h := range ctx.Neighbors() {
			if h.To == from {
				continue
			}
			label := r.tentative + h.W
			if r.stripOf(label) == s {
				r.deficit++
				ctx.Send(h.To, MsgExplore{Label: label})
			}
		}
	}
	if r.curActivator == -1 {
		if r.endParent == -1 {
			r.endParent = from
		}
		r.curActivator = from
		r.checkQuiet(ctx)
		return
	}
	ctx.SendClass(from, MsgExpAck{}, sim.ClassAck)
}
