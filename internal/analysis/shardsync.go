package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shardsync guards the sharded engine's ownership discipline: between
// barriers, a worker may touch only its own shard's state, so any
// expression that reaches into the engine's shard table — a selector
// on a field of type []*shard, the gateway to every other worker's
// queue, arena and mailboxes — is a data race unless the enclosing
// function runs only while the other workers are provably quiescent.
// Such functions declare it with `//costsense:shardbarrier <why>` in
// their doc comment (the drain-phase mailbox sweep, the post-run
// probe replay, the coordinator itself); everywhere else the access
// is flagged.
//
// The race detector finds such bugs only on the schedules a test
// happens to execute; this analyzer rejects the construct at vet
// time, on all schedules. Individual lines inside an unannotated
// function can be audited with `//costsense:shard-ok <why>`.
var Shardsync = &Analyzer{
	Name:     "shardsync",
	Doc:      "flags cross-shard state access outside //costsense:shardbarrier functions",
	Suppress: "shard-ok",
	Scoped:   true,
	Run:      runShardsync,
}

// ShardBarrierDirective marks a function as running only while all
// shard workers are quiescent.
const ShardBarrierDirective = Directive + "shardbarrier"

func runShardsync(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isShardBarrier(fd) {
				continue
			}
			checkShardsyncBody(pass, fd)
		}
	}
}

// isShardBarrier reports whether the function's doc comment carries
// the //costsense:shardbarrier annotation.
func isShardBarrier(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, ShardBarrierDirective) {
			return true
		}
	}
	return false
}

func checkShardsyncBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() || !isShardSlice(v.Type()) {
			return true
		}
		pass.Report(sel.Pos(), "access to shard table %s outside a %s function races with the workers (annotate the function, or audit the line with %sshard-ok <why>)",
			exprString(sel), ShardBarrierDirective, Directive)
		return true
	})
}

// isShardSlice matches []*shard for a struct type named "shard" — the
// sharded engine's worker-state table. Matching on the shape keeps the
// analyzer free of an import cycle on internal/sim while staying
// precise: no other scoped package declares that type.
func isShardSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	ptr, ok := sl.Elem().Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "shard" {
		return false
	}
	_, ok = named.Underlying().(*types.Struct)
	return ok
}
