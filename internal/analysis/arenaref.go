package analysis

import (
	"go/ast"
	"go/types"
)

// Arenaref guards the simulator's message arena against use-after-free
// by construction. The Network keeps in-flight payloads in a free-list
// arena (internal/sim: msgs/msgFree); a delivery hands the payload to
// the protocol's Handle and immediately recycles the slot. A handler
// that squirrels the message away — into a receiver field, a
// package-level variable, a map or slice that outlives the call —
// would observe a recycled value the moment payloads themselves move
// into a typed arena (the planned follow-up to the PR 1 event arena).
//
// The analyzer applies to any method named Handle, OnSend, OnDeliver
// or OnDrop whose last parameter is sim.Message — protocol handlers
// and observer probes alike (sim.Observer callbacks, including the
// fault-injection drop probe, see the in-flight payload under the same
// no-retention contract). Within the body it tracks the
// message parameter and simple local aliases of it (including type
// assertions) and reports stores that escape the call. Forwarding the
// message — passing it to ctx.Send or another function — transfers
// ownership and stays legal.
//
// Sites audited as safe today (payloads are still sender-owned heap
// values) carry `//costsense:retain-ok <why>` so the migration has a
// worklist instead of a minefield.
var Arenaref = &Analyzer{
	Name:     "arenaref",
	Doc:      "flags protocol handlers retaining an arena message past return",
	Suppress: "retain-ok",
	Scoped:   false, // signature-driven: applies to any sim.Process handler
	Run:      runArenaref,
}

func runArenaref(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "Handle", "OnSend", "OnDeliver", "OnDrop":
			default:
				continue
			}
			msg := messageParam(pass, fd)
			if msg == nil {
				continue
			}
			checkHandler(pass, fd, msg)
		}
	}
}

// messageParam returns the object of the trailing sim.Message
// parameter of a handler, or nil when the function is not one.
func messageParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) == 0 || last.Names[len(last.Names)-1].Name == "_" {
		return nil
	}
	t := pass.TypeOf(last.Type)
	if !isSimMessage(t) {
		return nil
	}
	return pass.ObjectOf(last.Names[len(last.Names)-1])
}

// isSimMessage reports whether t is the named type Message of a sim
// package (costsense/internal/sim, or a testdata copy ending in
// "/sim").
func isSimMessage(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Message" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "costsense/internal/sim" || pathHasSuffix(path, "/sim") || path == "sim"
}

func pathHasSuffix(path, suffix string) bool {
	return len(path) >= len(suffix) && path[len(path)-len(suffix):] == suffix
}

// checkHandler walks the handler body in source order, tracking which
// local objects alias the message, and reports stores whose
// destination outlives the call.
func checkHandler(pass *Pass, fd *ast.FuncDecl, msg types.Object) {
	tainted := map[types.Object]bool{msg: true}

	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[pass.ObjectOf(e)]
		case *ast.TypeAssertExpr:
			return taintedExpr(e.X)
		case *ast.UnaryExpr:
			return taintedExpr(e.X)
		case *ast.StarExpr:
			return taintedExpr(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if taintedExpr(el) {
					return true
				}
			}
		case *ast.CallExpr:
			// append(xs, m): the result carries the taint. Other calls
			// transfer ownership (e.g. ctx.Send) and drop it.
			if pass.IsBuiltinCall(e, "append") {
				for _, a := range e.Args {
					if taintedExpr(a) {
						return true
					}
				}
			}
		}
		return false
	}

	// escapes reports whether storing into lhs outlives the handler:
	// any selector (receiver or other struct field), index expression,
	// dereference, or package-level variable.
	escapes := func(lhs ast.Expr) bool {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		case *ast.Ident:
			obj := pass.ObjectOf(lhs)
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
				return v.Parent() == v.Pkg().Scope() // package-level variable
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Parallel assignment pairs Lhs[i] with Rhs[i]; the multi-value
		// forms (v, ok := m.(*T)) pair every Lhs with Rhs[0].
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if i > 0 {
				continue // comma-ok: only the value result carries the message
			}
			if !taintedExpr(rhs) {
				continue
			}
			if escapes(lhs) {
				pass.Report(as.Pos(),
					"handler stores arena message %s into %s, which outlives the call; copy the payload or audit with %sretain-ok <why>",
					msg.Name(), exprString(lhs), Directive)
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
}
