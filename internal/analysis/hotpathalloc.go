package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpathalloc enforces the allocation-free contract on functions
// annotated `//costsense:hotpath` in their doc comment (the simulator
// event loop, internal/pq sift operations, the Dijkstra/Prim inner
// loops). Inside such a function it flags the constructs that allocate
// or box on every execution:
//
//   - calls into fmt (formatting allocates and boxes every operand)
//   - function literals (closures capture by reference and escape)
//   - map construction: map literals and make(map...), make(chan ...)
//   - &T{...} composite pointers and builtin new
//   - append whose destination is not its own source slice (the
//     amortized x = append(x, ...) growth idiom stays legal)
//   - string <-> []byte/[]rune conversions (always copy)
//   - boxing a non-pointer concrete value into an interface, whether
//     by explicit conversion, assignment, or argument passing
//
// Cold paths inside a hot function — panics, error returns, one-time
// result construction — are audited with `//costsense:alloc-ok <why>`.
// The dynamic side of the same contract is BenchmarkEngineFlood's
// allocs/op tracked in BENCH_sim.json; this analyzer catches the
// regression at vet time instead of at the next bench run.
var Hotpathalloc = &Analyzer{
	Name:     "hotpathalloc",
	Doc:      "flags allocating or boxing constructs in //costsense:hotpath functions",
	Suppress: "alloc-ok",
	Scoped:   false, // annotation-driven: applies wherever the annotation does
	Run:      runHotpathalloc,
}

// HotpathDirective marks a function as allocation-free-checked.
const HotpathDirective = Directive + "hotpath"

func runHotpathalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
}

// isHotpath reports whether the function's doc comment carries the
// //costsense:hotpath annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "closure in hotpath function %s allocates and captures by reference", fd.Name.Name)
			return false // don't double-report the closure's own body
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Report(n.Pos(), "map literal allocates in hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "&composite literal allocates in hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, fd, pass.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if t, ok := info.Types[n.Type]; ok {
					for _, v := range n.Values {
						checkBoxing(pass, fd, t.Type, v)
					}
				}
			}
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins that allocate.
	switch {
	case pass.IsBuiltinCall(call, "make"):
		if len(call.Args) > 0 {
			if t := pass.TypeOf(call.Args[0]); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Report(call.Pos(), "make(map) allocates in hotpath function %s", fd.Name.Name)
				case *types.Chan:
					pass.Report(call.Pos(), "make(chan) allocates in hotpath function %s", fd.Name.Name)
				}
			}
		}
		return
	case pass.IsBuiltinCall(call, "new"):
		pass.Report(call.Pos(), "new allocates in hotpath function %s", fd.Name.Name)
		return
	case pass.IsBuiltinCall(call, "append"):
		checkAppend(pass, fd, call)
		return
	}

	// Conversions: string <-> []byte/[]rune copy; conversion to an
	// interface boxes.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypeOf(call.Args[0])
		if src != nil {
			if stringByteConversion(dst, src) {
				pass.Report(call.Pos(), "%s <-> %s conversion copies in hotpath function %s",
					typeLabel(src), typeLabel(dst), fd.Name.Name)
			}
			checkBoxing(pass, fd, dst, call.Args[0])
		}
		return
	}

	// Calls into fmt.
	if fn := pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Report(call.Pos(), "fmt.%s allocates and boxes its operands in hotpath function %s (audit cold paths with %salloc-ok <why>)",
			fn.Name(), fd.Name.Name, Directive)
		// Boxing of each operand would be reported below too; the fmt
		// diagnostic subsumes them, and a line suppression covers both.
	}

	// Implicit boxing: a concrete non-pointer argument passed to an
	// interface-typed parameter.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, fd, pt, arg)
	}
}

// checkAppend allows the amortized-growth idiom x = append(x, ...) and
// flags everything else: append into a fresh variable, a nil slice, or
// a destination different from the source.
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	src := ast.Unparen(call.Args[0])
	if id, ok := src.(*ast.Ident); ok && id.Name == "nil" {
		pass.Report(call.Pos(), "append to nil slice allocates in hotpath function %s", fd.Name.Name)
		return
	}
	// Find the assignment this append feeds, if it is the sole RHS.
	// (The walk gives no parent pointers, so re-scan the function for
	// the owning statement — function bodies are small.)
	var owner *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) == 1 {
			if ast.Unparen(as.Rhs[0]) == call {
				owner = as
				return false
			}
		}
		return true
	})
	if owner == nil {
		pass.Report(call.Pos(), "append result not reassigned to its source; likely allocates in hotpath function %s", fd.Name.Name)
		return
	}
	if exprString(owner.Lhs[0]) != exprString(src) {
		pass.Report(call.Pos(), "append to %s grows a different slice than it reads (%s); preallocate or audit with %salloc-ok <why>",
			exprString(owner.Lhs[0]), exprString(src), Directive)
	}
}

// checkBoxing reports rhs being converted into interface type dst when
// its concrete type is not pointer-shaped (storing a pointer, chan,
// map, func or unsafe.Pointer in an interface does not allocate).
func checkBoxing(pass *Pass, fd *ast.FuncDecl, dst types.Type, rhs ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || tv.IsNil() {
		return // interface-to-interface or nil: no new box
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the interface stores the pointer itself
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return
		}
	}
	pass.Report(rhs.Pos(), "%s boxed into %s allocates in hotpath function %s",
		typeLabel(src), typeLabel(dst), fd.Name.Name)
}

// stringByteConversion reports a conversion between string and
// []byte/[]rune in either direction.
func stringByteConversion(a, b types.Type) bool {
	return isStringType(a) && isByteOrRuneSlice(b) || isStringType(b) && isByteOrRuneSlice(a)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// exprString renders an expression for comparison and diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
