package analysis

import "go/ast"

// Hotpathtrans extends hotpathalloc across call edges: a
// //costsense:hotpath function may not call a module-local callee
// whose transitive effect summary allocates — even though the callee
// itself is not marked hotpath and so passes hotpathalloc. Without
// this, the zero-alloc contract silently erodes one helper at a time:
// the hot function stays clean under the intraprocedural check while
// its callees regrow the garbage.
//
// Callees that are themselves marked hotpath are skipped (hotpathalloc
// already proves them allocation-free); allocation sites audited with
// alloc-ok are excluded from summaries by construction (summary.go),
// so an audited cold path never poisons its callers. The diagnostic
// names the allocation witness — the bottom-most callee that actually
// allocates — so the report points at the fix, not the symptom.
var Hotpathtrans = &Analyzer{
	Name:     "hotpathtrans",
	Doc:      "flags hotpath functions whose module-local callees transitively allocate",
	Suppress: "alloc-ok",
	Scoped:   true,
	Run:      runHotpathtrans,
}

func runHotpathtrans(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathtransFunc(pass, fd)
		}
	}
}

func checkHotpathtransFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// Closures and spawned goroutines are outside the caller's
			// hot path (matching hotpathalloc's own scoping).
			return false
		case *ast.CallExpr:
			checkHotpathtransCall(pass, n)
		}
		return true
	})
}

func checkHotpathtransCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	sum := pass.Sum.Of(fn)
	if sum == nil || sum.Hotpath || sum.All&EffAllocates == 0 {
		return
	}
	if witness := pass.Sum.AllocWitness(fn); witness != nil && witness != fn {
		pass.Report(call.Pos(), "call to %s allocates on the hot path (via %s); mark the callee %shotpath and fix it, or audit with %salloc-ok <why>",
			fn.Name(), witness.Name(), Directive, Directive)
		return
	}
	pass.Report(call.Pos(), "call to %s allocates on the hot path; mark the callee %shotpath and fix it, or audit with %salloc-ok <why>",
		fn.Name(), Directive, Directive)
}
