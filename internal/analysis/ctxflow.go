package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ctxflow enforces context discipline in the long-lived concurrent
// layers — internal/serve, internal/harness and cmd — where the
// ROADMAP's scale-out direction (distributed workers, job persistence)
// will multiply goroutines and the cost of a leak:
//
//  1. context.Background() and context.TODO() create detached
//     contexts that no drain deadline can reach. They are legal only
//     at audited roots (process entry, signal handling, a deliberate
//     post-cancel grace window), marked `//costsense:ctx-ok <why>`.
//  2. Every `go` statement must have a structurally-identifiable
//     termination path: the goroutine references a context (it can
//     see cancellation), ranges over a channel (it ends when the
//     producer closes), or receives from one (it ends when the peer
//     signals). A goroutine that only computes or sends is assumed
//     immortal and flagged.
//  3. A function whose own body parks the goroutine (channel ops,
//     select without default, Sleep/Wait) or spawns one must be able
//     to observe cancellation: a context.Context or *http.Request
//     parameter, or a receiver carrying a context field. Otherwise
//     shutdown cannot reach it.
//
// The analyzer is restricted to the three subtrees via Match — the
// simulator's sharded engine synchronizes with phase barriers and
// owns its termination proof (shardsync), and protocol code never
// spawns.
var Ctxflow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "enforces context propagation and goroutine termination paths in serve, harness and cmd",
	Suppress: "ctx-ok",
	Scoped:   true,
	Match:    ctxflowMatch,
	Run:      runCtxflow,
}

// ctxflowMatch limits the analyzer to the long-lived concurrent
// layers.
func ctxflowMatch(modulePath, importPath string) bool {
	for _, sub := range [...]string{"/internal/serve", "/internal/harness", "/cmd/"} {
		if importPath == modulePath+strings.TrimSuffix(sub, "/") ||
			strings.HasPrefix(importPath, modulePath+sub) {
			return true
		}
	}
	return false
}

func runCtxflow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxflowFunc(pass, fd)
		}
	}
}

func checkCtxflowFunc(pass *Pass, fd *ast.FuncDecl) {
	// Rule 3: a directly-parking or spawning function must be able to
	// observe cancellation.
	if sum := pass.Sum.Of(funcObj(pass, fd)); sum != nil {
		if sum.Direct&(EffBlocksChan|EffSpawns) != 0 && sum.Direct&EffTakesCtx == 0 {
			what := "blocks on channels or timers"
			if sum.Direct&EffSpawns != 0 {
				what = "spawns a goroutine"
				if sum.Direct&EffBlocksChan != 0 {
					what = "blocks and spawns"
				}
			}
			pass.Report(fd.Name.Pos(),
				"%s %s but cannot observe cancellation; accept a context.Context (or *http.Request), or audit the root with %sctx-ok <why>",
				fd.Name.Name, what, Directive)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Rule 1: detached contexts.
			if fn := pass.CalleeFunc(n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Report(n.Pos(),
						"context.%s starts a detached context no drain deadline can reach; thread the caller's ctx, or audit the root with %sctx-ok <why>",
						fn.Name(), Directive)
				}
			}
		case *ast.GoStmt:
			checkGoroutine(pass, n)
		}
		return true
	})
}

// checkGoroutine applies rule 2 to one spawn site.
func checkGoroutine(pass *Pass, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if goroutineHasTermination(pass, fun) {
			return
		}
	default:
		// Named (or method) spawn: the callee observing a context is the
		// termination tie; check the summary and the argument list.
		if fn := pass.CalleeFunc(g.Call); fn != nil {
			if sum := pass.Sum.Of(fn); sum != nil && sum.Direct&EffTakesCtx != 0 {
				return
			}
		}
		for _, arg := range g.Call.Args {
			if t := pass.TypeOf(arg); t != nil && isCtxOrRequest(t) {
				return
			}
		}
	}
	pass.Report(g.Pos(),
		"goroutine has no structurally-identifiable termination path (no context reference, channel range, or receive); tie it to ctx cancellation or a queue close, or audit with %sctx-ok <why>",
		Directive)
}

// goroutineHasTermination scans a goroutine literal for a termination
// tie: any expression of context type (ctx.Done, ctx.Err, forwarding
// ctx), a range over a channel, or a channel receive.
func goroutineHasTermination(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if t := pass.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		case *ast.SelectorExpr:
			if t := pass.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return true
	})
	return found
}

// funcObj resolves a declaration to its function object.
func funcObj(pass *Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.ObjectOf(fd.Name).(*types.Func)
	return fn
}
