package analysis

import (
	"go/ast"
	"go/types"
)

// Detmap flags map iteration in the deterministic core: `range` over a
// map value, and maps.Keys/maps.Values calls whose order is not
// immediately fixed by a sort. Go randomizes map iteration order per
// run, so any such loop that feeds Stats, experiment output or
// protocol decisions silently breaks the fixed-seed reproducibility
// the paper's c_π/t_π measurements rely on.
//
// Audited order-insensitive loops (pure reductions: sums, max, set
// union, deletion) are suppressed with `//costsense:nondet-ok <why>`.
var Detmap = &Analyzer{
	Name:     "detmap",
	Doc:      "flags nondeterministic map iteration in deterministic packages",
	Suppress: "nondet-ok",
	Scoped:   true,
	Run:      runDetmap,
}

func runDetmap(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Report(n.Pos(),
						"range over %s iterates in randomized order; sort the keys or audit with %snondet-ok <why>",
						typeLabel(t), Directive)
				}
			case *ast.CallExpr:
				fn := pass.CalleeFunc(n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
					return true
				}
				if fn.Name() != "Keys" && fn.Name() != "Values" {
					return true
				}
				if sortedImmediately(pass, stack) {
					return true
				}
				pass.Report(n.Pos(),
					"maps.%s yields keys in randomized order; wrap in slices.Sorted or audit with %snondet-ok <why>",
					fn.Name(), Directive)
			}
			return true
		})
	}
}

// sortedImmediately reports whether the maps.Keys/Values call is a
// direct argument of slices.Sorted / slices.SortedFunc /
// slices.SortedStableFunc, which fixes the order before anything can
// observe it.
func sortedImmediately(pass *Pass, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "slices" {
		return false
	}
	switch fn.Name() {
	case "Sorted", "SortedFunc", "SortedStableFunc":
		return true
	}
	// Note slices.Collect is NOT enough: it materializes the iterator
	// in whatever order the map yields.
	return false
}

// typeLabel renders a type tersely for diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
