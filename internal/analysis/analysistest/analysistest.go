// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (not vendored —
// the suite must build offline with the bare toolchain).
//
// A want comment expects one or more diagnostics on its own line, each
// matching one of the quoted regular expressions:
//
//	for k := range m { // want "range over map"
//
// Every diagnostic must be matched by a want pattern on its line, and
// every want pattern must match at least one diagnostic; anything else
// fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"costsense/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the package at testdata/<rel> (relative to the calling
// test's directory) and checks analyzer a against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, rel string) {
	t.Helper()
	moduleRoot, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", filepath.FromSlash(rel))
	pkg, err := loader.LoadDir(dir, "costsense-vet.test/"+strings.ReplaceAll(rel, "/", "_"))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	diags := analysis.Run(a, pkg)

	matched := make(map[*want]bool)
	for _, d := range diags {
		key := lineKey{file: d.Pos.Filename, line: d.Pos.Line}
		ok := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	keys := make([]lineKey, 0, len(wants))
	for key := range wants { //costsense:nondet-ok keys are sorted below before reporting
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for _, w := range wants[key] {
			if !matched[w] {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// collectWants extracts the want expectations of every file in pkg.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the sequence of quoted patterns after "want".
func splitQuoted(t *testing.T, pos interface{ String() string }, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want clause at %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern in %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so tests run from any package directory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}
