package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the v2 analyzers: a
// module-local call graph plus one effect summary per declared
// function. Summaries are deliberately coarse — a handful of bits, no
// path or flow sensitivity — because the analyzers built on them
// (lockguard, ctxflow, hotpathtrans) only need "may this callee block /
// allocate / take another lock", never "when". Effects are computed
// per-body, then propagated to a fixed point over the call graph, so a
// blocking operation two calls deep is visible at every caller.
//
// Approximations, chosen to stay sound for this codebase's idioms:
//
//   - Function literals are opaque: a closure's body contributes
//     nothing to its *enclosing* function's summary (it may run on a
//     different goroutine, later, or never), and calls through
//     function values resolve to no summary. Spawn sites (`go ...`)
//     are examined separately by ctxflow.
//   - Interface method calls resolve to no summary; the few stdlib
//     interfaces whose calls matter (io.Writer.Write and friends) are
//     classified by a fixed table instead.
//   - Allocation sites audited with //costsense:alloc-ok do not count
//     toward a summary: the audit that excuses a cold path from
//     hotpathalloc also excuses callers that reach it transitively.

// Effects is a bit set of the behaviors a function may exhibit.
type Effects uint16

const (
	// EffAllocates: the body contains an unaudited allocating construct
	// (same definition as hotpathalloc's per-function check).
	EffAllocates Effects = 1 << iota
	// EffBlocksChan: may park the goroutine on control flow — channel
	// send/receive, select without default, range over a channel,
	// time.Sleep, WaitGroup/Cond.Wait.
	EffBlocksChan
	// EffBlocksIO: may block on stream I/O — writes/reads through io
	// interfaces, fmt.Fprint*, json Encoder/Decoder, HTTP server and
	// client calls.
	EffBlocksIO
	// EffSpawns: starts a goroutine.
	EffSpawns
	// EffAcquires: takes a sync.Mutex/RWMutex lock (Lock/RLock/TryLock).
	EffAcquires
	// EffTakesCtx: can observe cancellation — a context.Context or
	// *http.Request parameter, or a receiver whose struct carries a
	// context.Context field.
	EffTakesCtx
)

// Blocks reports whether the effects include any blocking kind.
func (e Effects) Blocks() bool { return e&(EffBlocksChan|EffBlocksIO) != 0 }

// String renders the effect set for diagnostics.
func (e Effects) String() string {
	var parts []string
	for _, p := range [...]struct {
		bit  Effects
		name string
	}{
		{EffAllocates, "allocates"},
		{EffBlocksChan, "blocks"},
		{EffBlocksIO, "does I/O"},
		{EffSpawns, "spawns"},
		{EffAcquires, "locks"},
	} {
		if e&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, ",")
}

// Summary is one function's computed effects and local call edges.
type Summary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Direct covers the function's own body (closures excluded).
	Direct Effects
	// All is Direct plus everything reachable through module-local
	// callees, to a fixed point.
	All Effects
	// Hotpath records the //costsense:hotpath annotation.
	Hotpath bool
	// Calls lists the resolved module-local callees, position-ordered
	// and deduplicated.
	Calls []*types.Func

	// allocWitness is the function whose body holds the allocation that
	// set EffAllocates in All — itself for a direct allocation, else the
	// first (position-ordered) callee that reaches one.
	allocWitness *types.Func
}

// Summaries indexes the summaries of every function declared in a set
// of packages.
type Summaries struct {
	byFn map[*types.Func]*Summary
	all  []*Summary // deterministic order: package path, then position
}

// Of returns fn's summary, or nil for functions declared outside the
// summarized packages (stdlib, interface methods, func values).
func (s *Summaries) Of(fn *types.Func) *Summary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byFn[fn]
}

// AllocWitness names the function whose body holds the allocation
// behind fn's EffAllocates, or nil.
func (s *Summaries) AllocWitness(fn *types.Func) *types.Func {
	if sum := s.Of(fn); sum != nil {
		return sum.allocWitness
	}
	return nil
}

// ComputeSummaries builds the call graph and effect summaries for
// every function declared in pkgs. tr, when non-nil, records the
// alloc-ok directives the allocation scan consults (they keep callee
// summaries clean, so they are live, not stale).
func ComputeSummaries(pkgs []*Package, tr *Tracker) *Summaries {
	s := &Summaries{byFn: make(map[*types.Func]*Summary)}
	for _, pkg := range pkgs {
		// The counting pass reuses hotpathalloc's body check verbatim, so
		// "allocates" means exactly what the direct analyzer enforces —
		// including alloc-ok audits.
		countPass := NewPass(Hotpathalloc, pkg)
		countPass.tracker = tr
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := &Summary{Fn: fn, Decl: fd, Pkg: pkg, Hotpath: isHotpath(fd)}
				before := len(countPass.diags)
				checkHotpathBody(countPass, fd)
				if len(countPass.diags) > before {
					sum.Direct |= EffAllocates
				}
				sum.Direct |= directEffects(pkg, fd)
				if takesContext(pkg, fd) {
					sum.Direct |= EffTakesCtx
				}
				sum.Calls = resolveCalls(pkg, fd)
				sum.All = sum.Direct
				s.byFn[fn] = sum
				s.all = append(s.all, sum)
			}
		}
	}
	s.propagate()
	return s
}

// propagate folds callee effects into callers until nothing changes.
// Effects only grow, so the fixed point is order-independent.
func (s *Summaries) propagate() {
	const inherited = EffAllocates | EffBlocksChan | EffBlocksIO | EffSpawns | EffAcquires
	for changed := true; changed; {
		changed = false
		for _, sum := range s.all {
			for _, callee := range sum.Calls {
				cs := s.byFn[callee]
				if cs == nil {
					continue
				}
				if add := cs.All & inherited &^ sum.All; add != 0 {
					sum.All |= add
					changed = true
				}
			}
		}
	}
	// Witnesses, in one deterministic final pass: the first callee (in
	// call order) that reaches an allocation, or the function itself.
	for _, sum := range s.all {
		if sum.All&EffAllocates == 0 {
			continue
		}
		if sum.Direct&EffAllocates != 0 {
			sum.allocWitness = sum.Fn
			continue
		}
		for _, callee := range sum.Calls {
			if cs := s.byFn[callee]; cs != nil && cs.All&EffAllocates != 0 {
				sum.allocWitness = cs.Fn
				if cs.allocWitness != nil {
					sum.allocWitness = cs.allocWitness
				}
				break
			}
		}
	}
}

// walkBody visits the nodes of fd's body that execute on fd's own
// goroutine as part of a call to fd: function literals are skipped
// (opaque), and `go` statements contribute only their spawn effect.
func walkBody(fd *ast.FuncDecl, visit func(ast.Node) bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return visit(n) && false
		}
		return visit(n)
	})
}

// directEffects computes the body's own blocking, spawning and
// lock-acquisition effects.
func directEffects(pkg *Package, fd *ast.FuncDecl) Effects {
	var eff Effects
	walkBody(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			eff |= EffSpawns
		case *ast.SendStmt:
			eff |= EffBlocksChan
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				eff |= EffBlocksChan
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				eff |= EffBlocksChan
			} else {
				// A select with default never parks; its comm clauses are
				// non-blocking sends/receives. Walk only the clause bodies.
				for _, c := range n.Body.List {
					for _, stmt := range c.(*ast.CommClause).Body {
						ast.Inspect(stmt, func(m ast.Node) bool {
							switch m.(type) {
							case *ast.FuncLit, *ast.GoStmt:
								return false
							}
							eff |= exprEffects(pkg, m)
							return true
						})
					}
				}
				return false
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					eff |= EffBlocksChan
				}
			}
		case *ast.CallExpr:
			eff |= callEffects(pkg, n)
		}
		return true
	})
	return eff
}

// exprEffects classifies a single node (used for the non-blocking
// select walk, where channel syntax must not count).
func exprEffects(pkg *Package, n ast.Node) Effects {
	if call, ok := n.(*ast.CallExpr); ok {
		return callEffects(pkg, call)
	}
	return 0
}

// selectHasDefault reports whether the select carries a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingStdlib maps "pkgpath.Func" and "pkgpath.Recv.Method" of
// standard-library calls that may park or stall the goroutine.
var blockingStdlib = map[string]Effects{
	"time.Sleep":                     EffBlocksChan,
	"sync.WaitGroup.Wait":            EffBlocksChan,
	"sync.Cond.Wait":                 EffBlocksChan,
	"net/http.ListenAndServe":        EffBlocksIO,
	"net/http.Serve":                 EffBlocksIO,
	"net/http.Server.ListenAndServe": EffBlocksIO,
	"net/http.Server.Serve":          EffBlocksIO,
	"net/http.Server.ServeTLS":       EffBlocksIO,
	"net/http.Server.Shutdown":       EffBlocksIO,
	"net/http.Client.Do":             EffBlocksIO,
	"net/http.Client.Get":            EffBlocksIO,
	"net/http.Client.Post":           EffBlocksIO,
	"net/http.Client.Head":           EffBlocksIO,
	"encoding/json.Encoder.Encode":   EffBlocksIO,
	"encoding/json.Decoder.Decode":   EffBlocksIO,
	"os/exec.Cmd.Run":                EffBlocksIO,
	"os/exec.Cmd.Wait":               EffBlocksIO,
	"os/exec.Cmd.Output":             EffBlocksIO,
}

// ioInterfaceMethods are method names that mean stream I/O when called
// through an interface value (io.Writer, io.Reader, http.ResponseWriter,
// flushers): the dynamic type may be a network connection.
var ioInterfaceMethods = map[string]bool{
	"Write": true, "Read": true, "ReadFrom": true, "WriteTo": true, "Flush": true,
}

// fmtWriterFuncs are the fmt functions that stream to an io.Writer.
var fmtWriterFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// callEffects classifies one call's blocking/locking effects from the
// fixed stdlib tables. Module-local callees contribute through
// summaries instead; unknown calls contribute nothing.
func callEffects(pkg *Package, call *ast.CallExpr) Effects {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return 0
	}
	if eff, _, ok := stdlibCallClass(pkg, call, fn); ok {
		return eff
	}
	if isMutexAcquire(fn) {
		return EffAcquires
	}
	return 0
}

// stdlibCallClass looks a resolved callee up in the blocking tables,
// returning a human-readable label for diagnostics.
func stdlibCallClass(pkg *Package, call *ast.CallExpr, fn *types.Func) (Effects, string, bool) {
	p := fn.Pkg()
	if p == nil {
		return 0, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			key := p.Path() + "." + named.Obj().Name() + "." + fn.Name()
			if eff, ok := blockingStdlib[key]; ok {
				return eff, key, true
			}
		}
		// Interface-dispatched I/O: w.Write(...) where w is an io.Writer,
		// http.ResponseWriter, or any other stream interface.
		if types.IsInterface(recv) && ioInterfaceMethods[fn.Name()] {
			return EffBlocksIO, "interface " + fn.Name(), true
		}
		return 0, "", false
	}
	key := p.Path() + "." + fn.Name()
	if eff, ok := blockingStdlib[key]; ok {
		return eff, key, true
	}
	if p.Path() == "fmt" && fmtWriterFuncs[fn.Name()] {
		return EffBlocksIO, key, true
	}
	return 0, "", false
}

// isMutexAcquire matches (*sync.Mutex).Lock/TryLock and the RWMutex
// variants. isMutexRelease matches the unlocks.
func isMutexAcquire(fn *types.Func) bool {
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return isSyncMutexMethod(fn)
	}
	return false
}

func isMutexRelease(fn *types.Func) bool {
	switch fn.Name() {
	case "Unlock", "RUnlock":
		return isSyncMutexMethod(fn)
	}
	return false
}

func isSyncMutexMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// takesContext reports whether fd can observe cancellation: a
// context.Context or *http.Request parameter, or a receiver struct
// holding a context.Context field.
func takesContext(pkg *Package, fd *ast.FuncDecl) bool {
	sig, _ := objOf(pkg, fd.Name).(*types.Func)
	if sig == nil {
		return false
	}
	st, _ := sig.Type().(*types.Signature)
	if st == nil {
		return false
	}
	for i := 0; i < st.Params().Len(); i++ {
		if isCtxOrRequest(st.Params().At(i).Type()) {
			return true
		}
	}
	if recv := st.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if strct, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < strct.NumFields(); i++ {
				if isContextType(strct.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func isCtxOrRequest(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), "net/http", "Request")
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

func isNamed(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// resolveCalls collects fd's resolved callees — the call-graph edges —
// in position order, deduplicated. Calls inside closures and `go`
// statements are excluded (walkBody's contract).
func resolveCalls(pkg *Package, fd *ast.FuncDecl) []*types.Func {
	var calls []*types.Func
	seen := make(map[*types.Func]bool)
	walkBody(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn != nil && !seen[fn] {
			seen[fn] = true
			calls = append(calls, fn)
		}
		return true
	})
	return calls
}

// calleeFunc resolves a call to the function or method object it
// invokes, without needing a Pass.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := objOf(pkg, fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := objOf(pkg, fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOf(pkg, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// FuncsInOrder returns the summarized functions sorted by package path
// then source position — the deterministic iteration order for
// whole-module reports.
func (s *Summaries) FuncsInOrder() []*Summary {
	out := append([]*Summary(nil), s.all...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pkg.Path != out[j].Pkg.Path {
			return out[i].Pkg.Path < out[j].Pkg.Path
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}
