package analysis_test

import (
	"testing"

	"costsense/internal/analysis"
	"costsense/internal/analysis/analysistest"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysis.Lockguard, "lockguard")
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow, "ctxflow")
}

func TestErrflow(t *testing.T) {
	analysistest.Run(t, analysis.Errflow, "errflow")
}

func TestHotpathtrans(t *testing.T) {
	analysistest.Run(t, analysis.Hotpathtrans, "hotpathtrans")
}

// TestCtxflowMatch pins ctxflow's package filter: it covers only the
// long-lived concurrent layers (serve, harness, cmd), not the
// deterministic core, where context plumbing would be noise.
func TestCtxflowMatch(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"costsense/internal/serve", true},
		{"costsense/internal/harness", true},
		{"costsense/cmd/costsense", true},
		{"costsense/cmd/costsense-vet", true},
		{"costsense/internal/sim", false},
		{"costsense/internal/graph", false},
		{"costsense", false},
	}
	for _, c := range cases {
		if got := analysis.Ctxflow.Match("costsense", c.path); got != c.want {
			t.Errorf("ctxflow.Match(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
