// Package analysis is costsense's static-analysis layer: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which is
// deliberately not vendored — the suite must build offline with the
// bare toolchain), a module-wide interprocedural effect-summary layer
// (summary.go), and the nine project-specific analyzers behind
// cmd/costsense-vet:
//
//   - detmap: no map-iteration order may reach deterministic output
//   - detsource: no wall clock, timers, global RNG or scheduler
//     queries in simulator and protocol code
//   - hotpathalloc: //costsense:hotpath functions stay allocation-free
//   - hotpathtrans: ...including through every module-local callee,
//     judged by the callee's effect summary
//   - arenaref: protocol handlers must not retain arena messages
//   - shardsync: cross-shard state only under a declared barrier
//   - lockguard: no blocking op or nested acquisition while a mutex is
//     held; every lock released on all paths
//   - ctxflow (serve/harness/cmd only): detached contexts only at
//     audited roots, goroutines need a termination path, blocking or
//     spawning functions must be able to observe cancellation
//   - errflow: no silently discarded error results
//
// The simulator's contract — byte-identical Stats for a fixed seed,
// zero allocations per delivered event — is what makes the paper's
// c_π/t_π measurements trustworthy; these analyzers move that contract
// from golden tests into the compile loop, and the v2 set extends it
// to the experiment service's concurrency. See DESIGN.md, "Static
// analysis & invariants".
//
// # Annotation contract
//
// Suppressions silence one finding at one line, after a human audit,
// when placed on or directly above the flagged line:
//
//   - `//costsense:nondet-ok <why>` — detmap, detsource
//   - `//costsense:alloc-ok <why>` — hotpathalloc, hotpathtrans
//   - `//costsense:retain-ok <why>` — arenaref
//   - `//costsense:shard-ok <why>` — shardsync
//   - `//costsense:lock-ok <why>` — lockguard
//   - `//costsense:ctx-ok <why>` — ctxflow
//   - `//costsense:err-ok <why>` — errflow
//
// A suppression must carry a justification; bare directives are
// themselves reported. Markers change what is checked instead of
// silencing a check: `//costsense:hotpath` opts a function into the
// allocation analyzers, `//costsense:shardbarrier <why>` declares a
// cross-shard quiescence proof. The -audit mode (audit.go) inventories
// every directive and fails on stale or unjustified ones.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive is the comment prefix of all costsense-vet annotations.
const Directive = "//costsense:"

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Suppress names the directive that silences a finding of this
	// analyzer ("nondet-ok", "alloc-ok", "retain-ok"). Empty means the
	// analyzer's findings cannot be suppressed.
	Suppress string
	// Scoped restricts the analyzer to the deterministic core (the
	// root package, internal/..., and cmd/...): examples and scripts
	// may print maps in any order they like.
	Scoped bool
	// Match, when non-nil, further restricts the analyzer to packages
	// it approves (ctxflow covers only the long-lived concurrent
	// layers: internal/serve, internal/harness, cmd). Applied by Check;
	// direct Run calls (the analysistest harness) bypass it.
	Match func(modulePath, importPath string) bool
	Run   func(*Pass)
}

// Diagnostic is one finding, positioned for a file:line:col report.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Tracker records which suppression directives were consulted by any
// analyzer (or by the summary layer) during a run. The -audit mode
// uses it to flag stale directives: a suppression nothing consults no
// longer suppresses anything and should be deleted.
type Tracker struct {
	used map[string]bool // "filename\x00line\x00verb"
}

// NewTracker returns an empty usage tracker.
func NewTracker() *Tracker { return &Tracker{used: make(map[string]bool)} }

func trackerKey(file string, line int, verb string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", file, line, verb)
}

func (t *Tracker) record(file string, line int, verb string) {
	if t != nil {
		t.used[trackerKey(file, line, verb)] = true
	}
}

// Used reports whether any check consulted the directive at file:line.
func (t *Tracker) Used(file string, line int, verb string) bool {
	return t != nil && t.used[trackerKey(file, line, verb)]
}

// Pass carries one analyzer's run over one package and collects its
// diagnostics, applying line-level suppression directives.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Sum holds the module-local interprocedural summaries (summary.go)
	// for the analyzers that consult callee effects (lockguard, ctxflow,
	// hotpathtrans). Populated by Check and RunWith.
	Sum *Summaries

	diags      []Diagnostic
	directives map[string]map[int][]directive // filename -> line -> directives
	tracker    *Tracker
}

// directive is one parsed //costsense: comment.
type directive struct {
	verb   string // e.g. "nondet-ok"
	reason string // the justification text after the verb
}

// NewPass prepares an analyzer run over pkg.
func NewPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{Analyzer: a, Pkg: pkg, directives: make(map[string]map[int][]directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, Directive)
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], directive{verb: verb, reason: strings.TrimSpace(reason)})
			}
		}
	}
	return p
}

// Report records a finding at pos unless a matching suppression
// directive annotates that line or the line directly above it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Analyzer.Suppress != "" {
		if d, ok := p.directiveNear(position, p.Analyzer.Suppress); ok {
			if d.reason != "" {
				return // audited and justified
			}
			p.diags = append(p.diags, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message: fmt.Sprintf("%s%s directive needs a justification (\"%s%s <why>\")",
					Directive, p.Analyzer.Suppress, Directive, p.Analyzer.Suppress),
			})
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveNear finds a verb directive on pos's line or the line
// above, recording the hit with the pass's tracker (consulted
// directives are not stale, whatever the audit verdict).
func (p *Pass) directiveNear(pos token.Position, verb string) (directive, bool) {
	byLine := p.directives[pos.Filename]
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.verb == verb {
				p.tracker.record(pos.Filename, line, verb)
				return d, true
			}
		}
	}
	return directive{}, false
}

// Diagnostics returns the findings in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// CalleeFunc resolves a call to the package-level function or method
// object it invokes, or nil for builtins, conversions, function values
// and indirect calls.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// IsBuiltinCall reports whether call invokes the named builtin.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// InScope reports whether the analyzer applies to the package at
// importPath under its Scoped setting. Packages outside the module's
// deterministic core (examples, scripts) are exempt from the scoped
// determinism analyzers but still see the annotation-driven ones.
func (a *Analyzer) InScope(modulePath, importPath string) bool {
	if !a.Scoped {
		return true
	}
	if importPath == modulePath {
		return true
	}
	for _, sub := range [...]string{"/internal/", "/cmd/"} {
		if strings.HasPrefix(importPath, modulePath+sub) {
			return true
		}
	}
	return false
}

// WalkStack walks the AST rooted at root, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// If fn returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Still push: Inspect will visit children regardless of our
			// bookkeeping only if we return true, so skip consistently.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// Run executes a over pkg and returns its diagnostics, computing the
// package's own interprocedural summaries first (the analysistest
// entry point: testdata packages are self-contained).
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	return RunWith(a, pkg, ComputeSummaries([]*Package{pkg}, nil), nil)
}

// RunWith executes a over pkg with shared summaries and an optional
// directive-usage tracker (Check's entry point: summaries span every
// loaded package, so callee effects cross package boundaries).
func RunWith(a *Analyzer, pkg *Package, sum *Summaries, tr *Tracker) []Diagnostic {
	pass := NewPass(a, pkg)
	pass.Sum = sum
	pass.tracker = tr
	a.Run(pass)
	return pass.Diagnostics()
}
