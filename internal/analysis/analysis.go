// Package analysis is costsense's static-analysis layer: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which is
// deliberately not vendored — the suite must build offline with the
// bare toolchain) plus the four project-specific analyzers behind
// cmd/costsense-vet:
//
//   - detmap: no map-iteration order may reach deterministic output
//   - detsource: no wall clock / global RNG / scheduler queries in
//     simulator and protocol code
//   - hotpathalloc: //costsense:hotpath functions stay allocation-free
//   - arenaref: protocol handlers must not retain arena messages
//
// The simulator's contract — byte-identical Stats for a fixed seed,
// zero allocations per delivered event — is what makes the paper's
// c_π/t_π measurements trustworthy; these analyzers move that contract
// from golden tests into the compile loop. See DESIGN.md, "Static
// analysis & invariants".
//
// # Annotation contract
//
//   - `//costsense:hotpath` in a function's doc comment opts the
//     function into hotpathalloc checking.
//   - `//costsense:nondet-ok <why>` on (or directly above) a flagged
//     line suppresses detmap/detsource after a human audit.
//   - `//costsense:alloc-ok <why>` likewise suppresses hotpathalloc.
//   - `//costsense:retain-ok <why>` likewise suppresses arenaref.
//
// A suppression must carry a justification; bare directives are
// themselves reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive is the comment prefix of all costsense-vet annotations.
const Directive = "//costsense:"

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Suppress names the directive that silences a finding of this
	// analyzer ("nondet-ok", "alloc-ok", "retain-ok"). Empty means the
	// analyzer's findings cannot be suppressed.
	Suppress string
	// Scoped restricts the analyzer to the deterministic core (the
	// root package, internal/..., and cmd/...): examples and scripts
	// may print maps in any order they like.
	Scoped bool
	Run    func(*Pass)
}

// Diagnostic is one finding, positioned for a file:line:col report.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package and collects its
// diagnostics, applying line-level suppression directives.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags      []Diagnostic
	directives map[string]map[int][]directive // filename -> line -> directives
}

// directive is one parsed //costsense: comment.
type directive struct {
	verb   string // e.g. "nondet-ok"
	reason string // the justification text after the verb
}

// NewPass prepares an analyzer run over pkg.
func NewPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{Analyzer: a, Pkg: pkg, directives: make(map[string]map[int][]directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, Directive)
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], directive{verb: verb, reason: strings.TrimSpace(reason)})
			}
		}
	}
	return p
}

// Report records a finding at pos unless a matching suppression
// directive annotates that line or the line directly above it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Analyzer.Suppress != "" {
		if d, ok := p.directiveNear(position, p.Analyzer.Suppress); ok {
			if d.reason != "" {
				return // audited and justified
			}
			p.diags = append(p.diags, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message: fmt.Sprintf("%s%s directive needs a justification (\"%s%s <why>\")",
					Directive, p.Analyzer.Suppress, Directive, p.Analyzer.Suppress),
			})
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveNear finds a verb directive on pos's line or the line above.
func (p *Pass) directiveNear(pos token.Position, verb string) (directive, bool) {
	byLine := p.directives[pos.Filename]
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.verb == verb {
				return d, true
			}
		}
	}
	return directive{}, false
}

// Diagnostics returns the findings in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// CalleeFunc resolves a call to the package-level function or method
// object it invokes, or nil for builtins, conversions, function values
// and indirect calls.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// IsBuiltinCall reports whether call invokes the named builtin.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// InScope reports whether the analyzer applies to the package at
// importPath under its Scoped setting. Packages outside the module's
// deterministic core (examples, scripts) are exempt from the scoped
// determinism analyzers but still see the annotation-driven ones.
func (a *Analyzer) InScope(modulePath, importPath string) bool {
	if !a.Scoped {
		return true
	}
	if importPath == modulePath {
		return true
	}
	for _, sub := range [...]string{"/internal/", "/cmd/"} {
		if strings.HasPrefix(importPath, modulePath+sub) {
			return true
		}
	}
	return false
}

// WalkStack walks the AST rooted at root, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// If fn returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Still push: Inspect will visit children regardless of our
			// bookkeeping only if we return true, so skip consistently.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// Run executes a over pkg and returns its diagnostics.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := NewPass(a, pkg)
	a.Run(pass)
	return pass.Diagnostics()
}
