package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errflow flags call statements that silently discard an error result.
// In the serve layer a dropped Encode or Write error means a client
// saw a truncated response and the server never noticed; in the
// harness it means a lost worker failure. A site where the error is
// genuinely uninteresting — a best-effort write to a client that
// already hung up, a Shutdown racing process exit — is audited with
// `//costsense:err-ok <why>` so the decision is visible in -audit.
//
// The check is syntactic and local: only ExprStmt and DeferStmt calls
// whose callee's final result is of type error are flagged. Three
// writer families are exempt:
//
//   - writers documented never to fail: *bytes.Buffer,
//     *strings.Builder, hash.Hash implementations;
//   - the fmt print family on os.Stdout / os.Stderr (CLI chatter,
//     checked nowhere in Go; a full pipe is not a failure the driver
//     can handle);
//   - writes through sticky-error writers (*bufio.Writer,
//     *text/tabwriter.Writer), whose contract is "write freely, check
//     Flush" — their Flush is NOT exempt, so the one real check is
//     still demanded.
//
// fmt.Fprint to any other writer — a network stream, a file — is
// flagged.
var Errflow = &Analyzer{
	Name:     "errflow",
	Doc:      "flags statement-level calls that discard an error result",
	Suppress: "err-ok",
	Scoped:   true,
	Run:      runErrflow,
}

func runErrflow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				// The spawned call's results are unobservable by
				// construction; flagging `go f()` would demand a wrapper
				// at every spawn. ctxflow owns goroutine discipline.
				call = nil
			}
			if call == nil {
				return true
			}
			checkErrflowCall(pass, call)
			return true
		})
	}
}

func checkErrflowCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return // function values, builtins, conversions: no signature to trust
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	if errflowExempt(pass, call, fn, sig) {
		return
	}
	// Method calls: classify by the receiver expression's static type
	// (the declared receiver of an interface method is the embedding
	// interface — hash.Hash64's Write resolves to io.Writer's).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exemptWriterType(pass.TypeOf(sel.X)) {
			return
		}
	}
	pass.Report(call.Pos(), "result of %s includes an error that is discarded; handle it, or audit with %serr-ok <why>",
		fn.Name(), Directive)
}

// errflowExempt lists callees whose returned error is an interface
// obligation, not a real failure mode.
func errflowExempt(pass *Pass, call *ast.CallExpr, fn *types.Func, sig *types.Signature) bool {
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true // the process streams
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			t := pass.TypeOf(call.Args[0])
			return isStdStream(pass, call.Args[0]) || isStickyWriter(t) || exemptWriterType(t)
		}
	}
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if named, ok := derefNamed(t); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() + "." + obj.Name() {
			case "bytes.Buffer", "strings.Builder":
				return true // documented never to return an error
			}
			if pkg.Path() == "hash" || strings.HasPrefix(pkg.Path(), "hash/") {
				return true // hash.Hash Write never fails
			}
		}
	}
	// Writes into a sticky-error writer defer their failure to Flush.
	return fn.Name() != "Flush" && isStickyWriter(t)
}

// derefNamed unwraps one pointer level and returns the named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// isStickyWriter reports whether t is (a pointer to) a buffered
// writer whose errors are latched and reported by Flush.
func isStickyWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bufio.Writer", "text/tabwriter.Writer":
		return true
	}
	return false
}

// exemptWriterType reports whether t is a never-fails writer judged by
// its own name: *bytes.Buffer, *strings.Builder, or any type declared
// in the hash packages (their Write is documented error-free).
func exemptWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return obj.Pkg().Path() == "hash" || strings.HasPrefix(obj.Pkg().Path(), "hash/")
}

// isStdStream reports whether e denotes os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.ObjectOf(sel.Sel).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
