package analysis_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"costsense/internal/analysis"
)

// auditModule runs the full suite over a fresh load of the module and
// returns the audit report plus its JSON rendering.
func auditModule(t *testing.T) (*analysis.AuditReport, []byte) {
	t.Helper()
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	rels, err := loader.PackageDirs()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPackages(rels)
	if err != nil {
		t.Fatal(err)
	}
	tracker := analysis.NewTracker()
	if diags := analysis.Check(loader, pkgs, tracker); len(diags) != 0 {
		t.Fatalf("audit needs a clean tree, got %d findings (first: %s)", len(diags), diags[0])
	}
	report := analysis.BuildAudit(loader, pkgs, tracker)
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return report, out
}

// TestSelfHostAudit is the audit gate's regression check: the
// repository's own directive inventory must be problem-free (no stale,
// unjustified or unknown directives), must contain the verbs the tree
// is known to rely on, and must serialize byte-identically across two
// independent loads — the nightly CI job diffs these artifacts.
func TestSelfHostAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module audit in -short mode (CI's nightly job covers it)")
	}
	report, out := auditModule(t)
	if report.Problems() {
		t.Errorf("audit problems on the clean tree: stale=%d unjustified=%d unknown=%d",
			report.Stale, report.Unjustified, report.Unknown)
		for _, d := range report.Directives {
			if d.Stale || d.Unjustified || d.Kind == "unknown" {
				t.Errorf("  %s:%d //costsense:%s (stale=%v unjustified=%v kind=%s)",
					d.File, d.Line, d.Verb, d.Stale, d.Unjustified, d.Kind)
			}
		}
	}
	for _, verb := range []string{"nondet-ok", "alloc-ok", "ctx-ok", "err-ok", "lock-ok", "shardbarrier"} {
		if report.ByVerb[verb] == 0 {
			t.Errorf("expected at least one %s directive in the tree", verb)
		}
	}
	if report.ByVerb["hotpath"] != 0 {
		t.Errorf("hotpath markers must be excluded from the audit inventory, got %d", report.ByVerb["hotpath"])
	}

	_, again := auditModule(t)
	if !bytes.Equal(out, again) {
		t.Errorf("audit JSON is not byte-deterministic across loads:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
}

// TestAuditProblems checks that the three problem classes are detected
// on a planted package: a suppression nothing consults is stale, a
// bare suppression is unjustified, and an unrecognized verb is
// unknown. The justified shardbarrier marker stays healthy.
func TestAuditProblems(t *testing.T) {
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "audit"), "costsense-vet.test/audit")
	if err != nil {
		t.Fatal(err)
	}
	tracker := analysis.NewTracker()
	pkgs := []*analysis.Package{pkg}
	analysis.Check(loader, pkgs, tracker)
	report := analysis.BuildAudit(loader, pkgs, tracker)

	if !report.Problems() {
		t.Fatal("planted problems not detected")
	}
	if report.Stale < 2 { // the nondet-ok and the bare alloc-ok are both unconsulted
		t.Errorf("stale = %d, want >= 2", report.Stale)
	}
	if report.Unjustified != 1 {
		t.Errorf("unjustified = %d, want 1 (the bare alloc-ok)", report.Unjustified)
	}
	if report.Unknown != 1 {
		t.Errorf("unknown = %d, want 1 (frobnicate)", report.Unknown)
	}
	byVerb := make(map[string]analysis.DirectiveRecord)
	for _, d := range report.Directives {
		byVerb[d.Verb] = d
	}
	if d := byVerb["nondet-ok"]; !d.Stale || d.Unjustified {
		t.Errorf("nondet-ok: stale=%v unjustified=%v, want stale only", d.Stale, d.Unjustified)
	}
	if d := byVerb["alloc-ok"]; !d.Stale || !d.Unjustified {
		t.Errorf("alloc-ok: stale=%v unjustified=%v, want both", d.Stale, d.Unjustified)
	}
	if d := byVerb["frobnicate"]; d.Kind != "unknown" {
		t.Errorf("frobnicate kind = %q, want unknown", d.Kind)
	}
	if d := byVerb["shardbarrier"]; d.Kind != "marker" || d.Stale || d.Unjustified {
		t.Errorf("shardbarrier: kind=%q stale=%v unjustified=%v, want healthy marker", d.Kind, d.Stale, d.Unjustified)
	}
}
