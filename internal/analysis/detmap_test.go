package analysis_test

import (
	"testing"

	"costsense/internal/analysis"
	"costsense/internal/analysis/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, analysis.Detmap, "detmap")
}

func TestDetsource(t *testing.T) {
	analysistest.Run(t, analysis.Detsource, "detsource")
}

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, analysis.Hotpathalloc, "hotpathalloc")
}

func TestArenaref(t *testing.T) {
	analysistest.Run(t, analysis.Arenaref, "arenaref")
}

// TestScope pins the deterministic-core scope rule: scoped analyzers
// cover the root, internal and cmd packages but not examples.
func TestScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"costsense", true},
		{"costsense/internal/sim", true},
		{"costsense/cmd/costsense", true},
		{"costsense/examples/quickstart", false},
		{"costsense/scripts/benchjson", false},
		{"othermodule/internal/sim", false},
	}
	for _, c := range cases {
		if got := analysis.Detmap.InScope("costsense", c.path); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	for _, c := range cases {
		if got := analysis.Arenaref.InScope("costsense", c.path); !got {
			t.Errorf("unscoped analyzer must apply to %q", c.path)
		}
	}
}

func TestShardsync(t *testing.T) {
	analysistest.Run(t, analysis.Shardsync, "shardsync")
}
