package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// The directive taxonomy. Suppressions silence one analyzer's finding
// at one line and must carry a justification; they go stale when no
// analyzer consults them any more. Markers change what is checked
// rather than silencing a check: hotpath opts a function into the
// allocation analyzers (it is a contract, not an excuse, and carries
// no reason), shardbarrier declares a quiescence proof and must say
// why the workers are parked.
var (
	suppressionVerbs = map[string]string{
		"nondet-ok": "detmap, detsource",
		"alloc-ok":  "hotpathalloc, hotpathtrans",
		"retain-ok": "arenaref",
		"shard-ok":  "shardsync",
		"lock-ok":   "lockguard",
		"ctx-ok":    "ctxflow",
		"err-ok":    "errflow",
	}
	markerVerbs = map[string]bool{
		"hotpath":      true,
		"shardbarrier": true,
	}
)

// DirectiveRecord is one //costsense: annotation in the audited tree,
// as emitted by `costsense-vet -audit`.
type DirectiveRecord struct {
	File string `json:"file"` // module-relative, slash-separated
	Line int    `json:"line"`
	Verb string `json:"verb"`
	// Kind is "suppression" or "marker"; unknown verbs get "unknown"
	// and always count as problems.
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	// Suppresses names the analyzers the verb silences (suppressions
	// only).
	Suppresses string `json:"suppresses,omitempty"`
	// Stale is set on a suppression no analyzer consulted during the
	// run: the finding it once silenced is gone and the directive
	// should be deleted with it.
	Stale bool `json:"stale,omitempty"`
	// Unjustified is set on a suppression or shardbarrier with no
	// reason text.
	Unjustified bool `json:"unjustified,omitempty"`
}

// AuditReport is the complete, deterministic directive inventory.
type AuditReport struct {
	Module     string            `json:"module"`
	Directives []DirectiveRecord `json:"directives"`
	// ByVerb counts the inventory per verb (encoding/json emits map
	// keys sorted, so the report stays byte-stable).
	ByVerb      map[string]int `json:"by_verb"`
	Stale       int            `json:"stale"`
	Unjustified int            `json:"unjustified"`
	Unknown     int            `json:"unknown"`
}

// Problems reports whether the audit should fail the gate.
func (r *AuditReport) Problems() bool {
	return r.Stale > 0 || r.Unjustified > 0 || r.Unknown > 0
}

// BuildAudit inventories every //costsense: directive in pkgs (hotpath
// markers excluded: they are contract annotations inventoried by the
// analyzers themselves, with no justification to audit) and marks
// stale and unjustified entries. tr must come from the Check run over
// the same packages — staleness is "no analyzer consulted this
// suppression during that run".
func BuildAudit(l *Loader, pkgs []*Package, tr *Tracker) *AuditReport {
	report := &AuditReport{Module: l.ModulePath, ByVerb: make(map[string]int)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, rec := range fileDirectives(l, pkg, f) {
				if rec.Verb == "hotpath" {
					continue
				}
				if _, ok := suppressionVerbs[rec.Verb]; ok {
					rec.Kind = "suppression"
					rec.Suppresses = suppressionVerbs[rec.Verb]
					rec.Stale = !tr.Used(absFile(l, rec.File), rec.Line, rec.Verb)
					rec.Unjustified = rec.Reason == ""
				} else if markerVerbs[rec.Verb] {
					rec.Kind = "marker"
					rec.Unjustified = rec.Reason == "" // shardbarrier must say why workers are parked
				} else {
					rec.Kind = "unknown"
					report.Unknown++
				}
				if rec.Stale {
					report.Stale++
				}
				if rec.Unjustified {
					report.Unjustified++
				}
				report.ByVerb[rec.Verb]++
				report.Directives = append(report.Directives, rec)
			}
		}
	}
	sort.Slice(report.Directives, func(i, j int) bool {
		a, b := report.Directives[i], report.Directives[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Verb < b.Verb
	})
	return report
}

// fileDirectives parses the //costsense: comments of one file into
// records with module-relative paths.
func fileDirectives(l *Loader, pkg *Package, f *ast.File) []DirectiveRecord {
	var recs []DirectiveRecord
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, Directive)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(rest, " ")
			pos := pkg.Fset.Position(c.Pos())
			rel, err := filepath.Rel(l.ModuleDir, pos.Filename)
			if err != nil {
				rel = pos.Filename
			}
			recs = append(recs, DirectiveRecord{
				File:   filepath.ToSlash(rel),
				Line:   pos.Line,
				Verb:   verb,
				Reason: strings.TrimSpace(reason),
			})
		}
	}
	return recs
}

// absFile undoes fileDirectives' module-relative mapping for tracker
// lookups, which key on the FileSet's absolute filenames.
func absFile(l *Loader, rel string) string {
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}
