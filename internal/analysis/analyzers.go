package analysis

// All returns the costsense-vet analyzer suite in reporting order:
// the determinism pair, the allocation pair (intra- then
// interprocedural), the retention/synchronization pair, and the v2
// concurrency/lifecycle trio built on the effect summaries.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap, Detsource,
		Hotpathalloc, Hotpathtrans,
		Arenaref, Shardsync,
		Lockguard, Ctxflow, Errflow,
	}
}

// Check runs every applicable analyzer over the packages and returns
// the combined diagnostics in package, then position, order. Effect
// summaries are computed once over the loader's full module-internal
// closure — not just the requested packages — so a callee's blocking
// or allocating behaviour is visible across package boundaries. tr,
// when non-nil, records every directive the run consults (for -audit's
// stale detection).
func Check(l *Loader, pkgs []*Package, tr *Tracker) []Diagnostic {
	sum := ComputeSummaries(l.Loaded(), tr)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range All() {
			if !a.InScope(l.ModulePath, pkg.Path) {
				continue
			}
			if a.Match != nil && !a.Match(l.ModulePath, pkg.Path) {
				continue
			}
			diags = append(diags, RunWith(a, pkg, sum, tr)...)
		}
	}
	return diags
}
