package analysis

// All returns the costsense-vet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Detsource, Hotpathalloc, Arenaref, Shardsync}
}

// Check runs every applicable analyzer over the packages and returns
// the combined diagnostics in package, then position, order.
func Check(l *Loader, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range All() {
			if !a.InScope(l.ModulePath, pkg.Path) {
				continue
			}
			diags = append(diags, Run(a, pkg)...)
		}
	}
	return diags
}
