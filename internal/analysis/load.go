package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers
// operate on. Only non-test files are loaded — the determinism and
// allocation invariants apply to shipped code, and test files are free
// to use maps, wall clocks and fmt as they please.
type Package struct {
	Path  string // import path, e.g. "costsense/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports resolve by directory
// under the module root, everything else goes through the GOROOT
// source importer. This keeps costsense-vet self-contained — it needs
// no golang.org/x/tools and no network.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std  types.Importer // GOROOT source importer, memoizes internally
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at moduleDir, reading the module
// path from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// modulePathOf extracts the module path from moduleDir/go.mod.
func modulePathOf(moduleDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", moduleDir)
}

// Import resolves an import path for the type checker: module-internal
// paths load from the module tree, all others from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// LoadDir loads the package in dir under the given import path. Used
// directly by the analyzer tests to load testdata packages, which live
// outside the module's package tree.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle guard

	files, err := l.parseDir(dir)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, err
	}
	if len(files) == 0 {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, sorted by name for
// deterministic diagnostics.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Loaded returns every module-internal package the loader has loaded —
// requested packages plus their module-internal imports — sorted by
// import path. The summary layer computes effect summaries over this
// closure so callee effects resolve even when costsense-vet is run on
// a subset of packages.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	//costsense:nondet-ok collects keys only; sorted immediately below
	for path, pkg := range l.pkgs {
		if pkg != nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkgs = append(pkgs, l.pkgs[path])
	}
	return pkgs
}

// PackageDirs walks the module tree and returns the directories that
// contain buildable Go files, relative to the module root, in sorted
// order. testdata, examples of other modules, hidden and underscore
// directories are skipped, matching the go tool's convention.
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleDir &&
				(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	rels := make([]string, 0, len(dirs))
	for _, d := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, d)
		if err != nil {
			return nil, err
		}
		rels = append(rels, filepath.ToSlash(rel))
	}
	return rels, nil
}

// ImportPathFor maps a module-relative directory ("." or
// "internal/sim") to its import path.
func (l *Loader) ImportPathFor(rel string) string {
	if rel == "." || rel == "" {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadPackages loads the packages at the given module-relative
// directories, in order.
func (l *Loader) LoadPackages(rels []string) ([]*Package, error) {
	pkgs := make([]*Package, 0, len(rels))
	for _, rel := range rels {
		pkg, err := l.load(l.ImportPathFor(rel), filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
