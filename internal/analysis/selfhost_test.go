package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"costsense/internal/analysis"
)

// TestSelfHost is the self-hosting regression check: the full
// costsense-vet suite must be clean on the repository itself. Any new
// map iteration feeding output, wall-clock read, hot-path allocation
// or handler retention fails this test with the same diagnostic the
// CI lint job would print.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode (CI's lint job covers it)")
	}
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(moduleRoot, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", moduleRoot, err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	rels, err := loader.PackageDirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) < 10 {
		t.Fatalf("suspiciously few packages found: %v", rels)
	}
	pkgs, err := loader.LoadPackages(rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range analysis.Check(loader, pkgs, nil) {
		t.Errorf("costsense-vet finding: %s", d)
	}
}
