// Package lockguardtest exercises the lockguard analyzer: blocking
// operations, nested acquisition and unreleased locks inside mutex
// critical sections are flagged; non-blocking sections, defer-released
// locks and audited lines stay quiet.
package lockguardtest

import (
	"sync"
	"time"
)

var (
	mu    sync.Mutex
	other sync.Mutex
	ch    = make(chan int)
	done  = make(chan struct{})
)

// SendUnderLock parks on a channel send inside the critical section.
func SendUnderLock() {
	mu.Lock()
	ch <- 1 // want "channel send while mu is held"
	mu.Unlock()
}

// ReceiveUnderLock parks on a receive.
func ReceiveUnderLock() {
	mu.Lock()
	<-ch // want "channel receive while mu is held"
	mu.Unlock()
}

// SelectUnderLock parks on a select with no default.
func SelectUnderLock() {
	mu.Lock()
	select { // want "select without default while mu is held"
	case <-done:
	case v := <-ch:
		_ = v
	}
	mu.Unlock()
}

// SleepUnderLock stalls the critical section on the wall clock.
func SleepUnderLock() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
	mu.Unlock()
}

// blocker's summary carries the blocking effect lockguard sees at the
// call site.
func blocker() {
	<-done
}

// CallsBlocker blocks two frames deep: the summary crosses the call.
func CallsBlocker() {
	mu.Lock()
	defer mu.Unlock()
	blocker() // want "call to blocker"
}

// locksOther acquires a second mutex; calling it under mu is a nested
// acquisition by summary.
func locksOther() {
	other.Lock()
	other.Unlock()
}

// NestedBySummary acquires other inside mu's critical section through
// a callee.
func NestedBySummary() {
	mu.Lock()
	locksOther() // want "call to locksOther which acquires another lock"
	mu.Unlock()
}

// NestedDirect acquires two locks on the same path.
func NestedDirect() {
	mu.Lock()
	other.Lock() // want "other is acquired while mu is held"
	other.Unlock()
	mu.Unlock()
}

// DoubleLock re-locks a non-reentrant mutex.
func DoubleLock() {
	mu.Lock()
	mu.Lock() // want "mu is locked twice on the same path"
	mu.Unlock()
	mu.Unlock()
}

// Leak never releases what it takes.
func Leak() {
	mu.Lock() // want "mu is locked in Leak but never released on any path"
}

// Audited carries a justified lock-ok for a summarized acquisition —
// the serve-layer TrySubmit idiom.
func Audited() {
	mu.Lock()
	//costsense:lock-ok admission must be atomic with bookkeeping; callee never parks
	locksOther()
	mu.Unlock()
}

// CleanDefer is the normal idiom: defer-released lock, straight-line
// non-blocking body.
func CleanDefer() int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// CleanTryRecv uses select-with-default: never parks, stays quiet.
func CleanTryRecv() int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// CleanAfterUnlock blocks only after the lock is gone.
func CleanAfterUnlock() {
	mu.Lock()
	mu.Unlock()
	<-ch
}

// CleanGoroutine spawns under the lock; the spawn itself never parks
// (the goroutine's body is ctxflow's concern, not lockguard's).
func CleanGoroutine() {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		<-done
	}()
}
