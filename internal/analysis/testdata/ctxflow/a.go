// Package ctxflowtest exercises the ctxflow analyzer: detached
// contexts, goroutines with no termination path, and blocking or
// spawning functions that cannot observe cancellation are flagged;
// audited roots and context-threaded code stay quiet.
package ctxflowtest

import (
	"context"
	"net/http"
)

var done = make(chan struct{})

// DetachedContexts creates contexts no drain deadline can reach.
func DetachedContexts(ctx context.Context) {
	a := context.Background() // want "context.Background starts a detached context"
	b := context.TODO()       // want "context.TODO starts a detached context"
	_, _ = a, b
	_ = ctx
}

// AuditedRoot is the sanctioned pattern: a justified ctx-ok on the
// root that owns the lifecycle.
func AuditedRoot(ctx context.Context) context.Context {
	//costsense:ctx-ok test root: the cancellation source is created right here
	return context.Background()
}

// Immortal spawns a goroutine with nothing to end it.
//
//costsense:ctx-ok test scaffolding: rule 3 fires separately below
func Immortal() {
	go func() { // want "goroutine has no structurally-identifiable termination path"
		for {
			compute()
		}
	}()
}

// TiedToCtx's goroutine references the context: it can see
// cancellation.
func TiedToCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// TiedToRange ends when the producer closes the channel.
func TiedToRange(ctx context.Context, ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// TiedToRecv ends when the peer signals.
func TiedToRecv(ctx context.Context) {
	go func() {
		<-done
	}()
}

// worker takes a context, so spawning it by name is tied.
func worker(ctx context.Context) {
	<-ctx.Done()
}

// SpawnNamed passes the context to a named callee.
func SpawnNamed(ctx context.Context) {
	go worker(ctx)
}

// compute neither blocks nor spawns: no context needed.
func compute() int {
	return 42
}

// waits blocks on a channel but has no way to observe cancellation.
func waits(ch chan int) int { // want "waits blocks on channels or timers but cannot observe cancellation"
	return <-ch
}

// spawner spawns but cannot observe cancellation; the spawned callee
// takes no context either, so both rules fire.
func spawner() { // want "spawner spawns a goroutine but cannot observe cancellation"
	go compute() // want "goroutine has no structurally-identifiable termination path"
}

// WaitsWithCtx blocks but holds the context: shutdown can reach it.
func WaitsWithCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// handler blocks through its request, whose Context carries
// cancellation.
func handler(w http.ResponseWriter, r *http.Request) {
	<-r.Context().Done()
}

// carrier holds a context in its receiver: its methods can observe
// cancellation.
type carrier struct {
	ctx context.Context
}

// wait blocks, excused by the receiver's context field.
func (c *carrier) wait(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-c.ctx.Done():
		return 0
	}
}
