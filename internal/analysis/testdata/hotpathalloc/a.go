// Package hotpathalloctest exercises the hotpathalloc analyzer: inside
// a //costsense:hotpath function every allocating construct is
// flagged; unannotated functions and audited cold paths stay quiet.
package hotpathalloctest

import "fmt"

type item struct{ v int }

type sink interface{ use() }

func (item) use() {}

// Hot is annotated and full of violations.
//
//costsense:hotpath
func Hot(xs []int, extra []int, s string) int {
	m := map[int]int{} // want "map literal allocates"
	m[1] = 1
	mm := make(map[int]int) // want "make\\(map\\) allocates"
	_ = mm
	ch := make(chan int) // want "make\\(chan\\) allocates"
	_ = ch
	p := new(item) // want "new allocates"
	_ = p
	q := &item{v: 1} // want "&composite literal allocates"
	_ = q
	f := func() int { return 1 } // want "closure in hotpath function Hot"
	_ = f
	msg := fmt.Sprintf("%d", len(xs)) // want "fmt.Sprintf allocates" "int boxed into any"
	_ = msg
	b := []byte(s) // want "string <-> \\[\\]byte conversion copies"
	_ = b
	ys := append(extra, xs...) // want "append to ys grows a different slice than it reads"
	_ = ys
	var boxed sink = item{} // want "item boxed into .*sink allocates"
	_ = boxed
	takeAny(42) // want "int boxed into any allocates"
	return len(xs)
}

// HotClean is annotated and uses only the legal idioms.
//
//costsense:hotpath
func HotClean(xs []int, it *item) int {
	xs = append(xs, 1) // amortized growth of its own backing array
	var s sink = it    // pointer into interface: no box
	s.use()
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// HotAudited suppresses a justified cold-path allocation.
//
//costsense:hotpath
func HotAudited(bad bool) {
	if bad {
		//costsense:alloc-ok cold path: panic on misuse
		panic(fmt.Sprintf("bad: %v", bad))
	}
}

// Cold is unannotated: the same constructs go unflagged.
func Cold(s string) string {
	m := map[int]int{1: 1}
	f := func() int { return m[1] }
	return fmt.Sprintf("%s %d %v", s, f(), []byte(s))
}

func takeAny(v any) { _ = v }
