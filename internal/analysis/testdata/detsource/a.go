// Package detsourcetest exercises the detsource analyzer: wall clock,
// global RNG and scheduler queries are flagged; explicitly seeded
// generators and audited sites stay quiet.
package detsourcetest

import (
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"time"
)

// Flagged draws from every forbidden ambient source.
func Flagged() int64 {
	t := time.Now().UnixNano() // want "time.Now reads the wall clock"
	n := rand.Int63()          // want "global rand.Int63 uses shared, unseeded state"
	k := randv2.IntN(7)        // want "global rand/v2.IntN uses shared, unseeded state"
	w := runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS varies across hosts"
	c := runtime.NumCPU()      // want "runtime.NumCPU varies across hosts"
	return t + n + int64(k) + int64(w) + int64(c)
}

// Seeded uses the sanctioned per-trial generator and stays clean.
func Seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63()
}

// Audited suppresses a justified scheduler query.
func Audited() int {
	//costsense:nondet-ok sizes a worker pool; output is index-ordered
	return runtime.GOMAXPROCS(0)
}

// Elapsed uses time arithmetic on explicit values, not the wall
// clock, and stays clean.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// Timers exercises the wall-clock timer family: real delays have no
// place in simulated time.
func Timers() {
	time.Sleep(time.Millisecond)                 // want "time.Sleep stalls on the wall clock"
	<-time.After(time.Millisecond)               // want "time.After fires on the wall clock"
	tk := time.NewTicker(time.Second)            // want "time.NewTicker fires on the wall clock"
	tm := time.NewTimer(time.Second)             // want "time.NewTimer fires on the wall clock"
	af := time.AfterFunc(time.Second, func() {}) // want "time.AfterFunc fires on the wall clock"
	tk.Stop()
	tm.Stop()
	af.Stop()
}

// AuditedTicker is the serve-layer idiom: a stream-emission cadence
// that is wall-clock by design and never feeds result bytes.
func AuditedTicker() *time.Ticker {
	//costsense:nondet-ok emission cadence only; payloads are deterministic
	return time.NewTicker(time.Second)
}
