// Package errflowtest exercises the errflow analyzer: statement-level
// calls that discard an error result are flagged; assignments, CLI
// chatter on the process streams, never-fail writers, sticky-error
// writes and audited lines stay quiet.
package errflowtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

func mayFail() error { return nil }

// Discards drops errors on the floor.
func Discards(w io.Writer, enc *json.Encoder) {
	mayFail()       // want "result of mayFail includes an error that is discarded"
	defer mayFail() // want "result of mayFail includes an error that is discarded"
	w.Write(nil)    // want "result of Write includes an error that is discarded"
	enc.Encode(nil) // want "result of Encode includes an error that is discarded"
	fmt.Fprintln(w) // want "result of Fprintln includes an error that is discarded"
}

// Handles consumes every error it is given.
func Handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // an explicit discard is a decision, not an accident
	return nil
}

// Chatter writes to the process streams: checked nowhere in Go.
func Chatter() {
	fmt.Println("hello")
	fmt.Fprintln(os.Stderr, "hello")
	fmt.Fprintf(os.Stdout, "%d\n", 1)
}

// NeverFails writes into in-memory and hash sinks documented not to
// return errors.
func NeverFails() {
	var buf bytes.Buffer
	buf.WriteString("x")
	fmt.Fprintln(&buf, "y")
	var sb strings.Builder
	sb.WriteByte('z')
	h := fnv.New64a()
	h.Write([]byte("w"))
}

// Sticky writes through a bufio.Writer: errors are latched and
// surface at Flush, which must still be checked.
func Sticky(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("x")
	fmt.Fprintln(bw, "y")
	bw.Flush() // want "result of Flush includes an error that is discarded"
	return bw.Flush()
}

// Audited carries a justified err-ok.
func Audited(w io.Writer) {
	//costsense:err-ok test: the peer hung up; there is no one left to tell
	w.Write(nil)
}
