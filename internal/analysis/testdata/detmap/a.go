// Package detmaptest exercises the detmap analyzer: map iteration is
// flagged, audited loops and sorted key extraction stay quiet.
package detmaptest

import (
	"maps"
	"slices"
)

// Flagged iterates maps without fixing the order.
func Flagged(m map[string]int) int {
	total := 0
	for k := range m { // want "range over map\\[string\\]int iterates in randomized order"
		total += len(k)
	}
	for _, v := range m { // want "range over map"
		total += v
	}
	ks := maps.Keys(m) // want "maps.Keys yields keys in randomized order"
	_ = ks
	return total
}

// Audited carries a justified suppression and stays clean.
func Audited(m map[string]int) int {
	total := 0
	//costsense:nondet-ok commutative sum; order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}

// Unjustified has a bare directive, which is itself reported.
func Unjustified(m map[string]int) {
	//costsense:nondet-ok
	for range m { // want "directive needs a justification"
	}
}

// SortedKeys fixes the order immediately and stays clean.
func SortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// SliceRange is not a map and stays clean.
func SliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
