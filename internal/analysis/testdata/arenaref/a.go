// Package arenareftest exercises the arenaref analyzer: protocol
// handlers that store the arena message past their return are flagged;
// forwarding, local use and audited buffers stay quiet.
package arenareftest

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

type payload struct{ n int }

var lastSeen sim.Message

// Retainer stores the message in ways that outlive the call.
type Retainer struct {
	saved sim.Message
	buf   []sim.Message
	byKey map[int]sim.Message
	ptr   *payload
}

func (r *Retainer) Init(ctx sim.Context) {}

func (r *Retainer) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	r.saved = m              // want "stores arena message m into r.saved"
	r.buf = append(r.buf, m) // want "stores arena message m into r.buf"
	r.byKey[0] = m           // want "stores arena message m into r.byKey\\[0\\]"
	lastSeen = m             // want "stores arena message m into lastSeen"
	pl, ok := m.(*payload)   // taints the local alias
	if ok {
		r.ptr = pl // want "stores arena message m into r.ptr"
	}
}

// Forwarder only reads, forwards and drops the message: clean.
type Forwarder struct {
	count int
}

func (f *Forwarder) Init(ctx sim.Context) {}

func (f *Forwarder) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	if pl, ok := m.(*payload); ok {
		f.count += pl.n // copying a field out is fine
	}
	for _, h := range ctx.Neighbors() {
		ctx.Send(h.To, m) // forwarding transfers ownership
	}
	local := m
	_ = local
}

// Audited defers messages behind a justified suppression, like the
// GHS core's test/connect buffering.
type Audited struct {
	deferred []sim.Message
}

func (a *Audited) Init(ctx sim.Context) {}

func (a *Audited) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	//costsense:retain-ok payloads are sender-owned immutable values, not arena-recycled yet
	a.deferred = append(a.deferred, m)
}

// NotAHandler has the name but not the signature: ignored.
type NotAHandler struct{ saved int }

func (n *NotAHandler) Handle(v int) { n.saved = v }

// LeakyObserver is a sim.Observer that illegally retains the in-flight
// payload: observer probes see arena messages under the same
// no-retention contract as protocol handlers.
type LeakyObserver struct {
	payloads []sim.Message
	last     sim.Message
}

func (o *LeakyObserver) OnSend(e sim.SendEvent, m sim.Message) {
	o.payloads = append(o.payloads, m) // want "stores arena message m into o.payloads"
}

func (o *LeakyObserver) OnDeliver(e sim.DeliverEvent, m sim.Message) {
	o.last = m // want "stores arena message m into o.last"
}

func (o *LeakyObserver) OnDrop(e sim.DropEvent, m sim.Message) {
	o.last = m // want "stores arena message m into o.last"
}

// CleanObserver only reads scalar event fields and copies payload data
// out by value: quiet. Discarding the payload with _ opts out entirely.
type CleanObserver struct {
	sends, sum int
}

func (o *CleanObserver) OnSend(e sim.SendEvent, m sim.Message) {
	o.sends++
	if pl, ok := m.(*payload); ok {
		o.sum += pl.n // copying a field out is fine
	}
}

func (o *CleanObserver) OnDeliver(e sim.DeliverEvent, _ sim.Message) {
	o.sends--
}

func (o *CleanObserver) OnDrop(e sim.DropEvent, m sim.Message) {
	if pl, ok := m.(*payload); ok {
		o.sum -= pl.n // copying a field out of a dropped payload is fine
	}
}

// leakyCausalRec pairs a happens-before edge with the payload itself —
// the illegal shape for a causal observer, whose DAG buffers outlive
// every probe call.
type leakyCausalRec struct {
	cause int64
	m     sim.Message
}

// LeakyCausal mirrors the causal observer's record-appending probe but
// wrongly keeps the arena message inside the DAG record.
type LeakyCausal struct {
	recs []leakyCausalRec
}

func (c *LeakyCausal) OnSend(e sim.SendEvent, m sim.Message) {
	c.recs = append(c.recs, leakyCausalRec{cause: e.Cause, m: m}) // want "stores arena message m into c.recs"
}

func (c *LeakyCausal) OnDeliver(e sim.DeliverEvent, m sim.Message) {
	c.recs[e.Seq-1].m = m // want "stores arena message m into c.recs\\[e.Seq - 1\\].m"
}

func (c *LeakyCausal) OnDrop(e sim.DropEvent, _ sim.Message) {}

// CleanCausal records only the scalar event fields — the legal causal
// observer shape: the DAG holds sequence numbers and times, never the
// payload.
type CleanCausal struct {
	causes []int64
	marks  []bool
}

func (c *CleanCausal) OnSend(e sim.SendEvent, _ sim.Message) {
	c.causes = append(c.causes, e.Cause)
	c.marks = append(c.marks, false)
}

func (c *CleanCausal) OnDeliver(e sim.DeliverEvent, _ sim.Message) {
	c.marks[e.Seq-1] = true
}

func (c *CleanCausal) OnDrop(e sim.DropEvent, _ sim.Message) {}
