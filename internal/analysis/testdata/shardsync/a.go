// Package shardsynctest exercises the shardsync analyzer: selectors on
// a []*shard field are cross-shard state access, legal only inside
// //costsense:shardbarrier functions (or on lines audited with
// //costsense:shard-ok <why>).
package shardsynctest

// shard mimics the engine's worker state.
type shard struct {
	id  int
	eng *engine
	out [][]int
}

// engine mimics parEngine: shards is the guarded table.
type engine struct {
	shards []*shard
	other  []*int // a different slice type: never flagged
}

// process is a worker-phase function: touching the table races.
func (s *shard) process() int {
	total := 0
	for _, o := range s.eng.shards { // want "access to shard table s.eng.shards"
		total += o.id
	}
	return total
}

// peek indexes the table directly.
func peek(e *engine) int {
	return e.shards[0].id // want "access to shard table e.shards"
}

// sizeOnly still reaches the table: len is an access too.
func sizeOnly(e *engine) int {
	return len(e.shards) // want "access to shard table e.shards"
}

// drain is a barrier function: the same access is legal.
//
//costsense:shardbarrier workers are quiescent during the drain phase
func (s *shard) drain() {
	for _, o := range s.eng.shards {
		o.out[s.id] = o.out[s.id][:0]
	}
}

// audited shows the line-level escape hatch.
func audited(e *engine) int {
	//costsense:shard-ok read-only fan-in after the run for this test
	return e.shards[0].id
}

// bare suppressions still need a justification.
func bare(e *engine) int {
	//costsense:shard-ok
	return e.shards[0].id // want "directive needs a justification"
}

// localShards is not a field selector: a plain local slice of shards
// is whatever its owner says it is, and only the engine table is
// guarded.
func localShards(ss []*shard) int {
	total := 0
	for _, s := range ss {
		total += s.id
	}
	return total
}

// otherField has the wrong element type and stays quiet.
func otherField(e *engine) int {
	return len(e.other)
}
