// Package audittest is fodder for TestAuditProblems: it plants one
// directive of each problem class — a stale suppression (nothing here
// triggers detsource, so no analyzer consults it), an unjustified bare
// suppression, an unknown verb — plus one healthy justified marker.
package audittest

func quiet() int {
	//costsense:nondet-ok this excuse outlived the finding it silenced
	a := 1
	//costsense:alloc-ok
	b := 2
	//costsense:frobnicate not a verb costsense-vet knows
	c := 3
	return a + b + c
}

// barrier is a healthy, justified marker: inventoried, never stale.
//
//costsense:shardbarrier test: all workers joined on the line above
func barrier() { quiet() }
