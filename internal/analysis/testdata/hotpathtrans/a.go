// Package hotpathtranstest exercises the hotpathtrans analyzer: a
// //costsense:hotpath function calling a module-local callee whose
// summary allocates — directly or further down — is flagged with the
// allocation witness; hotpath callees, audited calls and callees whose
// only allocations are themselves audited stay quiet.
package hotpathtranstest

// allocLeaf is the bottom of the allocating chain.
func allocLeaf(n int) map[int]int {
	return make(map[int]int, n)
}

// middle does not allocate itself; it inherits allocLeaf's effect.
func middle(n int) int {
	return len(allocLeaf(n))
}

// direct allocates in its own body.
func direct(n int) []int {
	return append([]int(nil), n)
}

// audited's only allocation carries an alloc-ok audit, so its summary
// is clean and callers are not poisoned.
func audited(n int) int {
	//costsense:alloc-ok test: audited cold path; excused transitively by design
	m := make(map[int]int, n)
	return len(m)
}

// sum is pure.
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// fastLeaf is itself hotpath-checked, so transitive checking skips it.
//
//costsense:hotpath
func fastLeaf(xs []int) int {
	return len(xs)
}

// Hot is the checked caller.
//
//costsense:hotpath
func Hot(xs []int) int {
	t := sum(xs)      // pure callee: clean
	t += fastLeaf(xs) // hotpath callee: hotpathalloc's job, not ours
	t += audited(len(xs))
	t += middle(len(xs)) // want "call to middle allocates on the hot path" "via allocLeaf"
	t += len(direct(t))  // want "call to direct allocates on the hot path"
	return t
}

// HotAudited suppresses the transitive finding with a justification.
//
//costsense:hotpath
func HotAudited(xs []int) int {
	//costsense:alloc-ok test: cold fallback taken once per run
	return middle(len(xs))
}
