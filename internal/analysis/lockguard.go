package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockguard enforces the lock discipline of the serve/harness layer:
// while a sync.Mutex or RWMutex is held, the goroutine must not park
// or stall — no channel send/receive, no select without default, no
// time.Sleep or Wait, no stream I/O (a slow HTTP client would extend
// the critical section indefinitely), and no call to a module-local
// callee whose summary says it blocks or takes another lock (nested
// acquisition is a lock-ordering hazard: the inner Lock can park the
// goroutine while the outer one starves every other caller). It also
// requires every acquired lock to be released somewhere in the same
// function — an Unlock or defer Unlock on the same lock expression.
//
// The check is intraprocedural over a syntactic held-set (Lock adds,
// Unlock removes, defer Unlock holds to function end; branches are
// scanned with a copy and the straight-line set continues after them),
// with callee effects supplied by the interprocedural summaries
// (summary.go). Genuinely non-blocking calls under a lock — a bounded
// TrySubmit whose admission must be atomic with bookkeeping — are
// audited with `//costsense:lock-ok <why>`.
var Lockguard = &Analyzer{
	Name:     "lockguard",
	Doc:      "flags blocking operations and nested acquisition while a mutex is held, and unreleased locks",
	Suppress: "lock-ok",
	Scoped:   true,
	Run:      runLockguard,
}

func runLockguard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockguardFunc(pass, fd)
		}
	}
}

// lockOp classifies a statement-level call as a lock acquisition or
// release on a concrete lock expression ("s.mu").
type lockOp struct {
	key     string
	pos     token.Pos
	acquire bool
}

func (p *Pass) lockOpOf(call *ast.CallExpr) (lockOp, bool) {
	fn := p.CalleeFunc(call)
	if fn == nil {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	switch {
	case isMutexAcquire(fn):
		return lockOp{key: exprString(sel.X), pos: call.Pos(), acquire: true}, true
	case isMutexRelease(fn):
		return lockOp{key: exprString(sel.X), pos: call.Pos()}, true
	}
	return lockOp{}, false
}

func checkLockguardFunc(pass *Pass, fd *ast.FuncDecl) {
	g := &lockScan{pass: pass, fd: fd, released: make(map[string]bool)}
	// Pre-pass: which lock keys does the function ever release
	// (explicitly or by defer)? Used for the leak check.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := pass.lockOpOf(call); ok && !op.acquire {
			g.released[op.key] = true
		}
		return true
	})
	g.scanStmts(fd.Body.List, map[string]token.Pos{})
	for _, leak := range g.leaks {
		pass.Report(leak.pos, "%s is locked in %s but never released on any path (add an Unlock or defer, or audit with %slock-ok <why>)",
			leak.key, fd.Name.Name, Directive)
	}
}

type lockScan struct {
	pass     *Pass
	fd       *ast.FuncDecl
	released map[string]bool
	leaks    []lockOp
}

// scanStmts walks a statement list tracking the held-lock set. Nested
// control flow is scanned with a copy of the set — an unlock inside a
// branch does not clear the straight-line path (conservative: a
// maybe-held lock still forbids blocking).
func (g *lockScan) scanStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		g.scanStmt(stmt, held)
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	//costsense:nondet-ok set copy; iteration order cannot reach any output
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (g *lockScan) scanStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if op, ok := g.pass.lockOpOf(call); ok {
				if op.acquire {
					g.acquire(op, held)
				} else {
					delete(held, op.key)
				}
				// The Lock/Unlock call itself is never a finding; its
				// arguments cannot block.
				return
			}
		}
		g.checkBlocking(s, held)
	case *ast.DeferStmt:
		if op, ok := g.pass.lockOpOf(s.Call); ok && !op.acquire {
			// defer x.Unlock(): released at return; the lock stays held
			// for the rest of the body, so blocking checks continue.
			return
		}
		// Other deferred calls run at return, commonly after unlock
		// ordering games; argument evaluation happens now but cannot
		// block. Skip.
	case *ast.SendStmt:
		if len(held) > 0 {
			g.report(s.Pos(), "channel send", held)
		}
		g.checkBlocking(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.scanStmt(s.Init, held)
		}
		g.checkBlocking(s.Cond, held)
		g.scanStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			g.scanStmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		g.scanStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			g.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			g.checkBlocking(s.Cond, held)
		}
		g.scanStmts(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t := g.pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					g.report(s.Pos(), "range over channel", held)
				}
			}
		}
		g.checkBlocking(s.X, held)
		g.scanStmts(s.Body.List, cloneHeld(held))
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			if len(held) > 0 {
				g.report(s.Pos(), "select without default", held)
			}
		}
		for _, c := range s.Body.List {
			g.scanStmts(c.(*ast.CommClause).Body, cloneHeld(held))
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			g.checkBlocking(s.Tag, held)
		}
		for _, c := range s.Body.List {
			g.scanStmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			g.scanStmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.LabeledStmt:
		g.scanStmt(s.Stmt, held)
	case *ast.GoStmt:
		// Spawning never blocks; the goroutine's body runs elsewhere
		// (ctxflow owns its termination story).
	case *ast.ReturnStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
		g.checkBlocking(stmt, held)
	default:
		g.checkBlocking(stmt, held)
	}
}

func (g *lockScan) acquire(op lockOp, held map[string]token.Pos) {
	if len(held) > 0 {
		for _, outer := range heldKeys(held) {
			if outer != op.key {
				g.pass.Report(op.pos, "%s is acquired while %s is held; nested locking can park this goroutine and starve %s's other critical sections (reorder, or audit with %slock-ok <why>)",
					op.key, outer, outer, Directive)
				break
			}
		}
		if _, dup := held[op.key]; dup {
			g.pass.Report(op.pos, "%s is locked twice on the same path; sync mutexes are not reentrant", op.key)
		}
	}
	held[op.key] = op.pos
	if !g.released[op.key] {
		g.leaks = append(g.leaks, op)
	}
}

// checkBlocking walks an expression/statement (closures and spawned
// goroutines excluded) and reports blocking constructs while any lock
// is held.
func (g *lockScan) checkBlocking(n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				g.report(m.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			g.checkCall(m, held)
		}
		return true
	})
}

func (g *lockScan) checkCall(call *ast.CallExpr, held map[string]token.Pos) {
	fn := g.pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	if eff, label, ok := stdlibCallClass(g.pass.Pkg, call, fn); ok && eff.Blocks() {
		g.report(call.Pos(), label, held)
		return
	}
	if isMutexAcquire(fn) || isMutexRelease(fn) {
		return // handled at statement level; expression-position locks are rare and benign
	}
	if sum := g.pass.Sum.Of(fn); sum != nil {
		switch {
		case sum.All.Blocks():
			g.report(call.Pos(), "call to "+fn.Name()+" (summary: "+sum.All.String()+")", held)
		case sum.All&EffAcquires != 0:
			g.report(call.Pos(), "call to "+fn.Name()+" which acquires another lock", held)
		}
	}
}

func (g *lockScan) report(pos token.Pos, what string, held map[string]token.Pos) {
	keys := heldKeys(held)
	g.pass.Report(pos, "%s while %s is held can stall every other critical section (move it outside the lock, or audit with %slock-ok <why>)",
		what, keys[0], Directive)
}

// heldKeys returns the held lock names sorted for deterministic
// diagnostics.
func heldKeys(held map[string]token.Pos) []string {
	keys := make([]string, 0, len(held))
	//costsense:nondet-ok keys are sorted below before any output
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
