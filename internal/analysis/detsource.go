package analysis

import (
	"go/ast"
	"go/types"
)

// Detsource forbids ambient nondeterminism sources in the
// deterministic core: the wall clock (time.Now and friends), the
// globally-seeded math/rand and math/rand/v2 top-level functions, and
// scheduler/host queries (runtime.GOMAXPROCS, NumCPU, NumGoroutine)
// whose answers vary across machines. Simulator and protocol code must
// draw randomness from the per-trial seeded *rand.Rand the Network
// owns (sim.WithSeed), so a fixed seed replays the exact event
// sequence — the property every golden Stats test and every figure in
// EXPERIMENTS.md depends on.
//
// rand.New, rand.NewSource and the other constructor functions stay
// legal: building an explicitly-seeded generator is the sanctioned
// pattern, using the shared global one is the bug.
var Detsource = &Analyzer{
	Name:     "detsource",
	Doc:      "forbids wall clock, global RNG and scheduler queries in deterministic packages",
	Suppress: "nondet-ok",
	Scoped:   true,
	Run:      runDetsource,
}

// randConstructors are the math/rand functions that build explicit
// generators rather than touching the package-global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// forbiddenFuncs maps package path -> function name -> diagnostic.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "time.Now reads the wall clock; simulated time is ctx.Now()",
		"Since":     "time.Since reads the wall clock; simulated time is ctx.Now()",
		"Until":     "time.Until reads the wall clock; simulated time is ctx.Now()",
		"Sleep":     "time.Sleep stalls on the wall clock; simulated delay is a scheduled event",
		"After":     "time.After fires on the wall clock; simulated delay is a scheduled event",
		"Tick":      "time.Tick fires on the wall clock (and leaks its ticker); simulated delay is a scheduled event",
		"NewTicker": "time.NewTicker fires on the wall clock; simulated delay is a scheduled event",
		"NewTimer":  "time.NewTimer fires on the wall clock; simulated delay is a scheduled event",
		"AfterFunc": "time.AfterFunc fires on the wall clock; simulated delay is a scheduled event",
	},
	"runtime": {
		"GOMAXPROCS":   "runtime.GOMAXPROCS varies across hosts; results must not depend on worker count",
		"NumCPU":       "runtime.NumCPU varies across hosts; results must not depend on worker count",
		"NumGoroutine": "runtime.NumGoroutine depends on scheduler state",
	},
}

func runDetsource(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: a method on an explicit
			// *rand.Rand or time.Time value is fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch path {
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Report(call.Pos(),
						"global %s.%s uses shared, unseeded state; use the per-trial seeded *rand.Rand (sim.WithSeed)",
						pathBase(path), name)
				}
			default:
				if msg, ok := forbiddenFuncs[path][name]; ok {
					pass.Report(call.Pos(), "%s (audit with %snondet-ok <why> if genuinely order-independent)", msg, Directive)
				}
			}
			return true
		})
	}
}

func pathBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
