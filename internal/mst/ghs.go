// Package mst implements the minimum spanning tree algorithms of §8:
//
//   - MSTghs — the Gallager–Humblet–Spira algorithm, whose weighted
//     complexity is O(𝓔 + 𝓥·log n) communication (Lemma 8.1);
//   - MSTfast — the §8.3 modification: fragments search for their
//     minimum outgoing edge by doubling a weight guess θ and testing
//     all edges below θ in parallel, trading communication
//     (O(𝓔·log n·log 𝓥)) for time (O(Diam(MST)·log n·log 𝓥));
//   - MSThybrid — the §8.2 combination of a DFS-controlled GHS with
//     algorithm MSTcentr, achieving O(min{𝓔 + 𝓥 log n, n𝓥}).
//
// Edge weights are tie-broken lexicographically by (w, min endpoint,
// max endpoint), so the MST is unique and fragment names are distinct —
// the standing assumption of [GHS83].
package mst

import (
	"fmt"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// ScanMode selects how a fragment searches for its minimum outgoing
// edge.
type ScanMode int

// Scan modes.
const (
	// ScanSerial is classic GHS: each vertex tests its basic edges one
	// at a time in increasing weight order.
	ScanSerial ScanMode = iota + 1
	// ScanParallel is MSTfast (§8.3): the fragment root maintains a
	// weight guess θ; vertices test all basic edges of weight <= θ in
	// parallel, and the root doubles θ when the search fails.
	ScanParallel
)

// Name is the tie-broken weight of an edge, used as a fragment name and
// for all weight comparisons; distinct for distinct edges.
type Name struct {
	W    int64
	U, V graph.NodeID // U < V
}

// InfName is the +∞ sentinel.
var InfName = Name{W: int64(1) << 62}

// MakeName builds the tie-broken name of edge (a, b) with weight w.
func MakeName(a, b graph.NodeID, w int64) Name {
	if a > b {
		a, b = b, a
	}
	return Name{W: w, U: a, V: b}
}

// Less is the total order on names.
func (n Name) Less(o Name) bool {
	if n.W != o.W {
		return n.W < o.W
	}
	if n.U != o.U {
		return n.U < o.U
	}
	return n.V < o.V
}

// IsInf reports whether the name is the +∞ sentinel.
func (n Name) IsInf() bool { return n == InfName }

// node states
const (
	stSleeping byte = iota
	stFind
	stFound
)

// edge states
const (
	seBasic byte = iota
	seBranch
	seRejected
)

// GHS protocol messages.
type (
	// MsgConnect asks to join fragments over this edge.
	MsgConnect struct{ Level int }
	// MsgInitiate starts (or restarts) a find phase down a fragment.
	MsgInitiate struct {
		Level int
		Frag  Name
		State byte
		Guess int64 // θ in ScanParallel
	}
	// MsgTest asks whether the receiver is in a different fragment.
	MsgTest struct {
		Level int
		Frag  Name
	}
	// MsgAccept answers a test positively (different fragment).
	MsgAccept struct{}
	// MsgReject answers a test negatively (same fragment).
	MsgReject struct{}
	// MsgReport carries the subtree's best outgoing candidate. HasMore
	// reports untested basic edges above θ (ScanParallel only).
	MsgReport struct {
		Best    Name
		HasMore bool
	}
	// MsgChangeRoot moves the fragment root toward the best edge.
	MsgChangeRoot struct{}
	// MsgDone floods termination over the finished MST. Leader is the
	// core vertex that detected completion: since the MST is unique
	// and its construction ends at a single core edge, Leader is the
	// same at every node, which turns MSTghs into a leader election
	// protocol at no extra asymptotic cost — the [Awe87] reduction the
	// paper invokes in §8.
	MsgDone struct{ Leader graph.NodeID }
)

type deferredMsg struct {
	from graph.NodeID
	m    sim.Message
}

// GHSCore is the per-node state machine of MSTghs / MSTfast.
type GHSCore struct {
	Mode ScanMode

	// Branch reports the final edge states: Branch[u] is true when the
	// edge to neighbor u is an MST edge.
	Branch map[graph.NodeID]bool
	// Done is set everywhere once the MST is complete.
	Done bool
	// Halted is set at the deciding core vertex.
	Halted bool
	// Leader is the elected coordinator (the deciding core vertex),
	// identical at every node once Done.
	Leader graph.NodeID

	state     byte
	level     int
	frag      Name
	se        map[graph.NodeID]byte
	inBranch  graph.NodeID
	bestEdge  graph.NodeID
	bestWt    Name
	findCount int
	deferred  []deferredMsg

	// serial scan
	testEdge graph.NodeID // -1 when none

	// parallel scan
	guess       int64
	outstanding map[graph.NodeID]bool
	scanStarted bool
	hasMoreSelf bool
	hasMoreSub  bool
}

// NewGHSCore returns a core for one node.
func NewGHSCore(mode ScanMode) *GHSCore {
	return &GHSCore{
		Mode:        mode,
		Branch:      make(map[graph.NodeID]bool),
		Leader:      -1,
		se:          make(map[graph.NodeID]byte),
		inBranch:    -1,
		bestEdge:    -1,
		bestWt:      InfName,
		testEdge:    -1,
		outstanding: make(map[graph.NodeID]bool),
	}
}

func (c *GHSCore) nameOf(p basic.Port, u graph.NodeID) Name {
	for _, h := range p.Neighbors() {
		if h.To == u {
			return MakeName(p.ID(), u, h.W)
		}
	}
	panic(fmt.Sprintf("mst: node %d has no edge to %d", p.ID(), u))
}

// Wakeup is the GHS wake-up: connect over the minimum incident edge.
func (c *GHSCore) Wakeup(p basic.Port) {
	if c.state != stSleeping {
		return
	}
	best := graph.NodeID(-1)
	bestName := InfName
	for _, h := range p.Neighbors() {
		if nm := MakeName(p.ID(), h.To, h.W); nm.Less(bestName) {
			bestName = nm
			best = h.To
		}
	}
	c.state = stFound
	c.level = 0
	c.findCount = 0
	if best < 0 {
		// Isolated vertex: trivially done and its own leader.
		c.Done = true
		c.Leader = p.ID()
		return
	}
	c.se[best] = seBranch
	c.Branch[best] = true
	p.Send(best, MsgConnect{Level: 0})
}

// Handle processes one message, then retries deferred messages.
func (c *GHSCore) Handle(p basic.Port, from graph.NodeID, m sim.Message) {
	if !c.dispatch(p, from, m) {
		// GHS defers messages that arrive ahead of the local level
		// (classic test/connect buffering). Payloads are immutable
		// sender-constructed values today, so holding them across
		// deliveries is safe; revisit when payloads move into a typed
		// arena.
		//costsense:retain-ok payloads are sender-owned immutable values, not arena-recycled yet
		c.deferred = append(c.deferred, deferredMsg{from: from, m: m})
	}
	c.retryDeferred(p)
}

func (c *GHSCore) retryDeferred(p basic.Port) {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(c.deferred); i++ {
			d := c.deferred[i]
			if c.dispatch(p, d.from, d.m) {
				c.deferred = append(c.deferred[:i], c.deferred[i+1:]...)
				progress = true
				break
			}
		}
	}
}

// dispatch processes m and returns false when it must be deferred.
func (c *GHSCore) dispatch(p basic.Port, from graph.NodeID, m sim.Message) bool {
	switch msg := m.(type) {
	case MsgConnect:
		return c.onConnect(p, from, msg)
	case MsgInitiate:
		c.onInitiate(p, from, msg)
		return true
	case MsgTest:
		return c.onTest(p, from, msg)
	case MsgAccept:
		c.onAccept(p, from)
		return true
	case MsgReject:
		c.onReject(p, from)
		return true
	case MsgReport:
		return c.onReport(p, from, msg)
	case MsgChangeRoot:
		c.changeRoot(p)
		return true
	case MsgDone:
		c.onDone(p, from, msg)
		return true
	default:
		panic(fmt.Sprintf("mst: GHSCore got %T", m))
	}
}

func (c *GHSCore) onConnect(p basic.Port, j graph.NodeID, m MsgConnect) bool {
	c.Wakeup(p)
	if m.Level < c.level {
		// Absorb the lower-level fragment.
		c.se[j] = seBranch
		c.Branch[j] = true
		p.Send(j, MsgInitiate{Level: c.level, Frag: c.frag, State: c.state, Guess: c.guess})
		if c.state == stFind {
			c.findCount++
		}
		return true
	}
	if c.se[j] == seBasic {
		return false // defer until the local state catches up
	}
	// Merge: both sides chose this edge; it becomes the new core.
	p.Send(j, MsgInitiate{
		Level: c.level + 1,
		Frag:  c.nameOf(p, j),
		State: stFind,
		Guess: 1,
	})
	return true
}

func (c *GHSCore) onInitiate(p basic.Port, j graph.NodeID, m MsgInitiate) {
	c.level = m.Level
	c.frag = m.Frag
	c.state = m.State
	c.inBranch = j
	c.bestEdge = -1
	c.bestWt = InfName
	c.guess = m.Guess
	c.hasMoreSub = false
	c.findCount = 0
	for _, h := range p.Neighbors() {
		if h.To != j && c.se[h.To] == seBranch {
			p.Send(h.To, MsgInitiate{Level: m.Level, Frag: m.Frag, State: m.State, Guess: m.Guess})
			if m.State == stFind {
				c.findCount++
			}
		}
	}
	if m.State == stFind {
		c.beginScan(p)
	}
}

// beginScan starts this node's own outgoing-edge search.
func (c *GHSCore) beginScan(p basic.Port) {
	switch c.Mode {
	case ScanSerial:
		c.testSerial(p)
	case ScanParallel:
		c.testParallel(p)
	}
}

// testSerial tests the minimum basic edge, or completes the local scan.
func (c *GHSCore) testSerial(p basic.Port) {
	best := graph.NodeID(-1)
	bestName := InfName
	for _, h := range p.Neighbors() {
		if c.se[h.To] != seBasic {
			continue
		}
		if nm := MakeName(p.ID(), h.To, h.W); nm.Less(bestName) {
			bestName = nm
			best = h.To
		}
	}
	if best < 0 {
		c.testEdge = -1
		c.maybeReport(p)
		return
	}
	c.testEdge = best
	p.Send(best, MsgTest{Level: c.level, Frag: c.frag})
}

// testParallel tests every basic edge of weight <= θ at once.
func (c *GHSCore) testParallel(p basic.Port) {
	c.scanStarted = true
	c.hasMoreSelf = false
	c.outstanding = make(map[graph.NodeID]bool)
	for _, h := range p.Neighbors() {
		if c.se[h.To] != seBasic {
			continue
		}
		if h.W > c.guess {
			c.hasMoreSelf = true
			continue
		}
		c.outstanding[h.To] = true
		p.Send(h.To, MsgTest{Level: c.level, Frag: c.frag})
	}
	if len(c.outstanding) == 0 {
		c.maybeReport(p)
	}
}

func (c *GHSCore) onTest(p basic.Port, j graph.NodeID, m MsgTest) bool {
	c.Wakeup(p)
	if m.Level > c.level {
		return false // defer until this node's level catches up
	}
	if m.Frag != c.frag {
		p.Send(j, MsgAccept{})
		return true
	}
	// Same fragment: the edge is internal.
	if c.se[j] == seBasic {
		c.se[j] = seRejected
	}
	switch c.Mode {
	case ScanSerial:
		if c.testEdge != j {
			p.Send(j, MsgReject{})
		} else {
			c.testSerial(p) // crossed tests: my own test is implicitly rejected
		}
	case ScanParallel:
		if c.outstanding[j] {
			delete(c.outstanding, j) // crossed tests: implicit mutual reject
			if len(c.outstanding) == 0 {
				c.maybeReport(p)
			}
		} else {
			p.Send(j, MsgReject{})
		}
	}
	return true
}

func (c *GHSCore) onAccept(p basic.Port, j graph.NodeID) {
	nm := c.nameOf(p, j)
	switch c.Mode {
	case ScanSerial:
		c.testEdge = -1
		if nm.Less(c.bestWt) {
			c.bestWt = nm
			c.bestEdge = j
		}
		c.maybeReport(p)
	case ScanParallel:
		delete(c.outstanding, j)
		if nm.Less(c.bestWt) {
			c.bestWt = nm
			c.bestEdge = j
		}
		if len(c.outstanding) == 0 {
			c.maybeReport(p)
		}
	}
}

func (c *GHSCore) onReject(p basic.Port, j graph.NodeID) {
	if c.se[j] == seBasic {
		c.se[j] = seRejected
	}
	switch c.Mode {
	case ScanSerial:
		c.testSerial(p)
	case ScanParallel:
		delete(c.outstanding, j)
		if len(c.outstanding) == 0 {
			c.maybeReport(p)
		}
	}
}

// scanDone reports whether this node's own search has completed.
func (c *GHSCore) scanDone() bool {
	switch c.Mode {
	case ScanSerial:
		return c.testEdge == -1
	case ScanParallel:
		return c.scanStarted && len(c.outstanding) == 0
	}
	return false
}

func (c *GHSCore) maybeReport(p basic.Port) {
	if c.state != stFind || c.findCount != 0 || !c.scanDone() {
		return
	}
	c.state = stFound
	c.scanStarted = false
	p.Send(c.inBranch, MsgReport{Best: c.bestWt, HasMore: c.hasMoreSelf || c.hasMoreSub})
}

func (c *GHSCore) onReport(p basic.Port, j graph.NodeID, m MsgReport) bool {
	if j != c.inBranch {
		// A child's report.
		c.findCount--
		if m.Best.Less(c.bestWt) {
			c.bestWt = m.Best
			c.bestEdge = j
		}
		c.hasMoreSub = c.hasMoreSub || m.HasMore
		c.maybeReport(p)
		return true
	}
	// The other core endpoint's report.
	if c.state == stFind {
		return false // defer until this side has reported
	}
	myHasMore := c.hasMoreSelf || c.hasMoreSub
	switch {
	case c.bestWt.Less(m.Best):
		// This side holds the minimum outgoing edge.
		c.changeRoot(p)
	case m.Best.IsInf() && c.bestWt.IsInf():
		if c.Mode == ScanParallel && (myHasMore || m.HasMore) {
			// MSTfast: the guess was too low; the smaller-ID core
			// endpoint doubles θ and restarts the find on both sides.
			if p.ID() < j {
				c.guess *= 2
				re := MsgInitiate{Level: c.level, Frag: c.frag, State: stFind, Guess: c.guess}
				p.Send(j, re)
				c.onInitiate(p, j, re) // restart own side; inBranch stays the core edge
			}
			return true
		}
		// MST complete.
		c.Halted = true
		if p.ID() < j {
			c.onDone(p, p.ID(), MsgDone{Leader: p.ID()})
		}
	}
	// Otherwise the other side holds the better edge and acts.
	return true
}

func (c *GHSCore) changeRoot(p basic.Port) {
	if c.se[c.bestEdge] == seBranch {
		p.Send(c.bestEdge, MsgChangeRoot{})
		return
	}
	p.Send(c.bestEdge, MsgConnect{Level: c.level})
	c.se[c.bestEdge] = seBranch
	c.Branch[c.bestEdge] = true
}

func (c *GHSCore) onDone(p basic.Port, from graph.NodeID, m MsgDone) {
	if c.Done {
		return
	}
	c.Done = true
	c.Leader = m.Leader
	for _, h := range p.Neighbors() {
		if c.se[h.To] == seBranch && h.To != from {
			p.Send(h.To, m)
		}
	}
}
