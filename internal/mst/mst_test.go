package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

func TestNameOrdering(t *testing.T) {
	a := MakeName(3, 1, 10) // normalized to U=1,V=3
	if a.U != 1 || a.V != 3 {
		t.Fatalf("MakeName did not normalize: %+v", a)
	}
	b := MakeName(0, 2, 10)
	if !b.Less(a) { // same weight, smaller endpoints first
		t.Error("tie-break by endpoints failed")
	}
	c := MakeName(5, 6, 9)
	if !c.Less(a) || !c.Less(b) {
		t.Error("weight must dominate")
	}
	if a.Less(a) {
		t.Error("irreflexive order violated")
	}
	if !a.Less(InfName) || InfName.IsInf() != true || a.IsInf() {
		t.Error("InfName handling wrong")
	}
}

func checkMST(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if len(res.Edges) != g.N()-1 {
		t.Fatalf("got %d edges, want %d", len(res.Edges), g.N()-1)
	}
	if got, want := res.Weight(), graph.MSTWeight(g); got != want {
		t.Fatalf("tree weight %d, want MST weight %d", got, want)
	}
	if _, err := res.Tree(g, 0); err != nil {
		t.Fatalf("result is not a spanning tree: %v", err)
	}
}

func TestGHSKnownGraph(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(0, 3, 10)
	b.AddEdge(0, 2, 4)
	g := b.MustBuild()
	res, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	checkMST(t, g, res)
}

func TestGHSTwoNodes(t *testing.T) {
	g := graph.Path(2, graph.ConstWeights(7))
	res, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	checkMST(t, g, res)
}

func TestGHSSingleNode(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	res, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Fatal("single node should produce no edges")
	}
}

func TestGHSFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(20, graph.UniformWeights(9, 1))},
		{"ring", graph.Ring(15, graph.UniformWeights(9, 2))},
		{"complete", graph.Complete(12, graph.UniformWeights(50, 3))},
		{"grid", graph.Grid(5, 5, graph.UniformWeights(20, 4))},
		{"equal weights", graph.Complete(10, graph.ConstWeights(5))},
		{"random", graph.RandomConnected(40, 100, graph.UniformWeights(30, 5), 5)},
		{"hard", graph.HardConnectivity(16, 16)},
		{"expander", graph.RandomRegular(30, 4, graph.UniformWeights(25, 6), 6)},
		{"binary tree", graph.BinaryTree(31, graph.UniformWeights(12, 7))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RunGHS(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			checkMST(t, tt.g, res)
		})
	}
}

func TestGHSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, n-1+rng.Intn(3*n), graph.UniformWeights(1+rng.Int63n(60), seed), seed)
		res, err := RunGHS(g)
		if err != nil {
			t.Log(err)
			return false
		}
		return res.Weight() == graph.MSTWeight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGHSRandomDelays(t *testing.T) {
	// Asynchrony stress: the algorithm must be correct under arbitrary
	// delay interleavings, not just the maximal adversary.
	g := graph.RandomConnected(25, 70, graph.UniformWeights(40, 6), 6)
	for seed := int64(0); seed < 10; seed++ {
		res, err := RunGHS(g, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkMST(t, g, res)
	}
}

func TestGHSComplexity(t *testing.T) {
	// Lemma 8.1: communication O(𝓔 + 𝓥 log n).
	g := graph.RandomConnected(60, 200, graph.UniformWeights(30, 8), 8)
	res, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	ee := g.TotalWeight()
	vv := graph.MSTWeight(g)
	logn := int64(math.Ceil(math.Log2(float64(g.N()))))
	bound := 8 * (ee + vv*logn)
	if res.Stats.Comm > bound {
		t.Errorf("GHS comm %d > 8(𝓔 + 𝓥 log n) = %d", res.Stats.Comm, bound)
	}
}

func TestMSTFastFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(15, graph.UniformWeights(9, 11))},
		{"complete", graph.Complete(12, graph.UniformWeights(64, 12))},
		{"grid", graph.Grid(4, 6, graph.UniformWeights(20, 13))},
		{"heavy tail", graph.RandomConnected(30, 80, graph.PowerOfTwoWeights(10, 14), 14)},
		{"random", graph.RandomConnected(35, 90, graph.UniformWeights(100, 15), 15)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RunMSTFast(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			checkMST(t, tt.g, res)
		})
	}
}

func TestMSTFastProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(1+rng.Int63n(100), seed), seed)
		res, err := RunMSTFast(g)
		if err != nil {
			t.Log(err)
			return false
		}
		return res.Weight() == graph.MSTWeight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTFastBeatsGHSOnTimeWithHeavyEdges(t *testing.T) {
	// §8.3's point: GHS's serial per-node scan makes its time Ω(𝓔)
	// when one vertex must reject many heavy non-MST edges one at a
	// time, while MSTfast tests them in parallel, following
	// O(Diam(MST)·log n·log 𝓥). Build a unit path (the MST) plus a
	// star of very heavy edges centered at vertex 0.
	n := 24
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 2; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i), 4096)
	}
	g := b.MustBuild()
	slow, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunMSTFast(g)
	if err != nil {
		t.Fatal(err)
	}
	checkMST(t, g, slow)
	checkMST(t, g, fast)
	if 10*fast.Stats.FinishTime > 9*slow.Stats.FinishTime {
		t.Errorf("MSTfast time %d should be below MSTghs time %d",
			fast.Stats.FinishTime, slow.Stats.FinishTime)
	}
}

func TestHybridFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", graph.RandomConnected(25, 24, graph.UniformWeights(10, 21), 21)},
		{"dense", graph.Complete(14, graph.UniformWeights(40, 22))},
		{"hard Gn", graph.HardConnectivity(18, 18)},
		{"random", graph.RandomConnected(30, 80, graph.UniformWeights(25, 23), 23)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RunMSTHybrid(tt.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			checkMST(t, tt.g, res.Result)
		})
	}
}

func TestHybridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(50, seed), seed)
		res, err := RunMSTHybrid(g, graph.NodeID(rng.Intn(n)))
		if err != nil {
			t.Log(err)
			return false
		}
		return res.Result.Weight() == graph.MSTWeight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridTracksMin(t *testing.T) {
	// Corollary 8.2: comm O(min{𝓔 + 𝓥 log n, n𝓥}).
	check := func(t *testing.T, g *graph.Graph) {
		t.Helper()
		res, err := RunMSTHybrid(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		ghs, err := RunGHS(g)
		if err != nil {
			t.Fatal(err)
		}
		centr, err := basic.RunMSTCentr(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// DFS wake-up costs O(𝓔) extra on the GHS side; allow 8x min of
		// the standalone runs plus the wake-up term.
		cheaper := ghs.Stats.Comm + 8*g.TotalWeight()
		if centr.Stats.Comm < cheaper {
			cheaper = centr.Stats.Comm
		}
		if res.Result.Stats.Comm > 8*cheaper {
			t.Errorf("hybrid comm %d > 8·min(ghs+wakeup %d, centr %d)",
				res.Result.Stats.Comm, ghs.Stats.Comm+8*g.TotalWeight(), centr.Stats.Comm)
		}
	}
	t.Run("Gn favors centr", func(t *testing.T) { check(t, graph.HardConnectivity(20, 20)) })
	t.Run("sparse favors ghs", func(t *testing.T) {
		check(t, graph.RandomConnected(40, 60, graph.UniformWeights(10, 31), 31))
	})
}

func TestHybridWinnerOnGn(t *testing.T) {
	// On G_n, 𝓔 = Θ(nX⁴) >> n𝓥, so the DFS wake-up must be parked and
	// MSTcentr must win.
	res, err := RunMSTHybrid(graph.HardConnectivity(20, 20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "mstcentr" {
		t.Errorf("winner on G_n = %s, want mstcentr", res.Winner)
	}
}

func TestLeaderElection(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(40, 41), 41)
	leader, res, err := RunLeaderElection(g)
	if err != nil {
		t.Fatal(err)
	}
	if leader < 0 || int(leader) >= g.N() {
		t.Fatalf("invalid leader %d", leader)
	}
	if res.Leader != leader {
		t.Fatal("result leader mismatch")
	}
	// The leader must be an endpoint of the final core edge, which for
	// the tie-broken unique MST is deterministic: re-running elects the
	// same node.
	leader2, _, err := RunLeaderElection(g)
	if err != nil {
		t.Fatal(err)
	}
	if leader2 != leader {
		t.Fatalf("leader not deterministic: %d vs %d", leader, leader2)
	}
}

func TestLeaderElectionUnderRandomDelays(t *testing.T) {
	// Every node must agree on one leader under any interleaving
	// (agreement is asserted inside extract()).
	g := graph.RandomConnected(20, 50, graph.UniformWeights(30, 43), 43)
	for seed := int64(0); seed < 8; seed++ {
		leader, _, err := RunLeaderElection(g, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if leader < 0 {
			t.Fatalf("seed %d: no leader", seed)
		}
	}
}

func TestLeaderSingleNode(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	leader, _, err := RunLeaderElection(g)
	if err != nil {
		t.Fatal(err)
	}
	if leader != 0 {
		t.Fatalf("singleton leader = %d, want 0", leader)
	}
}

func TestGHSExactEdgeSet(t *testing.T) {
	// With tie-broken weights the MST is unique, so GHS must return
	// exactly Kruskal's edge set, not merely the same total weight.
	g := graph.RandomConnected(35, 90, graph.ConstWeights(7), 51) // all ties
	res, err := RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]graph.NodeID]bool)
	for _, e := range kruskalTieBroken(g) {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		want[[2]graph.NodeID{u, v}] = true
	}
	if len(res.Edges) != len(want) {
		t.Fatalf("edge count %d vs %d", len(res.Edges), len(want))
	}
	for _, e := range res.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !want[[2]graph.NodeID{u, v}] {
			t.Fatalf("GHS edge (%d,%d) not in the tie-broken MST", u, v)
		}
	}
}

// kruskalTieBroken mirrors the GHS Name order exactly.
func kruskalTieBroken(g *graph.Graph) []graph.Edge {
	edges := make([]graph.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	for i := range edges {
		if edges[i].U > edges[i].V {
			edges[i].U, edges[i].V = edges[i].V, edges[i].U
		}
	}
	sortEdgesByName(edges)
	dsu := graph.NewDSU(g.N())
	var out []graph.Edge
	for _, e := range edges {
		if dsu.Union(int(e.U), int(e.V)) {
			out = append(out, e)
		}
	}
	return out
}

func sortEdgesByName(es []graph.Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j], es[j-1]
			if MakeName(a.U, a.V, a.W).Less(MakeName(b.U, b.V, b.W)) {
				es[j], es[j-1] = es[j-1], es[j]
			} else {
				break
			}
		}
	}
}

func TestHybridUnderRandomDelays(t *testing.T) {
	g := graph.RandomConnected(20, 55, graph.UniformWeights(30, 61), 61)
	for seed := int64(0); seed < 5; seed++ {
		res, err := RunMSTHybrid(g, 0, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Result.Weight() != graph.MSTWeight(g) {
			t.Fatalf("seed %d: weight %d", seed, res.Result.Weight())
		}
	}
}
