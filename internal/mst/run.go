package mst

import (
	"fmt"
	"sort"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// ctxPort adapts a sim.Context to a basic.Port.
type ctxPort struct {
	ctx sim.Context
}

var _ basic.Port = ctxPort{}

func (p ctxPort) ID() graph.NodeID                    { return p.ctx.ID() }
func (p ctxPort) Neighbors() []graph.Half             { return p.ctx.Neighbors() }
func (p ctxPort) Send(to graph.NodeID, m sim.Message) { p.ctx.Send(to, m) }

// GHSProc runs a GHSCore as a standalone process, with spontaneous
// wake-up at time zero (cost-equivalent to the §8.1 flooding wake-up,
// whose O(𝓔) messages are already dominated by the edge-scanning term).
type GHSProc struct {
	Core *GHSCore
}

var _ sim.Process = (*GHSProc)(nil)

// Init wakes the node.
func (g *GHSProc) Init(ctx sim.Context) { g.Core.Wakeup(ctxPort{ctx}) }

// Handle delegates to the core.
func (g *GHSProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	g.Core.Handle(ctxPort{ctx}, from, m)
}

// Result is the outcome of a distributed MST construction.
type Result struct {
	// Edges are the MST edges found.
	Edges []graph.Edge
	// Leader is the elected coordinator (the core vertex that detected
	// completion), agreed on by every node — the [Awe87] leader
	// election for free.
	Leader graph.NodeID
	Stats  *sim.Stats
}

// Weight returns the total weight of the constructed tree.
func (r *Result) Weight() int64 {
	var s int64
	for _, e := range r.Edges {
		s += e.W
	}
	return s
}

// Tree roots the constructed MST at the given vertex.
func (r *Result) Tree(g *graph.Graph, root graph.NodeID) (*graph.Tree, error) {
	adj := make(map[graph.NodeID][]graph.NodeID)
	for _, e := range r.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	parent := make([]graph.NodeID, g.N())
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, g.N())
	seen[root] = true
	queue := []graph.NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	t := graph.NewTree(g, root, parent)
	if !t.Spanning() {
		return nil, fmt.Errorf("mst: edges do not span")
	}
	return t, nil
}

func extract(g *graph.Graph, cores []*GHSCore) (*Result, error) {
	var edges []graph.Edge
	leader := graph.NodeID(-1)
	for v, c := range cores {
		if !c.Done {
			return nil, fmt.Errorf("mst: node %d did not finish", v)
		}
		if leader == -1 {
			leader = c.Leader
		} else if c.Leader != leader {
			return nil, fmt.Errorf("mst: node %d elected %d, others elected %d", v, c.Leader, leader)
		}
		//costsense:nondet-ok iteration order only staggers appends; edges are sorted before use below
		for u, isBranch := range c.Branch {
			if isBranch && graph.NodeID(v) < u {
				// Verify symmetry of the branch marking.
				if !cores[u].Branch[graph.NodeID(v)] {
					return nil, fmt.Errorf("mst: asymmetric branch edge (%d,%d)", v, u)
				}
				edges = append(edges, graph.Edge{U: graph.NodeID(v), V: u, W: g.Weight(graph.NodeID(v), u)})
			}
		}
	}
	if len(edges) != g.N()-1 {
		return nil, fmt.Errorf("mst: found %d branch edges, want %d", len(edges), g.N()-1)
	}
	// The branch maps yield edges in randomized order (caught by
	// costsense-vet's detmap); fix Result.Edges so identical runs are
	// byte-identical.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return &Result{Edges: edges, Leader: leader}, nil
}

func runGHSMode(mode ScanMode, g *graph.Graph, opts ...sim.Option) (*Result, error) {
	if g.N() == 0 {
		return &Result{Leader: -1, Stats: &sim.Stats{}}, nil
	}
	if !g.Connected() {
		return nil, fmt.Errorf("mst: graph is disconnected")
	}
	procs := make([]sim.Process, g.N())
	cores := make([]*GHSCore, g.N())
	for v := range procs {
		cores[v] = NewGHSCore(mode)
		procs[v] = &GHSProc{Core: cores[v]}
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	res, err := extract(g, cores)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// RunGHS executes algorithm MSTghs (§8.1): classic GHS with serial
// edge scanning. Communication O(𝓔 + 𝓥·log n).
func RunGHS(g *graph.Graph, opts ...sim.Option) (*Result, error) {
	return runGHSMode(ScanSerial, g, opts...)
}

// RunMSTFast executes algorithm MSTfast (§8.3): GHS with parallel
// scanning below a doubling weight guess. Communication
// O(𝓔·log n·log 𝓥), time O(Diam(MST)·log n·log 𝓥).
func RunMSTFast(g *graph.Graph, opts ...sim.Option) (*Result, error) {
	return runGHSMode(ScanParallel, g, opts...)
}

// RunLeaderElection elects a unique coordinator known to every node by
// running MSTghs and using the core vertex that detects completion —
// the [Awe87] reduction the paper invokes in §8, at the same
// O(𝓔 + 𝓥·log n) communication.
func RunLeaderElection(g *graph.Graph, opts ...sim.Option) (graph.NodeID, *Result, error) {
	res, err := RunGHS(g, opts...)
	if err != nil {
		return -1, nil, err
	}
	return res.Leader, res, nil
}
