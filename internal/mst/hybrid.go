package mst

import (
	"fmt"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// MSThybrid (§8.2) runs two sides under root arbitration, as in §7.2:
//
//	side A: algorithm DFS as a controlled wake-up stage — suspendable
//	        at the root with doubling estimate W_a ≈ 𝓔 — followed by
//	        algorithm MSTghs once the wake-up completes;
//	side B: algorithm MSTcentr, suspendable per phase with estimate W_b.
//
// Only the side with the smaller estimate runs. If n𝓥 < 𝓔 the DFS is
// parked early and MSTcentr finishes at O(n𝓥); otherwise the wake-up
// completes at cost O(𝓔) and GHS finishes at O(𝓔 + 𝓥 log n), while
// MSTcentr has spent at most O(W_a) = O(𝓔). Either way the total is
// O(min{𝓔 + 𝓥 log n, n𝓥}).

// hybrid algorithm tags.
const (
	tagDFS byte = 'd'
	tagGHS byte = 'g'
	tagMST byte = 'm'
)

// HybridMsg wraps a sub-algorithm message.
type HybridMsg struct {
	Tag   byte
	Inner sim.Message
}

// msgGHSGo floods the start-GHS signal after the wake-up completes.
type msgGHSGo struct{}

type tagPort struct {
	ctx sim.Context
	tag byte
}

var _ basic.Port = tagPort{}

func (p tagPort) ID() graph.NodeID        { return p.ctx.ID() }
func (p tagPort) Neighbors() []graph.Half { return p.ctx.Neighbors() }
func (p tagPort) Send(to graph.NodeID, m sim.Message) {
	p.ctx.Send(to, HybridMsg{Tag: p.tag, Inner: m})
}

// hybridArbiter holds the root's permit state.
type hybridArbiter struct {
	wa, wb    int64
	dfsParked func(basic.Port)
	mstParked func(basic.Port)
	mst       *basic.CentrCore
	mstOn     bool
	ctx       sim.Context
}

func (a *hybridArbiter) permitA() bool { return a.wa <= a.wb }

func (a *hybridArbiter) activateMST() {
	port := tagPort{ctx: a.ctx, tag: tagMST}
	if !a.mstOn {
		a.mstOn = true
		a.mst.Start(port)
		return
	}
	if a.mstParked != nil {
		r := a.mstParked
		a.mstParked = nil
		r(port)
	}
}

func (a *hybridArbiter) activateDFS() {
	if a.dfsParked != nil {
		r := a.dfsParked
		a.dfsParked = nil
		r(tagPort{ctx: a.ctx, tag: tagDFS})
	}
}

type hDFSGate struct{ a *hybridArbiter }

func (g hDFSGate) Report(est int64, resume func(basic.Port)) bool {
	g.a.wa = est
	if g.a.permitA() {
		return true
	}
	g.a.dfsParked = resume
	g.a.activateMST()
	return false
}

type hMSTGate struct{ a *hybridArbiter }

func (g hMSTGate) Report(est int64, resume func(basic.Port)) bool {
	g.a.wb = est
	if !g.a.permitA() {
		return true
	}
	g.a.mstParked = resume
	g.a.activateDFS()
	return false
}

// HybridProc runs the three cores at one node.
type HybridProc struct {
	DFS  *basic.DFSCore
	GHS  *GHSCore
	MST  *basic.CentrCore
	Root graph.NodeID

	arb      *hybridArbiter // root only
	ghsAwake bool           // saw the GHS-go flood
}

var _ sim.Process = (*HybridProc)(nil)

// Init starts the DFS wake-up stage at the root.
func (h *HybridProc) Init(ctx sim.Context) {
	if ctx.ID() != h.Root {
		return
	}
	h.arb.ctx = ctx
	h.DFS.Start(tagPort{ctx: ctx, tag: tagDFS})
	h.checkWakeupDone(ctx)
}

// checkWakeupDone launches GHS once the DFS stage has completed.
func (h *HybridProc) checkWakeupDone(ctx sim.Context) {
	if ctx.ID() != h.Root || !h.DFS.Done || h.ghsAwake {
		return
	}
	h.startGHS(ctx, -1)
}

// startGHS wakes the local GHS core and floods the go signal.
func (h *HybridProc) startGHS(ctx sim.Context, from graph.NodeID) {
	if h.ghsAwake {
		return
	}
	h.ghsAwake = true
	for _, nb := range ctx.Neighbors() {
		if nb.To != from {
			ctx.Send(nb.To, HybridMsg{Tag: tagGHS, Inner: msgGHSGo{}})
		}
	}
	h.GHS.Wakeup(tagPort{ctx: ctx, tag: tagGHS})
}

// Handle demultiplexes to the cores.
func (h *HybridProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	hm, ok := m.(HybridMsg)
	if !ok {
		panic(fmt.Sprintf("mst: hybrid got %T", m))
	}
	if h.arb != nil {
		h.arb.ctx = ctx
	}
	switch hm.Tag {
	case tagDFS:
		h.DFS.Handle(tagPort{ctx: ctx, tag: tagDFS}, from, hm.Inner)
		h.checkWakeupDone(ctx)
	case tagGHS:
		if _, isGo := hm.Inner.(msgGHSGo); isGo {
			h.startGHS(ctx, from)
			return
		}
		h.GHS.Handle(tagPort{ctx: ctx, tag: tagGHS}, from, hm.Inner)
	case tagMST:
		h.MST.Handle(tagPort{ctx: ctx, tag: tagMST}, from, hm.Inner)
	default:
		panic(fmt.Sprintf("mst: unknown tag %q", hm.Tag))
	}
}

// HybridResult is the outcome of an MSThybrid run.
type HybridResult struct {
	// Winner names the side that produced the tree ("ghs" or "mstcentr").
	Winner string
	Result *Result
}

// RunMSTHybrid executes algorithm MSThybrid from the given root.
func RunMSTHybrid(g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*HybridResult, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("mst: graph is disconnected")
	}
	n := g.N()
	procs := make([]sim.Process, n)
	hps := make([]*HybridProc, n)
	arb := &hybridArbiter{}
	for v := range procs {
		hp := &HybridProc{
			DFS:  basic.NewDFSCore(root),
			GHS:  NewGHSCore(ScanSerial),
			MST:  basic.NewCentrCore(basic.ModeMST, root, n),
			Root: root,
		}
		if graph.NodeID(v) == root {
			hp.arb = arb
			arb.mst = hp.MST
			hp.DFS.Gate = hDFSGate{a: arb}
			hp.MST.Gate = hMSTGate{a: arb}
		}
		hps[v] = hp
		procs[v] = hp
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}

	// Prefer the GHS result when the wake-up side finished.
	ghsDone := true
	cores := make([]*GHSCore, n)
	for v := range hps {
		cores[v] = hps[v].GHS
		if !hps[v].GHS.Done {
			ghsDone = false
		}
	}
	if ghsDone && hps[root].ghsAwake {
		res, err := extract(g, cores)
		if err != nil {
			return nil, err
		}
		res.Stats = stats
		return &HybridResult{Winner: "ghs", Result: res}, nil
	}
	if hps[root].MST.Done {
		var edges []graph.Edge
		for v := range hps {
			if p := hps[v].MST.Parent; p >= 0 {
				edges = append(edges, graph.Edge{U: graph.NodeID(v), V: p, W: g.Weight(graph.NodeID(v), p)})
			}
		}
		if len(edges) != n-1 {
			return nil, fmt.Errorf("mst: MSTcentr side produced %d edges, want %d", len(edges), n-1)
		}
		return &HybridResult{
			Winner: "mstcentr",
			Result: &Result{Edges: edges, Stats: stats},
		}, nil
	}
	return nil, fmt.Errorf("mst: hybrid quiesced with no completed side")
}
