package term

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

func floodProcs(g *graph.Graph, src graph.NodeID) ([]sim.Process, []*basic.FloodProc) {
	procs := make([]sim.Process, g.N())
	fl := make([]*basic.FloodProc, g.N())
	for v := range procs {
		fl[v] = &basic.FloodProc{Source: src}
		procs[v] = fl[v]
	}
	return procs, fl
}

func TestDetectsFloodTermination(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(16, 3), 3)
	inner, fl := floodProcs(g, 0)
	res, _, err := Run(g, inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("termination not detected")
	}
	for v := range fl {
		if !fl[v].Got {
			t.Fatalf("node %d missed the flood", v)
		}
	}
	// Detection cannot precede the last protocol delivery: the flood's
	// farthest delivery is at the eccentricity of the source.
	ecc := graph.Eccentricity(g, 0)
	if res.DetectedAt < ecc {
		t.Fatalf("detected at %d, before the farthest delivery at %d", res.DetectedAt, ecc)
	}
	// Exactly one ack per protocol message: comm at most doubles plus
	// the engagement acks.
	if got := res.Stats.MessagesOf(sim.ClassAck); got != res.Stats.MessagesOf(sim.ClassProto) {
		t.Fatalf("acks %d != wrapped messages %d", got, res.Stats.MessagesOf(sim.ClassProto))
	}
}

func TestDetectionIsNotPremature(t *testing.T) {
	// A two-phase protocol: the flood reaches the far end of a path,
	// which then starts a second flood back. Detection must wait for
	// the second wave.
	g := graph.Path(12, graph.ConstWeights(4))
	procs := make([]sim.Process, g.N())
	for v := range procs {
		procs[v] = &bounceProc{far: graph.NodeID(g.N() - 1)}
	}
	res, _, err := Run(g, procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("termination not detected")
	}
	// Two full traversals of the path: 2·(n-1)·w.
	want := 2 * int64(g.N()-1) * 4
	if res.DetectedAt < want {
		t.Fatalf("detected at %d, before the bounce completed at %d", res.DetectedAt, want)
	}
}

// bounceProc forwards a token to the far end, which sends it back.
type bounceProc struct {
	far  graph.NodeID
	seen int
}

func (b *bounceProc) Init(ctx sim.Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, "fwd")
	}
}

func (b *bounceProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	b.seen++
	dir, _ := m.(string)
	switch {
	case ctx.ID() == b.far && dir == "fwd":
		ctx.Send(from, "back")
	case dir == "fwd":
		ctx.Send(ctx.ID()+1, "fwd")
	case dir == "back" && ctx.ID() != 0:
		ctx.Send(ctx.ID()-1, "back")
	}
}

func TestTrivialComputation(t *testing.T) {
	// An initiator that sends nothing terminates at time 0.
	g := graph.Path(3, graph.UnitWeights())
	procs := make([]sim.Process, g.N())
	for v := range procs {
		procs[v] = idleProc{}
	}
	res, _, err := Run(g, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.DetectedAt != 0 {
		t.Fatalf("trivial computation: detected=%v at %d, want true at 0", res.Detected, res.DetectedAt)
	}
}

type idleProc struct{}

func (idleProc) Init(sim.Context)                              {}
func (idleProc) Handle(sim.Context, graph.NodeID, sim.Message) {}

func TestNonTerminatingNotDetected(t *testing.T) {
	// A diverging protocol trips the event limit; the detector must
	// not have declared termination.
	g := graph.Path(2, graph.UnitWeights())
	procs := []sim.Process{&pingpong{}, &pingpong{}}
	_, det, err := Run(g, procs, 0, sim.WithEventLimit(500))
	if err == nil {
		t.Fatal("diverging run should hit the event limit")
	}
	if det[0].Detected {
		t.Fatal("termination falsely detected on a diverging protocol")
	}
}

type pingpong struct{}

func (pingpong) Init(ctx sim.Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, 0)
	}
}
func (pingpong) Handle(ctx sim.Context, from graph.NodeID, _ sim.Message) {
	ctx.Send(from, 0)
}

func TestDetectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(10, seed), seed)
		src := graph.NodeID(rng.Intn(n))
		// Reference: plain flood finish time.
		plain, _ := floodProcs(g, src)
		ref, err := sim.Run(g, plain)
		if err != nil {
			return false
		}
		inner, _ := floodProcs(g, src)
		res, _, err := Run(g, inner, src)
		if err != nil {
			t.Log(err)
			return false
		}
		// Detection happens, after all protocol activity, and within
		// a small factor of the plain finish time (acks double paths).
		return res.Detected && res.DetectedAt >= ref.FinishTime/2 && res.DetectedAt <= 4*ref.FinishTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionUnderRandomDelays(t *testing.T) {
	g := graph.Grid(5, 5, graph.UniformWeights(8, 7))
	for seed := int64(0); seed < 6; seed++ {
		inner, _ := floodProcs(g, 0)
		res, _, err := Run(g, inner, 0, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected {
			t.Fatalf("seed %d: not detected", seed)
		}
	}
}
