// Package term implements Dijkstra–Scholten termination detection
// [DS80], the primitive the paper's controller model (§5) is built on
// and the strip method (§9.2) uses per strip: a diffusing computation
// starts at an initiator, and the initiator learns — by counting
// acknowledgments over a dynamic engagement tree — the moment the
// whole computation has gone quiet.
//
// The detector is a transparent wrapper: it forwards the inner
// protocol's messages inside envelopes, acknowledges each envelope
// once the activity it triggered has drained, and reports detection at
// the initiator. Overhead: exactly one acknowledgment per protocol
// message (communication at most doubles), zero extra latency on the
// protocol's own paths.
package term

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Detector messages.
type (
	// MsgWrapped carries one inner protocol message.
	MsgWrapped struct{ Inner sim.Message }
	// MsgAck acknowledges a MsgWrapped once its consequences drained.
	MsgAck struct{}
)

// Proc wraps one node's process under the detector.
type Proc struct {
	Inner     sim.Process
	Initiator graph.NodeID

	// Detected is set at the initiator when global quiescence is
	// established; DetectedAt is the simulation time of detection.
	Detected   bool
	DetectedAt int64

	engager graph.NodeID // current engagement parent (-1 when passive)
	deficit int          // sends not yet acknowledged
	started bool
}

var _ sim.Process = (*Proc)(nil)

// termCtx intercepts the inner protocol's sends.
type termCtx struct {
	p   *Proc
	ctx sim.Context
}

var _ sim.Context = (*termCtx)(nil)

func (c *termCtx) ID() graph.NodeID         { return c.ctx.ID() }
func (c *termCtx) Now() int64               { return c.ctx.Now() }
func (c *termCtx) Graph() *graph.Graph      { return c.ctx.Graph() }
func (c *termCtx) Neighbors() []graph.Half  { return c.ctx.Neighbors() }
func (c *termCtx) Record(k string, v int64) { c.ctx.Record(k, v) }

func (c *termCtx) Send(to graph.NodeID, m sim.Message) {
	c.p.deficit++
	c.ctx.Send(to, MsgWrapped{Inner: m})
}

func (c *termCtx) SendClass(to graph.NodeID, m sim.Message, cl sim.Class) {
	c.p.deficit++
	c.ctx.SendClass(to, MsgWrapped{Inner: m}, cl)
}

// Init starts the inner protocol at the initiator.
func (p *Proc) Init(ctx sim.Context) {
	p.engager = -1
	if ctx.ID() != p.Initiator {
		return
	}
	p.started = true
	p.Inner.Init(&termCtx{p: p, ctx: ctx})
	p.checkPassive(ctx)
}

// checkPassive acknowledges the engagement once all triggered activity
// drained; at the initiator it declares termination.
func (p *Proc) checkPassive(ctx sim.Context) {
	if p.deficit != 0 {
		return
	}
	if p.engager >= 0 {
		ctx.SendClass(p.engager, MsgAck{}, sim.ClassAck)
		p.engager = -1
		return
	}
	if ctx.ID() == p.Initiator && p.started && !p.Detected {
		p.Detected = true
		p.DetectedAt = ctx.Now()
		ctx.Record("terminated", 1)
	}
}

// Handle processes envelopes and acknowledgments.
func (p *Proc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgWrapped:
		engagedNow := false
		if p.engager < 0 && ctx.ID() != p.Initiator {
			p.engager = from
			engagedNow = true
		}
		p.Inner.Handle(&termCtx{p: p, ctx: ctx}, from, msg.Inner)
		if !engagedNow {
			// Non-engaging message: acknowledge immediately; its
			// consequences are charged to the current engagement.
			ctx.SendClass(from, MsgAck{}, sim.ClassAck)
		}
		p.checkPassive(ctx)
	case MsgAck:
		p.deficit--
		p.checkPassive(ctx)
	default:
		panic(fmt.Sprintf("term: got %T", m))
	}
}

// Result summarizes a detected run.
type Result struct {
	Stats *sim.Stats
	// Detected reports whether the initiator observed termination
	// (false only if the run was cut short, e.g. by an event limit).
	Detected bool
	// DetectedAt is the simulation time of the detection event.
	DetectedAt int64
}

// Run executes the inner processes under termination detection rooted
// at the initiator.
func Run(g *graph.Graph, inner []sim.Process, initiator graph.NodeID, opts ...sim.Option) (*Result, []*Proc, error) {
	if len(inner) != g.N() {
		return nil, nil, fmt.Errorf("term: %d processes for %d vertices", len(inner), g.N())
	}
	procs := make([]sim.Process, g.N())
	det := make([]*Proc, g.N())
	for v := range procs {
		det[v] = &Proc{Inner: inner[v], Initiator: initiator}
		procs[v] = det[v]
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, det, err
	}
	return &Result{
		Stats:      stats,
		Detected:   det[initiator].Detected,
		DetectedAt: det[initiator].DetectedAt,
	}, det, nil
}
