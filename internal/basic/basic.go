// Package basic implements the standard network algorithms of §6 of the
// paper, restated in the weighted setting:
//
//   - CONflood — flooding broadcast: O(𝓔) communication, O(𝓓) time,
//   - DFS — depth-first token traversal with doubling root estimates:
//     O(𝓔) communication and time,
//   - MSTcentr — the full-information Prim algorithm: O(n𝓥)
//     communication, O(n·Diam(MST)) time,
//   - SPTcentr — the full-information distributed Dijkstra: O(n²𝓥)
//     communication, O(n𝓓) time.
//
// DFS, MSTcentr and SPTcentr are written as embeddable state machines
// (cores) driven through a Port, so that the hybrid algorithms of §7.2
// and §8.2 can run two of them side by side under root arbitration.
// In these discovery algorithms a vertex only ever inspects its own
// incident edges, never the global topology — matching the model of
// §7.1 in which connectivity must be discovered, not assumed.
package basic

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Port is the slice of sim.Context a core needs. Composite processes
// (hybrids, controllers) provide Ports that tag or meter messages.
type Port interface {
	// ID returns the node this core runs on.
	ID() graph.NodeID
	// Neighbors returns the node's incident half-edges.
	Neighbors() []graph.Half
	// Send transmits a core message to a neighbor.
	Send(to graph.NodeID, m sim.Message)
}

// ctxPort adapts a plain sim.Context to a Port.
type ctxPort struct {
	ctx sim.Context
}

var _ Port = ctxPort{}

func (p ctxPort) ID() graph.NodeID        { return p.ctx.ID() }
func (p ctxPort) Neighbors() []graph.Half { return p.ctx.Neighbors() }
func (p ctxPort) Send(to graph.NodeID, m sim.Message) {
	p.ctx.Send(to, m)
}

// Gate arbitrates a suspendable algorithm at its root (§7.2). The
// algorithm calls Report each time its root estimate grows, with its
// center of activity parked at the root; returning false suspends the
// algorithm until the resume function is invoked (from inside a later
// message handler, with a Port bound to the root's context).
type Gate interface {
	Report(est int64, resume func(Port)) bool
}

// RunFree is the Gate that never suspends.
type RunFree struct{}

// Report always allows the algorithm to continue.
func (RunFree) Report(int64, func(Port)) bool { return true }

// Infinity is the sentinel candidate key meaning "no outgoing edge".
const Infinity = int64(1) << 62
