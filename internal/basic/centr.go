package basic

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// CentrMode selects between the two full-information algorithms built
// on the same phase machinery.
type CentrMode int

// Modes of the full-information core.
const (
	// ModeMST grows a minimum spanning tree (Prim, §6.3): the phase
	// candidate of a tree vertex v for a non-tree neighbor u is w(v,u).
	ModeMST CentrMode = iota + 1
	// ModeSPT grows a shortest path tree (Dijkstra, §6.4): the phase
	// candidate is dist(v) + w(v,u).
	ModeSPT
)

// Full-information core messages. Phase and Add broadcasts travel down
// the current tree; Report convergecasts travel up. FIFO links
// guarantee every member processes the Add of phase p before the Phase
// of p+1, which keeps membership snapshots consistent.
type (
	// MsgCPhase asks the subtree for its best outgoing candidate.
	MsgCPhase struct{}
	// MsgCReport returns the best candidate of a subtree.
	MsgCReport struct {
		Key    int64 // Infinity when the subtree has no outgoing edge
		Owner  graph.NodeID
		Target graph.NodeID
		EdgeW  int64
	}
	// MsgCAdd announces the vertex chosen this phase.
	MsgCAdd struct {
		Owner  graph.NodeID
		Target graph.NodeID
		EdgeW  int64
		Dist   int64 // dist(Target) in ModeSPT
	}
	// MsgCInvite is sent over the chosen edge to the new vertex.
	MsgCInvite struct {
		Members []bool
		Dists   []int64
		MyDist  int64
	}
	// MsgCDone announces termination down the tree.
	MsgCDone struct{}
)

// CentrCore is the per-node state machine shared by MSTcentr and
// SPTcentr. The invariant of §6.3 holds throughout: every tree member
// knows the full membership (and, in ModeSPT, the distance labels), so
// each phase is one broadcast + convergecast on the current tree.
type CentrCore struct {
	// Mode selects MST or SPT candidate keys.
	Mode CentrMode
	// Root is the coordinating vertex (the SPT source in ModeSPT).
	Root graph.NodeID
	// Gate arbitrates each phase at the root; RunFree by default.
	Gate Gate

	// InTree is this node's view of tree membership.
	InTree []bool
	// Dist holds known distance labels (ModeSPT).
	Dist []int64
	// Parent is this node's tree parent (-1 at root / non-members).
	Parent graph.NodeID
	// Children are this node's tree children.
	Children []graph.NodeID
	// Member reports whether this node joined the tree.
	Member bool
	// Done is set everywhere when the algorithm terminates.
	Done bool
	// CommEstimate is the root's running estimate of communication
	// spent, used for hybrid arbitration (§7.2). At the root it is
	// exact up to constants: each phase costs about 3·w(T) + w(e*).
	CommEstimate int64

	n          int
	waiting    int // outstanding child reports this phase
	best       MsgCReport
	treeWeight int64 // root only: w(T) so far
}

// NewCentrCore returns a core for one node of an n-vertex network.
func NewCentrCore(mode CentrMode, root graph.NodeID, n int) *CentrCore {
	c := &CentrCore{
		Mode:   mode,
		Root:   root,
		Gate:   RunFree{},
		InTree: make([]bool, n),
		Dist:   make([]int64, n),
		Parent: -1,
		n:      n,
	}
	for i := range c.Dist {
		c.Dist[i] = -1
	}
	return c
}

// Start launches the algorithm; call at the root only.
func (c *CentrCore) Start(p Port) {
	if p.ID() != c.Root {
		panic("basic: CentrCore.Start on non-root")
	}
	c.Member = true
	c.InTree[c.Root] = true
	c.Dist[c.Root] = 0
	c.startPhase(p)
}

// candidate returns this member's best outgoing candidate.
func (c *CentrCore) candidate(p Port) MsgCReport {
	best := MsgCReport{Key: Infinity, Owner: -1, Target: -1}
	for _, h := range p.Neighbors() {
		if c.InTree[h.To] {
			continue
		}
		key := h.W
		if c.Mode == ModeSPT {
			key = c.Dist[p.ID()] + h.W
		}
		if better(key, p.ID(), h.To, best) {
			best = MsgCReport{Key: key, Owner: p.ID(), Target: h.To, EdgeW: h.W}
		}
	}
	return best
}

// better applies the deterministic (key, owner, target) order.
func better(key int64, owner, target graph.NodeID, cur MsgCReport) bool {
	if key != cur.Key {
		return key < cur.Key
	}
	if owner != cur.Owner {
		return owner < cur.Owner
	}
	return target < cur.Target
}

func (c *CentrCore) startPhase(p Port) {
	c.beginAggregation(p)
}

// beginAggregation initializes this phase at a member and forwards the
// phase request to its children.
func (c *CentrCore) beginAggregation(p Port) {
	c.best = c.candidate(p)
	c.waiting = len(c.Children)
	for _, ch := range c.Children {
		p.Send(ch, MsgCPhase{})
	}
	if c.waiting == 0 {
		c.finishAggregation(p)
	}
}

func (c *CentrCore) finishAggregation(p Port) {
	if p.ID() == c.Root {
		c.rootDecide(p)
		return
	}
	p.Send(c.Parent, c.best)
}

func (c *CentrCore) rootDecide(p Port) {
	if c.best.Key == Infinity {
		c.Done = true
		for _, ch := range c.Children {
			p.Send(ch, MsgCDone{})
		}
		return
	}
	chosen := c.best
	c.CommEstimate += 3*c.treeWeight + chosen.EdgeW
	c.treeWeight += chosen.EdgeW
	resume := func(p2 Port) { c.applyAdd(p2, c.addMsg(chosen)) }
	if c.Gate.Report(c.CommEstimate, resume) {
		resume(p)
	}
}

func (c *CentrCore) addMsg(r MsgCReport) MsgCAdd {
	add := MsgCAdd{Owner: r.Owner, Target: r.Target, EdgeW: r.EdgeW}
	if c.Mode == ModeSPT {
		add.Dist = r.Key // dist(owner) + w = dist(target) in Dijkstra
	}
	return add
}

// applyAdd processes an Add at a member: update the membership view,
// forward down the tree, invite the new vertex if this node owns the
// chosen edge, and (at the root) start the next phase.
func (c *CentrCore) applyAdd(p Port, add MsgCAdd) {
	c.InTree[add.Target] = true
	if c.Mode == ModeSPT {
		c.Dist[add.Target] = add.Dist
	}
	for _, ch := range c.Children {
		p.Send(ch, add)
	}
	if add.Owner == p.ID() {
		c.Children = append(c.Children, add.Target)
		members := make([]bool, c.n)
		copy(members, c.InTree)
		dists := make([]int64, c.n)
		copy(dists, c.Dist)
		p.Send(add.Target, MsgCInvite{Members: members, Dists: dists, MyDist: add.Dist})
	}
	if p.ID() == c.Root {
		c.startPhase(p)
	}
}

// Handle processes one core message.
func (c *CentrCore) Handle(p Port, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgCPhase:
		c.beginAggregation(p)
	case MsgCReport:
		if better(msg.Key, msg.Owner, msg.Target, c.best) {
			c.best = msg
		}
		c.waiting--
		if c.waiting == 0 {
			c.finishAggregation(p)
		}
	case MsgCAdd:
		c.applyAdd(p, msg)
	case MsgCInvite:
		c.Member = true
		c.Parent = from
		c.InTree = msg.Members
		c.Dist = msg.Dists
		if c.Mode == ModeSPT {
			c.Dist[p.ID()] = msg.MyDist
		}
	case MsgCDone:
		c.Done = true
		for _, ch := range c.Children {
			p.Send(ch, MsgCDone{})
		}
	default:
		panic(fmt.Sprintf("basic: CentrCore got %T", m))
	}
}

// CentrProc wraps a CentrCore as a standalone sim.Process.
type CentrProc struct {
	Core *CentrCore
}

var _ sim.Process = (*CentrProc)(nil)

// Init starts the root.
func (c *CentrProc) Init(ctx sim.Context) {
	if ctx.ID() == c.Core.Root {
		c.Core.Start(ctxPort{ctx})
	}
}

// Handle delegates to the core.
func (c *CentrProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	c.Core.Handle(ctxPort{ctx}, from, m)
}

// CentrResult aggregates a full-information run.
type CentrResult struct {
	Parent []graph.NodeID // resulting tree (-1 at root)
	Dist   []int64        // distance labels (ModeSPT)
	Stats  *sim.Stats
}

// Tree converts the result into a graph.Tree.
func (r *CentrResult) Tree(g *graph.Graph, root graph.NodeID) *graph.Tree {
	return graph.NewTree(g, root, r.Parent)
}

func runCentr(mode CentrMode, g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*CentrResult, error) {
	procs := make([]sim.Process, g.N())
	cores := make([]*CentrCore, g.N())
	for v := range procs {
		cores[v] = NewCentrCore(mode, root, g.N())
		procs[v] = &CentrProc{Core: cores[v]}
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	if !cores[root].Done {
		return nil, fmt.Errorf("basic: full-information run did not complete")
	}
	res := &CentrResult{
		Parent: make([]graph.NodeID, g.N()),
		Dist:   make([]int64, g.N()),
		Stats:  stats,
	}
	for v := range cores {
		res.Parent[v] = cores[v].Parent
		res.Dist[v] = cores[v].Dist[v]
	}
	return res, nil
}

// RunMSTCentr executes algorithm MSTcentr (§6.3) from root.
func RunMSTCentr(g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*CentrResult, error) {
	return runCentr(ModeMST, g, root, opts...)
}

// RunSPTCentr executes algorithm SPTcentr (§6.4) from source root.
func RunSPTCentr(g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*CentrResult, error) {
	return runCentr(ModeSPT, g, root, opts...)
}
