package basic

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// DFS messages (§6.2). The token messages carry the center estimate
// EST_c: the total weight of all edge traversals performed so far, with
// the weight of an edge added as the token crosses it.
type (
	// MsgDFSToken probes an edge: the center of activity moves forward.
	MsgDFSToken struct{ Est int64 }
	// MsgDFSBounce rejects a probe: the probed vertex was visited.
	MsgDFSBounce struct{ Est int64 }
	// MsgDFSBack returns the token to the parent: subtree exhausted.
	MsgDFSBack struct{ Est int64 }
	// MsgDFSHome carries a doubled estimate from the center up the DFS
	// tree to the root (the center-of-activity-returns-to-root rule of
	// §7.2, which makes the algorithm suspendable at the root).
	MsgDFSHome struct{ Est int64 }
	// MsgDFSResume sends the center back down along breadcrumbs with
	// the new root estimate.
	MsgDFSResume struct{ Est int64 }
)

// DFSCore is the per-node state machine of the distributed depth-first
// search of §6.2: a single token traverses every edge at most twice in
// each direction (communication and time O(𝓔)), and the root estimate
// EST_R is kept within a factor of two of the center estimate by
// reporting home whenever the estimate is about to double.
type DFSCore struct {
	// Root is the DFS source.
	Root graph.NodeID
	// Gate arbitrates continuation at the root; RunFree by default.
	Gate Gate

	// Visited reports whether the token reached this node.
	Visited bool
	// Parent is the DFS tree parent (-1 at the root / unvisited).
	Parent graph.NodeID
	// Done is set at the root upon completion.
	Done bool
	// FinalEst is the final center estimate, set at the root.
	FinalEst int64

	next       int   // adjacency scan position
	estC       int64 // center estimate (valid while center is here)
	estLocal   int64 // center's copy of the root estimate
	estR       int64 // root only
	breadcrumb graph.NodeID
	awaiting   bool // center here, waiting for MsgDFSResume
}

// NewDFSCore returns a core for one node.
func NewDFSCore(root graph.NodeID) *DFSCore {
	return &DFSCore{Root: root, Gate: RunFree{}, Parent: -1, breadcrumb: -1}
}

func (c *DFSCore) isRoot(p Port) bool { return p.ID() == c.Root }

// Start launches the traversal; call at the root only.
func (c *DFSCore) Start(p Port) {
	if !c.isRoot(p) {
		panic("basic: DFSCore.Start on non-root")
	}
	c.Visited = true
	c.proceed(p)
}

func weightTo(p Port, u graph.NodeID) int64 {
	for _, h := range p.Neighbors() {
		if h.To == u {
			return h.W
		}
	}
	panic(fmt.Sprintf("basic: node %d has no edge to %d", p.ID(), u))
}

// proceed advances the scan while the center of activity is here.
func (c *DFSCore) proceed(p Port) {
	adj := p.Neighbors()
	for c.next < len(adj) {
		h := adj[c.next]
		if h.To == c.Parent {
			c.next++
			continue
		}
		// Doubling rule: report home before a traversal that would
		// exceed twice the known root estimate.
		if c.estC+h.W > 2*c.estLocal {
			newEst := c.estC + h.W
			if c.isRoot(p) {
				c.estR = newEst
				c.estLocal = newEst
				if !c.Gate.Report(newEst, func(p2 Port) { c.proceed(p2) }) {
					return // suspended at root; resume re-enters proceed
				}
				continue
			}
			c.awaiting = true
			p.Send(c.Parent, MsgDFSHome{Est: newEst})
			return
		}
		c.next++
		p.Send(h.To, MsgDFSToken{Est: c.estC + h.W})
		return
	}
	// All incident edges handled: back up, or finish at the root.
	if c.isRoot(p) {
		c.Done = true
		c.FinalEst = c.estC
		return
	}
	p.Send(c.Parent, MsgDFSBack{Est: c.estC + weightTo(p, c.Parent)})
}

// Handle processes one DFS message.
func (c *DFSCore) Handle(p Port, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgDFSToken:
		if c.Visited {
			p.Send(from, MsgDFSBounce{Est: msg.Est + weightTo(p, from)})
			return
		}
		c.Visited = true
		c.Parent = from
		c.estC = msg.Est
		c.proceed(p)
	case MsgDFSBounce:
		c.estC = msg.Est
		c.proceed(p)
	case MsgDFSBack:
		c.estC = msg.Est
		c.proceed(p)
	case MsgDFSHome:
		if c.isRoot(p) {
			c.estR = msg.Est
			c.breadcrumb = from
			resume := func(p2 Port) { p2.Send(c.breadcrumb, MsgDFSResume{Est: c.estR}) }
			if c.Gate.Report(c.estR, resume) {
				resume(p)
			}
			return
		}
		c.breadcrumb = from
		p.Send(c.Parent, MsgDFSHome{Est: msg.Est})
	case MsgDFSResume:
		if c.awaiting {
			c.awaiting = false
			c.estLocal = msg.Est
			c.proceed(p)
			return
		}
		p.Send(c.breadcrumb, MsgDFSResume{Est: msg.Est})
	default:
		panic(fmt.Sprintf("basic: DFSCore got %T", m))
	}
}

// DFSProc wraps a DFSCore as a standalone sim.Process.
type DFSProc struct {
	Core *DFSCore
}

var _ sim.Process = (*DFSProc)(nil)

// Init starts the token at the root.
func (d *DFSProc) Init(ctx sim.Context) {
	if ctx.ID() == d.Core.Root {
		d.Core.Start(ctxPort{ctx})
	}
}

// Handle delegates to the core.
func (d *DFSProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	d.Core.Handle(ctxPort{ctx}, from, m)
}

// DFSResult aggregates a DFS run.
type DFSResult struct {
	Parent   []graph.NodeID // DFS tree (-1 at root)
	Visited  []bool
	FinalEst int64 // total traversed weight, per the center estimate
	Stats    *sim.Stats
}

// RunDFS executes the distributed DFS from root on g.
func RunDFS(g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*DFSResult, error) {
	procs := make([]sim.Process, g.N())
	cores := make([]*DFSCore, g.N())
	for v := range procs {
		cores[v] = NewDFSCore(root)
		procs[v] = &DFSProc{Core: cores[v]}
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	if !cores[root].Done {
		return nil, fmt.Errorf("basic: DFS did not complete")
	}
	res := &DFSResult{
		Parent:   make([]graph.NodeID, g.N()),
		Visited:  make([]bool, g.N()),
		FinalEst: cores[root].FinalEst,
		Stats:    stats,
	}
	for v := range cores {
		res.Parent[v] = cores[v].Parent
		res.Visited[v] = cores[v].Visited
	}
	return res, nil
}
