package basic

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// FloodMsg is the token of CONflood (§6.1).
type FloodMsg struct{}

// FloodProc implements algorithm CONflood: the source sends the token
// to all neighbors; every vertex forwards the first receipt to all its
// neighbors and ignores later arrivals. Communication O(𝓔) (two
// messages per edge), time O(𝓓) under the maximal-delay adversary.
// The first-arrival edges form a spanning tree of the component.
type FloodProc struct {
	Source graph.NodeID
	// Got reports whether the token reached this node.
	Got bool
	// GotAt is the arrival time (0 for the source).
	GotAt int64
	// Parent is the neighbor the token first arrived from (-1 at the
	// source), defining the flooding tree.
	Parent graph.NodeID
}

var _ sim.Process = (*FloodProc)(nil)

// Init starts the flood at the source.
func (f *FloodProc) Init(ctx sim.Context) {
	f.Parent = -1
	if ctx.ID() != f.Source {
		return
	}
	f.Got = true
	for _, h := range ctx.Neighbors() {
		ctx.Send(h.To, FloodMsg{})
	}
}

// Handle forwards the first receipt.
func (f *FloodProc) Handle(ctx sim.Context, from graph.NodeID, _ sim.Message) {
	if f.Got {
		return
	}
	f.Got = true
	f.GotAt = ctx.Now()
	f.Parent = from
	for _, h := range ctx.Neighbors() {
		if h.To != from {
			ctx.Send(h.To, FloodMsg{})
		}
	}
}

// FloodResult aggregates a CONflood run.
type FloodResult struct {
	Parent  []graph.NodeID // flooding tree (-1 at source / unreached)
	Reached []bool
	Stats   *sim.Stats
}

// RunFlood executes CONflood from the source on g.
func RunFlood(g *graph.Graph, source graph.NodeID, opts ...sim.Option) (*FloodResult, error) {
	procs := make([]sim.Process, g.N())
	fl := make([]*FloodProc, g.N())
	for v := range procs {
		fl[v] = &FloodProc{Source: source}
		procs[v] = fl[v]
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	res := &FloodResult{
		Parent:  make([]graph.NodeID, g.N()),
		Reached: make([]bool, g.N()),
		Stats:   stats,
	}
	for v := range fl {
		res.Parent[v] = fl[v].Parent
		res.Reached[v] = fl[v].Got
	}
	return res, nil
}
