package basic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

func TestFloodReachesAllAndBuildsTree(t *testing.T) {
	g := graph.RandomConnected(40, 100, graph.UniformWeights(20, 3), 3)
	res, err := RunFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Reached {
		if !res.Reached[v] {
			t.Fatalf("node %d not reached", v)
		}
	}
	tree := graph.NewTree(g, 0, res.Parent)
	if !tree.Spanning() {
		t.Fatal("flood parents do not form a spanning tree")
	}
	// Fact 6.1: communication O(𝓔) — at most two messages per edge.
	if res.Stats.Comm > 2*g.TotalWeight() {
		t.Errorf("flood comm %d > 2𝓔 = %d", res.Stats.Comm, 2*g.TotalWeight())
	}
	// Time O(𝓓) under the maximal adversary.
	if dd := graph.Diameter(g); res.Stats.FinishTime > 2*dd {
		t.Errorf("flood time %d > 2𝓓 = %d", res.Stats.FinishTime, 2*dd)
	}
}

func TestFloodPartialOnDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(2, 3, 2)
	g := b.MustBuild()
	res, err := RunFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached[1] || res.Reached[2] || res.Reached[3] {
		t.Fatalf("reachability = %v, want [true true false false]", res.Reached)
	}
}

func TestDFSVisitsAllAndBoundsComm(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.UniformWeights(25, 5), 5)
	res, err := RunDFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range res.Visited {
		if !ok {
			t.Fatalf("node %d not visited", v)
		}
	}
	tree := graph.NewTree(g, 0, res.Parent)
	if !tree.Spanning() {
		t.Fatal("DFS parents do not form a spanning tree")
	}
	// Fact 6.2: communication O(𝓔). Token: <= 4 crossings per edge;
	// home/resume detours form a geometric series bounded by 16𝓔. Allow 24𝓔.
	if res.Stats.Comm > 24*g.TotalWeight() {
		t.Errorf("DFS comm %d > 24𝓔 = %d", res.Stats.Comm, 24*g.TotalWeight())
	}
	// Serial algorithm: time within the same bound.
	if res.Stats.FinishTime > 24*g.TotalWeight() {
		t.Errorf("DFS time %d > 24𝓔 = %d", res.Stats.FinishTime, 24*g.TotalWeight())
	}
	// The final estimate counts token traversals only, also O(𝓔).
	if res.FinalEst <= 0 || res.FinalEst > 4*g.TotalWeight() {
		t.Errorf("FinalEst = %d, want in (0, 4𝓔]", res.FinalEst)
	}
}

func TestDFSTreeIsDepthFirst(t *testing.T) {
	// On a path, DFS from an end visits in order; parents are the
	// predecessors.
	g := graph.Path(6, graph.ConstWeights(3))
	res, err := RunDFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 6; v++ {
		if res.Parent[v] != graph.NodeID(v-1) {
			t.Fatalf("Parent[%d] = %d, want %d", v, res.Parent[v], v-1)
		}
	}
}

func TestDFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(30, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		res, err := RunDFS(g, root)
		if err != nil {
			return false
		}
		tree := graph.NewTree(g, root, res.Parent)
		return tree.Spanning() && res.Stats.Comm <= 24*g.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTCentrMatchesKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(500, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		res, err := RunMSTCentr(g, root)
		if err != nil {
			t.Log(err)
			return false
		}
		tree := res.Tree(g, root)
		return tree.Spanning() && tree.Weight() == graph.MSTWeight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTCentrComplexity(t *testing.T) {
	// Corollary 6.4: communication O(n·𝓥), time O(n·Diam(MST)).
	g := graph.RandomConnected(40, 120, graph.UniformWeights(50, 7), 7)
	res, err := RunMSTCentr(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.N())
	vv := graph.MSTWeight(g)
	if res.Stats.Comm > 5*n*vv {
		t.Errorf("MSTcentr comm %d > 5n𝓥 = %d", res.Stats.Comm, 5*n*vv)
	}
	mstDiam := res.Tree(g, 0).Diam()
	if res.Stats.FinishTime > 5*n*(mstDiam+1) {
		t.Errorf("MSTcentr time %d > 5n·Diam(MST) = %d", res.Stats.FinishTime, 5*n*(mstDiam+1))
	}
}

func TestSPTCentrMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(100, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		res, err := RunSPTCentr(g, root)
		if err != nil {
			t.Log(err)
			return false
		}
		want := graph.Dijkstra(g, root)
		for v := range res.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Logf("seed %d: Dist[%d] = %d, want %d", seed, v, res.Dist[v], want.Dist[v])
				return false
			}
		}
		tree := res.Tree(g, root)
		depths := tree.Depths()
		for v := range depths {
			if depths[v] != want.Dist[v] {
				return false // tree must realize the distances
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSPTCentrComplexity(t *testing.T) {
	// Corollary 6.6: communication O(n·w(SPT)) = O(n²𝓥).
	g := graph.RandomConnected(35, 100, graph.UniformWeights(40, 13), 13)
	res, err := RunSPTCentr(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.N())
	sptW := res.Tree(g, 0).Weight()
	if res.Stats.Comm > 5*n*(sptW+1) {
		t.Errorf("SPTcentr comm %d > 5n·w(SPT) = %d", res.Stats.Comm, 5*n*sptW)
	}
}

// suspendOnce suspends the algorithm at its first report and resumes on
// a later, externally injected message — exercising the Gate plumbing
// that the hybrid algorithms rely on.
type suspendOnce struct {
	suspended int
	resume    func(Port)
}

func (s *suspendOnce) Report(est int64, resume func(Port)) bool {
	if s.suspended == 0 {
		s.suspended++
		s.resume = resume
		return false
	}
	return true
}

// kicker delivers a wake-up message to the root after a delay so the
// suspended DFS can resume inside a Handle call.
type kicker struct {
	core *DFSCore
	gate *suspendOnce
}

func (k *kicker) Init(ctx sim.Context) {
	k.core.Start(ctxPort{ctx}) // the kicker always wraps the root
}

func (k *kicker) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	if _, ok := m.(string); ok {
		if k.gate.resume != nil {
			r := k.gate.resume
			k.gate.resume = nil
			r(ctxPort{ctx})
		}
		return
	}
	k.core.Handle(ctxPort{ctx}, from, m)
}

func TestDFSGateSuspendResume(t *testing.T) {
	g := graph.Path(5, graph.ConstWeights(2))
	gate := &suspendOnce{}
	cores := make([]*DFSCore, g.N())
	procs := make([]sim.Process, g.N())
	for v := range procs {
		cores[v] = NewDFSCore(0)
		procs[v] = &DFSProc{Core: cores[v]}
	}
	cores[0].Gate = gate
	procs[0] = &kicker{core: cores[0], gate: gate}
	// Node 1 additionally sends the wake-up kick to the root.
	procs[1] = &kickShim{inner: procs[1].(*DFSProc)}

	if _, err := sim.Run(g, procs); err != nil {
		t.Fatal(err)
	}
	if !cores[0].Done {
		t.Fatal("DFS did not complete after resume")
	}
	if gate.suspended != 1 {
		t.Fatalf("gate suspended %d times, want 1", gate.suspended)
	}
}

type kickShim struct {
	inner *DFSProc
}

func (k *kickShim) Init(ctx sim.Context) {
	ctx.Send(0, "kick")
	k.inner.Init(ctx)
}

func (k *kickShim) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	k.inner.Handle(ctx, from, m)
}

func TestDFSGateConsulted(t *testing.T) {
	// A single-edge graph: the root's first traversal always doubles
	// from zero, but that update happens locally at the root, so the
	// gate must see at least one report.
	g := graph.Path(2, graph.ConstWeights(5))
	gate := &countGate{}
	cores := []*DFSCore{NewDFSCore(0), NewDFSCore(0)}
	cores[0].Gate = gate
	procs := []sim.Process{&DFSProc{Core: cores[0]}, &DFSProc{Core: cores[1]}}
	if _, err := sim.Run(g, procs); err != nil {
		t.Fatal(err)
	}
	if !cores[0].Done {
		t.Fatal("DFS incomplete")
	}
	if gate.calls == 0 {
		t.Fatal("gate never consulted")
	}
}

type countGate struct{ calls int }

func (c *countGate) Report(int64, func(Port)) bool {
	c.calls++
	return true
}
