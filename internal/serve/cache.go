package serve

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Substrate is one cached, immutable experiment substrate: a generated
// graph plus the derived artifacts every trial of a sweep would
// otherwise recompute — total weight 𝓔, MST weight 𝓥, and (for
// sharded runs) the node→shard partition. A Substrate is shared by
// every job whose spec hashes to the same key, concurrently, so it
// must never be mutated; since Go cannot hand out read-only slices,
// immutability is enforced defensively instead: the content
// fingerprint taken at build time is re-checked on every cache hit,
// and a mismatch panics (see Verify).
type Substrate struct {
	key         string
	g           *graph.Graph
	totalWeight int64 // 𝓔 = w(G)
	mstWeight   int64 // 𝓥 = w(MST(G))
	shardOf     []int32
	bytes       int64
	fp          uint64
}

// buildSubstrate generates the substrate a normalized spec describes.
func buildSubstrate(key string, gs GraphSpec, shards int) *Substrate {
	g := gs.Build()
	s := &Substrate{
		key:         key,
		g:           g,
		totalWeight: g.TotalWeight(),
		mstWeight:   graph.MSTWeight(g),
	}
	if shards > 1 {
		s.shardOf = sim.ShardAssignment(g, shards)
	}
	// Size estimate for the byte-bounded cache: the graph's adjacency
	// is ~2 edge records per endpoint plus the edge list itself; 48
	// bytes per edge and 16 per vertex over-approximates both.
	s.bytes = int64(g.M())*48 + int64(g.N())*16 + int64(len(s.shardOf))*4 + 256
	s.fp = s.fingerprint()
	return s
}

// Key is the substrate's content address (Spec.SubstrateKey).
func (s *Substrate) Key() string { return s.key }

// Graph returns the shared graph. Callers must treat it as read-only;
// Verify will panic the process if they don't.
func (s *Substrate) Graph() *graph.Graph { return s.g }

// TotalWeight is 𝓔, cached at build time.
func (s *Substrate) TotalWeight() int64 { return s.totalWeight }

// MSTWeight is 𝓥, cached at build time.
func (s *Substrate) MSTWeight() int64 { return s.mstWeight }

// ShardAssignment is the cached node→shard partition (nil for serial
// substrates). Shared and read-only, like the graph.
func (s *Substrate) ShardAssignment() []int32 { return s.shardOf }

// Bytes is the substrate's estimated memory footprint, the unit of
// the cache's eviction budget.
func (s *Substrate) Bytes() int64 { return s.bytes }

// fingerprint hashes everything reachable through the substrate's
// accessors: vertex count, the full edge list, the shard assignment
// and the derived weights. FNV-1a, not SHA — this runs on every cache
// hit and only has to catch accidents, not adversaries.
func (s *Substrate) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	word(int64(s.g.N()))
	word(int64(s.g.M()))
	for _, e := range s.g.Edges() {
		word(int64(e.U))
		word(int64(e.V))
		word(e.W)
	}
	for _, sh := range s.shardOf {
		word(int64(sh))
	}
	word(s.totalWeight)
	word(s.mstWeight)
	return h.Sum64()
}

// Verify re-hashes the substrate and panics on any divergence from the
// build-time fingerprint. A mutated substrate would silently poison
// every later job that shares it — results would stop being a function
// of the spec — so this is deliberately a crash, not an error return.
// The cache calls it on every hit.
func (s *Substrate) Verify() {
	if got := s.fingerprint(); got != s.fp {
		panic(fmt.Sprintf("serve: cached substrate %s was mutated (fingerprint %016x, want %016x); substrates are shared and read-only", s.key, got, s.fp))
	}
}

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Cache is the content-addressed substrate store: a map from substrate
// key to built Substrate with LRU eviction bounded by total estimated
// bytes. Safe for concurrent use. Eviction only drops the *cache's*
// reference — jobs already holding a substrate keep it alive and
// valid; a later identical spec just rebuilds.
type Cache struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	ll        *list.List               // front = most recently used
	items     map[string]*list.Element // key -> element whose Value is *cacheEntry
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry pairs a substrate with the key it is stored under. The
// store key is normally Substrate.Key(), but eviction must delete by
// the key the entry was *inserted* with, so it is carried explicitly.
type cacheEntry struct {
	key string
	sub *Substrate
}

// NewCache builds a cache bounded to maxBytes of estimated substrate
// footprint (maxBytes <= 0 means 256 MiB).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// GetOrBuild returns the substrate stored under key, building and
// inserting it with build on a miss. hit reports whether the substrate
// came from the cache. On a hit the substrate's integrity fingerprint
// is re-verified (panicking on mutation). The newest entry is never
// evicted, so a substrate larger than the whole budget still builds
// and serves its job — it just won't outlive it in the cache.
//
// The build runs under the cache lock: concurrent requests for the
// same key must not build twice (the whole point of the cache), and
// the queue's serial job loop means there is no parallelism to lose.
func (c *Cache) GetOrBuild(key string, build func() *Substrate) (sub *Substrate, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		sub = el.Value.(*cacheEntry).sub
		sub.Verify()
		return sub, true
	}
	c.misses++
	sub = build()
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sub: sub})
	c.bytes += sub.Bytes()
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		victim := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, victim.key)
		c.bytes -= victim.sub.Bytes()
		c.evictions++
	}
	return sub, false
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
