package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// newFrontend mounts an existing server's handler on an httptest
// listener torn down with the test (testServer builds its own Server;
// this wraps one the test already opened, e.g. via Open on a journal).
func newFrontend(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getText fetches a URL and returns its body as a string (any status).
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// streamLines consumes an NDJSON stream to EOF and returns its lines.
func streamLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, b)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return lines
}

func itoa(n int) string { return strconv.Itoa(n) }

// crashedJournal writes a journal whose last job was submitted and
// started but never finished — the on-disk state a kill -9 mid-sweep
// leaves behind.
func crashedJournal(t *testing.T, spec Spec) string {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []journalRecord{
		{Op: opSubmitted, Job: "job-000001", Spec: &spec},
		{Op: opStarted, Job: "job-000001"},
	} {
		if err := jl.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecoveryByteIdentical is the tentpole contract: a job the crash
// interrupted mid-sweep is re-enqueued on the next start and re-runs
// to a result byte-identical to an uninterrupted run of the same spec.
func TestRecoveryByteIdentical(t *testing.T) {
	spec := validSpec()
	spec.Trials = 6

	// The uninterrupted reference run, journal-less.
	ref, refTS := testServer(t, Config{})
	code, out, _ := postSpec(t, refTS, spec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d (%v)", code, out)
	}
	refID := out["id"].(string)
	waitDone(t, ref, refID)
	want := fetchResult(t, refTS, refID)

	// The crashed-and-restarted run.
	path := crashedJournal(t, spec)
	s, err := Open(Config{JournalPath: path})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	waitDone(t, s, "job-000001")
	j := s.job("job-000001")
	if st := j.status(); st.State != "done" || !st.Recovered {
		t.Fatalf("recovered job state=%s recovered=%v error=%q", st.State, st.Recovered, st.Error)
	}
	if got := j.result; !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if n := s.recovered.Load(); n != 1 {
		t.Fatalf("costsense_jobs_recovered_total = %d, want 1", n)
	}

	// The journal now records the finish: a second restart restores the
	// job as terminal history instead of re-running it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s2, err := Open(Config{JournalPath: path})
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	j2 := s2.job("job-000001")
	if j2 == nil || j2.state.Load() != jobDone {
		t.Fatalf("second restart lost the finished job: %+v", j2)
	}
	if !bytes.Equal(j2.result, want) {
		t.Fatal("persisted result bytes differ from the live run")
	}
	if s2.recovered.Load() != 0 {
		t.Fatal("terminal job counted as recovered")
	}
}

// TestRecoveryRestoresFailedJobs: a journaled failure (here: killed by
// a second SIGTERM) is reported on the next start, reason intact, not
// re-run.
func TestRecoveryRestoresFailedJobs(t *testing.T) {
	spec := validSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []journalRecord{
		{Op: opSubmitted, Job: "job-000001", Spec: &spec},
		{Op: opStarted, Job: "job-000001"},
		{Op: opFailed, Job: "job-000001", Reason: ReasonKilled, Detail: "second termination signal killed the job mid-drain"},
	} {
		if err := jl.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	j := s.job("job-000001")
	if j == nil {
		t.Fatal("failed job not restored")
	}
	st := j.status()
	if st.State != "failed" || st.Reason != ReasonKilled {
		t.Fatalf("restored status = %s/%s, want failed/killed", st.State, st.Reason)
	}
	if s.recovered.Load() != 0 || len(s.recoverQ) != 0 {
		t.Fatal("terminal job queued for re-admission")
	}
}

// TestMarkKilled: the second-SIGTERM path journals failed(killed) for
// the in-flight job and seals the journal, so the next start reports
// the kill instead of re-running blind.
func TestMarkKilled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := Open(Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		// The job is built to never finish; skip straight to the
		// cancellation phase of the drain.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		s.Drain(ctx)
	})
	ts := newFrontend(t, s)

	spec := validSpec()
	spec.Graph = GraphSpec{Family: "random", N: 4000, M: 12000, Seed: 3}
	spec.Trials = MaxTrials // far longer than the test; never finishes on its own
	code, out, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	waitRunning(t, s, id)

	s.MarkKilled()

	// The journal is sealed: the on-disk history ends in failed(killed)
	// and a fresh start reports it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := decodeJournal(data)
	if err != nil {
		t.Fatalf("journal after MarkKilled: %v", err)
	}
	if len(rec.Jobs) != 1 || !rec.Jobs[0].Failed || rec.Jobs[0].Reason != ReasonKilled {
		t.Fatalf("journal does not record the kill: %+v", rec.Jobs)
	}
	s2, err := Open(Config{JournalPath: filepath.Join(t.TempDir(), "copy.journal")})
	if err != nil {
		t.Fatal(err)
	}
	_ = s2 // fresh journal opens fine alongside the sealed one
	s3, err := openOnBytes(t, data)
	if err != nil {
		t.Fatalf("restart on the sealed journal: %v", err)
	}
	st := s3.job(id).status()
	if st.State != "failed" || st.Reason != ReasonKilled {
		t.Fatalf("restart reports %s/%s, want failed/killed", st.State, st.Reason)
	}
}

// openOnBytes writes journal bytes to a fresh path and opens a server
// on them (no Start: restoration happens in Open).
func openOnBytes(t *testing.T, data []byte) (*Server, error) {
	t.Helper()
	p := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(Config{JournalPath: p})
}

// waitRunning blocks until the job has started making trial progress.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := s.job(id)
		if j != nil && j.state.Load() == jobRunning && j.trialsDone.Load() > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestDeadlineFailsTyped: a job exceeding its spec deadline fails with
// reason=deadline, the expired counter ticks, and the scheduler moves
// straight on to the next job.
func TestDeadlineFailsTyped(t *testing.T) {
	s, ts := testServer(t, Config{})
	slow := validSpec()
	slow.Graph = GraphSpec{Family: "random", N: 4000, M: 12000, Seed: 3}
	slow.Trials = MaxTrials
	slow.TimeoutMS = 30
	code, out, _ := postSpec(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, out)
	}
	slowID := out["id"].(string)
	waitDone(t, s, slowID)
	st := s.job(slowID).status()
	if st.State != "failed" || st.Reason != ReasonDeadline {
		t.Fatalf("deadline job ended %s/%s (%s), want failed/deadline", st.State, st.Reason, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error detail does not mention the deadline: %q", st.Error)
	}
	if n := s.expired.Load(); n != 1 {
		t.Fatalf("costsense_jobs_expired_total = %d, want 1", n)
	}

	// The scheduler is not wedged: a healthy job right behind it runs
	// to completion.
	code, out, _ = postSpec(t, ts, validSpec())
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: status %d (%v)", code, out)
	}
	nextID := out["id"].(string)
	waitDone(t, s, nextID)
	if st := s.job(nextID).status(); st.State != "done" {
		t.Fatalf("follow-up job ended %s (%s), want done", st.State, st.Error)
	}

	// The typed failure is visible on /metrics.
	metrics := getText(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "costsense_jobs_expired_total 1") {
		t.Fatal("expired counter missing from /metrics")
	}
}

// TestServerDefaultDeadline: Config.JobTimeout applies to specs that
// carry no timeout of their own.
func TestServerDefaultDeadline(t *testing.T) {
	s, ts := testServer(t, Config{JobTimeout: 30 * time.Millisecond})
	slow := validSpec()
	slow.Graph = GraphSpec{Family: "random", N: 4000, M: 12000, Seed: 3}
	slow.Trials = MaxTrials
	code, out, _ := postSpec(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	waitDone(t, s, id)
	if st := s.job(id).status(); st.State != "failed" || st.Reason != ReasonDeadline {
		t.Fatalf("job ended %s/%s, want failed/deadline", st.State, st.Reason)
	}
}

// TestPanicIsolation: a panicking sweep (here: the cache's
// mutation-detection panic) fails that job with reason=panic — panic
// value in the detail — and the scheduler survives to run the next
// job.
func TestPanicIsolation(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()

	// Build the substrate once, then mutate it so the next hit's
	// Verify panics mid-runJob.
	code, out, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("priming submit: status %d (%v)", code, out)
	}
	primeID := out["id"].(string)
	waitDone(t, s, primeID)
	sub, hit := s.Cache().GetOrBuild(spec.SubstrateKey(), func() *Substrate {
		t.Fatal("substrate should already be cached")
		return nil
	})
	if !hit {
		t.Fatal("priming job did not cache the substrate")
	}
	sub.Graph().Edges()[0].W++ // poison it (Edges returns the live slice)

	code, out, _ = postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("poisoned submit: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	waitDone(t, s, id)
	st := s.job(id).status()
	if st.State != "failed" || st.Reason != ReasonPanic {
		t.Fatalf("poisoned job ended %s/%s (%s), want failed/panic", st.State, st.Reason, st.Error)
	}
	if !strings.Contains(st.Error, "mutated") {
		t.Fatalf("panic value not surfaced in the detail: %q", st.Error)
	}
	if n := s.panicked.Load(); n != 1 {
		t.Fatalf("costsense_jobs_panicked_total = %d, want 1", n)
	}

	// Scheduler alive: a job on a different substrate completes.
	healthy := validSpec()
	healthy.Graph.Seed = 99
	code, out, _ = postSpec(t, ts, healthy)
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: status %d (%v)", code, out)
	}
	nextID := out["id"].(string)
	waitDone(t, s, nextID)
	if st := s.job(nextID).status(); st.State != "done" {
		t.Fatalf("follow-up job ended %s (%s), want done", st.State, st.Error)
	}
}

// TestStreamFromOffset: ?from=N serves exactly the progress-log suffix
// — the resume primitive the client rides across disconnects and
// restarts — and an offset past a terminal job's log still yields one
// terminal line.
func TestStreamFromOffset(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	spec.Trials = 16
	code, out, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	waitDone(t, s, id)

	full := streamLines(t, ts.URL+"/api/v1/jobs/"+id+"/stream")
	if len(full) < 2 {
		t.Fatalf("stream produced %d lines, want at least queued+terminal", len(full))
	}
	var last JobStatus
	if err := json.Unmarshal([]byte(full[len(full)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.State != "done" || last.TrialsDone != 16 {
		t.Fatalf("terminal line: state=%s trials=%d, want done/16", last.State, last.TrialsDone)
	}

	// Resume from the middle: exactly the suffix, no replay.
	mid := len(full) / 2
	rest := streamLines(t, ts.URL+"/api/v1/jobs/"+id+"/stream?from="+itoa(mid))
	if len(rest) != len(full)-mid {
		t.Fatalf("resume from %d returned %d lines, want %d", mid, len(rest), len(full)-mid)
	}
	for i, ln := range rest {
		if ln != full[mid+i] {
			t.Fatalf("resumed line %d differs from the original stream", mid+i)
		}
	}

	// Past the end of a terminal log: one synthesized terminal line.
	over := streamLines(t, ts.URL+"/api/v1/jobs/"+id+"/stream?from="+itoa(len(full)+10))
	if len(over) != 1 {
		t.Fatalf("over-the-end resume returned %d lines, want 1", len(over))
	}
	var ost JobStatus
	if err := json.Unmarshal([]byte(over[0]), &ost); err != nil {
		t.Fatal(err)
	}
	if ost.State != "done" {
		t.Fatalf("synthesized line state=%s, want done", ost.State)
	}

	// Bad offsets are rejected.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-1: status %d, want 400", resp.StatusCode)
	}
}

// TestJournalConcurrentWithReads drives admissions (journal appends
// under the job-table lock) against /metrics scrapes, job listings and
// streams — the -race coverage for journal append vs. scheduler state
// reads.
func TestJournalConcurrentWithReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := Open(Config{JournalPath: path, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	ts := newFrontend(t, s)

	const jobs = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				getText(t, ts.URL+"/metrics")
				getJSON(t, ts.URL+"/api/v1/jobs", http.StatusOK)
			}
		}()
	}
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := validSpec()
		spec.Seed = int64(i + 1)
		code, out, _ := postSpec(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%v)", i, code, out)
		}
		ids = append(ids, out["id"].(string))
	}
	for _, id := range ids {
		waitDone(t, s, id)
	}
	close(stop)
	wg.Wait()

	// Every transition made it to disk in order: the journal decodes
	// clean with all jobs terminal.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := decodeJournal(data)
	if err != nil {
		t.Fatalf("journal after concurrent load: %v", err)
	}
	if len(rec.Jobs) != jobs || rec.Incomplete() != 0 {
		t.Fatalf("journal: %d jobs, %d incomplete; want %d and 0", len(rec.Jobs), rec.Incomplete(), jobs)
	}
}

// TestDrainReRunsQueuedJobs: jobs still queued at a graceful drain are
// failed in memory but keep their journaled submitted records — the
// next start re-runs them ("restart never drops journaled jobs").
func TestDrainReRunsQueuedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := Open(Config{JournalPath: path, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: both jobs stay queued, then drain fails them in
	// memory while their journal records survive.
	ts := newFrontend(t, s)
	for i := 0; i < 2; i++ {
		spec := validSpec()
		spec.Seed = int64(i + 1)
		code, out, _ := postSpec(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%v)", i, code, out)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain of unstarted server: %v", err)
	}
	if st := s.job("job-000001").status(); st.State != "failed" || st.Reason != ReasonShutdown {
		t.Fatalf("queued job after drain: %s/%s, want failed/shutdown", st.State, st.Reason)
	}

	s2, err := Open(Config{JournalPath: path})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	s2.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	for _, id := range []string{"job-000001", "job-000002"} {
		waitDone(t, s2, id)
		if st := s2.job(id).status(); st.State != "done" || !st.Recovered {
			t.Fatalf("job %s after restart: %s recovered=%v (%s)", id, st.State, st.Recovered, st.Error)
		}
	}
	if n := s2.recovered.Load(); n != 2 {
		t.Fatalf("costsense_jobs_recovered_total = %d, want 2", n)
	}
}

// TestJournalLessBehaviorUnchanged: without a journal the server keeps
// its original semantics (dense IDs, 429 on a full queue, no recovery
// surface) — the journal must be pay-for-what-you-use.
func TestJournalLessBehaviorUnchanged(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	code, out, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, out)
	}
	if id := out["id"].(string); id != "job-000001" {
		t.Fatalf("first id = %s, want job-000001", id)
	}
	waitDone(t, s, "job-000001")
	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		"costsense_jobs_recovered_total 0",
		"costsense_jobs_expired_total 0",
		"costsense_jobs_panicked_total 0",
		"costsense_journal_errors_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
