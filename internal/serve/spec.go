// Package serve is the experiment service behind `costsense serve`: a
// long-running HTTP server that accepts experiment specs, schedules
// them on a bounded job queue with backpressure, runs their trials on
// the harness worker pool with pooled per-worker simulator state, and
// caches immutable substrates (generated graphs plus their derived
// artifacts — 𝓔, 𝓥, shard partitions) in a content-addressed LRU
// store, so a thousand-trial sweep builds its substrate once.
//
// Results are a pure function of the spec: two submissions of the same
// spec return byte-identical result JSON, whether or not the second
// was served from the substrate cache. See DESIGN.md, "Experiment
// service & substrate cache".
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"costsense/internal/graph"
)

// Spec is one experiment submission: which protocol to run, on which
// generated graph, under which delay model and fault regime, for how
// many trials. The zero-valued optional fields take the documented
// defaults at Normalize; the normalized spec is echoed back in the
// result, so callers can see exactly what ran.
type Spec struct {
	// Experiment is the protocol to run: flood, dfs, mstcentr,
	// sptcentr, conhybrid, ghs, mstfast, msthybrid.
	Experiment string `json:"experiment"`
	// Graph describes the substrate to generate (and cache).
	Graph GraphSpec `json:"graph"`
	// Delay is the delay model: max (default), unit, or uniform.
	Delay string `json:"delay,omitempty"`
	// Trials is the sweep size; trial i runs with seed Seed+i.
	Trials int `json:"trials,omitempty"`
	// Seed is the base simulation seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Root is the root/source vertex for rooted experiments.
	Root int `json:"root,omitempty"`
	// Shards > 1 runs trials on the sharded engine with the cached
	// shard assignment of the substrate (results are byte-identical
	// to serial).
	Shards int `json:"shards,omitempty"`
	// EventLimit overrides the per-run event budget (default: the
	// simulator's 50M).
	EventLimit int64 `json:"event_limit,omitempty"`
	// Faults, when present, derives a reproducible fault plan for the
	// substrate and installs the reliable-delivery layer.
	Faults *FaultSpec `json:"faults,omitempty"`
	// TimeoutMS bounds the job's wall-clock run time in milliseconds;
	// 0 defers to the server's -job-timeout default (which may be
	// none). A job that exceeds it fails with reason "deadline". The
	// deadline is scheduling policy, not experiment identity: it is
	// excluded from the substrate key, and omitempty keeps timeoutless
	// specs' canonical JSON — and therefore result bytes — unchanged.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// GraphSpec names a deterministic graph generator and its parameters.
// Together with the shard count it is the substrate cache key: two
// specs with equal normalized GraphSpecs share one cached graph.
type GraphSpec struct {
	// Family is the generator: path, ring, star, complete, grid,
	// random, hard, heavychord.
	Family string `json:"family"`
	// N is the vertex count (path, ring, star, complete, random,
	// hard, heavychord).
	N int `json:"n,omitempty"`
	// M is the edge count (random).
	M int `json:"m,omitempty"`
	// Rows, Cols size the grid family.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// X is the hard family's cable weight (default n).
	X int64 `json:"x,omitempty"`
	// Heavy is the heavychord chord weight (default n).
	Heavy int64 `json:"heavy,omitempty"`
	// Weights assigns edge weights (not used by hard/heavychord,
	// which fix their own weights).
	Weights WeightSpec `json:"weights,omitempty"`
	// Seed seeds the random generator family.
	Seed int64 `json:"seed,omitempty"`
}

// WeightSpec names a deterministic edge-weight function.
type WeightSpec struct {
	// Kind: unit (default), const, uniform, pow2.
	Kind string `json:"kind,omitempty"`
	// W is the const weight.
	W int64 `json:"w,omitempty"`
	// Max is the uniform maximum weight.
	Max int64 `json:"max,omitempty"`
	// Exp is the pow2 maximum exponent.
	Exp int `json:"exp,omitempty"`
	// Seed seeds the random weight functions.
	Seed int64 `json:"seed,omitempty"`
}

// FaultSpec derives a reproducible fault plan for the substrate, with
// the same knobs as the chaos harness's -faults flag. The reliable
// delivery layer is installed on every faulty run, so protocols keep
// their exactly-once semantics under loss.
type FaultSpec struct {
	Drop float64 `json:"drop,omitempty"` // P(message lost at send), in [0, 1)
	Dup  float64 `json:"dup,omitempty"`  // P(message duplicated), in [0, 1)
	// Crashes is the number of fail-stop nodes (never the root).
	Crashes int `json:"crashes,omitempty"`
	// Downs is the number of transient link-outage windows.
	Downs int `json:"downs,omitempty"`
	// Horizon bounds crash times and window starts (default 64).
	Horizon int64 `json:"horizon,omitempty"`
	// Seed seeds the plan derivation (default 7), independent of the
	// run seed: the same plan applies to every trial of the sweep.
	Seed int64 `json:"seed,omitempty"`
}

// Limits guarding the service against abusive specs. They bound work
// per job, not correctness: a sweep larger than MaxTrials is split by
// the caller into several jobs.
const (
	MaxTrials     = 100_000
	maxVertices   = 2_000_000
	maxEdges      = 20_000_000
	maxShardCount = 1024
)

// experimentKinds names the runnable protocols.
var experimentKinds = map[string]bool{
	"flood": true, "dfs": true, "mstcentr": true, "sptcentr": true,
	"conhybrid": true, "ghs": true, "mstfast": true, "msthybrid": true,
}

// Normalize applies defaults and validates the spec in place. After a
// nil return the spec is canonical: equal sweeps have equal
// marshalled forms, which is what the substrate key and the
// byte-identical-results contract rest on.
func (s *Spec) Normalize() error {
	if !experimentKinds[s.Experiment] {
		return fmt.Errorf("unknown experiment %q (have flood, dfs, mstcentr, sptcentr, conhybrid, ghs, mstfast, msthybrid)", s.Experiment)
	}
	if err := s.Graph.normalize(); err != nil {
		return err
	}
	switch s.Delay {
	case "":
		s.Delay = "max"
	case "max", "unit", "uniform":
	default:
		return fmt.Errorf("unknown delay model %q (have max, unit, uniform)", s.Delay)
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Trials < 1 || s.Trials > MaxTrials {
		return fmt.Errorf("trials %d out of range [1, %d]", s.Trials, MaxTrials)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	n := s.Graph.vertexCount()
	if s.Root < 0 || s.Root >= n {
		return fmt.Errorf("root %d out of range [0, %d)", s.Root, n)
	}
	if s.Shards < 0 || s.Shards > maxShardCount {
		return fmt.Errorf("shards %d out of range [0, %d]", s.Shards, maxShardCount)
	}
	if s.Shards == 1 {
		s.Shards = 0 // 1 shard is the serial engine; canonicalize
	}
	if s.EventLimit < 0 {
		return fmt.Errorf("event_limit must be >= 0")
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	if s.Faults != nil {
		if err := s.Faults.normalize(); err != nil {
			return err
		}
	}
	return nil
}

func (f *FaultSpec) normalize() error {
	if f.Drop < 0 || f.Drop >= 1 || f.Dup < 0 || f.Dup >= 1 {
		return fmt.Errorf("fault probabilities must be in [0, 1): drop=%v dup=%v", f.Drop, f.Dup)
	}
	if f.Crashes < 0 || f.Downs < 0 {
		return fmt.Errorf("fault counts must be >= 0")
	}
	if f.Horizon == 0 {
		f.Horizon = 64
	}
	if f.Horizon < 2 {
		return fmt.Errorf("fault horizon must be >= 2")
	}
	if f.Seed == 0 {
		f.Seed = 7
	}
	return nil
}

func (g *GraphSpec) normalize() error {
	switch g.Family {
	case "path", "ring", "star", "complete", "random", "hard", "heavychord":
		if g.N < 2 {
			return fmt.Errorf("graph family %q needs n >= 2 (got %d)", g.Family, g.N)
		}
	case "grid":
		if g.Rows < 1 || g.Cols < 1 || g.Rows*g.Cols < 2 {
			return fmt.Errorf("grid needs rows >= 1 and cols >= 1 with rows*cols >= 2")
		}
		g.N = 0 // rows/cols are the grid's size parameters
	case "":
		return fmt.Errorf("graph family missing")
	default:
		return fmt.Errorf("unknown graph family %q (have path, ring, star, complete, grid, random, hard, heavychord)", g.Family)
	}
	if g.vertexCount() > maxVertices {
		return fmt.Errorf("graph too large: %d vertices (max %d)", g.vertexCount(), maxVertices)
	}
	switch g.Family {
	case "random":
		if g.M < g.N-1 {
			return fmt.Errorf("random family needs m >= n-1 (got n=%d m=%d)", g.N, g.M)
		}
		if g.M > maxEdges {
			return fmt.Errorf("graph too large: %d edges (max %d)", g.M, maxEdges)
		}
	case "complete":
		if g.N*(g.N-1)/2 > maxEdges {
			return fmt.Errorf("complete graph on %d vertices exceeds the %d-edge limit", g.N, maxEdges)
		}
		g.M = 0
	default:
		g.M = 0
	}
	switch g.Family {
	case "hard":
		if g.X == 0 {
			g.X = int64(g.N)
		}
		if g.X < 1 {
			return fmt.Errorf("hard family cable weight x must be >= 1")
		}
		g.Heavy, g.Weights, g.Seed = 0, WeightSpec{}, 0
		return nil
	case "heavychord":
		if g.Heavy == 0 {
			g.Heavy = int64(g.N)
		}
		if g.Heavy < 1 {
			return fmt.Errorf("heavychord chord weight must be >= 1")
		}
		g.X, g.Weights, g.Seed = 0, WeightSpec{}, 0
		return nil
	}
	g.X, g.Heavy = 0, 0
	if g.Family != "random" {
		g.Seed = 0
	}
	return g.Weights.normalize()
}

func (w *WeightSpec) normalize() error {
	switch w.Kind {
	case "":
		w.Kind = "unit"
	case "unit", "const", "uniform", "pow2":
	default:
		return fmt.Errorf("unknown weight kind %q (have unit, const, uniform, pow2)", w.Kind)
	}
	switch w.Kind {
	case "unit":
		w.W, w.Max, w.Exp, w.Seed = 0, 0, 0, 0
	case "const":
		if w.W < 1 {
			return fmt.Errorf("const weights need w >= 1")
		}
		w.Max, w.Exp, w.Seed = 0, 0, 0
	case "uniform":
		if w.Max < 1 {
			return fmt.Errorf("uniform weights need max >= 1")
		}
		w.W, w.Exp = 0, 0
	case "pow2":
		if w.Exp < 0 {
			return fmt.Errorf("pow2 weights need exp >= 0")
		}
		w.W, w.Max = 0, 0
	}
	return nil
}

// vertexCount is the vertex count the normalized spec will generate.
func (g *GraphSpec) vertexCount() int {
	if g.Family == "grid" {
		return g.Rows * g.Cols
	}
	return g.N
}

// weightFn resolves the normalized WeightSpec.
func (w WeightSpec) weightFn() graph.WeightFn {
	switch w.Kind {
	case "const":
		return graph.ConstWeights(w.W)
	case "uniform":
		return graph.UniformWeights(w.Max, w.Seed)
	case "pow2":
		return graph.PowerOfTwoWeights(w.Exp, w.Seed)
	}
	return graph.UnitWeights()
}

// Build generates the graph a normalized GraphSpec describes. Every
// family is a deterministic function of the spec, so two Builds of
// equal specs produce content-identical graphs.
func (g GraphSpec) Build() *graph.Graph {
	w := g.Weights.weightFn()
	switch g.Family {
	case "path":
		return graph.Path(g.N, w)
	case "ring":
		return graph.Ring(g.N, w)
	case "star":
		return graph.Star(g.N, w)
	case "complete":
		return graph.Complete(g.N, w)
	case "grid":
		return graph.Grid(g.Rows, g.Cols, w)
	case "random":
		return graph.RandomConnected(g.N, g.M, w, g.Seed)
	case "hard":
		return graph.HardConnectivity(g.N, g.X)
	case "heavychord":
		return graph.HeavyChordRing(g.N, g.Heavy)
	}
	panic(fmt.Sprintf("serve: Build on unnormalized GraphSpec with family %q", g.Family))
}

// SubstrateKey derives the content address of the substrate this spec
// runs on: SHA-256 over the canonical JSON of the normalized graph
// spec plus the shard count (the shard partition is a cached derived
// artifact, so substrates with different shard counts are distinct
// entries). Equal sweeps — whatever their trial counts, seeds, delay
// models or fault plans — share one substrate.
func (s *Spec) SubstrateKey() string {
	material, err := json.Marshal(struct {
		Graph  GraphSpec `json:"graph"`
		Shards int       `json:"shards"`
	}{s.Graph, s.Shards})
	if err != nil {
		panic(fmt.Sprintf("serve: marshalling substrate key material: %v", err))
	}
	sum := sha256.Sum256(material)
	return hex.EncodeToString(sum[:])
}
