package serve

import (
	"strings"
	"testing"
)

func testSubstrate(t *testing.T, n int, shards int) *Substrate {
	t.Helper()
	s := Spec{Experiment: "flood", Graph: GraphSpec{Family: "ring", N: n}, Shards: shards}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return buildSubstrate(s.SubstrateKey(), s.Graph, s.Shards)
}

func TestSubstrateDerivedArtifacts(t *testing.T) {
	s := testSubstrate(t, 8, 4)
	// A unit-weight ring: 𝓔 = n, 𝓥 = n-1.
	if s.TotalWeight() != 8 || s.MSTWeight() != 7 {
		t.Fatalf("ring weights: 𝓔=%d 𝓥=%d, want 8/7", s.TotalWeight(), s.MSTWeight())
	}
	if len(s.ShardAssignment()) != 8 {
		t.Fatalf("shard assignment has %d entries, want 8", len(s.ShardAssignment()))
	}
	if testSubstrate(t, 8, 0).ShardAssignment() != nil {
		t.Fatal("serial substrate should have no shard assignment")
	}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(1 << 20)
	builds := 0
	build := func() *Substrate { builds++; return testSubstrate(t, 8, 0) }
	a, hit := c.GetOrBuild("k1", build)
	if hit || builds != 1 {
		t.Fatalf("first get: hit=%v builds=%d, want miss/1", hit, builds)
	}
	b, hit := c.GetOrBuild("k1", build)
	if !hit || builds != 1 || a != b {
		t.Fatalf("second get: hit=%v builds=%d same=%v, want hit/1/true", hit, builds, a == b)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// LRU eviction: filling past the byte budget drops the least recently
// used entry, and a Get refreshes recency.
func TestCacheEviction(t *testing.T) {
	one := testSubstrate(t, 8, 0)
	c := NewCache(one.Bytes()*2 + one.Bytes()/2) // room for two entries
	get := func(key string) (*Substrate, bool) {
		return c.GetOrBuild(key, func() *Substrate { return testSubstrate(t, 8, 0) })
	}
	get("a")
	get("b")
	get("a") // refresh a: LRU order is now b, a
	get("c") // evicts b
	_, hitA := get("a")
	_, hitB := get("b")
	if !hitA {
		t.Error("a was evicted despite being recently used")
	}
	if hitB {
		t.Error("b survived eviction")
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Errorf("stats = %+v, want at least one eviction", st)
	}
}

// An entry larger than the whole budget still builds and serves (the
// newest entry is never evicted).
func TestCacheOversizedEntry(t *testing.T) {
	c := NewCache(1) // absurdly small
	s, hit := c.GetOrBuild("big", func() *Substrate { return testSubstrate(t, 8, 0) })
	if s == nil || hit {
		t.Fatalf("oversized build: sub=%v hit=%v", s, hit)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v, want the oversized entry retained", st)
	}
}

// Mutating a cached substrate must panic at the next hit: substrates
// are shared across jobs, and a silent mutation would make results
// stop being a function of the spec.
func TestCacheVerifyPanicsOnMutation(t *testing.T) {
	c := NewCache(1 << 20)
	s, _ := c.GetOrBuild("k", func() *Substrate { return testSubstrate(t, 8, 4) })
	s.ShardAssignment()[3] = 0 // the forbidden write
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cache hit on a mutated substrate did not panic")
		}
		if !strings.Contains(r.(string), "mutated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.GetOrBuild("k", func() *Substrate { t.Fatal("must not rebuild"); return nil })
}
