package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// This file is the service's durability layer: an append-only NDJSON
// job journal. Every job state transition is one fsync'd record, so a
// crash — kill -9 included — loses at most the record being written,
// and that only as a torn final line the next startup truncates away.
// Because a result is a pure function of its spec (the service's core
// contract), the journal does not need to checkpoint sweep progress:
// replaying an incomplete job's spec after a restart reproduces its
// result byte for byte. Records are byte-deterministic apart from
// their timestamps, which flow through nowUnixNano — the package's one
// audited wall-clock choke point.
//
// Record stream, one JSON object per line:
//
//	{"v":1,"seq":N,"op":"...","job":"job-000001","ts":...,...}
//
// seq starts at 1 and increments by exactly 1; op is one of submitted
// (carries the normalized spec), started, finished (carries the result
// JSON, escaped), failed (carries a typed reason + detail), rejected
// (queue-full bounce, so a crash between the submitted record and the
// 429 response cannot resurrect a job the client was told to retry).
//
// Decoding distinguishes two corruption classes: a torn tail — the
// final line unparseable or missing its newline, the signature of a
// crash mid-append — is recoverable (the tail is dropped and the file
// truncated to the last good record); anything earlier, and any
// semantically invalid record anywhere (out-of-order seq, unknown op,
// an illegal state transition), is mid-file corruption and fails
// startup with a typed *JournalCorruptError. See DESIGN.md,
// "Durability & recovery".

// Journal ops.
const (
	opSubmitted = "submitted"
	opStarted   = "started"
	opFinished  = "finished"
	opFailed    = "failed"
	opRejected  = "rejected"
)

// Typed failure reasons, journaled with failed records and surfaced in
// job status as the reason field.
const (
	// ReasonError: the sweep itself returned an error (bad trial, event
	// limit, encode failure).
	ReasonError = "error"
	// ReasonDeadline: the job's deadline expired mid-sweep.
	ReasonDeadline = "deadline"
	// ReasonPanic: the sweep panicked (a protocol bug, a mutated
	// substrate); the scheduler survived and journaled the panic value.
	ReasonPanic = "panic"
	// ReasonShutdown: a graceful drain cut the job off before it
	// finished.
	ReasonShutdown = "shutdown"
	// ReasonKilled: a second termination signal killed the in-flight
	// job during drain; journaled so the next start reports it instead
	// of re-running blind.
	ReasonKilled = "killed"
)

// journalRecord is the wire form of one journal line. Field order is
// fixed by the struct, so records are byte-deterministic given their
// timestamps.
type journalRecord struct {
	V      int    `json:"v"`
	Seq    uint64 `json:"seq"`
	Op     string `json:"op"`
	Job    string `json:"job"`
	TS     int64  `json:"ts"`
	Spec   *Spec  `json:"spec,omitempty"`   // submitted
	Reason string `json:"reason,omitempty"` // failed: typed reason
	Detail string `json:"detail,omitempty"` // failed/rejected: human detail
	Result string `json:"result,omitempty"` // finished: result JSON, escaped
}

// JournalCorruptError reports unrecoverable journal damage: a record
// before the final line that does not parse, or a record anywhere that
// violates the journal's sequencing or state machine. Startup fails on
// it — running with a journal whose history cannot be trusted would
// silently break the recovery contract.
type JournalCorruptError struct {
	Line   int    // 1-based line number of the offending record
	Reason string // what was wrong with it
}

func (e *JournalCorruptError) Error() string {
	return fmt.Sprintf("serve: journal corrupt at line %d: %s", e.Line, e.Reason)
}

// RecoveredJob is one job reconstructed from the journal, in original
// submission order.
type RecoveredJob struct {
	ID   string
	Spec Spec
	// Done/Failed classify terminal jobs; a job with neither is
	// incomplete (journaled submitted or started, never finished) and
	// must be re-enqueued.
	Done   bool
	Failed bool
	Reason string // typed failure reason (failed jobs)
	Detail string // failure detail (failed jobs)
	Result []byte // persisted result bytes (done jobs)
	// Restored lifecycle timestamps (unix nanos; zero if the state was
	// never reached).
	SubmittedAt, StartedAt, FinishedAt int64
}

// Recovery is the decoded journal: every non-rejected job in
// submission order, plus what the appender needs to continue the
// stream.
type Recovery struct {
	Jobs     []RecoveredJob
	TornTail bool   // a torn final line was dropped (and truncated)
	NextSeq  uint64 // highest good seq; appends continue from NextSeq+1
	MaxID    int    // highest numeric job ID seen; ID allocation resumes after it
}

// Incomplete counts the jobs that recovery must re-enqueue.
func (r *Recovery) Incomplete() int {
	n := 0
	for _, j := range r.Jobs {
		if !j.Done && !j.Failed {
			n++
		}
	}
	return n
}

// jobTrack is the decoder's per-job state machine.
type jobTrack struct {
	rec      RecoveredJob
	started  bool
	terminal bool
	rejected bool
}

// parseJobID validates the canonical job ID form ("job-" + at least
// six digits) and returns its numeric part.
func parseJobID(id string) (int, error) {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok || len(num) < 6 {
		return 0, fmt.Errorf("malformed job id %q", id)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("malformed job id %q", id)
	}
	return n, nil
}

// decodeJournal parses and validates journal bytes. It returns the
// recovery state and the byte offset after the last good record —
// everything past it is a torn tail the caller should truncate. The
// decoder never panics on any input (FuzzJournalDecode holds it to
// that) and classifies all damage as either a recoverable torn tail or
// a typed *JournalCorruptError.
func decodeJournal(data []byte) (*Recovery, int64, error) {
	rec := &Recovery{}
	tracks := make(map[string]*jobTrack)
	var order []string
	var good int64
	line := 0

	for len(data) > 0 {
		line++
		nl := bytes.IndexByte(data, '\n')
		last := nl < 0
		var raw []byte
		if last {
			raw = data
			data = nil
		} else {
			raw = data[:nl]
			data = data[nl+1:]
			if len(data) == 0 {
				last = true
			}
		}

		var r journalRecord
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil || dec.More() {
			if last {
				rec.TornTail = true
				break
			}
			return nil, 0, &JournalCorruptError{Line: line, Reason: "record is not valid JSON"}
		}
		if nl < 0 {
			// Parseable but missing its newline: the append was cut
			// before the terminator, so the fsync never covered it.
			// Treat as torn — the re-run reproduces whatever it said.
			rec.TornTail = true
			break
		}
		if err := checkSeq(rec.NextSeq, r.Seq); err != nil {
			return nil, 0, &JournalCorruptError{Line: line, Reason: err.Error()}
		}
		if err := applyRecord(tracks, &order, &r); err != nil {
			return nil, 0, &JournalCorruptError{Line: line, Reason: err.Error()}
		}
		rec.NextSeq = r.Seq
		good += int64(len(raw)) + 1
	}

	for _, id := range order {
		// Every journaled ID — rejected bounces included — advances
		// MaxID: allocation must never reuse an ID the journal has seen,
		// or the reuse would decode as a duplicate submitted record.
		if n, err := parseJobID(id); err == nil && n > rec.MaxID {
			rec.MaxID = n
		}
		t := tracks[id]
		if t.rejected {
			continue // bounced admissions are history, not jobs
		}
		rec.Jobs = append(rec.Jobs, t.rec)
	}
	return rec, good, nil
}

// applyRecord validates one record against the stream and per-job
// state machines and folds it into the tracks.
func applyRecord(tracks map[string]*jobTrack, order *[]string, r *journalRecord) error {
	if r.V != 1 {
		return fmt.Errorf("unknown journal version %d", r.V)
	}
	if _, err := parseJobID(r.Job); err != nil {
		return err
	}
	t := tracks[r.Job]

	switch r.Op {
	case opSubmitted:
		if t != nil {
			return fmt.Errorf("duplicate submitted record for %s", r.Job)
		}
		if r.Spec == nil {
			return fmt.Errorf("submitted record for %s carries no spec", r.Job)
		}
		spec := *r.Spec
		if err := spec.Normalize(); err != nil {
			return fmt.Errorf("submitted record for %s carries an invalid spec: %v", r.Job, err)
		}
		t = &jobTrack{rec: RecoveredJob{ID: r.Job, Spec: spec, SubmittedAt: r.TS}}
		tracks[r.Job] = t
		*order = append(*order, r.Job)
	case opRejected:
		if t == nil || t.terminal || t.started {
			return fmt.Errorf("rejected record for %s outside the submitted state", r.Job)
		}
		t.terminal, t.rejected = true, true
	case opStarted:
		if t == nil || t.terminal {
			return fmt.Errorf("started record for %s outside an active state", r.Job)
		}
		t.started = true
		t.rec.StartedAt = r.TS
	case opFinished:
		if t == nil || t.terminal || !t.started {
			return fmt.Errorf("finished record for %s outside the started state", r.Job)
		}
		if r.Result == "" || !json.Valid([]byte(r.Result)) {
			return fmt.Errorf("finished record for %s carries no valid result", r.Job)
		}
		t.terminal, t.rec.Done = true, true
		t.rec.Result = []byte(r.Result)
		t.rec.FinishedAt = r.TS
	case opFailed:
		if t == nil || t.terminal || !t.started {
			return fmt.Errorf("failed record for %s outside the started state", r.Job)
		}
		switch r.Reason {
		case ReasonError, ReasonDeadline, ReasonPanic, ReasonShutdown, ReasonKilled:
		default:
			return fmt.Errorf("failed record for %s carries unknown reason %q", r.Job, r.Reason)
		}
		t.terminal, t.rec.Failed = true, true
		t.rec.Reason, t.rec.Detail = r.Reason, r.Detail
		t.rec.FinishedAt = r.TS
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	return nil
}

// checkSeq enforces the dense, strictly increasing sequence numbers
// that make replay order unambiguous.
func checkSeq(prev, got uint64) error {
	if got != prev+1 {
		return fmt.Errorf("out-of-order seq %d (want %d)", got, prev+1)
	}
	return nil
}

// Journal is the append side: one fsync'd record per state transition,
// safe for concurrent use (handlers journal admissions while the
// scheduler journals runs). All methods are nil-receiver-safe no-ops,
// so a server without -journal pays one branch per transition.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
}

// OpenJournal opens (creating if absent) and recovers the journal at
// path: the existing stream is decoded and validated, a torn tail is
// truncated away, and the returned Journal appends after the last good
// record. Mid-file corruption returns the decoder's typed error and no
// Journal — the caller must not run against a history it cannot trust.
func OpenJournal(path string) (*Journal, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		//costsense:err-ok closing a read-only-so-far handle on the error path; the read error is the one reported
		f.Close()
		return nil, nil, fmt.Errorf("serve: reading journal %s: %w", path, err)
	}
	rec, good, err := decodeJournal(data)
	if err != nil {
		//costsense:err-ok nothing was written; the corruption error is the one reported
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if good < int64(len(data)) {
		// Drop the torn tail before appending, or the next record would
		// concatenate onto the partial line and turn recoverable damage
		// into mid-file corruption.
		if err := f.Truncate(good); err != nil {
			//costsense:err-ok truncate already failed; its error is the one reported
			f.Close()
			return nil, nil, fmt.Errorf("serve: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		//costsense:err-ok the seek error is the one reported
		f.Close()
		return nil, nil, fmt.Errorf("serve: seeking journal: %w", err)
	}
	return &Journal{f: f, path: path, seq: rec.NextSeq}, rec, nil
}

// Path reports where the journal lives ("" for a nil journal).
func (jl *Journal) Path() string {
	if jl == nil {
		return ""
	}
	return jl.path
}

// append stamps, serializes, writes and fsyncs one record. The fsync
// is the durability point: once append returns nil the transition
// survives kill -9. Appends happen per job state transition — a
// handful per job — never on the simulator hot path.
func (jl *Journal) append(r journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.seq++
	r.V, r.Seq, r.TS = 1, jl.seq, nowUnixNano()
	b, err := json.Marshal(r)
	if err != nil {
		jl.seq--
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := jl.f.Write(b); err != nil {
		return fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	return nil
}

// Close releases the journal file. Appends after Close fail.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}
