package serve

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strconv"
)

// This file is the service's metrics exposition: a hand-rolled
// Prometheus text-format endpoint (no dependencies) plus the slog
// plumbing. There is exactly one registry — the Server itself: every
// exported series is derived at scrape time from the job table, the
// queue and the substrate cache, so the two mounts (the API mux's
// /metrics and the debug mux's /debug/metrics) can never disagree, and
// the job hot path carries no extra counters. Scrapes are O(jobs),
// which a single-scheduler service keeps small.
//
// Wall-clock reads (scrape-time throughput of the in-flight job, log
// record timestamps) all go through nowUnixNano, the package's one
// audited clock choke point, so result bytes stay deterministic.

// histo is one scrape's histogram accumulator, rebuilt per render from
// job lifecycle timestamps — histograms here are cumulative state, not
// streamed observations, so nothing needs to be concurrency-safe.
type histo struct {
	bounds []float64 // upper bounds (le), ascending; +Inf is implicit
	counts []int64   // len(bounds)+1, last bucket is +Inf
	sum    float64
	n      int64
}

func newHisto(bounds []float64) *histo {
	return &histo{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histo) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Histogram bucket layouts: latencies in seconds, throughput in
// trials per second.
var (
	secondsBounds    = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}
	throughputBounds = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6}
)

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeHeader(b *bytes.Buffer, name, help, typ string) {
	b.WriteString("# HELP " + name + " " + help + "\n")
	b.WriteString("# TYPE " + name + " " + typ + "\n")
}

func writeScalar(b *bytes.Buffer, name, help, typ string, v int64) {
	writeHeader(b, name, help, typ)
	b.WriteString(name + " " + strconv.FormatInt(v, 10) + "\n")
}

func writeLabeled(b *bytes.Buffer, name, label, value string, v int64) {
	b.WriteString(name + "{" + label + "=\"" + value + "\"} " + strconv.FormatInt(v, 10) + "\n")
}

func writeHisto(b *bytes.Buffer, name, help string, h *histo) {
	writeHeader(b, name, help, "histogram")
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		b.WriteString(name + "_bucket{le=\"" + fmtFloat(bound) + "\"} " + strconv.FormatInt(cum, 10) + "\n")
	}
	cum += h.counts[len(h.bounds)]
	b.WriteString(name + "_bucket{le=\"+Inf\"} " + strconv.FormatInt(cum, 10) + "\n")
	b.WriteString(name + "_sum " + fmtFloat(h.sum) + "\n")
	b.WriteString(name + "_count " + strconv.FormatInt(h.n, 10) + "\n")
}

// jobSnap is the scrape-relevant view of one job, captured under mu so
// a render works on a consistent table while handlers keep mutating.
type jobSnap struct {
	state     int32
	submitted int64
	started   int64
	finished  int64
	trials    int64
}

// snapshotJobs captures every job's lifecycle fields in admission
// order, plus the id and progress of the running job, if any (the
// serial scheduler runs at most one).
func (s *Server) snapshotJobs() (snaps []jobSnap, runningID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snaps = make([]jobSnap, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		st := j.state.Load()
		snaps = append(snaps, jobSnap{
			state:     st,
			submitted: j.submittedAt.Load(),
			started:   j.startedAt.Load(),
			finished:  j.finishedAt.Load(),
			trials:    j.trialsDone.Load(),
		})
		if st == jobRunning {
			runningID = id
		}
	}
	return snaps, runningID
}

// renderMetrics writes the full exposition for the current state; now
// is a nowUnixNano reading used only for the in-flight job's gauges.
func (s *Server) renderMetrics(b *bytes.Buffer, now int64) {
	snaps, _ := s.snapshotJobs()

	var byState [4]int64
	trialsTotal := int64(0)
	queueWait := newHisto(secondsBounds)
	duration := newHisto(secondsBounds)
	throughput := newHisto(throughputBounds)
	inflightRate := 0.0
	for _, j := range snaps {
		byState[j.state]++
		trialsTotal += j.trials
		if j.started > 0 {
			queueWait.observe(float64(j.started-j.submitted) / 1e9)
		}
		if j.finished > 0 && j.started > 0 {
			d := float64(j.finished-j.started) / 1e9
			duration.observe(d)
			if d > 0 {
				throughput.observe(float64(j.trials) / d)
			}
		}
		if j.state == jobRunning && now > j.started && j.started > 0 {
			inflightRate = float64(j.trials) / (float64(now-j.started) / 1e9)
		}
	}

	writeHeader(b, "costsense_jobs", "Jobs by lifecycle state.", "gauge")
	writeLabeled(b, "costsense_jobs", "state", "queued", byState[jobQueued])
	writeLabeled(b, "costsense_jobs", "state", "running", byState[jobRunning])
	writeLabeled(b, "costsense_jobs", "state", "done", byState[jobDone])
	writeLabeled(b, "costsense_jobs", "state", "failed", byState[jobFailed])
	writeScalar(b, "costsense_jobs_submitted_total", "Jobs admitted onto the queue.", "counter", int64(len(snaps)))
	writeScalar(b, "costsense_jobs_rejected_total", "Submissions rejected (queue full or draining).", "counter", s.rejected.Load())
	writeScalar(b, "costsense_jobs_recovered_total", "Journaled incomplete jobs re-enqueued at startup.", "counter", s.recovered.Load())
	writeScalar(b, "costsense_jobs_expired_total", "Jobs failed by their deadline (reason=deadline).", "counter", s.expired.Load())
	writeScalar(b, "costsense_jobs_panicked_total", "Jobs failed by a panicking sweep (reason=panic).", "counter", s.panicked.Load())
	writeScalar(b, "costsense_journal_errors_total", "Journal append failures (durability degraded).", "counter", s.journalErrs.Load())
	writeScalar(b, "costsense_trials_completed_total", "Trials completed across all jobs.", "counter", trialsTotal)
	writeScalar(b, "costsense_queue_depth", "Admitted-but-unstarted jobs.", "gauge", int64(s.queue.Len()))
	writeScalar(b, "costsense_queue_capacity", "Queue bound; submissions beyond it get 429.", "gauge", int64(s.queue.Cap()))
	writeHisto(b, "costsense_job_queue_wait_seconds", "Time jobs spent queued before starting.", queueWait)
	writeHisto(b, "costsense_job_duration_seconds", "Time jobs spent running (start to finish).", duration)
	writeHisto(b, "costsense_job_trials_per_second", "Per-job trial throughput of finished jobs.", throughput)
	writeHeader(b, "costsense_inflight_trials_per_second", "Trial throughput of the running job, 0 when idle.", "gauge")
	b.WriteString("costsense_inflight_trials_per_second " + fmtFloat(inflightRate) + "\n")

	cs := s.cache.Stats()
	writeScalar(b, "costsense_cache_hits_total", "Substrate cache hits.", "counter", cs.Hits)
	writeScalar(b, "costsense_cache_misses_total", "Substrate cache misses (substrate built).", "counter", cs.Misses)
	writeScalar(b, "costsense_cache_evictions_total", "Substrates evicted by the byte budget.", "counter", cs.Evictions)
	writeScalar(b, "costsense_cache_entries", "Substrates currently cached.", "gauge", int64(cs.Entries))
	writeScalar(b, "costsense_cache_bytes", "Estimated bytes held by cached substrates.", "gauge", cs.Bytes)
	writeScalar(b, "costsense_cache_max_bytes", "Substrate cache byte budget.", "gauge", cs.MaxBytes)
}

// MetricsHandler returns the Prometheus text-format exposition handler
// backed by this server's state. Mount it on as many muxes as needed —
// every mount scrapes the same registry (the server itself).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b bytes.Buffer
		s.renderMetrics(&b, nowUnixNano())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//costsense:err-ok a short write means the scraper hung up; the next scrape re-renders from live state
		w.Write(b.Bytes())
	})
}

// NewLogger builds the service's structured logger: slog text records
// on w with the handler's own wall-clock timestamp stripped. Every
// record instead carries a ts attribute the server draws from
// nowUnixNano — the audited clock choke point — so the package has
// exactly one wall-clock source and log output never feeds result
// bytes.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{} // replaced by the audited ts attribute
			}
			return a
		},
	}))
}

// logEvent emits one structured record stamped through the audited
// clock choke point.
func (s *Server) logEvent(msg string, args ...any) {
	s.log.Info(msg, append([]any{slog.String("ts", stampRFC3339(nowUnixNano()))}, args...)...)
}

// statusWriter decorates a ResponseWriter to capture the status code
// and body size for request logs. It forwards Flush so the NDJSON
// stream handler's Flusher assertion still sees one through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// logRequests wraps the API handler with structured request logging:
// one record per request with method, path, status, bytes and wall
// duration, all timed through the audited clock choke point.
func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := nowUnixNano()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.logEvent("http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Float64("dur_ms", float64(nowUnixNano()-start)/1e6),
		)
	})
}
