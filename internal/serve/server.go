package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"costsense/internal/harness"
)

// Job states, reported in status JSON.
const (
	jobQueued int32 = iota
	jobRunning
	jobDone
	jobFailed
)

func stateName(s int32) string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	}
	return "failed"
}

// Job is one admitted experiment submission. Its mutable fields are
// written by the scheduler goroutine and read by HTTP handlers, hence
// the atomics; result and errMsg are published by closing finished.
type Job struct {
	id   string
	spec Spec

	state      atomic.Int32
	cached     atomic.Bool // substrate came from the cache (set at start)
	trialsDone atomic.Int64

	// Lifecycle timestamps (wall-clock unix nanos), status-only: they
	// describe scheduling history, never experiment output, so result
	// bytes stay deterministic. Atomics because the scheduler goroutine
	// writes while handlers read.
	submittedAt atomic.Int64
	startedAt   atomic.Int64
	finishedAt  atomic.Int64

	finished chan struct{} // closed after result/errMsg are set
	result   []byte        // final Result JSON (nil if failed)
	errMsg   string
}

// nowUnixNano reads the wall clock for job lifecycle timestamps — the
// one sanctioned wall-clock source in this package.
func nowUnixNano() int64 {
	//costsense:nondet-ok job lifecycle timestamps are status telemetry; they never reach result bytes
	return time.Now().UnixNano()
}

func newJob(id string, spec Spec) *Job {
	j := &Job{id: id, spec: spec, finished: make(chan struct{})}
	j.submittedAt.Store(nowUnixNano())
	return j
}

// Job implements harness.Sink to count finished trials for status and
// streaming. Callbacks fire from worker goroutines; atomics only.
func (j *Job) TrialStart(int) {}

// TrialDone records progress; done is the harness's monotone finished
// count.
func (j *Job) TrialDone(_, done, _ int) { j.trialsDone.Store(int64(done)) }

// JobStatus is the wire form of a job's current state. SubstrateCached
// lives here — in the *status*, never in the result — because whether
// the substrate was a cache hit is scheduling history, not experiment
// output: results must stay byte-identical across submissions.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Experiment  string `json:"experiment"`
	TrialsDone  int64  `json:"trials_done"`
	TrialsTotal int    `json:"trials_total"`
	// SubstrateCached reports whether the job's substrate came from
	// the cache; present once the job has started.
	SubstrateCached *bool  `json:"substrate_cached,omitempty"`
	Error           string `json:"error,omitempty"`
	// Lifecycle timestamps, RFC 3339 with nanoseconds; started_at and
	// finished_at appear once the job reaches that state. Status-only
	// scheduling history — the result JSON carries none of these.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// stampRFC3339 renders a unix-nano timestamp, or "" for zero (state
// not reached yet).
func stampRFC3339(ns int64) string {
	if ns == 0 {
		return ""
	}
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

func (j *Job) status() JobStatus {
	st := j.state.Load()
	s := JobStatus{
		ID:          j.id,
		State:       stateName(st),
		Experiment:  j.spec.Experiment,
		TrialsDone:  j.trialsDone.Load(),
		TrialsTotal: j.spec.Trials,
	}
	if st != jobQueued {
		cached := j.cached.Load()
		s.SubstrateCached = &cached
	}
	if st == jobFailed {
		s.Error = j.errMsg
	}
	s.SubmittedAt = stampRFC3339(j.submittedAt.Load())
	s.StartedAt = stampRFC3339(j.startedAt.Load())
	s.FinishedAt = stampRFC3339(j.finishedAt.Load())
	return s
}

func (j *Job) complete(result []byte) {
	j.result = result
	j.finishedAt.Store(nowUnixNano())
	j.state.Store(jobDone)
	close(j.finished)
}

func (j *Job) fail(msg string) {
	j.errMsg = msg
	j.finishedAt.Store(nowUnixNano())
	j.state.Store(jobFailed)
	close(j.finished)
}

// Config tunes a Server.
type Config struct {
	// QueueCap bounds the number of admitted-but-unstarted jobs;
	// submissions beyond it get 429 + Retry-After (default 16).
	QueueCap int
	// CacheBytes bounds the substrate cache (default 256 MiB).
	CacheBytes int64
	// StreamInterval is the progress-stream emission period
	// (default 250ms).
	StreamInterval time.Duration
	// DebugHandler, when non-nil, is mounted at /debug/ (the cmd layer
	// passes the expvar+pprof mux).
	DebugHandler http.Handler
	// Logger receives structured request and job lifecycle records
	// (default: discard). Build one with NewLogger so every record is
	// timestamped through the audited clock choke point.
	Logger *slog.Logger
}

// Server is the costsense experiment service: it admits specs onto a
// bounded job queue (backpressure via 429), runs them one at a time on
// the harness worker pool with pooled simulator state, shares
// substrates through the content-addressed cache, and serves status,
// NDJSON progress streams, and byte-deterministic results.
type Server struct {
	cfg      Config
	cache    *Cache
	queue    *harness.Queue
	log      *slog.Logger
	rejected atomic.Int64 // submissions turned away (429/503), for /metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for listing
	nextID int

	runCtx    context.Context // cancelled after drain; stops sweeps and streams
	runCancel context.CancelFunc
	drained   chan struct{} // closed when the scheduler loop exits
	started   atomic.Bool
}

// New builds a Server. Call Start before serving its Handler.
func New(cfg Config) *Server {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 16
	}
	if cfg.StreamInterval <= 0 {
		cfg.StreamInterval = 250 * time.Millisecond
	}
	log := cfg.Logger
	if log == nil {
		log = NewLogger(io.Discard)
	}
	//costsense:ctx-ok lifecycle root: the server outlives any one request; Drain cancels runCtx
	runCtx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes),
		queue:     harness.NewQueue(cfg.QueueCap),
		log:       log,
		jobs:      make(map[string]*Job),
		runCtx:    runCtx,
		runCancel: cancel,
		drained:   make(chan struct{}),
	}
}

// Cache exposes the substrate cache (for stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Start launches the scheduler: a single goroutine draining the job
// queue in admission order. Idempotent.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	go func() {
		defer close(s.drained)
		s.queue.Run(s.runCtx)
	}()
}

// Drain gracefully shuts the job pipeline down: stop admitting, let
// already-admitted jobs finish within ctx's deadline, then cancel
// whatever remains (an in-flight sweep stops between trials) and fail
// unstarted jobs. After Drain the server only serves reads. Returns
// ctx.Err() if the deadline cut the drain short, nil if it was clean.
func (s *Server) Drain(ctx context.Context) error {
	s.queue.Close()
	if !s.started.Swap(true) {
		// No scheduler ever started, so nothing will drain the queue or
		// close drained; do both here. The Swap also keeps a late Start
		// from launching one now.
		s.runCancel()
		close(s.drained)
	}
	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.runCancel()
	<-s.drained
	s.failUnfinished()
	return err
}

// failUnfinished marks every job that will never run (queued at
// shutdown) or was cut off mid-sweep as failed, so streams and polls
// terminate.
func (s *Server) failUnfinished() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		select {
		case <-j.finished:
		default:
			j.fail("server shut down before the job finished")
		}
	}
}

// runJob executes one admitted job: resolve the substrate through the
// cache, run the sweep, publish the result bytes.
func (s *Server) runJob(ctx context.Context, j *Job) {
	defer func() {
		if r := recover(); r != nil {
			// A panicking job (a protocol bug, a mutated substrate)
			// must not take down the scheduler loop with it.
			j.fail(fmt.Sprintf("job panicked: %v", r))
			s.logJobDone(j)
		}
	}()
	key := j.spec.SubstrateKey()
	sub, hit := s.cache.GetOrBuild(key, func() *Substrate {
		return buildSubstrate(key, j.spec.Graph, j.spec.Shards)
	})
	j.cached.Store(hit)
	j.startedAt.Store(nowUnixNano())
	j.state.Store(jobRunning)
	s.logEvent("job started",
		slog.String("job", j.id), slog.String("experiment", j.spec.Experiment),
		slog.Int("trials", j.spec.Trials), slog.Bool("substrate_cached", hit))
	res, err := runSpec(ctx, j.spec, sub, j)
	if err != nil {
		j.fail(err.Error())
		s.logJobDone(j)
		return
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		j.fail(fmt.Sprintf("encoding result: %v", err))
		s.logJobDone(j)
		return
	}
	j.complete(append(b, '\n'))
	s.logJobDone(j)
}

// logJobDone emits the terminal job record: state, trial count, run
// duration and throughput, all from the job's own lifecycle
// timestamps.
func (s *Server) logJobDone(j *Job) {
	started, finished := j.startedAt.Load(), j.finishedAt.Load()
	trials := j.trialsDone.Load()
	durMS := float64(finished-started) / 1e6
	rate := 0.0
	if finished > started {
		rate = float64(trials) / (float64(finished-started) / 1e9)
	}
	args := []any{
		slog.String("job", j.id), slog.String("state", stateName(j.state.Load())),
		slog.Int64("trials", trials), slog.Float64("dur_ms", durMS),
		slog.Float64("trials_per_sec", rate),
	}
	if j.state.Load() == jobFailed {
		args = append(args, slog.String("error", j.errMsg))
	}
	s.logEvent("job finished", args...)
}

// Handler returns the server's HTTP API:
//
//	GET  /healthz              liveness: queue depth, running job, cache size
//	GET  /metrics              Prometheus text-format exposition
//	POST /api/v1/jobs          submit a Spec; 202, or 429 when the queue is full
//	GET  /api/v1/jobs          all job statuses in creation order
//	GET  /api/v1/jobs/{id}     one job's status
//	GET  /api/v1/jobs/{id}/result   the result JSON (once done)
//	GET  /api/v1/jobs/{id}/stream   NDJSON status stream until terminal
//	GET  /api/v1/cache         substrate cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/cache", s.handleCache)
	if s.cfg.DebugHandler != nil {
		mux.Handle("/debug/", s.cfg.DebugHandler)
	}
	return s.logRequests(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//costsense:err-ok an encode error here means the client hung up mid-response; there is no one left to tell
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, runningID := s.snapshotJobs()
	cs := s.cache.Stats()
	resp := map[string]any{
		"status":        "ok",
		"queue_depth":   s.queue.Len(),
		"queue_cap":     s.queue.Cap(),
		"cache_entries": cs.Entries,
		"cache_bytes":   cs.Bytes,
	}
	if runningID != "" {
		resp["running_job"] = runningID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}

	// ID allocation, admission and registration are atomic under mu, so
	// job IDs are dense, in admission order, and never burned on a
	// rejected submission. The response is written after Unlock: an HTTP
	// write can stall on a slow client, and stalling inside the critical
	// section would freeze every status poll and submission with it.
	s.mu.Lock()
	id := fmt.Sprintf("job-%06d", s.nextID+1)
	j := newJob(id, spec)
	//costsense:lock-ok TrySubmit never parks (select with default under its own mutex), and admission must be atomic with ID allocation
	err := s.queue.TrySubmit(func(ctx context.Context) { s.runJob(ctx, j) })
	if err == nil {
		s.nextID++
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	s.mu.Unlock()

	if err != nil {
		s.rejected.Add(1)
		s.logEvent("job rejected", slog.String("reason", err.Error()))
		switch {
		case errors.Is(err, harness.ErrQueueFull):
			depth, capacity := s.queue.Len(), s.queue.Cap()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(depth, capacity)))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":       "job queue full; retry later",
				"queue_depth": depth,
				"queue_cap":   capacity,
			})
		case errors.Is(err, harness.ErrQueueClosed):
			writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.logEvent("job admitted",
		slog.String("job", id), slog.String("experiment", spec.Experiment),
		slog.Int("trials", spec.Trials), slog.Int("queue_depth", s.queue.Len()))
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         id,
		"status_url": "/api/v1/jobs/" + id,
		"result_url": "/api/v1/jobs/" + id + "/result",
		"stream_url": "/api/v1/jobs/" + id + "/stream",
	})
}

// retryAfterSeconds scales the 429 backoff hint with queue depth: a
// nearly-drained queue invites a quick retry, a full one pushes
// clients back harder (1s empty .. 5s at capacity).
func retryAfterSeconds(depth, capacity int) int {
	if capacity <= 0 || depth < 0 {
		return 1
	}
	if depth > capacity {
		depth = capacity
	}
	return 1 + (4*depth)/capacity
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	select {
	case <-j.finished:
	default:
		writeError(w, http.StatusConflict, "job is %s; result not ready", stateName(j.state.Load()))
		return
	}
	if j.state.Load() == jobFailed {
		writeError(w, http.StatusInternalServerError, "job failed: %s", j.errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//costsense:err-ok a short write means the client hung up; the result stays cached for the next GET
	w.Write(j.result)
}

// handleStream emits the job's status as NDJSON — one line per
// StreamInterval tick plus a final line at the terminal state — until
// the job finishes, the client goes away, or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	//costsense:nondet-ok stream cadence is wall-clock by design; emitted lines carry job status, never result bytes
	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	for {
		if err := enc.Encode(j.status()); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-j.finished:
			//costsense:err-ok terminal line is best-effort; the stream closes right after either way
			enc.Encode(j.status())
			if fl != nil {
				fl.Flush()
			}
			return
		case <-ticker.C:
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			// Shutdown: failUnfinished will close j.finished; emit the
			// terminal line and go.
			<-j.finished
			//costsense:err-ok terminal line is best-effort; the stream closes right after either way
			enc.Encode(j.status())
			if fl != nil {
				fl.Flush()
			}
			return
		}
	}
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}
