package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"costsense/internal/harness"
)

// Job states, reported in status JSON.
const (
	jobQueued int32 = iota
	jobRunning
	jobDone
	jobFailed
)

func stateName(s int32) string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	}
	return "failed"
}

// errJobDeadline is the cancellation cause installed by a job's
// deadline context, so runJob can tell an expired deadline from a
// drain cutting the same sweep off.
var errJobDeadline = errors.New("serve: job deadline exceeded")

// Job is one admitted experiment submission. Its mutable fields are
// written by the scheduler goroutine and read by HTTP handlers, hence
// the atomics; result, errMsg and failReason are published by the
// atomic state store and by closing finished.
type Job struct {
	id        string
	spec      Spec
	recovered bool // re-admitted from the journal at startup (set before publication)

	state      atomic.Int32
	cached     atomic.Bool // substrate came from the cache (set at start)
	trialsDone atomic.Int64

	// Lifecycle timestamps (wall-clock unix nanos), status-only: they
	// describe scheduling history, never experiment output, so result
	// bytes stay deterministic. Atomics because the scheduler goroutine
	// writes while handlers read.
	submittedAt atomic.Int64
	startedAt   atomic.Int64
	finishedAt  atomic.Int64

	finished   chan struct{} // closed after result/errMsg/failReason are set
	result     []byte        // final Result JSON (nil if failed)
	errMsg     string
	failReason string // typed reason (ReasonError, ReasonDeadline, ...)

	// The progress log: every status line ever emitted for this job,
	// in order. Streams serve it from any offset (?from=), which is
	// what lets a client resume after a disconnect — or a server
	// restart — without re-reading lines it already has. Appends come
	// from the scheduler goroutine and trial workers; pnotify is
	// replaced (old one closed) on every append to wake waiting
	// streams.
	pmu     sync.Mutex
	plines  [][]byte
	pnotify chan struct{}
}

// nowUnixNano reads the wall clock for job lifecycle timestamps — the
// one sanctioned wall-clock source in this package.
func nowUnixNano() int64 {
	//costsense:nondet-ok job lifecycle timestamps are status telemetry; they never reach result bytes
	return time.Now().UnixNano()
}

func newJob(id string, spec Spec) *Job {
	j := &Job{id: id, spec: spec, finished: make(chan struct{}), pnotify: make(chan struct{})}
	j.submittedAt.Store(nowUnixNano())
	j.plines = append(j.plines, j.statusLine()) // "queued", pre-publication: no lock needed
	return j
}

// Job implements harness.Sink to count finished trials for status and
// streaming. Callbacks fire from worker goroutines; atomics plus the
// progress mutex only.
func (j *Job) TrialStart(int) {}

// TrialDone records progress; done is the harness's monotone finished
// count. Every progressStep-th trial also lands a line in the progress
// log, so streams see steady movement without a per-trial allocation
// storm on big sweeps.
func (j *Job) TrialDone(_, done, total int) {
	j.trialsDone.Store(int64(done))
	step := total / 64
	if step < 1 {
		step = 1
	}
	if done%step == 0 || done == total {
		j.appendProgress()
	}
}

// statusLine renders the job's current status as one NDJSON line.
func (j *Job) statusLine() []byte {
	b, err := json.Marshal(j.status())
	if err != nil {
		// A JobStatus is plain strings and numbers; Marshal cannot
		// fail on it. Keep the stream well-formed regardless.
		return []byte("{}\n")
	}
	return append(b, '\n')
}

// appendProgress appends the current status to the progress log and
// wakes every waiting stream.
func (j *Job) appendProgress() {
	line := j.statusLine()
	j.pmu.Lock()
	j.plines = append(j.plines, line)
	close(j.pnotify)
	j.pnotify = make(chan struct{})
	j.pmu.Unlock()
}

// progressSince returns the log lines at and after offset from, the
// channel that will signal the next append, and whether the log is
// complete (the job is terminal and from has reached the end — the
// terminal line is always appended before finished closes).
func (j *Job) progressSince(from int) (lines [][]byte, notify <-chan struct{}, done bool) {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	if from < len(j.plines) {
		lines = j.plines[from:]
	}
	select {
	case <-j.finished:
		done = from+len(lines) >= len(j.plines)
	default:
	}
	return lines, j.pnotify, done
}

// JobStatus is the wire form of a job's current state. SubstrateCached
// lives here — in the *status*, never in the result — because whether
// the substrate was a cache hit is scheduling history, not experiment
// output: results must stay byte-identical across submissions. The
// same holds for Recovered (the job was re-enqueued from the journal
// after a restart) and Reason (why it failed).
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Experiment  string `json:"experiment"`
	TrialsDone  int64  `json:"trials_done"`
	TrialsTotal int    `json:"trials_total"`
	// SubstrateCached reports whether the job's substrate came from
	// the cache; present once the job has started.
	SubstrateCached *bool `json:"substrate_cached,omitempty"`
	// Recovered marks a job re-admitted from the journal at startup.
	Recovered bool `json:"recovered,omitempty"`
	// Reason is the typed failure class (error, deadline, panic,
	// shutdown, killed); present on failed jobs.
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
	// Lifecycle timestamps, RFC 3339 with nanoseconds; started_at and
	// finished_at appear once the job reaches that state. Status-only
	// scheduling history — the result JSON carries none of these.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// stampRFC3339 renders a unix-nano timestamp, or "" for zero (state
// not reached yet).
func stampRFC3339(ns int64) string {
	if ns == 0 {
		return ""
	}
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

func (j *Job) status() JobStatus {
	st := j.state.Load()
	s := JobStatus{
		ID:          j.id,
		State:       stateName(st),
		Experiment:  j.spec.Experiment,
		TrialsDone:  j.trialsDone.Load(),
		TrialsTotal: j.spec.Trials,
		Recovered:   j.recovered,
	}
	if st == jobRunning || (st >= jobDone && j.startedAt.Load() != 0) {
		cached := j.cached.Load()
		s.SubstrateCached = &cached
	}
	if st == jobFailed {
		s.Error = j.errMsg
		s.Reason = j.failReason
	}
	s.SubmittedAt = stampRFC3339(j.submittedAt.Load())
	s.StartedAt = stampRFC3339(j.startedAt.Load())
	s.FinishedAt = stampRFC3339(j.finishedAt.Load())
	return s
}

func (j *Job) complete(result []byte) {
	j.result = result
	j.finishedAt.Store(nowUnixNano())
	j.state.Store(jobDone)
	j.appendProgress() // terminal line lands before finished closes
	close(j.finished)
}

// fail moves the job to failed with a typed reason and human detail.
func (j *Job) fail(reason, msg string) {
	j.errMsg = msg
	j.failReason = reason
	j.finishedAt.Store(nowUnixNano())
	j.state.Store(jobFailed)
	j.appendProgress() // terminal line lands before finished closes
	close(j.finished)
}

// Config tunes a Server.
type Config struct {
	// QueueCap bounds the number of admitted-but-unstarted jobs;
	// submissions beyond it get 429 + Retry-After (default 16).
	QueueCap int
	// CacheBytes bounds the substrate cache (default 256 MiB).
	CacheBytes int64
	// StreamInterval is retained for configs that set it; progress
	// streams are driven by the job's progress log rather than a
	// ticker, so it no longer paces emission.
	StreamInterval time.Duration
	// JournalPath, when non-empty, enables the durable job journal:
	// every job state transition is an fsync'd NDJSON record, and the
	// next startup on the same path re-enqueues incomplete jobs (see
	// DESIGN.md, "Durability & recovery"). Open the server with Open
	// to surface journal corruption as an error.
	JournalPath string
	// JobTimeout is the default per-job deadline applied to jobs whose
	// spec carries no timeout_ms of its own; 0 means no deadline. An
	// expired job fails with reason "deadline" and the scheduler moves
	// on.
	JobTimeout time.Duration
	// DebugHandler, when non-nil, is mounted at /debug/ (the cmd layer
	// passes the expvar+pprof mux).
	DebugHandler http.Handler
	// Logger receives structured request and job lifecycle records
	// (default: discard). Build one with NewLogger so every record is
	// timestamped through the audited clock choke point.
	Logger *slog.Logger
}

// Server is the costsense experiment service: it admits specs onto a
// bounded job queue (backpressure via 429), journals every job state
// transition when durability is enabled, runs jobs one at a time on
// the harness worker pool with pooled simulator state, shares
// substrates through the content-addressed cache, and serves status,
// resumable NDJSON progress streams, and byte-deterministic results.
// After a crash, a restart on the same journal path re-enqueues every
// incomplete job; replaying a spec reproduces its result byte for
// byte.
type Server struct {
	cfg      Config
	cache    *Cache
	queue    *harness.Queue
	journal  *Journal
	log      *slog.Logger
	rejected atomic.Int64 // submissions turned away (429/503), for /metrics

	// Robustness counters, surfaced on /metrics.
	recovered   atomic.Int64 // journaled incomplete jobs re-enqueued at startup
	expired     atomic.Int64 // jobs failed by their deadline
	panicked    atomic.Int64 // jobs failed by a panicking sweep
	journalErrs atomic.Int64 // journal append failures (durability degraded)

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for listing
	nextID int

	recoverQ []*Job // journaled incomplete jobs awaiting re-admission, original order

	runCtx    context.Context // cancelled after drain; stops sweeps and streams
	runCancel context.CancelFunc
	drained   chan struct{} // closed when the scheduler loop exits
	started   atomic.Bool
}

// New builds a Server, panicking if the configured journal cannot be
// opened or is corrupt — the constructor of choice for journal-less
// configs and tests. Production callers with a journal use Open and
// handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, recovering journaled state when
// cfg.JournalPath is set: terminal jobs are restored from their
// persisted records (done jobs keep their exact result bytes), and
// incomplete jobs are queued for re-admission when Start launches the
// scheduler. A corrupt journal fails Open with the decoder's typed
// error; a torn final line is truncated and tolerated.
func Open(cfg Config) (*Server, error) {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 16
	}
	if cfg.StreamInterval <= 0 {
		cfg.StreamInterval = 250 * time.Millisecond
	}
	log := cfg.Logger
	if log == nil {
		log = NewLogger(io.Discard)
	}
	//costsense:ctx-ok lifecycle root: the server outlives any one request; Drain cancels runCtx
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes),
		queue:     harness.NewQueue(cfg.QueueCap),
		log:       log,
		jobs:      make(map[string]*Job),
		runCtx:    runCtx,
		runCancel: cancel,
		drained:   make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		jl, rec, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jl
		s.restore(rec)
	}
	return s, nil
}

// restore folds the decoded journal into the job table: terminal jobs
// become immediately-servable history, incomplete ones go on the
// re-admission list in original submission order. Runs before the
// server is published, so plain field writes suffice.
func (s *Server) restore(rec *Recovery) {
	for _, rj := range rec.Jobs {
		j := &Job{id: rj.ID, spec: rj.Spec, finished: make(chan struct{}), pnotify: make(chan struct{})}
		j.submittedAt.Store(rj.SubmittedAt)
		switch {
		case rj.Done:
			j.result = rj.Result
			j.startedAt.Store(rj.StartedAt)
			j.finishedAt.Store(rj.FinishedAt)
			j.trialsDone.Store(int64(rj.Spec.Trials))
			j.state.Store(jobDone)
			j.plines = append(j.plines, j.statusLine())
			close(j.finished)
		case rj.Failed:
			j.errMsg = rj.Detail
			j.failReason = rj.Reason
			j.startedAt.Store(rj.StartedAt)
			j.finishedAt.Store(rj.FinishedAt)
			j.state.Store(jobFailed)
			j.plines = append(j.plines, j.statusLine())
			close(j.finished)
		default:
			j.recovered = true
			j.plines = append(j.plines, j.statusLine())
			s.recoverQ = append(s.recoverQ, j)
		}
		s.jobs[rj.ID] = j
		s.order = append(s.order, rj.ID)
	}
	if rec.MaxID > s.nextID {
		s.nextID = rec.MaxID
	}
	if rec.TornTail {
		s.logEvent("journal torn tail truncated", slog.String("path", s.journal.Path()))
	}
}

// Cache exposes the substrate cache (for stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Start launches the scheduler — a single goroutine draining the job
// queue in admission order — and, after a journaled restart, the
// recovery goroutine re-admitting incomplete jobs. Idempotent.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	go func() {
		defer close(s.drained)
		s.queue.Run(s.runCtx)
	}()
	if len(s.recoverQ) > 0 {
		go s.readmitRecovered()
	}
}

// readmitRecovered re-enqueues journaled incomplete jobs in original
// submission order through the queue's blocking Submit: a restart must
// never drop a journaled job to a full queue, so recovery waits for
// space instead of bouncing. New HTTP submissions keep the fail-fast
// TrySubmit/429 path and may interleave behind the backlog. Terminates
// with runCtx: a drain during recovery abandons re-admission and
// leaves the rest for the next start (their journal records are
// untouched).
func (s *Server) readmitRecovered() {
	for _, j := range s.recoverQ {
		j := j
		if err := s.queue.Submit(s.runCtx, func(ctx context.Context) { s.runJob(ctx, j) }); err != nil {
			s.logEvent("recovery re-admission stopped", slog.String("job", j.id), slog.String("reason", err.Error()))
			return
		}
		s.recovered.Add(1)
		s.logEvent("job recovered", slog.String("job", j.id), slog.String("experiment", j.spec.Experiment))
	}
}

// Drain gracefully shuts the job pipeline down: stop admitting, let
// already-admitted jobs finish within ctx's deadline, then cancel
// whatever remains (an in-flight sweep stops between trials) and fail
// unstarted jobs. After Drain the server only serves reads. Returns
// ctx.Err() if the deadline cut the drain short, nil if it was clean.
//
// Jobs still queued at drain are failed in memory (streams terminate)
// but keep their journaled submitted records, so the next start on the
// same journal re-runs them; an in-flight job the deadline cuts off is
// journaled failed(shutdown) by the runner and is not re-run.
func (s *Server) Drain(ctx context.Context) error {
	s.queue.Close()
	if !s.started.Swap(true) {
		// No scheduler ever started, so nothing will drain the queue or
		// close drained; do both here. The Swap also keeps a late Start
		// from launching one now.
		s.runCancel()
		close(s.drained)
	}
	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.runCancel()
	<-s.drained
	s.failUnfinished()
	return err
}

// MarkKilled journals a failed(reason=killed) transition for every
// in-flight job. The cmd layer calls it when a second termination
// signal arrives mid-drain — the process is about to die with the
// sweep unfinished, and without the record the next start would
// re-run the job blind instead of reporting what killed it.
func (s *Server) MarkKilled() {
	s.mu.Lock()
	var running []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state.Load() == jobRunning {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		//costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
		s.journalAppend(journalRecord{
			Op: opFailed, Job: j.id, Reason: ReasonKilled,
			Detail: "second termination signal killed the job mid-drain",
		})
		s.logEvent("job killed", slog.String("job", j.id))
	}
	// Close the journal so the doomed sweep cannot append a finished
	// record after the failed(killed) one — that ordering would read as
	// corruption on the next start. Appends after this point fail into
	// the journal-error counter; the process is exiting anyway.
	//costsense:err-ok the process is about to exit; a close error has no one left to act on it
	s.journal.Close()
}

// failUnfinished marks every job that will never run (queued at
// shutdown) or was cut off mid-sweep as failed, so streams and polls
// terminate. Collecting under mu and failing outside it keeps the
// progress-log appends out of the job-table critical section.
func (s *Server) failUnfinished() {
	s.mu.Lock()
	pending := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		select {
		case <-j.finished:
		default:
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.fail(ReasonShutdown, "server shut down before the job finished")
	}
}

// journalAppend writes one journal record, folding failures into the
// journal-error counter: a dead disk degrades durability but must not
// take the scheduler with it. Returns the append error for callers
// that gate on durability (admission does; runner transitions log and
// proceed).
func (s *Server) journalAppend(r journalRecord) error {
	err := s.journal.append(r)
	if err != nil {
		s.journalErrs.Add(1)
		s.logEvent("journal append failed", slog.String("op", r.Op), slog.String("job", r.Job), slog.String("error", err.Error()))
	}
	return err
}

// deadlineFor resolves a job's deadline: the spec's own timeout_ms
// wins, then the server-wide default; 0 means none.
func (s *Server) deadlineFor(spec Spec) time.Duration {
	if spec.TimeoutMS > 0 {
		return time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return s.cfg.JobTimeout
}

// runJob executes one admitted job: journal the start, resolve the
// substrate through the cache, run the sweep under the job's deadline,
// journal and publish the outcome. A panicking sweep (a protocol bug,
// a mutated substrate) fails this job — panic value journaled — and
// leaves the scheduler alive for the next one.
func (s *Server) runJob(ctx context.Context, j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Add(1)
			msg := fmt.Sprintf("job panicked: %v", r)
			s.journalAppend(journalRecord{Op: opFailed, Job: j.id, Reason: ReasonPanic, Detail: msg}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
			j.fail(ReasonPanic, msg)
			s.logJobDone(j)
		}
	}()
	s.journalAppend(journalRecord{Op: opStarted, Job: j.id}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
	key := j.spec.SubstrateKey()
	sub, hit := s.cache.GetOrBuild(key, func() *Substrate {
		return buildSubstrate(key, j.spec.Graph, j.spec.Shards)
	})
	j.cached.Store(hit)
	j.startedAt.Store(nowUnixNano())
	j.state.Store(jobRunning)
	j.appendProgress()
	s.logEvent("job started",
		slog.String("job", j.id), slog.String("experiment", j.spec.Experiment),
		slog.Int("trials", j.spec.Trials), slog.Bool("substrate_cached", hit),
		slog.Bool("recovered", j.recovered))

	runCtx := ctx
	deadline := s.deadlineFor(j.spec)
	if deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(ctx, deadline, errJobDeadline)
		defer cancel()
	}
	res, err := runSpec(runCtx, j.spec, sub, j)
	if err != nil {
		reason, msg := ReasonError, err.Error()
		switch {
		case errors.Is(context.Cause(runCtx), errJobDeadline):
			reason = ReasonDeadline
			msg = fmt.Sprintf("deadline %s exceeded after %d/%d trials", deadline, j.trialsDone.Load(), j.spec.Trials)
			s.expired.Add(1)
		case ctx.Err() != nil:
			reason = ReasonShutdown
			msg = fmt.Sprintf("drain cut the job off after %d/%d trials", j.trialsDone.Load(), j.spec.Trials)
		}
		s.journalAppend(journalRecord{Op: opFailed, Job: j.id, Reason: reason, Detail: msg}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
		j.fail(reason, msg)
		s.logJobDone(j)
		return
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		msg := fmt.Sprintf("encoding result: %v", err)
		s.journalAppend(journalRecord{Op: opFailed, Job: j.id, Reason: ReasonError, Detail: msg}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
		j.fail(ReasonError, msg)
		s.logJobDone(j)
		return
	}
	resultBytes := append(b, '\n')
	// Journal before publishing: once a client can observe "done", the
	// record that reproduces it on restart is already durable.
	s.journalAppend(journalRecord{Op: opFinished, Job: j.id, Result: string(resultBytes)}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
	j.complete(resultBytes)
	s.logJobDone(j)
}

// logJobDone emits the terminal job record: state, trial count, run
// duration and throughput, all from the job's own lifecycle
// timestamps.
func (s *Server) logJobDone(j *Job) {
	started, finished := j.startedAt.Load(), j.finishedAt.Load()
	trials := j.trialsDone.Load()
	durMS := float64(finished-started) / 1e6
	rate := 0.0
	if finished > started {
		rate = float64(trials) / (float64(finished-started) / 1e9)
	}
	args := []any{
		slog.String("job", j.id), slog.String("state", stateName(j.state.Load())),
		slog.Int64("trials", trials), slog.Float64("dur_ms", durMS),
		slog.Float64("trials_per_sec", rate),
	}
	if j.state.Load() == jobFailed {
		args = append(args, slog.String("reason", j.failReason), slog.String("error", j.errMsg))
	}
	s.logEvent("job finished", args...)
}

// Handler returns the server's HTTP API:
//
//	GET  /healthz              liveness: queue depth, running job, cache size
//	GET  /metrics              Prometheus text-format exposition
//	POST /api/v1/jobs          submit a Spec; 202, or 429 when the queue is full
//	GET  /api/v1/jobs          all job statuses in creation order
//	GET  /api/v1/jobs/{id}     one job's status
//	GET  /api/v1/jobs/{id}/result   the result JSON (once done)
//	GET  /api/v1/jobs/{id}/stream   NDJSON progress stream until terminal;
//	                                ?from=N resumes after the first N lines
//	GET  /api/v1/cache         substrate cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/cache", s.handleCache)
	if s.cfg.DebugHandler != nil {
		mux.Handle("/debug/", s.cfg.DebugHandler)
	}
	return s.logRequests(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//costsense:err-ok an encode error here means the client hung up mid-response; there is no one left to tell
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, runningID := s.snapshotJobs()
	cs := s.cache.Stats()
	resp := map[string]any{
		"status":        "ok",
		"queue_depth":   s.queue.Len(),
		"queue_cap":     s.queue.Cap(),
		"cache_entries": cs.Entries,
		"cache_bytes":   cs.Bytes,
	}
	if runningID != "" {
		resp["running_job"] = runningID
	}
	if s.journal != nil {
		resp["journal"] = s.journal.Path()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}

	// ID allocation, the journal's submitted record, admission and
	// registration are atomic under mu, so job IDs are dense in
	// admission order and the journal's submission order matches the
	// queue's. The submitted record is written before TrySubmit — the
	// scheduler may pick the job up the instant it lands in the queue,
	// and its started record must find submitted already durable. A
	// bounced admission is journaled as rejected (and the ID burned)
	// so a crash in the window cannot resurrect a job the client was
	// told to retry. The response is written after Unlock: an HTTP
	// write can stall on a slow client, and stalling inside the
	// critical section would freeze every status poll and submission
	// with it.
	s.mu.Lock()
	id := fmt.Sprintf("job-%06d", s.nextID+1)
	j := newJob(id, spec)
	var err error
	//costsense:lock-ok bounded local-disk WAL append; the submitted record must be atomic with ID allocation and precede the scheduler's started record
	journalErr := s.journalAppend(journalRecord{Op: opSubmitted, Job: id, Spec: &spec})
	if journalErr != nil {
		// The record's durability is unknown; burn the ID so a partial
		// write can never collide with a later job.
		s.nextID++
		err = journalErr
	} else {
		//costsense:lock-ok TrySubmit never parks (select with default under its own mutex), and admission must be atomic with ID allocation
		err = s.queue.TrySubmit(func(ctx context.Context) { s.runJob(ctx, j) })
		if err == nil {
			s.nextID++
			s.jobs[id] = j
			s.order = append(s.order, id)
		} else if s.journal != nil {
			//costsense:lock-ok bounded local-disk WAL append, same admission atomicity as the submitted record above
			s.journalAppend(journalRecord{Op: opRejected, Job: id, Detail: err.Error()}) //costsense:err-ok journalAppend already counts and logs the failure; a dead disk degrades durability, never the scheduler
			s.nextID++
		}
	}
	s.mu.Unlock()

	if err != nil {
		s.rejected.Add(1)
		s.logEvent("job rejected", slog.String("reason", err.Error()))
		switch {
		case errors.Is(err, harness.ErrQueueFull):
			depth, capacity := s.queue.Len(), s.queue.Cap()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(depth, capacity)))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":       "job queue full; retry later",
				"queue_depth": depth,
				"queue_cap":   capacity,
			})
		case errors.Is(err, harness.ErrQueueClosed):
			writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.logEvent("job admitted",
		slog.String("job", id), slog.String("experiment", spec.Experiment),
		slog.Int("trials", spec.Trials), slog.Int("queue_depth", s.queue.Len()))
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         id,
		"status_url": "/api/v1/jobs/" + id,
		"result_url": "/api/v1/jobs/" + id + "/result",
		"stream_url": "/api/v1/jobs/" + id + "/stream",
	})
}

// retryAfterSeconds scales the 429 backoff hint with queue depth: a
// nearly-drained queue invites a quick retry, a full one pushes
// clients back harder (1s empty .. 5s at capacity).
func retryAfterSeconds(depth, capacity int) int {
	if capacity <= 0 || depth < 0 {
		return 1
	}
	if depth > capacity {
		depth = capacity
	}
	return 1 + (4*depth)/capacity
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	select {
	case <-j.finished:
	default:
		writeError(w, http.StatusConflict, "job is %s; result not ready", stateName(j.state.Load()))
		return
	}
	if j.state.Load() == jobFailed {
		writeError(w, http.StatusInternalServerError, "job failed: %s", j.errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//costsense:err-ok a short write means the client hung up; the result stays cached for the next GET
	w.Write(j.result)
}

// handleStream serves the job's progress log as NDJSON: every line
// already in the log, then new lines as they land, until the terminal
// line (always the log's last — complete/fail append it before
// closing finished). ?from=N skips the first N lines, which is how a
// client resumes after a disconnect or a server restart without
// replaying history it already has; if the job is terminal and the
// (re-grown) log is shorter than N, one fresh terminal status line is
// emitted so the client still observes closure.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid from offset %q", v)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	emitted := false
	for {
		lines, notify, done := j.progressSince(from)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
			from++
			emitted = true
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
		if done {
			if !emitted {
				// Resumed past the end of a terminal job's log (the log
				// re-grew shorter after a restart): close with one fresh
				// terminal line.
				//costsense:err-ok terminal line is best-effort; the stream closes right after either way
				w.Write(j.statusLine())
				if fl != nil {
					fl.Flush()
				}
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			// Shutdown: failUnfinished appends the terminal line and
			// closes j.finished; loop once more to emit it.
			<-j.finished
		}
	}
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}
