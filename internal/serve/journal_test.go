package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jline renders one journal line for synthetic test journals.
func jline(t *testing.T, seq uint64, op, job string, extra map[string]any) string {
	t.Helper()
	m := map[string]any{"v": 1, "seq": seq, "op": op, "job": job, "ts": 1000 + int64(seq)}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshalling test record: %v", err)
	}
	return string(b) + "\n"
}

func specJSON(t *testing.T) map[string]any {
	t.Helper()
	sp := validSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatalf("normalizing test spec: %v", err)
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshalling test spec: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("unmarshalling test spec: %v", err)
	}
	return m
}

// TestJournalDecodeGolden pins the decoder's verdict on a family of
// synthetic journals: healthy histories recover, torn tails are
// tolerated and truncated, and every mid-file or semantic violation is
// a typed *JournalCorruptError naming its line.
func TestJournalDecodeGolden(t *testing.T) {
	spec := func() map[string]any { return map[string]any{"spec": specJSON(t)} }
	result := map[string]any{"result": "{\"x\": 1}\n"}
	fail := map[string]any{"reason": "deadline", "detail": "too slow"}

	t.Run("healthy incomplete and terminal jobs", func(t *testing.T) {
		data := jline(t, 1, "submitted", "job-000001", spec()) +
			jline(t, 2, "started", "job-000001", nil) +
			jline(t, 3, "finished", "job-000001", result) +
			jline(t, 4, "submitted", "job-000002", spec()) +
			jline(t, 5, "started", "job-000002", nil) +
			jline(t, 6, "submitted", "job-000003", spec())
		rec, good, err := decodeJournal([]byte(data))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if good != int64(len(data)) || rec.TornTail {
			t.Fatalf("healthy journal misread: good=%d want=%d torn=%v", good, len(data), rec.TornTail)
		}
		if len(rec.Jobs) != 3 || rec.Incomplete() != 2 {
			t.Fatalf("got %d jobs, %d incomplete; want 3 jobs, 2 incomplete", len(rec.Jobs), rec.Incomplete())
		}
		if !rec.Jobs[0].Done || string(rec.Jobs[0].Result) != "{\"x\": 1}\n" {
			t.Fatalf("job 1 should be done with its persisted result, got %+v", rec.Jobs[0])
		}
		// Re-run jobs come back in original submission order.
		if rec.Jobs[1].ID != "job-000002" || rec.Jobs[2].ID != "job-000003" {
			t.Fatalf("recovery order broken: %s, %s", rec.Jobs[1].ID, rec.Jobs[2].ID)
		}
		if rec.NextSeq != 6 || rec.MaxID != 3 {
			t.Fatalf("NextSeq=%d MaxID=%d, want 6 and 3", rec.NextSeq, rec.MaxID)
		}
	})

	t.Run("failed job restores its typed reason", func(t *testing.T) {
		data := jline(t, 1, "submitted", "job-000001", spec()) +
			jline(t, 2, "started", "job-000001", nil) +
			jline(t, 3, "failed", "job-000001", fail)
		rec, _, err := decodeJournal([]byte(data))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		j := rec.Jobs[0]
		if !j.Failed || j.Reason != ReasonDeadline || j.Detail != "too slow" {
			t.Fatalf("failed job misrestored: %+v", j)
		}
	})

	t.Run("rejected admission burns the id but is not a job", func(t *testing.T) {
		data := jline(t, 1, "submitted", "job-000001", spec()) +
			jline(t, 2, "rejected", "job-000001", nil) +
			jline(t, 3, "submitted", "job-000002", spec())
		rec, _, err := decodeJournal([]byte(data))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-000002" {
			t.Fatalf("rejected admission leaked into jobs: %+v", rec.Jobs)
		}
		if rec.MaxID != 2 {
			t.Fatalf("MaxID=%d; the rejected id must stay burnt (want 2)", rec.MaxID)
		}
	})

	t.Run("torn tails are tolerated", func(t *testing.T) {
		whole := jline(t, 1, "submitted", "job-000001", spec())
		for _, tail := range []string{
			"{\"v\":1,\"seq\":2,\"op\":\"sta",                                   // cut mid-record
			strings.TrimSuffix(jline(t, 2, "started", "job-000001", nil), "\n"), // parseable, no newline
			"garbage\n", // unparseable but newline-terminated final line
		} {
			rec, good, err := decodeJournal([]byte(whole + tail))
			if err != nil {
				t.Fatalf("torn tail %q should recover, got %v", tail, err)
			}
			if !rec.TornTail || good != int64(len(whole)) {
				t.Fatalf("torn tail %q: torn=%v good=%d want good=%d", tail, rec.TornTail, good, len(whole))
			}
			if len(rec.Jobs) != 1 || rec.NextSeq != 1 {
				t.Fatalf("torn tail %q corrupted the good prefix: %+v", tail, rec)
			}
		}
	})

	t.Run("corruption is typed and names its line", func(t *testing.T) {
		pre := jline(t, 1, "submitted", "job-000001", spec())
		post := jline(t, 3, "submitted", "job-000002", spec()) // keeps the bad line non-final
		cases := []struct {
			name string
			bad  string
		}{
			{"mid-file garbage", "not json\n"},
			{"out-of-order seq", jline(t, 7, "started", "job-000001", nil)},
			{"unknown op", jline(t, 2, "exploded", "job-000001", nil)},
			{"unknown version", strings.Replace(jline(t, 2, "started", "job-000001", nil), "\"v\":1", "\"v\":9", 1)},
			{"unknown field", strings.Replace(jline(t, 2, "started", "job-000001", nil), "\"op\"", "\"oops\":true,\"op\"", 1)},
			{"malformed job id", jline(t, 2, "started", "job-1", nil)},
			{"duplicate submitted", jline(t, 2, "submitted", "job-000001", spec())},
			{"started before submitted", jline(t, 2, "started", "job-000009", nil)},
			{"finished before started", jline(t, 2, "finished", "job-000001", result)},
			{"finished without result", jline(t, 2, "finished", "job-000001", nil)},
			{"failed with unknown reason", jline(t, 2, "failed", "job-000001", map[string]any{"reason": "gremlins"})},
			{"submitted without spec", jline(t, 2, "submitted", "job-000002", nil)},
			{"submitted with invalid spec", jline(t, 2, "submitted", "job-000002", map[string]any{"spec": map[string]any{"experiment": "nope"}})},
		}
		for _, tc := range cases {
			_, _, err := decodeJournal([]byte(pre + tc.bad + post))
			var ce *JournalCorruptError
			if !errors.As(err, &ce) {
				t.Errorf("%s: want *JournalCorruptError, got %v", tc.name, err)
				continue
			}
			if ce.Line != 2 {
				t.Errorf("%s: corruption at line %d, want 2", tc.name, ce.Line)
			}
		}
		// records after a terminal state are their own violation
		term := pre + jline(t, 2, "started", "job-000001", nil) + jline(t, 3, "finished", "job-000001", result)
		for _, bad := range []string{
			jline(t, 4, "started", "job-000001", nil),
			jline(t, 4, "failed", "job-000001", fail),
			jline(t, 4, "rejected", "job-000001", nil),
		} {
			_, _, err := decodeJournal([]byte(term + bad + post))
			var ce *JournalCorruptError
			if !errors.As(err, &ce) || ce.Line != 4 {
				t.Errorf("record after terminal: want corruption at line 4, got %v", err)
			}
		}
	})

	t.Run("empty journal is a clean slate", func(t *testing.T) {
		rec, good, err := decodeJournal(nil)
		if err != nil || good != 0 || len(rec.Jobs) != 0 || rec.TornTail {
			t.Fatalf("empty journal: rec=%+v good=%d err=%v", rec, good, err)
		}
	})
}

// TestOpenJournalTruncatesTornTail pins OpenJournal's repair: the torn
// tail is physically removed so the next append continues the good
// stream, and a reopened journal decodes clean.
func TestOpenJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	good := jline(t, 1, "submitted", "job-000001", map[string]any{"spec": specJSON(t)}) +
		jline(t, 2, "started", "job-000001", nil)
	if err := os.WriteFile(path, []byte(good+`{"v":1,"seq":3,"op":"fini`), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if !rec.TornTail || rec.NextSeq != 2 || rec.Incomplete() != 1 {
		t.Fatalf("recovery misread torn journal: %+v", rec)
	}
	if err := jl.append(journalRecord{Op: opFinished, Job: "job-000001", Result: "{}\n"}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := jl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec2, goodN, err := decodeJournal(data)
	if err != nil {
		t.Fatalf("reopened journal should be clean, got %v", err)
	}
	if rec2.TornTail || goodN != int64(len(data)) || rec2.NextSeq != 3 {
		t.Fatalf("repair left damage: torn=%v good=%d/%d seq=%d", rec2.TornTail, goodN, len(data), rec2.NextSeq)
	}
	if len(rec2.Jobs) != 1 || !rec2.Jobs[0].Done {
		t.Fatalf("job should be done after the appended finish: %+v", rec2.Jobs)
	}
}

// TestOpenJournalRejectsCorruption: mid-file damage must fail startup
// with the decoder's typed error, not limp along.
func TestOpenJournalRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	data := "garbage\n" + jline(t, 1, "submitted", "job-000001", map[string]any{"spec": specJSON(t)})
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	var ce *JournalCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *JournalCorruptError, got %v", err)
	}
}

// TestJournalAppendRoundTrip: what append writes, decode restores —
// including a result payload with embedded newlines (escaped in the
// record, exact after the round trip).
func TestJournalAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh journal has jobs: %+v", rec.Jobs)
	}
	sp := validSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	result := "{\n  \"lines\": true\n}\n"
	for _, r := range []journalRecord{
		{Op: opSubmitted, Job: "job-000001", Spec: &sp},
		{Op: opStarted, Job: "job-000001"},
		{Op: opFinished, Job: "job-000001", Result: result},
	} {
		if err := jl.append(r); err != nil {
			t.Fatalf("append %s: %v", r.Op, err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rec2.Jobs) != 1 || !rec2.Jobs[0].Done {
		t.Fatalf("round trip lost the job: %+v", rec2.Jobs)
	}
	if !bytes.Equal(rec2.Jobs[0].Result, []byte(result)) {
		t.Fatalf("result bytes changed across the round trip:\n%q\n%q", rec2.Jobs[0].Result, result)
	}
	if rec2.Jobs[0].Spec.Experiment != sp.Experiment || rec2.Jobs[0].Spec.Trials != sp.Trials {
		t.Fatalf("spec changed across the round trip: %+v", rec2.Jobs[0].Spec)
	}
}

// TestJournalNilIsNoop: a journal-less server calls the same appends;
// they must all be free no-ops.
func TestJournalNilIsNoop(t *testing.T) {
	var jl *Journal
	if err := jl.append(journalRecord{Op: opStarted, Job: "job-000001"}); err != nil {
		t.Fatalf("nil append: %v", err)
	}
	if err := jl.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	if jl.Path() != "" {
		t.Fatalf("nil path: %q", jl.Path())
	}
}

// FuzzJournalDecode holds the decoder to its two promises on arbitrary
// bytes: it never panics, and it classifies every input as healthy,
// torn-tail recoverable, or typed mid-file corruption — nothing else.
// For recoverable verdicts the good prefix must itself decode clean
// (truncating to good and retrying cannot fail), which is exactly the
// repair OpenJournal performs.
func FuzzJournalDecode(f *testing.F) {
	sp := validSpec()
	if err := sp.Normalize(); err != nil {
		f.Fatal(err)
	}
	specB, err := json.Marshal(sp)
	if err != nil {
		f.Fatal(err)
	}
	mk := func(seq uint64, op, job, extra string) string {
		s := fmt.Sprintf(`{"v":1,"seq":%d,"op":%q,"job":%q,"ts":%d`, seq, op, job, 1000+seq)
		return s + extra + "}\n"
	}
	healthy := mk(1, "submitted", "job-000001", `,"spec":`+string(specB)) +
		mk(2, "started", "job-000001", "") +
		mk(3, "finished", "job-000001", `,"result":"{}\n"`)
	f.Add([]byte(healthy))
	f.Add([]byte(healthy[:len(healthy)-9])) // truncated tail
	f.Add([]byte(healthy + "garbage"))
	f.Add([]byte("garbage\n" + healthy))                             // mid-file garbage
	f.Add([]byte(strings.Replace(healthy, `"seq":2`, `"seq":9`, 1))) // seq gap
	f.Add([]byte(strings.Replace(healthy, "started", "exploded", 1)))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"v":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, good, err := decodeJournal(data) // must not panic
		if err != nil {
			var ce *JournalCorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *JournalCorruptError: %v", err)
			}
			if ce.Line < 1 {
				t.Fatalf("corruption without a line number: %+v", ce)
			}
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		if rec.TornTail != (good < int64(len(data))) {
			t.Fatalf("torn-tail flag disagrees with offset: torn=%v good=%d len=%d", rec.TornTail, good, len(data))
		}
		// The repaired prefix must decode clean — recovery's truncation
		// cannot manufacture new corruption.
		rec2, good2, err2 := decodeJournal(data[:good])
		if err2 != nil || good2 != good || rec2.TornTail {
			t.Fatalf("good prefix does not re-decode clean: err=%v good=%d/%d torn=%v", err2, good2, good, rec2.TornTail)
		}
		if len(rec2.Jobs) != len(rec.Jobs) {
			t.Fatalf("prefix decode changed the job set: %d vs %d", len(rec2.Jobs), len(rec.Jobs))
		}
	})
}
