package serve

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newUnstartedFrontend serves a Server whose scheduler loop was never
// started, so admitted jobs stay queued for as long as the test looks
// at them.
func newUnstartedFrontend(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// scrape fetches the text exposition and returns it split into lines.
func scrape(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(b), "\n"), "\n")
}

// series extracts the value line for an exact series name (with label
// set, if any), failing the test when it is missing.
func series(t *testing.T, lines []string, name string) string {
	t.Helper()
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("series %s missing from exposition", name)
	return ""
}

// TestMetricsExposition: after one completed job the endpoint reports
// consistent lifecycle counts, populated histograms, and cache state —
// and every line is well-formed text exposition.
func TestMetricsExposition(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	spec.Trials = 3
	_, out, _ := postSpec(t, ts, spec)
	waitDone(t, s, out["id"].(string))

	lines := scrape(t, ts.URL)
	for _, l := range lines {
		if l == "" {
			t.Error("blank line in exposition")
			continue
		}
		if !strings.HasPrefix(l, "# ") && !strings.HasPrefix(l, "costsense_") {
			t.Errorf("malformed line %q", l)
		}
	}
	if got := series(t, lines, `costsense_jobs{state="done"}`); got != "1" {
		t.Errorf("done jobs = %s, want 1", got)
	}
	if got := series(t, lines, "costsense_jobs_submitted_total"); got != "1" {
		t.Errorf("submitted = %s, want 1", got)
	}
	if got := series(t, lines, "costsense_trials_completed_total"); got != "3" {
		t.Errorf("trials completed = %s, want 3", got)
	}
	if got := series(t, lines, "costsense_queue_depth"); got != "0" {
		t.Errorf("queue depth = %s, want 0", got)
	}
	// One finished job: every histogram holds exactly one observation,
	// and the cumulative +Inf bucket agrees with _count.
	for _, h := range []string{"costsense_job_queue_wait_seconds", "costsense_job_duration_seconds", "costsense_job_trials_per_second"} {
		if got := series(t, lines, h+"_count"); got != "1" {
			t.Errorf("%s_count = %s, want 1", h, got)
		}
		if got := series(t, lines, h+`_bucket{le="+Inf"}`); got != "1" {
			t.Errorf("%s +Inf bucket = %s, want 1", h, got)
		}
	}
	if got := series(t, lines, "costsense_cache_misses_total"); got != "1" {
		t.Errorf("cache misses = %s, want 1", got)
	}
	if got := series(t, lines, "costsense_cache_entries"); got != "1" {
		t.Errorf("cache entries = %s, want 1", got)
	}
}

// TestMetricsBackpressure: a rejected submission shows up in
// costsense_jobs_rejected_total and the queued job in the depth gauge —
// scraped identically from a server with no scheduler draining.
func TestMetricsBackpressure(t *testing.T) {
	s := New(Config{QueueCap: 1})
	ts := newUnstartedFrontend(t, s)
	if code, _, _ := postSpec(t, ts, validSpec()); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	if code, _, _ := postSpec(t, ts, validSpec()); code != http.StatusTooManyRequests {
		t.Fatal("second submit not rejected")
	}
	lines := scrape(t, ts.URL)
	if got := series(t, lines, "costsense_jobs_rejected_total"); got != "1" {
		t.Errorf("rejected = %s, want 1", got)
	}
	if got := series(t, lines, "costsense_queue_depth"); got != "1" {
		t.Errorf("queue depth = %s, want 1", got)
	}
	if got := series(t, lines, "costsense_queue_capacity"); got != "1" {
		t.Errorf("queue capacity = %s, want 1", got)
	}
	if got := series(t, lines, `costsense_jobs{state="queued"}`); got != "1" {
		t.Errorf("queued jobs = %s, want 1", got)
	}
}

// TestMetricsScrapeDuringStream hammers /metrics from several
// goroutines while a job runs and streams NDJSON — the -race half of
// the exposition contract: scrapes snapshot the job table under mu
// while the scheduler mutates job atomics and the stream handler reads
// them.
func TestMetricsScrapeDuringStream(t *testing.T) {
	s, ts := testServer(t, Config{StreamInterval: 2 * time.Millisecond})
	spec := validSpec()
	spec.Trials = 256
	_, out, _ := postSpec(t, ts, spec)
	id := out["id"].(string)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				b, err := io.ReadAll(r.Body)
				r.Body.Close()
				if err != nil || r.StatusCode != http.StatusOK {
					t.Errorf("scrape: status %d, err %v", r.StatusCode, err)
					return
				}
				if !bytes.Contains(b, []byte("costsense_jobs_submitted_total 1")) {
					t.Error("mid-run scrape lost the submitted job")
					return
				}
			}
		}()
	}

	// Drain the stream to its terminal line, then stop the scrapers.
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		lines++
	}
	close(done)
	wg.Wait()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream emitted nothing")
	}
	waitDone(t, s, id)
	final := scrape(t, ts.URL)
	if got := series(t, final, "costsense_trials_completed_total"); got != "256" {
		t.Errorf("final trials completed = %s, want 256", got)
	}
}

// TestHealthzFields: the health endpoint carries the queue and cache
// gauges, and names the running job only while one is in flight.
func TestHealthzFields(t *testing.T) {
	s := New(Config{QueueCap: 4})
	ts := newUnstartedFrontend(t, s)
	postSpec(t, ts, validSpec())
	postSpec(t, ts, validSpec())
	h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("healthz status: %v", h)
	}
	if h["queue_depth"].(float64) != 2 || h["queue_cap"].(float64) != 4 {
		t.Errorf("queue fields: depth %v cap %v, want 2 and 4", h["queue_depth"], h["queue_cap"])
	}
	if _, ok := h["cache_entries"]; !ok {
		t.Error("healthz missing cache_entries")
	}
	if _, ok := h["cache_bytes"]; !ok {
		t.Error("healthz missing cache_bytes")
	}
	if _, ok := h["running_job"]; ok {
		t.Error("healthz names a running job with no scheduler started")
	}
}

// TestRequestAndJobLogs: the configured slog logger receives request
// and job lifecycle records with the audited ts attribute and no
// handler-stamped time key.
func TestRequestAndJobLogs(t *testing.T) {
	var lb lockedBuffer
	s, ts := testServer(t, Config{Logger: NewLogger(&lb)})
	_, out, _ := postSpec(t, ts, validSpec())
	waitDone(t, s, out["id"].(string))
	scrape(t, ts.URL)

	logs := lb.String()
	for _, want := range []string{"job admitted", "job started", "job finished", "http request"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log output missing %q record:\n%s", want, logs)
		}
	}
	for _, l := range strings.Split(strings.TrimRight(logs, "\n"), "\n") {
		if !strings.Contains(l, "ts=") {
			t.Errorf("record without audited ts attribute: %s", l)
		}
		if strings.HasPrefix(l, "time=") {
			t.Errorf("record carries the handler's own clock: %s", l)
		}
	}
	if !strings.Contains(logs, "state=done") {
		t.Errorf("job finished record lacks terminal state:\n%s", logs)
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer: the scheduler
// goroutine and request handlers log concurrently.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
