package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Experiment: "flood",
		Graph: GraphSpec{
			Family: "random", N: 40, M: 120,
			Weights: WeightSpec{Kind: "uniform", Max: 32, Seed: 7},
			Seed:    7,
		},
		Trials: 3,
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := Spec{Experiment: "flood", Graph: GraphSpec{Family: "ring", N: 8}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Delay != "max" || s.Trials != 1 || s.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.Graph.Weights.Kind != "unit" {
		t.Fatalf("weight default not applied: %+v", s.Graph.Weights)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"experiment", func(s *Spec) { s.Experiment = "frobnicate" }, "unknown experiment"},
		{"family", func(s *Spec) { s.Graph.Family = "torus" }, "unknown graph family"},
		{"family missing", func(s *Spec) { s.Graph.Family = "" }, "graph family missing"},
		{"n too small", func(s *Spec) { s.Graph.N = 1 }, "needs n >= 2"},
		{"m too small", func(s *Spec) { s.Graph.M = 10 }, "m >= n-1"},
		{"delay", func(s *Spec) { s.Delay = "gaussian" }, "unknown delay model"},
		{"trials", func(s *Spec) { s.Trials = MaxTrials + 1 }, "trials"},
		{"root", func(s *Spec) { s.Root = 40 }, "root 40 out of range"},
		{"neg root", func(s *Spec) { s.Root = -1 }, "out of range"},
		{"weights", func(s *Spec) { s.Graph.Weights.Kind = "zipf" }, "unknown weight kind"},
		{"drop", func(s *Spec) { s.Faults = &FaultSpec{Drop: 1.5} }, "probabilities"},
		{"too big", func(s *Spec) { s.Graph.N = maxVertices + 1; s.Graph.M = maxVertices + 1 }, "too large"},
		{"neg timeout", func(s *Spec) { s.TimeoutMS = -1 }, "timeout_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mut(&s)
			err := s.Normalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

// Substrate keys must identify graph content, not incidental spec
// fields: trials/seed/delay/faults don't affect the key, graph params
// and shard count do, and irrelevant family parameters are
// canonicalized away.
func TestSubstrateKey(t *testing.T) {
	base := validSpec()
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	key := func(mut func(*Spec)) string {
		s := validSpec()
		mut(&s)
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return s.SubstrateKey()
	}
	same := map[string]func(*Spec){
		"trials":     func(s *Spec) { s.Trials = 99 },
		"seed":       func(s *Spec) { s.Seed = 42 },
		"delay":      func(s *Spec) { s.Delay = "uniform" },
		"faults":     func(s *Spec) { s.Faults = &FaultSpec{Drop: 0.1} },
		"experiment": func(s *Spec) { s.Experiment = "ghs" },
		"one shard":  func(s *Spec) { s.Shards = 1 }, // canonicalized to 0
	}
	for name, mut := range same {
		if k := key(mut); k != base.SubstrateKey() {
			t.Errorf("%s changed the substrate key", name)
		}
	}
	diff := map[string]func(*Spec){
		"n":          func(s *Spec) { s.Graph.N = 41 },
		"m":          func(s *Spec) { s.Graph.M = 121 },
		"graph seed": func(s *Spec) { s.Graph.Seed = 8 },
		"weights":    func(s *Spec) { s.Graph.Weights.Max = 64 },
		"family":     func(s *Spec) { s.Graph = GraphSpec{Family: "ring", N: 40} },
		"shards":     func(s *Spec) { s.Shards = 4 },
	}
	for name, mut := range diff {
		if k := key(mut); k == base.SubstrateKey() {
			t.Errorf("%s did NOT change the substrate key", name)
		}
	}
	// Irrelevant parameters are zeroed by normalization: a hard-family
	// spec keys the same whatever weight spec the caller left in.
	a := key(func(s *Spec) { s.Graph = GraphSpec{Family: "hard", N: 16} })
	b := key(func(s *Spec) {
		s.Graph = GraphSpec{Family: "hard", N: 16, Weights: WeightSpec{Kind: "uniform", Max: 9, Seed: 3}}
	})
	if a != b {
		t.Error("hard-family key depends on the (unused) weight spec")
	}
}

// Every family the spec schema names must build.
func TestGraphSpecBuildFamilies(t *testing.T) {
	specs := []GraphSpec{
		{Family: "path", N: 5},
		{Family: "ring", N: 5},
		{Family: "star", N: 5},
		{Family: "complete", N: 5},
		{Family: "grid", Rows: 3, Cols: 4},
		{Family: "random", N: 10, M: 20, Weights: WeightSpec{Kind: "pow2", Exp: 4, Seed: 2}, Seed: 3},
		{Family: "hard", N: 12},
		{Family: "heavychord", N: 12},
	}
	for _, gs := range specs {
		t.Run(gs.Family, func(t *testing.T) {
			if err := gs.normalize(); err != nil {
				t.Fatal(err)
			}
			g := gs.Build()
			if g.N() < 2 || !g.Connected() {
				t.Fatalf("family %s built a bogus graph (n=%d)", gs.Family, g.N())
			}
		})
	}
}

// The deadline is scheduling policy, not experiment identity: it must
// not perturb the substrate key, and a spec without one must keep its
// exact canonical JSON (timeout_ms is omitempty), so pre-deadline
// result bytes are untouched.
func TestTimeoutIsSchedulingPolicyOnly(t *testing.T) {
	plain, timed := validSpec(), validSpec()
	timed.TimeoutMS = 5000
	if err := plain.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := timed.Normalize(); err != nil {
		t.Fatal(err)
	}
	if plain.SubstrateKey() != timed.SubstrateKey() {
		t.Fatal("timeout_ms changed the substrate key")
	}
	b, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "timeout_ms") {
		t.Fatalf("timeoutless spec leaks timeout_ms into canonical JSON: %s", b)
	}
	b, err = json.Marshal(timed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"timeout_ms":5000`) {
		t.Fatalf("timed spec lost its timeout: %s", b)
	}
}
