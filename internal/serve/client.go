package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client talks to a costsense experiment server with retry, backoff
// and stream resumption, so a caller survives the exact failures the
// service itself is built to survive: backpressure (429 + Retry-After),
// drains (503), and crash-restarts (connection errors mid-stream,
// resumed via the stream's ?from= offset). The zero value plus Base is
// usable.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds retries per call (default 10).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up
	// to 5s (default 100ms). A 429's Retry-After overrides it.
	BaseBackoff time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 10
}

// backoffFor resolves the delay before retry attempt (0-based),
// preferring the server's Retry-After hint when one was given.
func (c *Client) backoffFor(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.BaseBackoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	d <<= attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// sleep waits d or until ctx is cancelled.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	//costsense:nondet-ok client retry backoff is wall-clock by nature and never feeds result bytes
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterOf parses a response's Retry-After seconds hint (0 if
// absent or unparseable).
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
		return time.Duration(n) * time.Second
	}
	return 0
}

// retryable reports whether a response status is worth retrying:
// backpressure and drain answers are explicitly transient; everything
// else 4xx/5xx is a real answer.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do runs one request with retry: connection errors (the server is
// down — perhaps restarting after a crash) and transient statuses are
// retried with backoff; any other response is returned to the caller.
// On success the caller owns resp.Body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoffFor(attempt-1, retryAfterFromErr(lastErr))); err != nil {
				return nil, err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err // connection refused/reset: server may be restarting
			continue
		}
		if retryable(resp.StatusCode) {
			ra := retryAfterOf(resp)
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			//costsense:err-ok draining a transient response; the retry path owns the connection's fate
			resp.Body.Close()
			lastErr = &transientStatusError{status: resp.StatusCode, retryAfter: ra, detail: string(bytes.TrimSpace(msg))}
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("serve client: %s %s: attempts exhausted: %w", method, path, lastErr)
}

// transientStatusError carries a retryable response through the retry
// loop so the next backoff can honor its Retry-After.
type transientStatusError struct {
	status     int
	retryAfter time.Duration
	detail     string
}

func (e *transientStatusError) Error() string {
	return fmt.Sprintf("transient status %d (%s)", e.status, e.detail)
}

func retryAfterFromErr(err error) time.Duration {
	var te *transientStatusError
	if errors.As(err, &te) {
		return te.retryAfter
	}
	return 0
}

// decodeInto reads and decodes a JSON response body, closing it.
func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close() //costsense:err-ok response fully read below; a close error has nothing left to corrupt
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("serve client: status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(b, v)
}

// Submit posts a spec and returns the admitted job's ID, retrying
// through backpressure (429, honoring Retry-After), drains and
// connection errors. A retry after an ambiguous connection error can
// double-submit; that is safe here because results are pure functions
// of the spec — the duplicate job returns byte-identical output.
func (c *Client) Submit(ctx context.Context, spec Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.do(ctx, http.MethodPost, "/api/v1/jobs", body)
	if err != nil {
		return "", err
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := decodeInto(resp, &out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("serve client: submit response carried no job id")
	}
	return out.ID, nil
}

// Status fetches one job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	resp, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	err = decodeInto(resp, &st)
	return st, err
}

// Result fetches a finished job's result bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //costsense:err-ok response fully read below; a close error has nothing left to corrupt
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve client: result status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return b, nil
}

// terminalState reports whether a streamed status line ends the job.
func terminalState(s string) bool { return s == "done" || s == "failed" }

// Follow streams a job's NDJSON progress to w until the job is
// terminal, returning the final status. It tracks the stream offset
// and resumes with ?from= after any disconnection — including a server
// crash and restart, where the journal re-runs the job and the
// re-grown progress log picks the stream back up. Lines the client
// already saw are never re-emitted.
func (c *Client) Follow(ctx context.Context, id string, w io.Writer) (JobStatus, error) {
	from := 0
	var lastErr error
	for attempt := 0; attempt < c.attempts(); {
		if lastErr != nil {
			if err := c.sleep(ctx, c.backoffFor(attempt, retryAfterFromErr(lastErr))); err != nil {
				return JobStatus{}, err
			}
		}
		st, n, err := c.followOnce(ctx, id, from, w)
		from += n
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if n > 0 {
			attempt = 0 // progress resets the retry budget
		} else {
			attempt++
		}
		lastErr = err
	}
	return JobStatus{}, fmt.Errorf("serve client: follow %s: attempts exhausted: %w", id, lastErr)
}

// followOnce runs one stream connection from offset from, forwarding
// each line to w, and returns the lines consumed. A nil error means
// the terminal line was seen and returned as st.
func (c *Client) followOnce(ctx context.Context, id string, from int, w io.Writer) (st JobStatus, lines int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%s/stream?from=%d", c.Base, id, from), nil)
	if err != nil {
		return st, 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return st, 0, err
	}
	defer resp.Body.Close() //costsense:err-ok stream is line-framed; a close error after the terminal line has nothing left to corrupt
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return st, 0, &transientStatusError{status: resp.StatusCode, retryAfter: retryAfterOf(resp), detail: string(bytes.TrimSpace(b))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if w != nil {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return st, lines, err
			}
		}
		lines++
		if err := json.Unmarshal(line, &st); err != nil {
			return st, lines, fmt.Errorf("serve client: bad stream line: %w", err)
		}
		if terminalState(st.State) {
			return st, lines, nil
		}
	}
	if err := sc.Err(); err != nil {
		return st, lines, err
	}
	return st, lines, io.ErrUnexpectedEOF // stream ended without a terminal line (server went away)
}

// Run submits a spec, follows its stream (progress to w, which may be
// nil) until terminal, and returns the final status plus the result
// bytes for a done job — riding out backpressure, drains and
// crash-restarts along the way. A failed job returns its status with
// a nil result and no error; the caller reads st.Reason.
func (c *Client) Run(ctx context.Context, spec Spec, w io.Writer) (JobStatus, []byte, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return JobStatus{}, nil, err
	}
	st, err := c.Follow(ctx, id, w)
	if err != nil {
		return st, nil, err
	}
	if st.State != "done" {
		return st, nil, nil
	}
	res, err := c.Result(ctx, id)
	if err != nil {
		return st, nil, err
	}
	return st, res, nil
}
