package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(base string) *Client {
	return &Client{Base: base, BaseBackoff: time.Millisecond, MaxAttempts: 8}
}

// TestClientRetryAfterHonored: the 429 hint beats exponential backoff.
func TestClientRetryAfterHonored(t *testing.T) {
	c := testClient("")
	if d := c.backoffFor(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("backoffFor with hint = %v, want 3s", d)
	}
	if d := c.backoffFor(2, 0); d != 4*time.Millisecond {
		t.Fatalf("backoffFor(2) = %v, want 4ms (1ms << 2)", d)
	}
	if d := c.backoffFor(30, 0); d != 5*time.Second {
		t.Fatalf("backoffFor cap = %v, want 5s", d)
	}
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"2"}}}
	if d := retryAfterOf(resp); d != 2*time.Second {
		t.Fatalf("retryAfterOf = %v, want 2s", d)
	}
	if d := retryAfterOf(&http.Response{Header: http.Header{}}); d != 0 {
		t.Fatalf("retryAfterOf without header = %v, want 0", d)
	}
}

// TestClientSubmitRidesOutBackpressure: 429s and 503s are retried
// until the server admits the job; the Retry-After header is consumed
// from the transient response.
func TestClientSubmitRidesOutBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0") // parses to 0: falls back to BaseBackoff
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full; retry later"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-000007"}`)
		}
	}))
	defer ts.Close()
	id, err := testClient(ts.URL).Submit(context.Background(), validSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id != "job-000007" || calls.Load() != 3 {
		t.Fatalf("id=%s after %d calls, want job-000007 after 3", id, calls.Load())
	}
}

// TestClientSubmitSurfacesRealErrors: a 400 is an answer, not a
// transient — no retry.
func TestClientSubmitSurfacesRealErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"invalid spec"}`)
	}))
	defer ts.Close()
	if _, err := testClient(ts.URL).Submit(context.Background(), validSpec()); err == nil {
		t.Fatal("bad request did not surface")
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load())
	}
}

// TestClientFollowResumesFromOffset: when the stream drops mid-job the
// client reconnects with ?from= past the lines it already has — no
// replay, no gap — and keeps going until the terminal line.
func TestClientFollowResumesFromOffset(t *testing.T) {
	line := func(state string, done int) string {
		b, err := json.Marshal(JobStatus{ID: "job-000001", State: state, TrialsDone: int64(done), TrialsTotal: 4})
		if err != nil {
			t.Fatal(err)
		}
		return string(b) + "\n"
	}
	log := []string{line("queued", 0), line("running", 1), line("running", 2), line("running", 4), line("done", 4)}
	var gotFrom []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, err := strconv.Atoi(r.URL.Query().Get("from"))
		if err != nil {
			t.Errorf("stream called without a numeric from: %q", r.URL.RawQuery)
			from = 0
		}
		gotFrom = append(gotFrom, from)
		// First connection: two lines, then the server "crashes" (the
		// response just ends). Second connection: the rest.
		end := len(log)
		if len(gotFrom) == 1 {
			end = 2
		}
		for i := from; i < end; i++ {
			fmt.Fprint(w, log[i])
		}
	}))
	defer ts.Close()

	var buf bytes.Buffer
	st, err := testClient(ts.URL).Follow(context.Background(), "job-000001", &buf)
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if st.State != "done" || st.TrialsDone != 4 {
		t.Fatalf("final status %s/%d, want done/4", st.State, st.TrialsDone)
	}
	if len(gotFrom) != 2 || gotFrom[0] != 0 || gotFrom[1] != 2 {
		t.Fatalf("stream offsets %v, want [0 2]", gotFrom)
	}
	if got, want := buf.String(), joinLines(log); got != want {
		t.Fatalf("followed lines:\n%q\nwant:\n%q", got, want)
	}
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString(l)
	}
	return b.String()
}

// TestClientRunEndToEnd drives the whole helper against a real server:
// submit → follow → result, and the result bytes match a direct GET.
func TestClientRunEndToEnd(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	spec.Trials = 4
	var buf bytes.Buffer
	st, res, err := testClient(ts.URL).Run(context.Background(), spec, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("final state %s (%s)", st.State, st.Error)
	}
	waitDone(t, s, st.ID)
	if want := fetchResult(t, ts, st.ID); !bytes.Equal(res, want) {
		t.Fatal("client result differs from a direct GET")
	}
	if buf.Len() == 0 {
		t.Fatal("no progress lines reached the writer")
	}
}

// TestClientRunReportsTypedFailure: a failed job is an answer — Run
// returns its status (typed reason intact) with no error and no
// result.
func TestClientRunReportsTypedFailure(t *testing.T) {
	_, ts := testServer(t, Config{})
	slow := validSpec()
	slow.Graph = GraphSpec{Family: "random", N: 4000, M: 12000, Seed: 3}
	slow.Trials = MaxTrials
	slow.TimeoutMS = 30
	st, res, err := testClient(ts.URL).Run(context.Background(), slow, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.State != "failed" || st.Reason != ReasonDeadline || res != nil {
		t.Fatalf("state=%s reason=%s res=%v, want failed/deadline/nil", st.State, st.Reason, res)
	}
}
