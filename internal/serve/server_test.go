package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer starts a scheduler + httptest frontend and tears both
// down with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec any) (int, map[string]any, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func getJSON(t *testing.T, url string, code int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != code {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, want %d (%s)", url, resp.StatusCode, code, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitDone blocks until the job reaches a terminal state.
func waitDone(t *testing.T, s *Server, id string) {
	t.Helper()
	j := s.job(id)
	if j == nil {
		t.Fatalf("no such job %s", id)
	}
	select {
	case <-j.finished:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d (%s)", resp.StatusCode, b)
	}
	return b
}

// The service's core contract: resubmitting a spec returns
// byte-identical result JSON, with the second job's substrate served
// from the cache — and the cache hit is visible only in the job
// status, never in the result.
func TestResultBytesIdenticalAcrossSubmissions(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	spec.Trials = 4
	spec.Faults = &FaultSpec{Drop: 0.05, Dup: 0.02, Downs: 2}

	var results [2][]byte
	for i := 0; i < 2; i++ {
		code, out, _ := postSpec(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%v)", i, code, out)
		}
		id := out["id"].(string)
		waitDone(t, s, id)
		status := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
		if status["state"] != "done" {
			t.Fatalf("job %s state = %v (%v)", id, status["state"], status["error"])
		}
		if cached := status["substrate_cached"]; cached != (i == 1) {
			t.Fatalf("submission %d: substrate_cached = %v, want %v", i, cached, i == 1)
		}
		results[i] = fetchResult(t, ts, id)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("resubmitted spec returned different result bytes")
	}
	if bytes.Contains(results[0], []byte("substrate_cached")) {
		t.Fatal("cache-hit flag leaked into the result payload")
	}
	var res Result
	if err := json.Unmarshal(results[0], &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 || res.Aggregate.Trials != 4 {
		t.Fatalf("result has %d trial rows, aggregate says %d, want 4", len(res.Trials), res.Aggregate.Trials)
	}
	if !res.Aggregate.AllSpan || res.Aggregate.SumComm <= 0 {
		t.Fatalf("implausible aggregate: %+v", res.Aggregate)
	}
	if len(res.Metrics) == 0 {
		t.Fatal("trial-0 metrics export missing from result")
	}
	cache := getJSON(t, ts.URL+"/api/v1/cache", http.StatusOK)
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) != 1 {
		t.Fatalf("cache stats: %v", cache)
	}
}

// Sharded specs must produce the same trial rows as serial ones (the
// engines are byte-identical); only the substrate key differs.
func TestShardedMatchesSerial(t *testing.T) {
	s, ts := testServer(t, Config{})
	type variant struct{ shards int }
	var rows [2]json.RawMessage
	for i, v := range []variant{{0}, {4}} {
		spec := validSpec()
		spec.Experiment = "ghs"
		spec.Shards = v.shards
		_, out, _ := postSpec(t, ts, spec)
		id := out["id"].(string)
		waitDone(t, s, id)
		var res struct {
			Trials    json.RawMessage `json:"trials"`
			Aggregate json.RawMessage `json:"aggregate"`
		}
		if err := json.Unmarshal(fetchResult(t, ts, id), &res); err != nil {
			t.Fatal(err)
		}
		rows[i] = res.Trials
	}
	if !bytes.Equal(rows[0], rows[1]) {
		t.Fatal("sharded trial rows differ from serial")
	}
}

// Backpressure: with no scheduler draining and a capacity-1 queue, the
// second submission bounces with 429 + Retry-After, and a bogus spec
// is rejected outright.
func TestSubmitBackpressureAndValidation(t *testing.T) {
	s := New(Config{QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, _ := postSpec(t, ts, validSpec())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	code, out, hdr := postSpec(t, ts, validSpec())
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if out["queue_depth"].(float64) != 1 {
		t.Fatalf("429 body: %v", out)
	}

	code, out, _ = postSpec(t, ts, map[string]any{"experiment": "nope", "graph": map[string]any{"family": "ring", "n": 4}})
	if code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "unknown experiment") {
		t.Fatalf("bad spec: %d %v", code, out)
	}
	code, out, _ = postSpec(t, ts, map[string]any{"experiment": "flood", "bogus_field": 1})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %v", code, out)
	}

	// Result for the still-queued job is a 409, not a hang.
	st := getJSON(t, ts.URL+"/api/v1/jobs/job-000001/result", http.StatusConflict)
	if !strings.Contains(st["error"].(string), "queued") {
		t.Fatalf("conflict body: %v", st)
	}

	// Drain without a scheduler: the queued job fails rather than
	// dangling, and later submissions get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st = getJSON(t, ts.URL+"/api/v1/jobs/job-000001", http.StatusOK)
	if st["state"] != "failed" {
		t.Fatalf("post-drain state = %v, want failed", st["state"])
	}
	code, _, _ = postSpec(t, ts, validSpec())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", code)
	}
}

// The NDJSON stream terminates with the job's terminal status.
func TestStream(t *testing.T) {
	s, ts := testServer(t, Config{StreamInterval: 20 * time.Millisecond})
	spec := validSpec()
	spec.Trials = 8
	_, out, _ := postSpec(t, ts, spec)
	id := out["id"].(string)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var last JobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream emitted nothing")
	}
	if last.State != "done" || last.TrialsDone != 8 || last.TrialsTotal != 8 {
		t.Fatalf("terminal stream line: %+v", last)
	}
	_ = s
}

// TestDrainWhileStreaming: Drain racing a live NDJSON stream must
// terminate the stream with a terminal status line rather than leave
// the handler parked, and the post-drain status must agree with the
// stream's last line. Under -race — the nightly CI mode — this covers
// the scheduler-goroutine/handler hand-off on the Job's atomics and
// the runCtx/finished shutdown ordering in handleStream.
func TestDrainWhileStreaming(t *testing.T) {
	s := New(Config{StreamInterval: 2 * time.Millisecond})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := validSpec()
	spec.Trials = 512 // enough work that the drain deadline can cut the sweep off
	_, out, _ := postSpec(t, ts, spec)
	id := out["id"].(string)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type streamEnd struct {
		last  JobStatus
		lines int
		err   error
	}
	endCh := make(chan streamEnd, 1)
	go func() {
		var end streamEnd
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			end.lines++
			if err := json.Unmarshal(sc.Bytes(), &end.last); err != nil {
				end.err = fmt.Errorf("line %d: %w (%s)", end.lines, err, sc.Text())
				break
			}
		}
		if end.err == nil {
			end.err = sc.Err()
		}
		endCh <- end
	}()

	// Let a few status lines flow, then pull the plug with a deadline
	// short enough that an unfinished sweep gets cancelled mid-flight.
	// Either outcome — the job squeaked through (done) or was cut off
	// (failed) — is a valid terminal state; what may not happen is a
	// hung stream or a non-terminal last line.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	drainErr := s.Drain(ctx)

	var end streamEnd
	select {
	case end = <-endCh:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after drain")
	}
	if end.err != nil {
		t.Fatal(end.err)
	}
	if end.lines == 0 {
		t.Fatal("stream emitted nothing")
	}
	if end.last.State != "done" && end.last.State != "failed" {
		t.Fatalf("stream ended on non-terminal state %q (drain err: %v)", end.last.State, drainErr)
	}
	st := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
	if st["state"] != end.last.State {
		t.Fatalf("post-drain status %v disagrees with stream terminal line %q", st["state"], end.last.State)
	}
}

// A job whose sweep errors reports failed with the cause, and its
// result endpoint returns 500.
func TestJobFailure(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := validSpec()
	spec.EventLimit = 10 // guaranteed to trip
	_, out, _ := postSpec(t, ts, spec)
	id := out["id"].(string)
	waitDone(t, s, id)
	st := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
	if st["state"] != "failed" || !strings.Contains(st["error"].(string), "trial") {
		t.Fatalf("status: %v", st)
	}
	getJSON(t, ts.URL+"/api/v1/jobs/"+id+"/result", http.StatusInternalServerError)
}

// Every experiment kind the schema names runs end to end through the
// service.
func TestAllExperimentKinds(t *testing.T) {
	s, ts := testServer(t, Config{})
	for kind := range experimentKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			spec := Spec{
				Experiment: kind,
				Graph: GraphSpec{Family: "random", N: 16, M: 40,
					Weights: WeightSpec{Kind: "uniform", Max: 16, Seed: 5}, Seed: 5},
				Trials: 2,
			}
			code, out, _ := postSpec(t, ts, spec)
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d (%v)", code, out)
			}
			id := out["id"].(string)
			waitDone(t, s, id)
			st := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
			if st["state"] != "done" {
				t.Fatalf("%s: state %v (%v)", kind, st["state"], st["error"])
			}
			var res Result
			if err := json.Unmarshal(fetchResult(t, ts, id), &res); err != nil {
				t.Fatal(err)
			}
			if res.Aggregate.SumMessages <= 0 {
				t.Fatalf("%s: no traffic recorded: %+v", kind, res.Aggregate)
			}
		})
	}
}

// listing returns jobs in creation order with dense IDs.
func TestJobList(t *testing.T) {
	s, ts := testServer(t, Config{})
	for i := 0; i < 3; i++ {
		spec := validSpec()
		spec.Seed = int64(i + 1)
		postSpec(t, ts, spec)
	}
	out := getJSON(t, ts.URL+"/api/v1/jobs", http.StatusOK)
	jobs := out["jobs"].([]any)
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i, j := range jobs {
		want := fmt.Sprintf("job-%06d", i+1)
		if id := j.(map[string]any)["id"]; id != want {
			t.Fatalf("job %d id = %v, want %s", i, id, want)
		}
	}
	_ = s
}
