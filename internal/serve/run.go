package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"costsense/internal/basic"
	"costsense/internal/connect"
	"costsense/internal/graph"
	"costsense/internal/harness"
	"costsense/internal/mst"
	"costsense/internal/obs"
	"costsense/internal/reliable"
	"costsense/internal/sim"
)

// ClassRow is one message class's cost share in a trial, in class-name
// order.
type ClassRow struct {
	Class    string `json:"class"`
	Messages int64  `json:"messages"`
	Comm     int64  `json:"comm"`
}

// TrialRow is the scalar outcome of one trial — everything in
// sim.Stats that serializes deterministically, keyed by trial index.
type TrialRow struct {
	Trial       int        `json:"trial"`
	Seed        int64      `json:"seed"`
	Messages    int64      `json:"messages"`
	Comm        int64      `json:"comm"`
	Time        int64      `json:"time"`
	Events      int64      `json:"events"`
	Dropped     int64      `json:"dropped,omitempty"`
	Duplicated  int64      `json:"duplicated,omitempty"`
	DeadLetters int64      `json:"dead_letters,omitempty"`
	Timers      int64      `json:"timers,omitempty"`
	UsedWeight  int64      `json:"used_weight"`
	Spans       bool       `json:"spans"`
	ByClass     []ClassRow `json:"by_class"`
}

// SubstrateInfo identifies the substrate a result ran on.
type SubstrateInfo struct {
	Key         string `json:"key"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	TotalWeight int64  `json:"total_weight"` // 𝓔
	MSTWeight   int64  `json:"mst_weight"`   // 𝓥
}

// Aggregate sums the sweep. All fields are order-independent
// reductions over the trial rows, so they are deterministic even
// though trials complete in scheduler order.
type Aggregate struct {
	Trials      int   `json:"trials"`
	SumMessages int64 `json:"sum_messages"`
	SumComm     int64 `json:"sum_comm"`
	MaxTime     int64 `json:"max_time"`
	SumEvents   int64 `json:"sum_events"`
	AllSpan     bool  `json:"all_span"`
}

// Result is a finished job's payload: the normalized spec it ran, the
// substrate identity, per-trial rows in index order, the sweep
// aggregate, and the full obs metrics export of trial 0. It is a pure
// function of the spec — resubmitting a spec returns byte-identical
// bytes whether or not the substrate was cached.
type Result struct {
	Spec      Spec            `json:"spec"`
	Substrate SubstrateInfo   `json:"substrate"`
	Aggregate Aggregate       `json:"aggregate"`
	Trials    []TrialRow      `json:"trials"`
	Metrics   json.RawMessage `json:"metrics"`
}

// delayModel resolves a normalized delay name.
func delayModel(name string) sim.DelayModel {
	switch name {
	case "unit":
		return sim.DelayUnit{}
	case "uniform":
		return sim.DelayUniform{}
	}
	return sim.DelayMax{}
}

// runExperiment dispatches a normalized experiment kind and returns
// the run's Stats.
func runExperiment(kind string, g *graph.Graph, root graph.NodeID, opts []sim.Option) (*sim.Stats, error) {
	switch kind {
	case "flood":
		r, err := basic.RunFlood(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "dfs":
		r, err := basic.RunDFS(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "mstcentr":
		r, err := basic.RunMSTCentr(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "sptcentr":
		r, err := basic.RunSPTCentr(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "conhybrid":
		r, err := connect.RunCONHybrid(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "ghs":
		r, err := mst.RunGHS(g, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "mstfast":
		r, err := mst.RunMSTFast(g, opts...)
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	case "msthybrid":
		r, err := mst.RunMSTHybrid(g, root, opts...)
		if err != nil {
			return nil, err
		}
		return r.Result.Stats, nil
	}
	return nil, fmt.Errorf("serve: unknown experiment %q", kind)
}

// newTrialRow flattens a run's Stats into a TrialRow. It reads
// everything it needs immediately — with pooled networks the *Stats is
// invalidated by the worker's next trial.
func newTrialRow(trial int, seed int64, g *graph.Graph, st *sim.Stats) TrialRow {
	row := TrialRow{
		Trial:       trial,
		Seed:        seed,
		Messages:    st.Messages,
		Comm:        st.Comm,
		Time:        st.FinishTime,
		Events:      st.Events,
		Dropped:     st.Dropped,
		Duplicated:  st.Duplicated,
		DeadLetters: st.DeadLetters,
		Timers:      st.Timers,
		UsedWeight:  st.UsedWeight(g),
		Spans:       st.UsedSpans(g),
	}
	classes := make([]string, 0, len(st.ByClass))
	//costsense:nondet-ok collects keys only; sorted before any output below
	for c := range st.ByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	row.ByClass = make([]ClassRow, 0, len(classes))
	for _, c := range classes {
		cs := st.ByClass[sim.Class(c)]
		row.ByClass = append(row.ByClass, ClassRow{Class: c, Messages: cs.Messages, Comm: cs.Comm})
	}
	return row
}

// runSpec executes a normalized spec's sweep on a cached substrate and
// assembles its Result. Trials fan out on the harness worker pool;
// each worker owns a sim.Pool so consecutive trials on that worker
// reuse one network allocation (the Reset golden contract keeps the
// results byte-identical to fresh networks). Trial 0 additionally
// carries the obs metrics observer, whose JSON export is embedded in
// the result.
//
// Cancelling ctx (a drain deadline at shutdown) aborts the sweep
// between trials and fails the job with the context error.
func runSpec(ctx context.Context, spec Spec, sub *Substrate, sink harness.Sink) (*Result, error) {
	g := sub.Graph()
	delay := delayModel(spec.Delay)
	root := graph.NodeID(spec.Root)

	// One fault plan per sweep, derived from the substrate and the
	// fault seed — every trial faces the same adversary while the run
	// seed varies.
	var plan sim.FaultPlan
	if f := spec.Faults; f != nil {
		plan = sim.RandomFaultPlan(g, f.Seed, f.Drop, f.Dup, f.Crashes, f.Downs, f.Horizon)
	}

	metrics := obs.NewMetrics(g)
	rows, err := harness.RunIndexedPooled(ctx, spec.Trials,
		func() *sim.Pool { return sim.NewPool(2) },
		func(_ context.Context, pool *sim.Pool, i int) (TrialRow, error) {
			seed := spec.Seed + int64(i)
			opts := []sim.Option{
				sim.WithDelay(delay), sim.WithSeed(seed), sim.WithPool(pool),
			}
			if spec.EventLimit > 0 {
				opts = append(opts, sim.WithEventLimit(spec.EventLimit))
			}
			if spec.Shards > 1 {
				opts = append(opts, sim.WithShardAssignment(sub.ShardAssignment()))
			}
			if spec.Faults != nil {
				rel, _ := reliable.Install(reliable.Config{})
				opts = append(opts, sim.WithFaults(plan), rel)
			}
			if i == 0 {
				opts = append(opts, sim.WithObserver(metrics))
			}
			st, err := runExperiment(spec.Experiment, g, root, opts)
			if err != nil {
				return TrialRow{}, fmt.Errorf("trial %d (seed %d): %w", i, seed, err)
			}
			return newTrialRow(i, seed, g, st), nil
		}, sink)
	if err != nil {
		return nil, err
	}

	agg := Aggregate{Trials: len(rows), AllSpan: true}
	for _, r := range rows {
		agg.SumMessages += r.Messages
		agg.SumComm += r.Comm
		agg.SumEvents += r.Events
		if r.Time > agg.MaxTime {
			agg.MaxTime = r.Time
		}
		agg.AllSpan = agg.AllSpan && r.Spans
	}

	var metricsJSON bytes.Buffer
	if err := metrics.WriteJSON(&metricsJSON); err != nil {
		return nil, fmt.Errorf("serve: exporting trial-0 metrics: %w", err)
	}
	return &Result{
		Spec: spec,
		Substrate: SubstrateInfo{
			Key: sub.Key(), N: g.N(), M: g.M(),
			TotalWeight: sub.TotalWeight(), MSTWeight: sub.MSTWeight(),
		},
		Aggregate: agg,
		Trials:    rows,
		Metrics:   json.RawMessage(metricsJSON.Bytes()),
	}, nil
}
