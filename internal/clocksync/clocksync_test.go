package clocksync

import (
	"math"
	"testing"

	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/slt"
)

const testPulses = 12

func checkClockRun(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if err := res.CausalOK(g); err != nil {
		t.Fatal(err)
	}
	if res.Pulses != testPulses {
		t.Fatalf("Pulses = %d, want %d", res.Pulses, testPulses)
	}
	for v, ts := range res.Times {
		for p := 1; p < len(ts); p++ {
			if ts[p] <= ts[p-1] {
				t.Fatalf("node %d: pulse %d at %d not after pulse %d at %d", v, p+1, ts[p], p, ts[p-1])
			}
		}
	}
}

func TestAlphaStar(t *testing.T) {
	g := graph.HeavyChordRing(24, 200)
	res, err := RunAlphaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	checkClockRun(t, g, res)
	// α* delay is Θ(W): each pulse must wait for the heaviest edge.
	w := g.MaxWeight()
	if d := res.MaxDelay(); d < w || d > 3*w {
		t.Errorf("α* MaxDelay = %d, want ≈ W = %d", d, w)
	}
}

func TestBetaStar(t *testing.T) {
	g := graph.HeavyChordRing(24, 200)
	res, err := RunBetaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	checkClockRun(t, g, res)
	// β* delay is O(𝓓) (2·SLT depth).
	dd := graph.Diameter(g)
	if d := res.MaxDelay(); d > 12*dd {
		t.Errorf("β* MaxDelay = %d > 12𝓓 = %d", d, 12*dd)
	}
}

func TestGammaStar(t *testing.T) {
	g := graph.HeavyChordRing(32, 100000)
	res, err := RunGammaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	checkClockRun(t, g, res)
	// γ* delay is O(d log² n), crucially independent of W.
	d := graph.MaxNeighborDist(g)
	logn := math.Log2(float64(g.N()))
	bound := int64(20 * float64(d) * logn * logn)
	if got := res.MaxDelay(); got > bound {
		t.Errorf("γ* MaxDelay = %d > 20·d·log²n = %d", got, bound)
	}
	if got := res.MaxDelay(); got >= g.MaxWeight() {
		t.Errorf("γ* MaxDelay = %d should be << W = %d", got, g.MaxWeight())
	}
}

func TestGammaStarBeatsAlphaStarWhenDLLW(t *testing.T) {
	// §3's headline: when d << W, γ* improves the pulse delay by a
	// factor of ~W/(d·log²n).
	g := graph.HeavyChordRing(32, 100000)
	alpha, err := RunAlphaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := RunGammaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	if gamma.MaxDelay()*10 > alpha.MaxDelay() {
		t.Errorf("γ* delay %d should be at least 10x below α* delay %d",
			gamma.MaxDelay(), alpha.MaxDelay())
	}
}

func TestClockSyncFamilies(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(5, 5, graph.UniformWeights(8, 1))},
		{"random", graph.RandomConnected(30, 70, graph.UniformWeights(16, 2), 2)},
		{"path", graph.Path(12, graph.UniformWeights(5, 3))},
		{"complete", graph.Complete(10, graph.UniformWeights(30, 4))},
	}
	runners := []struct {
		name string
		run  func(*graph.Graph, int64, ...sim.Option) (*Result, error)
	}{
		{"alpha*", RunAlphaStar},
		{"beta*", RunBetaStar},
		{"gamma*", RunGammaStar},
	}
	for _, fam := range families {
		for _, r := range runners {
			t.Run(fam.name+"/"+r.name, func(t *testing.T) {
				res, err := r.run(fam.g, testPulses)
				if err != nil {
					t.Fatal(err)
				}
				checkClockRun(t, fam.g, res)
			})
		}
	}
}

func TestClockSyncUnderRandomDelays(t *testing.T) {
	g := graph.RandomConnected(20, 50, graph.UniformWeights(20, 5), 5)
	for seed := int64(0); seed < 5; seed++ {
		res, err := RunGammaStar(g, testPulses, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		checkClockRun(t, g, res)
	}
}

func TestPulseDelayMeasurement(t *testing.T) {
	r := &Result{Times: [][]int64{{2, 5, 11}, {3, 6, 9}}, Pulses: 3}
	if d := r.MaxDelay(); d != 6 {
		t.Fatalf("MaxDelay = %d, want 6 (11-5)", d)
	}
}

func TestBetaStarTreeAblation(t *testing.T) {
	// β* pulse delay follows the tree depth: the SLT's O(𝓓) beats the
	// MST's O(√n·𝓓) on the separation instance.
	g := graph.ShallowLightGap(64)
	hub := graph.NodeID(g.N() - 1)
	sltTree, _, err := slt.Build(g, hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	mstTree := graph.PrimTree(g, hub)
	overSLT, err := RunBetaStarTree(g, testPulses, sltTree)
	if err != nil {
		t.Fatal(err)
	}
	overMST, err := RunBetaStarTree(g, testPulses, mstTree)
	if err != nil {
		t.Fatal(err)
	}
	checkClockRun(t, g, overSLT)
	checkClockRun(t, g, overMST)
	if 2*overSLT.MaxDelay() > overMST.MaxDelay() {
		t.Errorf("β* over SLT (delay %d) should clearly beat β* over MST (delay %d)",
			overSLT.MaxDelay(), overMST.MaxDelay())
	}
}

func TestBetaStarTreeRejectsPartialTree(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights())
	partial := graph.NewTree(g, 0, []graph.NodeID{-1, 0, 1, -1})
	if _, err := RunBetaStarTree(g, 3, partial); err == nil {
		t.Fatal("non-spanning tree must be rejected")
	}
}

func TestGammaStarKSweep(t *testing.T) {
	// The Thm 1.1 trade surfacing in γ*: per-pulse traffic falls with
	// k while delay grows (deeper cover trees); causality holds at all k.
	g := graph.Grid(6, 6, graph.UniformWeights(10, 3))
	prevComm := int64(0)
	for _, k := range []int{2, 4, 8} {
		res, err := RunGammaStarK(g, testPulses, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkClockRun(t, g, res)
		if prevComm > 0 && res.Stats.Comm > 2*prevComm {
			t.Errorf("k=%d: per-run traffic %d grew sharply over %d", k, res.Stats.Comm, prevComm)
		}
		prevComm = res.Stats.Comm
	}
}

func TestGammaStarCongestionFactor(t *testing.T) {
	// Under capacitated links, edges shared by O(log n) cover trees
	// serialize their per-pulse traffic — the congestion log n of the
	// paper's O(d·log²n). The delay must grow versus the plain model
	// but stay far below W.
	g := graph.HeavyChordRing(64, 100_000)
	plain, err := RunGammaStar(g, testPulses)
	if err != nil {
		t.Fatal(err)
	}
	congested, err := RunGammaStar(g, testPulses, sim.WithCongestion())
	if err != nil {
		t.Fatal(err)
	}
	checkClockRun(t, g, congested)
	if congested.MaxDelay() < plain.MaxDelay() {
		t.Errorf("congestion cannot speed pulses up: %d vs %d",
			congested.MaxDelay(), plain.MaxDelay())
	}
	d := graph.MaxNeighborDist(g)
	logn := math.Log2(float64(g.N()))
	bound := int64(20 * float64(d) * logn * logn)
	if got := congested.MaxDelay(); got > bound {
		t.Errorf("congested γ* delay %d > 20·d·log²n = %d", got, bound)
	}
	if congested.MaxDelay() >= g.MaxWeight()/10 {
		t.Errorf("congested γ* delay %d should stay far below W", congested.MaxDelay())
	}
}
