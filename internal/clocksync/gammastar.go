package clocksync

import (
	"fmt"
	"sort"

	"costsense/internal/cover"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// gammaStarProc implements synchronizer γ* (§3.3). Each node belongs
// to the trees of a tree edge-cover; per pulse it runs a β*-style
// convergecast in every containing tree (phase 1), tree leaders
// announce completion down their trees, designated shared nodes relay
// the announcement into neighboring trees, and a leader releases the
// next pulse once its own tree and all neighboring trees are done
// (phase 2).
type gammaStarProc struct {
	pulses   int64
	trees    []int // trees containing this node
	parent   map[int]graph.NodeID
	children map[int][]graph.NodeID
	leaderOf map[int]bool
	// duties[src] lists destination trees whose leaders this node must
	// inform when tree src completes a pulse.
	duties map[int][]int
	// nbrCount[i] is, at the leader of tree i, the number of
	// neighboring trees.
	nbrCount map[int]int

	p          int64
	times      []int64
	childReady map[int]map[int64]int
	ownDone    map[int]map[int64]bool
	nbrDone    map[int]map[int64]int
	goRecv     map[int]map[int64]bool
}

var _ sim.Process = (*gammaStarProc)(nil)

func (g *gammaStarProc) pulseTimes() []int64 { return g.times }

func mp2[V any](trees []int) map[int]map[int64]V {
	m := make(map[int]map[int64]V, len(trees))
	for _, t := range trees {
		m[t] = make(map[int64]V)
	}
	return m
}

func (g *gammaStarProc) Init(ctx sim.Context) {
	g.childReady = mp2[int](g.trees)
	g.ownDone = mp2[bool](g.trees)
	g.nbrDone = mp2[int](g.trees)
	g.goRecv = mp2[bool](g.trees)
	g.generate(ctx)
}

func (g *gammaStarProc) generate(ctx sim.Context) {
	g.p++
	g.times = append(g.times, ctx.Now())
	ctx.Record("pulse", g.p)
	for _, ti := range g.trees {
		g.checkReady(ctx, ti, g.p)
	}
}

// checkReady is the phase-1 convergecast of tree ti for pulse p.
func (g *gammaStarProc) checkReady(ctx sim.Context, ti int, p int64) {
	if g.p < p || g.childReady[ti][p] != len(g.children[ti]) {
		return
	}
	if par := g.parent[ti]; par >= 0 {
		ctx.SendClass(par, MsgReady{Tree: ti, P: p}, sim.ClassSync)
		return
	}
	// Leader of ti: the tree is done with pulse p.
	g.onTreeDone(ctx, ti, p)
}

// onTreeDone handles the "tree ti done with p" broadcast at a member.
func (g *gammaStarProc) onTreeDone(ctx sim.Context, ti int, p int64) {
	if g.ownDone[ti][p] {
		return
	}
	g.ownDone[ti][p] = true
	for _, c := range g.children[ti] {
		ctx.SendClass(c, MsgTreeDone{Tree: ti, P: p}, sim.ClassSync)
	}
	// Relay duties: inform neighboring trees' leaders.
	for _, dst := range g.duties[ti] {
		g.sendNbrDone(ctx, dst, ti, p)
	}
	g.checkRelease(ctx, ti, p)
}

// sendNbrDone moves "tree src is done with p" one hop up tree dst.
func (g *gammaStarProc) sendNbrDone(ctx sim.Context, dst, src int, p int64) {
	if par := g.parent[dst]; par >= 0 {
		ctx.SendClass(par, MsgNbrDone{Tree: dst, Src: src, P: p}, sim.ClassSync)
		return
	}
	// This node leads dst.
	g.nbrDone[dst][p]++
	g.checkRelease(ctx, dst, p)
}

// checkRelease is phase 2 at the leader of tree ti.
func (g *gammaStarProc) checkRelease(ctx sim.Context, ti int, p int64) {
	if !g.leaderOf[ti] || !g.ownDone[ti][p] || g.nbrDone[ti][p] != g.nbrCount[ti] {
		return
	}
	if p < g.pulses {
		g.releaseGo(ctx, ti, p+1)
	}
}

// releaseGo propagates the pulse release down tree ti.
func (g *gammaStarProc) releaseGo(ctx sim.Context, ti int, p int64) {
	if g.goRecv[ti][p] {
		return
	}
	g.goRecv[ti][p] = true
	for _, c := range g.children[ti] {
		ctx.SendClass(c, MsgGo{Tree: ti, P: p}, sim.ClassSync)
	}
	g.tryGenerate(ctx)
}

func (g *gammaStarProc) tryGenerate(ctx sim.Context) {
	for g.p < g.pulses {
		next := g.p + 1
		for _, ti := range g.trees {
			if !g.goRecv[ti][next] {
				return
			}
		}
		g.generate(ctx)
	}
}

func (g *gammaStarProc) Handle(ctx sim.Context, _ graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgReady:
		g.childReady[msg.Tree][msg.P]++
		g.checkReady(ctx, msg.Tree, msg.P)
	case MsgTreeDone:
		g.onTreeDone(ctx, msg.Tree, msg.P)
	case MsgNbrDone:
		g.sendNbrDone(ctx, msg.Tree, msg.Src, msg.P)
	case MsgGo:
		g.releaseGo(ctx, msg.Tree, msg.P)
	default:
		panic(fmt.Sprintf("clocksync: γ* got %T", m))
	}
}

func runGammaStar(g *graph.Graph, tc *cover.TreeCover, pulses int64, opts ...sim.Option) (*Result, error) {
	n := g.N()
	nodes := make([]*gammaStarProc, n)
	for v := range nodes {
		nodes[v] = &gammaStarProc{
			pulses:   pulses,
			parent:   make(map[int]graph.NodeID),
			children: make(map[int][]graph.NodeID),
			leaderOf: make(map[int]bool),
			duties:   make(map[int][]int),
			nbrCount: make(map[int]int),
		}
	}
	for ti, tr := range tc.Trees {
		for _, v := range tr.Members() {
			nd := nodes[v]
			nd.trees = append(nd.trees, ti)
			nd.parent[ti] = tr.Parent[v]
			nd.children[ti] = tr.Children(v)
			if tr.Root == v {
				nd.leaderOf[ti] = true
			}
		}
	}
	// Neighboring trees and designated relays: for each unordered pair
	// of trees sharing a vertex, the smallest shared vertex relays the
	// done-announcement in both directions.
	for i := range tc.Trees {
		for j := i + 1; j < len(tc.Trees); j++ {
			var shared []graph.NodeID
			for _, v := range tc.Trees[i].Members() {
				if tc.Trees[j].Contains(v) {
					shared = append(shared, v)
				}
			}
			if len(shared) == 0 {
				continue
			}
			sort.Slice(shared, func(a, b int) bool { return shared[a] < shared[b] })
			relay := nodes[shared[0]]
			relay.duties[i] = append(relay.duties[i], j)
			relay.duties[j] = append(relay.duties[j], i)
			nodes[tc.Trees[i].Root].nbrCount[i]++
			nodes[tc.Trees[j].Root].nbrCount[j]++
		}
	}
	procs := make([]sim.Process, n)
	ps := make([]pulseTimes, n)
	for v := range procs {
		if len(nodes[v].trees) == 0 {
			return nil, fmt.Errorf("clocksync: node %d belongs to no cover tree", v)
		}
		procs[v] = nodes[v]
		ps[v] = nodes[v]
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	return gather(ps, pulses, stats)
}
