// Package clocksync implements the clock synchronization methods of §3
// of the paper: each node must generate a sequence of pulses such that
// pulse p at a node is generated causally after all its neighbors
// generated pulse p-1. The figure of merit is the *pulse delay* [ER90]:
// the maximal time between two successive pulses at a node.
//
//	α* — exchange pulse tokens over every edge: delay O(W);
//	β* — convergecast/broadcast on a spanning (shallow-light) tree:
//	     delay O(𝓓);
//	γ* — the paper's contribution: a tree edge-cover (Def 3.1) of
//	     depth O(d log n); β* inside every tree plus a done-relay
//	     between neighboring trees gives delay O(d·log²n) — an
//	     arbitrarily large improvement when d << W.
//
// The simulator's links are congestion-free (a message always takes
// w(e) regardless of load), so the measured γ* delay tracks O(d log n);
// the extra log n of the paper is the congestion factor of edges shared
// by O(log n) trees.
package clocksync

import (
	"fmt"

	"costsense/internal/cover"
	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/slt"
)

// Clock synchronizer messages.
type (
	// MsgPulse carries "I generated pulse P" over one edge (α*).
	MsgPulse struct{ P int64 }
	// MsgReady converges "subtree generated pulse P" toward a tree
	// leader (β*, γ* phase 1). Tree is the tree index (γ*).
	MsgReady struct {
		Tree int
		P    int64
	}
	// MsgGo releases pulse P down a tree (β*, γ*).
	MsgGo struct {
		Tree int
		P    int64
	}
	// MsgTreeDone broadcasts "tree Tree finished pulse P" down that
	// tree so members can relay it to neighboring trees (γ*).
	MsgTreeDone struct {
		Tree int
		P    int64
	}
	// MsgNbrDone carries "tree Src is done with P" up tree Tree toward
	// its leader (γ* phase 2).
	MsgNbrDone struct {
		Tree int
		Src  int
		P    int64
	}
)

// Result holds the pulse trace of a clock synchronization run.
type Result struct {
	// Times[v][p-1] is the generation time of pulse p at node v.
	Times [][]int64
	// Pulses is the number of pulses generated per node.
	Pulses int64
	Stats  *sim.Stats
}

// MaxDelay returns the pulse delay: the maximum over nodes and pulses
// of the time between consecutive pulses (pulse 1 counted from 0).
func (r *Result) MaxDelay() int64 {
	var m int64
	for _, ts := range r.Times {
		prev := int64(0)
		for _, t := range ts {
			if d := t - prev; d > m {
				m = d
			}
			prev = t
		}
	}
	return m
}

// CausalOK verifies the §3 specification: pulse p at a node is
// generated no earlier than pulse p-1 at each of its neighbors.
func (r *Result) CausalOK(g *graph.Graph) error {
	for v := 0; v < g.N(); v++ {
		for _, h := range g.Adj(graph.NodeID(v)) {
			for p := 1; p < len(r.Times[v]); p++ {
				if r.Times[v][p] < r.Times[h.To][p-1] {
					return fmt.Errorf("clocksync: node %d pulse %d at t=%d precedes neighbor %d pulse %d at t=%d",
						v, p+1, r.Times[v][p], h.To, p, r.Times[h.To][p-1])
				}
			}
		}
	}
	return nil
}

func gather(procs []pulseTimes, pulses int64, stats *sim.Stats) (*Result, error) {
	res := &Result{Pulses: pulses, Stats: stats}
	for v, p := range procs {
		ts := p.pulseTimes()
		if int64(len(ts)) != pulses {
			return nil, fmt.Errorf("clocksync: node %d generated %d pulses, want %d", v, len(ts), pulses)
		}
		res.Times = append(res.Times, ts)
	}
	return res, nil
}

type pulseTimes interface{ pulseTimes() []int64 }

// alphaStarProc implements synchronizer α* (§3.1).
type alphaStarProc struct {
	pulses int64
	p      int64
	recv   map[int64]int
	times  []int64
}

var _ sim.Process = (*alphaStarProc)(nil)

func (a *alphaStarProc) pulseTimes() []int64 { return a.times }

func (a *alphaStarProc) generate(ctx sim.Context) {
	a.p++
	a.times = append(a.times, ctx.Now())
	ctx.Record("pulse", a.p)
	if a.p >= a.pulses {
		return
	}
	for _, h := range ctx.Neighbors() {
		ctx.SendClass(h.To, MsgPulse{P: a.p}, sim.ClassSync)
	}
}

func (a *alphaStarProc) tryNext(ctx sim.Context) {
	for a.p < a.pulses && a.recv[a.p] == len(ctx.Neighbors()) {
		a.generate(ctx)
	}
}

func (a *alphaStarProc) Init(ctx sim.Context) {
	a.recv = make(map[int64]int)
	a.generate(ctx)
}

func (a *alphaStarProc) Handle(ctx sim.Context, _ graph.NodeID, m sim.Message) {
	msg, ok := m.(MsgPulse)
	if !ok {
		panic(fmt.Sprintf("clocksync: α* got %T", m))
	}
	a.recv[msg.P]++
	a.tryNext(ctx)
}

// RunAlphaStar generates the given number of pulses under α*.
func RunAlphaStar(g *graph.Graph, pulses int64, opts ...sim.Option) (*Result, error) {
	procs := make([]sim.Process, g.N())
	ps := make([]pulseTimes, g.N())
	for v := range procs {
		a := &alphaStarProc{pulses: pulses}
		procs[v] = a
		ps[v] = a
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	return gather(ps, pulses, stats)
}

// betaStarProc implements synchronizer β* (§3.2) over a given tree.
type betaStarProc struct {
	pulses   int64
	parent   graph.NodeID
	children []graph.NodeID

	p          int64
	childReady map[int64]int
	times      []int64
}

var _ sim.Process = (*betaStarProc)(nil)

func (b *betaStarProc) pulseTimes() []int64 { return b.times }

func (b *betaStarProc) generate(ctx sim.Context) {
	b.p++
	b.times = append(b.times, ctx.Now())
	ctx.Record("pulse", b.p)
	b.checkReady(ctx)
}

func (b *betaStarProc) checkReady(ctx sim.Context) {
	p := b.p
	if p == 0 || b.childReady[p] != len(b.children) {
		return
	}
	if b.parent >= 0 {
		ctx.SendClass(b.parent, MsgReady{P: p}, sim.ClassSync)
		return
	}
	if p < b.pulses {
		b.release(ctx, p+1)
	}
}

func (b *betaStarProc) release(ctx sim.Context, p int64) {
	for _, c := range b.children {
		ctx.SendClass(c, MsgGo{P: p}, sim.ClassSync)
	}
	b.generate(ctx)
}

func (b *betaStarProc) Init(ctx sim.Context) {
	b.childReady = make(map[int64]int)
	b.generate(ctx)
}

func (b *betaStarProc) Handle(ctx sim.Context, _ graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgReady:
		b.childReady[msg.P]++
		b.checkReady(ctx)
	case MsgGo:
		b.release(ctx, msg.P)
	default:
		panic(fmt.Sprintf("clocksync: β* got %T", m))
	}
}

// RunBetaStar generates pulses under β* over a shallow-light tree
// rooted at the graph center (pulse delay O(𝓓); an MST tree would pay
// O(n𝓓) — use RunBetaStarTree to ablate the choice).
func RunBetaStar(g *graph.Graph, pulses int64, opts ...sim.Option) (*Result, error) {
	_, center := graph.Radius(g)
	if center < 0 {
		return nil, fmt.Errorf("clocksync: graph is disconnected")
	}
	tree, _, err := slt.Build(g, center, 2)
	if err != nil {
		return nil, err
	}
	return RunBetaStarTree(g, pulses, tree, opts...)
}

// RunBetaStarTree runs β* over an explicit spanning tree.
func RunBetaStarTree(g *graph.Graph, pulses int64, tree *graph.Tree, opts ...sim.Option) (*Result, error) {
	if !tree.Spanning() {
		return nil, fmt.Errorf("clocksync: β* tree does not span")
	}
	procs := make([]sim.Process, g.N())
	ps := make([]pulseTimes, g.N())
	for v := range procs {
		b := &betaStarProc{
			pulses:   pulses,
			parent:   tree.Parent[v],
			children: tree.Children(graph.NodeID(v)),
		}
		procs[v] = b
		ps[v] = b
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	return gather(ps, pulses, stats)
}

// RunGammaStar generates pulses under γ* (§3.3) over a tree edge-cover
// built with k = ceil(log2 n), the Lemma 3.2 setting.
func RunGammaStar(g *graph.Graph, pulses int64, opts ...sim.Option) (*Result, error) {
	tc := cover.NewTreeCover(g)
	return runGammaStar(g, tc, pulses, opts...)
}

// RunGammaStarK runs γ* over a tree edge-cover coarsened with an
// explicit parameter k, exposing the Thm 1.1 radius/degree trade for
// ablation: small k gives shallow trees but high edge congestion,
// large k the reverse.
func RunGammaStarK(g *graph.Graph, pulses int64, k int, opts ...sim.Option) (*Result, error) {
	tc := cover.NewTreeCoverK(g, k)
	return runGammaStar(g, tc, pulses, opts...)
}
