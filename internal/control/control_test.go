package control

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// makeFlood builds one FloodProc per vertex (a correct diffusing
// computation with c_π <= 2𝓔).
func makeFlood(g *graph.Graph, src graph.NodeID) ([]sim.Process, []*basic.FloodProc) {
	procs := make([]sim.Process, g.N())
	fl := make([]*basic.FloodProc, g.N())
	for v := range procs {
		fl[v] = &basic.FloodProc{Source: src}
		procs[v] = fl[v]
	}
	return procs, fl
}

func TestControllerPreservesCorrectExecution(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(20, 3), 3)
	// Reference: uncontrolled flood.
	refProcs, refFl := makeFlood(g, 0)
	if _, err := sim.Run(g, refProcs); err != nil {
		t.Fatal(err)
	}
	// The flood's weighted cost varies with the schedule (the skipped
	// parent edge differs), so the threshold must be the schedule-free
	// worst case c_π <= 2𝓔 (at most one message per edge direction).
	cpi := 2 * g.TotalWeight()

	ctlProcs, ctlFl := makeFlood(g, 0)
	res, _, err := Run(g, ctlProcs, 0, cpi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatal("correct execution must not exhaust a threshold of c_π")
	}
	for v := range ctlFl {
		if ctlFl[v].Got != refFl[v].Got {
			t.Fatalf("node %d reachability differs under controller", v)
		}
	}
	// Permit waits reshuffle arrival order, so the flood tree (and with
	// it the exact weighted cost) may differ; the budget still binds.
	if res.Consumed > cpi {
		t.Errorf("controlled consumption %d exceeds threshold c_π = %d", res.Consumed, cpi)
	}
}

// echoProc is a timing-independent diffusing computation: a token walks
// a fixed path and back, so its trace is identical under any permit
// schedule.
type echoProc struct {
	hops int
	// Seen is the number of times the token visited this node.
	Seen int
}

func (e *echoProc) Init(ctx sim.Context) {
	if ctx.ID() == 0 && e.hops > 0 {
		e.Seen++
		ctx.Send(1, e.hops-1)
	}
}

func (e *echoProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	e.Seen++
	hops, _ := m.(int)
	if hops == 0 {
		return
	}
	next := from // bounce back by default
	if ctx.ID() != 0 && int(ctx.ID()) < ctx.Graph().N()-1 && from < ctx.ID() {
		next = ctx.ID() + 1 // keep walking forward
	}
	ctx.Send(next, hops-1)
}

func TestControllerExactSemanticsOnDeterministicProtocol(t *testing.T) {
	g := graph.Path(8, graph.ConstWeights(3))
	mk := func() ([]sim.Process, []*echoProc) {
		ps := make([]sim.Process, g.N())
		es := make([]*echoProc, g.N())
		for v := range ps {
			es[v] = &echoProc{hops: 10}
			ps[v] = es[v]
		}
		return ps, es
	}
	refP, refE := mk()
	ref, err := sim.Run(g, refP)
	if err != nil {
		t.Fatal(err)
	}
	ctlP, ctlE := mk()
	res, _, err := Run(g, ctlP, 0, ref.Comm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatal("deterministic protocol within threshold must not exhaust")
	}
	if res.Consumed != ref.Comm {
		t.Errorf("consumption %d, want exactly %d", res.Consumed, ref.Comm)
	}
	for v := range refE {
		if refE[v].Seen != ctlE[v].Seen {
			t.Errorf("node %d token visits %d vs %d", v, ctlE[v].Seen, refE[v].Seen)
		}
	}
}

func TestControllerOverheadWithinCorollary51(t *testing.T) {
	// Cor 5.1: c_φ = O(c_π·log² c_π). Check the control overhead on the
	// flood workload across graph families.
	families := []*graph.Graph{
		graph.RandomConnected(40, 100, graph.UniformWeights(16, 7), 7),
		graph.Grid(6, 6, graph.UniformWeights(8, 8)),
		graph.Path(40, graph.UniformWeights(12, 9)),
	}
	for _, g := range families {
		cpi := 2 * g.TotalWeight() // schedule-free flood bound
		procs2, _ := makeFlood(g, 0)
		res, _, err := Run(g, procs2, 0, cpi)
		if err != nil {
			t.Fatal(err)
		}
		log2c := math.Log2(float64(cpi))
		bound := int64(4 * float64(cpi) * log2c * log2c)
		if res.Stats.Comm > bound {
			t.Errorf("controlled total comm %d > 4·c·log²c = %d (c=%d)", res.Stats.Comm, bound, cpi)
		}
	}
}

// bombProc is a runaway protocol: endless ping-pong.
type bombProc struct{ initiator graph.NodeID }

func (b *bombProc) Init(ctx sim.Context) {
	if ctx.ID() == b.initiator {
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "boom")
		}
	}
}

func (b *bombProc) Handle(ctx sim.Context, from graph.NodeID, _ sim.Message) {
	ctx.Send(from, "boom")
}

func TestControllerStopsRunaway(t *testing.T) {
	g := graph.Ring(10, graph.ConstWeights(3))
	procs := make([]sim.Process, g.N())
	for v := range procs {
		procs[v] = &bombProc{initiator: 0}
	}
	threshold := int64(500)
	res, _, err := Run(g, procs, 0, threshold, sim.WithEventLimit(5_000_000))
	if err != nil {
		t.Fatalf("runaway protocol not stopped: %v", err)
	}
	if !res.Exhausted {
		t.Error("runaway protocol should exhaust the budget")
	}
	if res.Consumed > threshold {
		t.Errorf("consumption %d exceeds threshold %d", res.Consumed, threshold)
	}
	// The total damage (protocol + control) is bounded too.
	log2c := math.Log2(float64(threshold))
	if res.Stats.Comm > int64(8*float64(threshold)*log2c*log2c) {
		t.Errorf("total comm %d not within O(threshold·log² threshold)", res.Stats.Comm)
	}
}

func TestControllerLowThresholdSuspendsWithoutOverrun(t *testing.T) {
	// Even a correct protocol is suspended when the threshold is below
	// its cost — the §5 semantics — but never overruns the budget.
	g := graph.Complete(12, graph.UniformWeights(10, 5))
	procs, _ := makeFlood(g, 0)
	ref, err := sim.Run(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	low := ref.Comm / 4
	procs2, _ := makeFlood(g, 0)
	res, _, err := Run(g, procs2, 0, low)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("threshold below c_π should exhaust")
	}
	if res.Consumed > low {
		t.Errorf("consumption %d exceeds low threshold %d", res.Consumed, low)
	}
}

func TestControllerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(15, seed), seed)
		src := graph.NodeID(rng.Intn(n))
		procs, fl := makeFlood(g, src)
		if _, err := sim.Run(g, procs); err != nil {
			return false
		}
		cpi := 2 * g.TotalWeight() // schedule-free flood bound
		procs2, fl2 := makeFlood(g, src)
		res, _, err := Run(g, procs2, src, cpi)
		if err != nil {
			t.Log(err)
			return false
		}
		if res.Exhausted || res.Consumed > cpi {
			return false
		}
		for v := range fl {
			if fl[v].Got != fl2[v].Got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiInitiatorControl(t *testing.T) {
	// Two floods from opposite corners of a grid, each controlled by
	// its own initiator budget (§5's multiple-initiator extension).
	g := graph.Grid(6, 6, graph.UniformWeights(8, 21))
	far := graph.NodeID(g.N() - 1)
	inner := make([]sim.Process, g.N())
	fl := make([]*twoSourceFlood, g.N())
	for v := range inner {
		fl[v] = &twoSourceFlood{a: 0, b: far}
		inner[v] = fl[v]
	}
	// Calibrate: plain run of the same protocol.
	ref, err := sim.Run(g, inner)
	if err != nil {
		t.Fatal(err)
	}
	inner2 := make([]sim.Process, g.N())
	fl2 := make([]*twoSourceFlood, g.N())
	for v := range inner2 {
		fl2[v] = &twoSourceFlood{a: 0, b: far}
		inner2[v] = fl2[v]
	}
	res, _, err := RunMulti(g, inner2, []graph.NodeID{0, far}, ref.Comm, sim.WithEventLimit(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatal("budgets of c_pi each should suffice for two initiators")
	}
	for v := range fl2 {
		if fl2[v].gotA != fl[v].gotA || fl2[v].gotB != fl[v].gotB {
			t.Fatalf("node %d reachability differs under multi-initiator control", v)
		}
	}
	if res.Consumed > 2*ref.Comm {
		t.Fatalf("consumption %d exceeds the combined budget %d", res.Consumed, 2*ref.Comm)
	}
}

func TestMultiInitiatorErrors(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights())
	inner := []sim.Process{idleCtl{}, idleCtl{}, idleCtl{}}
	if _, _, err := RunMulti(g, inner, nil, 10); err == nil {
		t.Error("no initiators should error")
	}
	if _, _, err := RunMulti(g, inner, []graph.NodeID{7}, 10); err == nil {
		t.Error("out-of-range initiator should error")
	}
}

type idleCtl struct{}

func (idleCtl) Init(sim.Context)                              {}
func (idleCtl) Handle(sim.Context, graph.NodeID, sim.Message) {}

// twoSourceFlood floods two tokens from two sources.
type twoSourceFlood struct {
	a, b       graph.NodeID
	gotA, gotB bool
}

func (f *twoSourceFlood) Init(ctx sim.Context) {
	if ctx.ID() == f.a {
		f.gotA = true
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "a")
		}
	}
	if ctx.ID() == f.b {
		f.gotB = true
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "b")
		}
	}
}

func (f *twoSourceFlood) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	tok, _ := m.(string)
	if tok == "a" && !f.gotA {
		f.gotA = true
		for _, h := range ctx.Neighbors() {
			if h.To != from {
				ctx.Send(h.To, "a")
			}
		}
	}
	if tok == "b" && !f.gotB {
		f.gotB = true
		for _, h := range ctx.Neighbors() {
			if h.To != from {
				ctx.Send(h.To, "b")
			}
		}
	}
}
