// Package control implements the controller of §5 (after [AAPS87]): a
// protocol transformer that makes a diffusing computation "controlled"
// — identical semantics on correct inputs, but bounded resource
// consumption even when the protocol misbehaves.
//
// Every transmission of the inner protocol on edge e consumes w(e)
// units of an abstract resource and must be covered by permits. The
// permits live in per-node pools; shortfalls are requested up the
// execution tree (the tree of first-receipt edges, rooted at the
// initiator) and permits are granted downward, exactly as in the MAIN
// CONTROLLER of [AAPS87]. Requests carry the exact outstanding demand
// (the paper's aggregation-with-prefetch variant shaves the control
// overhead from O(c·depth) to O(c·log² c); our measured overhead on
// the evaluation workloads stays within the paper's O(c·log² c)
// envelope, which the tests assert). The root holds a budget equal to
// the threshold: a protocol whose correct cost c_π is at most the
// threshold completes unperturbed, while a runaway protocol is
// suspended — never exceeding the budget — once it is exhausted.
package control

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Controller messages.
type (
	// MsgWrapped carries one inner protocol message.
	MsgWrapped struct{ Inner sim.Message }
	// MsgRequest asks the parent for Amount resource units.
	MsgRequest struct{ Amount int64 }
	// MsgGrant delivers Amount resource units.
	MsgGrant struct{ Amount int64 }
)

type queuedSend struct {
	to   graph.NodeID
	m    sim.Message
	cost int64
}

// Proc wraps one node's process under the controller.
type Proc struct {
	Inner sim.Process
	// IsInitiator marks this node as a root of the diffusing
	// computation. The paper treats a single initiator and notes the
	// extension to multiple initiators is easy (§5): each initiator
	// roots its own execution tree with its own budget, and every
	// other node joins the tree whose message reaches it first.
	IsInitiator bool
	// Budget is the root's permit budget (initiators only).
	Budget int64

	// Consumed is the weighted cost of inner messages actually sent by
	// this node.
	Consumed int64
	// Exhausted is set at the root when a request could not be served.
	Exhausted bool

	joined    bool
	parent    graph.NodeID
	pool      int64
	queue     []queuedSend
	owed      map[graph.NodeID]int64
	owedOrder []graph.NodeID
	inFlight  int64 // amount requested from parent, not yet granted
}

var _ sim.Process = (*Proc)(nil)

// ctlCtx is the context handed to the inner protocol: sends are
// intercepted and metered.
type ctlCtx struct {
	p   *Proc
	ctx sim.Context
}

var _ sim.Context = (*ctlCtx)(nil)

func (c *ctlCtx) ID() graph.NodeID         { return c.ctx.ID() }
func (c *ctlCtx) Now() int64               { return c.ctx.Now() }
func (c *ctlCtx) Graph() *graph.Graph      { return c.ctx.Graph() }
func (c *ctlCtx) Neighbors() []graph.Half  { return c.ctx.Neighbors() }
func (c *ctlCtx) Record(k string, v int64) { c.ctx.Record(k, v) }

func (c *ctlCtx) Send(to graph.NodeID, m sim.Message) {
	cost := c.ctx.Graph().Weight(c.ctx.ID(), to)
	c.p.queue = append(c.p.queue, queuedSend{to: to, m: m, cost: cost})
	c.p.drain(c.ctx)
}

func (c *ctlCtx) SendClass(to graph.NodeID, m sim.Message, _ sim.Class) {
	c.Send(to, m) // all inner traffic is metered protocol traffic
}

// Init starts the inner protocol at the initiator.
func (p *Proc) Init(ctx sim.Context) {
	p.parent = -1
	p.owed = make(map[graph.NodeID]int64)
	if p.IsInitiator {
		p.joined = true
		p.pool = p.Budget
		p.Inner.Init(&ctlCtx{p: p, ctx: ctx})
		p.drain(ctx)
	}
}

// drain sends queued inner messages covered by the pool and requests
// the shortfall up the tree.
func (p *Proc) drain(ctx sim.Context) {
	for len(p.queue) > 0 && p.pool >= p.queue[0].cost {
		q := p.queue[0]
		p.queue = p.queue[1:]
		p.pool -= q.cost
		p.Consumed += q.cost
		ctx.Send(q.to, MsgWrapped{Inner: q.m})
	}
	// Serve owed children from any remaining pool.
	for len(p.owedOrder) > 0 && p.pool > 0 {
		ch := p.owedOrder[0]
		give := p.owed[ch]
		if give > p.pool {
			give = p.pool
		}
		p.pool -= give
		p.owed[ch] -= give
		if p.owed[ch] == 0 {
			delete(p.owed, ch)
			p.owedOrder = p.owedOrder[1:]
		}
		ctx.SendClass(ch, MsgGrant{Amount: give}, sim.ClassControl)
	}
	p.requestShortfall(ctx)
}

// shortfall is the uncovered demand at this node.
func (p *Proc) shortfall() int64 {
	var s int64
	for _, q := range p.queue {
		s += q.cost
	}
	//costsense:nondet-ok commutative sum over values; order cannot reach the result
	for _, amt := range p.owed {
		s += amt
	}
	return s - p.pool - p.inFlight
}

func (p *Proc) requestShortfall(ctx sim.Context) {
	s := p.shortfall()
	if s <= 0 {
		return
	}
	if p.IsInitiator {
		// Root out of budget: the execution is suspended here.
		p.Exhausted = true
		return
	}
	if !p.joined {
		return // cannot request before joining the execution tree
	}
	p.inFlight += s
	ctx.SendClass(p.parent, MsgRequest{Amount: s}, sim.ClassControl)
}

// Handle processes wrapped protocol traffic and permit flow.
func (p *Proc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgWrapped:
		if !p.joined {
			p.joined = true
			p.parent = from
		}
		p.Inner.Handle(&ctlCtx{p: p, ctx: ctx}, from, msg.Inner)
		p.drain(ctx)
	case MsgRequest:
		if _, ok := p.owed[from]; !ok {
			p.owedOrder = append(p.owedOrder, from)
		}
		p.owed[from] += msg.Amount
		p.drain(ctx)
	case MsgGrant:
		p.pool += msg.Amount
		p.inFlight -= msg.Amount
		p.drain(ctx)
	default:
		panic(fmt.Sprintf("control: got %T", m))
	}
}

// Result aggregates a controlled run.
type Result struct {
	Stats *sim.Stats
	// Consumed is the total weighted cost of inner messages sent.
	Consumed int64
	// Exhausted reports whether the root budget ran out (a runaway
	// protocol was stopped).
	Exhausted bool
	// ControlComm is the weighted cost of request/grant traffic.
	ControlComm int64
}

// Run executes the inner processes under the controller with a single
// initiator and the given threshold (the caller's bound on the correct
// execution cost c_π). Consumption never exceeds the threshold.
func Run(g *graph.Graph, inner []sim.Process, initiator graph.NodeID, threshold int64, opts ...sim.Option) (*Result, []*Proc, error) {
	return RunMulti(g, inner, []graph.NodeID{initiator}, threshold, opts...)
}

// RunMulti is the multiple-initiator extension mentioned in §5: each
// initiator roots its own execution tree and holds its own budget of
// `threshold` permits, so total consumption never exceeds
// len(initiators)·threshold.
func RunMulti(g *graph.Graph, inner []sim.Process, initiators []graph.NodeID, threshold int64, opts ...sim.Option) (*Result, []*Proc, error) {
	if len(inner) != g.N() {
		return nil, nil, fmt.Errorf("control: %d processes for %d vertices", len(inner), g.N())
	}
	if len(initiators) == 0 {
		return nil, nil, fmt.Errorf("control: need at least one initiator")
	}
	procs := make([]sim.Process, g.N())
	ctl := make([]*Proc, g.N())
	for v := range procs {
		ctl[v] = &Proc{Inner: inner[v]}
		procs[v] = ctl[v]
	}
	for _, init := range initiators {
		if init < 0 || int(init) >= g.N() {
			return nil, nil, fmt.Errorf("control: initiator %d out of range", init)
		}
		ctl[init].IsInitiator = true
		ctl[init].Budget = threshold
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		Stats:       stats,
		ControlComm: stats.CommOf(sim.ClassControl),
	}
	for _, c := range ctl {
		res.Consumed += c.Consumed
		if c.Exhausted {
			res.Exhausted = true
		}
	}
	return res, ctl, nil
}
