// Package reliable restores protocol correctness on faulty networks.
//
// The paper's protocols (and their analyses) assume reliable FIFO
// links: every message sent over e arrives, exactly once, in order,
// within w(e). WithFaults breaks all three guarantees — messages are
// lost, duplicated and dead-lettered. This package wraps any
// sim.Process with a per-link reliable-delivery shim: sequence-numbered
// envelopes, cumulative per-message acknowledgments, timeout-driven
// retransmission with capped exponential backoff, duplicate
// suppression, and in-order (resequenced) delivery. A wrapped protocol
// runs unmodified and observes exactly the reliable FIFO semantics it
// was written for — at a measurable cost in extra weighted
// communication and time, which is the point: the reliability overhead
// on top of the paper's fault-free bounds becomes an experimental
// quantity (see cmd/costsense exp chaos and EXPERIMENTS.md).
//
// Termination on fail-stop faults: a sender retransmits each message
// at most MaxRetries times, then gives up on it (the peer is presumed
// crashed). Every send therefore induces a bounded number of events,
// so a run over a terminating protocol always terminates — crashes
// degrade the result, never hang the run.
package reliable

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Config tunes the retransmission machinery. The zero value picks the
// defaults below; timeouts scale with the link weight w(e), the
// model's only notion of link latency.
type Config struct {
	// RTOFactor: the first retransmission fires after RTOFactor*w(e)
	// (covering the 2*w(e) round trip plus queueing). Default 4.
	RTOFactor int64
	// BackoffCap bounds the exponential backoff at BackoffCap*w(e).
	// Default 64.
	BackoffCap int64
	// MaxRetries is the number of retransmissions per message before
	// the sender gives up (peer presumed fail-stopped). Negative means
	// retry forever — then only the event-limit watchdog bounds a run
	// against a crashed peer. Default 10.
	MaxRetries int
}

func (c Config) withDefaults() Config {
	if c.RTOFactor <= 0 {
		c.RTOFactor = 4
	}
	if c.BackoffCap < c.RTOFactor {
		c.BackoffCap = 64
		if c.BackoffCap < c.RTOFactor {
			c.BackoffCap = c.RTOFactor
		}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	return c
}

// envData is the sequenced envelope carrying one protocol message over
// one directed link. Sequence numbers are per (sender, receiver) pair,
// starting at 1.
type envData struct {
	Seq     int64
	Payload sim.Message
}

// envAck acknowledges receipt of envData{Seq} (sent even for
// duplicates: the previous ack may have been lost).
type envAck struct{ Seq int64 }

// retxTimer is the self-addressed timeout message arming one pending
// transmission's retransmission check.
type retxTimer struct {
	To  graph.NodeID
	Seq int64
}

// pendingMsg is one unacknowledged transmission.
type pendingMsg struct {
	payload sim.Message
	class   sim.Class
	retries int
	rto     int64
}

// outLink is the sender half of one directed link.
type outLink struct {
	w       int64 // weight of the edge sim resolves for this neighbor
	next    int64 // last assigned sequence number
	pending map[int64]*pendingMsg
}

// inLink is the receiver half: the resequencing buffer.
type inLink struct {
	expected int64 // next sequence to deliver in order
	buf      map[int64]sim.Message
}

// Proc wraps one protocol automaton with the reliable-delivery shim.
// Build via Wrap or Install; a Proc serves exactly one run.
type Proc struct {
	inner sim.Process
	cfg   Config
	rctx  rctx
	out   map[graph.NodeID]*outLink
	in    map[graph.NodeID]*inLink

	retransmits int64
	dupsDropped int64
	giveUps     int64
}

// Inner returns the wrapped protocol automaton.
func (p *Proc) Inner() sim.Process { return p.inner }

// Retransmits returns how many retransmissions this node performed.
func (p *Proc) Retransmits() int64 { return p.retransmits }

// DupsSuppressed returns how many duplicate arrivals were discarded.
func (p *Proc) DupsSuppressed() int64 { return p.dupsDropped }

// GiveUps returns how many messages were abandoned after MaxRetries.
func (p *Proc) GiveUps() int64 { return p.giveUps }

// rctx is the Context the inner protocol sees: sends are intercepted
// into the sequencing layer, everything else passes through. It also
// forwards the optional TimerContext capability.
type rctx struct {
	p   *Proc
	ctx sim.Context
}

var _ sim.Context = (*rctx)(nil)
var _ sim.TimerContext = (*rctx)(nil)

func (c *rctx) ID() graph.NodeID        { return c.ctx.ID() }
func (c *rctx) Now() int64              { return c.ctx.Now() }
func (c *rctx) Graph() *graph.Graph     { return c.ctx.Graph() }
func (c *rctx) Neighbors() []graph.Half { return c.ctx.Neighbors() }
func (c *rctx) Send(to graph.NodeID, m sim.Message) {
	c.p.sendData(to, m, sim.ClassProto)
}
func (c *rctx) SendClass(to graph.NodeID, m sim.Message, cl sim.Class) {
	c.p.sendData(to, m, cl)
}
func (c *rctx) Record(key string, value int64) { c.ctx.Record(key, value) }
func (c *rctx) ScheduleTimer(delay int64, m sim.Message) {
	if tc, ok := c.ctx.(sim.TimerContext); ok {
		tc.ScheduleTimer(delay, m)
	}
}

// Init initializes the shim and the wrapped protocol.
func (p *Proc) Init(ctx sim.Context) {
	p.rctx = rctx{p: p, ctx: ctx}
	p.inner.Init(&p.rctx)
}

// Handle demultiplexes the link-layer traffic; only in-order, first
// arrivals of data envelopes reach the inner protocol.
func (p *Proc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	if p.rctx.ctx == nil {
		// Defensive: a message before Init (cannot happen under sim's
		// event loop, which always runs Init first).
		p.rctx = rctx{p: p, ctx: ctx}
	}
	switch v := m.(type) {
	case retxTimer:
		p.onTimer(v)
	case envAck:
		if ol := p.out[from]; ol != nil {
			delete(ol.pending, v.Seq)
		}
	case envData:
		p.onData(from, v)
	default:
		// A raw message from an unwrapped peer, or the inner
		// protocol's own timer: pass through.
		p.inner.Handle(&p.rctx, from, m)
	}
}

// sendData assigns the next sequence number on the link, transmits the
// envelope and arms the retransmission timer.
func (p *Proc) sendData(to graph.NodeID, m sim.Message, cl sim.Class) {
	ol := p.out[to]
	if ol == nil {
		ol = &outLink{w: p.linkWeight(to), pending: make(map[int64]*pendingMsg)}
		p.out[to] = ol
	}
	ol.next++
	pm := &pendingMsg{payload: m, class: cl, rto: p.cfg.RTOFactor * ol.w}
	ol.pending[ol.next] = pm
	p.rctx.ctx.SendClass(to, envData{Seq: ol.next, Payload: m}, cl)
	p.armTimer(to, ol.next, pm.rto)
}

// linkWeight resolves the weight of the edge the simulator will use
// for sends to this neighbor (the first adjacency occurrence = lowest
// edge ID, matching sim's parallel-edge resolution).
func (p *Proc) linkWeight(to graph.NodeID) int64 {
	for _, h := range p.rctx.ctx.Neighbors() {
		if h.To == to {
			return h.W
		}
	}
	panic(fmt.Sprintf("reliable: node %d sent to non-neighbor %d", p.rctx.ctx.ID(), to))
}

// armTimer schedules the retransmission check. Without a TimerContext
// (a foreign engine) the shim degrades to best-effort sequencing.
func (p *Proc) armTimer(to graph.NodeID, seq, delay int64) {
	if tc, ok := p.rctx.ctx.(sim.TimerContext); ok {
		tc.ScheduleTimer(delay, retxTimer{To: to, Seq: seq})
	}
}

// onTimer retransmits a still-pending message with doubled (capped)
// timeout, or abandons it after MaxRetries.
func (p *Proc) onTimer(t retxTimer) {
	ol := p.out[t.To]
	if ol == nil {
		return
	}
	pm := ol.pending[t.Seq]
	if pm == nil {
		return // acknowledged; stale timer
	}
	if p.cfg.MaxRetries >= 0 && pm.retries >= p.cfg.MaxRetries {
		// Peer presumed fail-stopped: abandon the message so the run
		// terminates instead of retransmitting into the void forever.
		delete(ol.pending, t.Seq)
		p.giveUps++
		return
	}
	pm.retries++
	p.retransmits++
	pm.rto *= 2
	if lim := p.cfg.BackoffCap * ol.w; pm.rto > lim {
		pm.rto = lim
	}
	p.rctx.ctx.SendClass(t.To, envData{Seq: t.Seq, Payload: pm.payload}, sim.ClassRetx)
	p.armTimer(t.To, t.Seq, pm.rto)
}

// onData acknowledges the envelope, suppresses duplicates, and
// delivers in sequence order — the inner protocol sees exactly-once
// FIFO links.
func (p *Proc) onData(from graph.NodeID, d envData) {
	// Always (re-)acknowledge: the previous ack may have been lost.
	p.rctx.ctx.SendClass(from, envAck{Seq: d.Seq}, sim.ClassAck)
	il := p.in[from]
	if il == nil {
		il = &inLink{expected: 1}
		p.in[from] = il
	}
	if d.Seq < il.expected {
		p.dupsDropped++
		return
	}
	if d.Seq > il.expected {
		if il.buf == nil {
			il.buf = make(map[int64]sim.Message)
		}
		if _, ok := il.buf[d.Seq]; ok {
			p.dupsDropped++
			return
		}
		il.buf[d.Seq] = d.Payload
		return
	}
	il.expected++
	p.inner.Handle(&p.rctx, from, d.Payload)
	for {
		next, ok := il.buf[il.expected]
		if !ok {
			return
		}
		delete(il.buf, il.expected)
		il.expected++
		p.inner.Handle(&p.rctx, from, next)
	}
}

// Wrap builds one reliable shim per process. The returned Procs
// implement sim.Process; pass them through Processes to a runner, or
// use Install to hook an existing runner's option list.
func Wrap(procs []sim.Process, cfg Config) []*Proc {
	cfg = cfg.withDefaults()
	out := make([]*Proc, len(procs))
	for i, pr := range procs {
		out[i] = &Proc{
			inner: pr,
			cfg:   cfg,
			out:   make(map[graph.NodeID]*outLink),
			in:    make(map[graph.NodeID]*inLink),
		}
	}
	return out
}

// Processes widens a wrapped slice back to []sim.Process.
func Processes(ps []*Proc) []sim.Process {
	out := make([]sim.Process, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

// Layer gives access to the shims a runner created through Install,
// for reading the reliability counters after the run.
type Layer struct {
	Procs []*Proc
}

// Retransmits sums retransmissions over all nodes.
func (l *Layer) Retransmits() int64 {
	var n int64
	for _, p := range l.Procs {
		n += p.retransmits
	}
	return n
}

// DupsSuppressed sums discarded duplicate arrivals over all nodes.
func (l *Layer) DupsSuppressed() int64 {
	var n int64
	for _, p := range l.Procs {
		n += p.dupsDropped
	}
	return n
}

// GiveUps sums abandoned messages over all nodes.
func (l *Layer) GiveUps() int64 {
	var n int64
	for _, p := range l.Procs {
		n += p.giveUps
	}
	return n
}

// Install returns a sim.Option that wraps every process of the network
// it is applied to, plus the Layer through which the shims can be read
// after the run. This is how existing runners (mst.RunGHS,
// synch.RunGammaW, …) gain reliable delivery without modification:
//
//	opt, layer := reliable.Install(reliable.Config{})
//	res, err := mst.RunGHS(g, opt, sim.WithFaults(plan), sim.WithSeed(s))
//	_ = layer.Retransmits()
func Install(cfg Config) (sim.Option, *Layer) {
	l := &Layer{}
	opt := sim.WithProcessWrapper(func(ps []sim.Process) []sim.Process {
		l.Procs = Wrap(ps, cfg)
		return Processes(l.Procs)
	})
	return opt, l
}
