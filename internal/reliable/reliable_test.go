package reliable_test

import (
	"errors"
	"testing"

	"costsense/internal/graph"
	"costsense/internal/mst"
	"costsense/internal/reliable"
	"costsense/internal/sim"
	"costsense/internal/synch"
)

// seqSender emits int64 payloads 1..n to node 1 at time zero; the
// reliable layer must get all of them across in order, exactly once,
// whatever the fault plan does to the wire.
type seqSender struct{ n int }

func (s *seqSender) Init(ctx sim.Context) {
	if ctx.ID() != 0 {
		return
	}
	for i := 1; i <= s.n; i++ {
		ctx.Send(1, int64(i))
	}
}

func (s *seqSender) Handle(sim.Context, graph.NodeID, sim.Message) {}

// seqReceiver checks that payloads arrive as the dense ascending
// sequence 1, 2, 3, … with no gap, duplicate, or reordering.
type seqReceiver struct {
	got []int64
	bad bool
}

func (r *seqReceiver) Init(sim.Context) {}

func (r *seqReceiver) Handle(_ sim.Context, _ graph.NodeID, m sim.Message) {
	v := m.(int64)
	if v != int64(len(r.got))+1 {
		r.bad = true
	}
	r.got = append(r.got, v)
}

func TestReliableExactlyOnceInOrderUnderChaos(t *testing.T) {
	const n = 40
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.Path(2, graph.UniformWeights(8, 1))
		recv := &seqReceiver{}
		procs := []sim.Process{&seqSender{n: n}, recv}
		opt, layer := reliable.Install(reliable.Config{})
		st, err := sim.Run(g, procs, opt,
			sim.WithSeed(seed),
			sim.WithFaults(sim.FaultPlan{Drop: 0.3, Dup: 0.3}),
			sim.WithEventLimit(1_000_000))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(recv.got) != n || recv.bad {
			t.Fatalf("seed %d: receiver saw %d payloads (bad=%v), want the exact sequence 1..%d",
				seed, len(recv.got), recv.bad, n)
		}
		if layer.GiveUps() != 0 {
			t.Errorf("seed %d: %d give-ups on a live peer", seed, layer.GiveUps())
		}
		if st.Dropped == 0 || st.Duplicated == 0 {
			t.Fatalf("seed %d: fault plan injected nothing (dropped=%d dup=%d); test is vacuous",
				seed, st.Dropped, st.Duplicated)
		}
		if layer.Retransmits() == 0 {
			t.Errorf("seed %d: drops occurred but nothing was retransmitted", seed)
		}
		if layer.DupsSuppressed() == 0 {
			t.Errorf("seed %d: duplicates occurred but none were suppressed", seed)
		}
	}
}

// TestReliableTransparentOnCleanNetwork: with no faults the layer must
// be invisible — no retransmissions, no suppressed duplicates, and the
// inner protocol completes as usual. (RTT over an edge of weight w is
// at most 2w under every delay model; the default RTO fires at 4w, so
// the ack always wins the race.)
func TestReliableTransparentOnCleanNetwork(t *testing.T) {
	g := graph.Path(2, graph.UniformWeights(16, 2))
	recv := &seqReceiver{}
	opt, layer := reliable.Install(reliable.Config{})
	if _, err := sim.Run(g, []sim.Process{&seqSender{n: 10}, recv}, opt, sim.WithSeed(4)); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 10 || recv.bad {
		t.Fatalf("receiver saw %d payloads (bad=%v), want 1..10", len(recv.got), recv.bad)
	}
	if r := layer.Retransmits(); r != 0 {
		t.Errorf("clean network caused %d spurious retransmissions", r)
	}
	if d := layer.DupsSuppressed(); d != 0 {
		t.Errorf("clean network caused %d spurious duplicate suppressions", d)
	}
}

// TestReliableGiveUpOnCrashedPeer: a peer that fail-stops before
// handling anything never acks; the sender must retransmit a bounded
// number of times, give up, and let the run terminate.
func TestReliableGiveUpOnCrashedPeer(t *testing.T) {
	g := graph.Path(2, graph.UniformWeights(5, 1))
	opt, layer := reliable.Install(reliable.Config{MaxRetries: 3})
	st, err := sim.Run(g, []sim.Process{&seqSender{n: 3}, &seqReceiver{}}, opt,
		sim.WithSeed(1),
		sim.WithFaults(sim.FaultPlan{Crashes: []sim.Crash{{Node: 1, At: 0}}}),
		sim.WithEventLimit(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if layer.GiveUps() != 3 {
		t.Errorf("GiveUps = %d, want 3 (one per unacked payload)", layer.GiveUps())
	}
	if layer.Retransmits() != 9 {
		t.Errorf("Retransmits = %d, want 9 (3 payloads x MaxRetries 3)", layer.Retransmits())
	}
	if st.DeadLetters == 0 {
		t.Error("no dead letters recorded for sends to the crashed node")
	}
}

// timerInner drives itself with a simulator timer through the reliable
// shim: ScheduleTimer must pass through, and the timer message must
// reach the inner Handle untouched (not be mistaken for an envelope).
type timerInner struct {
	fired     bool
	delivered bool
}

func (ti *timerInner) Init(ctx sim.Context) {
	if ctx.ID() == 0 {
		ctx.(sim.TimerContext).ScheduleTimer(5, "wake")
	}
}

func (ti *timerInner) Handle(ctx sim.Context, _ graph.NodeID, m sim.Message) {
	switch m {
	case "wake":
		ti.fired = true
		ctx.Send(1, "hello")
	case "hello":
		ti.delivered = true
	}
}

func TestReliableTimerPassthrough(t *testing.T) {
	g := graph.Path(2, graph.UniformWeights(6, 3))
	a, b := &timerInner{}, &timerInner{}
	opt, _ := reliable.Install(reliable.Config{})
	st, err := sim.Run(g, []sim.Process{a, b}, opt, sim.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.fired {
		t.Error("inner timer never fired through the reliable shim")
	}
	if !b.delivered {
		t.Error("message sent from a timer handler never delivered")
	}
	if st.Timers == 0 {
		t.Error("Stats.Timers did not count the inner timer")
	}
}

func sameEdges(t *testing.T, got, want []graph.Edge, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: tree has %d edges, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i].U != want[i].U || got[i].V != want[i].V || got[i].W != want[i].W {
			t.Fatalf("%s: edge %d = (%d,%d,w=%d), want (%d,%d,w=%d)", what, i,
				got[i].U, got[i].V, got[i].W, want[i].U, want[i].V, want[i].W)
		}
	}
}

// TestReliableGHSUnderDropsAndCrash is the MST acceptance run: GHS
// wrapped in the reliable layer must build the exact fault-free tree
// at 12% message drop plus duplication, and again when a non-root node
// fail-stops after the protocol's last event.
func TestReliableGHSUnderDropsAndCrash(t *testing.T) {
	g := graph.RandomConnected(24, 60, graph.UniformWeights(64, 3), 3)
	golden, err := mst.RunGHS(g)
	if err != nil {
		t.Fatal(err)
	}

	plan := sim.FaultPlan{Drop: 0.12, Dup: 0.05}
	opt, layer := reliable.Install(reliable.Config{})
	res, err := mst.RunGHS(g, opt,
		sim.WithFaults(plan), sim.WithSeed(9), sim.WithEventLimit(5_000_000))
	if err != nil {
		t.Fatalf("GHS under drops: %v", err)
	}
	sameEdges(t, res.Edges, golden.Edges, "drops only")
	if res.Stats.Dropped == 0 || layer.Retransmits() == 0 {
		t.Fatalf("non-vacuity: dropped=%d retransmits=%d, want both > 0",
			res.Stats.Dropped, layer.Retransmits())
	}

	// Fail-stop a non-root node once the protocol is done: the result
	// must stay correct and the run must still terminate on its own.
	victim := graph.NodeID(1)
	if golden.Leader == victim {
		victim = 2
	}
	plan.Crashes = []sim.Crash{{Node: victim, At: res.Stats.FinishTime + 1}}
	opt2, _ := reliable.Install(reliable.Config{})
	res2, err := mst.RunGHS(g, opt2,
		sim.WithFaults(plan), sim.WithSeed(9), sim.WithEventLimit(5_000_000))
	if err != nil {
		t.Fatalf("GHS under drops+crash: %v", err)
	}
	sameEdges(t, res2.Edges, golden.Edges, "drops+crash")
	if res2.Leader != golden.Leader {
		t.Errorf("leader %d under faults, want %d", res2.Leader, golden.Leader)
	}
}

// TestReliableGHSMidRunCrashTerminatesOrReports: a crash in the middle
// of the construction may make the tree unbuildable, but the run must
// degrade gracefully — finish on its own (possibly with an incomplete-
// protocol error from extraction) or stop at the event limit. Never
// hang.
func TestReliableGHSMidRunCrashTerminatesOrReports(t *testing.T) {
	g := graph.RandomConnected(18, 40, graph.UniformWeights(32, 5), 5)
	for seed := int64(0); seed < 3; seed++ {
		plan := sim.FaultPlan{
			Drop:    0.10,
			Crashes: []sim.Crash{{Node: graph.NodeID(g.N() - 1), At: 40}},
		}
		opt, _ := reliable.Install(reliable.Config{})
		_, err := mst.RunGHS(g, opt,
			sim.WithFaults(plan), sim.WithSeed(seed), sim.WithEventLimit(2_000_000))
		if err != nil {
			var el *sim.ErrEventLimit
			if errors.As(err, &el) {
				t.Logf("seed %d: stopped at event limit %d (last time %d, %d in flight)",
					seed, el.Limit, el.LastTime, el.InFlight)
			} else {
				t.Logf("seed %d: reported: %v", seed, err)
			}
			continue // reported, not hung: acceptable degradation
		}
		// Terminated cleanly; the tree may or may not be the MST of the
		// surviving topology — graceful termination is all we assert.
	}
}

// TestReliableGammaWUnderDrops is the synchronizer acceptance run: the
// SPT protocol under γ_w, wrapped in the reliable layer, must compute
// exact shortest-path distances at 10% drop plus duplication, and again
// with a post-completion fail-stop of a non-root node.
func TestReliableGammaWUnderDrops(t *testing.T) {
	g := graph.RandomConnected(14, 30, graph.UniformWeights(16, 7), 7)

	ref := synch.NewSPTProcs(g, 0)
	res, err := sim.SyncRun(g, ref, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := synch.SPTDists(ref)
	refPulses := res.Stats.Pulses
	dij := graph.Dijkstra(g, 0)
	for v := range want {
		if want[v] != dij.Dist[v] {
			t.Fatalf("reference Dist[%d] = %d disagrees with Dijkstra %d", v, want[v], dij.Dist[v])
		}
	}

	check := func(plan sim.FaultPlan, what string) *synch.Overhead {
		procs := synch.NewSPTProcs(g, 0)
		opt, layer := reliable.Install(reliable.Config{})
		ov, err := synch.RunGammaW(g, procs, refPulses+2, 2, opt,
			sim.WithFaults(plan), sim.WithSeed(11), sim.WithEventLimit(20_000_000))
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		got := synch.SPTDists(procs)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%s: Dist[%d] = %d under faulty γ_w, want %d", what, v, got[v], want[v])
			}
		}
		if ov.Stats.Dropped == 0 || layer.Retransmits() == 0 {
			t.Fatalf("%s: non-vacuity: dropped=%d retransmits=%d, want both > 0",
				what, ov.Stats.Dropped, layer.Retransmits())
		}
		return ov
	}

	plan := sim.FaultPlan{Drop: 0.10, Dup: 0.05}
	ov := check(plan, "drops only")

	plan.Crashes = []sim.Crash{{Node: graph.NodeID(g.N() - 1), At: ov.Stats.FinishTime + 1}}
	check(plan, "drops+crash")
}
