package gfunc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/slt"
)

func inputsFor(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, n)
	for i := range in {
		in[i] = rng.Int63n(1000)
	}
	return in
}

func TestComputeAllFunctions(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.UniformWeights(15, 3), 3)
	tree := graph.PrimTree(g, 0)
	in := inputsFor(g.N(), 4)
	for _, f := range []Function{Sum, Max, Min, Xor, And, Or} {
		t.Run(f.Name, func(t *testing.T) {
			res, err := Compute(g, tree, in, f)
			if err != nil {
				t.Fatal(err)
			}
			want := Fold(in, f)
			if res.Value != want {
				t.Fatalf("%s = %d, want %d", f.Name, res.Value, want)
			}
			for v, out := range res.Outputs {
				if out != want {
					t.Fatalf("vertex %d output %d, want %d", v, out, want)
				}
			}
		})
	}
}

func TestComputeOnExpanderAndTreeFamilies(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.RandomRegular(32, 4, graph.UniformWeights(10, 2), 2),
		graph.BinaryTree(31, graph.UniformWeights(10, 3)),
		graph.Caterpillar(21, graph.UniformWeights(10, 4)),
	} {
		tree := graph.PrimTree(g, 0)
		in := inputsFor(g.N(), 5)
		res, err := Compute(g, tree, in, Min)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != Fold(in, Min) {
			t.Fatalf("min = %d, want %d", res.Value, Fold(in, Min))
		}
	}
}

func TestComputeCostIsTreeBound(t *testing.T) {
	// Communication is exactly 2·w(T) (one up + one down message per
	// tree edge); time is at most 2·depth(T) under DelayMax.
	g := graph.RandomConnected(40, 90, graph.UniformWeights(12, 9), 9)
	tree := graph.PrimTree(g, 0)
	in := inputsFor(g.N(), 10)
	res, err := Compute(g, tree, in, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Comm != 2*tree.Weight() {
		t.Errorf("comm = %d, want exactly 2w(T) = %d", res.Stats.Comm, 2*tree.Weight())
	}
	if res.Stats.FinishTime > 2*tree.Height() {
		t.Errorf("time = %d > 2·depth(T) = %d", res.Stats.FinishTime, 2*tree.Height())
	}
}

func TestCorollary23OptimalViaSLT(t *testing.T) {
	// Upper bound (Cor 2.3): O(𝓥) communication, O(𝓓) time via SLT.
	// Lower bound (Thm 2.1): any computation needs Ω(𝓥) comm, Ω(𝓓) time
	// in the worst case; our comm must at least reach 𝓥-ish territory
	// because the message edges span the graph.
	g := graph.ShallowLightGap(40)
	hub := graph.NodeID(g.N() - 1)
	in := inputsFor(g.N(), 5)
	q := int64(2)
	res, tree, err := ComputeViaSLT(g, hub, q, in, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Fold(in, Sum) {
		t.Fatalf("sum = %d, want %d", res.Value, Fold(in, Sum))
	}
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)
	if res.Stats.Comm > 2*slt.WeightBound(q, vv) {
		t.Errorf("comm %d exceeds 2(1+2/q)𝓥 = %d", res.Stats.Comm, 2*slt.WeightBound(q, vv))
	}
	if res.Stats.FinishTime > 2*slt.DepthBound(q, dd) {
		t.Errorf("time %d exceeds 2(2q+1)𝓓 = %d", res.Stats.FinishTime, 2*slt.DepthBound(q, dd))
	}
	// Lower-bound side: messages must span, so comm >= w(spanning tree) >= 𝓥.
	if res.Stats.Comm < vv {
		t.Errorf("comm %d below the Ω(𝓥) = %d lower bound?!", res.Stats.Comm, vv)
	}
	if !tree.Spanning() {
		t.Fatal("SLT must span")
	}
}

func TestComputeErrors(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights())
	tree := graph.PrimTree(g, 0)
	if _, err := Compute(g, tree, []int64{1, 2}, Sum); err == nil {
		t.Error("wrong input length should error")
	}
	partial := graph.NewTree(g, 0, []graph.NodeID{-1, 0, 1, -1})
	if _, err := Compute(g, partial, []int64{1, 2, 3, 4}, Sum); err == nil {
		t.Error("non-spanning tree should error")
	}
}

func TestBroadcast(t *testing.T) {
	g := graph.Grid(4, 5, graph.UniformWeights(7, 2))
	tree := graph.PrimTree(g, 0)
	res, err := Broadcast(g, tree, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out != 42 {
			t.Fatalf("vertex %d got %d, want 42", v, out)
		}
	}
}

func TestComputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(20, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		tree := graph.PrimTree(g, root)
		in := inputsFor(n, seed)
		res, err := Compute(g, tree, in, Xor)
		if err != nil {
			return false
		}
		if res.Value != Fold(in, Xor) {
			return false
		}
		return res.Stats.Comm == 2*tree.Weight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSLTBeatsSPTAndMSTOnSeparation(t *testing.T) {
	// The motivation for SLTs (§2.2): on the separation instance,
	// computing over the SPT costs Θ(n·𝓥) comm and over the MST costs
	// Θ(n·𝓓) time; the SLT achieves both O(𝓥) and O(𝓓) at once.
	g := graph.ShallowLightGap(60)
	hub := graph.NodeID(g.N() - 1)
	in := inputsFor(g.N(), 7)

	spt := graph.Dijkstra(g, hub).Tree(g)
	mst := graph.PrimTree(g, hub)
	viaSPT, err := Compute(g, spt, in, Sum)
	if err != nil {
		t.Fatal(err)
	}
	viaMST, err := Compute(g, mst, in, Sum)
	if err != nil {
		t.Fatal(err)
	}
	viaSLT, _, err := ComputeViaSLT(g, hub, 2, in, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if viaSLT.Stats.Comm*2 > viaSPT.Stats.Comm {
		t.Errorf("SLT comm %d should be far below SPT comm %d", viaSLT.Stats.Comm, viaSPT.Stats.Comm)
	}
	if viaSLT.Stats.FinishTime*2 > viaMST.Stats.FinishTime {
		t.Errorf("SLT time %d should be far below MST time %d", viaSLT.Stats.FinishTime, viaMST.Stats.FinishTime)
	}
}

func TestTheorem21InformationFlow(t *testing.T) {
	// Thm 2.1's structural precondition, checked on traces: the edges a
	// global function computation uses must form a connected spanning
	// subgraph G', hence comm >= w(G') >= 𝓥 and time >= dist in G'.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(16, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		tree := graph.PrimTree(g, root)
		in := inputsFor(n, seed)
		res, err := Compute(g, tree, in, Sum)
		if err != nil {
			return false
		}
		if !res.Stats.UsedSpans(g) {
			return false // information flow must reach every vertex
		}
		vv := graph.MSTWeight(g)
		return res.Stats.UsedWeight(g) >= vv && res.Stats.Comm >= vv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
