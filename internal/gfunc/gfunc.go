// Package gfunc computes global symmetric compact functions (§1.4.1)
// over an asynchronous weighted network: the n inputs sit one per
// vertex, and the output must be produced at every vertex.
//
// A symmetric compact function [GS86] is determined by a combiner
// g : X² → X with f_n(x_1..x_n) = g(f_k(x_1..x_k), f_{n-k}(x_{k+1}..x_n));
// maximum, sum and the basic boolean functions all qualify. Broadcast
// and termination detection are special cases.
//
// Given any rooted spanning tree T the computation is one convergecast
// plus one broadcast: communication 2·w(T) and time 2·depth(T). Run on
// a shallow-light tree this achieves the optimal O(𝓥) communication
// and O(𝓓) time of Corollary 2.3, matching the Ω(𝓥)/Ω(𝓓) lower bound
// of Theorem 2.1.
package gfunc

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/slt"
)

// Function is a symmetric compact function given by its combiner. The
// combiner must be associative and commutative.
type Function struct {
	Name    string
	Combine func(a, b int64) int64
}

// The standard symmetric compact functions of §1.4.1.
var (
	Sum = Function{Name: "sum", Combine: func(a, b int64) int64 { return a + b }}
	Max = Function{Name: "max", Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	Min = Function{Name: "min", Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
	Xor = Function{Name: "xor", Combine: func(a, b int64) int64 { return a ^ b }}
	And = Function{Name: "and", Combine: func(a, b int64) int64 { return a & b }}
	Or  = Function{Name: "or", Combine: func(a, b int64) int64 { return a | b }}
)

// Messages of the two-phase tree computation.
type (
	// MsgUp carries a subtree partial result toward the root.
	MsgUp struct{ Partial int64 }
	// MsgDown carries the final value toward the leaves.
	MsgDown struct{ Value int64 }
)

// Proc is the per-node process: convergecast partials up the tree, then
// broadcast the result down.
type Proc struct {
	F     Function
	Input int64
	// Tree wiring for this node.
	Parent   graph.NodeID
	Children []graph.NodeID

	// Output is the computed global value, set at every node.
	Output int64
	// Ready reports whether Output was produced.
	Ready bool
	// DoneAt is the time Output was produced.
	DoneAt int64

	acc     int64
	waiting int
}

var _ sim.Process = (*Proc)(nil)

// Init seeds the accumulator; leaves report immediately.
func (p *Proc) Init(ctx sim.Context) {
	p.acc = p.Input
	p.waiting = len(p.Children)
	if p.waiting == 0 {
		p.complete(ctx)
	}
}

func (p *Proc) complete(ctx sim.Context) {
	if p.Parent < 0 {
		// Root: the global value is ready; broadcast it.
		p.Output = p.acc
		p.Ready = true
		p.DoneAt = ctx.Now()
		ctx.Record("output", p.Output)
		for _, c := range p.Children {
			ctx.Send(c, MsgDown{Value: p.Output})
		}
		return
	}
	ctx.Send(p.Parent, MsgUp{Partial: p.acc})
}

// Handle merges child partials and forwards the final broadcast.
func (p *Proc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgUp:
		p.acc = p.F.Combine(p.acc, msg.Partial)
		p.waiting--
		if p.waiting == 0 {
			p.complete(ctx)
		}
	case MsgDown:
		p.Output = msg.Value
		p.Ready = true
		p.DoneAt = ctx.Now()
		ctx.Record("output", p.Output)
		for _, c := range p.Children {
			ctx.Send(c, MsgDown{Value: p.Output})
		}
	default:
		panic(fmt.Sprintf("gfunc: unexpected message %T", m))
	}
}

// Result of a global function computation.
type Result struct {
	// Value is the global function value.
	Value int64
	// Outputs holds the value produced at each vertex (all equal).
	Outputs []int64
	Stats   *sim.Stats
}

// Compute evaluates f over the inputs using the given rooted spanning
// tree of g.
func Compute(g *graph.Graph, tree *graph.Tree, inputs []int64, f Function, opts ...sim.Option) (*Result, error) {
	if len(inputs) != g.N() {
		return nil, fmt.Errorf("gfunc: %d inputs for %d vertices", len(inputs), g.N())
	}
	if !tree.Spanning() {
		return nil, fmt.Errorf("gfunc: tree does not span the graph")
	}
	procs := make([]sim.Process, g.N())
	nodes := make([]*Proc, g.N())
	for v := range procs {
		nodes[v] = &Proc{
			F:        f,
			Input:    inputs[v],
			Parent:   tree.Parent[v],
			Children: tree.Children(graph.NodeID(v)),
		}
		procs[v] = nodes[v]
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: make([]int64, g.N()), Stats: stats}
	for v, p := range nodes {
		if !p.Ready {
			return nil, fmt.Errorf("gfunc: vertex %d produced no output", v)
		}
		res.Outputs[v] = p.Output
	}
	res.Value = res.Outputs[tree.Root]
	return res, nil
}

// ComputeViaSLT builds a shallow-light tree rooted at v0 with trade-off
// q and evaluates f over it — the optimal scheme of Corollary 2.3.
func ComputeViaSLT(g *graph.Graph, v0 graph.NodeID, q int64, inputs []int64, f Function, opts ...sim.Option) (*Result, *graph.Tree, error) {
	tree, _, err := slt.Build(g, v0, q)
	if err != nil {
		return nil, nil, err
	}
	res, err := Compute(g, tree, inputs, f, opts...)
	if err != nil {
		return nil, nil, err
	}
	return res, tree, nil
}

// Broadcast disseminates the root's value to all vertices over the
// tree (a special case of a symmetric compact computation: f = "the
// root's input", realized by a one-phase downcast). It returns the
// stats of the downcast.
func Broadcast(g *graph.Graph, tree *graph.Tree, value int64, opts ...sim.Option) (*Result, error) {
	inputs := make([]int64, g.N())
	for v := range inputs {
		inputs[v] = value // any symmetric function of equal inputs is that value
	}
	return Compute(g, tree, inputs, Max, opts...)
}

// Fold is the centralized reference: combine all inputs directly.
func Fold(inputs []int64, f Function) int64 {
	acc := inputs[0]
	for _, x := range inputs[1:] {
		acc = f.Combine(acc, x)
	}
	return acc
}
