package synch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

func TestPowerAndNextMultiple(t *testing.T) {
	powers := map[int64]int64{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 1000: 1024}
	for w, want := range powers {
		if got := Power(w); got != want {
			t.Errorf("Power(%d) = %d, want %d", w, got, want)
		}
	}
	if NextMultiple(7, 4) != 8 || NextMultiple(8, 4) != 8 || NextMultiple(0, 4) != 0 {
		t.Error("NextMultiple wrong")
	}
}

func TestNormalizeGraph(t *testing.T) {
	g := graph.Path(5, graph.UniformWeights(100, 3))
	gh := NormalizeGraph(g)
	for i, e := range gh.Edges() {
		orig := g.Edges()[i]
		if e.W&(e.W-1) != 0 {
			t.Fatalf("weight %d not a power of two", e.W)
		}
		if e.W < orig.W || e.W >= 2*orig.W {
			t.Fatalf("power(%d) = %d outside [w, 2w)", orig.W, e.W)
		}
	}
}

func refSPT(t *testing.T, g *graph.Graph, src graph.NodeID) ([]int64, int64) {
	t.Helper()
	procs := NewSPTProcs(g, src)
	res, err := sim.SyncRun(g, procs, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return SPTDists(procs), res.Stats.Pulses
}

func TestSPTProtoMatchesDijkstraOnReference(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.UniformWeights(20, 5), 5)
	dists, _ := refSPT(t, g, 0)
	want := graph.Dijkstra(g, 0)
	for v := range dists {
		if dists[v] != want.Dist[v] {
			t.Fatalf("reference Dist[%d] = %d, want %d", v, dists[v], want.Dist[v])
		}
	}
}

func TestInSynchTransformation(t *testing.T) {
	// Lemma 4.5: the transformed protocol runs on the normalized graph,
	// is in synch with it, produces identical outputs, and is at most
	// ~4x slower.
	g := graph.RandomConnected(25, 60, graph.UniformWeights(13, 7), 7)
	want, refPulses := refSPT(t, g, 0)

	ghat := NormalizeGraph(g)
	procs := NewSPTProcs(g, 0)
	wrapped := make([]sim.SyncProcess, g.N())
	for v := range wrapped {
		wrapped[v] = NewInSynch(procs[v], g)
	}
	res, err := sim.SyncRun(ghat, wrapped, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InSynch {
		t.Fatal("transformed protocol is not in synch with Ĝ (Def 4.2 violated)")
	}
	got := SPTDists(procs)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("Dist[%d] = %d under transformation, want %d", v, got[v], want[v])
		}
	}
	if res.Stats.Pulses > 4*refPulses+8 {
		t.Errorf("transformed run took %d pulses, want <= 4·%d+8 (Lemma 4.5(4))", res.Stats.Pulses, refPulses)
	}
}

func checkSynchronizerEquivalence(t *testing.T, g *graph.Graph, src graph.NodeID,
	run func([]sim.SyncProcess, int64) (*Overhead, error)) *Overhead {
	t.Helper()
	want, refPulses := refSPT(t, g, src)
	procs := NewSPTProcs(g, src)
	ov, err := run(procs, refPulses+2)
	if err != nil {
		t.Fatal(err)
	}
	got := SPTDists(procs)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("Dist[%d] = %d under synchronizer, want %d", v, got[v], want[v])
		}
	}
	return ov
}

func TestAlphaEquivalence(t *testing.T) {
	g := graph.RandomConnected(25, 60, graph.UniformWeights(11, 9), 9)
	ov := checkSynchronizerEquivalence(t, g, 0, func(p []sim.SyncProcess, pulses int64) (*Overhead, error) {
		return RunAlpha(g, p, pulses)
	})
	// C(α) = O(𝓔) per pulse: one safe message per edge direction.
	if ov.CommPerPulse > 3*float64(g.TotalWeight()) {
		t.Errorf("C(α) = %.0f per pulse > 3𝓔 = %d", ov.CommPerPulse, 3*g.TotalWeight())
	}
}

func TestBetaEquivalence(t *testing.T) {
	g := graph.RandomConnected(25, 60, graph.UniformWeights(11, 10), 10)
	ov := checkSynchronizerEquivalence(t, g, 0, func(p []sim.SyncProcess, pulses int64) (*Overhead, error) {
		return RunBeta(g, p, pulses)
	})
	// C(β) = O(𝓥) per pulse over the SLT (weight <= 2𝓥 at q=2).
	vv := graph.MSTWeight(g)
	if ov.CommPerPulse > 5*float64(vv) {
		t.Errorf("C(β) = %.0f per pulse > 5𝓥 = %d", ov.CommPerPulse, 5*vv)
	}
}

func TestGammaWEquivalence(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := graph.RandomConnected(25, 60, graph.UniformWeights(11, 12), 12)
		checkSynchronizerEquivalence(t, g, 0, func(p []sim.SyncProcess, pulses int64) (*Overhead, error) {
			return RunGammaW(g, p, pulses, k)
		})
	}
}

func TestGammaWEquivalenceFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(12, graph.UniformWeights(9, 1))},
		{"ring heavy", graph.HeavyChordRing(16, 32)},
		{"grid", graph.Grid(4, 4, graph.PowerOfTwoWeights(4, 2))},
		{"two nodes", graph.Path(2, graph.ConstWeights(6))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkSynchronizerEquivalence(t, tt.g, 0, func(p []sim.SyncProcess, pulses int64) (*Overhead, error) {
				return RunGammaW(tt.g, p, pulses, 2)
			})
		})
	}
}

func TestSynchronizerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := graph.RandomConnected(n, n-1+rng.Intn(n), graph.UniformWeights(10, seed), seed)
		src := graph.NodeID(rng.Intn(n))
		want, refPulses := func() ([]int64, int64) {
			procs := NewSPTProcs(g, src)
			res, err := sim.SyncRun(g, procs, 1_000_000)
			if err != nil {
				return nil, 0
			}
			return SPTDists(procs), res.Stats.Pulses
		}()
		if want == nil {
			return false
		}
		procs := NewSPTProcs(g, src)
		if _, err := RunGammaW(g, procs, refPulses+2, 1+rng.Intn(3)); err != nil {
			t.Log(err)
			return false
		}
		got := SPTDists(procs)
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaWBeatsAlphaOnDenseHeavy(t *testing.T) {
	// γ_w's point: per-pulse communication O(kn log W) instead of α's
	// O(𝓔). On a dense graph with heavy edges the gap is large.
	g := graph.Complete(24, graph.UniformWeights(64, 15))
	pulses := graph.Diameter(g) + 2

	alphaProcs := NewSPTProcs(g, 0)
	alphaOv, err := RunAlpha(g, alphaProcs, pulses)
	if err != nil {
		t.Fatal(err)
	}
	gammaProcs := NewSPTProcs(g, 0)
	gammaOv, err := RunGammaW(g, gammaProcs, pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gammaOv.CommPerPulse >= alphaOv.CommPerPulse {
		t.Errorf("C(γ_w) = %.0f should beat C(α) = %.0f on dense heavy graphs",
			gammaOv.CommPerPulse, alphaOv.CommPerPulse)
	}
}

func TestGammaWUnderRandomDelays(t *testing.T) {
	// The synchronizer's equivalence guarantee is against ANY delay
	// assignment, not just the maximal adversary.
	g := graph.RandomConnected(18, 40, graph.UniformWeights(10, 21), 21)
	want, refPulses := refSPT(t, g, 0)
	for seed := int64(0); seed < 6; seed++ {
		procs := NewSPTProcs(g, 0)
		_, err := RunGammaW(g, procs, refPulses+2, 2,
			sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := SPTDists(procs)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("seed %d: Dist[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestAlphaBetaUnderRandomDelays(t *testing.T) {
	g := graph.RandomConnected(16, 36, graph.UniformWeights(8, 23), 23)
	want, refPulses := refSPT(t, g, 0)
	for seed := int64(0); seed < 4; seed++ {
		for name, run := range map[string]func([]sim.SyncProcess) error{
			"alpha": func(p []sim.SyncProcess) error {
				_, err := RunAlpha(g, p, refPulses+2, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
				return err
			},
			"beta": func(p []sim.SyncProcess) error {
				_, err := RunBeta(g, p, refPulses+2, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
				return err
			},
		} {
			procs := NewSPTProcs(g, 0)
			if err := run(procs); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			got := SPTDists(procs)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("%s seed %d: Dist[%d] = %d, want %d", name, seed, v, got[v], want[v])
				}
			}
		}
	}
}

func TestGammaWUnderCongestion(t *testing.T) {
	// Capacitated links only reorder timing, never semantics.
	g := graph.HeavyChordRing(16, 32)
	want, refPulses := refSPT(t, g, 0)
	procs := NewSPTProcs(g, 0)
	if _, err := RunGammaW(g, procs, refPulses+2, 2, sim.WithCongestion()); err != nil {
		t.Fatal(err)
	}
	got := SPTDists(procs)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("congested: Dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
