// Package synch implements the network synchronizers of §4: protocol
// transformers that execute a protocol written for the *weighted
// synchronous* network (edge e delivers in exactly w(e) pulses) on the
// *weighted asynchronous* network, with bounded per-pulse overhead:
//
//	α — per-pulse safety exchange with every neighbor:
//	    C(α) = O(𝓔) per pulse, T(α) = O(W);
//	β — per-pulse convergecast/broadcast on a (shallow-light) tree:
//	    C(β) = O(𝓥), T(β) = O(𝓓);
//	γ_w — the paper's weighted synchronizer (§4.2): weights normalized
//	    to powers of two (Lemma 4.5), one γ instance per weight level
//	    2^i, pulses divisible by 2^i gated by level i:
//	    C(γ_w) = O(k·n·log W) per pulse, T(γ_w) = O(log_k n·log W).
package synch

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Power returns power(w) = 2^ceil(log2 w), the smallest power of two
// >= w (Def 4.6). Note w <= power(w) < 2w.
func Power(w int64) int64 {
	p := int64(1)
	for p < w {
		p <<= 1
	}
	return p
}

// NextMultiple returns next_w(t): the first time >= t divisible by w
// (Def 4.7 — the paper states "after t", but its own bound
// t <= next_w(t) <= t+(w-1) makes divisible t its own successor).
func NextMultiple(t, w int64) int64 {
	if r := t % w; r != 0 {
		return t + w - r
	}
	return t
}

// NormalizeGraph returns Ĝ: g with every weight rounded up to a power
// of two (Def 4.3). Complexities grow by at most 2x (Lemma 4.5(4)).
func NormalizeGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, Power(e.W))
	}
	return b.MustBuild()
}

// wrapMsg carries an inner protocol message across the normalized
// network, tagged with its inner send pulse so the receiver can delay
// processing to the correct inner arrival pulse (Step 1 of Lemma 4.5:
// arrivals may precede processing times; the message waits in a
// buffer).
type wrapMsg struct {
	InnerPulse int64
	Payload    sim.Message
}

type pendingSend struct {
	to graph.NodeID
	m  wrapMsg
}

// InSynchProc is the protocol transformation of Lemma 4.5: it runs an
// arbitrary weighted-synchronous protocol π on the normalized network
// Ĝ such that the combined protocol π” is "in synch" with Ĝ
// (Def 4.2: edge e carries messages only at pulses divisible by ŵ(e)).
//
//   - inner pulse t executes at outer pulse 4t (slowdown 4, Step 1);
//   - an inner send at pulse t on edge e is transmitted at outer pulse
//     next_{ŵ(e)}(4t) (Step 3), arriving ŵ(e) outer pulses later — in
//     all cases before outer pulse 4(t + w(e)), where it is processed
//     (Step 2).
type InSynchProc struct {
	Inner sim.SyncProcess
	// Orig is the original (pre-normalization) graph; processing times
	// follow its weights.
	Orig *graph.Graph

	outDue      map[int64][]pendingSend
	inDue       map[int64][]sim.SyncMessage
	innerHalted bool
	lastWork    int64 // last outer pulse with scheduled activity
}

var _ sim.SyncProcess = (*InSynchProc)(nil)

// NewInSynch wraps one node's protocol.
func NewInSynch(inner sim.SyncProcess, orig *graph.Graph) *InSynchProc {
	return &InSynchProc{
		Inner:  inner,
		Orig:   orig,
		outDue: make(map[int64][]pendingSend),
		inDue:  make(map[int64][]sim.SyncMessage),
	}
}

// innerCtx adapts the outer synchronous context for the inner protocol.
type innerCtx struct {
	p          *InSynchProc
	outer      sim.SyncContext
	innerPulse int64
}

var _ sim.SyncContext = (*innerCtx)(nil)

func (c *innerCtx) ID() graph.NodeID    { return c.outer.ID() }
func (c *innerCtx) Graph() *graph.Graph { return c.p.Orig }
func (c *innerCtx) Pulse() int64        { return c.innerPulse }

func (c *innerCtx) Send(to graph.NodeID, m sim.Message) {
	wHat := c.outer.Graph().Weight(c.outer.ID(), to)
	at := NextMultiple(4*c.innerPulse, wHat)
	c.p.outDue[at] = append(c.p.outDue[at], pendingSend{
		to: to,
		m:  wrapMsg{InnerPulse: c.innerPulse, Payload: m},
	})
	if due := at + wHat; due > c.p.lastWork {
		c.p.lastWork = due
	}
	// The inner processing happens at outer pulse 4(t + w_orig).
	if due := 4 * (c.innerPulse + c.p.Orig.Weight(c.outer.ID(), to)); due > c.p.lastWork {
		c.p.lastWork = due
	}
}

func (c *innerCtx) Halt() { c.p.innerHalted = true }

// Init runs the inner Init at inner pulse 0 and flushes pulse-0 sends.
func (p *InSynchProc) Init(ctx sim.SyncContext) {
	p.Inner.Init(&innerCtx{p: p, outer: ctx, innerPulse: 0})
	p.flush(ctx, 0)
}

// flush emits the sends scheduled for outer pulse tau.
func (p *InSynchProc) flush(ctx sim.SyncContext, tau int64) {
	for _, s := range p.outDue[tau] {
		ctx.Send(s.to, s.m)
	}
	delete(p.outDue, tau)
}

// Pulse advances the outer clock: buffer arrivals, emit scheduled
// sends, and run the inner protocol on multiples of four.
func (p *InSynchProc) Pulse(ctx sim.SyncContext, inbox []sim.SyncMessage) {
	tau := ctx.Pulse()
	for _, msg := range inbox {
		wm, ok := msg.Payload.(wrapMsg)
		if !ok {
			continue // foreign traffic is not ours to interpret
		}
		innerDue := wm.InnerPulse + p.Orig.Weight(msg.From, ctx.ID())
		p.inDue[innerDue] = append(p.inDue[innerDue], sim.SyncMessage{From: msg.From, Payload: wm.Payload})
		if due := 4 * innerDue; due > p.lastWork {
			p.lastWork = due
		}
	}
	if tau%4 == 0 && tau > 0 && !p.innerHalted {
		t := tau / 4
		p.Inner.Pulse(&innerCtx{p: p, outer: ctx, innerPulse: t}, p.inDue[t])
		delete(p.inDue, t)
	}
	p.flush(ctx, tau)
	if p.innerHalted && tau >= p.lastWork {
		ctx.Halt()
	}
}
