package synch

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// MaxFindProc is a second synchronizer workload: every node floods the
// largest identifier it has seen, improving and re-forwarding as
// better candidates arrive (a synchronous leader-election wave). A
// node halts at the horizon pulse, which any upper bound on 𝓓
// satisfies — by then the global maximum has reached everyone, since a
// candidate travels one weighted unit per pulse in the weighted
// synchronous semantics.
//
// Unlike SPTSyncProc (one wave from one source), every node sends in
// pulse 0 and improvements cascade from many directions, exercising
// the synchronizers under concurrent multi-source traffic.
type MaxFindProc struct {
	// Horizon is the pulse at which the node halts.
	Horizon int64
	// MaxSeen is the largest ID observed; n-1 everywhere on success.
	MaxSeen graph.NodeID
}

var _ sim.SyncProcess = (*MaxFindProc)(nil)

// Init floods this node's own ID.
func (p *MaxFindProc) Init(ctx sim.SyncContext) {
	p.MaxSeen = ctx.ID()
	for _, h := range ctx.Graph().Adj(ctx.ID()) {
		ctx.Send(h.To, int64(ctx.ID()))
	}
}

// Pulse merges candidates and forwards improvements.
func (p *MaxFindProc) Pulse(ctx sim.SyncContext, inbox []sim.SyncMessage) {
	best := p.MaxSeen
	for _, m := range inbox {
		if id, ok := m.Payload.(int64); ok && graph.NodeID(id) > best {
			best = graph.NodeID(id)
		}
	}
	if best > p.MaxSeen {
		p.MaxSeen = best
		for _, h := range ctx.Graph().Adj(ctx.ID()) {
			ctx.Send(h.To, int64(best))
		}
	}
	if ctx.Pulse() >= p.Horizon {
		ctx.Halt()
	}
}

// NewMaxFindProcs builds one MaxFindProc per vertex with a horizon of
// the graph diameter plus slack.
func NewMaxFindProcs(g *graph.Graph) []sim.SyncProcess {
	horizon := graph.Diameter(g) + 1
	procs := make([]sim.SyncProcess, g.N())
	for v := range procs {
		procs[v] = &MaxFindProc{Horizon: horizon}
	}
	return procs
}

// MaxSeenOf extracts the MaxSeen fields.
func MaxSeenOf(procs []sim.SyncProcess) []graph.NodeID {
	out := make([]graph.NodeID, len(procs))
	for v := range procs {
		out[v] = procs[v].(*MaxFindProc).MaxSeen
	}
	return out
}
