package synch

import (
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// SPTSyncProc is the synchronous SPT algorithm of §9.1, written for
// the weighted synchronous network: the source floods a token at pulse
// 0, and because edge e delivers in exactly w(e) pulses, the first
// arrival at a node happens precisely at its weighted distance from
// the source. Time O(𝓓), communication O(𝓔).
//
// It doubles as the conformance workload for the synchronizers: its
// outputs (Dist, Parent) must be identical under SyncRun, α, β and
// γ_w.
type SPTSyncProc struct {
	Source graph.NodeID
	// Dist is the settled distance (-1 until reached).
	Dist int64
	// Parent is the tree parent (-1 at the source).
	Parent graph.NodeID
}

var _ sim.SyncProcess = (*SPTSyncProc)(nil)

// Init floods from the source.
func (s *SPTSyncProc) Init(ctx sim.SyncContext) {
	s.Dist = -1
	s.Parent = -1
	if ctx.ID() != s.Source {
		return
	}
	s.Dist = 0
	for _, h := range ctx.Graph().Adj(ctx.ID()) {
		ctx.Send(h.To, "spt")
	}
	ctx.Halt()
}

// Pulse settles on the first arrival and forwards the token.
func (s *SPTSyncProc) Pulse(ctx sim.SyncContext, inbox []sim.SyncMessage) {
	if s.Dist >= 0 || len(inbox) == 0 {
		return
	}
	s.Dist = ctx.Pulse()
	s.Parent = inbox[0].From
	for _, m := range inbox[1:] {
		if m.From < s.Parent {
			s.Parent = m.From // deterministic tie-break
		}
	}
	for _, h := range ctx.Graph().Adj(ctx.ID()) {
		if h.To != s.Parent {
			ctx.Send(h.To, "spt")
		}
	}
	ctx.Halt()
}

// NewSPTProcs returns one SPTSyncProc per vertex.
func NewSPTProcs(g *graph.Graph, source graph.NodeID) []sim.SyncProcess {
	procs := make([]sim.SyncProcess, g.N())
	for v := range procs {
		procs[v] = &SPTSyncProc{Source: source}
	}
	return procs
}

// SPTDists extracts the Dist fields from a slice of SPTSyncProcs.
func SPTDists(procs []sim.SyncProcess) []int64 {
	out := make([]int64, len(procs))
	for v := range procs {
		out[v] = procs[v].(*SPTSyncProc).Dist
	}
	return out
}
