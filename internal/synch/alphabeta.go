package synch

import (
	"fmt"

	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/slt"
)

// Asynchronous synchronizer messages.
type (
	// MsgProto carries a protocol message with its send pulse; the
	// receiver delivers it to the protocol at pulse Pulse + w(e).
	MsgProto struct {
		Pulse   int64
		Payload sim.Message
	}
	// MsgAck acknowledges a MsgProto (safety detection, §4.1).
	MsgAck struct{ Pulse int64 }
	// MsgSafe announces "this node is safe w.r.t. pulse Pulse" (α: to
	// all neighbors; β: convergecast up the tree).
	MsgSafe struct{ Pulse int64 }
	// MsgGo releases pulse Pulse (β: broadcast down the tree).
	MsgGo struct{ Pulse int64 }
)

// Overhead reports the cost of a synchronized execution.
type Overhead struct {
	// Pulses is the number of protocol pulses executed (beyond Init).
	Pulses int64
	// Stats is the full run accounting; protocol traffic has class
	// "proto", synchronizer traffic "sync", acknowledgments "ack".
	Stats *sim.Stats
	// CommPerPulse is C(ζ) of §1.4.3: synchronizer communication
	// overhead per pulse (acks excluded, as in the paper).
	CommPerPulse float64
	// TimePerPulse is T(ζ): amortized time per pulse.
	TimePerPulse float64
}

func overheadOf(stats *sim.Stats, pulses int64) *Overhead {
	o := &Overhead{Pulses: pulses, Stats: stats}
	if pulses > 0 {
		o.CommPerPulse = float64(stats.CommOf(sim.ClassSync)) / float64(pulses)
		o.TimePerPulse = float64(stats.FinishTime) / float64(pulses)
	}
	return o
}

// engine is the pulse machinery shared by the α and β wrappers: it
// executes the wrapped synchronous protocol pulse by pulse, buffers
// protocol messages until their weighted arrival pulse, and tracks
// unacknowledged sends for safety detection.
type engine struct {
	inner       sim.SyncProcess
	g           *graph.Graph
	maxPulse    int64
	pulse       int64 // next pulse to execute (0 executes Init)
	inbox       map[int64][]sim.SyncMessage
	pendingAcks int
	innerHalted bool
	sent        int
}

func newEngine(inner sim.SyncProcess, g *graph.Graph, maxPulse int64) engine {
	return engine{
		inner:    inner,
		g:        g,
		maxPulse: maxPulse,
		inbox:    make(map[int64][]sim.SyncMessage),
	}
}

// engineCtx is the SyncContext handed to the wrapped protocol.
type engineCtx struct {
	e   *engine
	ctx sim.Context
}

var _ sim.SyncContext = (*engineCtx)(nil)

func (c *engineCtx) ID() graph.NodeID    { return c.ctx.ID() }
func (c *engineCtx) Graph() *graph.Graph { return c.e.g }
func (c *engineCtx) Pulse() int64        { return c.e.pulse }
func (c *engineCtx) Halt()               { c.e.innerHalted = true }

func (c *engineCtx) Send(to graph.NodeID, m sim.Message) {
	c.e.sent++
	c.ctx.Send(to, MsgProto{Pulse: c.e.pulse, Payload: m})
}

// execute runs the next pulse and counts its sends as pending acks.
func (e *engine) execute(ctx sim.Context) int64 {
	t := e.pulse
	e.sent = 0
	if !e.innerHalted {
		ec := &engineCtx{e: e, ctx: ctx}
		if t == 0 {
			e.inner.Init(ec)
		} else {
			e.inner.Pulse(ec, e.inbox[t])
		}
	}
	delete(e.inbox, t)
	e.pendingAcks += e.sent
	e.pulse = t + 1
	return t
}

// buffer stores an arrived protocol message for its due pulse and
// acknowledges it.
func (e *engine) buffer(ctx sim.Context, from graph.NodeID, m MsgProto) {
	ctx.SendClass(from, MsgAck{Pulse: m.Pulse}, sim.ClassAck)
	due := m.Pulse + e.g.Weight(from, ctx.ID())
	if due < e.pulse {
		panic(fmt.Sprintf("synch: node %d got pulse-%d message due at %d but already at %d",
			ctx.ID(), m.Pulse, due, e.pulse))
	}
	e.inbox[due] = append(e.inbox[due], sim.SyncMessage{From: from, Payload: m.Payload})
}

// AlphaProc is synchronizer α (§4.1, [Awe85a]): after each pulse, once
// all of this node's messages are acknowledged it announces safety to
// every neighbor, and generates the next pulse when all neighbors have
// announced safety. C(α) = O(𝓔) per pulse, T(α) = O(W).
type AlphaProc struct {
	engine
	safeRecv  map[int64]int
	announced map[int64]bool
	advancing bool
}

var _ sim.Process = (*AlphaProc)(nil)

// NewAlphaProc wraps one node's protocol under synchronizer α.
func NewAlphaProc(inner sim.SyncProcess, g *graph.Graph, maxPulse int64) *AlphaProc {
	return &AlphaProc{
		engine:    newEngine(inner, g, maxPulse),
		safeRecv:  make(map[int64]int),
		announced: make(map[int64]bool),
	}
}

// Init executes pulse 0.
func (a *AlphaProc) Init(ctx sim.Context) {
	a.execute(ctx)
	a.checkSafe(ctx)
}

func (a *AlphaProc) checkSafe(ctx sim.Context) {
	t := a.pulse - 1
	if a.pendingAcks != 0 || a.announced[t] {
		return
	}
	a.announced[t] = true
	for _, h := range ctx.Neighbors() {
		ctx.SendClass(h.To, MsgSafe{Pulse: t}, sim.ClassSync)
	}
	a.tryAdvance(ctx)
}

func (a *AlphaProc) tryAdvance(ctx sim.Context) {
	if a.advancing {
		return
	}
	a.advancing = true
	defer func() { a.advancing = false }()
	for a.pulse <= a.maxPulse {
		t := a.pulse
		if !a.announced[t-1] || a.safeRecv[t-1] != len(ctx.Neighbors()) {
			return
		}
		a.execute(ctx)
		a.checkSafe(ctx)
		if a.pendingAcks != 0 {
			return // resume from the ack handler
		}
	}
}

// Handle processes synchronizer traffic.
func (a *AlphaProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgProto:
		a.buffer(ctx, from, msg)
	case MsgAck:
		a.pendingAcks--
		a.checkSafe(ctx)
	case MsgSafe:
		a.safeRecv[msg.Pulse]++
		a.tryAdvance(ctx)
	default:
		panic(fmt.Sprintf("synch: α got %T", m))
	}
}

// BetaProc is synchronizer β (§4.1, [Awe85a]) run over a shallow-light
// tree: safety converges up the tree to the leader, which broadcasts
// the next pulse. C(β) = O(𝓥) per pulse, T(β) = O(𝓓) thanks to the
// SLT (classic β over an MST would pay T = O(n𝓓)).
type BetaProc struct {
	engine
	parent    graph.NodeID
	children  []graph.NodeID
	childSafe map[int64]int
	goRecv    map[int64]bool
	reported  map[int64]bool
	advancing bool
}

var _ sim.Process = (*BetaProc)(nil)

// NewBetaProc wraps one node's protocol under synchronizer β with the
// given tree wiring.
func NewBetaProc(inner sim.SyncProcess, g *graph.Graph, maxPulse int64, parent graph.NodeID, children []graph.NodeID) *BetaProc {
	return &BetaProc{
		engine:    newEngine(inner, g, maxPulse),
		parent:    parent,
		children:  children,
		childSafe: make(map[int64]int),
		goRecv:    make(map[int64]bool),
		reported:  make(map[int64]bool),
	}
}

// Init executes pulse 0.
func (b *BetaProc) Init(ctx sim.Context) {
	b.execute(ctx)
	b.checkSafe(ctx)
}

func (b *BetaProc) checkSafe(ctx sim.Context) {
	t := b.pulse - 1
	if b.pendingAcks != 0 || b.reported[t] || b.childSafe[t] != len(b.children) {
		return
	}
	b.reported[t] = true
	if b.parent >= 0 {
		ctx.SendClass(b.parent, MsgSafe{Pulse: t}, sim.ClassSync)
		return
	}
	// Leader: the whole tree is safe w.r.t. t; release pulse t+1.
	b.release(ctx, t+1)
}

func (b *BetaProc) release(ctx sim.Context, t int64) {
	b.goRecv[t] = true
	for _, c := range b.children {
		ctx.SendClass(c, MsgGo{Pulse: t}, sim.ClassSync)
	}
	b.tryAdvance(ctx)
}

func (b *BetaProc) tryAdvance(ctx sim.Context) {
	if b.advancing {
		return
	}
	b.advancing = true
	defer func() { b.advancing = false }()
	for b.pulse <= b.maxPulse && b.goRecv[b.pulse] {
		b.execute(ctx)
		b.checkSafe(ctx)
		if b.pendingAcks != 0 {
			return
		}
	}
}

// Handle processes synchronizer traffic.
func (b *BetaProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgProto:
		b.buffer(ctx, from, msg)
	case MsgAck:
		b.pendingAcks--
		b.checkSafe(ctx)
	case MsgSafe:
		b.childSafe[msg.Pulse]++
		b.checkSafe(ctx)
	case MsgGo:
		b.release(ctx, msg.Pulse)
	default:
		panic(fmt.Sprintf("synch: β got %T", m))
	}
}

// RunAlpha executes the weighted synchronous protocol under
// synchronizer α for the given number of pulses.
func RunAlpha(g *graph.Graph, procs []sim.SyncProcess, pulses int64, opts ...sim.Option) (*Overhead, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("synch: %d processes for %d vertices", len(procs), g.N())
	}
	ps := make([]sim.Process, g.N())
	for v := range ps {
		ps[v] = NewAlphaProc(procs[v], g, pulses)
	}
	stats, err := sim.Run(g, ps, opts...)
	if err != nil {
		return nil, err
	}
	return overheadOf(stats, pulses), nil
}

// RunBeta executes the protocol under synchronizer β over a
// shallow-light tree rooted at the graph's center — the cost-sensitive
// tree choice: C(β) = O(𝓥) per pulse AND T(β) = O(𝓓) per pulse
// simultaneously. (β over an MST matches the communication but pays
// T = O(Diam(MST)) = O(n𝓓); over an SPT it matches the time but pays
// C = O(n𝓥). RunBetaTree exposes the choice for ablation.)
func RunBeta(g *graph.Graph, procs []sim.SyncProcess, pulses int64, opts ...sim.Option) (*Overhead, error) {
	_, center := graph.Radius(g)
	if center < 0 {
		return nil, fmt.Errorf("synch: graph is disconnected")
	}
	tree, _, err := slt.Build(g, center, 2)
	if err != nil {
		return nil, err
	}
	return RunBetaTree(g, procs, pulses, tree, opts...)
}

// RunBetaTree executes synchronizer β over an explicit spanning tree.
func RunBetaTree(g *graph.Graph, procs []sim.SyncProcess, pulses int64, tree *graph.Tree, opts ...sim.Option) (*Overhead, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("synch: %d processes for %d vertices", len(procs), g.N())
	}
	if !tree.Spanning() {
		return nil, fmt.Errorf("synch: β tree does not span")
	}
	ps := make([]sim.Process, g.N())
	for v := range ps {
		ps[v] = NewBetaProc(procs[v], g, pulses, tree.Parent[v], tree.Children(graph.NodeID(v)))
	}
	stats, err := sim.Run(g, ps, opts...)
	if err != nil {
		return nil, err
	}
	return overheadOf(stats, pulses), nil
}
