package synch

import (
	"fmt"
	"math/bits"

	"costsense/internal/cover"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Synchronizer γ_w (§4.2). The network is normalized (weights are
// powers of two) and the protocol is in synch with it (sends on an
// edge of weight 2^i occur only at pulses divisible by 2^i — both
// ensured by the Lemma 4.5 transformation). The edge set is split into
// levels: level i holds the edges of weight exactly 2^i, so each
// message is gated by exactly one level — an equivalent, simpler
// reading of the paper's divisibility formulation. A γ synchronizer
// instance runs per level over a cluster partition of that level's
// subgraph; pulse τ is executed once every level i with 2^i | τ has
// released super-pulse τ/2^i.
//
// Each level-i super-pulse runs the two phases of γ [Awe85a]:
//
//	phase 1: safety convergecast to the cluster leader; the leader
//	         broadcasts "cluster safe", which members relay over the
//	         preferred edges to neighboring clusters;
//	phase 2: once a member has its own cluster's safety and a
//	         "neighbor safe" on every incident preferred edge, it
//	         reports ready; when the leader has all reports it
//	         releases the next super-pulse down the tree.

// levelInfo is the static per-level structure shared by all nodes.
type levelInfo struct {
	level    int
	weight   int64
	member   []bool
	parent   []graph.NodeID
	children [][]graph.NodeID
	prefNbrs [][]graph.NodeID
}

// buildLevels constructs the per-level partitions of ĝ. The γ
// parameter k is the cluster growth factor: hop-radius O(log_k n),
// per-pulse communication O(kn) per level.
func buildLevels(ghat *graph.Graph, k int) []*levelInfo {
	n := ghat.N()
	byLevel := make(map[int][]graph.Edge)
	for _, e := range ghat.Edges() {
		lvl := bits.TrailingZeros64(uint64(e.W))
		byLevel[lvl] = append(byLevel[lvl], e)
	}
	var levels []*levelInfo
	for lvl := 0; lvl < 63; lvl++ {
		edges, ok := byLevel[lvl]
		if !ok {
			continue
		}
		want := make(map[[2]graph.NodeID]bool, len(edges))
		for _, e := range edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			want[[2]graph.NodeID{u, v}] = true
		}
		sub := ghat.Subgraph(func(e graph.Edge) bool {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			return want[[2]graph.NodeID{u, v}] && e.W == int64(1)<<lvl
		})
		factor := k
		if factor < 2 {
			factor = 2
		}
		part := cover.NewPartitionGrowth(sub, factor)
		li := &levelInfo{
			level:    lvl,
			weight:   int64(1) << lvl,
			member:   make([]bool, n),
			parent:   make([]graph.NodeID, n),
			children: make([][]graph.NodeID, n),
			prefNbrs: make([][]graph.NodeID, n),
		}
		for v := range li.parent {
			li.parent[v] = -1
		}
		for v := 0; v < n; v++ {
			if sub.Degree(graph.NodeID(v)) > 0 {
				li.member[v] = true
			}
		}
		for _, tr := range part.Trees {
			for _, v := range tr.Members() {
				if !li.member[v] {
					continue // singleton cluster of a non-member vertex
				}
				if p := tr.Parent[v]; p >= 0 {
					li.parent[v] = p
					li.children[p] = append(li.children[p], v)
				}
			}
		}
		for _, pe := range part.Preferred {
			// Keep only preferred edges between member vertices (the
			// partition covers all of V; isolated vertices form
			// singleton clusters with no incident level edges).
			if li.member[pe.U] && li.member[pe.V] {
				li.prefNbrs[pe.U] = append(li.prefNbrs[pe.U], pe.V)
				li.prefNbrs[pe.V] = append(li.prefNbrs[pe.V], pe.U)
			}
		}
		levels = append(levels, li)
	}
	return levels
}

// γ_w control message kinds.
const (
	gwSafeUp byte = iota + 1
	gwClusterSafe
	gwNbrSafe
	gwReadyUp
	gwGo
)

// MsgGamma is a γ_w control message for one level's super-pulse P.
type MsgGamma struct {
	Level int
	Kind  byte
	P     int64
}

// levelState is one node's dynamic state in one level's γ instance.
type levelState struct {
	info        *levelInfo
	pendingAcks map[int64]int
	executed    map[int64]bool // node has executed pulse P·2^i
	ownSafe     map[int64]bool
	sentSafeUp  map[int64]bool
	childSafe   map[int64]int
	clusterSafe map[int64]bool
	nbrSafe     map[int64]int
	childReady  map[int64]int
	sentReady   map[int64]bool
	released    map[int64]bool // GO received for super-pulse P
}

func newLevelState(info *levelInfo) *levelState {
	return &levelState{
		info:        info,
		pendingAcks: make(map[int64]int),
		executed:    make(map[int64]bool),
		ownSafe:     make(map[int64]bool),
		sentSafeUp:  make(map[int64]bool),
		childSafe:   make(map[int64]int),
		clusterSafe: make(map[int64]bool),
		nbrSafe:     make(map[int64]int),
		childReady:  make(map[int64]int),
		sentReady:   make(map[int64]bool),
		released:    make(map[int64]bool),
	}
}

// GammaWProc is the per-node γ_w wrapper.
type GammaWProc struct {
	inner     sim.SyncProcess // the in-synch transformed protocol
	ghat      *graph.Graph
	maxPulse  int64
	pulse     int64
	inbox     map[int64][]sim.SyncMessage
	levels    []*levelState // states for levels this node belongs to
	sentByLvl map[int]int   // sends of the current pulse per level
	advancing bool
}

var _ sim.Process = (*GammaWProc)(nil)

// gwCtx is the SyncContext handed to the in-synch protocol.
type gwCtx struct {
	p   *GammaWProc
	ctx sim.Context
}

var _ sim.SyncContext = (*gwCtx)(nil)

func (c *gwCtx) ID() graph.NodeID    { return c.ctx.ID() }
func (c *gwCtx) Graph() *graph.Graph { return c.p.ghat }
func (c *gwCtx) Pulse() int64        { return c.p.pulse }
func (c *gwCtx) Halt()               {}

func (c *gwCtx) Send(to graph.NodeID, m sim.Message) {
	w := c.p.ghat.Weight(c.ctx.ID(), to)
	if c.p.pulse%w != 0 {
		panic(fmt.Sprintf("synch: γ_w protocol not in synch: send at pulse %d on weight-%d edge", c.p.pulse, w))
	}
	lvl := bits.TrailingZeros64(uint64(w))
	c.p.sentByLvl[lvl]++
	c.ctx.Send(to, MsgProto{Pulse: c.p.pulse, Payload: m})
}

func (p *GammaWProc) levelState(lvl int) *levelState {
	for _, ls := range p.levels {
		if ls.info.level == lvl {
			return ls
		}
	}
	return nil
}

// Init executes pulse 0 and opens the level-0 safety rounds.
func (p *GammaWProc) Init(ctx sim.Context) {
	p.execute(ctx)
	p.tryAdvance(ctx)
}

// canExecute reports whether every gating level released this pulse.
func (p *GammaWProc) canExecute() bool {
	t := p.pulse
	for _, ls := range p.levels {
		w := ls.info.weight
		if t%w != 0 {
			continue
		}
		if pp := t / w; pp > 0 && !ls.released[pp] {
			return false
		}
	}
	return true
}

// execute runs pulse p.pulse and starts the safety rounds of the
// levels it belongs to.
func (p *GammaWProc) execute(ctx sim.Context) {
	t := p.pulse
	p.sentByLvl = make(map[int]int)
	if t == 0 {
		p.inner.Init(&gwCtx{p: p, ctx: ctx})
	} else {
		p.inner.Pulse(&gwCtx{p: p, ctx: ctx}, p.inbox[t])
	}
	delete(p.inbox, t)
	for _, ls := range p.levels {
		w := ls.info.weight
		if t%w != 0 {
			continue
		}
		pp := t / w
		ls.executed[pp] = true
		ls.pendingAcks[pp] += p.sentByLvl[ls.info.level]
		p.maybeOwnSafe(ctx, ls, pp)
	}
	p.pulse = t + 1
}

func (p *GammaWProc) tryAdvance(ctx sim.Context) {
	if p.advancing {
		return
	}
	p.advancing = true
	defer func() { p.advancing = false }()
	for p.pulse <= p.maxPulse && p.canExecute() {
		p.execute(ctx)
	}
}

func (p *GammaWProc) maybeOwnSafe(ctx sim.Context, ls *levelState, pp int64) {
	if !ls.executed[pp] || ls.pendingAcks[pp] != 0 || ls.ownSafe[pp] {
		return
	}
	ls.ownSafe[pp] = true
	p.maybeSafeUp(ctx, ls, pp)
}

func (p *GammaWProc) send(ctx sim.Context, to graph.NodeID, lvl int, kind byte, pp int64) {
	ctx.SendClass(to, MsgGamma{Level: lvl, Kind: kind, P: pp}, sim.ClassSync)
}

// maybeSafeUp runs phase 1: convergecast safety to the cluster leader.
func (p *GammaWProc) maybeSafeUp(ctx sim.Context, ls *levelState, pp int64) {
	me := int(ctx.ID())
	if !ls.ownSafe[pp] || ls.sentSafeUp[pp] || ls.childSafe[pp] != len(ls.info.children[me]) {
		return
	}
	ls.sentSafeUp[pp] = true
	if par := ls.info.parent[me]; par >= 0 {
		p.send(ctx, par, ls.info.level, gwSafeUp, pp)
		return
	}
	// Cluster leader: the cluster is safe.
	p.onClusterSafe(ctx, ls, pp)
}

// onClusterSafe broadcasts cluster safety down the tree and over the
// preferred edges, then enters phase 2.
func (p *GammaWProc) onClusterSafe(ctx sim.Context, ls *levelState, pp int64) {
	if ls.clusterSafe[pp] {
		return
	}
	ls.clusterSafe[pp] = true
	me := int(ctx.ID())
	for _, c := range ls.info.children[me] {
		p.send(ctx, c, ls.info.level, gwClusterSafe, pp)
	}
	for _, nb := range ls.info.prefNbrs[me] {
		p.send(ctx, nb, ls.info.level, gwNbrSafe, pp)
	}
	p.maybeReady(ctx, ls, pp)
}

// maybeReady runs phase 2: once the node has its own cluster's safety,
// a neighbor-safe on every incident preferred edge, and its children's
// readiness, it reports up; the leader releases the next super-pulse.
func (p *GammaWProc) maybeReady(ctx sim.Context, ls *levelState, pp int64) {
	me := int(ctx.ID())
	if !ls.clusterSafe[pp] || ls.sentReady[pp] {
		return
	}
	if ls.nbrSafe[pp] != len(ls.info.prefNbrs[me]) || ls.childReady[pp] != len(ls.info.children[me]) {
		return
	}
	ls.sentReady[pp] = true
	if par := ls.info.parent[me]; par >= 0 {
		p.send(ctx, par, ls.info.level, gwReadyUp, pp)
		return
	}
	p.release(ctx, ls, pp+1)
}

func (p *GammaWProc) release(ctx sim.Context, ls *levelState, pp int64) {
	if ls.released[pp] {
		return
	}
	ls.released[pp] = true
	me := int(ctx.ID())
	for _, c := range ls.info.children[me] {
		p.send(ctx, c, ls.info.level, gwGo, pp)
	}
	p.tryAdvance(ctx)
}

// Handle processes protocol, ack and γ control traffic.
func (p *GammaWProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case MsgProto:
		ctx.SendClass(from, MsgAck{Pulse: msg.Pulse}, sim.ClassAck)
		w := p.ghat.Weight(from, ctx.ID())
		due := msg.Pulse + w
		if due < p.pulse {
			panic(fmt.Sprintf("synch: γ_w late delivery at node %d: due %d < pulse %d", ctx.ID(), due, p.pulse))
		}
		p.inbox[due] = append(p.inbox[due], sim.SyncMessage{From: from, Payload: msg.Payload})
	case MsgAck:
		w := p.ghat.Weight(from, ctx.ID())
		lvl := bits.TrailingZeros64(uint64(w))
		ls := p.levelState(lvl)
		pp := msg.Pulse / w
		ls.pendingAcks[pp]--
		p.maybeOwnSafe(ctx, ls, pp)
	case MsgGamma:
		ls := p.levelState(msg.Level)
		if ls == nil {
			panic(fmt.Sprintf("synch: node %d got γ message for foreign level %d", ctx.ID(), msg.Level))
		}
		switch msg.Kind {
		case gwSafeUp:
			ls.childSafe[msg.P]++
			p.maybeSafeUp(ctx, ls, msg.P)
		case gwClusterSafe:
			p.onClusterSafe(ctx, ls, msg.P)
		case gwNbrSafe:
			ls.nbrSafe[msg.P]++
			p.maybeReady(ctx, ls, msg.P)
		case gwReadyUp:
			ls.childReady[msg.P]++
			p.maybeReady(ctx, ls, msg.P)
		case gwGo:
			me := int(ctx.ID())
			for _, c := range ls.info.children[me] {
				p.send(ctx, c, ls.info.level, gwGo, msg.P)
			}
			ls.released[msg.P] = true
			p.tryAdvance(ctx)
		}
	default:
		panic(fmt.Sprintf("synch: γ_w got %T", m))
	}
}

// RunGammaW executes a weighted synchronous protocol under
// synchronizer γ_w with cluster parameter k: the network is
// normalized, the protocol passed through the Lemma 4.5
// transformation, and the result driven on the asynchronous simulator.
// innerPulses is the pulse horizon of the original protocol (e.g. the
// pulse count of its reference SyncRun); the transformed run executes
// 4·innerPulses+4 normalized pulses.
func RunGammaW(g *graph.Graph, procs []sim.SyncProcess, innerPulses int64, k int, opts ...sim.Option) (*Overhead, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("synch: %d processes for %d vertices", len(procs), g.N())
	}
	if k < 1 {
		return nil, fmt.Errorf("synch: k must be >= 1, got %d", k)
	}
	ghat := NormalizeGraph(g)
	infos := buildLevels(ghat, k)
	outer := 4*innerPulses + 4

	ps := make([]sim.Process, g.N())
	for v := range ps {
		var states []*levelState
		for _, li := range infos {
			if li.member[v] {
				states = append(states, newLevelState(li))
			}
		}
		ps[v] = &GammaWProc{
			inner:    NewInSynch(procs[v], g),
			ghat:     ghat,
			maxPulse: outer,
			inbox:    make(map[int64][]sim.SyncMessage),
			levels:   states,
		}
	}
	stats, err := sim.Run(ghat, ps, opts...)
	if err != nil {
		return nil, err
	}
	// Overhead is reported per original-protocol pulse.
	return overheadOf(stats, innerPulses), nil
}
