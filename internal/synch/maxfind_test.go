package synch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/sim"
	"costsense/internal/slt"
)

func checkMaxFind(t *testing.T, g *graph.Graph, got []graph.NodeID) {
	t.Helper()
	want := graph.NodeID(g.N() - 1)
	for v, m := range got {
		if m != want {
			t.Fatalf("node %d learned max %d, want %d", v, m, want)
		}
	}
}

func TestMaxFindReference(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.UniformWeights(12, 3), 3)
	procs := NewMaxFindProcs(g)
	if _, err := sim.SyncRun(g, procs, 1_000_000); err != nil {
		t.Fatal(err)
	}
	checkMaxFind(t, g, MaxSeenOf(procs))
}

func TestMaxFindUnderAllSynchronizers(t *testing.T) {
	// Multi-source concurrent waves: a harder conformance workload for
	// the synchronizers than the single-source SPT flood.
	g := graph.RandomConnected(20, 50, graph.UniformWeights(9, 5), 5)
	refProcs := NewMaxFindProcs(g)
	ref, err := sim.SyncRun(g, refProcs, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	pulses := ref.Stats.Pulses + 2

	runs := []struct {
		name string
		run  func([]sim.SyncProcess) error
	}{
		{"alpha", func(p []sim.SyncProcess) error { _, err := RunAlpha(g, p, pulses); return err }},
		{"beta", func(p []sim.SyncProcess) error { _, err := RunBeta(g, p, pulses); return err }},
		{"gammaW k=2", func(p []sim.SyncProcess) error { _, err := RunGammaW(g, p, pulses, 2); return err }},
		{"gammaW k=4", func(p []sim.SyncProcess) error { _, err := RunGammaW(g, p, pulses, 4); return err }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			procs := NewMaxFindProcs(g)
			if err := r.run(procs); err != nil {
				t.Fatal(err)
			}
			checkMaxFind(t, g, MaxSeenOf(procs))
		})
	}
}

func TestMaxFindProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		g := graph.RandomConnected(n, n-1+rng.Intn(n), graph.UniformWeights(8, seed), seed)
		procs := NewMaxFindProcs(g)
		ref, err := sim.SyncRun(g, procs, 1_000_000)
		if err != nil {
			return false
		}
		for _, m := range MaxSeenOf(procs) {
			if m != graph.NodeID(n-1) {
				return false
			}
		}
		gw := NewMaxFindProcs(g)
		if _, err := RunGammaW(g, gw, ref.Stats.Pulses+2, 2); err != nil {
			t.Log(err)
			return false
		}
		for _, m := range MaxSeenOf(gw) {
			if m != graph.NodeID(n-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaTreeAblation(t *testing.T) {
	// β over the SLT must simultaneously approach the MST's comm and
	// the SPT's time on the separation instance.
	g := graph.ShallowLightGap(64)
	hub := graph.NodeID(g.N() - 1)
	pulses := graph.Diameter(g) + 2

	runOn := func(t *testing.T, tree *graph.Tree) *Overhead {
		t.Helper()
		ov, err := RunBetaTree(g, NewSPTProcs(g, hub), pulses, tree)
		if err != nil {
			t.Fatal(err)
		}
		return ov
	}
	sltTree, _, err := slt.Build(g, hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	mstTree := graph.PrimTree(g, hub)
	sptTree := graph.Dijkstra(g, hub).Tree(g)

	ovSLT := runOn(t, sltTree)
	ovMST := runOn(t, mstTree)
	ovSPT := runOn(t, sptTree)
	if ovSLT.CommPerPulse > 2*ovMST.CommPerPulse {
		t.Errorf("SLT comm/pulse %.0f should be within 2x of MST's %.0f", ovSLT.CommPerPulse, ovMST.CommPerPulse)
	}
	if ovSLT.TimePerPulse > 4*ovSPT.TimePerPulse {
		t.Errorf("SLT time/pulse %.0f should be within 4x of SPT's %.0f", ovSLT.TimePerPulse, ovSPT.TimePerPulse)
	}
	if ovMST.TimePerPulse < 2*ovSLT.TimePerPulse {
		t.Errorf("MST time/pulse %.0f should be far above SLT's %.0f on the separation instance",
			ovMST.TimePerPulse, ovSLT.TimePerPulse)
	}
	if ovSPT.CommPerPulse < 2*ovSLT.CommPerPulse {
		t.Errorf("SPT comm/pulse %.0f should be far above SLT's %.0f on the separation instance",
			ovSPT.CommPerPulse, ovSLT.CommPerPulse)
	}
}
