// Package harness fans independent experiment trials across a worker
// pool. Each trial is a pure function of its index (seed × protocol ×
// graph are encoded by the caller), so trials can run on any worker in
// any order while results come back in index order — parallel runs
// produce byte-identical tables to serial ones.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sink receives per-trial telemetry from an indexed run. Callbacks
// fire from worker goroutines in completion order — which is
// scheduler-dependent — so a Sink must be safe for concurrent use and
// must treat what it hears as telemetry, never as input to results
// (the results themselves stay index-ordered and deterministic).
// internal/obs.Progress is the bundled implementation.
type Sink interface {
	// TrialStart fires as a worker picks up trial index.
	TrialStart(index int)
	// TrialDone fires after trial index completes; done counts
	// finished trials (1..total) and total is the sweep size.
	TrialDone(index, done, total int)
}

// RunIndexed evaluates fn(0..n-1) on min(GOMAXPROCS, n) workers and
// returns the results in index order. Every index runs even when some
// fail; if any call fails, RunIndexed returns the error of the failing
// call with the smallest index. Both the results and the reported
// error are therefore independent of goroutine scheduling. fn must be
// safe for concurrent calls with distinct indices.
func RunIndexed[T any](n int, fn func(int) (T, error)) ([]T, error) {
	return RunIndexedObserved(n, fn, nil)
}

// workerCount sizes the pool: min(procs, n), clamped to at least one
// worker. The clamp matters when the reported parallelism is zero or
// negative (an environment override, or a future runtime that forwards
// a caller's bogus setting) — without it the pool would start no
// workers and wg.Wait would block forever.
func workerCount(procs, n int) int {
	w := procs
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexedObserved is RunIndexed with an optional progress sink; a
// nil sink adds no overhead. The sink observes scheduling (completion
// order, wall time); the returned results are identical to RunIndexed.
func RunIndexedObserved[T any](n int, fn func(int) (T, error), sink Sink) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	//costsense:nondet-ok sizes the worker pool only; results and errors are reported in index order
	workers := workerCount(runtime.GOMAXPROCS(0), n)
	out := make([]T, n)
	errs := make([]error, n)
	var next, done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if sink != nil {
					sink.TrialStart(i)
				}
				out[i], errs[i] = fn(i)
				if sink != nil {
					sink.TrialDone(i, int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
