// Package harness fans independent experiment trials across a worker
// pool. Each trial is a pure function of its index (seed × protocol ×
// graph are encoded by the caller), so trials can run on any worker in
// any order while results come back in index order — parallel runs
// produce byte-identical tables to serial ones.
package harness

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sink receives per-trial telemetry from an indexed run. Callbacks
// fire from worker goroutines in completion order — which is
// scheduler-dependent — so a Sink must be safe for concurrent use and
// must treat what it hears as telemetry, never as input to results
// (the results themselves stay index-ordered and deterministic).
// internal/obs.Progress is the bundled implementation.
type Sink interface {
	// TrialStart fires as a worker picks up trial index.
	TrialStart(index int)
	// TrialDone fires after trial index completes; done counts
	// finished trials (1..total) and total is the sweep size.
	TrialDone(index, done, total int)
}

// RunIndexed evaluates fn(0..n-1) on min(GOMAXPROCS, n) workers and
// returns the results in index order. Every index runs even when some
// fail; if any call fails, RunIndexed returns the error of the failing
// call with the smallest index. Both the results and the reported
// error are therefore independent of goroutine scheduling. fn must be
// safe for concurrent calls with distinct indices.
func RunIndexed[T any](n int, fn func(int) (T, error)) ([]T, error) {
	return RunIndexedObserved(n, fn, nil)
}

// workerCount sizes the pool: min(procs, n), clamped to at least one
// worker. The clamp matters when the reported parallelism is zero or
// negative (an environment override, or a future runtime that forwards
// a caller's bogus setting) — without it the pool would start no
// workers and wg.Wait would block forever.
func workerCount(procs, n int) int {
	w := procs
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexedObserved is RunIndexed with an optional progress sink; a
// nil sink adds no overhead. The sink observes scheduling (completion
// order, wall time); the returned results are identical to RunIndexed.
func RunIndexedObserved[T any](n int, fn func(int) (T, error), sink Sink) ([]T, error) {
	//costsense:ctx-ok compat wrapper: non-cancellable callers run every trial to completion by design
	return RunIndexedPooled(context.Background(), n, nil,
		func(_ context.Context, _ struct{}, i int) (T, error) { return fn(i) }, sink)
}

// RunIndexedPooled is the full-featured indexed runner behind
// RunIndexed: trials additionally receive a cancellation context and a
// per-worker state value.
//
// newState, when non-nil, runs once per worker goroutine before it
// picks up trials; the value it returns is passed to every trial that
// worker executes. This is how sweeps thread *reusable* scratch state
// (a sim.Pool recycling network arenas, scratch buffers) through the
// pool without any locking: state S is owned by exactly one goroutine
// for the whole run. Because trials are distributed to workers
// dynamically, results must not depend on which worker (hence which
// state value) a trial lands on — with sim.Pool they don't, by the
// Reset golden contract.
//
// Cancelling ctx stops workers from picking up further trials; trials
// already in flight run to completion (a simulator run is not
// interruptible mid-event-loop). A cancelled run returns ctx's error;
// otherwise errors report as in RunIndexed (lowest failing index).
func RunIndexedPooled[S, T any](ctx context.Context, n int, newState func() S, fn func(context.Context, S, int) (T, error), sink Sink) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	//costsense:nondet-ok sizes the worker pool only; results and errors are reported in index order
	workers := workerCount(runtime.GOMAXPROCS(0), n)
	out := make([]T, n)
	errs := make([]error, n)
	var next, done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var state S
			if newState != nil {
				state = newState()
			}
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if sink != nil {
					sink.TrialStart(i)
				}
				out[i], errs[i] = fn(ctx, state, i)
				if sink != nil {
					sink.TrialDone(i, int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
