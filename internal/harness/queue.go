package harness

import (
	"context"
	"errors"
	"sync"
)

// Queue errors, distinguishable by callers that map them to transport
// responses (the experiment server returns 429 for a full queue and
// 503 for a closed one).
var (
	// ErrQueueFull: the queue is at capacity; retry after backpressure.
	ErrQueueFull = errors.New("harness: job queue full")
	// ErrQueueClosed: the queue no longer accepts jobs (shutting down).
	ErrQueueClosed = errors.New("harness: job queue closed")
)

// Job is one unit of queued work. It receives the run context the
// queue's Run loop was started with; a job that fans out trials should
// pass that context to RunIndexedPooled so a drain deadline can stop
// it between trials.
type Job func(context.Context)

// Queue is a bounded FIFO job queue with non-blocking admission — the
// backpressure primitive of the experiment server. Producers TrySubmit
// from any goroutine and get ErrQueueFull instead of blocking when the
// bound is hit; recovery re-admission uses the blocking Submit, which
// waits for space instead (a restart must never drop a journaled job
// to a full queue). A single Run loop executes jobs in admission
// order, so each job's trials own the whole worker pool and two jobs
// never interleave their simulator runs (which keeps per-worker
// sim.Pool reuse sound).
//
// The jobs channel is never closed — shutdown is signalled through
// closedCh instead, so a Submit blocked in a channel send can never
// race a close into a panic.
type Queue struct {
	mu       sync.Mutex
	jobs     chan Job
	closed   bool
	closedCh chan struct{} // closed by Close; wakes blocked Submits and Run
}

// NewQueue builds a queue admitting at most capacity pending jobs
// (capacity <= 0 means 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{jobs: make(chan Job, capacity), closedCh: make(chan struct{})}
}

// TrySubmit enqueues j without blocking: ErrQueueFull when the queue
// is at capacity, ErrQueueClosed after Close.
func (q *Queue) TrySubmit(j Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Submit enqueues j, blocking until space frees up, the queue closes
// (ErrQueueClosed), or ctx is cancelled (ctx.Err()). It is the
// admission path for work that must not be dropped — the experiment
// server's restart recovery re-enqueues journaled jobs through it —
// while interactive submissions keep the fail-fast TrySubmit/429 path.
//
// A Submit racing Close may still win the send; the job is then either
// executed by Run's drain pass or left for the caller's shutdown
// bookkeeping, exactly like a job admitted just before Close.
func (q *Queue) Submit(ctx context.Context, j Job) error {
	q.mu.Lock()
	closed := q.closed
	q.mu.Unlock()
	if closed {
		return ErrQueueClosed
	}
	select {
	case q.jobs <- j:
		return nil
	case <-q.closedCh:
		return ErrQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Len reports the number of jobs admitted but not yet started.
func (q *Queue) Len() int { return len(q.jobs) }

// Cap reports the admission bound.
func (q *Queue) Cap() int { return cap(q.jobs) }

// Close rejects all further submissions. Jobs already admitted still
// run; once they finish, Run returns. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.closedCh)
	}
}

// Run executes admitted jobs one at a time, in admission order, until
// the queue is Closed and drained, or ctx is cancelled — whichever
// comes first. ctx is also handed to every job, so cancelling it both
// stops the loop and tells the running job to wind down. Run is the
// queue's single consumer; call it from exactly one goroutine.
func (q *Queue) Run(ctx context.Context) {
	for {
		// Prefer cancellation when both are ready: a drain deadline
		// must win over a backlog.
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-ctx.Done():
			return
		case j := <-q.jobs:
			j(ctx)
		case <-q.closedCh:
			q.drain(ctx)
			return
		}
	}
}

// drain runs the backlog left in the buffer at Close, still honoring
// cancellation between jobs, and returns at the first empty poll.
func (q *Queue) drain(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case j := <-q.jobs:
			j(ctx)
		default:
			return
		}
	}
}
