package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueBackpressure: admission beyond capacity fails fast with
// ErrQueueFull while no consumer is draining, and admission after
// Close fails with ErrQueueClosed.
func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	nop := func(context.Context) {}
	if err := q.TrySubmit(nop); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(nop); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(nop); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("Len/Cap = %d/%d, want 2/2", q.Len(), q.Cap())
	}
	q.Close()
	q.Close() // idempotent
	if err := q.TrySubmit(nop); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: err = %v, want ErrQueueClosed", err)
	}
}

// TestQueueRunDrains: Run executes admitted jobs in admission order
// and returns once the queue is closed and empty.
func TestQueueRunDrains(t *testing.T) {
	q := NewQueue(8)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := q.TrySubmit(func(context.Context) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	done := make(chan struct{})
	go func() { q.Run(context.Background()); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after close+drain")
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs ran out of admission order: %v", order)
		}
	}
}

// TestQueueRunCancel: cancelling the run context stops the loop with
// jobs still pending.
func TestQueueRunCancel(t *testing.T) {
	q := NewQueue(8)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	if err := q.TrySubmit(func(context.Context) { close(started); <-release; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(func(context.Context) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { q.Run(ctx); close(done) }()
	<-started
	cancel()
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran after cancel, want 1 (the in-flight one)", got)
	}
}

// TestQueueCloseSubmitRace: Close racing concurrent TrySubmits from
// many goroutines must never panic (an unsynchronized close of the
// jobs channel concurrent with a send would) and must leave every
// later submission rejected with ErrQueueClosed. Under -race — the
// nightly CI mode — this also proves the admission path is properly
// synchronized against shutdown.
func TestQueueCloseSubmitRace(t *testing.T) {
	q := NewQueue(4)
	runDone := make(chan struct{})
	go func() { q.Run(context.Background()); close(runDone) }()

	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := q.TrySubmit(func(context.Context) { admitted.Add(1) })
				if errors.Is(err, ErrQueueClosed) {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let submitters and consumer overlap
	q.Close()
	wg.Wait()
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after close+drain")
	}
	if err := q.TrySubmit(func(context.Context) {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: err = %v, want ErrQueueClosed", err)
	}
	if admitted.Load() == 0 {
		t.Fatal("no job was ever admitted; the race never happened")
	}
}

// TestRunIndexedPooledState: every trial sees the state built by its
// worker, each worker builds state exactly once, and results stay
// index-ordered.
func TestRunIndexedPooledState(t *testing.T) {
	var states atomic.Int64
	type scratch struct{ uses int }
	out, err := RunIndexedPooled(context.Background(), 64,
		func() *scratch { states.Add(1); return &scratch{} },
		func(_ context.Context, s *scratch, i int) (int, error) {
			s.uses++
			return i * i, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if got := states.Load(); got < 1 || got > 64 {
		t.Fatalf("newState ran %d times, want between 1 and worker count", got)
	}
}

// TestRunIndexedPooledCancel: a cancelled context surfaces as the
// run's error and stops further trials.
func TestRunIndexedPooledCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := RunIndexedPooled(ctx, 1_000_000, nil,
		func(ctx context.Context, _ struct{}, i int) (int, error) {
			if ran.Add(1) == 1 {
				cancel()
			}
			return i, nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1_000_000 {
		t.Fatalf("cancellation did not stop the sweep (%d trials ran)", got)
	}
}

// TestRunIndexedPooledNilState: a nil newState is allowed and passes
// the zero value.
func TestRunIndexedPooledNilState(t *testing.T) {
	out, err := RunIndexedPooled(context.Background(), 3, nil,
		func(_ context.Context, s struct{}, i int) (int, error) { return i + 1, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("unexpected results %v", out)
	}
}

// TestQueueSubmitBlocksForSpace: the blocking Submit parks on a full
// queue and completes as soon as the consumer frees a slot — the
// no-drop admission path recovery re-enqueues journaled jobs through.
func TestQueueSubmitBlocksForSpace(t *testing.T) {
	q := NewQueue(1)
	nop := func(context.Context) {}
	if err := q.Submit(context.Background(), nop); err != nil {
		t.Fatal(err)
	}
	submitted := make(chan error, 1)
	go func() { submitted <- q.Submit(context.Background(), nop) }()
	select {
	case err := <-submitted:
		t.Fatalf("Submit on a full queue returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	// Draining one job frees the slot and unblocks the Submit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { q.Run(ctx); close(done) }()
	if err := <-submitted; err != nil {
		t.Fatalf("Submit after space freed: %v", err)
	}
	q.Close()
	<-done
}

// TestQueueSubmitCtxCancel: a blocked Submit honors its context.
func TestQueueSubmitCtxCancel(t *testing.T) {
	q := NewQueue(1)
	nop := func(context.Context) {}
	if err := q.Submit(context.Background(), nop); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	submitted := make(chan error, 1)
	go func() { submitted <- q.Submit(ctx, nop) }()
	cancel()
	if err := <-submitted; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Submit: err = %v, want context.Canceled", err)
	}
}

// TestQueueSubmitUnblocksOnClose: Close wakes a parked Submit with
// ErrQueueClosed instead of leaving it hung on a queue nothing will
// ever drain.
func TestQueueSubmitUnblocksOnClose(t *testing.T) {
	q := NewQueue(1)
	nop := func(context.Context) {}
	if err := q.Submit(context.Background(), nop); err != nil {
		t.Fatal(err)
	}
	submitted := make(chan error, 1)
	go func() { submitted <- q.Submit(context.Background(), nop) }()
	time.Sleep(10 * time.Millisecond) // let it park
	q.Close()
	if err := <-submitted; !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit across Close: err = %v, want ErrQueueClosed", err)
	}
	if err := q.Submit(context.Background(), nop); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrQueueClosed", err)
	}
}
