package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunIndexedOrdersResults(t *testing.T) {
	got, err := RunIndexed(100, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	got, err := RunIndexed(0, func(i int) (int, error) {
		t.Error("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("RunIndexed(0) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestRunIndexedReturnsLowestIndexError(t *testing.T) {
	errWant := errors.New("boom at 3")
	_, err := RunIndexed(64, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errWant
		case 40:
			return 0, errors.New("boom at 40")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if err.Error() != "boom at 3" {
		t.Fatalf("err = %v, want %v", err, errWant)
	}
}

func TestRunIndexedRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc runtime; concurrency not observable")
	}
	var inFlight, peak atomic.Int64
	_, err := RunIndexed(32, func(i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			runtime.Gosched()
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func TestRunIndexedEachIndexOnce(t *testing.T) {
	const n = 500
	var calls [n]atomic.Int64
	_, err := RunIndexed(n, func(i int) (int, error) {
		calls[i].Add(1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestRunIndexedDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		got, err := RunIndexed(50, func(i int) (string, error) {
			return fmt.Sprintf("%d:%d", i, i*7%13), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(got)
	}
	first := run()
	for r := 0; r < 5; r++ {
		if again := run(); again != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", r, again, first)
		}
	}
}

// recordingSink collects sink callbacks; concurrency-safe via atomics.
type recordingSink struct {
	starts [64]atomic.Int64
	dones  [64]atomic.Int64
	peak   atomic.Int64
	total  atomic.Int64
	badSeq atomic.Int64
}

func (s *recordingSink) TrialStart(i int) { s.starts[i].Add(1) }

func (s *recordingSink) TrialDone(i, done, total int) {
	if s.starts[i].Load() != 1 {
		s.badSeq.Add(1) // done before start
	}
	s.dones[i].Add(1)
	s.total.Store(int64(total))
	for {
		p := s.peak.Load()
		if int64(done) <= p || s.peak.CompareAndSwap(p, int64(done)) {
			break
		}
	}
}

func TestRunIndexedObservedSink(t *testing.T) {
	const n = 64
	sink := &recordingSink{}
	got, err := RunIndexedObserved(n, func(i int) (int, error) { return i * 3, nil }, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("got[%d] = %d: sink must not perturb results", i, v)
		}
	}
	for i := 0; i < n; i++ {
		if s, d := sink.starts[i].Load(), sink.dones[i].Load(); s != 1 || d != 1 {
			t.Errorf("index %d: %d starts, %d dones, want 1/1", i, s, d)
		}
	}
	if sink.peak.Load() != n {
		t.Errorf("max done = %d, want %d", sink.peak.Load(), n)
	}
	if sink.total.Load() != n {
		t.Errorf("total reported %d, want %d", sink.total.Load(), n)
	}
	if sink.badSeq.Load() != 0 {
		t.Error("TrialDone fired before TrialStart for some index")
	}
}

func TestRunIndexedObservedNilSink(t *testing.T) {
	got, err := RunIndexedObserved(10, func(i int) (int, error) { return i, nil }, nil)
	if err != nil || len(got) != 10 {
		t.Fatalf("nil sink run = (%v, %v)", got, err)
	}
}

// TestWorkerCountClamp pins the pool-sizing rule: min(procs, n), never
// below one worker — a zero or negative parallelism report must not
// produce an empty pool that deadlocks RunIndexed.
func TestWorkerCountClamp(t *testing.T) {
	cases := []struct {
		procs, n, want int
	}{
		{procs: 8, n: 3, want: 3},
		{procs: 2, n: 100, want: 2},
		{procs: 1, n: 1, want: 1},
		{procs: 0, n: 5, want: 1},
		{procs: -4, n: 5, want: 1},
		{procs: 0, n: 1, want: 1},
	}
	for _, c := range cases {
		if got := workerCount(c.procs, c.n); got != c.want {
			t.Errorf("workerCount(%d, %d) = %d, want %d", c.procs, c.n, got, c.want)
		}
	}
}
