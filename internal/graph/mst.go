package graph

import (
	"sort"

	"costsense/internal/pq"
)

// DSU is a union-find structure with path compression and union by rank.
type DSU struct {
	parent []int
	rank   []byte
}

// NewDSU returns a DSU over n elements.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]byte, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the representative of x.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether they were distinct.
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	return true
}

// Kruskal computes a minimum spanning tree (forest, when disconnected)
// and returns its edges. Ties are broken by edge ID, making the result
// deterministic.
func Kruskal(g *Graph) []Edge {
	edges := make([]Edge, len(g.Edges()))
	copy(edges, g.Edges())
	ids := make([]int, len(edges))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := edges[ids[a]], edges[ids[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ids[a] < ids[b]
	})
	dsu := NewDSU(g.N())
	var out []Edge
	for _, i := range ids {
		e := edges[i]
		if dsu.Union(int(e.U), int(e.V)) {
			out = append(out, e)
		}
	}
	return out
}

// MSTWeight returns 𝓥 = w(MST(G)), the minimum cost of disseminating a
// message to all vertices. It returns -1 when the graph is disconnected.
func MSTWeight(g *Graph) int64 {
	es := Kruskal(g)
	if len(es) != g.N()-1 && g.N() > 1 {
		return -1
	}
	var s int64
	for _, e := range es {
		s += e.W
	}
	return s
}

type primItem struct {
	v    NodeID
	from NodeID
	w    int64
}

func (x primItem) Less(y primItem) bool {
	if x.w != y.w {
		return x.w < y.w
	}
	if x.v != y.v {
		return x.v < y.v
	}
	return x.from < y.from
}

// PrimTree computes a minimum spanning tree rooted at root. Only the
// component of root is spanned. This is the centralized counterpart of
// Algorithm MSTcentr (§6.3).
//
//costsense:hotpath
func PrimTree(g *Graph, root NodeID) *Tree {
	n := g.N()
	parent := make([]NodeID, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	h := pq.NewHeap[primItem](n)
	//costsense:alloc-ok one closure per call, created outside the extraction loop
	add := func(v NodeID) {
		inTree[v] = true
		for _, e := range g.Adj(v) {
			if !inTree[e.To] {
				h.Push(primItem{v: e.To, from: v, w: e.W})
			}
		}
	}
	add(root)
	for h.Len() > 0 {
		it := h.Pop()
		if inTree[it.v] {
			continue
		}
		parent[it.v] = it.from
		add(it.v)
	}
	//costsense:alloc-ok one tree per call, built after the extraction loop finishes
	return NewTree(g, root, parent)
}

// MSTSubgraph returns the graph consisting of the MST edges only.
func MSTSubgraph(g *Graph) *Graph {
	keep := make(map[Edge]bool)
	for _, e := range Kruskal(g) {
		keep[e] = true
	}
	b := NewBuilder(g.N())
	used := make(map[Edge]bool)
	for _, e := range g.Edges() {
		if keep[e] && !used[e] {
			b.AddEdge(e.U, e.V, e.W)
			used[e] = true
		}
	}
	return b.MustBuild()
}
