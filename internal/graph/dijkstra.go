package graph

import "costsense/internal/pq"

// Unreachable is the distance reported for vertices not connected to the
// source.
const Unreachable = int64(-1)

// ShortestPaths holds the result of a single-source shortest path
// computation: weighted distances and a shortest-path-tree parent array.
type ShortestPaths struct {
	Source NodeID
	Dist   []int64  // Dist[v] = dist(source, v, G); Unreachable if none
	Parent []NodeID // Parent[v] on a shortest path; -1 for source/unreachable
}

type dijkItem struct {
	v    NodeID
	dist int64
}

func (x dijkItem) Less(y dijkItem) bool {
	if x.dist != y.dist {
		return x.dist < y.dist
	}
	return x.v < y.v
}

// Dijkstra computes single-source shortest paths from s.
//
//costsense:hotpath
func Dijkstra(g *Graph, s NodeID) *ShortestPaths {
	n := g.N()
	//costsense:alloc-ok one result allocation per call, outside the relaxation loop
	sp := &ShortestPaths{
		Source: s,
		Dist:   make([]int64, n),
		Parent: make([]NodeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Unreachable
		sp.Parent[i] = -1
	}
	sp.Dist[s] = 0
	h := pq.NewHeap[dijkItem](n)
	h.Push(dijkItem{v: s, dist: 0})
	for h.Len() > 0 {
		it := h.Pop()
		if it.dist != sp.Dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.Adj(it.v) {
			nd := it.dist + e.W
			if sp.Dist[e.To] == Unreachable || nd < sp.Dist[e.To] {
				sp.Dist[e.To] = nd
				sp.Parent[e.To] = it.v
				h.Push(dijkItem{v: e.To, dist: nd})
			}
		}
	}
	return sp
}

// PathTo returns the vertices of a shortest path from the source to v,
// inclusive, or nil when v is unreachable.
func (sp *ShortestPaths) PathTo(v NodeID) []NodeID {
	if sp.Dist[v] == Unreachable {
		return nil
	}
	var rev []NodeID
	for x := v; x != -1; x = sp.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Tree extracts the shortest path tree rooted at the source.
func (sp *ShortestPaths) Tree(g *Graph) *Tree {
	return NewTree(g, sp.Source, sp.Parent)
}

// Dist returns dist(u, v, G), or Unreachable.
func Dist(g *Graph, u, v NodeID) int64 {
	return Dijkstra(g, u).Dist[v]
}

// Eccentricity returns Rad(v, G) = max_u dist(v, u, G). It returns
// Unreachable when the graph is disconnected.
func Eccentricity(g *Graph, v NodeID) int64 {
	sp := Dijkstra(g, v)
	var m int64
	for _, d := range sp.Dist {
		if d == Unreachable {
			return Unreachable
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Diameter returns 𝓓 = Diam(G) = max_{u,v} dist(u, v, G), the maximal
// cost of transmitting a message between a pair of nodes. It returns
// Unreachable when the graph is disconnected. O(n · (m log n)).
func Diameter(g *Graph) int64 {
	var m int64
	for v := 0; v < g.N(); v++ {
		ecc := Eccentricity(g, NodeID(v))
		if ecc == Unreachable {
			return Unreachable
		}
		if ecc > m {
			m = ecc
		}
	}
	return m
}

// Radius returns min_v Rad(v, G) and a vertex achieving it (a center).
// It returns (Unreachable, -1) when the graph is disconnected.
func Radius(g *Graph) (int64, NodeID) {
	best := Unreachable
	var center NodeID = -1
	for v := 0; v < g.N(); v++ {
		ecc := Eccentricity(g, NodeID(v))
		if ecc == Unreachable {
			return Unreachable, -1
		}
		if best == Unreachable || ecc < best {
			best, center = ecc, NodeID(v)
		}
	}
	return best, center
}

// MaxNeighborDist returns d = max_{(u,v) ∈ E} dist(u, v, G), the largest
// weighted distance between network neighbors (§1.4.2). Note d <= W, and
// clock synchronization is interesting exactly when d << W.
func MaxNeighborDist(g *Graph) int64 {
	var m int64
	for v := 0; v < g.N(); v++ {
		sp := Dijkstra(g, NodeID(v))
		for _, h := range g.Adj(NodeID(v)) {
			if d := sp.Dist[h.To]; d > m {
				m = d
			}
		}
	}
	return m
}
