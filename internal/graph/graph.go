// Package graph provides the weighted undirected graphs underlying the
// cost-sensitive model of Awerbuch, Baratz and Peleg: a communication
// graph G = (V, E, w) where the weight w(e) of an edge is both the cost
// of transmitting one message over e and the worst-case delay of e.
//
// The package also computes the weighted analogs of the classical
// complexity parameters used throughout the paper:
//
//	𝓔 = w(G)        total edge weight   (TotalWeight)
//	𝓥 = w(MST(G))   weight of an MST    (MSTWeight)
//	𝓓 = Diam(G)     weighted diameter   (Diameter)
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a vertex. Vertices are always 0..n-1.
type NodeID int

// EdgeID indexes into Graph.Edges(). Every undirected edge has one ID.
type EdgeID int

// Edge is one undirected weighted edge. ID is the edge's index in
// Graph.Edges(); Build assigns it, so edges handed to a Builder may
// leave it zero.
type Edge struct {
	U, V NodeID
	W    int64
	ID   EdgeID
}

// Half is one directed half of an undirected edge, as seen from a vertex's
// adjacency list.
type Half struct {
	To NodeID
	W  int64
	ID EdgeID
}

// Graph is an immutable weighted undirected graph. Build one with a
// Builder or a generator; the zero value is an empty graph.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Half
}

var (
	// ErrVertexRange reports an edge endpoint outside 0..n-1.
	ErrVertexRange = errors.New("graph: vertex out of range")
	// ErrSelfLoop reports a self loop, which the model disallows.
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrWeightRange reports a non-positive edge weight.
	ErrWeightRange = errors.New("graph: edge weight must be >= 1")
)

// Builder accumulates edges for a Graph.
type Builder struct {
	n     int
	edges []Edge
	err   error
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records an undirected edge of weight w. Errors are sticky and
// reported by Build.
func (b *Builder) AddEdge(u, v NodeID, w int64) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n:
		b.err = fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, b.n)
	case u == v:
		b.err = fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	case w < 1:
		b.err = fmt.Errorf("%w: got %d", ErrWeightRange, w)
	default:
		b.edges = append(b.edges, Edge{U: u, V: v, W: w})
	}
}

// Build finalizes the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		n:     b.n,
		edges: make([]Edge, len(b.edges)),
		adj:   make([][]Half, b.n),
	}
	copy(g.edges, b.edges)
	for i := range g.edges {
		g.edges[i].ID = EdgeID(i)
	}
	deg := make([]int, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := range g.adj {
		g.adj[v] = make([]Half, 0, deg[v])
	}
	for i, e := range g.edges {
		id := EdgeID(i)
		g.adj[e.U] = append(g.adj[e.U], Half{To: e.V, W: e.W, ID: id})
		g.adj[e.V] = append(g.adj[e.V], Half{To: e.U, W: e.W, ID: id})
	}
	return g, nil
}

// MustBuild is Build for tests and generators with known-good input.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Adj returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Adj(v NodeID) []Half { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Weight returns the weight of the edge between u and v, or -1 when no
// such edge exists. When parallel edges exist the lightest is returned.
func (g *Graph) Weight(u, v NodeID) int64 {
	best := int64(-1)
	for _, h := range g.adj[u] {
		if h.To == v && (best < 0 || h.W < best) {
			best = h.W
		}
	}
	return best
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.Weight(u, v) >= 0 }

// TotalWeight returns 𝓔 = w(G), the cost of sending one message over
// every edge of the network.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// MaxWeight returns W = max_e w(e), 0 for an edgeless graph.
func (g *Graph) MaxWeight() int64 {
	var m int64
	for _, e := range g.edges {
		if e.W > m {
			m = e.W
		}
	}
	return m
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.To] {
				seen[h.To] = true
				count++
				stack = append(stack, h.To)
			}
		}
	}
	return count == g.n
}

// Components returns the connected components as sorted vertex lists.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, h := range g.adj[v] {
				if !seen[h.To] {
					seen[h.To] = true
					stack = append(stack, h.To)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph returns the subgraph induced by keeping exactly the edges for
// which keep returns true. Vertex set and IDs are preserved, edge IDs are
// renumbered.
func (g *Graph) Subgraph(keep func(Edge) bool) *Graph {
	b := NewBuilder(g.n)
	for _, e := range g.edges {
		if keep(e) {
			b.AddEdge(e.U, e.V, e.W)
		}
	}
	return b.MustBuild()
}

// InducedSubgraph returns G(S), the subgraph induced by the vertex set S,
// together with the mapping from new vertex IDs back to originals.
func (g *Graph) InducedSubgraph(s []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]NodeID, len(s))
	orig := make([]NodeID, len(s))
	for i, v := range s {
		idx[v] = NodeID(i)
		orig[i] = v
	}
	b := NewBuilder(len(s))
	for _, e := range g.edges {
		u, okU := idx[e.U]
		v, okV := idx[e.V]
		if okU && okV {
			b.AddEdge(u, v, e.W)
		}
	}
	return b.MustBuild(), orig
}
