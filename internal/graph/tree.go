package graph

import "fmt"

// Tree is a rooted spanning structure over (a subset of) the vertices of
// a host graph, represented by a parent array. Weights of tree edges are
// taken from the host graph's metric (the weight used to build the tree),
// stored explicitly so a Tree remains valid independent of its host.
type Tree struct {
	Root     NodeID
	Parent   []NodeID // Parent[v] = -1 for the root and for non-members
	WUp      []int64  // WUp[v] = weight of edge (v, Parent[v])
	member   []bool
	children [][]NodeID
}

// NewTree builds a Tree from a parent array over g. Vertices with
// parent -1 other than the root are treated as non-members. Weights are
// looked up in g; a missing edge weight panics, since it indicates a bug
// in the tree construction.
func NewTree(g *Graph, root NodeID, parent []NodeID) *Tree {
	n := len(parent)
	t := &Tree{
		Root:     root,
		Parent:   make([]NodeID, n),
		WUp:      make([]int64, n),
		member:   make([]bool, n),
		children: make([][]NodeID, n),
	}
	copy(t.Parent, parent)
	t.member[root] = true
	for v := 0; v < n; v++ {
		p := parent[v]
		if NodeID(v) == root || p < 0 {
			continue
		}
		w := g.Weight(NodeID(v), p)
		if w < 0 {
			panic(fmt.Sprintf("graph: tree edge (%d,%d) not in host graph", v, p))
		}
		t.WUp[v] = w
		t.member[v] = true
	}
	for v := 0; v < n; v++ {
		if t.member[v] && NodeID(v) != root {
			t.children[parent[v]] = append(t.children[parent[v]], NodeID(v))
		}
	}
	return t
}

// N returns the size of the parent array (host graph order).
func (t *Tree) N() int { return len(t.Parent) }

// Contains reports whether v is a member of the tree.
func (t *Tree) Contains(v NodeID) bool { return t.member[v] }

// Size returns the number of member vertices.
func (t *Tree) Size() int {
	c := 0
	for _, m := range t.member {
		if m {
			c++
		}
	}
	return c
}

// Children returns the children of v. The caller must not modify it.
func (t *Tree) Children(v NodeID) []NodeID { return t.children[v] }

// Weight returns w(T), the total weight of the tree edges.
func (t *Tree) Weight() int64 {
	var s int64
	for v := range t.Parent {
		if t.member[v] && NodeID(v) != t.Root {
			s += t.WUp[v]
		}
	}
	return s
}

// Depths returns the weighted depth of every member vertex (distance to
// the root along tree edges); non-members get -1.
func (t *Tree) Depths() []int64 {
	d := make([]int64, len(t.Parent))
	for i := range d {
		d[i] = -1
	}
	d[t.Root] = 0
	var rec func(v NodeID)
	rec = func(v NodeID) {
		for _, c := range t.children[v] {
			d[c] = d[v] + t.WUp[c]
			rec(c)
		}
	}
	rec(t.Root)
	return d
}

// Height returns the maximum weighted depth of any member vertex.
func (t *Tree) Height() int64 {
	var m int64
	for _, d := range t.Depths() {
		if d > m {
			m = d
		}
	}
	return m
}

// Diam returns the weighted diameter of the tree (longest path between
// two members along tree edges).
func (t *Tree) Diam() int64 {
	// Standard two-pass: deepest path through each vertex.
	var best int64
	// down[v] = deepest downward weighted distance from v.
	down := make([]int64, len(t.Parent))
	var rec func(v NodeID) int64
	rec = func(v NodeID) int64 {
		var top1, top2 int64 // two deepest child branches
		for _, c := range t.children[v] {
			d := rec(c) + t.WUp[c]
			if d > top1 {
				top1, top2 = d, top1
			} else if d > top2 {
				top2 = d
			}
		}
		if top1+top2 > best {
			best = top1 + top2
		}
		down[v] = top1
		return top1
	}
	rec(t.Root)
	return best
}

// Members returns the member vertices in increasing order.
func (t *Tree) Members() []NodeID {
	var vs []NodeID
	for v := range t.member {
		if t.member[v] {
			vs = append(vs, NodeID(v))
		}
	}
	return vs
}

// Edges returns the tree edges as (child, parent, weight) triples.
func (t *Tree) Edges() []Edge {
	var es []Edge
	for v := range t.Parent {
		if t.member[v] && NodeID(v) != t.Root {
			es = append(es, Edge{U: NodeID(v), V: t.Parent[v], W: t.WUp[v]})
		}
	}
	return es
}

// Spanning reports whether the tree spans all n vertices of its host.
func (t *Tree) Spanning() bool {
	return t.Size() == len(t.Parent)
}

// EulerTour returns the depth-first tour of the tree starting and ending
// at the root: the sequence v(0), v(1), ..., v(2s-2) of vertices visited
// by a DFS token, where s is the tree size. Each tree edge is traversed
// exactly twice (§2.2 step 2 of the SLT algorithm). Children are visited
// in insertion order, making the tour deterministic.
func (t *Tree) EulerTour() []NodeID {
	tour := []NodeID{t.Root}
	var rec func(v NodeID)
	rec = func(v NodeID) {
		for _, c := range t.children[v] {
			tour = append(tour, c)
			rec(c)
			tour = append(tour, v)
		}
	}
	rec(t.Root)
	return tour
}

// PathToRoot returns the vertices from v up to the root, inclusive.
func (t *Tree) PathToRoot(v NodeID) []NodeID {
	var p []NodeID
	for x := v; ; x = t.Parent[x] {
		p = append(p, x)
		if x == t.Root {
			return p
		}
	}
}

// TreeDist returns the weighted distance between two members along tree
// edges (the paper's Path(x, y, T) length).
func (t *Tree) TreeDist(x, y NodeID) int64 {
	depth := t.Depths()
	// Walk both up to their lowest common ancestor.
	var d int64
	for x != y {
		if depth[x] >= depth[y] && x != t.Root {
			d += t.WUp[x]
			x = t.Parent[x]
		} else {
			d += t.WUp[y]
			y = t.Parent[y]
		}
	}
	return d
}
