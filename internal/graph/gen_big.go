package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// UniformWeightsIn draws weights uniformly from [lo, hi]. The sharded
// engine's conservative lookahead windows are bounded below by the
// cheapest cut edge, so scale benchmarks that want wide windows use
// lo >> 1 — something UniformWeights (always [1, maxW]) cannot express.
func UniformWeightsIn(lo, hi int64, seed int64) WeightFn {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("graph: UniformWeightsIn needs 1 <= lo <= hi, got [%d, %d]", lo, hi))
	}
	rng := rand.New(rand.NewSource(seed))
	return func(int, NodeID, NodeID) int64 { return lo + rng.Int63n(hi-lo+1) }
}

// BigFlood generates a connected graph on n vertices and exactly m
// edges, built for millions-of-edges scale: candidate edges are
// deduplicated by sorting packed (u,v) keys instead of the hash map
// RandomConnected uses, which would dominate the build at 10^7 edges.
//
// Every edge spans at most window in vertex-index distance: a random
// spanning "vine" (each vertex attaches to a random earlier vertex
// within the window) plus locality-bounded extra edges. The locality
// is what makes the instance a meaningful parallel-engine workload —
// a contiguous vertex-range partition cuts only edges near the range
// boundaries, so cut sizes stay small and lookahead windows stay
// meaningful, like a physical network with geography would behave.
// Deterministic for a fixed (n, m, window, seed).
func BigFlood(n, m, window int, w WeightFn, seed int64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: BigFlood needs n >= 2, got %d", n))
	}
	if m < n-1 {
		panic(fmt.Sprintf("graph: BigFlood needs m >= n-1 (n=%d m=%d)", n, m))
	}
	if window < 1 {
		window = 1
	}
	maxM := int64(0)
	for v := 1; v < n; v++ {
		d := window
		if v < d {
			d = v
		}
		maxM += int64(d)
	}
	if int64(m) > maxM {
		panic(fmt.Sprintf("graph: BigFlood window %d admits only %d edges on %d vertices, need %d", window, maxM, n, m))
	}

	pack := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	rng := rand.New(rand.NewSource(seed))

	// Spanning vine: connect v to a random earlier vertex at most
	// window back. Tree keys are unique by construction (distinct v in
	// every key's low half... not quite: key low half is max(u,v) = v
	// here since u < v, and v is distinct per iteration).
	tree := make([]uint64, 0, n-1)
	for v := 1; v < n; v++ {
		back := window
		if v < back {
			back = v
		}
		u := v - 1 - rng.Intn(back)
		tree = append(tree, pack(u, v))
	}
	sort.Slice(tree, func(i, j int) bool { return tree[i] < tree[j] })

	inTree := func(k uint64) bool {
		i := sort.Search(len(tree), func(i int) bool { return tree[i] >= k })
		return i < len(tree) && tree[i] == k
	}

	// Extra edges: batched generate, sort, merge-dedup until enough
	// unique non-tree keys exist, then trim the tail to hit m exactly.
	need := m - (n - 1)
	var extras []uint64
	for len(extras) < need {
		batch := need - len(extras)
		batch += batch/16 + 64 // headroom for collisions
		cand := make([]uint64, 0, batch)
		for i := 0; i < batch; i++ {
			u := rng.Intn(n)
			d := 1 + rng.Intn(window)
			v := u + d
			if v >= n {
				v = u - d
				if v < 0 {
					continue
				}
			}
			k := pack(u, v)
			if inTree(k) {
				continue
			}
			cand = append(cand, k)
		}
		cand = append(cand, extras...)
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		uniq := cand[:0]
		var prev uint64
		for i, k := range cand {
			if i > 0 && k == prev {
				continue
			}
			uniq = append(uniq, k)
			prev = k
		}
		extras = uniq
	}
	extras = extras[:need]

	// Merge tree and extras (both sorted, disjoint) so edge IDs follow
	// the global (u,v) order, then draw weights in edge-ID order.
	b := NewBuilder(n)
	i, j, id := 0, 0, 0
	addKey := func(k uint64) {
		u, v := NodeID(k>>32), NodeID(k&0xffffffff)
		b.AddEdge(u, v, w(id, u, v))
		id++
	}
	for i < len(tree) || j < len(extras) {
		switch {
		case j >= len(extras) || (i < len(tree) && tree[i] < extras[j]):
			addKey(tree[i])
			i++
		default:
			addKey(extras[j])
			j++
		}
	}
	return b.MustBuild()
}
