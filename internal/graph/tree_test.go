package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePathTree(t *testing.T) (*Graph, *Tree) {
	t.Helper()
	g := Path(5, ConstWeights(2))
	parent := []NodeID{-1, 0, 1, 2, 3}
	return g, NewTree(g, 0, parent)
}

func TestTreeBasics(t *testing.T) {
	_, tr := samplePathTree(t)
	if !tr.Spanning() || tr.Size() != 5 {
		t.Fatalf("tree should span 5 vertices, got %d", tr.Size())
	}
	if w := tr.Weight(); w != 8 {
		t.Errorf("Weight = %d, want 8", w)
	}
	if h := tr.Height(); h != 8 {
		t.Errorf("Height = %d, want 8", h)
	}
	if d := tr.Diam(); d != 8 {
		t.Errorf("Diam = %d, want 8", d)
	}
	depths := tr.Depths()
	for v, want := range []int64{0, 2, 4, 6, 8} {
		if depths[v] != want {
			t.Errorf("depth[%d] = %d, want %d", v, depths[v], want)
		}
	}
}

func TestTreePartial(t *testing.T) {
	g := Path(5, UnitWeights())
	parent := []NodeID{-1, 0, 1, -1, -1} // only 0,1,2 are members
	tr := NewTree(g, 0, parent)
	if tr.Spanning() {
		t.Error("partial tree reported spanning")
	}
	if tr.Size() != 3 {
		t.Errorf("Size = %d, want 3", tr.Size())
	}
	if tr.Contains(4) {
		t.Error("Contains(4) should be false")
	}
	depths := tr.Depths()
	if depths[3] != -1 || depths[4] != -1 {
		t.Error("non-members should have depth -1")
	}
}

func TestTreeDiamStar(t *testing.T) {
	g := Star(6, ConstWeights(4))
	parent := []NodeID{-1, 0, 0, 0, 0, 0}
	tr := NewTree(g, 0, parent)
	if d := tr.Diam(); d != 8 {
		t.Errorf("star Diam = %d, want 8 (leaf-leaf)", d)
	}
	if h := tr.Height(); h != 4 {
		t.Errorf("star Height = %d, want 4", h)
	}
}

func TestEulerTour(t *testing.T) {
	// Star: tour is 0, 1, 0, 2, 0, ..., visiting each edge twice.
	g := Star(4, UnitWeights())
	tr := NewTree(g, 0, []NodeID{-1, 0, 0, 0})
	tour := tr.EulerTour()
	want := []NodeID{0, 1, 0, 2, 0, 3, 0}
	if len(tour) != len(want) {
		t.Fatalf("tour = %v, want %v", tour, want)
	}
	for i := range tour {
		if tour[i] != want[i] {
			t.Fatalf("tour = %v, want %v", tour, want)
		}
	}
}

func TestEulerTourProperties(t *testing.T) {
	// §2.2: the tour has 2s-1 entries, starts and ends at the root,
	// consecutive entries are tree-adjacent, and each tree edge appears
	// exactly twice.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := RandomConnected(n, n-1+rng.Intn(n), UniformWeights(20, seed), seed)
		tr := PrimTree(g, NodeID(rng.Intn(n)))
		tour := tr.EulerTour()
		if len(tour) != 2*tr.Size()-1 {
			return false
		}
		if tour[0] != tr.Root || tour[len(tour)-1] != tr.Root {
			return false
		}
		edgeCount := make(map[[2]NodeID]int)
		for i := 0; i+1 < len(tour); i++ {
			a, b := tour[i], tour[i+1]
			if !(tr.Parent[a] == b || tr.Parent[b] == a) {
				return false // consecutive entries must be tree neighbors
			}
			if a > b {
				a, b = b, a
			}
			edgeCount[[2]NodeID{a, b}]++
		}
		for _, c := range edgeCount {
			if c != 2 {
				return false
			}
		}
		return len(edgeCount) == tr.Size()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDist(t *testing.T) {
	g := Path(6, ConstWeights(3))
	parent := []NodeID{-1, 0, 1, 2, 3, 4}
	tr := NewTree(g, 0, parent)
	if d := tr.TreeDist(1, 4); d != 9 {
		t.Errorf("TreeDist(1,4) = %d, want 9", d)
	}
	if d := tr.TreeDist(5, 5); d != 0 {
		t.Errorf("TreeDist(5,5) = %d, want 0", d)
	}
	// Branching tree: distances go through the LCA.
	g2 := Star(5, ConstWeights(2))
	tr2 := NewTree(g2, 0, []NodeID{-1, 0, 0, 0, 0})
	if d := tr2.TreeDist(1, 2); d != 4 {
		t.Errorf("TreeDist(1,2) star = %d, want 4", d)
	}
}

func TestPathToRoot(t *testing.T) {
	g := Path(4, UnitWeights())
	tr := NewTree(g, 0, []NodeID{-1, 0, 1, 2})
	p := tr.PathToRoot(3)
	want := []NodeID{3, 2, 1, 0}
	if len(p) != 4 {
		t.Fatalf("PathToRoot = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("PathToRoot = %v, want %v", p, want)
		}
	}
}
