package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDSU(t *testing.T) {
	d := NewDSU(5)
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeated union should not merge")
	}
	d.Union(2, 3)
	if d.Find(0) == d.Find(2) {
		t.Error("disjoint sets merged")
	}
	d.Union(1, 3)
	if d.Find(0) != d.Find(2) {
		t.Error("union by chain failed")
	}
	if d.Find(4) == d.Find(0) {
		t.Error("singleton joined accidentally")
	}
}

func TestKruskalKnownTree(t *testing.T) {
	//     0
	//  1 / \ 4
	//   1---2   (weight 2), 2-3 weight 3, 0-3 weight 10
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 4)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(0, 3, 10)
	g := b.MustBuild()
	es := Kruskal(g)
	if len(es) != 3 {
		t.Fatalf("MST has %d edges, want 3", len(es))
	}
	var w int64
	for _, e := range es {
		w += e.W
	}
	if w != 6 {
		t.Fatalf("MST weight = %d, want 6 (1+2+3)", w)
	}
	if got := MSTWeight(g); got != 6 {
		t.Fatalf("MSTWeight = %d, want 6", got)
	}
}

func TestMSTWeightDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	if got := MSTWeight(g); got != -1 {
		t.Fatalf("MSTWeight on disconnected graph = %d, want -1", got)
	}
}

func TestPrimMatchesKruskalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		m := n - 1 + rng.Intn(2*n)
		g := RandomConnected(n, m, UniformWeights(1000, seed), seed)
		root := NodeID(rng.Intn(n))
		pt := PrimTree(g, root)
		if !pt.Spanning() {
			t.Logf("seed %d: Prim tree not spanning", seed)
			return false
		}
		// With random large weights, ties are rare but possible, so
		// compare weights, not edge sets.
		return pt.Weight() == MSTWeight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTSubgraph(t *testing.T) {
	g := Complete(6, UniformWeights(100, 3))
	sub := MSTSubgraph(g)
	if sub.M() != 5 {
		t.Fatalf("MST subgraph has %d edges, want 5", sub.M())
	}
	if !sub.Connected() {
		t.Fatal("MST subgraph must be connected")
	}
	if sub.TotalWeight() != MSTWeight(g) {
		t.Fatalf("MST subgraph weight %d != MSTWeight %d", sub.TotalWeight(), MSTWeight(g))
	}
}

func TestMSTCutProperty(t *testing.T) {
	// Every MST edge is a minimum weight edge across the cut it induces
	// (the argument behind Fact 6.3).
	g := RandomConnected(25, 60, UniformWeights(500, 9), 9)
	tree := PrimTree(g, 0)
	for _, te := range tree.Edges() {
		// Removing te splits the tree into two sides.
		side := make([]bool, g.N())
		var mark func(v NodeID)
		mark = func(v NodeID) {
			side[v] = true
			for _, c := range tree.Children(v) {
				if c != te.U { // te.U is the child endpoint
					mark(c)
				}
			}
		}
		// Mark the root side, skipping the subtree under te.U.
		mark(tree.Root)
		for _, e := range g.Edges() {
			if side[e.U] != side[e.V] && e.W < te.W {
				t.Fatalf("tree edge %v is not minimal across its cut: %v is lighter", te, e)
			}
		}
	}
}

func TestFact63_MSTDiameterBound(t *testing.T) {
	// Fact 6.3: Diam(MST) <= 𝓥 <= (n-1)·𝓓.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := RandomConnected(n, n-1+rng.Intn(3*n), UniformWeights(128, seed), seed)
		mst := PrimTree(g, 0)
		vv := MSTWeight(g)
		dd := Diameter(g)
		return mst.Diam() <= vv && vv <= int64(n-1)*dd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
