package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraPath(t *testing.T) {
	// 0 --5-- 1 --7-- 2 --2-- 3, plus a 10-weight shortcut 0-3.
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	b.AddEdge(2, 3, 2)
	b.AddEdge(0, 3, 10)
	g := b.MustBuild()

	sp := Dijkstra(g, 0)
	want := []int64{0, 5, 12, 10}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Errorf("Dist[%d] = %d, want %d", v, sp.Dist[v], d)
		}
	}
	path := sp.PathTo(2)
	wantPath := []NodeID{0, 1, 2}
	if len(path) != len(wantPath) {
		t.Fatalf("PathTo(2) = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(2) = %v, want %v", path, wantPath)
		}
	}
	// The shortcut wins to 3.
	p3 := sp.PathTo(3)
	if len(p3) != 2 || p3[1] != 3 {
		t.Fatalf("PathTo(3) = %v, want direct edge", p3)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 4)
	g := b.MustBuild()
	sp := Dijkstra(g, 0)
	if sp.Dist[2] != Unreachable {
		t.Errorf("Dist[2] = %d, want Unreachable", sp.Dist[2])
	}
	if p := sp.PathTo(2); p != nil {
		t.Errorf("PathTo(2) = %v, want nil", p)
	}
}

// bellmanFord is an independent O(nm) reference implementation.
func bellmanFord(g *Graph, s NodeID) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	for i := 0; i < g.N(); i++ {
		changed := false
		for _, e := range g.Edges() {
			if dist[e.U] != Unreachable && (dist[e.V] == Unreachable || dist[e.U]+e.W < dist[e.V]) {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V] != Unreachable && (dist[e.U] == Unreachable || dist[e.V]+e.W < dist[e.U]) {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		m := n - 1 + rng.Intn(2*n)
		g := RandomConnected(n, m, UniformWeights(100, seed), seed)
		s := NodeID(rng.Intn(n))
		got := Dijkstra(g, s).Dist
		want := bellmanFord(g, s)
		for v := range got {
			if got[v] != want[v] {
				t.Logf("seed %d: Dist[%d] = %d, want %d", seed, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSPTParentsFormShortestPaths(t *testing.T) {
	g := RandomConnected(50, 120, UniformWeights(40, 11), 11)
	sp := Dijkstra(g, 3)
	for v := 0; v < g.N(); v++ {
		if NodeID(v) == 3 {
			continue
		}
		p := sp.Parent[v]
		if p < 0 {
			t.Fatalf("vertex %d has no parent", v)
		}
		if sp.Dist[p]+g.Weight(p, NodeID(v)) != sp.Dist[v] {
			t.Fatalf("parent edge (%d,%d) not tight", p, v)
		}
	}
	// The extracted tree realizes all the shortest distances.
	tr := sp.Tree(g)
	if !tr.Spanning() {
		t.Fatal("SPT should span a connected graph")
	}
	depths := tr.Depths()
	for v := range depths {
		if depths[v] != sp.Dist[v] {
			t.Fatalf("tree depth[%d] = %d, want %d", v, depths[v], sp.Dist[v])
		}
	}
}

func TestDiameterRadiusEccentricity(t *testing.T) {
	g := Path(5, ConstWeights(3)) // diameter = 12, radius = 6 at center
	if d := Diameter(g); d != 12 {
		t.Errorf("Diameter = %d, want 12", d)
	}
	r, c := Radius(g)
	if r != 6 || c != 2 {
		t.Errorf("Radius = %d at %d, want 6 at 2", r, c)
	}
	if e := Eccentricity(g, 0); e != 12 {
		t.Errorf("Eccentricity(0) = %d, want 12", e)
	}
	disc := NewBuilder(3).MustBuild()
	if d := Diameter(disc); d != Unreachable {
		t.Errorf("Diameter of disconnected = %d, want Unreachable", d)
	}
}

func TestMaxNeighborDist(t *testing.T) {
	// Heavy chord with a light 2-hop bypass: d must see the bypass.
	g := HeavyChordRing(8, 1000)
	d := MaxNeighborDist(g)
	if d != 2 {
		t.Fatalf("MaxNeighborDist = %d, want 2", d)
	}
	if w := g.MaxWeight(); w != 1000 {
		t.Fatalf("MaxWeight = %d, want 1000", w)
	}
}

func TestDiameterInvariantD_LE_V(t *testing.T) {
	// 𝓓 <= 𝓥 <= (n-1)𝓓 (Fact 6.3) on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := RandomConnected(n, n-1+rng.Intn(n), UniformWeights(64, seed), seed)
		dd := Diameter(g)
		vv := MSTWeight(g)
		return dd <= vv && vv <= int64(n-1)*dd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
