package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratorsShape(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
		conn bool
	}{
		{"path", Path(7, UnitWeights()), 7, 6, true},
		{"ring", Ring(7, UnitWeights()), 7, 7, true},
		{"star", Star(7, UnitWeights()), 7, 6, true},
		{"complete", Complete(6, UnitWeights()), 6, 15, true},
		{"grid", Grid(3, 4, UnitWeights()), 12, 17, true},
		{"caterpillar", Caterpillar(9, UnitWeights()), 9, 8, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n {
				t.Errorf("n = %d, want %d", tt.g.N(), tt.n)
			}
			if tt.g.M() != tt.m {
				t.Errorf("m = %d, want %d", tt.g.M(), tt.m)
			}
			if tt.g.Connected() != tt.conn {
				t.Errorf("connected = %v, want %v", tt.g.Connected(), tt.conn)
			}
		})
	}
}

func TestRandomConnectedIsConnectedAndDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := n - 1 + rng.Intn(3*n)
		g1 := RandomConnected(n, m, UniformWeights(99, seed), seed)
		g2 := RandomConnected(n, m, UniformWeights(99, seed), seed)
		if !g1.Connected() {
			return false
		}
		if g1.M() != g2.M() || g1.TotalWeight() != g2.TotalWeight() {
			return false // determinism
		}
		return g1.M() >= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightFns(t *testing.T) {
	g := Path(10, PowerOfTwoWeights(6, 42))
	for _, e := range g.Edges() {
		if e.W&(e.W-1) != 0 {
			t.Fatalf("PowerOfTwoWeights produced non power of two %d", e.W)
		}
		if e.W > 64 {
			t.Fatalf("weight %d exceeds 2^6", e.W)
		}
	}
	g2 := Path(200, UniformWeights(10, 1))
	for _, e := range g2.Edges() {
		if e.W < 1 || e.W > 10 {
			t.Fatalf("UniformWeights out of range: %d", e.W)
		}
	}
	g3 := Path(4, ConstWeights(17))
	if g3.TotalWeight() != 51 {
		t.Fatalf("ConstWeights total = %d, want 51", g3.TotalWeight())
	}
}

func TestHardConnectivityStructure(t *testing.T) {
	// §7.1: MST is the path; bypass edges have weight X^4.
	n := 10
	x := int64(n)
	g := HardConnectivity(n, x)
	if !g.Connected() {
		t.Fatal("G_n must be connected")
	}
	vv := MSTWeight(g)
	if vv != int64(n-1)*x {
		t.Fatalf("𝓥 = %d, want path weight %d", vv, int64(n-1)*x)
	}
	x4 := x * x * x * x
	bypass := 0
	for _, e := range g.Edges() {
		switch e.W {
		case x:
		case x4:
			bypass++
			// Bypass edge (i, n-1-i).
			if int(e.U)+int(e.V) != n-1 {
				t.Fatalf("bypass edge %v does not match (i, n-1-i)", e)
			}
		default:
			t.Fatalf("unexpected weight %d", e.W)
		}
	}
	if bypass == 0 {
		t.Fatal("no bypass edges generated")
	}
	// A single bypass use costs more than n times the whole MST.
	if x4 < int64(n)*vv/2 {
		t.Fatalf("bypass weight %d should dominate n·𝓥 = %d", x4, int64(n)*vv)
	}
}

func TestHeavyChordRingGap(t *testing.T) {
	g := HeavyChordRing(20, 500)
	if d := MaxNeighborDist(g); d != 2 {
		t.Fatalf("d = %d, want 2", d)
	}
	if w := g.MaxWeight(); w != 500 {
		t.Fatalf("W = %d, want 500", w)
	}
}

func TestShallowLightGapSeparation(t *testing.T) {
	// The [BKJ83] separation: SPT from the hub is much heavier than the
	// MST, and the MST is much deeper than the SPT.
	n := 20
	g := ShallowLightGap(n)
	if !g.Connected() {
		t.Fatal("not connected")
	}
	hub := NodeID(n - 1)
	spt := Dijkstra(g, hub).Tree(g)
	mst := PrimTree(g, hub)
	if spt.Weight() <= 2*mst.Weight() {
		t.Fatalf("expected heavy SPT: w(SPT)=%d w(MST)=%d", spt.Weight(), mst.Weight())
	}
	if mst.Diam() <= 2*Diameter(g) {
		t.Fatalf("expected deep MST: Diam(MST)=%d 𝓓=%d", mst.Diam(), Diameter(g))
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15, UnitWeights())
	if g.N() != 15 || g.M() != 14 || !g.Connected() {
		t.Fatalf("binary tree shape wrong: n=%d m=%d", g.N(), g.M())
	}
	// Depth of a complete binary tree on 15 vertices is 3.
	if d := Diameter(g); d != 6 {
		t.Fatalf("Diameter = %d, want 6", d)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("root degree = %d, want 2", g.Degree(0))
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(40, 4, UnitWeights(), 7)
	if !g.Connected() {
		t.Fatal("random regular graph must be connected")
	}
	// The pairing model with rejection loses a few edges; degrees stay
	// at most d and mostly equal to d.
	atD := 0
	for v := 0; v < g.N(); v++ {
		deg := g.Degree(NodeID(v))
		if deg > 4 {
			t.Fatalf("degree %d > 4 at %d", deg, v)
		}
		if deg == 4 {
			atD++
		}
	}
	if atD < g.N()/2 {
		t.Fatalf("only %d/%d vertices reached full degree", atD, g.N())
	}
	// Expander-ish: diameter logarithmic, far below n.
	if d := Diameter(g); d > 10 {
		t.Fatalf("Diameter = %d, want small (expander)", d)
	}
	// Determinism.
	g2 := RandomRegular(40, 4, UnitWeights(), 7)
	if g2.M() != g.M() {
		t.Fatal("RandomRegular not deterministic")
	}
}

func TestRandomRegularOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n·d should panic")
		}
	}()
	RandomRegular(5, 3, UnitWeights(), 1)
}
