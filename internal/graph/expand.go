package graph

import "fmt"

// Expansion is the "unweighted version" Ĝ_b of a weighted graph used
// by the §9.2 reduction: every edge e of weight w(e) is replaced by a
// path of w(e) unit edges through w(e)-1 fresh dummy vertices, so that
// hop distances in the expansion equal weighted distances in the
// original, and a BFS on the expansion is an SPT computation on G.
type Expansion struct {
	// G is the expanded unit-weight graph. Vertices 0..n-1 are the
	// original vertices; the rest are dummies.
	G *Graph
	// Original is the number of original (non-dummy) vertices.
	Original int
	// Host maps every expansion vertex to the original edge it
	// subdivides (-1 for original vertices).
	Host []EdgeID
}

// Expand builds the unit-edge expansion of g. The expansion has
// n + Σ(w(e)-1) vertices, so it is only practical for moderate total
// weight; it exists to make the §9.2 reduction executable and testable
// (the production SPTrecur simulates it implicitly).
func Expand(g *Graph) (*Expansion, error) {
	extra := int64(0)
	for _, e := range g.Edges() {
		extra += e.W - 1
	}
	total := int64(g.N()) + extra
	const maxVertices = 10_000_000
	if total > maxVertices {
		return nil, fmt.Errorf("graph: expansion needs %d vertices (max %d)", total, maxVertices)
	}
	b := NewBuilder(int(total))
	host := make([]EdgeID, total)
	for v := 0; v < g.N(); v++ {
		host[v] = -1
	}
	next := NodeID(g.N())
	for id, e := range g.Edges() {
		prev := e.U
		for step := int64(1); step < e.W; step++ {
			host[next] = EdgeID(id)
			b.AddEdge(prev, next, 1)
			prev = next
			next++
		}
		b.AddEdge(prev, e.V, 1)
	}
	eg, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Expansion{G: eg, Original: g.N(), Host: host}, nil
}

// IsDummy reports whether an expansion vertex is a subdivision point.
func (x *Expansion) IsDummy(v NodeID) bool { return int(v) >= x.Original }

// BFS computes hop distances from s with a queue; on an expansion these
// equal the weighted distances of the original graph.
func BFS(g *Graph, s NodeID) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if dist[h.To] == Unreachable {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}
