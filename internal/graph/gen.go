package graph

import (
	"fmt"
	"math/rand"
)

// WeightFn assigns a weight to the i-th generated edge (u, v). Generators
// call it once per edge in a deterministic order.
type WeightFn func(i int, u, v NodeID) int64

// UnitWeights assigns weight 1 to every edge, recovering the classical
// unweighted complexity model.
func UnitWeights() WeightFn {
	return func(int, NodeID, NodeID) int64 { return 1 }
}

// ConstWeights assigns the same weight w to every edge.
func ConstWeights(w int64) WeightFn {
	return func(int, NodeID, NodeID) int64 { return w }
}

// UniformWeights draws weights uniformly from [1, maxW] with the given
// seed; deterministic for a fixed seed and generation order.
func UniformWeights(maxW int64, seed int64) WeightFn {
	rng := rand.New(rand.NewSource(seed))
	return func(int, NodeID, NodeID) int64 { return 1 + rng.Int63n(maxW) }
}

// PowerOfTwoWeights draws weights uniformly from {1, 2, 4, ..., 2^maxExp}.
// Networks with such weights are "normalized" in the sense of Def 4.3.
func PowerOfTwoWeights(maxExp int, seed int64) WeightFn {
	rng := rand.New(rand.NewSource(seed))
	return func(int, NodeID, NodeID) int64 { return int64(1) << rng.Intn(maxExp+1) }
}

// Path returns the path 0-1-...-n-1.
func Path(n int, w WeightFn) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		u, v := NodeID(i), NodeID(i+1)
		b.AddEdge(u, v, w(i, u, v))
	}
	return b.MustBuild()
}

// Ring returns the cycle on n >= 3 vertices.
func Ring(n int, w WeightFn) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		u, v := NodeID(i), NodeID((i+1)%n)
		b.AddEdge(u, v, w(i, u, v))
	}
	return b.MustBuild()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int, w WeightFn) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, NodeID(i), w(i-1, 0, NodeID(i)))
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int, w WeightFn) *Graph {
	b := NewBuilder(n)
	i := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(NodeID(u), NodeID(v), w(i, NodeID(u), NodeID(v)))
			i++
		}
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph; vertex (r, c) is r*cols + c.
func Grid(rows, cols int, w WeightFn) *Graph {
	b := NewBuilder(rows * cols)
	i := 0
	at := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1), w(i, at(r, c), at(r, c+1)))
				i++
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c), w(i, at(r, c), at(r+1, c)))
				i++
			}
		}
	}
	return b.MustBuild()
}

// RandomConnected returns a connected random graph on n vertices with
// approximately m edges: a random spanning tree plus m-(n-1) random
// non-tree edges (duplicates are skipped, so the edge count may fall
// slightly short on dense requests). Deterministic for a fixed seed.
func RandomConnected(n, m int, w WeightFn, seed int64) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: RandomConnected needs m >= n-1 (n=%d m=%d)", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	i := 0
	// Random spanning tree: attach each vertex to a random earlier one.
	perm := rng.Perm(n)
	pos := make([]int, n)
	for p, v := range perm {
		pos[v] = p
	}
	have := make(map[[2]NodeID]bool)
	addEdge := func(u, v NodeID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if have[[2]NodeID{u, v}] {
			return false
		}
		have[[2]NodeID{u, v}] = true
		b.AddEdge(u, v, w(i, u, v))
		i++
		return true
	}
	for p := 1; p < n; p++ {
		u := NodeID(perm[p])
		v := NodeID(perm[rng.Intn(p)])
		addEdge(u, v)
	}
	extra := m - (n - 1)
	for tries := 0; extra > 0 && tries < 20*m+100; tries++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if addEdge(u, v) {
			extra--
		}
	}
	return b.MustBuild()
}

// Caterpillar returns a path of length n/2 with a leaf hanging off each
// spine vertex — a tree with large diameter and many leaves, useful as a
// convergecast stress case.
func Caterpillar(n int, w WeightFn) *Graph {
	spine := (n + 1) / 2
	b := NewBuilder(n)
	i := 0
	for s := 0; s < spine-1; s++ {
		b.AddEdge(NodeID(s), NodeID(s+1), w(i, NodeID(s), NodeID(s+1)))
		i++
	}
	for l := spine; l < n; l++ {
		s := NodeID(l - spine)
		b.AddEdge(s, NodeID(l), w(i, s, NodeID(l)))
		i++
	}
	return b.MustBuild()
}

// HardConnectivity returns the lower-bound family G_n of §7.1: a path
// 1-2-...-n with edges of weight X, plus bypass edges (i, n+1-i) for
// 1 <= i < n/2 with weight X^4. (Vertices here are 0-based: path edge
// (i, i+1) for 0 <= i < n-1, bypass (i, n-1-i).) The MST is the path, so
// 𝓥 = (n-1)·X, while using any bypass edge costs X^4 ≥ n·𝓥.
func HardConnectivity(n int, x int64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), x)
	}
	x4 := x * x * x * x
	for i := 0; i < n/2; i++ {
		j := n - 1 - i
		if j > i+1 { // skip self loops and duplicates of path edges
			b.AddEdge(NodeID(i), NodeID(j), x4)
		}
	}
	return b.MustBuild()
}

// HeavyChordRing returns a unit-weight path 0-1-...-n-1 plus heavy chords
// (i, i+2) of weight heavy. Every heavy edge has a lightweight 2-hop
// bypass, so d = max neighbor distance is 2 while W = heavy: the regime
// where cost-sensitive clock synchronization (§3) wins by a factor of
// W / (d log² n).
func HeavyChordRing(n int, heavy int64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	for i := 0; i+2 < n; i += 2 {
		b.AddEdge(NodeID(i), NodeID(i+2), heavy)
	}
	return b.MustBuild()
}

// ShallowLightGap returns the [BKJ83] separation instance motivating
// shallow-light trees (§2.2): a unit-weight ring (one edge weight 2 to
// break MST ties) plus a hub joined to every ring vertex by an edge of
// weight ≈ √n. The SPT from the hub is the star, of weight Θ(√n·𝓥),
// while the MST is the ring path, of diameter Θ(√n·𝓓) — so neither
// tree alone is shallow-light, both ratios growing as √n.
func ShallowLightGap(n int) *Graph {
	if n < 4 {
		panic("graph: ShallowLightGap needs n >= 4")
	}
	ring := n - 1 // vertices 0..n-2 on the ring, n-1 is the hub
	b := NewBuilder(n)
	for i := 0; i < ring; i++ {
		w := int64(1)
		if i == ring-1 {
			w = 2 // break MST ties: ring edge (ring-1, 0) is excluded
		}
		b.AddEdge(NodeID(i), NodeID((i+1)%ring), w)
	}
	hubW := int64(1)
	for hubW*hubW < int64(n) {
		hubW++ // hubW = ceil(sqrt(n))
	}
	for i := 0; i < ring; i++ {
		b.AddEdge(NodeID(n-1), NodeID(i), hubW)
	}
	return b.MustBuild()
}

// BinaryTree returns the complete binary tree on n vertices (vertex 0
// the root, children of i at 2i+1 and 2i+2) — logarithmic diameter,
// maximal convergecast fan-in.
func BinaryTree(n int, w WeightFn) *Graph {
	b := NewBuilder(n)
	i := 0
	for v := 1; v < n; v++ {
		p := NodeID((v - 1) / 2)
		b.AddEdge(p, NodeID(v), w(i, p, NodeID(v)))
		i++
	}
	return b.MustBuild()
}

// RandomRegular returns a connected random d-regular multigraph
// approximation built by the pairing model with rejection of loops and
// duplicates (vertices may fall short of degree d when rejection bites;
// connectivity is ensured by retrying with fresh pairings). n·d must be
// even. Expander-like: constant degree, logarithmic diameter.
func RandomRegular(n, d int, w WeightFn, seed int64) *Graph {
	if n*d%2 != 0 {
		panic("graph: RandomRegular needs n·d even")
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		b := NewBuilder(n)
		stubs := make([]NodeID, 0, n*d)
		for v := 0; v < n; v++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, NodeID(v))
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		have := make(map[[2]NodeID]bool)
		i := 0
		for k := 0; k+1 < len(stubs); k += 2 {
			u, v := stubs[k], stubs[k+1]
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if have[[2]NodeID{u, v}] {
				continue
			}
			have[[2]NodeID{u, v}] = true
			b.AddEdge(u, v, w(i, u, v))
			i++
		}
		g := b.MustBuild()
		if g.Connected() {
			return g
		}
		if attempt > 100 {
			panic("graph: RandomRegular failed to produce a connected graph")
		}
	}
}
