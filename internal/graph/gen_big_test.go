package graph

import "testing"

// TestBigFloodShape checks the generator's contract at test-friendly
// sizes: exact vertex and edge counts, connectivity, the locality
// window, the weight band, no duplicate edges, and determinism.
func TestBigFloodShape(t *testing.T) {
	cases := []struct {
		n, m, window int
		lo, hi       int64
		seed         int64
	}{
		{n: 100, m: 400, window: 16, lo: 8, hi: 64, seed: 1},
		{n: 1000, m: 5000, window: 64, lo: 1024, hi: 2048, seed: 2},
		{n: 50, m: 49, window: 4, lo: 1, hi: 1, seed: 3},
		{n: 2000, m: 20000, window: 128, lo: 100, hi: 100, seed: 4},
	}
	for _, c := range cases {
		g := BigFlood(c.n, c.m, c.window, UniformWeightsIn(c.lo, c.hi, c.seed), c.seed)
		if g.N() != c.n || g.M() != c.m {
			t.Fatalf("n=%d m=%d: got %d vertices, %d edges", c.n, c.m, g.N(), g.M())
		}
		if !g.Connected() {
			t.Fatalf("n=%d m=%d seed=%d: not connected", c.n, c.m, c.seed)
		}
		seen := make(map[[2]NodeID]bool, c.m)
		for _, e := range g.Edges() {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]NodeID{u, v}] {
				t.Fatalf("duplicate edge (%d,%d)", u, v)
			}
			seen[[2]NodeID{u, v}] = true
			if int(v-u) > c.window {
				t.Fatalf("edge (%d,%d) spans %d > window %d", u, v, v-u, c.window)
			}
			if e.W < c.lo || e.W > c.hi {
				t.Fatalf("edge (%d,%d) weight %d outside [%d,%d]", u, v, e.W, c.lo, c.hi)
			}
		}
	}

	a := BigFlood(500, 2500, 32, UniformWeightsIn(16, 64, 7), 7)
	b := BigFlood(500, 2500, 32, UniformWeightsIn(16, 64, 7), 7)
	for i, e := range a.Edges() {
		if e != b.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs across identical builds: %+v vs %+v", i, e, b.Edge(EdgeID(i)))
		}
	}
}
