package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpandShape(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 3) // 2 dummies
	b.AddEdge(1, 2, 1) // 0 dummies
	g := b.MustBuild()
	x, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if x.G.N() != 5 {
		t.Fatalf("expansion has %d vertices, want 5", x.G.N())
	}
	if x.G.M() != 4 {
		t.Fatalf("expansion has %d edges, want 4 (= 𝓔)", x.G.M())
	}
	if int64(x.G.M()) != g.TotalWeight() {
		t.Fatal("expansion edge count must equal 𝓔")
	}
	if x.IsDummy(0) || !x.IsDummy(3) {
		t.Fatal("dummy classification wrong")
	}
	if x.Host[3] != 0 || x.Host[0] != -1 {
		t.Fatalf("host mapping wrong: %v", x.Host)
	}
	for _, e := range x.G.Edges() {
		if e.W != 1 {
			t.Fatalf("expansion edge %v not unit weight", e)
		}
	}
}

func TestExpandPreservesDistances(t *testing.T) {
	// The heart of the §9.2 reduction: BFS hop distance on Ĝ_b equals
	// weighted distance on G for every original vertex.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := RandomConnected(n, n-1+rng.Intn(2*n), UniformWeights(12, seed), seed)
		x, err := Expand(g)
		if err != nil {
			return false
		}
		src := NodeID(rng.Intn(n))
		hops := BFS(x.G, src)
		want := Dijkstra(g, src)
		for v := 0; v < n; v++ {
			if hops[v] != want.Dist[v] {
				t.Logf("seed %d: BFS[%d]=%d want %d", seed, v, hops[v], want.Dist[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandTooLarge(t *testing.T) {
	g := Path(2, ConstWeights(100_000_000))
	if _, err := Expand(g); err == nil {
		t.Fatal("oversized expansion should error")
	}
}

func TestBFSOnUnitGraphMatchesDijkstra(t *testing.T) {
	g := Grid(6, 6, UnitWeights())
	hops := BFS(g, 0)
	want := Dijkstra(g, 0)
	for v := range hops {
		if hops[v] != want.Dist[v] {
			t.Fatalf("BFS[%d] = %d, want %d", v, hops[v], want.Dist[v])
		}
	}
}
