package graph

import (
	"errors"
	"testing"
)

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func(*Builder)
		wantErr error
	}{
		{"vertex out of range", func(b *Builder) { b.AddEdge(0, 5, 1) }, ErrVertexRange},
		{"negative vertex", func(b *Builder) { b.AddEdge(-1, 0, 1) }, ErrVertexRange},
		{"self loop", func(b *Builder) { b.AddEdge(2, 2, 1) }, ErrSelfLoop},
		{"zero weight", func(b *Builder) { b.AddEdge(0, 1, 0) }, ErrWeightRange},
		{"negative weight", func(b *Builder) { b.AddEdge(0, 1, -3) }, ErrWeightRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(3)
			tt.build(b)
			if _, err := b.Build(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Build() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 9, 1) // bad
	b.AddEdge(0, 1, 1) // good, but must be ignored after the error
	if _, err := b.Build(); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("Build() error = %v, want ErrVertexRange", err)
	}
}

func TestGraphBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	b.AddEdge(2, 3, 2)
	b.AddEdge(0, 3, 10)
	g := b.MustBuild()

	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N, M = %d, %d; want 4, 4", g.N(), g.M())
	}
	if got := g.TotalWeight(); got != 24 {
		t.Errorf("TotalWeight = %d, want 24", got)
	}
	if got := g.MaxWeight(); got != 10 {
		t.Errorf("MaxWeight = %d, want 10", got)
	}
	if w := g.Weight(1, 2); w != 7 {
		t.Errorf("Weight(1,2) = %d, want 7", w)
	}
	if w := g.Weight(0, 2); w != -1 {
		t.Errorf("Weight(0,2) = %d, want -1 (absent)", w)
	}
	if !g.HasEdge(3, 2) || g.HasEdge(1, 3) {
		t.Errorf("HasEdge mismatch")
	}
	if d := g.Degree(0); d != 2 {
		t.Errorf("Degree(0) = %d, want 2", d)
	}
	if !g.Connected() {
		t.Error("graph should be connected")
	}
}

func TestParallelEdgesWeightPicksLightest(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 9)
	b.AddEdge(0, 1, 4)
	g := b.MustBuild()
	if w := g.Weight(0, 1); w != 4 {
		t.Fatalf("Weight(0,1) = %d, want 4", w)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustBuild()
	if g.Connected() {
		t.Error("graph with isolated vertex 2 reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() returned %d components, want 3", len(comps))
	}
	want := [][]NodeID{{0, 1}, {2}, {3, 4}}
	for i, c := range comps {
		if len(c) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, c, want[i])
		}
		for j := range c {
			if c[j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, c, want[i])
			}
		}
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	empty := NewBuilder(0).MustBuild()
	if !empty.Connected() || empty.TotalWeight() != 0 {
		t.Error("empty graph should be connected with weight 0")
	}
	single := NewBuilder(1).MustBuild()
	if !single.Connected() {
		t.Error("singleton graph should be connected")
	}
	if d := Diameter(single); d != 0 {
		t.Errorf("Diameter(singleton) = %d, want 0", d)
	}
}

func TestSubgraph(t *testing.T) {
	g := Ring(6, UnitWeights())
	sub := g.Subgraph(func(e Edge) bool { return e.U != 0 && e.V != 0 })
	if sub.N() != 6 {
		t.Fatalf("Subgraph changed vertex count: %d", sub.N())
	}
	if sub.M() != 4 {
		t.Fatalf("Subgraph has %d edges, want 4", sub.M())
	}
	if sub.Connected() {
		t.Error("ring minus vertex-0 edges should be disconnected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5, UnitWeights())
	sub, orig := g.InducedSubgraph([]NodeID{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: n=%d m=%d, want 3, 3", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g := RandomConnected(40, 100, UniformWeights(50, 7), 7)
	// Every half-edge must appear symmetrically with the same weight/ID.
	for v := 0; v < g.N(); v++ {
		for _, h := range g.Adj(NodeID(v)) {
			found := false
			for _, back := range g.Adj(h.To) {
				if back.ID == h.ID {
					if back.To != NodeID(v) || back.W != h.W {
						t.Fatalf("asymmetric half edge %v vs %v", h, back)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %v has no reverse half", h)
			}
		}
	}
	// Sum of degrees = 2m.
	deg := 0
	for v := 0; v < g.N(); v++ {
		deg += g.Degree(NodeID(v))
	}
	if deg != 2*g.M() {
		t.Fatalf("sum of degrees %d != 2m %d", deg, 2*g.M())
	}
}
