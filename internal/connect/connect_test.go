package connect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

func TestHybridBuildsSpanningTree(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(20, 3), 3)
	res, err := RunCONHybrid(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := graph.NewTree(g, 0, res.Parent)
	if !tree.Spanning() {
		t.Fatalf("CONhybrid (%s won) did not build a spanning tree", res.Winner)
	}
}

func TestHybridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(40, seed), seed)
		root := graph.NodeID(rng.Intn(n))
		res, err := RunCONHybrid(g, root)
		if err != nil {
			t.Log(err)
			return false
		}
		return graph.NewTree(g, root, res.Parent).Spanning()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridTracksCheaperAlgorithm(t *testing.T) {
	// Claim 7.3: comm(CONhybrid) = O(min{comm(DFS), comm(MSTcentr)}).
	// The suspension argument bounds it by ~4x the cheaper one; allow 6x.
	check := func(t *testing.T, g *graph.Graph) {
		t.Helper()
		dfs, err := basic.RunDFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := basic.RunMSTCentr(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := RunCONHybrid(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		cheaper := dfs.Stats.Comm
		if mst.Stats.Comm < cheaper {
			cheaper = mst.Stats.Comm
		}
		if hy.Stats.Comm > 6*cheaper {
			t.Errorf("hybrid comm %d > 6·min(dfs %d, mst %d)", hy.Stats.Comm, dfs.Stats.Comm, mst.Stats.Comm)
		}
	}
	t.Run("dfs-favoring sparse", func(t *testing.T) {
		// 𝓔 << n𝓥 is impossible (𝓔 >= 𝓥), but on a bare tree
		// 𝓔 = 𝓥 << n𝓥, so DFS should win.
		check(t, graph.RandomConnected(40, 39, graph.UniformWeights(30, 7), 7))
	})
	t.Run("mst-favoring Gn", func(t *testing.T) {
		// On G_n the bypass edges make 𝓔 = Θ(nX⁴) >> n𝓥 = Θ(n²X).
		check(t, graph.HardConnectivity(24, 24))
	})
	t.Run("random", func(t *testing.T) {
		check(t, graph.RandomConnected(30, 90, graph.UniformWeights(25, 9), 9))
	})
}

func TestHybridWinnerFollowsRegime(t *testing.T) {
	// On a tree, DFS costs Θ(𝓔) = Θ(𝓥) and must win; on G_n, MSTcentr
	// costs Θ(n²X) << Θ(nX⁴) and must win.
	tree := graph.RandomConnected(30, 29, graph.UniformWeights(10, 5), 5)
	res, err := RunCONHybrid(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "dfs" {
		t.Errorf("on a tree, winner = %s, want dfs", res.Winner)
	}
	gn := graph.HardConnectivity(20, 20)
	res, err = RunCONHybrid(gn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "mst" {
		t.Errorf("on G_n, winner = %s, want mst", res.Winner)
	}
}

func TestGnLowerBoundExperiment(t *testing.T) {
	rep, err := RunGnExperiment(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Edge-bound algorithms pay the bypass price: Ω(𝓔) >> n𝓥.
	if rep.FloodComm < rep.E {
		t.Errorf("flood comm %d should be >= 𝓔 = %d (every edge used)", rep.FloodComm, rep.E)
	}
	if rep.DFSComm < rep.E {
		t.Errorf("DFS comm %d should be >= 𝓔 = %d", rep.DFSComm, rep.E)
	}
	// The hybrid stays within a constant of min{𝓔, n𝓥} = n𝓥 here.
	if rep.MinBound() != rep.NV {
		t.Fatalf("on G_n, min{𝓔, n𝓥} should be n𝓥: 𝓔=%d n𝓥=%d", rep.E, rep.NV)
	}
	if rep.HybridComm > 8*rep.NV {
		t.Errorf("hybrid comm %d > 8·n𝓥 = %d", rep.HybridComm, 8*rep.NV)
	}
	// Lemma 7.2's Ω(n𝓥): even the cheap algorithms cannot go far below
	// n𝓥 on G_n; MSTcentr's phases alone sum to Θ(n𝓥).
	if rep.MSTComm < rep.NV/4 {
		t.Errorf("MSTcentr comm %d implausibly below n𝓥/4 = %d", rep.MSTComm, rep.NV/4)
	}
}

func TestGnScaling(t *testing.T) {
	// Lemma 7.2: communication on G_n grows as Ω(n²X) for the
	// tree-bound algorithms. Doubling n should roughly quadruple
	// MSTcentr's comm (at fixed X).
	x := int64(8)
	repSmall, err := RunGnExperiment(16, x)
	if err != nil {
		t.Fatal(err)
	}
	repBig, err := RunGnExperiment(32, x)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(repBig.MSTComm) / float64(repSmall.MSTComm)
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("MSTcentr comm scaling n:16->32 gave ratio %.2f, want ~4 (quadratic)", ratio)
	}
}

func TestHybridDetectsDisconnection(t *testing.T) {
	// CONhybrid is a connectivity algorithm: on a disconnected graph it
	// must report the root's component rather than fail.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.MustBuild()
	res, err := RunCONHybrid(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	for v, want := range []bool{true, true, true, false, false, false} {
		if res.InComponent[v] != want {
			t.Fatalf("InComponent[%d] = %v, want %v", v, res.InComponent[v], want)
		}
	}
}

func TestHybridConnectedReport(t *testing.T) {
	g := graph.Ring(10, graph.UniformWeights(7, 3))
	res, err := RunCONHybrid(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected() {
		t.Fatal("ring reported disconnected")
	}
}

func TestCONHybridUnderRandomDelays(t *testing.T) {
	g := graph.RandomConnected(22, 60, graph.UniformWeights(20, 71), 71)
	for seed := int64(0); seed < 5; seed++ {
		res, err := RunCONHybrid(g, 0, sim.WithDelay(sim.DelayUniform{}), sim.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !graph.NewTree(g, 0, res.Parent).Spanning() {
			t.Fatalf("seed %d: not spanning (%s won)", seed, res.Winner)
		}
	}
}
