// Package connect implements the connectivity / spanning tree
// algorithms of §7 of the paper. The centerpiece is algorithm
// CONhybrid (§7.2): algorithms DFS and MSTcentr run side by side, and
// the root — which holds doubling estimates W_a and W_b of the
// communication each has spent — suspends whichever is currently more
// expensive. Since both estimates stay within a constant factor of the
// true cost, and only the cheaper algorithm runs at any moment, the
// total cost is at most a constant times min{𝓔, n𝓥}, matching the
// Ω(min{𝓔, n𝓥}) lower bound of §7.1.
package connect

import (
	"fmt"

	"costsense/internal/basic"
	"costsense/internal/graph"
	"costsense/internal/sim"
)

// algorithm tags for hybrid message multiplexing.
const (
	algDFS byte = 'd'
	algMST byte = 'm'
)

// HybridMsg wraps a sub-algorithm message with its tag.
type HybridMsg struct {
	Alg   byte
	Inner sim.Message
}

// algPort tags a core's sends with its algorithm.
type algPort struct {
	ctx sim.Context
	alg byte
}

var _ basic.Port = algPort{}

func (p algPort) ID() graph.NodeID        { return p.ctx.ID() }
func (p algPort) Neighbors() []graph.Half { return p.ctx.Neighbors() }
func (p algPort) Send(to graph.NodeID, m sim.Message) {
	p.ctx.Send(to, HybridMsg{Alg: p.alg, Inner: m})
}

// arbiter is the root's §7.2 Permit logic. Exactly one sub-algorithm is
// active at a time; the suspended one is parked with its center of
// activity at the root.
type arbiter struct {
	wa, wb    int64 // root estimates of DFS and MSTcentr
	dfsParked func(basic.Port)
	mstParked func(basic.Port)
	mst       *basic.CentrCore
	mstOn     bool // MSTcentr started
	ctx       sim.Context
}

// permitDFS applies the paper's rule: Permit = DFS iff W_a <= W_b.
func (a *arbiter) permitDFS() bool { return a.wa <= a.wb }

func (a *arbiter) activateMST() {
	port := algPort{ctx: a.ctx, alg: algMST}
	if !a.mstOn {
		a.mstOn = true
		a.mst.Start(port)
		return
	}
	if a.mstParked != nil {
		r := a.mstParked
		a.mstParked = nil
		r(port)
	}
}

func (a *arbiter) activateDFS() {
	if a.dfsParked != nil {
		r := a.dfsParked
		a.dfsParked = nil
		r(algPort{ctx: a.ctx, alg: algDFS})
	}
}

type dfsGate struct{ a *arbiter }

func (g dfsGate) Report(est int64, resume func(basic.Port)) bool {
	g.a.wa = est
	if g.a.permitDFS() {
		return true
	}
	g.a.dfsParked = resume
	g.a.activateMST()
	return false
}

type mstGate struct{ a *arbiter }

func (g mstGate) Report(est int64, resume func(basic.Port)) bool {
	g.a.wb = est
	if !g.a.permitDFS() {
		return true
	}
	g.a.mstParked = resume
	g.a.activateDFS()
	return false
}

// HybridProc runs the two cores at one node.
type HybridProc struct {
	DFS  *basic.DFSCore
	MST  *basic.CentrCore
	Root graph.NodeID
	arb  *arbiter // root only
}

var _ sim.Process = (*HybridProc)(nil)

// Init starts DFS at the root (W_a = W_b = 0; DFS holds the permit).
func (h *HybridProc) Init(ctx sim.Context) {
	if ctx.ID() != h.Root {
		return
	}
	h.arb.ctx = ctx
	h.DFS.Start(algPort{ctx: ctx, alg: algDFS})
}

// Handle demultiplexes to the cores.
func (h *HybridProc) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	hm, ok := m.(HybridMsg)
	if !ok {
		panic(fmt.Sprintf("connect: unexpected message %T", m))
	}
	if h.arb != nil {
		h.arb.ctx = ctx // keep the arbiter bound to the live context
	}
	switch hm.Alg {
	case algDFS:
		h.DFS.Handle(algPort{ctx: ctx, alg: algDFS}, from, hm.Inner)
	case algMST:
		h.MST.Handle(algPort{ctx: ctx, alg: algMST}, from, hm.Inner)
	default:
		panic(fmt.Sprintf("connect: unknown algorithm tag %q", hm.Alg))
	}
}

// HybridResult is the outcome of a CONhybrid run.
type HybridResult struct {
	// Winner names the sub-algorithm that completed ("dfs" or "mst").
	Winner string
	// Parent is the spanning tree found by the winner (-1 at root).
	Parent []graph.NodeID
	// InComponent marks the vertices in the root's connected
	// component — CONhybrid is a connectivity algorithm, so it reports
	// reachability rather than failing on disconnected inputs.
	InComponent []bool
	Stats       *sim.Stats
}

// Connected reports whether the whole graph is one component.
func (r *HybridResult) Connected() bool {
	for _, in := range r.InComponent {
		if !in {
			return false
		}
	}
	return true
}

// RunCONHybrid executes algorithm CONhybrid from the given root,
// returning a spanning tree with communication O(min{𝓔, n𝓥}).
func RunCONHybrid(g *graph.Graph, root graph.NodeID, opts ...sim.Option) (*HybridResult, error) {
	n := g.N()
	procs := make([]sim.Process, n)
	hps := make([]*HybridProc, n)
	arb := &arbiter{}
	for v := range procs {
		hp := &HybridProc{
			DFS:  basic.NewDFSCore(root),
			MST:  basic.NewCentrCore(basic.ModeMST, root, n),
			Root: root,
		}
		if graph.NodeID(v) == root {
			hp.arb = arb
			arb.mst = hp.MST
			hp.DFS.Gate = dfsGate{a: arb}
			hp.MST.Gate = mstGate{a: arb}
		}
		hps[v] = hp
		procs[v] = hp
	}
	stats, err := sim.Run(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	res := &HybridResult{
		Parent:      make([]graph.NodeID, n),
		InComponent: make([]bool, n),
		Stats:       stats,
	}
	res.InComponent[root] = true
	switch {
	case hps[root].DFS.Done:
		res.Winner = "dfs"
		for v := range hps {
			res.Parent[v] = hps[v].DFS.Parent
			if hps[v].DFS.Visited {
				res.InComponent[v] = true
			}
		}
	case hps[root].MST.Done:
		res.Winner = "mst"
		for v := range hps {
			res.Parent[v] = hps[v].MST.Parent
			if hps[v].MST.Member {
				res.InComponent[v] = true
			}
		}
	default:
		return nil, fmt.Errorf("connect: CONhybrid quiesced with neither algorithm done")
	}
	return res, nil
}
