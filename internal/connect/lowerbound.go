package connect

import (
	"costsense/internal/basic"
	"costsense/internal/graph"
)

// GnReport is the executable form of the §7.1 lower bound: the family
// G_n separates edge-bound algorithms (DFS, flooding: Θ(𝓔), dominated
// by the X⁴ bypass edges) from tree-bound algorithms (MSTcentr:
// Θ(n𝓥) = Θ(n²X)), and any algorithm must pay Ω(min{𝓔, n𝓥}).
type GnReport struct {
	N          int
	X          int64
	E          int64 // 𝓔 = w(G_n): dominated by bypass edges, Θ(nX⁴)
	NV         int64 // n·𝓥 = Θ(n²X)
	FloodComm  int64
	DFSComm    int64
	MSTComm    int64
	HybridComm int64
}

// RunGnExperiment measures the connectivity algorithms on G_n (§7.1).
func RunGnExperiment(n int, x int64) (*GnReport, error) {
	g := graph.HardConnectivity(n, x)
	rep := &GnReport{
		N:  n,
		X:  x,
		E:  g.TotalWeight(),
		NV: int64(n) * graph.MSTWeight(g),
	}
	fl, err := basic.RunFlood(g, 0)
	if err != nil {
		return nil, err
	}
	rep.FloodComm = fl.Stats.Comm
	dfs, err := basic.RunDFS(g, 0)
	if err != nil {
		return nil, err
	}
	rep.DFSComm = dfs.Stats.Comm
	mst, err := basic.RunMSTCentr(g, 0)
	if err != nil {
		return nil, err
	}
	rep.MSTComm = mst.Stats.Comm
	hy, err := RunCONHybrid(g, 0)
	if err != nil {
		return nil, err
	}
	rep.HybridComm = hy.Stats.Comm
	return rep, nil
}

// MinBound returns min{𝓔, n𝓥}, the §7 tight bound for connectivity.
func (r *GnReport) MinBound() int64 {
	if r.E < r.NV {
		return r.E
	}
	return r.NV
}
