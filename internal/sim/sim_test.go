package sim

import (
	"testing"

	"costsense/internal/graph"
)

// pingPong: node 0 sends "ping" k times to node 1, which answers "pong".
type pingPong struct {
	id       graph.NodeID
	k        int
	received []int64 // delivery times
	seq      []int   // payloads in delivery order
}

func (p *pingPong) Init(ctx Context) {
	if p.id == 0 {
		for i := 0; i < p.k; i++ {
			ctx.Send(1, i)
		}
	}
}

func (p *pingPong) Handle(ctx Context, from graph.NodeID, m Message) {
	v, _ := m.(int)
	p.received = append(p.received, ctx.Now())
	p.seq = append(p.seq, v)
	if p.id == 1 {
		ctx.SendClass(0, v, ClassAck)
	}
}

func twoNode(w int64) *graph.Graph {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, w)
	return b.MustBuild()
}

func TestSendDeliveryAndAccounting(t *testing.T) {
	g := twoNode(7)
	p0 := &pingPong{id: 0, k: 3}
	p1 := &pingPong{id: 1}
	stats, err := Run(g, []Process{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 6 {
		t.Errorf("Messages = %d, want 6 (3 pings + 3 pongs)", stats.Messages)
	}
	if stats.Comm != 42 {
		t.Errorf("Comm = %d, want 42", stats.Comm)
	}
	if got := stats.CommOf(ClassProto); got != 21 {
		t.Errorf("proto comm = %d, want 21", got)
	}
	if got := stats.CommOf(ClassAck); got != 21 {
		t.Errorf("ack comm = %d, want 21", got)
	}
	if got := stats.MessagesOf(ClassAck); got != 3 {
		t.Errorf("ack messages = %d, want 3", got)
	}
	// With DelayMax, pings all arrive at t=7 (FIFO, same send time),
	// pongs at t=14.
	if stats.FinishTime != 14 {
		t.Errorf("FinishTime = %d, want 14", stats.FinishTime)
	}
	for _, at := range p1.received {
		if at != 7 {
			t.Errorf("ping delivered at %d, want 7", at)
		}
	}
}

func TestRunTwiceErrors(t *testing.T) {
	g := twoNode(3)
	n, err := NewNetwork(g, []Process{&pingPong{id: 0, k: 1}, &pingPong{id: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := n.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestFIFOOrdering(t *testing.T) {
	// Under random delays, FIFO per directed edge must still hold.
	g := twoNode(1000)
	p0 := &pingPong{id: 0, k: 50}
	p1 := &pingPong{id: 1}
	_, err := Run(g, []Process{p0, p1}, WithDelay(DelayUniform{}), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p1.seq {
		if v != i {
			t.Fatalf("FIFO violated: position %d got payload %d (%v)", i, v, p1.seq)
		}
	}
	for i := 1; i < len(p1.received); i++ {
		if p1.received[i] < p1.received[i-1] {
			t.Fatalf("delivery times not monotone: %v", p1.received)
		}
	}
}

func TestDelayModels(t *testing.T) {
	g := twoNode(9)
	run := func(d DelayModel) int64 {
		p0 := &pingPong{id: 0, k: 1}
		p1 := &pingPong{id: 1}
		_, err := Run(g, []Process{p0, p1}, WithDelay(d))
		if err != nil {
			t.Fatal(err)
		}
		return p1.received[0]
	}
	if at := run(DelayMax{}); at != 9 {
		t.Errorf("DelayMax delivery at %d, want 9", at)
	}
	if at := run(DelayUnit{}); at != 1 {
		t.Errorf("DelayUnit delivery at %d, want 1", at)
	}
	if at := run(DelayUniform{}); at < 1 || at > 9 {
		t.Errorf("DelayUniform delivery at %d, want in [1,9]", at)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.RandomConnected(20, 50, graph.UniformWeights(30, 5), 5)
	runOnce := func() *Stats {
		procs := make([]Process, g.N())
		for v := range procs {
			procs[v] = &flooder{}
		}
		st, err := Run(g, procs, WithDelay(DelayUniform{}), WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := runOnce(), runOnce()
	if a.Messages != b.Messages || a.Comm != b.Comm || a.FinishTime != b.FinishTime {
		t.Fatalf("nondeterministic run: %+v vs %+v", a, b)
	}
}

// flooder floods one token from node 0; every node forwards first receipt.
type flooder struct {
	Got   bool
	GotAt int64
}

func (f *flooder) Init(ctx Context) {
	if ctx.ID() == 0 {
		f.Got = true
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "flood")
		}
	}
}

func (f *flooder) Handle(ctx Context, _ graph.NodeID, _ Message) {
	if f.Got {
		return
	}
	f.Got = true
	f.GotAt = ctx.Now()
	for _, h := range ctx.Neighbors() {
		ctx.Send(h.To, "flood")
	}
}

func TestFloodReachesAllWithinDiameterBound(t *testing.T) {
	g := graph.Grid(5, 5, graph.UniformWeights(10, 3))
	procs := make([]Process, g.N())
	fl := make([]*flooder, g.N())
	for v := range procs {
		fl[v] = &flooder{}
		procs[v] = fl[v]
	}
	stats, err := Run(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	sp := graph.Dijkstra(g, 0)
	for v, f := range fl {
		if !f.Got {
			t.Fatalf("node %d never got the flood", v)
		}
		// Under DelayMax every delivery takes exactly w(e), so the
		// first receipt is exactly the shortest weighted distance.
		if graph.NodeID(v) != 0 && f.GotAt != sp.Dist[v] {
			t.Errorf("node %d flooded at %d, want dist %d", v, f.GotAt, sp.Dist[v])
		}
	}
	// Comm of flooding <= 2𝓔 (each edge carries <= 2 messages).
	if stats.Comm > 2*g.TotalWeight() {
		t.Errorf("flood comm %d > 2𝓔 = %d", stats.Comm, 2*g.TotalWeight())
	}
}

type bomb struct{}

func (bomb) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, 0)
	}
}
func (bomb) Handle(ctx Context, from graph.NodeID, _ Message) {
	ctx.Send(from, 0) // infinite ping-pong
}

func TestEventLimit(t *testing.T) {
	g := twoNode(1)
	_, err := Run(g, []Process{bomb{}, bomb{}}, WithEventLimit(1000))
	if err == nil {
		t.Fatal("diverging protocol should hit the event limit")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on send to non-neighbor")
		}
	}()
	procs := []Process{badSender{}, idle{}, idle{}}
	_, _ = Run(g, procs)
}

type badSender struct{}

func (badSender) Init(ctx Context)                      { ctx.Send(2, 0) }
func (badSender) Handle(Context, graph.NodeID, Message) {}

type idle struct{}

func (idle) Init(Context)                          {}
func (idle) Handle(Context, graph.NodeID, Message) {}

type recorder struct{}

func (recorder) Init(ctx Context) {
	ctx.Record("pulse", 1)
	if ctx.ID() == 0 {
		ctx.Send(1, 0)
	}
}
func (recorder) Handle(ctx Context, _ graph.NodeID, _ Message) {
	ctx.Record("pulse", 2)
}

func TestTrace(t *testing.T) {
	g := twoNode(5)
	n, err := NewNetwork(g, []Process{recorder{}, recorder{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	tr := n.Trace("pulse")
	if len(tr) != 3 {
		t.Fatalf("trace has %d points, want 3", len(tr))
	}
	last := tr[len(tr)-1]
	if last.Node != 1 || last.Time != 5 || last.Value != 2 {
		t.Fatalf("last trace point = %+v", last)
	}
}

func TestProcessCountMismatch(t *testing.T) {
	g := twoNode(1)
	if _, err := NewNetwork(g, []Process{idle{}}); err == nil {
		t.Fatal("expected error on process count mismatch")
	}
}

func TestCustomClassAccounting(t *testing.T) {
	g := twoNode(5)
	const myClass = Class("gossip")
	procs := []Process{classSender{class: myClass}, idle{}}
	st, err := Run(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommOf(myClass) != 15 || st.MessagesOf(myClass) != 3 {
		t.Fatalf("custom class accounting: comm=%d msgs=%d, want 15/3",
			st.CommOf(myClass), st.MessagesOf(myClass))
	}
	if st.CommOf(ClassProto) != 0 {
		t.Fatal("no proto traffic expected")
	}
}

type classSender struct{ class Class }

func (c classSender) Init(ctx Context) {
	for i := 0; i < 3; i++ {
		ctx.SendClass(1, i, c.class)
	}
}
func (classSender) Handle(Context, graph.NodeID, Message) {}

func TestUsedEdgesAccounting(t *testing.T) {
	// A ping between 0 and 1 on a triangle uses exactly one edge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 4)
	b.AddEdge(1, 2, 5)
	b.AddEdge(0, 2, 6)
	g := b.MustBuild()
	p0 := &pingPong{id: 0, k: 1}
	p1 := &pingPong{id: 1}
	st, err := Run(g, []Process{p0, p1, idle{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedWeight(g) != 4 {
		t.Fatalf("UsedWeight = %d, want 4", st.UsedWeight(g))
	}
	if st.UsedSpans(g) {
		t.Fatal("one edge cannot span a triangle")
	}
	used := 0
	for _, u := range st.UsedEdges {
		if u {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("%d edges used, want 1", used)
	}
}

func TestCongestedLinksSerialize(t *testing.T) {
	// Three messages sent simultaneously on a weight-5 edge: without
	// congestion all arrive at t=5; with it, at 5, 10 and 15.
	run := func(opts ...Option) []int64 {
		g := twoNode(5)
		p0 := &pingPong{id: 0, k: 3}
		p1 := &pingPong{id: 1}
		if _, err := Run(g, []Process{p0, p1}, opts...); err != nil {
			t.Fatal(err)
		}
		return p1.received
	}
	plain := run()
	for _, at := range plain {
		if at != 5 {
			t.Fatalf("plain model delivery at %d, want 5", at)
		}
	}
	congested := run(WithCongestion())
	want := []int64{5, 10, 15}
	for i, at := range congested {
		if at != want[i] {
			t.Fatalf("congested deliveries = %v, want %v", congested, want)
		}
	}
}

func TestCongestionPreservesFIFOAndCorrectness(t *testing.T) {
	g := twoNode(100)
	p0 := &pingPong{id: 0, k: 30}
	p1 := &pingPong{id: 1}
	_, err := Run(g, []Process{p0, p1}, WithCongestion(), WithDelay(DelayUniform{}), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p1.seq {
		if v != i {
			t.Fatalf("FIFO violated under congestion: %v", p1.seq)
		}
	}
}
