package sim

import (
	"reflect"
	"testing"

	"costsense/internal/graph"
)

// This file pins the Reset/Pool reuse contract: a Network that has
// already completed a run and is then Reset must behave byte-for-byte
// like a freshly constructed one — same Stats (including UsedEdges and
// ByClass), same traces — across every delay model, with and without
// congestion and faults. The serve-mode sweep path leans on this: a
// pooled Network is just a fresh Network that skipped its allocations.

// tracingFlooder is ackFlooder plus a Record call per token receipt,
// so reuse tests cover the trace path too.
type tracingFlooder struct{ ackFlooder }

func (f *tracingFlooder) Handle(ctx Context, from graph.NodeID, m Message) {
	if m == "tok" {
		ctx.Record("tok", int64(from))
	}
	f.ackFlooder.Handle(ctx, from, m)
}

func resetTestGraph() *graph.Graph {
	return graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
}

func resetTestProcs(g *graph.Graph) []Process {
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &tracingFlooder{}
	}
	return procs
}

// resetFaultPlan is a fixed plan exercising every fault mechanism:
// probabilistic drops and duplicates, merged down-windows, and a
// fail-stop crash.
func resetFaultPlan() FaultPlan {
	return FaultPlan{
		Drop: 0.08,
		Dup:  0.04,
		Down: []LinkDown{
			{Edge: 3, From: 5, Until: 40},
			{Edge: 10, From: 0, Until: 20},
			{Edge: 10, From: 15, Until: 30}, // overlaps: exercises merging
		},
		Crashes: []Crash{{Node: 7, At: 30}},
	}
}

// resetCases is the full matrix: the delay/congestion golden cases,
// each with and without the fault plan.
type resetCase struct {
	name string
	opts func() []Option
}

func resetCases() []resetCase {
	var cases []resetCase
	for _, c := range detCases() {
		c := c
		base := func() []Option {
			opts := []Option{WithDelay(c.delay), WithSeed(c.seed)}
			if c.congested {
				opts = append(opts, WithCongestion())
			}
			return opts
		}
		cases = append(cases, resetCase{name: c.name, opts: base})
		cases = append(cases, resetCase{name: c.name + "/faults", opts: func() []Option {
			return append(base(), WithFaults(resetFaultPlan()))
		}})
	}
	return cases
}

// capture is the full observable outcome of one run.
type capture struct {
	stats  Stats
	used   []bool
	traces map[string][]TracePoint
}

func captureRun(t *testing.T, n *Network) capture {
	t.Helper()
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	cp := capture{stats: *st, used: append([]bool(nil), st.UsedEdges...)}
	cp.stats.UsedEdges = nil
	cp.traces = make(map[string][]TracePoint)
	for _, k := range n.Traces() {
		cp.traces[k] = append([]TracePoint(nil), n.Trace(k)...)
	}
	return cp
}

func (c capture) equal(d capture) bool {
	return reflect.DeepEqual(c.stats, d.stats) &&
		reflect.DeepEqual(c.used, d.used) &&
		reflect.DeepEqual(c.traces, d.traces)
}

// TestResetMatchesFresh runs every configuration twice on one Network
// via Reset and checks both runs reproduce a fresh Network's outcome
// exactly. The first reused run follows a run under a *different*
// configuration (the previous case), so stale state of every kind —
// fault marks, congestion floors, RNG streams, interned classes — has
// a chance to leak and be caught.
func TestResetMatchesFresh(t *testing.T) {
	g := resetTestGraph()
	reused, err := NewNetwork(g, resetTestProcs(g), resetCases()[len(resetCases())-1].opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(); err != nil {
		t.Fatal(err) // prime the reused network with a different config
	}
	for _, c := range resetCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fresh, err := NewNetwork(g, resetTestProcs(g), c.opts()...)
			if err != nil {
				t.Fatal(err)
			}
			want := captureRun(t, fresh)
			if err := reused.Reset(resetTestProcs(g), c.opts()...); err != nil {
				t.Fatal(err)
			}
			got := captureRun(t, reused)
			if !got.equal(want) {
				t.Errorf("reused run diverged from fresh run:\n got  %+v\n want %+v", got.stats, want.stats)
			}
		})
	}
}

// TestResetGolden re-checks the pinned golden Stats on a heavily
// reused Network: reuse may not drift the engine off the recorded
// baselines.
func TestResetGolden(t *testing.T) {
	g := resetTestGraph()
	var n *Network
	for _, c := range detCases() {
		procs := make([]Process, g.N())
		for v := range procs {
			procs[v] = &ackFlooder{}
		}
		opts := []Option{WithDelay(c.delay), WithSeed(c.seed)}
		if c.congested {
			opts = append(opts, WithCongestion())
		}
		var err error
		if n == nil {
			n, err = NewNetwork(g, procs, opts...)
		} else {
			err = n.Reset(procs, opts...)
		}
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := flatten(st); got != c.want {
			t.Errorf("%s: reused-network stats diverged from golden:\n got  %+v\n want %+v", c.name, got, c.want)
		}
	}
}

// TestPoolReuse checks the WithPool path end to end: the second
// NewNetwork over the same graph returns the same instance, results
// stay identical to unpooled runs, and the pool's keying is by graph
// pointer identity.
func TestPoolReuse(t *testing.T) {
	g := resetTestGraph()
	p := NewPool(2)
	run := func(seed int64) (*Network, capture) {
		n, err := NewNetwork(g, resetTestProcs(g), WithSeed(seed), WithDelay(DelayUniform{}), WithPool(p))
		if err != nil {
			t.Fatal(err)
		}
		return n, captureRun(t, n)
	}
	n1, got1 := run(1)
	if p.Size() != 1 {
		t.Fatalf("pool size after first run = %d, want 1", p.Size())
	}
	n2, got2 := run(1)
	if n1 != n2 {
		t.Errorf("pool did not reuse the idle network for the same graph")
	}
	if !got1.equal(got2) {
		t.Errorf("pooled rerun diverged: %+v vs %+v", got1.stats, got2.stats)
	}
	fresh, err := NewNetwork(g, resetTestProcs(g), WithSeed(1), WithDelay(DelayUniform{}))
	if err != nil {
		t.Fatal(err)
	}
	want := captureRun(t, fresh)
	if !got2.equal(want) {
		t.Errorf("pooled run diverged from unpooled run")
	}

	// A different graph misses the pool and pools separately.
	g2 := graph.Ring(10, graph.UnitWeights())
	n3, err := NewNetwork(g2, resetTestProcs(g2), WithPool(p))
	if err != nil {
		t.Fatal(err)
	}
	if n3 == n2 {
		t.Errorf("pool returned a network built for a different graph")
	}
	if _, err := n3.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Errorf("pool size = %d, want 2 (one per graph)", p.Size())
	}
}

// TestPoolEviction checks the size bound: the least recently released
// network is dropped when the pool is full.
func TestPoolEviction(t *testing.T) {
	p := NewPool(2)
	graphs := []*graph.Graph{
		graph.Ring(6, graph.UnitWeights()),
		graph.Ring(7, graph.UnitWeights()),
		graph.Ring(8, graph.UnitWeights()),
	}
	for _, g := range graphs {
		n, err := NewNetwork(g, resetTestProcs(g), WithPool(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", p.Size())
	}
	if got := p.take(graphs[0]); got != nil {
		t.Errorf("oldest network was not evicted")
	}
	if got := p.take(graphs[2]); got == nil {
		t.Errorf("newest network missing from pool")
	}
}

// TestResetRunTwice: Run still refuses to run twice without a Reset,
// and Reset re-arms it.
func TestResetRunTwice(t *testing.T) {
	g := graph.Ring(8, graph.UnitWeights())
	n, err := NewNetwork(g, resetTestProcs(g))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err == nil {
		t.Fatal("second Run without Reset succeeded, want error")
	}
	if err := n.Reset(resetTestProcs(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatalf("Run after Reset failed: %v", err)
	}
}

// TestProcessWrapperRunsOncePerReset pins the deferred-wrap contract:
// WithProcessWrapper's function runs exactly once per construction or
// Reset — in particular it is NOT double-applied when an option list
// is replayed onto a pooled instance.
func TestProcessWrapperRunsOncePerReset(t *testing.T) {
	g := graph.Ring(8, graph.UnitWeights())
	p := NewPool(1)
	calls := 0
	wrap := WithProcessWrapper(func(ps []Process) []Process {
		calls++
		return ps
	})
	for i := 0; i < 3; i++ {
		n, err := NewNetwork(g, resetTestProcs(g), wrap, WithPool(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if calls != i+1 {
			t.Fatalf("after %d pooled runs: wrapper ran %d times, want %d", i+1, calls, i+1)
		}
	}
}

// TestResetAfterEventLimit: a run aborted by the event budget leaves
// in-flight events behind; Reset must clear them and the next run must
// match a fresh network exactly.
func TestResetAfterEventLimit(t *testing.T) {
	g := resetTestGraph()
	n, err := NewNetwork(g, resetTestProcs(g), WithEventLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
	fresh, err := NewNetwork(g, resetTestProcs(g), WithSeed(3), WithDelay(DelayUniform{}))
	if err != nil {
		t.Fatal(err)
	}
	want := captureRun(t, fresh)
	if err := n.Reset(resetTestProcs(g), WithSeed(3), WithDelay(DelayUniform{})); err != nil {
		t.Fatal(err)
	}
	got := captureRun(t, n)
	if !got.equal(want) {
		t.Errorf("post-abort reused run diverged from fresh run:\n got  %+v\n want %+v", got.stats, want.stats)
	}
}

// TestResetSharded: reuse through the sharded engine — a Reset network
// running sharded matches fresh serial, and vice versa.
func TestResetSharded(t *testing.T) {
	g := resetTestGraph()
	fresh, err := NewNetwork(g, resetTestProcs(g), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want := captureRun(t, fresh)

	n, err := NewNetwork(g, resetTestProcs(g), WithShards(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := captureRun(t, n); !got.equal(want) {
		t.Fatal("sharded fresh run diverged from serial")
	}
	// Sharded -> serial reuse.
	if err := n.Reset(resetTestProcs(g), WithSeed(5)); err != nil {
		t.Fatal(err)
	}
	if got := captureRun(t, n); !got.equal(want) {
		t.Errorf("serial run on a network previously run sharded diverged")
	}
	// Serial -> sharded reuse, with a cached assignment.
	assign := ShardAssignment(g, 4)
	if err := n.Reset(resetTestProcs(g), WithShardAssignment(assign), WithSeed(5)); err != nil {
		t.Fatal(err)
	}
	if got := captureRun(t, n); !got.equal(want) {
		t.Errorf("sharded run on a reused network diverged")
	}
}

// TestShardAssignmentMatchesWithShards pins the exported partitioner
// to the one WithShards computes internally.
func TestShardAssignmentMatchesWithShards(t *testing.T) {
	g := resetTestGraph()
	want := partitionShards(g, 4)
	if got := ShardAssignment(g, 4); !reflect.DeepEqual(got, want) {
		t.Errorf("ShardAssignment diverged from the internal partitioner")
	}
	if got := ShardAssignment(g, 0); len(got) != g.N() {
		t.Errorf("ShardAssignment(0) returned %d entries", len(got))
	}
}
