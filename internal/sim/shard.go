package sim

import (
	"fmt"
	"math"
	"sort"

	"costsense/internal/cover"
	"costsense/internal/graph"
)

// This file computes the static shard plan of the parallel engine
// (engine_parallel.go): which vertices run on which shard, and the
// minimum simulated time any causal chain needs to cross from one
// shard to another — the quantity the conservative lookahead windows
// are derived from. Everything here runs once, before the workers
// start; nothing in this file is on the per-event path.

// shardInf is the "no bound" distance/horizon. It is far below
// MaxInt64 so that nextT + dist never overflows.
const shardInf = math.MaxInt64 / 4

// shardPlan is the static partition the sharded engine runs on.
type shardPlan struct {
	k       int       // number of shards
	shardOf []int32   // vertex -> shard
	nodes   [][]int32 // shard -> its vertices, ascending
	// dist[s][t] is the all-pairs shortest path over the shard graph
	// whose s-t arc weight is the smallest guaranteed message delay
	// (minDelayOf) over any cut edge between s and t. It bounds causal
	// influence: while shard s has processed nothing at or after time
	// T, no chain of messages leaving s — even one relayed through
	// other shards — can make anything happen in shard t before
	// T + dist[s][t]. The multi-hop closure matters: a direct s-t cut
	// edge may be heavy while a two-hop relay through an idle shard is
	// cheap, and the horizon must respect the cheaper path.
	dist [][]int64
	// rt[t] is the cheapest round trip leaving shard t and coming
	// back: min over s != t of dist[t][s] + dist[s][t]. It bounds the
	// echo hazard the per-source terms miss: shard t's own unprocessed
	// event at nextT_t can mail another shard — even one that is idle
	// right now and so contributes no nextT_s term — and the reply
	// cannot re-enter t before nextT_t + rt[t]. Without this term an
	// idle neighbor shard would leave t's horizon unbounded, t would
	// burn through its whole queue in one window, and the neighbor's
	// reply would arrive in t's past.
	rt []int64
}

// buildShardPlan resolves the WithShards/WithShardAssignment options
// into a concrete plan for this network.
func (n *Network) buildShardPlan() (*shardPlan, error) {
	nv := n.g.N()
	p := &shardPlan{}
	if n.shardOf != nil {
		if len(n.shardOf) != nv {
			return nil, fmt.Errorf("sim: WithShardAssignment: %d entries for %d vertices", len(n.shardOf), nv)
		}
		maxS := int32(0)
		for v, s := range n.shardOf {
			if s < 0 {
				return nil, fmt.Errorf("sim: WithShardAssignment: vertex %d assigned negative shard %d", v, s)
			}
			if s > maxS {
				maxS = s
			}
		}
		p.k = int(maxS) + 1
		p.shardOf = n.shardOf
	} else {
		k := n.shards
		if k > nv {
			k = nv
		}
		if k < 1 {
			k = 1
		}
		p.k = k
		p.shardOf = partitionShards(n.g, k)
	}

	p.nodes = make([][]int32, p.k)
	for v := 0; v < nv; v++ {
		s := p.shardOf[v]
		p.nodes[s] = append(p.nodes[s], int32(v))
	}
	p.dist = n.shardDistances(p)
	return p, nil
}

// ShardAssignment exposes the automatic partitioner behind WithShards:
// the vertex -> shard map WithShards(k) would compute for g. Callers
// that sweep many runs over one graph can compute the assignment once,
// cache it, and pass it to every run with WithShardAssignment — the
// substrate cache in internal/serve does exactly this, so a
// thousand-trial sharded sweep partitions the graph once.
func ShardAssignment(g *graph.Graph, k int) []int32 {
	if k > g.N() {
		k = g.N()
	}
	if k < 1 {
		k = 1
	}
	return partitionShards(g, k)
}

// partitionShards maps vertices to k shards. The primary partitioner
// reuses the synchronizer-γ cluster primitive (internal/cover): grow
// clusters with factor 2 — few cut edges, by the same argument that
// bounds γ's preferred-edge count — then bin-pack whole clusters onto
// shards largest-first (LPT). When the clustering cannot balance (one
// giant cluster, or fewer clusters than shards), fall back to a
// contiguous split of the vertex range, which is always perfectly
// balanced but cuts more edges. Both paths are deterministic.
func partitionShards(g *graph.Graph, k int) []int32 {
	nv := g.N()
	shardOf := make([]int32, nv)
	if k <= 1 {
		return shardOf
	}

	clusterOf, nc := cover.ClusterGrowth(g, 2)
	if nc >= k {
		// Cluster sizes, then LPT: biggest cluster first onto the
		// least-loaded shard. Ties break on lower cluster index and
		// lower shard index, keeping the packing deterministic.
		size := make([]int, nc)
		for _, c := range clusterOf {
			size[c]++
		}
		order := make([]int, nc)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if size[a] != size[b] {
				return size[a] > size[b]
			}
			return a < b
		})
		load := make([]int, k)
		clusterShard := make([]int32, nc)
		for _, c := range order {
			min := 0
			for s := 1; s < k; s++ {
				if load[s] < load[min] {
					min = s
				}
			}
			clusterShard[c] = int32(min)
			load[min] += size[c]
		}
		// Accept the packing only when it is reasonably balanced: the
		// largest shard within 1.5x of the ideal share. Otherwise one
		// hub cluster would serialize the run and the extra cut edges
		// of the contiguous split are the lesser evil.
		ceil := (nv + k - 1) / k
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if 2*maxLoad <= 3*ceil {
			for v := 0; v < nv; v++ {
				shardOf[v] = clusterShard[clusterOf[v]]
			}
			return shardOf
		}
	}

	// Contiguous fallback: vertex v -> shard v*k/nv. Shard sizes differ
	// by at most one.
	for v := 0; v < nv; v++ {
		shardOf[v] = int32(int64(v) * int64(k) / int64(nv))
	}
	return shardOf
}

// shardDistances builds the lookahead distance matrix: direct arcs
// from the cheapest guaranteed delay on each shard pair's cut edges,
// closed under multi-hop relaying with Floyd–Warshall. O(M + k³);
// k is the worker count, so the cube is trivial.
func (n *Network) shardDistances(p *shardPlan) [][]int64 {
	k := p.k
	dist := make([][]int64, k)
	for s := range dist {
		dist[s] = make([]int64, k)
		for t := range dist[s] {
			if s != t {
				dist[s][t] = shardInf
			}
		}
	}
	for _, e := range n.g.Edges() {
		su, sv := p.shardOf[e.U], p.shardOf[e.V]
		if su == sv {
			continue
		}
		if d := n.minDelayOf(e); d < dist[su][sv] {
			dist[su][sv] = d
			dist[sv][su] = d
		}
	}
	for mid := 0; mid < k; mid++ {
		for s := 0; s < k; s++ {
			dm := dist[s][mid]
			if dm >= shardInf {
				continue
			}
			for t := 0; t < k; t++ {
				if via := dm + dist[mid][t]; via < dist[s][t] {
					dist[s][t] = via
				}
			}
		}
	}
	p.rt = make([]int64, k)
	for t := 0; t < k; t++ {
		r := int64(shardInf)
		for s := 0; s < k; s++ {
			if s == t || dist[t][s] >= shardInf || dist[s][t] >= shardInf {
				continue
			}
			if c := dist[t][s] + dist[s][t]; c < r {
				r = c
			}
		}
		p.rt[t] = r
	}
	return dist
}
