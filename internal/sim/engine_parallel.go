package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"costsense/internal/graph"
	"costsense/internal/pq"
)

// This file is the sharded parallel engine behind WithShards: a
// conservative (null-message / window-barrier) parallel discrete-event
// simulator. The graph is partitioned into shards (shard.go); each
// shard owns its vertices' event queue, payload arena, accounting and
// per-node state, and one worker goroutine drives it. Execution
// proceeds in rounds:
//
//	drain    every shard moves the mail other shards addressed to it
//	         into its own queue and reports its next event time.
//	horizon  the coordinator gives shard t the window bound
//	         H_t = min( min over s≠t of nextT_s + dist[s][t],
//	                    nextT_t + rt[t] ) —
//	         no event below H_t can still reach t from outside. The
//	         first term covers chains rooted at another shard's
//	         pending events; the rt round-trip term covers chains
//	         rooted in t's own queue that leave and echo back (an
//	         idle neighbor contributes no nextT_s term but can still
//	         relay t's own mail back into t).
//	process  every shard processes its queued events with at < H_t;
//	         cross-shard sends are appended to per-destination
//	         mailboxes for the next drain.
//
// The result is byte-identical to the serial engine because nothing
// observable depends on how shards interleave:
//
//   - The event order key (at, from, seq) is computed locally by the
//     sender, and each shard pops its queue in exactly that order, so
//     every vertex sees its deliveries in the serial sequence.
//   - FIFO/congestion state (lastArrive), fault cursors (downCur) and
//     per-node RNG streams are owned by the sending vertex's shard and
//     advance in that sender's own monotone time order.
//   - Mail sent during a round arrives at or after the receiver's
//     horizon for that round (see dist in shard.go), so it is never
//     late: it always lands in a window the receiver has not started.
//   - Stats are pure sums (merged after the workers stop), and
//     observer probes/trace points are buffered with their serial
//     order key and replayed after the run (replay.go).
//
// Worker-goroutine state hand-offs all go through the coordinator's
// phase channels, so the engine is race-detector-clean without locks.
// The serial engine in sim.go is untouched: WithShards(k<=1) never
// reaches this file.

// causeKey identifies the happens-before parent of a send during a
// sharded run: the (sender, push-seq) transmission key of the delivery
// whose Handle is executing, or the zero key for Init. Dense global
// sequence numbers do not exist until the post-run replay, so causes
// travel as transmission keys and are resolved to SendEvent.Cause
// through the replay's seqOf map (replay.go).
type causeKey struct {
	from int32
	seq  int64
}

// mailItem is one cross-shard event in flight between two barriers.
// The payload rides along because arena slots are shard-local: the
// receiver re-homes the payload into its own arena when draining.
type mailItem struct {
	ev event
	m  Message
}

// eventFlushBatch is how many locally-processed events a shard batches
// before adding them to the engine-wide event counter. The global
// WithEventLimit check is therefore approximate in sharded runs — by
// at most k*eventFlushBatch events — which the WithShards doc records
// as an accepted divergence.
const eventFlushBatch = 1024

// parEngine is the per-run state of one sharded execution.
type parEngine struct {
	net    *Network
	plan   *shardPlan
	shards []*shard
	sctxs  []shardNodeCtx // per-vertex contexts; entry v touched only by v's shard
	events atomic.Int64   // events processed across shards (batched)
	abort  atomic.Bool    // event limit exhausted: all shards stop
}

// shard is one worker's private slice of the engine. Between barriers
// a worker may touch only its own shard (costsense-vet's shardsync
// analyzer enforces this); the coordinator touches shard state only
// across a phase hand-off, which the channel protocol orders.
type shard struct {
	net  *Network
	eng  *parEngine
	plan *shardPlan
	id   int32

	queue   pq.Heap[event]
	now     int64 // time of the last event this shard processed
	msgs    []Message
	msgFree []int32

	// out[t] is appended by this shard during its process phase and
	// drained (then reset) by shard t during the next drain phase. The
	// phases never overlap, so each mailbox is single-producer,
	// single-consumer with exactly one owner at any instant.
	out [][]mailItem

	// Probe/trace buffer (replay.go) and the current batch tag: the
	// serial-order key of the event (or Init) being processed, plus a
	// running intra-batch counter that preserves callback order inside
	// the batch.
	probes   []probeRec
	curKey   probeKey
	curIntra int32

	// Causal-parent threading, the shard-local mirror of the serial
	// engine's curCause/msgSeq pair: msgCause parallels msgs, holding
	// each slot's own transmission key — or, for timer slots, the cause
	// of the event that scheduled the timer — and curCause is the key
	// of the event whose Handle is currently executing (zero during
	// Init). Timers always stay on their own shard, so the stored key
	// never crosses a barrier unresolved.
	curCause causeKey
	msgCause []causeKey

	// Accounting, merged into Network.stats after the workers stop.
	// UsedEdges is per-shard and OR-merged so no two workers share a
	// bool slice.
	stats      Stats
	classes    []Class
	classStats []ClassStats
	classIdx   map[Class]int

	sinceFlush int64 // events since the last event-counter flush
}

// shardNodeCtx is the Context/TimerContext the sharded engine hands to
// processes: the vertex's engine-owned local state (push sequence and
// RNG stream — the exact counterparts of nodeCtx's) plus its owning
// shard. The serial engine keeps its own leaner nodeCtx; the two must
// evolve identical per-node state for byte-identical runs.
type shardNodeCtx struct {
	sh  *shard
	id  graph.NodeID
	seq int64
	rng *rand.Rand
}

var (
	_ Context      = (*shardNodeCtx)(nil)
	_ TimerContext = (*shardNodeCtx)(nil)
)

func (c *shardNodeCtx) ID() graph.NodeID        { return c.id }
func (c *shardNodeCtx) Now() int64              { return c.sh.now }
func (c *shardNodeCtx) Graph() *graph.Graph     { return c.sh.net.g }
func (c *shardNodeCtx) Neighbors() []graph.Half { return c.sh.net.g.Adj(c.id) }
func (c *shardNodeCtx) Send(to graph.NodeID, m Message) {
	c.sh.send(c, to, m, ClassProto)
}
func (c *shardNodeCtx) SendClass(to graph.NodeID, m Message, cl Class) {
	c.sh.send(c, to, m, cl)
}
func (c *shardNodeCtx) Record(key string, value int64) {
	s := c.sh
	s.probes = append(s.probes, probeRec{
		key: s.curKey, intra: s.curIntra, kind: probeRecord,
		from: c.id, at: s.now, rkey: key, rval: value,
	})
	s.curIntra++
}

// ScheduleTimer mirrors nodeCtx.ScheduleTimer on shard-local state.
// Timers always stay on the sender's own shard.
func (c *shardNodeCtx) ScheduleTimer(delay int64, m Message) {
	if delay < 1 {
		delay = 1
	}
	s := c.sh
	c.seq++
	slot := s.allocSlot(m, s.curCause)
	s.queue.Push(event{at: s.now + delay, seq: c.seq, to: int32(c.id), from: int32(c.id), msgIdx: slot, flags: flagTimer})
	s.stats.Timers++
}

// classID is the shard-local mirror of Network.classID: the standard
// classes resolve without the map, protocol-defined ones intern into
// this shard's table and are merged by name after the run.
func (s *shard) classID(c Class) int {
	switch c {
	case ClassProto:
		return 0
	case ClassAck:
		return 1
	case ClassSync:
		return 2
	case ClassControl:
		return 3
	}
	if id, ok := s.classIdx[c]; ok {
		return id
	}
	id := len(s.classes)
	s.classes = append(s.classes, c)
	s.classStats = append(s.classStats, ClassStats{})
	s.classIdx[c] = id
	return id
}

// allocSlot mirrors Network.allocSlot on the shard's own arena. Probe
// sequence numbers are not tracked here: the replay identifies
// transmissions by their (from, seq) event key instead. ck is the
// slot's causal tag — the event's own transmission key, or, for timer
// slots, the scheduling event's cause (the counterpart of the serial
// engine storing a cause in msgSeq for timers).
func (s *shard) allocSlot(m Message, ck causeKey) int32 {
	if k := len(s.msgFree); k > 0 {
		slot := s.msgFree[k-1]
		s.msgFree = s.msgFree[:k-1]
		s.msgs[slot] = m
		s.msgCause[slot] = ck
		return slot
	}
	s.msgs = append(s.msgs, m)
	s.msgCause = append(s.msgCause, ck)
	return int32(len(s.msgs) - 1)
}

// send mirrors Network.send on shard-local state: same accounting,
// same fault draws from the sender's stream, same per-node push
// sequence — so the events it creates are field-for-field the events
// the serial engine would create.
func (s *shard) send(nc *shardNodeCtx, to graph.NodeID, m Message, cl Class) {
	n := s.net
	h := n.half(nc.id, to)
	if h == nil {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbor %d", nc.id, to))
	}
	w := h.w
	s.stats.UsedEdges[h.eid] = true
	s.stats.Messages++
	s.stats.Comm += w
	ci := s.classID(cl)
	s.classStats[ci].Messages++
	s.classStats[ci].Comm += w

	if n.faults != nil {
		if reason := n.faults.dropSend(h, s.now, nc.rng); reason != 0 {
			// Paid for but never scheduled; still consumes one push
			// sequence, exactly like the serial path.
			nc.seq++
			s.stats.Dropped++
			if n.obs != nil {
				s.probes = append(s.probes, probeRec{
					key: s.curKey, intra: s.curIntra, kind: probeSend,
					tfrom: int32(nc.id), tseq: nc.seq,
					cfrom: s.curCause.from, cseq: s.curCause.seq,
					at: s.now, arrive: s.now, w: w,
					from: nc.id, to: to, edge: h.eid, class: cl, m: m,
				})
				s.curIntra++
				s.probes = append(s.probes, probeRec{
					key: s.curKey, intra: s.curIntra, kind: probeDrop,
					tfrom: int32(nc.id), tseq: nc.seq,
					at: s.now, w: w,
					from: nc.id, to: to, edge: h.eid, class: cl, reason: reason, m: m,
				})
				s.curIntra++
			}
			return
		}
	}
	s.schedule(h, nc, to, m, cl, 0)
	if n.faults != nil && n.faults.dup > 0 && nc.rng.Float64() < n.faults.dup {
		s.stats.Duplicated++
		s.schedule(h, nc, to, m, cl, flagDup)
	}
}

// schedule mirrors Network.schedule: draw the delay from the sender's
// stream, apply the FIFO/congestion floor on the sender-owned directed
// edge, and route the event — to the local queue, or into the mailbox
// of the destination's shard.
func (s *shard) schedule(h *halfEdge, nc *shardNodeCtx, to graph.NodeID, m Message, cl Class, flags uint8) {
	n := s.net
	var d int64
	if n.delayIsMax {
		d = h.w
	} else {
		d = n.delay.Delay(n.g.Edge(h.eid), nc.rng)
	}
	last := n.lastArrive[h.did]
	var at int64
	if n.congested {
		start := s.now
		if last > start {
			start = last
		}
		at = start + d
	} else {
		at = s.now + d
		if at < last {
			at = last
		}
	}
	n.lastArrive[h.did] = at
	nc.seq++
	ev := event{at: at, seq: nc.seq, to: int32(to), from: int32(nc.id), flags: flags}
	if t := s.plan.shardOf[to]; t != s.id {
		s.out[t] = append(s.out[t], mailItem{ev: ev, m: m})
	} else {
		ev.msgIdx = s.allocSlot(m, causeKey{from: ev.from, seq: ev.seq})
		s.queue.Push(ev)
	}
	if n.obs != nil {
		s.probes = append(s.probes, probeRec{
			key: s.curKey, intra: s.curIntra, kind: probeSend,
			tfrom: int32(nc.id), tseq: nc.seq,
			cfrom: s.curCause.from, cseq: s.curCause.seq,
			at: s.now, arrive: at, delay: d, w: h.w,
			from: nc.id, to: to, edge: h.eid, class: cl, dup: flags&flagDup != 0, m: m,
		})
		s.curIntra++
	}
}

// runInits runs Init for this shard's vertices in ascending order at
// time 0. Vertex sets are disjoint and Init touches only sender-owned
// state, so shards init concurrently; the probe replay restores the
// serial all-vertices-ascending callback order via the init batch keys
// (0, v, 0), which sort before every real event (at >= 1).
func (s *shard) runInits() {
	n := s.net
	s.now = 0
	for _, v := range s.plan.nodes[s.id] {
		if n.faults != nil && n.faults.crashAt[v] <= 0 {
			continue // fail-stop at t <= 0: the node never starts
		}
		s.curKey = probeKey{at: 0, from: v, seq: 0}
		s.curIntra = 0
		s.curCause = causeKey{} // Init sends have no causal parent
		n.procs[v].Init(&s.eng.sctxs[v])
	}
	s.now = 0
}

// drainMail moves every mailbox addressed to this shard into its own
// queue. Runs only in the drain phase: the coordinator's barrier
// orders it strictly after all producers' process phases, so reaching
// into the other shards' outboxes here is safe.
//
//costsense:shardbarrier drain phase: producers are quiescent between process rounds
func (s *shard) drainMail() {
	for _, o := range s.eng.shards {
		box := o.out[s.id]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			ev := box[i].ev
			ev.msgIdx = s.allocSlot(box[i].m, causeKey{from: ev.from, seq: ev.seq})
			s.queue.Push(ev)
			box[i] = mailItem{} // release the payload reference
		}
		o.out[s.id] = box[:0]
	}
}

// nextT is the time of this shard's next event, or shardInf when its
// queue is empty (after a drain, an empty queue means the shard has
// nothing in flight at all).
func (s *shard) nextT() int64 {
	if s.queue.Len() == 0 {
		return shardInf
	}
	return s.queue.Peek().at
}

// process runs one window: every queued event with at strictly below
// horizon, in (at, from, seq) order — the serial order restricted to
// this shard. Mail from other shards cannot be below the horizon, and
// local sends always land above the current event's time, so the
// window never processes an event out of order.
func (s *shard) process(horizon int64) {
	n := s.net
	for s.queue.Len() > 0 && s.queue.Peek().at < horizon {
		if s.sinceFlush >= eventFlushBatch {
			s.flushEvents()
			if s.eng.abort.Load() {
				return
			}
		}
		ev := s.queue.Pop()
		s.now = ev.at
		s.stats.Events++
		s.sinceFlush++
		s.curKey = probeKey{at: ev.at, from: ev.from, seq: ev.seq}
		s.curIntra = 0
		// Serial mirror of n.curCause = n.msgSeq[ev.msgIdx]: a
		// delivery's slot carries its own transmission key, a timer's
		// slot carries the scheduling event's cause.
		s.curCause = s.msgCause[ev.msgIdx]
		m := s.msgs[ev.msgIdx]
		s.msgs[ev.msgIdx] = nil
		s.msgFree = append(s.msgFree, ev.msgIdx)
		if n.faults != nil && n.faults.crashAt[ev.to] <= s.now {
			if ev.flags&flagTimer != 0 {
				continue // a crashed node's timer fires into the void
			}
			s.stats.DeadLetters++
			if n.obs != nil {
				h := n.half(graph.NodeID(ev.from), graph.NodeID(ev.to))
				s.probes = append(s.probes, probeRec{
					key: s.curKey, intra: s.curIntra, kind: probeDrop,
					tfrom: ev.from, tseq: ev.seq,
					at: s.now, w: h.w,
					from: graph.NodeID(ev.from), to: graph.NodeID(ev.to), edge: h.eid,
					reason: DropCrash, m: m,
				})
				s.curIntra++
			}
			continue
		}
		if ev.flags&flagTimer != 0 {
			n.procs[ev.to].Handle(&s.eng.sctxs[ev.to], graph.NodeID(ev.to), m)
			continue
		}
		if n.obs != nil {
			h := n.half(graph.NodeID(ev.from), graph.NodeID(ev.to))
			s.probes = append(s.probes, probeRec{
				key: s.curKey, intra: s.curIntra, kind: probeDeliver,
				tfrom: ev.from, tseq: ev.seq,
				at: ev.at, w: h.w,
				from: graph.NodeID(ev.from), to: graph.NodeID(ev.to), edge: h.eid,
				dup: ev.flags&flagDup != 0, m: m,
			})
			s.curIntra++
		}
		n.procs[ev.to].Handle(&s.eng.sctxs[ev.to], graph.NodeID(ev.from), m)
	}
	s.flushEvents()
}

// flushEvents publishes this shard's recent event count to the shared
// counter and raises the abort flag when the WithEventLimit budget is
// gone. Batched so the shared cacheline is touched once per
// eventFlushBatch events, not once per event.
func (s *shard) flushEvents() {
	if s.sinceFlush == 0 {
		return
	}
	total := s.eng.events.Add(s.sinceFlush)
	s.sinceFlush = 0
	if total >= s.net.eventLimit {
		s.eng.abort.Store(true)
	}
}

// Worker phases, driven by the coordinator in runSharded.
const (
	phInit uint8 = iota
	phDrain
	phProcess
)

// phaseCmd is one coordinator -> worker instruction.
type phaseCmd struct {
	phase   uint8
	horizon int64 // process phase only
}

// shardReport is one worker -> coordinator acknowledgment, carrying
// the shard's next event time (meaningful after a drain).
type shardReport struct {
	id    int32
	nextT int64
}

// runSharded is the WithShards entry point, called from Run. The
// calling goroutine is the coordinator: it starts one worker per
// shard, drives the drain/horizon/process rounds to quiescence, then
// merges shard state back into the Network — stats by summation,
// probes and traces by ordered replay (replay.go).
//
//costsense:shardbarrier coordinator: touches shard state only before workers start, across phase hand-offs, and after the channels close
func (n *Network) runSharded() (*Stats, error) {
	plan, err := n.buildShardPlan()
	if err != nil {
		return nil, err
	}
	eng := &parEngine{net: n, plan: plan}
	nv, k := n.g.N(), plan.k

	eng.sctxs = make([]shardNodeCtx, nv)
	needRng := n.needNodeRNG()
	for v := 0; v < nv; v++ {
		eng.sctxs[v] = shardNodeCtx{id: graph.NodeID(v)}
		if needRng {
			eng.sctxs[v].rng = rand.New(rand.NewSource(nodeSeed(n.seed, int32(v))))
		}
	}
	eng.shards = make([]*shard, k)
	for si := 0; si < k; si++ {
		s := &shard{net: n, eng: eng, plan: plan, id: int32(si)}
		s.queue = *pq.NewHeap[event](64)
		s.out = make([][]mailItem, k)
		s.stats.UsedEdges = make([]bool, n.g.M())
		s.classes = append([]Class(nil), n.classes...)
		s.classStats = make([]ClassStats, len(s.classes))
		s.classIdx = make(map[Class]int, nClassHint)
		for i, c := range s.classes {
			s.classIdx[c] = i
		}
		eng.shards[si] = s
	}
	for v := 0; v < nv; v++ {
		eng.sctxs[v].sh = eng.shards[plan.shardOf[v]]
	}

	cmds := make([]chan phaseCmd, k)
	reports := make(chan shardReport, k)
	for si := 0; si < k; si++ {
		cmds[si] = make(chan phaseCmd, 1)
		go func(s *shard, in <-chan phaseCmd) {
			for c := range in {
				switch c.phase {
				case phInit:
					s.runInits()
				case phDrain:
					s.drainMail()
				case phProcess:
					s.process(c.horizon)
				}
				reports <- shardReport{id: s.id, nextT: s.nextT()}
			}
		}(eng.shards[si], cmds[si])
	}

	nextT := make([]int64, k)
	collect := func() {
		for i := 0; i < k; i++ {
			r := <-reports
			nextT[r.id] = r.nextT
		}
	}
	broadcast := func(c phaseCmd) {
		for _, ch := range cmds {
			ch <- c
		}
		collect()
	}

	broadcast(phaseCmd{phase: phInit})
	for !eng.abort.Load() {
		broadcast(phaseCmd{phase: phDrain})
		live := false
		for _, t := range nextT {
			if t < shardInf {
				live = true
				break
			}
		}
		if !live {
			break // every queue empty, every mailbox drained: quiescent
		}
		for t := 0; t < k; t++ {
			h := int64(shardInf)
			if nextT[t] < shardInf && plan.rt[t] < shardInf {
				h = nextT[t] + plan.rt[t]
			}
			for src := 0; src < k; src++ {
				if src == t || nextT[src] >= shardInf {
					continue
				}
				d := plan.dist[src][t]
				if d >= shardInf {
					continue
				}
				if b := nextT[src] + d; b < h {
					h = b
				}
			}
			cmds[t] <- phaseCmd{phase: phProcess, horizon: h}
		}
		collect()
	}
	for _, ch := range cmds {
		close(ch)
	}

	// The last report from each worker happened-after all of its shard
	// work, so the coordinator now owns every shard's state.
	if eng.abort.Load() {
		var last int64
		inFlight := 0
		for _, s := range eng.shards {
			if s.now > last {
				last = s.now
			}
			inFlight += s.queue.Len()
			for _, box := range s.out {
				inFlight += len(box)
			}
		}
		return nil, &ErrEventLimit{Limit: n.eventLimit, LastTime: last, InFlight: inFlight}
	}

	for _, s := range eng.shards {
		n.stats.Messages += s.stats.Messages
		n.stats.Comm += s.stats.Comm
		n.stats.Events += s.stats.Events
		n.stats.Dropped += s.stats.Dropped
		n.stats.Duplicated += s.stats.Duplicated
		n.stats.DeadLetters += s.stats.DeadLetters
		n.stats.Timers += s.stats.Timers
		if s.now > n.stats.FinishTime {
			n.stats.FinishTime = s.now
		}
		for e, used := range s.stats.UsedEdges {
			if used {
				n.stats.UsedEdges[e] = true
			}
		}
		for ci, cs := range s.classStats {
			if cs.Messages == 0 {
				continue
			}
			id := n.internClass(s.classes[ci])
			n.classStats[id].Messages += cs.Messages
			n.classStats[id].Comm += cs.Comm
		}
	}
	eng.replay()
	n.materializeByClass()
	if n.obs != nil {
		n.obs.OnQuiesce(&n.stats)
	}
	return &n.stats, nil
}
