package sim

import (
	"strings"
	"testing"

	"costsense/internal/graph"
)

// countingObserver tallies every callback; used to check the probe
// contract against the run's own Stats.
type countingObserver struct {
	sends     int64
	delivers  int64
	drops     int64
	crashes   int64
	linkDowns int64
	records   int64
	quiesces  int64
	comm      int64
	lastSeq   int64
	seqDense  bool
	waitNeg   bool
	deliverOK bool
	finish    int64
}

func (o *countingObserver) OnSend(e SendEvent, _ Message) {
	o.sends++
	o.comm += e.W
	if e.Seq != o.lastSeq+1 {
		o.seqDense = false
	}
	o.lastSeq = e.Seq
	if e.Wait() < 0 {
		o.waitNeg = true
	}
}

func (o *countingObserver) OnDeliver(e DeliverEvent, _ Message) {
	o.delivers++
	if e.Seq <= 0 || e.Seq > o.lastSeq {
		o.deliverOK = false
	}
}

func (o *countingObserver) OnDrop(e DropEvent, _ Message) {
	o.drops++
	if e.Seq <= 0 || e.Seq > o.lastSeq {
		o.deliverOK = false
	}
}

func (o *countingObserver) OnCrash(_ graph.NodeID, _ int64) { o.crashes++ }

func (o *countingObserver) OnLinkDown(_ graph.EdgeID, _, _ int64) { o.linkDowns++ }

func (o *countingObserver) OnRecord(_ graph.NodeID, _ int64, _ string, _ int64) { o.records++ }

func (o *countingObserver) OnQuiesce(s *Stats) {
	o.quiesces++
	o.finish = s.FinishTime
}

// obsFlooder floods one token and Records a key per node, exercising all
// four callbacks.
type obsFlooder struct{ got bool }

func (r *obsFlooder) Init(ctx Context) {
	if ctx.ID() == 0 {
		r.got = true
		ctx.Record("start", 1)
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "tok")
		}
	}
}

func (r *obsFlooder) Handle(ctx Context, from graph.NodeID, m Message) {
	if r.got {
		return
	}
	r.got = true
	ctx.Record("seen", int64(ctx.ID()))
	for _, h := range ctx.Neighbors() {
		if h.To != from {
			ctx.Send(h.To, m)
		}
	}
}

func TestObserverCallbackCounts(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(16, 5), 5)
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &obsFlooder{}
	}
	o := &countingObserver{seqDense: true, deliverOK: true}
	st, err := Run(g, procs, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if o.sends != st.Messages {
		t.Errorf("OnSend fired %d times, Stats.Messages = %d", o.sends, st.Messages)
	}
	if o.delivers != st.Events {
		t.Errorf("OnDeliver fired %d times, Stats.Events = %d", o.delivers, st.Events)
	}
	if o.comm != st.Comm {
		t.Errorf("observer saw comm %d, Stats.Comm = %d", o.comm, st.Comm)
	}
	if o.records != int64(g.N()) {
		t.Errorf("OnRecord fired %d times, want %d", o.records, g.N())
	}
	if o.quiesces != 1 {
		t.Errorf("OnQuiesce fired %d times, want 1", o.quiesces)
	}
	if o.finish != st.FinishTime {
		t.Errorf("OnQuiesce finish %d != Stats.FinishTime %d", o.finish, st.FinishTime)
	}
	if !o.seqDense {
		t.Error("send sequence numbers are not dense 1..S")
	}
	if !o.deliverOK {
		t.Error("a delivery carried a sequence number never sent")
	}
	if o.waitNeg {
		t.Error("a SendEvent had negative Wait()")
	}
}

// TestObserverStatsUnchanged: installing an observer must not perturb
// the run — same Stats as the unobserved run of the same seed.
func TestObserverStatsUnchanged(t *testing.T) {
	for _, c := range detCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plain := flatten(runDetCase(t, c))
			g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
			procs := make([]Process, g.N())
			for v := range procs {
				procs[v] = &ackFlooder{}
			}
			opts := []Option{WithDelay(c.delay), WithSeed(c.seed), WithObserver(&countingObserver{})}
			if c.congested {
				opts = append(opts, WithCongestion())
			}
			st, err := Run(g, procs, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := flatten(st); got != plain {
				t.Errorf("observed run diverged from unobserved:\n got  %+v\n want %+v", got, plain)
			}
		})
	}
}

// silent never sends: the empty run must not materialize ByClass.
type silent struct{}

func (silent) Init(Context)                          {}
func (silent) Handle(Context, graph.NodeID, Message) {}

func TestEmptyRunByClassNotMaterialized(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights())
	st, err := Run(g, []Process{silent{}, silent{}, silent{}, silent{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ByClass != nil {
		t.Errorf("empty run materialized ByClass = %v, want nil", st.ByClass)
	}
	if st.CommOf(ClassProto) != 0 || st.MessagesOf(ClassAck) != 0 {
		t.Error("accessors over a nil ByClass must read zero")
	}
}

func TestUsedEdgesGraphMismatchPanics(t *testing.T) {
	g := graph.Path(6, graph.UnitWeights())
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &obsFlooder{}
	}
	st, err := Run(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	other := graph.Ring(12, graph.UnitWeights()) // 12 edges vs the path's 5
	for _, c := range []struct {
		name string
		call func()
	}{
		{"UsedWeight", func() { st.UsedWeight(other) }},
		{"UsedSpans", func() { st.UsedSpans(other) }},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s over a mismatched graph did not panic", c.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "pass the same graph") {
					t.Fatalf("panic message %v does not explain the mismatch", r)
				}
			}()
			c.call()
		})
	}
	// The matching graph still works.
	if w := st.UsedWeight(g); w != 5 {
		t.Errorf("UsedWeight over the run's own graph = %d, want 5", w)
	}
	if !st.UsedSpans(g) {
		t.Error("flood must span the path")
	}
}

func TestTracesSortedKeys(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights())
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &obsFlooder{}
	}
	n, err := NewNetwork(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	keys := n.Traces()
	want := []string{"seen", "start"}
	if len(keys) != len(want) {
		t.Fatalf("Traces() = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Traces() = %v, want %v (sorted)", keys, want)
		}
	}
	for _, k := range keys {
		if len(n.Trace(k)) == 0 {
			t.Errorf("Traces() key %q has no points", k)
		}
	}
}
