package sim

import (
	"math"
	"sort"

	"costsense/internal/graph"
)

// This file restores the serial engine's exact observable side effects
// after a sharded run: trace points in Record order, and — when an
// observer is installed — the full probe sequence (OnSend, OnDeliver,
// OnDrop, OnCrash, OnLinkDown, OnRecord) with the same dense global
// sequence numbers the serial engine hands out.
//
// During the run each shard buffers its callbacks as probeRecs, tagged
// with the serial-order key of the batch that produced them: the
// (at, from, seq) of the event being processed, or (0, v, 0) for
// vertex v's Init. Real events have at >= 1 and seq >= 1, so init
// batches sort first, in vertex order — the serial Init loop. Within a
// batch the shard's intra counter preserves callback order. Sorting
// all shards' buffers by (key, intra) therefore reproduces the serial
// callback sequence exactly, because the serial engine processes
// events in the same (at, from, seq) total order and the key is a pure
// function of the sender's local execution.

// probeKey identifies one serial-order batch of callbacks.
type probeKey struct {
	at   int64
	seq  int64
	from int32
}

// Probe kinds.
const (
	probeSend uint8 = iota
	probeDrop
	probeDeliver
	probeRecord
)

// probeRec is one buffered callback. tfrom/tseq identify the
// transmission (the sender and its push counter at scheduling time) so
// the replay can assign dense global sequence numbers on OnSend and
// look them up for the matching OnDeliver/OnDrop. Record entries are
// buffered even without an observer: they carry the run's trace
// points.
type probeRec struct {
	key   probeKey
	intra int32
	kind  uint8
	tfrom int32
	tseq  int64
	cfrom int32 // send: causal parent's transmission key (zero key = Init)
	cseq  int64

	at     int64 // probe time
	arrive int64 // send: scheduled arrival
	delay  int64 // send: drawn transit delay
	w      int64
	from   graph.NodeID
	to     graph.NodeID
	edge   graph.EdgeID
	class  Class
	reason DropReason
	dup    bool
	m      Message
	rkey   string // record: trace key
	rval   int64  // record: trace value
}

// replay merges the shards' probe buffers and re-emits them in serial
// order: trace points into Network.traces, observer callbacks (if any)
// with serial numbering, and fault activations interleaved exactly
// where the serial engine's timeline cursor would have fired them —
// before the first probes of the first event batch at or after each
// activation time, with a final end-of-run flush.
//
//costsense:shardbarrier post-run: all workers have stopped
func (eng *parEngine) replay() {
	n := eng.net
	total := 0
	for _, s := range eng.shards {
		total += len(s.probes)
	}
	recs := make([]probeRec, 0, total)
	for _, s := range eng.shards {
		recs = append(recs, s.probes...)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.key.at != b.key.at {
			return a.key.at < b.key.at
		}
		if a.key.from != b.key.from {
			return a.key.from < b.key.from
		}
		if a.key.seq != b.key.seq {
			return a.key.seq < b.key.seq
		}
		return a.intra < b.intra
	})

	var acts []activation
	if n.faults != nil {
		acts = n.faults.acts
	}
	actCur := 0
	flushActs := func(now int64) {
		for actCur < len(acts) && acts[actCur].at <= now {
			a := acts[actCur]
			actCur++
			if n.obs == nil {
				continue
			}
			if a.kind == actCrash {
				n.obs.OnCrash(a.node, a.at)
			} else {
				n.obs.OnLinkDown(a.edge, a.at, a.until)
			}
		}
	}

	var seqOf map[[2]int64]int64
	if n.obs != nil {
		seqOf = make(map[[2]int64]int64, total)
	}
	for i := range recs {
		r := &recs[i]
		if r.key.seq > 0 {
			// An event batch: the serial loop fires pending fault
			// activations before the event's own probes. Init batches
			// (seq 0) precede any activation check, as in serial.
			flushActs(r.key.at)
		}
		switch r.kind {
		case probeRecord:
			n.traces[r.rkey] = append(n.traces[r.rkey], TracePoint{Node: r.from, Time: r.at, Value: r.rval})
			if n.obs != nil {
				n.obs.OnRecord(r.from, r.at, r.rkey, r.rval)
			}
		case probeSend:
			n.sendSeq++
			seqOf[[2]int64{int64(r.tfrom), r.tseq}] = n.sendSeq
			// The causal parent's own OnSend replays strictly earlier
			// (its send batch key precedes this one), so its global seq
			// is already in seqOf; the zero key (Init cause) is never
			// stored and resolves to 0, matching the serial engine.
			n.obs.OnSend(SendEvent{
				Time: r.at, Arrive: r.arrive, Delay: r.delay, Seq: n.sendSeq,
				Cause: seqOf[[2]int64{int64(r.cfrom), r.cseq}], W: r.w,
				From: r.from, To: r.to, Edge: r.edge, Class: r.class, Dup: r.dup,
			}, r.m)
		case probeDeliver:
			n.obs.OnDeliver(DeliverEvent{
				Time: r.at, Seq: seqOf[[2]int64{int64(r.tfrom), r.tseq}], W: r.w,
				From: r.from, To: r.to, Edge: r.edge, Dup: r.dup,
			}, r.m)
		case probeDrop:
			n.obs.OnDrop(DropEvent{
				Time: r.at, Seq: seqOf[[2]int64{int64(r.tfrom), r.tseq}], W: r.w,
				From: r.from, To: r.to, Edge: r.edge, Class: r.class, Reason: r.reason,
			}, r.m)
		}
	}
	flushActs(math.MaxInt64)
}
