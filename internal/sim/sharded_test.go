package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"costsense/internal/cover"
	"costsense/internal/graph"
)

// logObserver records every callback, payload included, as one
// formatted line. Two runs are observably identical exactly when their
// logs match line for line — a stronger check than comparing derived
// exports, since it pins callback order, sequence numbering and every
// scalar field.
type logObserver struct{ lines []string }

func (o *logObserver) OnSend(e SendEvent, m Message) {
	o.lines = append(o.lines, fmt.Sprintf("S %+v %v", e, m))
}
func (o *logObserver) OnDeliver(e DeliverEvent, m Message) {
	o.lines = append(o.lines, fmt.Sprintf("D %+v %v", e, m))
}
func (o *logObserver) OnDrop(e DropEvent, m Message) {
	o.lines = append(o.lines, fmt.Sprintf("X %+v %v", e, m))
}
func (o *logObserver) OnCrash(v graph.NodeID, at int64) {
	o.lines = append(o.lines, fmt.Sprintf("C %d %d", v, at))
}
func (o *logObserver) OnLinkDown(e graph.EdgeID, from, until int64) {
	o.lines = append(o.lines, fmt.Sprintf("L %d %d %d", e, from, until))
}
func (o *logObserver) OnRecord(v graph.NodeID, t int64, k string, val int64) {
	o.lines = append(o.lines, fmt.Sprintf("R %d %d %s %d", v, t, k, val))
}
func (o *logObserver) OnQuiesce(s *Stats) {
	o.lines = append(o.lines, fmt.Sprintf("Q %+v", *s))
}

// shardCase builds the option sets whose results must coincide: the
// serial engine and the sharded engine at 2, 4 and #clusters shards
// (1 shard is the serial path by construction).
func shardCounts(g *graph.Graph) []int {
	nc := cover.NewPartitionGrowth(g, 2).NumClusters()
	return []int{2, 4, nc}
}

// runPair runs the same configuration serially and sharded, returning
// both networks after their runs for trace comparison.
func runPair(t *testing.T, g *graph.Graph, mk func() Process, shards int, opts ...Option) (*Network, *Network, *Stats, *Stats) {
	t.Helper()
	build := func(extra ...Option) (*Network, *Stats) {
		procs := make([]Process, g.N())
		for v := range procs {
			procs[v] = mk()
		}
		n, err := NewNetwork(g, procs, append(append([]Option{}, opts...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		return n, st
	}
	ns, ss := build()
	np, sp := build(WithShards(shards))
	return ns, np, ss, sp
}

// assertIdentical compares every observable of a serial/sharded pair:
// full Stats (fault counters and UsedEdges included), trace keys and
// every trace point sequence.
func assertIdentical(t *testing.T, ns, np *Network, ss, sp *Stats) {
	t.Helper()
	if !reflect.DeepEqual(ss, sp) {
		t.Errorf("sharded Stats diverged:\n serial  %+v\n sharded %+v", ss, sp)
	}
	sk, pk := ns.Traces(), np.Traces()
	if !reflect.DeepEqual(sk, pk) {
		t.Fatalf("trace keys diverged: serial %v, sharded %v", sk, pk)
	}
	for _, k := range sk {
		if !reflect.DeepEqual(ns.Trace(k), np.Trace(k)) {
			t.Errorf("trace %q diverged:\n serial  %v\n sharded %v", k, ns.Trace(k), np.Trace(k))
		}
	}
}

// TestShardedMatchesSerial: the tentpole golden suite. Every delay
// model x congestion x seed case from the serial golden table, with
// and without a fault plan, across shard counts {2, 4, #clusters} —
// Stats, traces and the complete observer callback log must be
// byte-identical to the serial engine.
func TestShardedMatchesSerial(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	plans := []struct {
		name string
		plan *FaultPlan
	}{
		{name: "clean", plan: nil},
		{name: "faulty", plan: &FaultPlan{Drop: 0.05, Dup: 0.07,
			Down:    []LinkDown{{Edge: 3, From: 2, Until: 40}, {Edge: 17, From: 0, Until: 9}, {Edge: 55, From: 10, Until: 11}},
			Crashes: []Crash{{Node: 7, At: 25}, {Node: 31, At: 3}}}},
	}
	for _, c := range detCases() {
		for _, fp := range plans {
			for _, k := range shardCounts(g) {
				name := fmt.Sprintf("%s/%s/shards%d", c.name, fp.name, k)
				t.Run(name, func(t *testing.T) {
					opts := []Option{WithDelay(c.delay), WithSeed(c.seed)}
					if c.congested {
						opts = append(opts, WithCongestion())
					}
					if fp.plan != nil {
						opts = append(opts, WithFaults(*fp.plan))
					}
					ns, np, ss, sp := runPair(t, g, func() Process { return &ackFlooder{} }, k, opts...)
					assertIdentical(t, ns, np, ss, sp)
				})
			}
		}
	}
}

// TestShardedObserverLogIdentical replays the full observer callback
// stream of a sharded run and requires it to match the serial stream
// line for line, payloads and sequence numbers included — clean and
// faulty, plain and congested.
func TestShardedObserverLogIdentical(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	fp := RandomFaultPlan(g, 99, 0.06, 0.08, 3, 6, 60)
	for _, tc := range []struct {
		name  string
		delay DelayModel
		cong  bool
		fault bool
	}{
		{name: "max/plain/clean", delay: DelayMax{}},
		{name: "uniform/congested/clean", delay: DelayUniform{}, cong: true},
		{name: "max/plain/faulty", delay: DelayMax{}, fault: true},
		{name: "uniform/plain/faulty", delay: DelayUniform{}, fault: true},
		{name: "unit/congested/faulty", delay: DelayUnit{}, cong: true, fault: true},
	} {
		for _, k := range shardCounts(g) {
			t.Run(fmt.Sprintf("%s/shards%d", tc.name, k), func(t *testing.T) {
				run := func(shards int) []string {
					procs := make([]Process, g.N())
					for v := range procs {
						procs[v] = &obsFlooder{}
					}
					o := &logObserver{}
					opts := []Option{WithDelay(tc.delay), WithSeed(5), WithObserver(o)}
					if tc.cong {
						opts = append(opts, WithCongestion())
					}
					if tc.fault {
						opts = append(opts, WithFaults(fp))
					}
					if shards > 1 {
						opts = append(opts, WithShards(shards))
					}
					if _, err := Run(g, procs, opts...); err != nil {
						t.Fatal(err)
					}
					return o.lines
				}
				serial, sharded := run(1), run(k)
				if len(serial) != len(sharded) {
					t.Fatalf("callback count diverged: serial %d, sharded %d", len(serial), len(sharded))
				}
				for i := range serial {
					if serial[i] != sharded[i] {
						t.Fatalf("callback %d diverged:\n serial  %s\n sharded %s", i, serial[i], sharded[i])
					}
				}
			})
		}
	}
}

// timerPinger exercises TimerContext under sharding: every node
// schedules staggered timers from Init, each firing sends a token to
// the next neighbor and records a trace point.
type timerPinger struct{ fired int64 }

func (p *timerPinger) Init(ctx Context) {
	tc := ctx.(TimerContext)
	tc.ScheduleTimer(1+int64(ctx.ID())%5, "tick")
	tc.ScheduleTimer(7, "tock")
}

func (p *timerPinger) Handle(ctx Context, from graph.NodeID, m Message) {
	if from == ctx.ID() { // timer
		p.fired++
		ctx.Record("fired", p.fired)
		if p.fired <= 2 {
			nbrs := ctx.Neighbors()
			ctx.Send(nbrs[int(p.fired)%len(nbrs)].To, "ping")
		}
		return
	}
	if m == "ping" {
		ctx.SendClass(from, "pong", ClassAck)
	}
}

// TestShardedTimers: timers are shard-local events; their interleaving
// with deliveries must match the serial engine exactly.
func TestShardedTimers(t *testing.T) {
	g := graph.RandomConnected(30, 70, graph.UniformWeights(16, 3), 11)
	for _, k := range shardCounts(g) {
		t.Run(fmt.Sprintf("shards%d", k), func(t *testing.T) {
			ns, np, ss, sp := runPair(t, g, func() Process { return &timerPinger{} }, k, WithDelay(DelayUniform{}), WithSeed(3))
			assertIdentical(t, ns, np, ss, sp)
			if ss.Timers == 0 {
				t.Fatal("workload scheduled no timers; test is vacuous")
			}
		})
	}
}

// TestShardedDegeneratePartitions: the regression cases of the cover
// partition satellite — a graph whose γ clustering collapses to one
// cluster (star: the partitioner must fall back to the contiguous
// split) and a pinned n-shard assignment (every vertex its own shard)
// must both run correctly and byte-identically to serial.
func TestShardedDegeneratePartitions(t *testing.T) {
	t.Run("one-cluster-star", func(t *testing.T) {
		g := graph.Star(33, graph.UniformWeights(16, 5))
		if nc := cover.NewPartitionGrowth(g, 2).NumClusters(); nc != 1 {
			t.Fatalf("star clustered into %d clusters, want 1 (degenerate case lost)", nc)
		}
		ns, np, ss, sp := runPair(t, g, func() Process { return &ackFlooder{} }, 4, WithSeed(2))
		assertIdentical(t, ns, np, ss, sp)
	})
	t.Run("n-shards-identity", func(t *testing.T) {
		g := graph.RandomConnected(24, 60, graph.UniformWeights(16, 5), 9)
		ident := make([]int32, g.N())
		for v := range ident {
			ident[v] = int32(v)
		}
		build := func(opts ...Option) (*Network, *Stats) {
			procs := make([]Process, g.N())
			for v := range procs {
				procs[v] = &ackFlooder{}
			}
			n, err := NewNetwork(g, procs, append([]Option{WithDelay(DelayUniform{}), WithSeed(4)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			st, err := n.Run()
			if err != nil {
				t.Fatal(err)
			}
			return n, st
		}
		ns, ss := build()
		np, sp := build(WithShardAssignment(ident))
		assertIdentical(t, ns, np, ss, sp)
	})
	t.Run("bad-assignment-length", func(t *testing.T) {
		g := graph.Path(4, graph.UnitWeights())
		procs := []Process{silent{}, silent{}, silent{}, silent{}}
		_, err := Run(g, procs, WithShardAssignment([]int32{0, 1}))
		if err == nil {
			t.Fatal("short shard assignment did not error")
		}
	})
}

// TestShardedEventLimit: an exhausted budget must still surface as
// *ErrEventLimit from the sharded engine (its count fields are
// documented as approximate).
func TestShardedEventLimit(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(8, 3), 5)
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &obsFlooder{}
	}
	_, err := Run(g, procs, WithShards(3), WithEventLimit(10))
	var lim *ErrEventLimit
	if !errors.As(err, &lim) {
		t.Fatalf("sharded run with tiny budget returned %v, want *ErrEventLimit", err)
	}
	if lim.Limit != 10 {
		t.Errorf("ErrEventLimit.Limit = %d, want 10", lim.Limit)
	}
}

// TestNodeSeedPinned pins the per-node stream split function forever:
// these values are baked into every golden result recorded after the
// move to per-node RNG streams, so nodeSeed may never change again.
func TestNodeSeedPinned(t *testing.T) {
	for _, c := range []struct {
		seed int64
		v    int32
		want int64
	}{
		{seed: 1, v: 0, want: -7995527694508729151},
		{seed: 1, v: 1, want: -4689498862643123097},
		{seed: 42, v: 7, want: -3677692746721775708},
	} {
		if got := nodeSeed(c.seed, c.v); got != c.want {
			t.Errorf("nodeSeed(%d, %d) = %d, want %d", c.seed, c.v, got, c.want)
		}
	}
	// Distinctness across vertices and seeds (collisions here would
	// correlate supposedly-independent streams).
	seen := map[int64]bool{}
	for v := int32(0); v < 1000; v++ {
		s := nodeSeed(1, v)
		if seen[s] {
			t.Fatalf("nodeSeed collision at v=%d", v)
		}
		seen[s] = true
	}
}
