package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

// chaosProc is a randomized but *deterministically seeded* protocol:
// each node forwards received tokens to pseudo-random neighbors while
// it has budget. It exists to fuzz the engine's invariants, not to
// compute anything.
type chaosProc struct {
	rng    *rand.Rand
	budget int
	sent   int64 // weighted cost of own sends (engine cross-check)
	msgs   int64
}

func (c *chaosProc) send(ctx Context) {
	nbs := ctx.Neighbors()
	if len(nbs) == 0 || c.budget <= 0 {
		return
	}
	k := 1 + c.rng.Intn(2)
	for i := 0; i < k && c.budget > 0; i++ {
		h := nbs[c.rng.Intn(len(nbs))]
		c.budget--
		c.sent += h.W
		c.msgs++
		ctx.Send(h.To, "tok")
	}
}

func (c *chaosProc) Init(ctx Context) {
	if ctx.ID()%3 == 0 {
		c.send(ctx)
	}
}

func (c *chaosProc) Handle(ctx Context, _ graph.NodeID, _ Message) {
	c.send(ctx)
}

// TestEngineInvariantsUnderChaos fuzzes the engine: for random graphs,
// seeds and delay models, the accounted weighted communication must
// equal the sum over nodes of their own send costs, message counts
// must agree, runs must be deterministic, and FinishTime must be the
// time of some delivery.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, n-1+rng.Intn(3*n), graph.UniformWeights(1+rng.Int63n(40), seed), seed)
		delay := []DelayModel{DelayMax{}, DelayUnit{}, DelayUniform{}}[rng.Intn(3)]

		runOnce := func() (*Stats, []*chaosProc, error) {
			procs := make([]Process, n)
			cs := make([]*chaosProc, n)
			for v := range procs {
				cs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed + int64(v))), budget: 5 + rng.Intn(20)}
				procs[v] = cs[v]
			}
			stats, err := Run(g, procs, WithDelay(delay), WithSeed(seed))
			return stats, cs, err
		}
		s1, cs1, err := runOnce()
		if err != nil {
			t.Log(err)
			return false
		}
		var wantComm, wantMsgs int64
		for _, c := range cs1 {
			wantComm += c.sent
			wantMsgs += c.msgs
		}
		if s1.Comm != wantComm || s1.Messages != wantMsgs {
			t.Logf("seed %d: engine accounted comm=%d msgs=%d, processes sent comm=%d msgs=%d",
				seed, s1.Comm, s1.Messages, wantComm, wantMsgs)
			return false
		}
		if s1.Messages > 0 && s1.FinishTime <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDeterminismUnderChaos re-runs identical chaos twice and
// demands bit-identical statistics.
func TestEngineDeterminismUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := n - 1 + rng.Intn(2*n)
		maxW := 1 + rng.Int63n(30)
		budget := 5 + rng.Intn(15)

		run := func() *Stats {
			g := graph.RandomConnected(n, m, graph.UniformWeights(maxW, seed), seed)
			procs := make([]Process, n)
			for v := range procs {
				procs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed ^ int64(v))), budget: budget}
			}
			stats, err := Run(g, procs, WithDelay(DelayUniform{}), WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			return stats
		}
		a, b := run(), run()
		return a.Comm == b.Comm && a.Messages == b.Messages &&
			a.FinishTime == b.FinishTime && a.Events == b.Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzEngineChaos is the native fuzz entry for the same engine
// invariants, now with fault injection in the loop: the fuzzer mutates
// the topology/seed/budget tuple plus a fault plan (drop and
// duplication probabilities, an optional fail-stop crash, an optional
// link outage), and for every input the run must account exactly what
// the processes sent (drops are charged to the sender, duplicates are
// free), conserve transmissions (every scheduled message is delivered,
// dead-lettered, or was dropped at send), finish at an event time, and
// replay bit-identically including all fault counters. The seed corpus
// is checked in under testdata/fuzz/FuzzEngineChaos so CI and fresh
// clones exercise known-interesting regimes (tiny rings, parallel-edge
// multigraphs, heavy congestion, lossy links, crashed hubs) without a
// long fuzzing session.
func FuzzEngineChaos(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int64(21), uint8(12), uint8(8), uint8(1), uint8(40), uint8(0), uint8(0))
	f.Add(int64(-7), uint8(30), uint8(20), uint8(2), uint8(90), uint8(60), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, budgetRaw, delayKind, dropRaw, dupRaw, faultKind uint8) {
		n := 2 + int(nRaw)%30
		budget := 1 + int(budgetRaw)%20
		delay := []DelayModel{DelayMax{}, DelayUnit{}, DelayUniform{}}[int(delayKind)%3]
		rng := rand.New(rand.NewSource(seed))
		m := n - 1 + rng.Intn(2*n)
		g := graph.RandomConnected(n, m, graph.UniformWeights(1+rng.Int63n(40), seed), seed)

		plan := FaultPlan{
			Drop: float64(dropRaw%100) / 200, // 0 .. 0.495
			Dup:  float64(dupRaw%100) / 250,  // 0 .. 0.396
		}
		if faultKind&1 != 0 {
			plan.Crashes = []Crash{{Node: graph.NodeID(n - 1), At: 1 + int64(faultKind>>2)}}
		}
		if faultKind&2 != 0 {
			from := int64(faultKind >> 3)
			plan.Down = []LinkDown{{Edge: 0, From: from, Until: from + 9}}
		}

		runOnce := func() (*Stats, []*chaosProc) {
			procs := make([]Process, n)
			cs := make([]*chaosProc, n)
			for v := range procs {
				cs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed + int64(v))), budget: budget}
				procs[v] = cs[v]
			}
			stats, err := Run(g, procs, WithDelay(delay), WithSeed(seed), WithFaults(plan))
			if err != nil {
				t.Fatal(err)
			}
			return stats, cs
		}
		s1, cs1 := runOnce()
		var wantComm, wantMsgs int64
		for _, c := range cs1 {
			wantComm += c.sent
			wantMsgs += c.msgs
		}
		if s1.Comm != wantComm || s1.Messages != wantMsgs {
			t.Fatalf("accounting mismatch: engine comm=%d msgs=%d, processes sent comm=%d msgs=%d",
				s1.Comm, s1.Messages, wantComm, wantMsgs)
		}
		// Conservation: chaosProc schedules no timers, so every queue
		// event is a scheduled transmission — an original that survived
		// its send-time drop draw, or a duplicate (never drop-drawn).
		if s1.Events != s1.Messages-s1.Dropped+s1.Duplicated {
			t.Fatalf("transmission conservation violated: events=%d, messages=%d dropped=%d duplicated=%d",
				s1.Events, s1.Messages, s1.Dropped, s1.Duplicated)
		}
		if s1.DeadLetters > s1.Events {
			t.Fatalf("%d dead letters exceed %d events", s1.DeadLetters, s1.Events)
		}
		if s1.Events > 0 && s1.FinishTime <= 0 {
			t.Fatalf("%d events processed but FinishTime=%d", s1.Events, s1.FinishTime)
		}
		s2, _ := runOnce()
		if s1.Comm != s2.Comm || s1.Messages != s2.Messages ||
			s1.FinishTime != s2.FinishTime || s1.Events != s2.Events ||
			s1.Dropped != s2.Dropped || s1.Duplicated != s2.Duplicated ||
			s1.DeadLetters != s2.DeadLetters {
			t.Fatalf("nondeterministic replay: run1=%+v run2=%+v", s1, s2)
		}
	})
}
