package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
)

// chaosProc is a randomized but *deterministically seeded* protocol:
// each node forwards received tokens to pseudo-random neighbors while
// it has budget. It exists to fuzz the engine's invariants, not to
// compute anything.
type chaosProc struct {
	rng    *rand.Rand
	budget int
	sent   int64 // weighted cost of own sends (engine cross-check)
	msgs   int64
}

func (c *chaosProc) send(ctx Context) {
	nbs := ctx.Neighbors()
	if len(nbs) == 0 || c.budget <= 0 {
		return
	}
	k := 1 + c.rng.Intn(2)
	for i := 0; i < k && c.budget > 0; i++ {
		h := nbs[c.rng.Intn(len(nbs))]
		c.budget--
		c.sent += h.W
		c.msgs++
		ctx.Send(h.To, "tok")
	}
}

func (c *chaosProc) Init(ctx Context) {
	if ctx.ID()%3 == 0 {
		c.send(ctx)
	}
}

func (c *chaosProc) Handle(ctx Context, _ graph.NodeID, _ Message) {
	c.send(ctx)
}

// TestEngineInvariantsUnderChaos fuzzes the engine: for random graphs,
// seeds and delay models, the accounted weighted communication must
// equal the sum over nodes of their own send costs, message counts
// must agree, runs must be deterministic, and FinishTime must be the
// time of some delivery.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomConnected(n, n-1+rng.Intn(3*n), graph.UniformWeights(1+rng.Int63n(40), seed), seed)
		delay := []DelayModel{DelayMax{}, DelayUnit{}, DelayUniform{}}[rng.Intn(3)]

		runOnce := func() (*Stats, []*chaosProc, error) {
			procs := make([]Process, n)
			cs := make([]*chaosProc, n)
			for v := range procs {
				cs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed + int64(v))), budget: 5 + rng.Intn(20)}
				procs[v] = cs[v]
			}
			stats, err := Run(g, procs, WithDelay(delay), WithSeed(seed))
			return stats, cs, err
		}
		s1, cs1, err := runOnce()
		if err != nil {
			t.Log(err)
			return false
		}
		var wantComm, wantMsgs int64
		for _, c := range cs1 {
			wantComm += c.sent
			wantMsgs += c.msgs
		}
		if s1.Comm != wantComm || s1.Messages != wantMsgs {
			t.Logf("seed %d: engine accounted comm=%d msgs=%d, processes sent comm=%d msgs=%d",
				seed, s1.Comm, s1.Messages, wantComm, wantMsgs)
			return false
		}
		if s1.Messages > 0 && s1.FinishTime <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDeterminismUnderChaos re-runs identical chaos twice and
// demands bit-identical statistics.
func TestEngineDeterminismUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := n - 1 + rng.Intn(2*n)
		maxW := 1 + rng.Int63n(30)
		budget := 5 + rng.Intn(15)

		run := func() *Stats {
			g := graph.RandomConnected(n, m, graph.UniformWeights(maxW, seed), seed)
			procs := make([]Process, n)
			for v := range procs {
				procs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed ^ int64(v))), budget: budget}
			}
			stats, err := Run(g, procs, WithDelay(DelayUniform{}), WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			return stats
		}
		a, b := run(), run()
		return a.Comm == b.Comm && a.Messages == b.Messages &&
			a.FinishTime == b.FinishTime && a.Events == b.Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzEngineChaos is the native fuzz entry for the same engine
// invariants: the fuzzer mutates the topology/seed/budget tuple, and
// for every input the run must account exactly what the processes
// sent, finish at a delivery time, and replay bit-identically. The
// seed corpus is checked in under testdata/fuzz/FuzzEngineChaos so CI
// and fresh clones exercise known-interesting engine regimes (tiny
// rings, parallel-edge multigraphs, heavy congestion) without a long
// fuzzing session.
func FuzzEngineChaos(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(0))
	f.Add(int64(21), uint8(12), uint8(8), uint8(1))
	f.Add(int64(-7), uint8(30), uint8(20), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, budgetRaw, delayKind uint8) {
		n := 2 + int(nRaw)%30
		budget := 1 + int(budgetRaw)%20
		delay := []DelayModel{DelayMax{}, DelayUnit{}, DelayUniform{}}[int(delayKind)%3]
		rng := rand.New(rand.NewSource(seed))
		m := n - 1 + rng.Intn(2*n)
		g := graph.RandomConnected(n, m, graph.UniformWeights(1+rng.Int63n(40), seed), seed)

		runOnce := func() (*Stats, []*chaosProc) {
			procs := make([]Process, n)
			cs := make([]*chaosProc, n)
			for v := range procs {
				cs[v] = &chaosProc{rng: rand.New(rand.NewSource(seed + int64(v))), budget: budget}
				procs[v] = cs[v]
			}
			stats, err := Run(g, procs, WithDelay(delay), WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			return stats, cs
		}
		s1, cs1 := runOnce()
		var wantComm, wantMsgs int64
		for _, c := range cs1 {
			wantComm += c.sent
			wantMsgs += c.msgs
		}
		if s1.Comm != wantComm || s1.Messages != wantMsgs {
			t.Fatalf("accounting mismatch: engine comm=%d msgs=%d, processes sent comm=%d msgs=%d",
				s1.Comm, s1.Messages, wantComm, wantMsgs)
		}
		if s1.Messages > 0 && s1.FinishTime <= 0 {
			t.Fatalf("%d messages delivered but FinishTime=%d", s1.Messages, s1.FinishTime)
		}
		s2, _ := runOnce()
		if s1.Comm != s2.Comm || s1.Messages != s2.Messages ||
			s1.FinishTime != s2.FinishTime || s1.Events != s2.Events {
			t.Fatalf("nondeterministic replay: run1=%+v run2=%+v", s1, s2)
		}
	})
}
