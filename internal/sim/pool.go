package sim

import "costsense/internal/graph"

// Pool recycles Networks across runs of a sweep so the per-run
// construction cost — event heap, payload arena, neighbor index,
// accounting slices — is paid once per graph instead of once per
// trial. Build networks with NewNetwork(..., WithPool(p)) as usual:
// on a pool hit (an idle Network over the same *graph.Graph pointer)
// the cached instance is Reset under the new options and returned;
// after Run finishes, the Network parks itself back in the pool.
//
// A Pool is deliberately NOT safe for concurrent use: it is per-worker
// state. A parallel sweep gives each worker goroutine its own Pool
// (harness.RunIndexedPooled does exactly this), which also preserves
// the sequencing a pooled run relies on — the *Stats returned by Run
// aliases network storage and is invalidated when the same worker
// starts its next pooled run, so results must be copied out between
// runs of one goroutine, never shared across goroutines.
//
// Graphs are keyed by pointer identity, not content: reuse requires
// handing the literal same *graph.Graph to every run (the substrate
// cache in internal/serve guarantees this for server sweeps).
type Pool struct {
	limit int
	idle  []*Network // least-recently released first
}

// NewPool builds a pool keeping at most limit idle Networks
// (limit <= 0 means a small default). One or two is enough for a
// sweep over a single substrate; the bound only matters when one
// worker alternates between many graphs.
func NewPool(limit int) *Pool {
	if limit <= 0 {
		limit = 4
	}
	return &Pool{limit: limit}
}

// WithPool attaches the Network to a Pool: NewNetwork will reuse an
// idle pooled instance over the same graph, and Run releases the
// Network back to the pool when it completes. See Pool for the
// single-goroutine and Stats-lifetime contract.
func WithPool(p *Pool) Option {
	return func(n *Network) { n.pool = p }
}

// Size reports the number of idle Networks currently pooled.
func (p *Pool) Size() int { return len(p.idle) }

// take removes and returns an idle Network built over g, preferring
// the most recently released one, or nil when none is pooled.
func (p *Pool) take(g *graph.Graph) *Network {
	for i := len(p.idle) - 1; i >= 0; i-- {
		if p.idle[i].g == g {
			n := p.idle[i]
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			return n
		}
	}
	return nil
}

// put parks a Network after its run, evicting the least recently
// released instance when the pool is full. A network is out of the
// pool for the whole time it is in use, so no instance is ever pooled
// twice.
func (p *Pool) put(n *Network) {
	if len(p.idle) >= p.limit {
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:len(p.idle)-1]
	}
	p.idle = append(p.idle, n)
}
