package sim

import (
	"testing"

	"costsense/internal/graph"
)

// syncEcho: node 0 sends its ID at pulse 0; receivers record arrival
// pulse and halt.
type syncEcho struct {
	ArrivedAt int64
}

func (s *syncEcho) Init(ctx SyncContext) {
	s.ArrivedAt = -1
	if ctx.ID() == 0 {
		for _, h := range ctx.Graph().Adj(0) {
			ctx.Send(h.To, "hello")
		}
	}
}

func (s *syncEcho) Pulse(ctx SyncContext, inbox []SyncMessage) {
	if ctx.ID() == 0 {
		ctx.Halt() // the sender is done after pulse 0
		return
	}
	if len(inbox) > 0 {
		s.ArrivedAt = ctx.Pulse()
		ctx.Halt()
	}
}

func TestSyncWeightedDelivery(t *testing.T) {
	// 0 --3-- 1, 0 --5-- 2: messages arrive at pulses 3 and 5 exactly.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 2, 5)
	g := b.MustBuild()
	procs := []SyncProcess{&syncEcho{}, &syncEcho{}, &syncEcho{}}
	res, err := SyncRun(g, procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes halt at pulse 1, but re-halting is idempotent; messages in
	// flight keep the run alive until pulse 5.
	if res.Stats.Pulses < 5 {
		t.Errorf("Pulses = %d, want >= 5", res.Stats.Pulses)
	}
	if got := procs[1].(*syncEcho).ArrivedAt; got != 3 {
		t.Errorf("node 1 arrival pulse = %d, want 3", got)
	}
	if got := procs[2].(*syncEcho).ArrivedAt; got != 5 {
		t.Errorf("node 2 arrival pulse = %d, want 5", got)
	}
	if res.Stats.Comm != 8 {
		t.Errorf("Comm = %d, want 8", res.Stats.Comm)
	}
	if !res.InSynch {
		t.Error("sends at pulse 0 are divisible by every weight; run should be in synch")
	}
}

// offBeatSender sends on a weight-2 edge at pulse 1 (not divisible).
type offBeatSender struct{ sent bool }

func (o *offBeatSender) Init(SyncContext) {}
func (o *offBeatSender) Pulse(ctx SyncContext, inbox []SyncMessage) {
	if ctx.ID() == 0 && !o.sent && ctx.Pulse() == 1 {
		o.sent = true
		ctx.Send(1, "offbeat")
		return
	}
	if ctx.Pulse() >= 4 {
		ctx.Halt()
	}
}

func TestInSynchDetection(t *testing.T) {
	g := twoNode(2)
	procs := []SyncProcess{&offBeatSender{}, &offBeatSender{}}
	res, err := SyncRun(g, procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.InSynch {
		t.Error("send at pulse 1 on a weight-2 edge must break in-synch")
	}
}

type never struct{}

func (never) Init(SyncContext)                 {}
func (never) Pulse(SyncContext, []SyncMessage) {}

func TestSyncMaxPulses(t *testing.T) {
	g := twoNode(1)
	if _, err := SyncRun(g, []SyncProcess{never{}, never{}}, 50); err == nil {
		t.Fatal("non-halting protocol should exceed maxPulses")
	}
}

func TestHaltedNodesGetNoPulse(t *testing.T) {
	g := twoNode(4)
	h := &haltCounter{}
	procs := []SyncProcess{h, &syncEcho{}}
	if _, err := SyncRun(g, procs, 100); err != nil {
		t.Fatal(err)
	}
	if h.pulses != 1 {
		t.Fatalf("halted node got %d pulses, want 1", h.pulses)
	}
}

type haltCounter struct{ pulses int }

func (h *haltCounter) Init(ctx SyncContext) {
	if ctx.ID() == 0 {
		ctx.Send(1, "x") // keep the run alive for a few pulses
	}
}
func (h *haltCounter) Pulse(ctx SyncContext, _ []SyncMessage) {
	h.pulses++
	ctx.Halt()
}

// syncFlood floods from 0: first arrival forwards to all neighbors.
type syncFlood struct {
	Got   bool
	GotAt int64
}

func (f *syncFlood) Init(ctx SyncContext) {
	if ctx.ID() == 0 {
		f.Got = true
		f.GotAt = 0
		for _, h := range ctx.Graph().Adj(ctx.ID()) {
			ctx.Send(h.To, "f")
		}
	}
}

func (f *syncFlood) Pulse(ctx SyncContext, inbox []SyncMessage) {
	if !f.Got && len(inbox) > 0 {
		f.Got = true
		f.GotAt = ctx.Pulse()
		for _, h := range ctx.Graph().Adj(ctx.ID()) {
			ctx.Send(h.To, "f")
		}
	}
	if f.Got {
		ctx.Halt()
	}
}

func TestSyncFloodMatchesDistances(t *testing.T) {
	// In the weighted synchronous model, flood arrival pulse = weighted
	// distance — but only when forwarding is instantaneous. Our flood
	// forwards on the pulse of arrival, so arrival pulses equal
	// distances exactly.
	g := graph.Grid(4, 4, graph.UniformWeights(6, 8))
	procs := make([]SyncProcess, g.N())
	fl := make([]*syncFlood, g.N())
	for v := range procs {
		fl[v] = &syncFlood{}
		procs[v] = fl[v]
	}
	if _, err := SyncRun(g, procs, 10000); err != nil {
		t.Fatal(err)
	}
	sp := graph.Dijkstra(g, 0)
	for v, f := range fl {
		if !f.Got {
			t.Fatalf("node %d not flooded", v)
		}
		if f.GotAt != sp.Dist[v] {
			t.Errorf("node %d flooded at pulse %d, want %d", v, f.GotAt, sp.Dist[v])
		}
	}
}
