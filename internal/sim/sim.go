// Package sim provides the executable form of the paper's model of
// computation (§1.3): a static asynchronous point-to-point network over
// a weighted graph G = (V, E, w), where
//
//   - transmitting a message over edge e costs w(e) units of
//     communication, and
//   - the delay of edge e varies adversarially in (0, w(e)].
//
// The simulator is a deterministic discrete-event engine. It accounts
// the two cost-sensitive complexity measures of the paper — weighted
// communication c_π and completion time t_π — separated per message
// class, so that synchronizer and controller overheads can be reported
// apart from the protocol's own traffic.
//
// The hot path (Send → queue → deliver) is allocation-free per event:
// events live in a concrete 4-ary min-heap (internal/pq), FIFO link
// state and class accounting are dense slices indexed by directed-edge
// and interned class IDs, and the neighbor lookup is a precomputed
// per-node index instead of an adjacency scan. See DESIGN.md,
// "Simulator internals & performance".
//
// The package also contains a weighted *synchronous* executor
// (SyncRun): edge e delivers in exactly w(e) pulses. It provides the
// reference semantics that network synchronizers (§4) must simulate.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"costsense/internal/graph"
	"costsense/internal/pq"
)

// Message is an opaque protocol payload.
type Message any

// Class labels a message for cost accounting.
type Class string

// Message classes used across the library. Protocols may introduce
// their own.
const (
	ClassProto   Class = "proto"   // the simulated algorithm's own messages
	ClassAck     Class = "ack"     // acknowledgments (free asymptotically, §4.1)
	ClassSync    Class = "sync"    // synchronizer overhead
	ClassControl Class = "control" // controller overhead
	ClassRetx    Class = "retx"    // reliable-delivery retransmissions (internal/reliable)
)

// Context is the interface a process uses to interact with the network.
// The model is full-information with respect to topology (§1.4.1: "the
// structure of the network is known to all the vertices, including the
// edge weights"); only the other vertices' inputs and dynamic state are
// unknown.
type Context interface {
	// ID returns this node's identity.
	ID() graph.NodeID
	// Now returns the current simulated time.
	Now() int64
	// Graph returns the communication graph.
	Graph() *graph.Graph
	// Neighbors returns this node's incident half-edges.
	Neighbors() []graph.Half
	// Send transmits m to a neighbor at cost w(e), class ClassProto.
	Send(to graph.NodeID, m Message)
	// SendClass transmits m with an explicit accounting class.
	SendClass(to graph.NodeID, m Message, c Class)
	// Record appends (node, time, key, value) to the run trace.
	Record(key string, value int64)
}

// Process is a per-node protocol automaton. Local computation is free
// and instantaneous, per the standard model.
type Process interface {
	// Init runs once at time 0.
	Init(Context)
	// Handle runs on every message delivery.
	Handle(ctx Context, from graph.NodeID, m Message)
}

// DelayModel chooses the delay of each transmission. Delay receives the
// actual network edge as stored in the graph — canonical (U, V)
// orientation and its EdgeID — so models can key off edge identity.
type DelayModel interface {
	// Delay returns the transit time for a message on e, in [1, e.W].
	Delay(e graph.Edge, rng *rand.Rand) int64
}

// DelayMax is the maximal adversary: every message takes exactly w(e).
// This is the adversary against which the paper's upper bounds are
// proved, and the default.
type DelayMax struct{}

// Delay returns w(e).
func (DelayMax) Delay(e graph.Edge, _ *rand.Rand) int64 { return e.W }

// DelayUnit delivers every message in one time unit regardless of
// weight — the most lenient adversary, useful to separate congestion
// from transit time.
type DelayUnit struct{}

// Delay returns 1.
func (DelayUnit) Delay(graph.Edge, *rand.Rand) int64 { return 1 }

// DelayUniform draws each delay uniformly from [1, w(e)].
type DelayUniform struct{}

// Delay returns a uniform draw from [1, w(e)].
func (DelayUniform) Delay(e graph.Edge, rng *rand.Rand) int64 {
	if e.W <= 1 {
		return 1
	}
	return 1 + rng.Int63n(e.W)
}

// LookaheadModel is the optional lower-bound capability of a
// DelayModel: MinDelay returns a value every Delay call for e is
// guaranteed to be at least. The sharded engine uses it to widen the
// conservative lookahead windows on cut edges — under DelayMax the
// bound is the full edge weight, so shards synchronize only as often
// as the lightest cut edge could actually carry a message. A model
// without the capability is bounded by the universal minimum of 1
// (the DelayModel contract is delay in [1, w(e)]).
type LookaheadModel interface {
	MinDelay(e graph.Edge) int64
}

// MinDelay returns w(e): the maximal adversary always takes the full
// weight.
func (DelayMax) MinDelay(e graph.Edge) int64 { return e.W }

// MinDelay returns 1.
func (DelayUnit) MinDelay(graph.Edge) int64 { return 1 }

// MinDelay returns 1, the bottom of the uniform range.
func (DelayUniform) MinDelay(graph.Edge) int64 { return 1 }

// minDelayOf resolves the guaranteed delay lower bound of edge e under
// the configured model, clamped to >= 1.
func (n *Network) minDelayOf(e graph.Edge) int64 {
	if n.delayIsMax {
		return e.W
	}
	if lm, ok := n.delay.(LookaheadModel); ok {
		if d := lm.MinDelay(e); d > 1 {
			return d
		}
	}
	return 1
}

// ClassStats aggregates the cost of one message class.
type ClassStats struct {
	Messages int64 // number of messages
	Comm     int64 // weighted communication: Σ w(e) over transmissions
}

// Stats aggregates the cost-sensitive complexity of a run.
type Stats struct {
	Messages   int64 // total messages
	Comm       int64 // total weighted communication c_π
	FinishTime int64 // completion time t_π (time of last delivery)
	ByClass    map[Class]ClassStats
	Events     int64 // deliveries processed (safety budget accounting)
	// Fault accounting (all zero without WithFaults). Dropped and
	// Duplicated count send-time faults; DeadLetters counts messages
	// that arrived at a crashed node. Dropped messages are still
	// accounted in Messages/Comm — the sender paid for the
	// transmission — while duplicates are free (the adversary, not the
	// protocol, injected them). Timers counts ScheduleTimer firings;
	// timers are free and appear in Events only.
	Dropped     int64
	Duplicated  int64
	DeadLetters int64
	Timers      int64
	// UsedEdges marks the edges that carried at least one message —
	// the subgraph G' of the Theorem 2.1 information-flow argument.
	UsedEdges []bool
}

// checkGraph guards the UsedEdges accessors against being interpreted
// over a graph other than the one that produced the Stats: edge IDs
// index a specific graph's edge list, so mixing graphs silently
// returns garbage (or panics out of range only when the run's graph
// was larger).
func (s *Stats) checkGraph(g *graph.Graph, method string) {
	if len(s.UsedEdges) != g.M() {
		panic(fmt.Sprintf(
			"sim: Stats.%s: stats were recorded on a graph with %d edges but queried against one with %d; pass the same graph the run used",
			method, len(s.UsedEdges), g.M()))
	}
}

// UsedWeight returns w(G'): the total weight of edges that carried
// traffic. Theorem 2.1: for a global function computation, G' must
// contain a spanning tree, so UsedWeight() >= 𝓥. g must be the graph
// the run executed on; any other graph panics.
func (s *Stats) UsedWeight(g *graph.Graph) int64 {
	s.checkGraph(g, "UsedWeight")
	var w int64
	for id, used := range s.UsedEdges {
		if used {
			w += g.Edge(graph.EdgeID(id)).W
		}
	}
	return w
}

// UsedSpans reports whether the used edges connect all of V. g must be
// the graph the run executed on; any other graph panics.
func (s *Stats) UsedSpans(g *graph.Graph) bool {
	s.checkGraph(g, "UsedSpans")
	dsu := graph.NewDSU(g.N())
	comps := g.N()
	for id, used := range s.UsedEdges {
		if used {
			e := g.Edge(graph.EdgeID(id))
			if dsu.Union(int(e.U), int(e.V)) {
				comps--
			}
		}
	}
	return comps == 1 || g.N() <= 1
}

// CommOf returns the weighted communication of one class.
func (s *Stats) CommOf(c Class) int64 { return s.ByClass[c].Comm }

// MessagesOf returns the message count of one class.
func (s *Stats) MessagesOf(c Class) int64 { return s.ByClass[c].Messages }

// TracePoint is one Record call.
type TracePoint struct {
	Node  graph.NodeID
	Time  int64
	Value int64
}

// event is one scheduled delivery. It is deliberately pointer-free and
// 32 bytes: the payload lives in the Network's message arena (indexed
// by msgIdx) and endpoints are narrowed to int32, so sifting events
// through the heap moves four plain words with no GC write barriers.
// The fault/timer markers share the struct's existing padding byte.
//
// seq is the *sender's* per-node push counter (one per transmission
// attempt, duplicate or timer that node originates), not a global
// counter: the ordering key (at, from, seq) is then a pure function of
// each node's own deterministic execution, independent of how events
// from different nodes interleave globally. That independence is what
// lets the sharded engine (engine_parallel.go) process disjoint node
// sets concurrently and still replay the exact serial order.
type event struct {
	at     int64
	seq    int64
	to     int32
	from   int32
	msgIdx int32
	flags  uint8
}

// event.flags bits.
const (
	flagTimer uint8 = 1 << iota // self-scheduled timer, not a transmission
	flagDup                     // fault-injected duplicate copy
)

// Less orders events by (time, sender, sender's push sequence). The
// (from, seq) pair is globally unique, so the order is total and runs
// are deterministic no matter how the queue breaks ties internally —
// and, because every component is computed locally by the sender, the
// order is identical whether events are processed on one queue or
// merged across shard queues.
//
//costsense:hotpath
func (e event) Less(f event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	if e.from != f.from {
		return e.from < f.from
	}
	return e.seq < f.seq
}

// Option configures a Network.
type Option func(*Network)

// WithDelay sets the delay model (default DelayMax).
func WithDelay(d DelayModel) Option {
	return func(n *Network) { n.delay = d }
}

// WithSeed seeds the delay and fault RNG streams (default 1). Runs are
// deterministic for a fixed seed and delay model. Every node draws
// from its own stream, split from the seed by a fixed mixing function
// (nodeSeed), so a node's draws depend only on its own send sequence —
// never on how events from different nodes interleave. Serial and
// sharded runs therefore see identical draws.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.seed = seed }
}

// WithEventLimit bounds the number of deliveries before Run aborts with
// an error; a guard against diverging protocols (default 50 million).
func WithEventLimit(limit int64) Option {
	return func(n *Network) { n.eventLimit = limit }
}

// WithCongestion makes links capacitated: a directed edge transmits one
// message at a time, each occupying it for the message's delay, so
// concurrent messages on a shared edge serialize. This is the link
// model behind the congestion factors in the paper's time bounds (e.g.
// the extra log n in γ*'s O(d·log²n) pulse delay, from edges shared by
// O(log n) cover trees). Off by default: the plain model delivers every
// message after its own delay regardless of load.
func WithCongestion() Option {
	return func(n *Network) { n.congested = true }
}

// WithShards runs the event loop on k concurrent shards (one worker
// goroutine per shard), partitioned with the synchronizer-γ cluster
// primitive (internal/cover) and synchronized by conservative
// lookahead windows derived from the minimum possible delay on cut
// edges. Results — Stats, traces, observer probes and their exports,
// and every seeded-RNG draw — are byte-identical to the serial engine;
// see DESIGN.md "Sharded engine & conservative lookahead" for the
// argument. k <= 1 (the default) keeps the untouched serial hot path.
//
// Two serial/sharded divergences are documented rather than hidden:
// an exhausted WithEventLimit budget still aborts the run with
// *ErrEventLimit, but the exact event count and in-flight snapshot in
// the error depend on where the shards were stopped; and with an
// observer installed, probes are replayed in exact serial order after
// the run rather than during it, so probe payloads reflect any
// mutation the receiving Handle performed (the bundled internal/obs
// observers read only the scalar probe structs and are unaffected).
func WithShards(k int) Option {
	return func(n *Network) { n.shards = k }
}

// WithShardAssignment pins the node -> shard map instead of computing
// one: shardOf[v] is v's shard in [0, k) where k = max+1. Used by
// tests and benchmarks to force degenerate or hand-built partitions
// through the sharded engine; WithShards' automatic partitioner is the
// normal path. The assignment is validated at Run: len(shardOf) must
// equal the vertex count.
func WithShardAssignment(shardOf []int32) Option {
	return func(n *Network) {
		n.shardOf = shardOf
		k := int32(0)
		for _, s := range shardOf {
			if s > k {
				k = s
			}
		}
		n.shards = int(k) + 1
	}
}

// WithProcessWrapper rewraps every process through wrap before the run
// starts: wrap receives the configured process slice and returns the
// slice to actually execute, one process per vertex. This is the hook
// adapter layers use to interpose on an *arbitrary* runner — e.g.
// internal/reliable wraps each protocol automaton with a
// retransmitting, deduplicating shim by passing this option to RunGHS
// or RunGammaW, leaving the protocols themselves untouched.
//
// Like every Option, the wrapper is recorded when the option is
// applied and takes effect exactly once, at finalize — so an option
// list can be probed and replayed onto a pooled Network (see Pool)
// without running wrap's side effects twice.
func WithProcessWrapper(wrap func([]Process) []Process) Option {
	return func(n *Network) { n.wrapFns = append(n.wrapFns, wrap) }
}

// halfEdge is one entry of the per-node neighbor index: the directed
// half-edge toward `to`, carrying the canonical stored edge and the
// directed-edge slot in lastArrive. Entries are sorted by `to`; for
// parallel edges the first adjacency occurrence (lowest edge ID) sorts
// first and is the one send resolves, matching the semantics of the
// adjacency-scan it replaces.
type halfEdge struct {
	to    graph.NodeID
	w     int64
	did   int32 // directed-edge index: 2*edge.ID + orientation
	fdown uint8 // nonzero when the edge has scheduled down-windows (WithFaults)
	eid   graph.EdgeID
}

// nClassHint sizes the interned-class table: the four standard classes
// plus room for a few protocol-defined ones before the slices grow.
const nClassHint = 8

// Network is one asynchronous execution: a graph, one process per
// vertex, and a pending-event queue.
type Network struct {
	g          *graph.Graph
	procs      []Process
	delay      DelayModel
	seed       int64 // RNG seed; per-node streams split from it (nodeSeed)
	queue      pq.Heap[event]
	now        int64
	sendSeq    int64   // probe sequence: one per OnSend-visible transmission, dense 1..S
	curCause   int64   // probe seq of the delivery being handled (0 during Init); SendEvent.Cause
	lastArrive []int64 // directed-edge ID -> last scheduled arrival (FIFO) / busy-until (congested)
	nbr        [][]halfEdge
	msgs       []Message // in-flight payload arena, indexed by event.msgIdx
	msgSeq     []int64   // arena slot -> probe sequence of the transmission; for timer slots, the scheduling event's cause (see ScheduleTimer)
	msgFree    []int32   // free slots in msgs
	delayIsMax bool      // devirtualized fast path for the default DelayMax
	stats      Stats
	classes    []Class      // interned class names, index = class ID
	classStats []ClassStats // dense per-class accounting, same index
	classIdx   map[Class]int
	traces     map[string][]TracePoint
	eventLimit int64
	congested  bool
	ran        bool
	ctxs       []nodeCtx
	obs        Observer    // nil unless WithObserver installed one
	faults     *faultState // nil unless WithFaults installed a plan
	shards     int         // >1: Run dispatches to the sharded engine (engine_parallel.go)
	shardOf    []int32     // explicit shard assignment (WithShardAssignment), else computed

	// Deferred configuration, recorded by Options and acted on once at
	// finalize. Options are pure setters on these fields so that an
	// option list can be applied to a probe Network (to discover the
	// pool) and then replayed onto a pooled instance without running
	// any side effect twice.
	wrapFns       []func([]Process) []Process // WithProcessWrapper, in application order
	pendingFaults *FaultPlan                  // WithFaults plan, installed at finalize
	fdownMarked   bool                        // neighbor index carries fdown marks to clear on Reset
	pool          *Pool                       // WithPool: release target after Run
}

// NewNetwork creates a network running procs[v] at vertex v.
//
// When the option list carries WithPool and the pool holds an idle
// Network built on the same *graph.Graph, that instance is Reset and
// returned instead of allocating a new one: its event heap, payload
// arena, neighbor index and accounting slices are reused, so a sweep
// of many runs over one substrate pays the construction cost once.
func NewNetwork(g *graph.Graph, procs []Process, opts ...Option) (*Network, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("sim: %d processes for %d vertices", len(procs), g.N())
	}
	n := &Network{g: g, procs: procs}
	n.setDefaults()
	for _, o := range opts {
		o(n)
	}
	if n.pool != nil {
		if cached := n.pool.take(g); cached != nil {
			// Replay the option list onto the pooled instance. Options
			// are pure setters (side effects run once, at finalize), so
			// the probe application above configured nothing durable.
			if err := cached.Reset(procs, opts...); err != nil {
				return nil, err
			}
			return cached, nil
		}
	}
	n.initStorage()
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// setDefaults resets the run configuration to the documented defaults;
// Options then override them.
func (n *Network) setDefaults() {
	n.delay = DelayMax{}
	n.seed = 1
	n.eventLimit = 50_000_000
	n.congested = false
	n.obs = nil
	n.shards = 0
	n.shardOf = nil
	n.wrapFns = nil
	n.pendingFaults = nil
	n.pool = nil
}

// initStorage allocates the run-independent heavy state: event heap,
// payload arena, neighbor index, accounting slices and per-node
// contexts. Runs once per Network; Reset reuses all of it.
func (n *Network) initStorage() {
	g := n.g
	n.lastArrive = make([]int64, 2*g.M())
	n.traces = make(map[string][]TracePoint)
	// Pre-size the queue and payload arena for the common regime of a
	// few in-flight messages per edge; both still grow on demand.
	n.queue = *pq.NewHeap[event](2 * g.M())
	n.msgs = make([]Message, 0, 2*g.M())
	n.msgSeq = make([]int64, 0, 2*g.M())
	n.stats.UsedEdges = make([]bool, g.M())
	n.classes = make([]Class, 0, nClassHint)
	n.classStats = make([]ClassStats, 0, nClassHint)
	n.classIdx = make(map[Class]int, nClassHint)
	for _, c := range [...]Class{ClassProto, ClassAck, ClassSync, ClassControl} {
		n.internClass(c)
	}
	n.buildNeighborIndex()
	n.ctxs = make([]nodeCtx, g.N())
	for v := range n.ctxs {
		n.ctxs[v] = nodeCtx{net: n, id: graph.NodeID(v)}
	}
}

// finalize acts on the configuration the Options recorded: it runs the
// deferred process wrappers in order, installs the fault plan (the
// neighbor index exists by now, so down-window edges can be marked),
// and resolves the devirtualized DelayMax fast path. Called exactly
// once per NewNetwork or Reset.
func (n *Network) finalize() error {
	for _, wrap := range n.wrapFns {
		ps := wrap(n.procs)
		if len(ps) != len(n.procs) {
			panic(fmt.Sprintf("sim: WithProcessWrapper returned %d processes for %d vertices", len(ps), len(n.procs)))
		}
		n.procs = ps
	}
	n.wrapFns = nil
	if p := n.pendingFaults; p != nil {
		n.pendingFaults = nil
		n.installFaults(*p)
	}
	if _, ok := n.delay.(DelayMax); ok {
		// The default maximal adversary is a pure d = w(e): skip the
		// per-send interface dispatch. It draws nothing from the RNG,
		// so the fast path cannot shift the random stream.
		n.delayIsMax = true
	}
	return nil
}

// Reset returns the Network to its just-constructed state over the
// same graph, with fresh processes and options, reusing every
// allocation the previous run grew: the event heap, the payload arena
// and its free list, the neighbor index, the FIFO floors and the dense
// accounting slices. A Reset Network runs byte-identically to a
// freshly built one (pinned by the fresh-vs-reused golden tests).
//
// Reset invalidates the *Stats returned by the previous Run and any
// trace slices obtained from it: copy what you need before resetting.
// Configuration does not carry over — the option list passed here is
// the network's entire configuration, exactly as with NewNetwork.
func (n *Network) Reset(procs []Process, opts ...Option) error {
	if len(procs) != n.g.N() {
		return fmt.Errorf("sim: Reset: %d processes for %d vertices", len(procs), n.g.N())
	}
	n.resetRunState()
	n.setDefaults()
	n.procs = procs
	for _, o := range opts {
		o(n)
	}
	return n.finalize()
}

// resetRunState clears everything a run mutates while keeping the
// backing storage: the counters, heap elements, arena payloads (so the
// GC can reclaim them), FIFO floors, accounting, and fault marks.
func (n *Network) resetRunState() {
	n.queue.Reset()
	n.now = 0
	n.sendSeq = 0
	n.curCause = 0
	clear(n.lastArrive)
	clear(n.msgs) // release payload references before truncating
	n.msgs = n.msgs[:0]
	n.msgSeq = n.msgSeq[:0]
	n.msgFree = n.msgFree[:0]
	n.delayIsMax = false
	used := n.stats.UsedEdges
	clear(used)
	n.stats = Stats{UsedEdges: used}
	// Interned classes persist (IDs are internal; accounting restarts).
	for i := range n.classStats {
		n.classStats[i] = ClassStats{}
	}
	// A fresh map, not clear(): trace slices handed out by the previous
	// run must stay valid for their holders.
	n.traces = make(map[string][]TracePoint)
	for v := range n.ctxs {
		n.ctxs[v].seq = 0
		n.ctxs[v].rng = nil
	}
	if n.fdownMarked {
		for v := range n.nbr {
			for i := range n.nbr[v] {
				n.nbr[v][i].fdown = 0
			}
		}
		n.fdownMarked = false
	}
	n.faults = nil
	n.ran = false
}

// buildNeighborIndex precomputes, for every vertex, its half-edges
// sorted by neighbor, so send resolves a (from, to) pair by binary
// search instead of an O(degree) adjacency scan. The index is built
// with two stable counting passes straight off the edge list — O(n+m),
// no comparison sort — and parallel edges keep edge-ID order, so the
// leftmost match is the edge the old adjacency scan picked.
func (n *Network) buildNeighborIndex() {
	g := n.g
	nv, m2 := g.N(), 2*g.M()
	n.nbr = make([][]halfEdge, nv)

	// dhalf is a directed half-edge during the build.
	type dhalf struct {
		from, to int32
		w        int64
		did      int32
		eid      graph.EdgeID
	}

	// Pass 1: counting sort all directed halves by destination. Edges
	// are visited in ID order, so the sort's stability keeps parallel
	// edges ID-ordered.
	cnt := make([]int32, nv+1)
	for _, e := range g.Edges() {
		cnt[e.V+1]++ // half e.U -> e.V
		cnt[e.U+1]++ // half e.V -> e.U
	}
	for v := 0; v < nv; v++ {
		cnt[v+1] += cnt[v]
	}
	byTo := make([]dhalf, m2)
	for i, e := range g.Edges() {
		p := cnt[e.V]
		cnt[e.V]++
		byTo[p] = dhalf{from: int32(e.U), to: int32(e.V), w: e.W, did: 2 * int32(i), eid: e.ID}
		p = cnt[e.U]
		cnt[e.U]++
		byTo[p] = dhalf{from: int32(e.V), to: int32(e.U), w: e.W, did: 2*int32(i) + 1, eid: e.ID}
	}

	// Pass 2: scatter the to-sorted halves into per-source buckets;
	// each bucket receives its entries already sorted by destination.
	pos := make([]int32, nv+1)
	for v := 0; v < nv; v++ {
		pos[v+1] = pos[v] + int32(g.Degree(graph.NodeID(v)))
	}
	backing := make([]halfEdge, m2)
	for v := 0; v < nv; v++ {
		n.nbr[v] = backing[pos[v]:pos[v+1]:pos[v+1]]
	}
	for _, d := range byTo {
		backing[pos[d.from]] = halfEdge{to: graph.NodeID(d.to), w: d.w, did: d.did, eid: d.eid}
		pos[d.from]++
	}
}

// internClass returns the dense ID for a class, allocating one on first
// sight. The four standard classes are interned at construction.
func (n *Network) internClass(c Class) int {
	if id, ok := n.classIdx[c]; ok {
		return id
	}
	id := len(n.classes)
	n.classes = append(n.classes, c)
	n.classStats = append(n.classStats, ClassStats{})
	n.classIdx[c] = id
	return id
}

// classID is the hot-path class lookup: the standard classes resolve by
// constant-string comparison (pointer-equal for the package constants),
// protocol-defined classes fall back to the interning map.
//
//costsense:hotpath
func (n *Network) classID(c Class) int {
	switch c {
	case ClassProto:
		return 0
	case ClassAck:
		return 1
	case ClassSync:
		return 2
	case ClassControl:
		return 3
	}
	return n.internClass(c)
}

// nodeSeed splits the network seed into vertex v's private stream seed
// with one splitmix64-style finalizing round. The mixing function is
// part of the determinism contract — golden tests pin run results
// derived from these streams, so changing it invalidates every
// recorded baseline (a deliberate, one-time re-pin, as when the
// engine moved from one sequential stream to per-node streams).
func nodeSeed(seed int64, v int32) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(uint32(v))+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// needNodeRNG reports whether any per-event code path of this
// configuration can draw randomness: a delay model other than the
// non-drawing DelayMax/DelayUnit, or a fault plan with probabilistic
// drops or duplicates. When false, no stream is ever touched and
// materializeRNGs leaves every per-node rng nil, so the default
// configurations allocate no RNG state at all.
func (n *Network) needNodeRNG() bool {
	if n.faults != nil && (n.faults.drop > 0 || n.faults.dup > 0) {
		return true
	}
	if n.delayIsMax {
		return false
	}
	if _, ok := n.delay.(DelayUnit); ok {
		return false
	}
	return true
}

// materializeRNGs builds the per-node RNG streams when the
// configuration can draw randomness. Cold path: runs once per Run,
// before any Init. The sharded engine performs the equivalent
// materialization on its own per-node contexts.
func (n *Network) materializeRNGs() {
	if !n.needNodeRNG() {
		return
	}
	for v := range n.ctxs {
		n.ctxs[v].rng = rand.New(rand.NewSource(nodeSeed(n.seed, int32(v))))
	}
}

// nodeCtx implements Context for one vertex. It also carries the
// vertex's two pieces of engine-owned local state: the per-node push
// sequence (the event tie-break) and the per-node RNG stream. Both
// live here rather than on the Network so that the sharded engine can
// hand each shard's worker exclusive ownership of its own nodes'
// state, and so that a serial run allocates nothing extra (the ctxs
// slice already exists).
type nodeCtx struct {
	net *Network
	id  graph.NodeID
	seq int64      // per-node push counter: transmissions (incl. dropped), duplicates, timers
	rng *rand.Rand // per-node stream split from the network seed; nil when no draw can happen
}

var _ Context = (*nodeCtx)(nil)

func (c *nodeCtx) ID() graph.NodeID        { return c.id }
func (c *nodeCtx) Now() int64              { return c.net.now }
func (c *nodeCtx) Graph() *graph.Graph     { return c.net.g }
func (c *nodeCtx) Neighbors() []graph.Half { return c.net.g.Adj(c.id) }
func (c *nodeCtx) Send(to graph.NodeID, m Message) {
	c.net.send(c.id, to, m, ClassProto)
}
func (c *nodeCtx) SendClass(to graph.NodeID, m Message, cl Class) {
	c.net.send(c.id, to, m, cl)
}
func (c *nodeCtx) Record(key string, value int64) {
	c.net.traces[key] = append(c.net.traces[key], TracePoint{Node: c.id, Time: c.net.now, Value: value})
	if c.net.obs != nil {
		c.net.obs.OnRecord(c.id, c.net.now, key, value)
	}
}

// TimerContext is the optional timer capability of a Context. The
// engine's nodeCtx implements it; adapter layers that need wake-ups
// without a peer message (retransmission timeouts in internal/reliable)
// discover it by type assertion, so the core Context interface — and
// every existing protocol — is untouched.
type TimerContext interface {
	// ScheduleTimer delivers m back to this node after delay time
	// units (minimum 1). Timers are free — no communication is
	// accounted and no Observer send/deliver probes fire — but each
	// firing consumes one event from the WithEventLimit budget, so
	// timer loops cannot hang a run.
	ScheduleTimer(delay int64, m Message)
}

var _ TimerContext = (*nodeCtx)(nil)

// ScheduleTimer implements TimerContext. The timer slot's msgSeq entry
// holds the *current causal parent* rather than a probe sequence:
// timers never reach OnSend/OnDeliver, so when the timer fires the
// stored value becomes curCause directly and the happens-before chain
// collapses across the (free) timer hop.
//
//costsense:hotpath
func (c *nodeCtx) ScheduleTimer(delay int64, m Message) {
	if delay < 1 {
		delay = 1
	}
	n := c.net
	c.seq++
	slot := n.allocSlot(m, n.curCause)
	n.queue.Push(event{at: n.now + delay, seq: c.seq, to: int32(c.id), from: int32(c.id), msgIdx: slot, flags: flagTimer})
	n.stats.Timers++
}

// half resolves the directed half-edge from -> to, or nil when the
// vertices are not adjacent. Leftmost binary search: parallel edges
// resolve to the lowest edge ID.
//
//costsense:hotpath
func (n *Network) half(from, to graph.NodeID) *halfEdge {
	idx := n.nbr[from]
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if idx[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(idx) || idx[lo].to != to {
		return nil
	}
	return &idx[lo]
}

// send is the per-message hot path: resolve the half-edge, account the
// cost, consult the fault adversary, pick the delay, and schedule the
// delivery — no allocations beyond amortized growth of the queue and
// the payload arena. Without WithFaults the fault adversary is one nil
// check and the RNG stream is untouched.
//
//costsense:hotpath
func (n *Network) send(from, to graph.NodeID, m Message, cl Class) {
	h := n.half(from, to)
	if h == nil {
		//costsense:alloc-ok cold path: a non-neighbor send is a protocol bug and panics immediately
		panic(fmt.Sprintf("sim: node %d sent to non-neighbor %d", from, to))
	}
	nc := &n.ctxs[from]
	w := h.w
	n.stats.UsedEdges[h.eid] = true
	n.stats.Messages++
	n.stats.Comm += w
	ci := n.classID(cl)
	n.classStats[ci].Messages++
	n.classStats[ci].Comm += w

	if n.faults != nil {
		if reason := n.faults.dropSend(h, n.now, nc.rng); reason != 0 {
			// The transmission is paid for (the sender spent its w(e)
			// on the wire) but never scheduled. It still consumes one
			// per-node push sequence so the sender's stream of
			// (seq, RNG) state is a pure function of its own sends,
			// fault outcomes included.
			nc.seq++
			n.stats.Dropped++
			n.sendSeq++
			if n.obs != nil {
				n.obs.OnSend(SendEvent{
					Time: n.now, Arrive: n.now, Delay: 0, Seq: n.sendSeq, Cause: n.curCause, W: w,
					From: from, To: to, Edge: h.eid, Class: cl,
				}, m)
				n.obs.OnDrop(DropEvent{
					Time: n.now, Seq: n.sendSeq, W: w,
					From: from, To: to, Edge: h.eid, Class: cl, Reason: reason,
				}, m)
			}
			return
		}
	}
	n.schedule(h, nc, to, m, cl, 0)
	if n.faults != nil && n.faults.dup > 0 && nc.rng.Float64() < n.faults.dup {
		// Duplicate: a second, independent copy of the same payload.
		// It draws its own delay but shares the FIFO floor, so it
		// arrives at or after the original. The copy is not accounted
		// — the adversary injected it, the protocol didn't pay for it.
		n.stats.Duplicated++
		n.schedule(h, nc, to, m, cl, flagDup)
	}
}

// schedule enqueues one transmission on the resolved half-edge: draw
// the delay, apply FIFO/congestion ordering, place the payload in the
// arena and fire the OnSend probe.
//
//costsense:hotpath
func (n *Network) schedule(h *halfEdge, nc *nodeCtx, to graph.NodeID, m Message, cl Class, flags uint8) {
	var d int64
	if n.delayIsMax {
		d = h.w
	} else {
		d = n.delay.Delay(n.g.Edge(h.eid), nc.rng)
	}
	last := n.lastArrive[h.did]
	var at int64
	if n.congested {
		// Capacitated link: the edge carries one message at a time,
		// each occupying it for its delay.
		start := n.now
		if last > start {
			start = last
		}
		at = start + d
	} else {
		at = n.now + d
		if at < last {
			at = last // FIFO per directed edge
		}
	}
	n.lastArrive[h.did] = at
	nc.seq++
	n.sendSeq++
	slot := n.allocSlot(m, n.sendSeq)
	n.queue.Push(event{at: at, seq: nc.seq, to: int32(to), from: int32(nc.id), msgIdx: slot, flags: flags})
	if n.obs != nil {
		// SendEvent is all scalars and passed by value: the probe adds
		// one branch and no allocation to the unobserved path.
		n.obs.OnSend(SendEvent{
			Time: n.now, Arrive: at, Delay: d, Seq: n.sendSeq, Cause: n.curCause, W: h.w,
			From: nc.id, To: to, Edge: h.eid, Class: cl, Dup: flags&flagDup != 0,
		}, m)
	}
}

// allocSlot places a payload in the arena, reusing a freed slot when
// one exists, and records its probe sequence (0 for timers).
//
//costsense:hotpath
func (n *Network) allocSlot(m Message, seq int64) int32 {
	if k := len(n.msgFree); k > 0 {
		slot := n.msgFree[k-1]
		n.msgFree = n.msgFree[:k-1]
		n.msgs[slot] = m
		n.msgSeq[slot] = seq
		return slot
	}
	n.msgs = append(n.msgs, m)
	n.msgSeq = append(n.msgSeq, seq)
	return int32(len(n.msgs) - 1)
}

// Run initializes every process at time 0 and drives the event queue to
// quiescence. It returns the accumulated statistics. Run may be called
// once per Network (use Reset to run again); a second call returns an
// error.
//
// When the Network was built with WithPool, Run releases it back to
// the pool after the run, so the next NewNetwork over the same graph
// reuses its storage — which also means the returned *Stats is only
// valid until that reuse; pooled callers must copy what they need
// before starting another run from the same goroutine.
func (n *Network) Run() (*Stats, error) {
	if n.ran {
		return nil, fmt.Errorf("sim: Run called twice on the same Network (use Reset to rerun)")
	}
	st, err := n.run()
	if n.pool != nil {
		n.pool.put(n)
	}
	return st, err
}

// run is the once-per-Reset execution: the serial event loop, or the
// dispatch into the sharded engine.
//
//costsense:hotpath
func (n *Network) run() (*Stats, error) {
	n.ran = true
	if n.shards > 1 && n.g.N() > 1 {
		//costsense:alloc-ok cold path: the sharded engine allocates per-shard state up front, never per event
		return n.runSharded()
	}
	n.materializeRNGs()
	for v := range n.procs {
		if n.faults != nil && n.faults.crashAt[v] <= 0 {
			continue // fail-stop at t <= 0: the node never starts
		}
		n.procs[v].Init(&n.ctxs[v])
	}
	for n.queue.Len() > 0 {
		if n.stats.Events >= n.eventLimit {
			//costsense:alloc-ok cold path: constructing the divergence error, run over
			return nil, &ErrEventLimit{Limit: n.eventLimit, LastTime: n.now, InFlight: n.queue.Len()}
		}
		ev := n.queue.Pop()
		n.now = ev.at
		n.stats.Events++
		if n.faults != nil {
			n.faults.observeUpTo(n, ev.at)
		}
		m := n.msgs[ev.msgIdx]
		sseq := n.msgSeq[ev.msgIdx]
		// Causal parent for any sends this event's Handle issues: the
		// delivery's own probe seq, or — for timer slots — the stored
		// cause of the event that scheduled the timer (see
		// ScheduleTimer). Unconditional scalar store; no branch, no
		// alloc, so the nil-observer hot path is unchanged.
		n.curCause = sseq
		n.msgs[ev.msgIdx] = nil
		n.msgFree = append(n.msgFree, ev.msgIdx)
		if n.faults != nil && n.faults.crashAt[ev.to] <= n.now {
			// Fail-stop destination: the message is lost on arrival.
			if ev.flags&flagTimer != 0 {
				continue // a crashed node's timer fires into the void
			}
			n.stats.DeadLetters++
			if n.obs != nil {
				h := n.half(graph.NodeID(ev.from), graph.NodeID(ev.to))
				n.obs.OnDrop(DropEvent{
					Time: n.now, Seq: sseq, W: h.w,
					From: graph.NodeID(ev.from), To: graph.NodeID(ev.to), Edge: h.eid,
					Reason: DropCrash,
				}, m)
			}
			continue
		}
		if ev.flags&flagTimer != 0 {
			// Self-scheduled timer: free, never a transmission, so no
			// OnDeliver probe; it still burns one Events unit.
			n.procs[ev.to].Handle(&n.ctxs[ev.to], graph.NodeID(ev.to), m)
			continue
		}
		if n.obs != nil {
			// Re-resolve the half-edge: send always picks the leftmost
			// (lowest-ID) parallel edge, so this lookup reproduces the
			// edge the message actually used, deterministically.
			h := n.half(graph.NodeID(ev.from), graph.NodeID(ev.to))
			n.obs.OnDeliver(DeliverEvent{
				Time: ev.at, Seq: sseq, W: h.w,
				From: graph.NodeID(ev.from), To: graph.NodeID(ev.to), Edge: h.eid,
				Dup: ev.flags&flagDup != 0,
			}, m)
		}
		n.procs[ev.to].Handle(&n.ctxs[ev.to], graph.NodeID(ev.from), m)
	}
	if n.faults != nil {
		// Flush fault activations past the last event so OnCrash and
		// OnLinkDown fire exactly once per scheduled fault per run,
		// keeping exports independent of where the run happened to end.
		n.faults.observeUpTo(n, math.MaxInt64)
	}
	n.stats.FinishTime = n.now
	//costsense:alloc-ok run epilogue: builds the public per-class view once, after the event loop
	n.materializeByClass()
	if n.obs != nil {
		n.obs.OnQuiesce(&n.stats)
	}
	return &n.stats, nil
}

// materializeByClass builds the public per-class view from the dense
// counters. Only classes that carried traffic appear; a run that sent
// nothing keeps ByClass nil instead of allocating an empty map
// (lookups and accessors read nil maps fine). Shared by the serial
// post-loop epilogue and the sharded engine's merge.
func (n *Network) materializeByClass() {
	if n.stats.Messages == 0 {
		return
	}
	n.stats.ByClass = make(map[Class]ClassStats, len(n.classes))
	for i, cs := range n.classStats {
		if cs.Messages > 0 {
			n.stats.ByClass[n.classes[i]] = cs
		}
	}
}

// Trace returns the recorded points for a key, in delivery order.
func (n *Network) Trace(key string) []TracePoint { return n.traces[key] }

// Traces returns every recorded trace key in sorted order, so exports
// that walk all keys never depend on map iteration order.
func (n *Network) Traces() []string {
	keys := make([]string, 0, len(n.traces))
	for k := range n.traces { //costsense:nondet-ok keys are sorted below before anything observes them
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run is a convenience wrapper: build a network and run it.
func Run(g *graph.Graph, procs []Process, opts ...Option) (*Stats, error) {
	n, err := NewNetwork(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	return n.Run()
}
