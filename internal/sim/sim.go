// Package sim provides the executable form of the paper's model of
// computation (§1.3): a static asynchronous point-to-point network over
// a weighted graph G = (V, E, w), where
//
//   - transmitting a message over edge e costs w(e) units of
//     communication, and
//   - the delay of edge e varies adversarially in (0, w(e)].
//
// The simulator is a deterministic discrete-event engine. It accounts
// the two cost-sensitive complexity measures of the paper — weighted
// communication c_π and completion time t_π — separated per message
// class, so that synchronizer and controller overheads can be reported
// apart from the protocol's own traffic.
//
// The package also contains a weighted *synchronous* executor
// (SyncRun): edge e delivers in exactly w(e) pulses. It provides the
// reference semantics that network synchronizers (§4) must simulate.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"costsense/internal/graph"
)

// Message is an opaque protocol payload.
type Message any

// Class labels a message for cost accounting.
type Class string

// Message classes used across the library. Protocols may introduce
// their own.
const (
	ClassProto   Class = "proto"   // the simulated algorithm's own messages
	ClassAck     Class = "ack"     // acknowledgments (free asymptotically, §4.1)
	ClassSync    Class = "sync"    // synchronizer overhead
	ClassControl Class = "control" // controller overhead
)

// Context is the interface a process uses to interact with the network.
// The model is full-information with respect to topology (§1.4.1: "the
// structure of the network is known to all the vertices, including the
// edge weights"); only the other vertices' inputs and dynamic state are
// unknown.
type Context interface {
	// ID returns this node's identity.
	ID() graph.NodeID
	// Now returns the current simulated time.
	Now() int64
	// Graph returns the communication graph.
	Graph() *graph.Graph
	// Neighbors returns this node's incident half-edges.
	Neighbors() []graph.Half
	// Send transmits m to a neighbor at cost w(e), class ClassProto.
	Send(to graph.NodeID, m Message)
	// SendClass transmits m with an explicit accounting class.
	SendClass(to graph.NodeID, m Message, c Class)
	// Record appends (node, time, key, value) to the run trace.
	Record(key string, value int64)
}

// Process is a per-node protocol automaton. Local computation is free
// and instantaneous, per the standard model.
type Process interface {
	// Init runs once at time 0.
	Init(Context)
	// Handle runs on every message delivery.
	Handle(ctx Context, from graph.NodeID, m Message)
}

// DelayModel chooses the delay of each transmission.
type DelayModel interface {
	// Delay returns the transit time for a message on e, in [1, e.W].
	Delay(e graph.Edge, rng *rand.Rand) int64
}

// DelayMax is the maximal adversary: every message takes exactly w(e).
// This is the adversary against which the paper's upper bounds are
// proved, and the default.
type DelayMax struct{}

// Delay returns w(e).
func (DelayMax) Delay(e graph.Edge, _ *rand.Rand) int64 { return e.W }

// DelayUnit delivers every message in one time unit regardless of
// weight — the most lenient adversary, useful to separate congestion
// from transit time.
type DelayUnit struct{}

// Delay returns 1.
func (DelayUnit) Delay(graph.Edge, *rand.Rand) int64 { return 1 }

// DelayUniform draws each delay uniformly from [1, w(e)].
type DelayUniform struct{}

// Delay returns a uniform draw from [1, w(e)].
func (DelayUniform) Delay(e graph.Edge, rng *rand.Rand) int64 {
	if e.W <= 1 {
		return 1
	}
	return 1 + rng.Int63n(e.W)
}

// ClassStats aggregates the cost of one message class.
type ClassStats struct {
	Messages int64 // number of messages
	Comm     int64 // weighted communication: Σ w(e) over transmissions
}

// Stats aggregates the cost-sensitive complexity of a run.
type Stats struct {
	Messages   int64 // total messages
	Comm       int64 // total weighted communication c_π
	FinishTime int64 // completion time t_π (time of last delivery)
	ByClass    map[Class]ClassStats
	Events     int64 // deliveries processed (safety budget accounting)
	// UsedEdges marks the edges that carried at least one message —
	// the subgraph G' of the Theorem 2.1 information-flow argument.
	UsedEdges []bool
}

// UsedWeight returns w(G'): the total weight of edges that carried
// traffic. Theorem 2.1: for a global function computation, G' must
// contain a spanning tree, so UsedWeight() >= 𝓥.
func (s *Stats) UsedWeight(g *graph.Graph) int64 {
	var w int64
	for id, used := range s.UsedEdges {
		if used {
			w += g.Edge(graph.EdgeID(id)).W
		}
	}
	return w
}

// UsedSpans reports whether the used edges connect all of V.
func (s *Stats) UsedSpans(g *graph.Graph) bool {
	dsu := graph.NewDSU(g.N())
	comps := g.N()
	for id, used := range s.UsedEdges {
		if used {
			e := g.Edge(graph.EdgeID(id))
			if dsu.Union(int(e.U), int(e.V)) {
				comps--
			}
		}
	}
	return comps == 1 || g.N() <= 1
}

// CommOf returns the weighted communication of one class.
func (s *Stats) CommOf(c Class) int64 { return s.ByClass[c].Comm }

// MessagesOf returns the message count of one class.
func (s *Stats) MessagesOf(c Class) int64 { return s.ByClass[c].Messages }

// TracePoint is one Record call.
type TracePoint struct {
	Node  graph.NodeID
	Time  int64
	Value int64
}

type event struct {
	at   int64
	seq  int64
	to   graph.NodeID
	from graph.NodeID
	msg  Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Option configures a Network.
type Option func(*Network)

// WithDelay sets the delay model (default DelayMax).
func WithDelay(d DelayModel) Option {
	return func(n *Network) { n.delay = d }
}

// WithSeed seeds the delay RNG (default 1). Runs are deterministic for
// a fixed seed and delay model.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithEventLimit bounds the number of deliveries before Run aborts with
// an error; a guard against diverging protocols (default 50 million).
func WithEventLimit(limit int64) Option {
	return func(n *Network) { n.eventLimit = limit }
}

// WithCongestion makes links capacitated: a directed edge transmits one
// message at a time, each occupying it for the message's delay, so
// concurrent messages on a shared edge serialize. This is the link
// model behind the congestion factors in the paper's time bounds (e.g.
// the extra log n in γ*'s O(d·log²n) pulse delay, from edges shared by
// O(log n) cover trees). Off by default: the plain model delivers every
// message after its own delay regardless of load.
func WithCongestion() Option {
	return func(n *Network) { n.congested = true }
}

// Network is one asynchronous execution: a graph, one process per
// vertex, and a pending-event queue.
type Network struct {
	g          *graph.Graph
	procs      []Process
	delay      DelayModel
	rng        *rand.Rand
	queue      eventHeap
	now        int64
	seq        int64
	lastArrive map[int64]int64 // directed edge key -> last scheduled arrival (FIFO)
	stats      Stats
	traces     map[string][]TracePoint
	eventLimit int64
	congested  bool
	ctxs       []nodeCtx
}

// NewNetwork creates a network running procs[v] at vertex v.
func NewNetwork(g *graph.Graph, procs []Process, opts ...Option) (*Network, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("sim: %d processes for %d vertices", len(procs), g.N())
	}
	n := &Network{
		g:          g,
		procs:      procs,
		delay:      DelayMax{},
		rng:        rand.New(rand.NewSource(1)),
		lastArrive: make(map[int64]int64),
		traces:     make(map[string][]TracePoint),
		eventLimit: 50_000_000,
	}
	n.stats.ByClass = make(map[Class]ClassStats)
	n.stats.UsedEdges = make([]bool, g.M())
	for _, o := range opts {
		o(n)
	}
	n.ctxs = make([]nodeCtx, g.N())
	for v := range n.ctxs {
		n.ctxs[v] = nodeCtx{net: n, id: graph.NodeID(v)}
	}
	return n, nil
}

// nodeCtx implements Context for one vertex.
type nodeCtx struct {
	net *Network
	id  graph.NodeID
}

var _ Context = (*nodeCtx)(nil)

func (c *nodeCtx) ID() graph.NodeID        { return c.id }
func (c *nodeCtx) Now() int64              { return c.net.now }
func (c *nodeCtx) Graph() *graph.Graph     { return c.net.g }
func (c *nodeCtx) Neighbors() []graph.Half { return c.net.g.Adj(c.id) }
func (c *nodeCtx) Send(to graph.NodeID, m Message) {
	c.net.send(c.id, to, m, ClassProto)
}
func (c *nodeCtx) SendClass(to graph.NodeID, m Message, cl Class) {
	c.net.send(c.id, to, m, cl)
}
func (c *nodeCtx) Record(key string, value int64) {
	c.net.traces[key] = append(c.net.traces[key], TracePoint{Node: c.id, Time: c.net.now, Value: value})
}

func (n *Network) send(from, to graph.NodeID, m Message, cl Class) {
	w := int64(-1)
	for _, h := range n.g.Adj(from) {
		if h.To == to {
			w = h.W
			n.stats.UsedEdges[h.ID] = true
			break
		}
	}
	if w < 0 {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbor %d", from, to))
	}
	n.stats.Messages++
	n.stats.Comm += w
	cs := n.stats.ByClass[cl]
	cs.Messages++
	cs.Comm += w
	n.stats.ByClass[cl] = cs

	e := graph.Edge{U: from, V: to, W: w}
	d := n.delay.Delay(e, n.rng)
	key := int64(from)*int64(n.g.N()) + int64(to)
	var at int64
	if n.congested {
		// Capacitated link: the edge carries one message at a time,
		// each occupying it for its delay.
		start := n.now
		if busy, ok := n.lastArrive[key]; ok && busy > start {
			start = busy
		}
		at = start + d
	} else {
		at = n.now + d
		if last, ok := n.lastArrive[key]; ok && at < last {
			at = last // FIFO per directed edge
		}
	}
	n.lastArrive[key] = at
	n.seq++
	heap.Push(&n.queue, event{at: at, seq: n.seq, to: to, from: from, msg: m})
}

// Run initializes every process at time 0 and drives the event queue to
// quiescence. It returns the accumulated statistics. Run may be called
// once per Network.
func (n *Network) Run() (*Stats, error) {
	for v := range n.procs {
		n.procs[v].Init(&n.ctxs[v])
	}
	for n.queue.Len() > 0 {
		if n.stats.Events >= n.eventLimit {
			return nil, fmt.Errorf("sim: event limit %d exceeded at t=%d (diverging protocol?)", n.eventLimit, n.now)
		}
		ev := heap.Pop(&n.queue).(event)
		n.now = ev.at
		n.stats.Events++
		n.procs[ev.to].Handle(&n.ctxs[ev.to], ev.from, ev.msg)
	}
	n.stats.FinishTime = n.now
	return &n.stats, nil
}

// Trace returns the recorded points for a key, in delivery order.
func (n *Network) Trace(key string) []TracePoint { return n.traces[key] }

// Run is a convenience wrapper: build a network and run it.
func Run(g *graph.Graph, procs []Process, opts ...Option) (*Stats, error) {
	n, err := NewNetwork(g, procs, opts...)
	if err != nil {
		return nil, err
	}
	return n.Run()
}
