package sim

import (
	"fmt"

	"costsense/internal/graph"
)

// SyncMessage is a message delivered to a synchronous process.
type SyncMessage struct {
	From    graph.NodeID
	Payload Message
}

// SyncContext is the interface a synchronous process uses during a
// pulse. In the weighted synchronous semantics (§4.1), a message sent
// over edge e at pulse p is delivered at pulse p + w(e).
type SyncContext interface {
	// ID returns this node's identity.
	ID() graph.NodeID
	// Graph returns the communication graph.
	Graph() *graph.Graph
	// Pulse returns the current pulse number.
	Pulse() int64
	// Send transmits m to a neighbor; it arrives w(e) pulses later.
	Send(to graph.NodeID, m Message)
	// Halt marks this node locally terminated. A halted node receives
	// no further Pulse calls; the run ends when every node halted and
	// no message is in flight.
	Halt()
}

// SyncProcess is a protocol written for the weighted synchronous
// network. Synchronizers (§4) execute such protocols on the
// asynchronous network; SyncRun executes them directly and serves as
// the reference semantics.
type SyncProcess interface {
	// Init runs at pulse 0 before any delivery.
	Init(SyncContext)
	// Pulse runs at every pulse p >= 1 while the node is live, with the
	// messages arriving exactly at p.
	Pulse(ctx SyncContext, inbox []SyncMessage)
}

// SyncStats aggregates the cost of a synchronous run.
type SyncStats struct {
	Pulses   int64 // completion time in pulses
	Messages int64
	Comm     int64 // weighted communication
}

type syncPending struct {
	to  graph.NodeID
	msg SyncMessage
}

type syncRunner struct {
	g       *graph.Graph
	pulse   int64
	pending map[int64][]syncPending // arrival pulse -> deliveries
	halted  []bool
	nHalted int
	stats   SyncStats
	inSynch bool
}

type syncCtx struct {
	r  *syncRunner
	id graph.NodeID
}

var _ SyncContext = (*syncCtx)(nil)

func (c *syncCtx) ID() graph.NodeID    { return c.id }
func (c *syncCtx) Graph() *graph.Graph { return c.r.g }
func (c *syncCtx) Pulse() int64        { return c.r.pulse }

func (c *syncCtx) Send(to graph.NodeID, m Message) {
	w := c.r.g.Weight(c.id, to)
	if w < 0 {
		panic(fmt.Sprintf("sim: sync node %d sent to non-neighbor %d", c.id, to))
	}
	c.r.stats.Messages++
	c.r.stats.Comm += w
	if c.r.pulse%w != 0 {
		c.r.inSynch = false
	}
	at := c.r.pulse + w
	c.r.pending[at] = append(c.r.pending[at], syncPending{
		to:  to,
		msg: SyncMessage{From: c.id, Payload: m},
	})
}

func (c *syncCtx) Halt() {
	if !c.r.halted[c.id] {
		c.r.halted[c.id] = true
		c.r.nHalted++
	}
}

// SyncResult is the outcome of a synchronous reference run.
type SyncResult struct {
	Stats SyncStats
	// InSynch reports whether the protocol was "in synch with G"
	// (Def 4.2): every message was sent at a pulse divisible by the
	// weight of its edge.
	InSynch bool
}

// SyncRun executes a synchronous protocol on the weighted synchronous
// network until every node halts and no message is in flight, or until
// maxPulses elapses (then it errors).
func SyncRun(g *graph.Graph, procs []SyncProcess, maxPulses int64) (*SyncResult, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("sim: %d sync processes for %d vertices", len(procs), g.N())
	}
	r := &syncRunner{
		g:       g,
		pending: make(map[int64][]syncPending),
		halted:  make([]bool, g.N()),
		inSynch: true,
	}
	ctxs := make([]syncCtx, g.N())
	for v := range ctxs {
		ctxs[v] = syncCtx{r: r, id: graph.NodeID(v)}
	}
	for v := range procs {
		procs[v].Init(&ctxs[v])
	}
	for r.pulse = 1; ; r.pulse++ {
		if r.pulse > maxPulses {
			return nil, fmt.Errorf("sim: sync run exceeded %d pulses", maxPulses)
		}
		inboxes := make(map[graph.NodeID][]SyncMessage)
		for _, d := range r.pending[r.pulse] {
			inboxes[d.to] = append(inboxes[d.to], d.msg)
		}
		delete(r.pending, r.pulse)
		for v := range procs {
			if r.halted[v] {
				continue
			}
			procs[v].Pulse(&ctxs[v], inboxes[graph.NodeID(v)])
		}
		if r.nHalted == g.N() && len(r.pending) == 0 {
			break
		}
	}
	r.stats.Pulses = r.pulse
	return &SyncResult{Stats: r.stats, InSynch: r.inSynch}, nil
}
