package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"costsense/internal/graph"
)

// This file is the deterministic fault-injection subsystem. The paper's
// only adversary is edge delay varying in (0, w(e)]; WithFaults extends
// the adversary with message loss, duplication, transient link outages
// and fail-stop node crashes, all driven by the sender's per-node
// seeded RNG stream so a (seed, plan) pair replays byte-identically —
// on the serial engine and the sharded one alike. The fault checks
// live inside the allocation-free hot path: scalar state in halfEdge
// (fdown) and event (flags), dense per-node / per-edge arrays, and a
// sorted activation timeline walked by cursor. A network built without
// WithFaults pays a nil-pointer branch per send and nothing else.

// DropReason classifies why a message was lost.
type DropReason uint8

const (
	// DropLoss: the per-message drop probability fired at send time.
	DropLoss DropReason = 1 + iota
	// DropLinkDown: the edge was inside a scheduled down-window at
	// send time.
	DropLinkDown
	// DropCrash: the destination had fail-stopped before the message
	// arrived; it is lost on arrival (a dead letter).
	DropCrash
)

// String names the reason for exports.
func (r DropReason) String() string {
	switch r {
	case DropLoss:
		return "loss"
	case DropLinkDown:
		return "linkdown"
	case DropCrash:
		return "crash"
	}
	return "unknown"
}

// LinkDown schedules one transient outage of an (undirected) edge:
// every transmission attempted over Edge at a time t with
// From <= t < Until is dropped at the sender. Messages already in
// flight when the window opens are not affected.
type LinkDown struct {
	Edge  graph.EdgeID
	From  int64
	Until int64
}

// Crash schedules a fail-stop: Node processes nothing at or after time
// At. Messages arriving at a crashed node are dead letters; a crash at
// At <= 0 means the node never even initializes. Crashed nodes never
// recover (fail-stop, not fail-recover).
type Crash struct {
	Node graph.NodeID
	At   int64
}

// FaultPlan describes the fault adversary for one run. The zero value
// injects nothing. Drop and Dup are per-transmission probabilities in
// [0, 1); drawing uses the sending node's own stream (split from the
// WithSeed seed), so runs stay reproducible: same graph + seed + plan
// = same faults, independent of global event interleaving.
type FaultPlan struct {
	Drop    float64 // P(message lost at send), uniform across edges
	Dup     float64 // P(message duplicated at send); the copy is delivered after the original
	Down    []LinkDown
	Crashes []Crash
}

// Empty reports whether the plan injects no faults at all.
func (p FaultPlan) Empty() bool {
	return p.Drop == 0 && p.Dup == 0 && len(p.Down) == 0 && len(p.Crashes) == 0
}

// WithFaults installs a fault plan on the network. Faults draw from the
// sender's per-node seeded stream; a run with the same seed, delay
// model and plan replays bit-identically. Invalid plans (probabilities outside [0, 1),
// unknown nodes or edges) panic at construction — a bad plan is a
// harness bug, not a runtime condition.
func WithFaults(p FaultPlan) Option {
	return func(n *Network) { n.pendingFaults = &p }
}

// downWindow is one normalized outage interval [from, until).
type downWindow struct {
	from, until int64
}

// Activation kinds on the observer timeline.
const (
	actCrash uint8 = iota
	actLinkDown
)

// activation is one scheduled fault becoming effective, kept on a
// sorted timeline so OnCrash/OnLinkDown probes fire in deterministic
// time order as the run first reaches them.
type activation struct {
	at    int64
	until int64
	node  graph.NodeID
	edge  graph.EdgeID
	kind  uint8
}

// faultState is the installed, query-optimized form of a FaultPlan.
type faultState struct {
	drop    float64
	dup     float64
	crashAt []int64      // node -> fail-stop time (math.MaxInt64 = never)
	downs   []downWindow // all edges' windows, flat, grouped by edge
	downIdx []int32      // edge -> first window; windows of e are downs[downIdx[e]:downIdx[e+1]]
	// downCur is the window cursor, one per *directed* edge (indexed by
	// halfEdge.did): each direction's sends happen in that sender's own
	// monotone time order, so a per-direction cursor only moves forward
	// — and, because a directed edge has exactly one owning sender, the
	// sharded engine's workers never share a cursor.
	downCur []int32
	acts    []activation // observer timeline, sorted by (at, kind, id)
	actCur  int
}

func (n *Network) installFaults(p FaultPlan) {
	if p.Drop < 0 || p.Drop >= 1 || p.Dup < 0 || p.Dup >= 1 {
		panic(fmt.Sprintf("sim: WithFaults: probabilities must be in [0, 1): drop=%v dup=%v", p.Drop, p.Dup))
	}
	f := &faultState{drop: p.Drop, dup: p.Dup}

	f.crashAt = make([]int64, n.g.N())
	for v := range f.crashAt {
		f.crashAt[v] = math.MaxInt64
	}
	for _, c := range p.Crashes {
		if int(c.Node) < 0 || int(c.Node) >= n.g.N() {
			panic(fmt.Sprintf("sim: WithFaults: crash of unknown node %d", c.Node))
		}
		if c.At < f.crashAt[c.Node] {
			f.crashAt[c.Node] = c.At // earliest crash wins
		}
	}

	// Normalize down-windows: group per edge, sort by start, merge
	// overlaps, and flatten into one slice indexed by downIdx.
	m := n.g.M()
	perEdge := make([][]downWindow, m)
	for _, d := range p.Down {
		if int(d.Edge) < 0 || int(d.Edge) >= m {
			panic(fmt.Sprintf("sim: WithFaults: down-window on unknown edge %d", d.Edge))
		}
		if d.Until <= d.From {
			continue // empty window
		}
		perEdge[d.Edge] = append(perEdge[d.Edge], downWindow{from: d.From, until: d.Until})
	}
	f.downIdx = make([]int32, m+1)
	for e := 0; e < m; e++ {
		ws := perEdge[e]
		sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
		f.downIdx[e] = int32(len(f.downs))
		for _, w := range ws {
			if k := len(f.downs); k > int(f.downIdx[e]) && w.from <= f.downs[k-1].until {
				if w.until > f.downs[k-1].until {
					f.downs[k-1].until = w.until
				}
			} else {
				f.downs = append(f.downs, w)
			}
		}
	}
	f.downIdx[m] = int32(len(f.downs))
	f.downCur = make([]int32, 2*m)
	for e := 0; e < m; e++ {
		f.downCur[2*e] = f.downIdx[e]
		f.downCur[2*e+1] = f.downIdx[e]
	}

	// Mark half-edges whose edge has outage windows, so the hot path
	// skips the window scan entirely for the (typical) clean edges.
	// resetRunState clears the marks when the Network is reused.
	if len(f.downs) > 0 {
		for v := range n.nbr {
			for i := range n.nbr[v] {
				h := &n.nbr[v][i]
				if f.downIdx[h.eid] != f.downIdx[int(h.eid)+1] {
					h.fdown = 1
				}
			}
		}
		n.fdownMarked = true
	}

	// Observer timeline: crashes and window-starts in time order.
	for v, at := range f.crashAt {
		if at != math.MaxInt64 {
			f.acts = append(f.acts, activation{at: at, kind: actCrash, node: graph.NodeID(v)})
		}
	}
	for e := 0; e < m; e++ {
		for i := f.downIdx[e]; i < f.downIdx[e+1]; i++ {
			w := f.downs[i]
			f.acts = append(f.acts, activation{at: w.from, until: w.until, kind: actLinkDown, edge: graph.EdgeID(e)})
		}
	}
	sort.Slice(f.acts, func(i, j int) bool {
		a, b := f.acts[i], f.acts[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.kind == actCrash {
			return a.node < b.node
		}
		return a.edge < b.edge
	})

	n.faults = f
}

// linkDown reports whether h's edge is inside an outage window at time
// now. The per-directed-edge cursor only moves forward: the sender's
// simulated time is monotone, so the amortized cost over a run is
// O(windows of e) per direction.
//
//costsense:hotpath
func (f *faultState) linkDown(h *halfEdge, now int64) bool {
	end := f.downIdx[int(h.eid)+1]
	cur := f.downCur[h.did]
	for cur < end && f.downs[cur].until <= now {
		cur++
	}
	f.downCur[h.did] = cur
	return cur < end && f.downs[cur].from <= now
}

// dropSend decides the fate of one transmission at send time: 0 means
// deliver, otherwise the message is lost for the returned reason.
// Link-down consumes no randomness; the loss draw fires only when a
// drop probability is configured, so the random stream is a pure
// function of the plan.
//
//costsense:hotpath
func (f *faultState) dropSend(h *halfEdge, now int64, rng *rand.Rand) DropReason {
	if h.fdown != 0 && f.linkDown(h, now) {
		return DropLinkDown
	}
	if f.drop > 0 && rng.Float64() < f.drop {
		return DropLoss
	}
	return 0
}

// observeUpTo fires the OnCrash/OnLinkDown probes for every fault
// activation at or before now, in timeline order. Called once per
// event on faulty runs; the cursor makes it amortized O(1).
//
//costsense:hotpath
func (f *faultState) observeUpTo(n *Network, now int64) {
	if n.obs == nil {
		f.actCur = len(f.acts)
		return
	}
	for f.actCur < len(f.acts) && f.acts[f.actCur].at <= now {
		a := f.acts[f.actCur]
		f.actCur++
		if a.kind == actCrash {
			n.obs.OnCrash(a.node, a.at)
		} else {
			n.obs.OnLinkDown(a.edge, a.at, a.until)
		}
	}
}

// ErrEventLimit is returned by Run when the event budget set with
// WithEventLimit is exhausted. Chaos harnesses use the extra context to
// distinguish livelock (e.g. a retransmission storm: many in-flight
// messages, advancing clock) from a genuinely diverging protocol.
type ErrEventLimit struct {
	Limit    int64 // the configured budget
	LastTime int64 // simulated time of the last processed event
	InFlight int   // messages still queued when the budget ran out
}

func (e *ErrEventLimit) Error() string {
	return fmt.Sprintf("sim: event limit %d exceeded at t=%d with %d messages in flight (diverging protocol?)",
		e.Limit, e.LastTime, e.InFlight)
}

// RandomFaultPlan derives a reproducible fault plan for g from its own
// seed (independent of the run seed): drop/dup rates as given, up to
// `crashes` fail-stop nodes drawn from V \ {0} — node 0 is the
// conventional root/leader in the experiment drivers and stays up —
// with crash times in [1, horizon], and `downs` link outage windows
// starting in [0, horizon) with lengths up to horizon/2.
func RandomFaultPlan(g *graph.Graph, seed int64, drop, dup float64, crashes, downs int, horizon int64) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := FaultPlan{Drop: drop, Dup: dup}
	if horizon < 2 {
		horizon = 2
	}
	if g.N() > 1 {
		perm := rng.Perm(g.N() - 1)
		if crashes > len(perm) {
			crashes = len(perm)
		}
		for i := 0; i < crashes; i++ {
			p.Crashes = append(p.Crashes, Crash{Node: graph.NodeID(perm[i] + 1), At: 1 + rng.Int63n(horizon)})
		}
	}
	for i := 0; i < downs && g.M() > 0; i++ {
		from := rng.Int63n(horizon)
		p.Down = append(p.Down, LinkDown{
			Edge: graph.EdgeID(rng.Intn(g.M())), From: from, Until: from + 1 + rng.Int63n(horizon/2+1),
		})
	}
	return p
}
