package sim

import "costsense/internal/graph"

// SendEvent describes one transmission at the moment send schedules
// it. All fields are plain scalars so the struct is passed by value
// with no per-event allocation.
type SendEvent struct {
	Time   int64 // simulated time of the send
	Arrive int64 // scheduled delivery time, after the FIFO / congestion shift
	Delay  int64 // transit delay the delay model drew for this message
	Seq    int64 // global send sequence number (1-based); unique and dense per run
	// Cause is the happens-before parent of this transmission: the Seq
	// of the delivery whose Handle issued the send, or 0 when the send
	// was issued from Init. Sends issued from a timer callback
	// (TimerContext) inherit the cause of the event that scheduled the
	// timer — timers are free and carry no sequence number of their
	// own, so the causal chain collapses across them and the timer's
	// waiting time shows up as trigger gap (Time - parent's arrival)
	// rather than as an extra hop. Observers can reconstruct the full
	// happens-before DAG of a run from (Seq, Cause) pairs alone; see
	// internal/obs.Causal.
	Cause int64
	W     int64 // edge weight = the weighted communication cost of this message
	From  graph.NodeID
	To    graph.NodeID
	Edge  graph.EdgeID
	Class Class
	Dup   bool // fault-injected duplicate copy (not accounted in Stats)
}

// Wait returns the time the message spends queued behind the edge's
// earlier traffic before its own transit begins: zero on an idle edge,
// positive under FIFO ordering or link congestion.
func (e SendEvent) Wait() int64 { return e.Arrive - e.Time - e.Delay }

// DeliverEvent describes one delivery as the event loop hands it to
// the destination's Handle. Seq matches the SendEvent of the same
// message, so observers can correlate the two without retaining
// payloads.
type DeliverEvent struct {
	Time int64 // simulated delivery time
	Seq  int64 // sequence number assigned at send
	W    int64 // edge weight
	From graph.NodeID
	To   graph.NodeID
	Edge graph.EdgeID
	Dup  bool // this delivery is a fault-injected duplicate copy
}

// DropEvent describes one message the fault adversary destroyed. For
// send-time drops (DropLoss, DropLinkDown) Time is the send time and
// Class is the message's accounting class; for delivery-time drops
// (DropCrash) Time is the would-be arrival and Class is empty — the
// event loop does not retain class labels across the queue.
type DropEvent struct {
	Time   int64 // when the message was destroyed
	Seq    int64 // sequence number of the matching SendEvent
	W      int64 // edge weight (the cost the sender still paid)
	From   graph.NodeID
	To     graph.NodeID
	Edge   graph.EdgeID
	Class  Class
	Reason DropReason
}

// Observer receives the simulator's probe callbacks. Install one with
// WithObserver; with none installed the hot path stays allocation-free
// and branch-only (guarded by costsense-vet hotpathalloc and
// BenchmarkEngineFlood's allocs/op in BENCH_sim.json).
//
// Contract:
//
//   - Callbacks run synchronously inside the event loop, in the
//     deterministic event order; an observer must not call back into
//     the Network (no sends, no Run).
//   - OnSend/OnDeliver/OnDrop must not retain m past the call:
//     payloads live in the Network's recycled message arena. Copy what
//     you need. costsense-vet's arenaref analyzer enforces this for
//     methods named OnSend/OnDeliver/OnDrop, exactly as it does for
//     Handle.
//   - An observer that wants to stay off the allocation profile must
//     record into preallocated or amortized-growth buffers, as the
//     bundled internal/obs observers do.
type Observer interface {
	// OnSend fires after every transmission is accounted and
	// scheduled, before anything else happens at this time step.
	OnSend(e SendEvent, m Message)
	// OnDeliver fires when the event loop dequeues a delivery, just
	// before the destination's Handle runs. Timers (TimerContext) are
	// not transmissions and never reach OnDeliver.
	OnDeliver(e DeliverEvent, m Message)
	// OnDrop fires when the fault adversary destroys a message: at
	// send time for losses and link outages, at arrival time for dead
	// letters to crashed nodes. Every probe sequence number sees
	// exactly one OnSend followed by exactly one OnDeliver or OnDrop.
	OnDrop(e DropEvent, m Message)
	// OnCrash fires when simulated time first reaches a scheduled
	// fail-stop (once per crashed node, in time order).
	OnCrash(node graph.NodeID, at int64)
	// OnLinkDown fires when simulated time first reaches the start of
	// a scheduled link outage window (once per window, in time order).
	OnLinkDown(e graph.EdgeID, from, until int64)
	// OnRecord fires for every Context.Record call.
	OnRecord(node graph.NodeID, time int64, key string, value int64)
	// OnQuiesce fires once, after the event queue drains, with the
	// final Stats (FinishTime and ByClass already materialized).
	OnQuiesce(s *Stats)
}

// WithObserver installs an observer on the network. At most one
// observer is dispatched per network; compose several with a tee (see
// internal/obs).
func WithObserver(o Observer) Option {
	return func(n *Network) { n.obs = o }
}
