package sim

import "costsense/internal/graph"

// SendEvent describes one transmission at the moment send schedules
// it. All fields are plain scalars so the struct is passed by value
// with no per-event allocation.
type SendEvent struct {
	Time   int64 // simulated time of the send
	Arrive int64 // scheduled delivery time, after the FIFO / congestion shift
	Delay  int64 // transit delay the delay model drew for this message
	Seq    int64 // global send sequence number (1-based); unique and dense per run
	W      int64 // edge weight = the weighted communication cost of this message
	From   graph.NodeID
	To     graph.NodeID
	Edge   graph.EdgeID
	Class  Class
}

// Wait returns the time the message spends queued behind the edge's
// earlier traffic before its own transit begins: zero on an idle edge,
// positive under FIFO ordering or link congestion.
func (e SendEvent) Wait() int64 { return e.Arrive - e.Time - e.Delay }

// DeliverEvent describes one delivery as the event loop hands it to
// the destination's Handle. Seq matches the SendEvent of the same
// message, so observers can correlate the two without retaining
// payloads.
type DeliverEvent struct {
	Time int64 // simulated delivery time
	Seq  int64 // sequence number assigned at send
	W    int64 // edge weight
	From graph.NodeID
	To   graph.NodeID
	Edge graph.EdgeID
}

// Observer receives the simulator's probe callbacks. Install one with
// WithObserver; with none installed the hot path stays allocation-free
// and branch-only (guarded by costsense-vet hotpathalloc and
// BenchmarkEngineFlood's allocs/op in BENCH_sim.json).
//
// Contract:
//
//   - Callbacks run synchronously inside the event loop, in the
//     deterministic event order; an observer must not call back into
//     the Network (no sends, no Run).
//   - OnSend/OnDeliver must not retain m past the call: payloads live
//     in the Network's recycled message arena. Copy what you need.
//     costsense-vet's arenaref analyzer enforces this for methods
//     named OnSend/OnDeliver, exactly as it does for Handle.
//   - An observer that wants to stay off the allocation profile must
//     record into preallocated or amortized-growth buffers, as the
//     bundled internal/obs observers do.
type Observer interface {
	// OnSend fires after every transmission is accounted and
	// scheduled, before anything else happens at this time step.
	OnSend(e SendEvent, m Message)
	// OnDeliver fires when the event loop dequeues a delivery, just
	// before the destination's Handle runs.
	OnDeliver(e DeliverEvent, m Message)
	// OnRecord fires for every Context.Record call.
	OnRecord(node graph.NodeID, time int64, key string, value int64)
	// OnQuiesce fires once, after the event queue drains, with the
	// final Stats (FinishTime and ByClass already materialized).
	OnQuiesce(s *Stats)
}

// WithObserver installs an observer on the network. At most one
// observer is dispatched per network; compose several with a tee (see
// internal/obs).
func WithObserver(o Observer) Option {
	return func(n *Network) { n.obs = o }
}
