package sim

import (
	"errors"
	"testing"

	"costsense/internal/graph"
)

// faultFlooder floods one token from node 0; every receiver forwards
// once. Deterministic given the network seed.
type faultFlooder struct{ got bool }

func (f *faultFlooder) Init(ctx Context) {
	if ctx.ID() == 0 {
		f.got = true
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "tok")
		}
	}
}

func (f *faultFlooder) Handle(ctx Context, from graph.NodeID, m Message) {
	if f.got {
		return
	}
	f.got = true
	for _, h := range ctx.Neighbors() {
		if h.To != from {
			ctx.Send(h.To, m)
		}
	}
}

func flooders(n int) []Process {
	procs := make([]Process, n)
	for v := range procs {
		procs[v] = &faultFlooder{}
	}
	return procs
}

// TestEmptyFaultPlanIsIdentity: installing an empty plan must not
// change a single observable of the run — same Stats, same RNG stream.
func TestEmptyFaultPlanIsIdentity(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(16, 3), 3)
	plain, err := Run(g, flooders(g.N()), WithDelay(DelayUniform{}), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(g, flooders(g.N()), WithDelay(DelayUniform{}), WithSeed(9), WithFaults(FaultPlan{}))
	if err != nil {
		t.Fatal(err)
	}
	if flatten(plain) != flatten(faulty) {
		t.Errorf("empty fault plan perturbed the run:\n plain  %+v\n faulty %+v", flatten(plain), flatten(faulty))
	}
	if faulty.Dropped != 0 || faulty.Duplicated != 0 || faulty.DeadLetters != 0 {
		t.Errorf("empty plan injected faults: %+v", faulty)
	}
}

// TestDropAccounting: dropped messages are paid for (Messages/Comm)
// but never delivered, and the observer sees one OnSend plus one
// OnDrop for each.
func TestDropAccounting(t *testing.T) {
	g := graph.RandomConnected(40, 100, graph.UniformWeights(8, 5), 5)
	o := &countingObserver{seqDense: true, deliverOK: true}
	st, err := Run(g, flooders(g.N()), WithSeed(5), WithFaults(FaultPlan{Drop: 0.4}), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatal("40% drop over 100+ sends lost nothing")
	}
	if o.sends != st.Messages+st.Duplicated {
		t.Errorf("OnSend fired %d times, want Messages+Duplicated = %d", o.sends, st.Messages+st.Duplicated)
	}
	if o.delivers+o.drops != o.sends {
		t.Errorf("sends=%d but delivers=%d + drops=%d: a message vanished without a probe", o.sends, o.delivers, o.drops)
	}
	if o.drops != st.Dropped+st.DeadLetters {
		t.Errorf("OnDrop fired %d times, Stats says %d", o.drops, st.Dropped+st.DeadLetters)
	}
	if !o.seqDense {
		t.Error("probe sequence numbers are not dense under drops")
	}
	if !o.deliverOK {
		t.Error("a deliver/drop carried a sequence number never sent")
	}
}

// TestDuplicationDelivers: duplicates arrive as extra deliveries but
// are not accounted — the protocol did not pay for them.
func TestDuplicationDelivers(t *testing.T) {
	g := graph.RandomConnected(30, 80, graph.UniformWeights(8, 7), 7)
	plain, err := Run(g, flooders(g.N()), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(g, flooders(g.N()), WithSeed(7), WithFaults(FaultPlan{Dup: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated == 0 {
		t.Fatal("50% duplication injected no copies")
	}
	if st.Messages != plain.Messages || st.Comm != plain.Comm {
		t.Errorf("duplicates were accounted: faulty %d/%d vs plain %d/%d msgs/comm",
			st.Messages, st.Comm, plain.Messages, plain.Comm)
	}
	if st.Events != plain.Events+st.Duplicated {
		t.Errorf("Events = %d, want plain %d + duplicated %d", st.Events, plain.Events, st.Duplicated)
	}
}

// downProbe sends over its single edge at t=0 (inside the outage) and
// again via timer at t=10 (after it).
type downProbe struct{ delivered int }

func (p *downProbe) Init(ctx Context) {
	if ctx.ID() != 0 {
		return
	}
	ctx.Send(1, "early")
	ctx.(TimerContext).ScheduleTimer(10, "wake")
}

func (p *downProbe) Handle(ctx Context, from graph.NodeID, m Message) {
	if m == "wake" {
		ctx.Send(1, "late")
		return
	}
	p.delivered++
}

// TestLinkDownWindow: sends inside [From, Until) are dropped at the
// sender; sends after the window pass.
func TestLinkDownWindow(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights())
	procs := []Process{&downProbe{}, &downProbe{}}
	o := &countingObserver{seqDense: true, deliverOK: true}
	st, err := Run(g, procs,
		WithFaults(FaultPlan{Down: []LinkDown{{Edge: 0, From: 0, Until: 5}}}),
		WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the t=0 send)", st.Dropped)
	}
	if got := procs[1].(*downProbe).delivered; got != 1 {
		t.Errorf("node 1 got %d deliveries, want 1 (the t=10 send)", got)
	}
	if o.linkDowns != 1 {
		t.Errorf("OnLinkDown fired %d times, want 1", o.linkDowns)
	}
	if st.Timers != 1 {
		t.Errorf("Timers = %d, want 1", st.Timers)
	}
}

// TestCrashDeadLetters: a message in flight toward a node that
// fail-stops before it arrives becomes a dead letter; OnCrash fires
// exactly once.
func TestCrashDeadLetters(t *testing.T) {
	g := graph.Path(2, graph.UniformWeights(5, 1)) // arrival at t = w(e) >= 1
	o := &countingObserver{seqDense: true, deliverOK: true}
	st, err := Run(g, flooders(2),
		WithFaults(FaultPlan{Crashes: []Crash{{Node: 1, At: 1}}}),
		WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadLetters != 1 {
		t.Errorf("DeadLetters = %d, want 1 (crash at t=1, arrival at t=%d)", st.DeadLetters, g.Edge(0).W)
	}
	if o.crashes != 1 {
		t.Errorf("OnCrash fired %d times, want 1", o.crashes)
	}
	if o.drops != 1 {
		t.Errorf("OnDrop fired %d times, want 1", o.drops)
	}
}

// TestCrashAtZeroNeverStarts: a node crashed at t <= 0 does not even
// run Init.
func TestCrashAtZeroNeverStarts(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights())
	st, err := Run(g, flooders(3), WithFaults(FaultPlan{Crashes: []Crash{{Node: 0, At: 0}}}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 0 {
		t.Errorf("crashed-at-0 root still sent %d messages", st.Messages)
	}
}

// pingPonger bounces a token forever — the divergence the event-limit
// watchdog exists for.
type pingPonger struct{}

func (pingPonger) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, "ping")
	}
}

func (pingPonger) Handle(ctx Context, from graph.NodeID, m Message) {
	ctx.Send(from, m)
}

// TestErrEventLimitTyped: the watchdog returns the typed error with
// livelock context, detectable through errors.As.
func TestErrEventLimitTyped(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights())
	_, err := Run(g, []Process{pingPonger{}, pingPonger{}}, WithEventLimit(100))
	if err == nil {
		t.Fatal("diverging ping-pong terminated")
	}
	var el *ErrEventLimit
	if !errors.As(err, &el) {
		t.Fatalf("error is %T, want *ErrEventLimit", err)
	}
	if el.Limit != 100 {
		t.Errorf("Limit = %d, want 100", el.Limit)
	}
	if el.LastTime <= 0 {
		t.Errorf("LastTime = %d, want > 0", el.LastTime)
	}
	if el.InFlight < 1 {
		t.Errorf("InFlight = %d, want >= 1 (the bouncing token)", el.InFlight)
	}
}

// timerEcho schedules a chain of free timers; they must burn event
// budget but no communication.
type timerEcho struct{ fired int }

func (e *timerEcho) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.(TimerContext).ScheduleTimer(3, int(0))
	}
}

func (e *timerEcho) Handle(ctx Context, from graph.NodeID, m Message) {
	if from != ctx.ID() {
		return // not a timer
	}
	e.fired++
	if k := m.(int); k < 4 {
		ctx.(TimerContext).ScheduleTimer(3, k+1)
	}
}

// TestTimersAreFree: timers consume Events only — no Messages, no
// Comm, no observer send/deliver probes.
func TestTimersAreFree(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights())
	procs := []Process{&timerEcho{}, &timerEcho{}}
	o := &countingObserver{seqDense: true, deliverOK: true}
	st, err := Run(g, procs, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if st.Timers != 5 || procs[0].(*timerEcho).fired != 5 {
		t.Errorf("Timers = %d (fired %d), want 5", st.Timers, procs[0].(*timerEcho).fired)
	}
	if st.Messages != 0 || st.Comm != 0 {
		t.Errorf("timers were accounted as communication: %+v", st)
	}
	if st.Events != 5 {
		t.Errorf("Events = %d, want 5 (one per firing)", st.Events)
	}
	if o.sends != 0 || o.delivers != 0 {
		t.Errorf("timers reached send/deliver probes: sends=%d delivers=%d", o.sends, o.delivers)
	}
	if st.FinishTime != 15 {
		t.Errorf("FinishTime = %d, want 15 (five timers x 3)", st.FinishTime)
	}
}

// chaosPlan is the fault plan used by the golden faulty determinism
// tests: all fault kinds at once.
func chaosPlan(g *graph.Graph) FaultPlan {
	return FaultPlan{
		Drop: 0.15,
		Dup:  0.10,
		Down: []LinkDown{
			{Edge: 3, From: 2, Until: 12},
			{Edge: 7, From: 5, Until: 9},
			{Edge: 3, From: 10, Until: 20}, // overlaps the first window
		},
		Crashes: []Crash{{Node: graph.NodeID(g.N() - 1), At: 25}},
	}
}

// faultyGolden is the flattened comparable form of a faulty run.
type faultyGolden struct {
	goldenStats
	Dropped     int64
	Duplicated  int64
	DeadLetters int64
	Timers      int64
	Sends       int64
	Delivers    int64
	Drops       int64
	Crashes     int64
	LinkDowns   int64
}

func runFaultyCase(t *testing.T, c detCase) faultyGolden {
	t.Helper()
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	o := &countingObserver{seqDense: true, deliverOK: true}
	opts := []Option{WithDelay(c.delay), WithSeed(c.seed), WithFaults(chaosPlan(g)), WithObserver(o)}
	if c.congested {
		opts = append(opts, WithCongestion())
	}
	st, err := Run(g, flooders(g.N()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !o.seqDense {
		t.Error("probe sequences not dense under faults")
	}
	if o.delivers+o.drops != o.sends {
		t.Errorf("probe imbalance: sends=%d delivers=%d drops=%d", o.sends, o.delivers, o.drops)
	}
	return faultyGolden{
		goldenStats: flatten(st),
		Dropped:     st.Dropped, Duplicated: st.Duplicated,
		DeadLetters: st.DeadLetters, Timers: st.Timers,
		Sends: o.sends, Delivers: o.delivers, Drops: o.drops,
		Crashes: o.crashes, LinkDowns: o.linkDowns,
	}
}

// TestFaultyStatsDeterministic mirrors determinism_test.go for faulty
// runs: two identical seeded runs with the same plan must agree on
// every Stats field and every probe count, across all delay models and
// both link disciplines.
func TestFaultyStatsDeterministic(t *testing.T) {
	for _, c := range detCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a := runFaultyCase(t, c)
			b := runFaultyCase(t, c)
			if a != b {
				t.Errorf("faulty replay diverged:\n run1 %+v\n run2 %+v", a, b)
			}
			if a.Dropped == 0 && a.Duplicated == 0 {
				t.Error("chaos plan injected nothing — the case is vacuous")
			}
			if a.LinkDowns != 2 {
				t.Errorf("observed %d link-down windows, want 2 (third merges into the first)", a.LinkDowns)
			}
			if a.Crashes != 1 {
				t.Errorf("observed %d crashes, want 1", a.Crashes)
			}
		})
	}
}

// TestRandomFaultPlanReproducible: same (graph, seed, knobs) — same
// plan; node 0 never crashes.
func TestRandomFaultPlanReproducible(t *testing.T) {
	g := graph.RandomConnected(20, 40, graph.UniformWeights(10, 1), 1)
	a := RandomFaultPlan(g, 99, 0.2, 0.1, 3, 4, 100)
	b := RandomFaultPlan(g, 99, 0.2, 0.1, 3, 4, 100)
	if len(a.Crashes) != 3 || len(a.Down) != 4 {
		t.Fatalf("plan shape: %d crashes, %d downs", len(a.Crashes), len(a.Down))
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatal("crash schedule not reproducible")
		}
		if a.Crashes[i].Node == 0 {
			t.Error("RandomFaultPlan crashed node 0 (the conventional root)")
		}
	}
	for i := range a.Down {
		if a.Down[i] != b.Down[i] {
			t.Fatal("down windows not reproducible")
		}
	}
}

// TestWithProcessWrapper: the wrapper sees every process and its
// replacements run.
func TestWithProcessWrapper(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights())
	wrapped := 0
	_, err := Run(g, flooders(3), WithProcessWrapper(func(ps []Process) []Process {
		wrapped = len(ps)
		return ps
	}))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 3 {
		t.Errorf("wrapper saw %d processes, want 3", wrapped)
	}
}
