package sim

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"costsense/internal/graph"
)

// ackFlooder floods one token from node 0 and acknowledges every
// receipt, so runs exercise two accounting classes. Deterministic for a
// fixed network seed.
type ackFlooder struct{ got bool }

func (f *ackFlooder) Init(ctx Context) {
	if ctx.ID() == 0 {
		f.got = true
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "tok")
		}
	}
}

func (f *ackFlooder) Handle(ctx Context, from graph.NodeID, m Message) {
	if m == "tok" {
		ctx.SendClass(from, "ack", ClassAck)
	}
	if f.got || m != "tok" {
		return
	}
	f.got = true
	for _, h := range ctx.Neighbors() {
		if h.To != from {
			ctx.Send(h.To, "tok")
		}
	}
}

// goldenStats is the flattened, comparable form of a run's Stats.
type goldenStats struct {
	Messages   int64
	Comm       int64
	FinishTime int64
	Events     int64
	ProtoMsgs  int64
	ProtoComm  int64
	AckMsgs    int64
	AckComm    int64
}

func flatten(s *Stats) goldenStats {
	return goldenStats{
		Messages:   s.Messages,
		Comm:       s.Comm,
		FinishTime: s.FinishTime,
		Events:     s.Events,
		ProtoMsgs:  s.MessagesOf(ClassProto),
		ProtoComm:  s.CommOf(ClassProto),
		AckMsgs:    s.MessagesOf(ClassAck),
		AckComm:    s.CommOf(ClassAck),
	}
}

// detCase is one (delay model, congestion, seed) configuration.
type detCase struct {
	name      string
	delay     DelayModel
	congested bool
	seed      int64
	want      goldenStats
}

// The golden values below pin the engine's observable behavior: any
// queue or accounting rewrite must reproduce them bit-for-bit. They
// were re-pinned exactly once when the engine moved to per-node push
// sequences and per-node RNG streams (the event tie-break became
// (at, from, seq) and delay/fault draws moved to the sender's own
// stream) — the refactor that makes the serial order independent of
// global interleaving, so the sharded engine can reproduce it. From
// that point on, serial and sharded runs must both match these values
// forever (TestShardedMatchesSerial cross-checks every case).
func detCases() []detCase {
	return []detCase{
		{name: "max/plain/seed1", delay: DelayMax{}, congested: false, seed: 1,
			want: goldenStats{Messages: 402, Comm: 7290, FinishTime: 103, Events: 402, ProtoMsgs: 201, ProtoComm: 3645, AckMsgs: 201, AckComm: 3645}},
		{name: "max/congested/seed1", delay: DelayMax{}, congested: true, seed: 1,
			want: goldenStats{Messages: 402, Comm: 7290, FinishTime: 103, Events: 402, ProtoMsgs: 201, ProtoComm: 3645, AckMsgs: 201, AckComm: 3645}},
		{name: "unit/plain/seed1", delay: DelayUnit{}, congested: false, seed: 1,
			want: goldenStats{Messages: 402, Comm: 6806, FinishTime: 6, Events: 402, ProtoMsgs: 201, ProtoComm: 3403, AckMsgs: 201, AckComm: 3403}},
		{name: "unit/congested/seed1", delay: DelayUnit{}, congested: true, seed: 1,
			want: goldenStats{Messages: 402, Comm: 6806, FinishTime: 6, Events: 402, ProtoMsgs: 201, ProtoComm: 3403, AckMsgs: 201, AckComm: 3403}},
		{name: "uniform/plain/seed1", delay: DelayUniform{}, congested: false, seed: 1,
			want: goldenStats{Messages: 402, Comm: 7046, FinishTime: 67, Events: 402, ProtoMsgs: 201, ProtoComm: 3523, AckMsgs: 201, AckComm: 3523}},
		{name: "uniform/congested/seed1", delay: DelayUniform{}, congested: true, seed: 1,
			want: goldenStats{Messages: 402, Comm: 7046, FinishTime: 67, Events: 402, ProtoMsgs: 201, ProtoComm: 3523, AckMsgs: 201, AckComm: 3523}},
		{name: "uniform/plain/seed42", delay: DelayUniform{}, congested: false, seed: 42,
			want: goldenStats{Messages: 402, Comm: 7096, FinishTime: 74, Events: 402, ProtoMsgs: 201, ProtoComm: 3548, AckMsgs: 201, AckComm: 3548}},
		{name: "uniform/congested/seed42", delay: DelayUniform{}, congested: true, seed: 42,
			want: goldenStats{Messages: 402, Comm: 7096, FinishTime: 74, Events: 402, ProtoMsgs: 201, ProtoComm: 3548, AckMsgs: 201, AckComm: 3548}},
	}
}

func runDetCase(t *testing.T, c detCase) *Stats {
	t.Helper()
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	procs := make([]Process, g.N())
	for v := range procs {
		procs[v] = &ackFlooder{}
	}
	opts := []Option{WithDelay(c.delay), WithSeed(c.seed)}
	if c.congested {
		opts = append(opts, WithCongestion())
	}
	st, err := Run(g, procs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsGolden pins the exact Stats of a fixed (seed, delay model,
// congestion) workload across all three delay models. The goldens were
// recorded on the pre-rewrite event queue; the test guarantees the
// rewritten hot path is observably identical.
//
// Regenerate with SIM_GOLDEN=1 go test -run TestStatsGolden -v ./internal/sim
func TestStatsGolden(t *testing.T) {
	regen := os.Getenv("SIM_GOLDEN") != ""
	for _, c := range detCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := flatten(runDetCase(t, c))
			if regen {
				t.Logf("golden %s: %#v", c.name, got)
				return
			}
			if got != c.want {
				t.Errorf("stats diverged from golden:\n got  %+v\n want %+v", got, c.want)
			}
		})
	}
}

// TestStatsGoldenByClassView checks the ByClass map view agrees with the
// flattened accessors and contains exactly the classes that were sent.
func TestStatsGoldenByClassView(t *testing.T) {
	st := runDetCase(t, detCases()[0])
	var classes []string
	for c, cs := range st.ByClass {
		classes = append(classes, string(c))
		if cs.Messages == 0 && cs.Comm == 0 {
			t.Errorf("class %q present in ByClass with zero counts", c)
		}
	}
	sort.Strings(classes)
	if got := fmt.Sprint(classes); got != "[ack proto]" {
		t.Errorf("ByClass classes = %v, want [ack proto]", classes)
	}
	if st.ByClass[ClassProto].Comm != st.CommOf(ClassProto) {
		t.Errorf("ByClass and CommOf disagree")
	}
}
