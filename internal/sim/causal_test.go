package sim

import (
	"testing"

	"costsense/internal/graph"
)

// causalRecorder keeps every SendEvent plus delivery marks, for
// checking the causal-parent contract the engine threads through the
// probe path.
type causalRecorder struct {
	sends     []SendEvent
	delivered []bool
}

func (o *causalRecorder) OnSend(e SendEvent, _ Message) {
	o.sends = append(o.sends, e)
	o.delivered = append(o.delivered, false)
}
func (o *causalRecorder) OnDeliver(e DeliverEvent, _ Message) { o.delivered[e.Seq-1] = true }
func (o *causalRecorder) OnDrop(DropEvent, Message)           {}
func (o *causalRecorder) OnCrash(graph.NodeID, int64)         {}
func (o *causalRecorder) OnLinkDown(graph.EdgeID, int64, int64) {
}
func (o *causalRecorder) OnRecord(graph.NodeID, int64, string, int64) {}
func (o *causalRecorder) OnQuiesce(*Stats)                            {}

// TestCausalParentContract pins SendEvent.Cause's contract on a
// timer-free workload, clean and faulty: the cause is a strictly
// earlier transmission (0 = rooted at Init), its delivery was handled
// at the issuing node, and — with no timers to collapse across — the
// child's send time is exactly the parent's arrival.
func TestCausalParentContract(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			procs := make([]Process, g.N())
			for v := range procs {
				procs[v] = &ackFlooder{}
			}
			o := &causalRecorder{}
			opts := []Option{WithDelay(DelayUniform{}), WithSeed(11), WithObserver(o)}
			if faulty {
				opts = append(opts, WithFaults(FaultPlan{Drop: 0.1, Dup: 0.1}))
			}
			if _, err := Run(g, procs, opts...); err != nil {
				t.Fatal(err)
			}
			if len(o.sends) == 0 {
				t.Fatal("no sends recorded; test is vacuous")
			}
			roots, children := 0, 0
			for i, e := range o.sends {
				if e.Seq != int64(i+1) {
					t.Fatalf("send %d carries Seq %d", i, e.Seq)
				}
				if e.Cause < 0 || e.Cause >= e.Seq {
					t.Fatalf("send %d: Cause %d outside [0, Seq %d)", i, e.Cause, e.Seq)
				}
				if e.Cause == 0 {
					roots++
					if e.Time != 0 {
						t.Errorf("send %d: Cause 0 at time %d, but a timer-free protocol roots only at Init (t=0)", i, e.Time)
					}
					continue
				}
				children++
				p := o.sends[e.Cause-1]
				if !o.delivered[e.Cause-1] {
					t.Errorf("send %d: cause %d was never delivered", i, e.Cause)
				}
				if p.To != e.From {
					t.Errorf("send %d from node %d: cause %d was delivered to node %d", i, e.From, e.Cause, p.To)
				}
				if p.Arrive != e.Time {
					t.Errorf("send %d at %d: cause %d arrived at %d (timer-free sends happen inside the delivering Handle)", i, e.Time, e.Cause, p.Arrive)
				}
			}
			if roots == 0 || children == 0 {
				t.Fatalf("degenerate causal structure: %d roots, %d children", roots, children)
			}
		})
	}
}

// timerRelay exercises the timer-collapse rule: node 0 sends "go" at
// Init, the receiver schedules a timer on it, and the timer firing
// sends "late" back — whose causal parent must be the original "go"
// transmission, the chain collapsing across the free timer hop. Node 1
// also schedules a timer directly from Init, whose send must stay
// rooted (Cause 0) despite firing at t > 0.
type timerRelay struct{}

func (timerRelay) Init(ctx Context) {
	switch ctx.ID() {
	case 0:
		ctx.Send(ctx.Neighbors()[0].To, "go")
	case 1:
		ctx.(TimerContext).ScheduleTimer(3, "boot")
	}
}

func (timerRelay) Handle(ctx Context, from graph.NodeID, m Message) {
	switch m {
	case "boot":
		ctx.Send(ctx.Neighbors()[0].To, "bootmsg")
	case "go":
		ctx.(TimerContext).ScheduleTimer(5, "wake")
	case "wake":
		ctx.Send(ctx.Neighbors()[0].To, "late")
	}
}

func TestCausalTimerCollapse(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights())
	procs := []Process{timerRelay{}, timerRelay{}}
	o := &causalRecorder{}
	if _, err := Run(g, procs, WithObserver(o)); err != nil {
		t.Fatal(err)
	}
	if len(o.sends) != 3 {
		t.Fatalf("recorded %d sends, want 3 (go, bootmsg, late)", len(o.sends))
	}
	goEv, boot, late := o.sends[0], o.sends[1], o.sends[2]
	if goEv.Cause != 0 || goEv.Time != 0 {
		t.Errorf("go: Cause %d at t=%d, want Init root at t=0", goEv.Cause, goEv.Time)
	}
	// A timer scheduled from Init keeps the Init root: the fired send
	// carries Cause 0 even though it happens at t=3.
	if boot.Cause != 0 {
		t.Errorf("bootmsg: Cause %d, want 0 (timer scheduled from Init)", boot.Cause)
	}
	if boot.Time != 3 {
		t.Errorf("bootmsg sent at t=%d, want 3", boot.Time)
	}
	// A timer scheduled from a Handle collapses onto the delivery that
	// scheduled it: "late" fires 5 after "go" arrived and is caused by
	// "go" itself, not by any timer pseudo-event.
	if late.Cause != goEv.Seq {
		t.Errorf("late: Cause %d, want %d (the go transmission)", late.Cause, goEv.Seq)
	}
	if late.Time != goEv.Arrive+5 {
		t.Errorf("late sent at t=%d, want go's arrival %d + 5", late.Time, goEv.Arrive)
	}
}
