package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"costsense/internal/graph"
	"costsense/internal/slt"
)

func TestNextHopPath(t *testing.T) {
	g := graph.Path(5, graph.ConstWeights(2))
	tree := graph.PrimTree(g, 0)
	r, err := NewTreeRouter(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	// On a path rooted at 0, routing 1→4 goes forward, 4→1 backward.
	path, err := r.Route(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("Route(1,4) = %v, want %v", path, want)
	}
	for i := range path {
		if path[i] != want[i] {
			t.Fatalf("Route(1,4) = %v, want %v", path, want)
		}
	}
	c, err := r.Cost(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 6 {
		t.Fatalf("Cost(4,1) = %d, want 6", c)
	}
}

func TestRouteThroughLCA(t *testing.T) {
	// Star rooted at the center: every leaf-to-leaf route is exactly
	// leaf → center → leaf.
	g := graph.Star(5, graph.ConstWeights(3))
	tree := graph.PrimTree(g, 0)
	r, err := NewTreeRouter(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.Route(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 0 {
		t.Fatalf("Route(1,4) = %v, want through center", path)
	}
}

func TestRouterRejectsPartialTree(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights())
	partial := graph.NewTree(g, 0, []graph.NodeID{-1, 0, 1, -1})
	if _, err := NewTreeRouter(g, partial); err == nil {
		t.Fatal("partial tree must be rejected")
	}
}

func TestRoutesAreValidProperty(t *testing.T) {
	// All-pairs: routes follow tree edges, terminate, and their cost
	// equals the tree distance (never below the shortest distance).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(n, n-1+rng.Intn(2*n), graph.UniformWeights(16, seed), seed)
		tree := graph.PrimTree(g, graph.NodeID(rng.Intn(n)))
		r, err := NewTreeRouter(g, tree)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			c, err := r.Cost(u, v)
			if err != nil {
				t.Log(err)
				return false
			}
			if c != tree.TreeDist(u, v) {
				t.Logf("seed %d: Cost(%d,%d)=%d, tree dist %d", seed, u, v, c, tree.TreeDist(u, v))
				return false
			}
			if c < graph.Dist(g, u, v) {
				return false // beat the shortest path: impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStretchTradeoffOnSeparation(t *testing.T) {
	// The routing form of the §2 separation, measured on root routes
	// (the SLT-bounded quantity): SPT tables route optimally from the
	// hub but weigh Θ(√n·𝓥); MST tables are light but a hub route can
	// cost Θ(√n·𝓓); the SLT is within constants of both optima.
	g := graph.ShallowLightGap(48)
	hub := graph.NodeID(g.N() - 1)
	vv := graph.MSTWeight(g)
	dd := graph.Diameter(g)

	build := func(tree *graph.Tree) *TreeRouter {
		t.Helper()
		r, err := NewTreeRouter(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sltTree, _, err := slt.Build(g, hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	sptR := build(graph.Dijkstra(g, hub).Tree(g))
	mstR := build(graph.PrimTree(g, hub))
	sltR := build(sltTree)

	// Table weight: SLT within 2𝓥, SPT far above, MST exactly 𝓥.
	if sltR.TableWeight() > 2*vv {
		t.Errorf("SLT table weight %d > 2𝓥 = %d", sltR.TableWeight(), 2*vv)
	}
	if sptR.TableWeight() < 3*vv {
		t.Errorf("SPT table weight %d should be far above 𝓥 = %d on the separation instance",
			sptR.TableWeight(), vv)
	}
	if mstR.TableWeight() != vv {
		t.Errorf("MST table weight %d != 𝓥 = %d", mstR.TableWeight(), vv)
	}
	// Hub routes: SLT within the depth bound (2q+1)𝓓 = 5𝓓; MST far
	// above; SPT optimal (stretch exactly 1 from the root).
	sltMax, err := sltR.MaxCostFrom(hub)
	if err != nil {
		t.Fatal(err)
	}
	mstMax, err := mstR.MaxCostFrom(hub)
	if err != nil {
		t.Fatal(err)
	}
	if sltMax > 5*dd {
		t.Errorf("SLT hub route cost %d > (2q+1)𝓓 = %d", sltMax, 5*dd)
	}
	if mstMax < 2*sltMax {
		t.Errorf("MST hub route cost %d should be far above SLT's %d", mstMax, sltMax)
	}
	sptSt, err := sptR.StretchFrom(hub)
	if err != nil {
		t.Fatal(err)
	}
	if sptSt.Max != 1 {
		t.Errorf("SPT root stretch = %.2f, want exactly 1", sptSt.Max)
	}
	// All-pairs stretch stays finite and >= 1 for all three.
	for name, r := range map[string]*TreeRouter{"slt": sltR, "mst": mstR, "spt": sptR} {
		st, err := r.Stretch()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Mean < 1 || st.Pairs != g.N()*(g.N()-1) {
			t.Fatalf("%s: implausible stretch stats %+v", name, st)
		}
	}
}
