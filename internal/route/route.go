// Package route builds routing state from the paper's tree structures
// — the application domain §1.1 motivates (routing and traffic
// analysis are why networks carry edge weights in the first place, and
// [ABLP89]-style compact routing is a named consumer of the paper's
// machinery).
//
// A TreeRouter holds next-hop tables along one rooted spanning tree:
// a route from u to v climbs to their lowest common ancestor and
// descends. Tree choice sets the trade:
//
//   - over an SPT rooted at a hub, routes from the hub are optimal
//     but the table tree weighs up to Θ(n·𝓥);
//   - over an MST the table is lightest (𝓥) but a route from the hub
//     can cost Θ(n·𝓓);
//   - over a shallow-light tree both are within constants of optimal:
//     table weight O(𝓥) and every root route at most depth(T) = O(q𝓓).
//
// Next hops are resolved with Euler-tour interval labels (an O(1)
// ancestor test), the standard compact-routing labeling.
package route

import (
	"fmt"

	"costsense/internal/graph"
)

// TreeRouter answers next-hop queries along one rooted spanning tree.
type TreeRouter struct {
	g    *graph.Graph
	tree *graph.Tree
	// Euler intervals: v is an ancestor of u iff in[v] <= in[u] < out[v].
	in, out []int
	// children[v] lists v's tree children in interval order for descent.
	children [][]graph.NodeID
}

// NewTreeRouter builds the tables for a spanning tree of g.
func NewTreeRouter(g *graph.Graph, tree *graph.Tree) (*TreeRouter, error) {
	if !tree.Spanning() {
		return nil, fmt.Errorf("route: tree does not span")
	}
	r := &TreeRouter{
		g:        g,
		tree:     tree,
		in:       make([]int, g.N()),
		out:      make([]int, g.N()),
		children: make([][]graph.NodeID, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		r.children[v] = tree.Children(graph.NodeID(v))
	}
	clock := 0
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		r.in[v] = clock
		clock++
		for _, c := range r.children[v] {
			dfs(c)
		}
		r.out[v] = clock
	}
	dfs(tree.Root)
	return r, nil
}

// ancestor reports whether a is an ancestor of u (inclusive).
func (r *TreeRouter) ancestor(a, u graph.NodeID) bool {
	return r.in[a] <= r.in[u] && r.in[u] < r.out[a]
}

// NextHop returns the tree neighbor of u on the route toward v.
func (r *TreeRouter) NextHop(u, v graph.NodeID) (graph.NodeID, error) {
	if u == v {
		return u, fmt.Errorf("route: next hop of %d to itself", u)
	}
	if r.ancestor(u, v) {
		// Descend into the child whose interval contains v.
		for _, c := range r.children[u] {
			if r.ancestor(c, v) {
				return c, nil
			}
		}
		return -1, fmt.Errorf("route: broken interval labels at %d", u)
	}
	return r.tree.Parent[u], nil
}

// Route returns the full u→v path along the tree, inclusive.
func (r *TreeRouter) Route(u, v graph.NodeID) ([]graph.NodeID, error) {
	path := []graph.NodeID{u}
	for cur := u; cur != v; {
		next, err := r.NextHop(cur, v)
		if err != nil {
			return nil, err
		}
		cur = next
		path = append(path, cur)
		if len(path) > r.g.N() {
			return nil, fmt.Errorf("route: loop detected %d→%d", u, v)
		}
	}
	return path, nil
}

// Cost returns the weighted length of the u→v route.
func (r *TreeRouter) Cost(u, v graph.NodeID) (int64, error) {
	path, err := r.Route(u, v)
	if err != nil {
		return 0, err
	}
	var s int64
	for i := 1; i < len(path); i++ {
		w := r.g.Weight(path[i-1], path[i])
		if w < 0 {
			return 0, fmt.Errorf("route: hop (%d,%d) not a graph edge", path[i-1], path[i])
		}
		s += w
	}
	return s, nil
}

// TableWeight returns the weight of the routing tree — the cost figure
// of the table (one control message per tree edge keeps it alive).
func (r *TreeRouter) TableWeight() int64 { return r.tree.Weight() }

// StretchStats measures route quality against true shortest paths.
type StretchStats struct {
	// Mean and Max stretch (route cost / shortest distance) over all
	// ordered pairs.
	Mean, Max float64
	// Pairs is the number of pairs measured.
	Pairs int
}

// MaxCostFrom returns the most expensive route from src to any node —
// for the tree root this is the tree depth, the SLT-bounded quantity.
func (r *TreeRouter) MaxCostFrom(src graph.NodeID) (int64, error) {
	var m int64
	for v := 0; v < r.g.N(); v++ {
		if graph.NodeID(v) == src {
			continue
		}
		c, err := r.Cost(src, graph.NodeID(v))
		if err != nil {
			return 0, err
		}
		if c > m {
			m = c
		}
	}
	return m, nil
}

// StretchFrom computes stretch statistics for routes out of src.
func (r *TreeRouter) StretchFrom(src graph.NodeID) (*StretchStats, error) {
	st := &StretchStats{Max: 1}
	sp := graph.Dijkstra(r.g, src)
	var total float64
	for v := 0; v < r.g.N(); v++ {
		if graph.NodeID(v) == src {
			continue
		}
		c, err := r.Cost(src, graph.NodeID(v))
		if err != nil {
			return nil, err
		}
		s := float64(c) / float64(sp.Dist[v])
		total += s
		if s > st.Max {
			st.Max = s
		}
		st.Pairs++
	}
	if st.Pairs > 0 {
		st.Mean = total / float64(st.Pairs)
	}
	return st, nil
}

// Stretch computes the router's stretch statistics over all pairs.
func (r *TreeRouter) Stretch() (*StretchStats, error) {
	n := r.g.N()
	st := &StretchStats{Max: 1}
	var total float64
	for u := 0; u < n; u++ {
		sp := graph.Dijkstra(r.g, graph.NodeID(u))
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			c, err := r.Cost(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				return nil, err
			}
			if sp.Dist[v] <= 0 {
				return nil, fmt.Errorf("route: unreachable pair (%d,%d)", u, v)
			}
			s := float64(c) / float64(sp.Dist[v])
			if s < 1-1e-9 {
				return nil, fmt.Errorf("route: impossible stretch %.3f for (%d,%d)", s, u, v)
			}
			total += s
			if s > st.Max {
				st.Max = s
			}
			st.Pairs++
		}
	}
	if st.Pairs > 0 {
		st.Mean = total / float64(st.Pairs)
	}
	return st, nil
}
