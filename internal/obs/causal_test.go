package obs

import (
	"bytes"
	"fmt"
	"testing"

	"costsense/internal/graph"
	"costsense/internal/reliable"
	"costsense/internal/sim"
)

// runCausal runs one observed case with a fresh Causal observer and
// returns it alongside the run's Stats.
func runCausal(t *testing.T, c obsCase, extra ...sim.Option) (*Causal, *sim.Stats) {
	t.Helper()
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	ca := NewCausal(g)
	opts := append([]sim.Option{sim.WithObserver(ca)}, extra...)
	_, st := runCase(t, c, opts...)
	return ca, st
}

// checkChain verifies the structural invariants of the exported
// critical path: rooted at Init, linked by cause, time-monotone, and
// consistent with the report's wire/gap decomposition.
func checkChain(t *testing.T, r *CausalReport) {
	t.Helper()
	if r.PathHops != len(r.Path) {
		t.Fatalf("PathHops %d != len(Path) %d", r.PathHops, len(r.Path))
	}
	if len(r.Path) == 0 {
		t.Fatal("empty critical path on a run with traffic")
	}
	if r.PathWire+r.PathGap != r.PathEnd {
		t.Errorf("PathWire %d + PathGap %d != PathEnd %d", r.PathWire, r.PathGap, r.PathEnd)
	}
	if r.PathEnd > r.FinishTime {
		t.Errorf("PathEnd %d exceeds FinishTime %d", r.PathEnd, r.FinishTime)
	}
	var wire int64
	prevArrive := int64(0)
	for i, h := range r.Path {
		if h.Hop != i {
			t.Errorf("hop %d numbered %d", i, h.Hop)
		}
		if i == 0 {
			if h.Cause != 0 {
				t.Errorf("chain root has Cause %d, want 0", h.Cause)
			}
		} else if h.Cause != r.Path[i-1].Seq {
			t.Errorf("hop %d: Cause %d != previous hop's Seq %d", i, h.Cause, r.Path[i-1].Seq)
		}
		if h.Gap != h.Send-prevArrive || h.Gap < 0 {
			t.Errorf("hop %d: Gap %d, send %d, previous arrival %d", i, h.Gap, h.Send, prevArrive)
		}
		if h.Arrive <= h.Send {
			t.Errorf("hop %d: arrive %d <= send %d", i, h.Arrive, h.Send)
		}
		if h.Wait != h.Arrive-h.Send-h.Delay || h.Wait < 0 {
			t.Errorf("hop %d: Wait %d with arrive %d, send %d, delay %d", i, h.Wait, h.Arrive, h.Send, h.Delay)
		}
		wire += h.Arrive - h.Send
		prevArrive = h.Arrive
	}
	if wire != r.PathWire {
		t.Errorf("sum of hop transit %d != PathWire %d", wire, r.PathWire)
	}
	if last := r.Path[len(r.Path)-1]; last.Arrive != r.PathEnd {
		t.Errorf("last hop arrives at %d, PathEnd is %d", last.Arrive, r.PathEnd)
	}
}

// checkAttribution verifies that the on/off-path cost split is a
// partition of the run's own Stats, per class and per phase, with
// duplicates excluded and drops counted exactly as Stats does.
func checkAttribution(t *testing.T, r *CausalReport, st *sim.Stats) {
	t.Helper()
	if got := r.OnPathComm + r.OffPathComm; got != st.Comm {
		t.Errorf("OnPathComm %d + OffPathComm %d != Stats.Comm %d", r.OnPathComm, r.OffPathComm, st.Comm)
	}
	if got := r.OnPathMessages + r.OffPathMessages; got != st.Messages {
		t.Errorf("on+off messages %d != Stats.Messages %d", got, st.Messages)
	}
	var clOn, clOff int64
	for i, cl := range r.Classes {
		clOn += cl.OnComm
		clOff += cl.OffComm
		if want := st.CommOf(sim.Class(cl.Class)); cl.OnComm+cl.OffComm != want {
			t.Errorf("class %s: on %d + off %d != Stats.CommOf %d", cl.Class, cl.OnComm, cl.OffComm, want)
		}
		if i > 0 && r.Classes[i-1].Class >= cl.Class {
			t.Errorf("classes not sorted: %q before %q", r.Classes[i-1].Class, cl.Class)
		}
	}
	if clOn != r.OnPathComm || clOff != r.OffPathComm {
		t.Errorf("class totals (%d, %d) != report totals (%d, %d)", clOn, clOff, r.OnPathComm, r.OffPathComm)
	}
	var phOn, phOff int64
	for d, ph := range r.Phases {
		if ph.Depth != d {
			t.Errorf("phase %d labeled depth %d", d, ph.Depth)
		}
		phOn += ph.OnComm
		phOff += ph.OffComm
	}
	if phOn != r.OnPathComm || phOff != r.OffPathComm {
		t.Errorf("phase totals (%d, %d) != report totals (%d, %d)", phOn, phOff, r.OnPathComm, r.OffPathComm)
	}
}

// checkSlack verifies the slack histogram: every delivered transmission
// lands in exactly one bucket, the critical chain sits in the zero
// bucket, and bucket bounds are the documented powers of two.
func checkSlack(t *testing.T, r *CausalReport) {
	t.Helper()
	if len(r.Slack) == 0 {
		t.Fatal("no slack histogram on a run with deliveries")
	}
	var total int64
	for b, s := range r.Slack {
		total += s.Count
		wantLo, wantHi := int64(0), int64(0)
		if b > 0 {
			wantLo = int64(1) << (b - 1)
			wantHi = int64(1)<<b - 1
		}
		if s.Lo != wantLo || s.Hi != wantHi {
			t.Errorf("bucket %d spans [%d, %d], want [%d, %d]", b, s.Lo, s.Hi, wantLo, wantHi)
		}
	}
	if total != r.Delivered {
		t.Errorf("slack histogram covers %d transmissions, Delivered is %d", total, r.Delivered)
	}
	if r.Slack[0].Count < int64(r.PathHops) {
		t.Errorf("zero-slack bucket holds %d < PathHops %d (the chain itself has no slack)", r.Slack[0].Count, r.PathHops)
	}
}

// TestCausalReportInvariants: on a clean timer-free run the documented
// invariants hold with equality — the critical path realizes the
// completion time exactly, and the cost attribution partitions the
// run's own Stats.
func TestCausalReportInvariants(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ca, st := runCausal(t, c)
			r := ca.Report()
			if !r.Quiesced || r.FinishTime != st.FinishTime {
				t.Fatalf("report finish (%v, %d) != Stats (%d)", r.Quiesced, r.FinishTime, st.FinishTime)
			}
			if r.Sends != st.Messages || r.Delivered != st.Events || r.Dropped != 0 || r.Dups != 0 {
				t.Fatalf("clean-run counts (%d sends, %d delivered, %d dropped, %d dups) != Stats (%d, %d, 0, 0)",
					r.Sends, r.Delivered, r.Dropped, r.Dups, st.Messages, st.Events)
			}
			// ackFlooder never schedules a timer, so completion is
			// realized by the chain's final delivery: equality, not <=.
			if r.PathEnd != r.FinishTime {
				t.Errorf("timer-free run: PathEnd %d != FinishTime %d", r.PathEnd, r.FinishTime)
			}
			if r.OnPathMessages != int64(r.PathHops) {
				t.Errorf("OnPathMessages %d != PathHops %d on a dup-free run", r.OnPathMessages, r.PathHops)
			}
			checkChain(t, r)
			checkAttribution(t, r, st)
			checkSlack(t, r)
		})
	}
}

// TestCausalFaultyReportInvariants: under drops, duplicates, outages
// and a crash — with the reliable layer's retransmission timers in the
// causal graph — the invariants weaken exactly as documented: the path
// end is a lower bound on completion, and attribution still partitions
// Stats.Comm (drops counted, duplicate copies excluded).
func TestCausalFaultyReportInvariants(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
			opt, _ := reliable.Install(reliable.Config{})
			ca, st := runCausal(t, c, opt,
				sim.WithFaults(faultyPlan(g)), sim.WithEventLimit(5_000_000))
			r := ca.Report()
			if r.Dropped == 0 || r.Dups == 0 {
				t.Fatalf("chaos plan produced %d drops and %d dups; test is vacuous", r.Dropped, r.Dups)
			}
			if r.FinishTime != st.FinishTime {
				t.Fatalf("report finish %d != Stats %d", r.FinishTime, st.FinishTime)
			}
			checkChain(t, r)
			checkAttribution(t, r, st)
			checkSlack(t, r)
		})
	}
}

// causalPair runs one case and returns the two causal export artifacts.
func causalPair(t *testing.T, c obsCase, extra ...sim.Option) (jsonOut, csvOut []byte) {
	t.Helper()
	ca, _ := runCausal(t, c, extra...)
	var jb, cb bytes.Buffer
	if err := ca.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := ca.WritePathCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestCausalExportsByteIdentical: two runs of the same seed (and fault
// plan) export byte-identical critical-path JSON and CSV.
func TestCausalExportsByteIdentical(t *testing.T) {
	for _, c := range obsCases() {
		for _, faulty := range []bool{false, true} {
			c, faulty := c, faulty
			name := c.name
			if faulty {
				name += "/faulty"
			}
			t.Run(name, func(t *testing.T) {
				var jsonOut, csvOut [2][]byte
				for i := 0; i < 2; i++ {
					var common []sim.Option
					if faulty {
						g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
						opt, _ := reliable.Install(reliable.Config{})
						common = []sim.Option{opt, sim.WithFaults(faultyPlan(g)), sim.WithEventLimit(5_000_000)}
					}
					jsonOut[i], csvOut[i] = causalPair(t, c, common...)
				}
				if !bytes.Equal(jsonOut[0], jsonOut[1]) {
					t.Error("critical-path JSON differs between two runs of the same seed")
				}
				if !bytes.Equal(csvOut[0], csvOut[1]) {
					t.Error("critical-path CSV differs between two runs of the same seed")
				}
				header, _, _ := bytes.Cut(csvOut[0], []byte("\n"))
				if n := bytes.Count(header, []byte(",")) + 1; n != 14 {
					t.Errorf("path CSV header has %d columns, want 14: %s", n, header)
				}
			})
		}
	}
}

// TestShardedCausalExportsByteIdentical extends the sharded engine's
// byte-identity contract to the causal layer: the probe replay must
// resolve causal parents to the same dense sequence numbers the serial
// engine assigns, so a WithShards run exports the identical critical
// path — clean and faulty, every delay model.
func TestShardedCausalExportsByteIdentical(t *testing.T) {
	for _, c := range obsCases() {
		for _, faulty := range []bool{false, true} {
			for _, shards := range []int{2, 4} {
				c, faulty, shards := c, faulty, shards
				name := fmt.Sprintf("%s/shards=%d", c.name, shards)
				if faulty {
					name += "/faulty"
				}
				t.Run(name, func(t *testing.T) {
					var common []sim.Option
					if faulty {
						g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
						opt, _ := reliable.Install(reliable.Config{})
						common = []sim.Option{opt, sim.WithFaults(faultyPlan(g)), sim.WithEventLimit(5_000_000)}
					}
					sj, sc := causalPair(t, c, common...)
					pj, pc := causalPair(t, c, append(common, sim.WithShards(shards))...)
					if !bytes.Equal(sj, pj) {
						t.Error("sharded critical-path JSON differs from serial")
					}
					if !bytes.Equal(sc, pc) {
						t.Error("sharded critical-path CSV differs from serial")
					}
				})
			}
		}
	}
}

// TestCausalRunStatsIdentical: the causal observer must not perturb the
// run — same Stats as the unobserved run of the same seed.
func TestCausalRunStatsIdentical(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, plain := runCase(t, c)
			_, observed := runCausal(t, c)
			if flatten(plain) != flatten(observed) {
				t.Errorf("causal-observed run diverged:\n got  %v\n want %v", flatten(observed), flatten(plain))
			}
		})
	}
}

// TestSummarizeCausal: cross-trial aggregation picks the true worst
// trial, lower medians over realized values, and skips nil entries.
func TestSummarizeCausal(t *testing.T) {
	cases := obsCases()
	reports := make([]*CausalReport, 0, 4)
	reports = append(reports, nil) // a skipped trial
	var worstEnd int64
	worstIdx := -1
	ends := []int64{}
	for _, c := range []obsCase{
		{"a", sim.DelayUniform{}, false, 3},
		{"b", sim.DelayUniform{}, true, 17},
		{"c", cases[0].delay, false, 1},
	} {
		ca, _ := runCausal(t, c)
		r := ca.Report()
		if r.PathEnd > worstEnd {
			worstEnd = r.PathEnd
			worstIdx = len(reports)
		}
		ends = append(ends, r.PathEnd)
		reports = append(reports, r)
	}
	s := SummarizeCausal(reports)
	if s.Trials != 3 {
		t.Fatalf("Trials = %d, want 3 (nil skipped)", s.Trials)
	}
	if s.WorstPathEnd != worstEnd || s.WorstTrial != worstIdx {
		t.Errorf("worst = (%d, trial %d), want (%d, trial %d)", s.WorstPathEnd, s.WorstTrial, worstEnd, worstIdx)
	}
	if s.WorstHops != reports[worstIdx].PathHops {
		t.Errorf("WorstHops %d != worst trial's PathHops %d", s.WorstHops, reports[worstIdx].PathHops)
	}
	found := false
	for _, e := range ends {
		if e == s.MedianPathEnd {
			found = true
		}
	}
	if !found {
		t.Errorf("MedianPathEnd %d is not a realized value %v", s.MedianPathEnd, ends)
	}
	if s.MeanOnPathShare <= 0 || s.MeanOnPathShare > 1 {
		t.Errorf("MeanOnPathShare %v outside (0, 1]", s.MeanOnPathShare)
	}
	if z := SummarizeCausal(nil); z.Trials != 0 || z.WorstPathEnd != 0 {
		t.Errorf("empty summary not zero: %+v", z)
	}
}
