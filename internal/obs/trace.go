package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// span is one message lifetime, recorded compactly at send time; the
// human-readable strings are built only at export. delivered is set
// when the matching OnDeliver fires (spans are dense in probe sequence
// order, so span Seq s lives at index s-1) and gates the flow-event
// pair: arrows are drawn only for messages that actually arrived.
type span struct {
	ts, dur, seq int64
	w            int64
	from, to     int32
	edge         int32
	class        sim.Class
	delivered    bool
}

// mark is one Context.Record call, exported as an instant event.
type mark struct {
	ts    int64
	node  int32
	value int64
	key   string
}

// faultEvent is one injected fault (drop, crash, link outage),
// exported as an instant event in the "fault" category.
type faultEvent struct {
	ts   int64
	aux  int64 // drop: seq; link-down: window end; crash: unused
	node int32
	kind string
}

// Trace is a sim.Observer that records every message's lifetime and
// every Record call, and exports them in the Chrome trace_event JSON
// format: open the file in Perfetto (ui.perfetto.dev) or
// about:tracing. One lane (thread) per node; one slice per in-flight
// message, drawn on the sending node's lane from send to delivery;
// Record calls appear as instant events on their node's lane.
//
// One simulated time unit maps to one microsecond of trace time.
type Trace struct {
	g      *graph.Graph
	spans  []span
	marks  []mark
	faults []faultEvent
	finish int64
}

var _ sim.Observer = (*Trace)(nil)

// NewTrace builds a trace observer for one run over g.
func NewTrace(g *graph.Graph) *Trace {
	return &Trace{g: g, spans: make([]span, 0, 4*g.M())}
}

// OnSend records the slice; amortized append only.
//
//costsense:hotpath
func (t *Trace) OnSend(e sim.SendEvent, _ sim.Message) {
	t.spans = append(t.spans, span{
		ts: e.Time, dur: e.Arrive - e.Time, seq: e.Seq, w: e.W,
		from: int32(e.From), to: int32(e.To), edge: int32(e.Edge), class: e.Class,
	})
}

// OnDeliver marks the span delivered so Export emits its flow-event
// pair; the slice's end itself was known at send time.
//
//costsense:hotpath
func (t *Trace) OnDeliver(e sim.DeliverEvent, _ sim.Message) {
	t.spans[e.Seq-1].delivered = true
}

// OnDrop records an instant fault event on the sender's lane.
//
//costsense:hotpath
func (t *Trace) OnDrop(e sim.DropEvent, _ sim.Message) {
	t.faults = append(t.faults, faultEvent{ts: e.Time, node: int32(e.From), aux: e.Seq, kind: e.Reason.String()})
}

// OnCrash records an instant fault event on the crashed node's lane.
func (t *Trace) OnCrash(n graph.NodeID, at int64) {
	t.faults = append(t.faults, faultEvent{ts: at, node: int32(n), kind: "crash-node"})
}

// OnLinkDown records the outage as an instant event on the lane of the
// edge's U endpoint (edges have no lane of their own).
func (t *Trace) OnLinkDown(e graph.EdgeID, from, until int64) {
	t.faults = append(t.faults, faultEvent{ts: from, node: int32(t.g.Edge(e).U), aux: until, kind: "link-down"})
}

// OnRecord records an instant event.
func (t *Trace) OnRecord(n graph.NodeID, at int64, key string, v int64) {
	t.marks = append(t.marks, mark{ts: at, node: int32(n), value: v, key: key})
}

// OnQuiesce captures the completion time.
func (t *Trace) OnQuiesce(s *sim.Stats) { t.finish = s.FinishTime }

// Export writes the trace_event JSON. Events are emitted in a fixed
// order (metadata by node, then spans in send order, then marks in
// record order, then fault events in observation order), so output is
// byte-deterministic for a fixed seed.
func (t *Trace) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"nodes\":%d,\"edges\":%d,\"finish_time\":%d},\"traceEvents\":[\n",
		t.g.N(), t.g.M(), t.finish)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"costsense sim"}}`)
	for v := 0; v < t.g.N(); v++ {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"node %d"}}`, v, v)
		// sort_index keeps Perfetto's lane order at node-ID order.
		emit(`{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`, v, v)
	}
	for _, s := range t.spans {
		emit(`{"name":%s,"cat":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"to":%d,"edge":%d,"w":%d,"seq":%d}}`,
			strconv.Quote(fmt.Sprintf("%s #%d -> %d", s.class, s.seq, s.to)), strconv.Quote(string(s.class)),
			s.ts, s.dur, s.from, s.to, s.edge, s.w, s.seq)
		if !s.delivered {
			continue // dropped in flight: no arrow to draw
		}
		// Flow-event pair linking the send slice on the sender's lane
		// to the arrival instant on the receiver's lane, so Perfetto
		// renders a message arrow. The flow id is the probe sequence
		// number — unique per run; bp:"e" binds the arrow's head to
		// the slice enclosing the arrival point, i.e. whatever the
		// receiver transmits next.
		emit(`{"name":"msg","cat":"msgflow","ph":"s","id":%d,"ts":%d,"pid":0,"tid":%d}`,
			s.seq, s.ts, s.from)
		emit(`{"name":"msg","cat":"msgflow","ph":"f","bp":"e","id":%d,"ts":%d,"pid":0,"tid":%d}`,
			s.seq, s.ts+s.dur, s.to)
	}
	for _, m := range t.marks {
		emit(`{"name":%s,"cat":"record","ph":"i","ts":%d,"pid":0,"tid":%d,"s":"t","args":{"value":%d}}`,
			strconv.Quote(fmt.Sprintf("%s=%d", m.key, m.value)), m.ts, m.node, m.value)
	}
	for _, f := range t.faults {
		emit(`{"name":%s,"cat":"fault","ph":"i","ts":%d,"pid":0,"tid":%d,"s":"t","args":{"aux":%d}}`,
			strconv.Quote(f.kind), f.ts, f.node, f.aux)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// Spans returns the number of recorded message slices.
func (t *Trace) Spans() int { return len(t.spans) }
