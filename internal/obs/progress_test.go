package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"costsense/internal/harness"
)

func TestProgressReportsCompletion(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	p := NewProgress(&buf, "sweep", time.Hour) // throttle everything but the final line
	var lastDone, lastTotal int
	p.OnDone = func(done, total int) {
		mu.Lock()
		lastDone, lastTotal = done, total
		mu.Unlock()
	}
	_, err := harness.RunIndexedObserved(16, func(i int) (int, error) { return i, nil }, p)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep: 16 trials in") {
		t.Errorf("missing final summary, got %q", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Errorf("throttling failed: %d lines, want only the final summary\n%s", n, out)
	}
	mu.Lock()
	defer mu.Unlock()
	if lastDone != 16 || lastTotal != 16 {
		t.Errorf("OnDone last saw %d/%d, want 16/16", lastDone, lastTotal)
	}
}

func TestProgressIntermediateLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "x", time.Nanosecond) // report every trial
	_, err := harness.RunIndexedObserved(8, func(i int) (int, error) { return i, nil }, p)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ETA") && !strings.Contains(out, "trials in") {
		t.Errorf("no progress lines at all: %q", out)
	}
}
