package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"costsense/internal/graph"
	"costsense/internal/reliable"
	"costsense/internal/sim"
)

// ackFlooder floods a token from node 0 and acks every receipt,
// exercising two message classes; same workload as the simulator's
// golden Stats tests.
type ackFlooder struct{ got bool }

func (f *ackFlooder) Init(ctx sim.Context) {
	if ctx.ID() == 0 {
		f.got = true
		ctx.Record("start", 1)
		for _, h := range ctx.Neighbors() {
			ctx.Send(h.To, "tok")
		}
	}
}

func (f *ackFlooder) Handle(ctx sim.Context, from graph.NodeID, m sim.Message) {
	if m == "tok" {
		ctx.SendClass(from, "ack", sim.ClassAck)
	}
	if f.got || m != "tok" {
		return
	}
	f.got = true
	for _, h := range ctx.Neighbors() {
		if h.To != from {
			ctx.Send(h.To, m)
		}
	}
}

type obsCase struct {
	name      string
	delay     sim.DelayModel
	congested bool
	seed      int64
}

func obsCases() []obsCase {
	return []obsCase{
		{"max/plain", sim.DelayMax{}, false, 1},
		{"max/congested", sim.DelayMax{}, true, 1},
		{"unit/plain", sim.DelayUnit{}, false, 1},
		{"unit/congested", sim.DelayUnit{}, true, 1},
		{"uniform/plain", sim.DelayUniform{}, false, 42},
		{"uniform/congested", sim.DelayUniform{}, true, 42},
	}
}

func runCase(t *testing.T, c obsCase, extra ...sim.Option) (*graph.Graph, *sim.Stats) {
	t.Helper()
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	procs := make([]sim.Process, g.N())
	for v := range procs {
		procs[v] = &ackFlooder{}
	}
	opts := []sim.Option{sim.WithDelay(c.delay), sim.WithSeed(c.seed)}
	if c.congested {
		opts = append(opts, sim.WithCongestion())
	}
	opts = append(opts, extra...)
	st, err := sim.Run(g, procs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g, st
}

func flatten(s *sim.Stats) [8]int64 {
	return [8]int64{
		s.Messages, s.Comm, s.FinishTime, s.Events,
		s.MessagesOf(sim.ClassProto), s.CommOf(sim.ClassProto),
		s.MessagesOf(sim.ClassAck), s.CommOf(sim.ClassAck),
	}
}

// TestObservedRunStatsIdentical: for every delay model, plain and
// congested, a run instrumented with metrics+trace observers produces
// the exact Stats of the untraced run of the same seed.
func TestObservedRunStatsIdentical(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, plain := runCase(t, c)
			g2 := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
			m := NewMetrics(g2)
			tr := NewTrace(g2)
			_, observed := runCase(t, c, sim.WithObserver(NewTee(m, tr)))
			if flatten(plain) != flatten(observed) {
				t.Errorf("observed run diverged:\n got  %v\n want %v", flatten(observed), flatten(plain))
			}
		})
	}
}

// TestExportsByteIdentical: two observed runs of the same seed export
// byte-identical metrics JSON, edge CSV, and Chrome trace JSON.
func TestExportsByteIdentical(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var metricsOut, csvOut, traceOut [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
				m := NewMetrics(g)
				tr := NewTrace(g)
				runCase(t, c, sim.WithObserver(NewTee(m, tr)))
				if err := m.WriteJSON(&metricsOut[i]); err != nil {
					t.Fatal(err)
				}
				if err := m.WriteEdgeCSV(&csvOut[i]); err != nil {
					t.Fatal(err)
				}
				if err := tr.Export(&traceOut[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(metricsOut[0].Bytes(), metricsOut[1].Bytes()) {
				t.Error("metrics JSON differs between two runs of the same seed")
			}
			if !bytes.Equal(csvOut[0].Bytes(), csvOut[1].Bytes()) {
				t.Error("edge CSV differs between two runs of the same seed")
			}
			if !bytes.Equal(traceOut[0].Bytes(), traceOut[1].Bytes()) {
				t.Error("trace JSON differs between two runs of the same seed")
			}
		})
	}
}

// faultyPlan is a chaos plan over the standard 40/120 test graph:
// drops, duplication, two link outages, and one mid-run fail-stop.
func faultyPlan(g *graph.Graph) sim.FaultPlan {
	return sim.FaultPlan{
		Drop: 0.15,
		Dup:  0.10,
		Down: []sim.LinkDown{
			{Edge: 3, From: 2, Until: 12},
			{Edge: 7, From: 5, Until: 9},
		},
		Crashes: []sim.Crash{{Node: graph.NodeID(g.N() - 1), At: 25}},
	}
}

// TestFaultyExportsByteIdentical: under a chaos plan with the reliable
// layer installed, two observed runs of the same seed and plan export
// byte-identical metrics JSON, edge CSV, and Chrome trace JSON, with a
// populated fault section — across every delay model, plain and
// congested.
func TestFaultyExportsByteIdentical(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var metricsOut, csvOut, traceOut [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
				m := NewMetrics(g)
				tr := NewTrace(g)
				opt, _ := reliable.Install(reliable.Config{})
				runCase(t, c, opt, sim.WithObserver(NewTee(m, tr)),
					sim.WithFaults(faultyPlan(g)), sim.WithEventLimit(5_000_000))
				snap := m.Snapshot()
				if snap.Faults == nil {
					t.Fatal("faulty run produced no fault section in the snapshot")
				}
				if snap.Faults.Dropped == 0 || snap.Faults.Retx == 0 || snap.Faults.Dups == 0 {
					t.Fatalf("fault section is vacuous: %+v", snap.Faults)
				}
				if len(snap.Faults.Crashes) != 1 || len(snap.Faults.LinkDowns) != 2 {
					t.Fatalf("fault section has %d crashes and %d outages, want 1 and 2",
						len(snap.Faults.Crashes), len(snap.Faults.LinkDowns))
				}
				if err := m.WriteJSON(&metricsOut[i]); err != nil {
					t.Fatal(err)
				}
				if err := m.WriteEdgeCSV(&csvOut[i]); err != nil {
					t.Fatal(err)
				}
				if err := tr.Export(&traceOut[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(metricsOut[0].Bytes(), metricsOut[1].Bytes()) {
				t.Error("faulty metrics JSON differs between two runs of the same seed+plan")
			}
			if !bytes.Equal(csvOut[0].Bytes(), csvOut[1].Bytes()) {
				t.Error("faulty edge CSV differs between two runs of the same seed+plan")
			}
			if !bytes.Equal(traceOut[0].Bytes(), traceOut[1].Bytes()) {
				t.Error("faulty trace JSON differs between two runs of the same seed+plan")
			}
			header, _, _ := bytes.Cut(csvOut[0].Bytes(), []byte("\n"))
			if n := bytes.Count(header, []byte(",")) + 1; n != 12 {
				t.Errorf("edge CSV header has %d columns, want 12: %s", n, header)
			}
		})
	}
}

// TestMetricsAgreeWithStats: per-edge and per-class aggregates must
// sum to the run's own Stats, in-flight counts must return to zero,
// and every message must be delivered.
func TestMetricsAgreeWithStats(t *testing.T) {
	for _, c := range obsCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
			m := NewMetrics(g)
			_, st := runCase(t, c, sim.WithObserver(m))
			snap := m.Snapshot()
			var msgs, comm, wait int64
			for _, e := range snap.Edges {
				msgs += e.Messages
				comm += e.Comm
				wait += e.Wait
				if e.Messages > 0 && e.MaxInFlight < 1 {
					t.Errorf("edge %d carried %d messages but MaxInFlight = %d", e.Edge, e.Messages, e.MaxInFlight)
				}
			}
			if msgs != st.Messages || comm != st.Comm {
				t.Errorf("edge totals (%d msgs, %d comm) != Stats (%d, %d)", msgs, comm, st.Messages, st.Comm)
			}
			if !c.congested && wait != 0 && c.delay != (sim.DelayUniform{}) {
				// Under DelayMax/DelayUnit without congestion every delay
				// is identical per edge, so FIFO never reorders: no wait.
				t.Errorf("plain %s run accumulated FIFO wait %d, want 0", c.name, wait)
			}
			for _, in := range m.inflight {
				if in != 0 {
					t.Fatal("in-flight count nonzero after quiescence")
				}
			}
			var classMsgs, delivered int64
			for _, cl := range snap.Classes {
				classMsgs += cl.Messages
				delivered += cl.Delivered
				if cl.Comm != st.CommOf(sim.Class(cl.Class)) {
					t.Errorf("class %s comm %d != Stats %d", cl.Class, cl.Comm, st.CommOf(sim.Class(cl.Class)))
				}
				if k := len(cl.CommSeries); k > 0 && cl.CommSeries[k-1].V != cl.Comm {
					t.Errorf("class %s comm series ends at %d, want %d", cl.Class, cl.CommSeries[k-1].V, cl.Comm)
				}
				if k := len(cl.DelivSeries); k > 0 && cl.DelivSeries[k-1].V != cl.Delivered {
					t.Errorf("class %s delivery series ends at %d, want %d", cl.Class, cl.DelivSeries[k-1].V, cl.Delivered)
				}
			}
			if classMsgs != st.Messages || delivered != st.Events {
				t.Errorf("class totals (%d msgs, %d delivered) != Stats (%d, %d)", classMsgs, delivered, st.Messages, st.Events)
			}
			if !snap.Quiesced || snap.FinishTime != st.FinishTime {
				t.Errorf("snapshot finish (%v, %d) != Stats (%d)", snap.Quiesced, snap.FinishTime, st.FinishTime)
			}
		})
	}
}

// TestTraceExportIsValidJSON: the Chrome trace parses as JSON, carries
// one slice per message and one lane metadata pair per node.
func TestTraceExportIsValidJSON(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	tr := NewTrace(g)
	_, st := runCase(t, obsCases()[0], sim.WithObserver(tr))
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var slices, meta, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", ev.Name, ev.Dur)
			}
			if ev.Tid < 0 || ev.Tid >= g.N() {
				t.Errorf("slice %q on lane %d, want 0..%d", ev.Name, ev.Tid, g.N()-1)
			}
		case "M":
			meta++
		case "i":
			instants++
		}
	}
	if int64(slices) != st.Messages {
		t.Errorf("trace has %d slices, want one per message (%d)", slices, st.Messages)
	}
	if tr.Spans() != slices {
		t.Errorf("Spans() = %d, export wrote %d", tr.Spans(), slices)
	}
	if meta != 2*g.N()+1 {
		t.Errorf("trace has %d metadata events, want %d", meta, 2*g.N()+1)
	}
	if instants != 1 { // the single ctx.Record("start", 1)
		t.Errorf("trace has %d instant events, want 1", instants)
	}
}

// TestMaxEdgeLoad: the congestion hot-spot accessor returns an edge
// whose counter matches, and no edge exceeds it.
func TestMaxEdgeLoad(t *testing.T) {
	g := graph.RandomConnected(40, 120, graph.UniformWeights(32, 7), 7)
	m := NewMetrics(g)
	runCase(t, obsCases()[0], sim.WithObserver(m))
	id, load := m.MaxEdgeLoad()
	if load <= 0 {
		t.Fatal("no edge carried traffic")
	}
	snap := m.Snapshot()
	if snap.Edges[id].Messages != load {
		t.Errorf("MaxEdgeLoad edge %d has %d messages, reported %d", id, snap.Edges[id].Messages, load)
	}
	for _, e := range snap.Edges {
		if e.Messages > load {
			t.Errorf("edge %d load %d exceeds reported max %d", e.Edge, e.Messages, load)
		}
	}
}
