// Package obs is the simulator's optional observability layer: bundled
// sim.Observer implementations that turn a run's internal dynamics —
// per-edge load, per-class cost growth, message lifetimes — into
// deterministic, exportable artifacts, plus the experiment-harness
// progress telemetry.
//
// The paper's whole subject is *measuring* protocols: weighted
// communication c_π, completion time t_π, and the congestion factors
// hiding inside the time bounds (the extra log n in γ*'s pulse delay
// comes from edges shared by O(log n) cover trees). End-of-run totals
// cannot show any of that; these observers can, without perturbing the
// run (probes are branch-only on the unobserved path, and observed
// runs replay the identical event sequence).
//
// Determinism contract: every export (JSON, CSV, Chrome trace) is
// byte-identical across runs of the same seed — all collections are
// dense slices in event or edge-ID order, never map iterations.
package obs

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"costsense/internal/graph"
	"costsense/internal/sim"
)

// Point is one sample of a cumulative per-class time series.
type Point struct {
	T int64 `json:"t"` // simulated time
	V int64 `json:"v"` // cumulative value at T
}

// EdgeCounters aggregates one edge's traffic over a run.
type EdgeCounters struct {
	Messages    int64 // transmissions over the edge (both directions)
	Comm        int64 // weighted communication: Messages x w(e)
	Busy        int64 // Σ transit delay: time spent carrying messages
	Wait        int64 // Σ FIFO/congestion queueing before transit began
	MaxInFlight int32 // peak simultaneous in-flight messages
	Drops       int64 // messages the fault adversary destroyed on this edge
	Retx        int64 // reliable-layer retransmissions (class "retx")
	Dups        int64 // fault-injected duplicate copies (not in Messages/Comm)
}

// classSeries is the dense per-class accumulator.
type classSeries struct {
	class     sim.Class
	messages  int64
	comm      int64
	delivered int64
	commPts   []Point // cumulative c_π(t), one point per distinct send time
	delivPts  []Point // cumulative deliveries, one point per distinct delivery time
}

// Metrics is a sim.Observer recording per-edge counters and per-class
// cumulative time series into dense, preallocated buffers. One Metrics
// instruments one run; build a fresh one per Network.
type Metrics struct {
	g             *graph.Graph
	edges         []EdgeCounters // indexed by EdgeID
	inflight      []int32        // current in-flight per edge
	classes       []classSeries
	classIdx      map[sim.Class]int
	classOf       []uint16 // seq-1 -> class index; sends are dense, so this is too
	dropsByReason [3]int64 // indexed by sim.DropReason - 1
	crashes       []CrashMark
	linkDowns     []LinkDownMark
	finish        int64
	quiesced      bool
}

// CrashMark is one observed fail-stop, for the exported fault timeline.
type CrashMark struct {
	Node int   `json:"node"`
	At   int64 `json:"at"`
}

// LinkDownMark is one observed link outage window.
type LinkDownMark struct {
	Edge  int   `json:"edge"`
	From  int64 `json:"from"`
	Until int64 `json:"until"`
}

var _ sim.Observer = (*Metrics)(nil)

// NewMetrics builds a metrics observer for one run over g.
func NewMetrics(g *graph.Graph) *Metrics {
	return &Metrics{
		g:        g,
		edges:    make([]EdgeCounters, g.M()),
		inflight: make([]int32, g.M()),
		classes:  make([]classSeries, 0, 8),
		classIdx: make(map[sim.Class]int, 8),
		classOf:  make([]uint16, 0, 2*g.M()),
	}
}

// classID interns a class; the map read is allocation-free, the
// first-sight insert is once per class.
//
//costsense:hotpath
func (m *Metrics) classID(c sim.Class) int {
	if id, ok := m.classIdx[c]; ok {
		return id
	}
	//costsense:alloc-ok interning cold path: runs once per class over a whole run, not per event
	return m.addClass(c)
}

// addClass is the once-per-class cold path of classID.
func (m *Metrics) addClass(c sim.Class) int {
	id := len(m.classes)
	if id > 0xFFFF {
		panic("obs: more than 65536 message classes")
	}
	m.classes = append(m.classes, classSeries{class: c})
	m.classIdx[c] = id
	return id
}

// OnSend accounts the transmission on its edge and class. Amortized
// slice growth only; no per-event allocation. Duplicate copies count
// in Dups only, mirroring the engine's Stats (the protocol didn't pay
// for them); retransmissions are real paid sends and additionally
// bump Retx.
//
//costsense:hotpath
func (m *Metrics) OnSend(e sim.SendEvent, _ sim.Message) {
	ec := &m.edges[e.Edge]
	if e.Dup {
		ec.Dups++
	} else {
		ec.Messages++
		ec.Comm += e.W
		if e.Class == sim.ClassRetx {
			ec.Retx++
		}
	}
	ec.Busy += e.Delay
	ec.Wait += e.Wait()
	m.inflight[e.Edge]++
	if m.inflight[e.Edge] > ec.MaxInFlight {
		ec.MaxInFlight = m.inflight[e.Edge]
	}
	ci := m.classID(e.Class)
	cs := &m.classes[ci]
	if !e.Dup {
		cs.messages++
		cs.comm += e.W
		if k := len(cs.commPts); k > 0 && cs.commPts[k-1].T == e.Time {
			cs.commPts[k-1].V = cs.comm // coalesce same-time samples
		} else {
			cs.commPts = append(cs.commPts, Point{T: e.Time, V: cs.comm})
		}
	}
	// Every OnSend — including duplicates and messages later dropped —
	// appends here: probe sequences are dense over all transmissions.
	m.classOf = append(m.classOf, uint16(ci))
}

// OnDeliver retires the message from its edge and samples the class's
// delivery series.
//
//costsense:hotpath
func (m *Metrics) OnDeliver(e sim.DeliverEvent, _ sim.Message) {
	m.inflight[e.Edge]--
	cs := &m.classes[m.classOf[e.Seq-1]]
	cs.delivered++
	if k := len(cs.delivPts); k > 0 && cs.delivPts[k-1].T == e.Time {
		cs.delivPts[k-1].V = cs.delivered
	} else {
		cs.delivPts = append(cs.delivPts, Point{T: e.Time, V: cs.delivered})
	}
}

// OnDrop retires a destroyed message from its edge and tallies the
// loss per edge and per reason.
//
//costsense:hotpath
func (m *Metrics) OnDrop(e sim.DropEvent, _ sim.Message) {
	m.inflight[e.Edge]--
	m.edges[e.Edge].Drops++
	m.dropsByReason[e.Reason-1]++
}

// OnCrash records the fail-stop on the run's fault timeline.
func (m *Metrics) OnCrash(node graph.NodeID, at int64) {
	m.crashes = append(m.crashes, CrashMark{Node: int(node), At: at})
}

// OnLinkDown records the outage window on the run's fault timeline.
func (m *Metrics) OnLinkDown(e graph.EdgeID, from, until int64) {
	m.linkDowns = append(m.linkDowns, LinkDownMark{Edge: int(e), From: from, Until: until})
}

// OnRecord is ignored; Record traces stay on the Network.
func (m *Metrics) OnRecord(graph.NodeID, int64, string, int64) {}

// OnQuiesce captures the completion time.
func (m *Metrics) OnQuiesce(s *sim.Stats) {
	m.finish = s.FinishTime
	m.quiesced = true
}

// EdgeMetric is the exportable per-edge row.
type EdgeMetric struct {
	Edge        int   `json:"edge"`
	U           int   `json:"u"`
	V           int   `json:"v"`
	W           int64 `json:"w"`
	Messages    int64 `json:"messages"`
	Comm        int64 `json:"comm"`
	Busy        int64 `json:"busy"`
	Wait        int64 `json:"wait"`
	MaxInFlight int32 `json:"max_in_flight"`
	Drops       int64 `json:"drops"`
	Retx        int64 `json:"retx"`
	Dups        int64 `json:"dups"`
}

// FaultMetrics summarizes an observed run's injected faults; all-zero
// (and omitted from JSON) on fault-free runs.
type FaultMetrics struct {
	Dropped     int64          `json:"dropped"`      // send-time losses (loss + linkdown)
	DeadLetters int64          `json:"dead_letters"` // arrivals at crashed nodes
	Retx        int64          `json:"retx"`
	Dups        int64          `json:"dups"`
	Crashes     []CrashMark    `json:"crashes,omitempty"`
	LinkDowns   []LinkDownMark `json:"link_downs,omitempty"`
}

func (f FaultMetrics) zero() bool {
	return f.Dropped == 0 && f.DeadLetters == 0 && f.Retx == 0 && f.Dups == 0 &&
		len(f.Crashes) == 0 && len(f.LinkDowns) == 0
}

// ClassMetric is the exportable per-class aggregate plus its series.
type ClassMetric struct {
	Class       string  `json:"class"`
	Messages    int64   `json:"messages"`
	Comm        int64   `json:"comm"`
	Delivered   int64   `json:"delivered"`
	CommSeries  []Point `json:"comm_series"`
	DelivSeries []Point `json:"deliveries_series"`
}

// Snapshot is the full exportable view of one observed run. All slices
// are sorted (edges by ID, classes by name), so encoding/json output
// is byte-deterministic.
type Snapshot struct {
	Nodes      int           `json:"nodes"`
	EdgesTotal int           `json:"edges_total"`
	FinishTime int64         `json:"finish_time"`
	Quiesced   bool          `json:"quiesced"`
	Faults     *FaultMetrics `json:"faults,omitempty"` // nil on fault-free runs
	Edges      []EdgeMetric  `json:"edges"`
	Classes    []ClassMetric `json:"classes"`
}

// Snapshot materializes the current counters. Edges that carried no
// traffic are included (zero rows), so row i is always edge i.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Nodes:      m.g.N(),
		EdgesTotal: m.g.M(),
		FinishTime: m.finish,
		Quiesced:   m.quiesced,
		Edges:      make([]EdgeMetric, m.g.M()),
		Classes:    make([]ClassMetric, 0, len(m.classes)),
	}
	fm := FaultMetrics{
		Dropped:     m.dropsByReason[sim.DropLoss-1] + m.dropsByReason[sim.DropLinkDown-1],
		DeadLetters: m.dropsByReason[sim.DropCrash-1],
		Crashes:     m.crashes,
		LinkDowns:   m.linkDowns,
	}
	for i, ec := range m.edges {
		e := m.g.Edge(graph.EdgeID(i))
		s.Edges[i] = EdgeMetric{
			Edge: i, U: int(e.U), V: int(e.V), W: e.W,
			Messages: ec.Messages, Comm: ec.Comm, Busy: ec.Busy,
			Wait: ec.Wait, MaxInFlight: ec.MaxInFlight,
			Drops: ec.Drops, Retx: ec.Retx, Dups: ec.Dups,
		}
		fm.Retx += ec.Retx
		fm.Dups += ec.Dups
	}
	if !fm.zero() {
		s.Faults = &fm
	}
	for _, cs := range m.classes {
		s.Classes = append(s.Classes, ClassMetric{
			Class: string(cs.class), Messages: cs.messages, Comm: cs.comm,
			Delivered: cs.delivered, CommSeries: cs.commPts, DelivSeries: cs.delivPts,
		})
	}
	sort.Slice(s.Classes, func(i, j int) bool { return s.Classes[i].Class < s.Classes[j].Class })
	return s
}

// WriteJSON writes the snapshot as indented JSON. Byte-deterministic
// for a fixed seed: structs and sorted slices only.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// WriteEdgeCSV writes one CSV row per edge, in edge-ID order.
func (m *Metrics) WriteEdgeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"edge", "u", "v", "w", "messages", "comm", "busy", "wait", "max_in_flight", "drops", "retx", "dups"}); err != nil {
		return err
	}
	for _, e := range m.Snapshot().Edges {
		row := []string{
			strconv.Itoa(e.Edge), strconv.Itoa(e.U), strconv.Itoa(e.V),
			strconv.FormatInt(e.W, 10), strconv.FormatInt(e.Messages, 10),
			strconv.FormatInt(e.Comm, 10), strconv.FormatInt(e.Busy, 10),
			strconv.FormatInt(e.Wait, 10), strconv.Itoa(int(e.MaxInFlight)),
			strconv.FormatInt(e.Drops, 10), strconv.FormatInt(e.Retx, 10),
			strconv.FormatInt(e.Dups, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MaxEdgeLoad returns the largest message count on any single edge —
// the congestion quantity the γ* analysis bounds by the cover's edge
// load — and one edge attaining it (lowest ID on ties).
func (m *Metrics) MaxEdgeLoad() (graph.EdgeID, int64) {
	var best graph.EdgeID
	var n int64
	for i, ec := range m.edges {
		if ec.Messages > n {
			best, n = graph.EdgeID(i), ec.Messages
		}
	}
	return best, n
}

// Tee fans callbacks out to several observers in order; use it to run
// the metrics and trace observers on the same network.
type Tee struct{ obs []sim.Observer }

var _ sim.Observer = (*Tee)(nil)

// NewTee composes observers; nil entries are dropped.
func NewTee(obs ...sim.Observer) *Tee {
	t := &Tee{}
	for _, o := range obs {
		if o != nil {
			t.obs = append(t.obs, o)
		}
	}
	return t
}

//costsense:hotpath
func (t *Tee) OnSend(e sim.SendEvent, m sim.Message) {
	for _, o := range t.obs {
		o.OnSend(e, m)
	}
}

//costsense:hotpath
func (t *Tee) OnDeliver(e sim.DeliverEvent, m sim.Message) {
	for _, o := range t.obs {
		o.OnDeliver(e, m)
	}
}

//costsense:hotpath
func (t *Tee) OnDrop(e sim.DropEvent, m sim.Message) {
	for _, o := range t.obs {
		o.OnDrop(e, m)
	}
}

func (t *Tee) OnCrash(n graph.NodeID, at int64) {
	for _, o := range t.obs {
		o.OnCrash(n, at)
	}
}

func (t *Tee) OnLinkDown(e graph.EdgeID, from, until int64) {
	for _, o := range t.obs {
		o.OnLinkDown(e, from, until)
	}
}

func (t *Tee) OnRecord(n graph.NodeID, at int64, key string, v int64) {
	for _, o := range t.obs {
		o.OnRecord(n, at, key, v)
	}
}

func (t *Tee) OnQuiesce(s *sim.Stats) {
	for _, o := range t.obs {
		o.OnQuiesce(s)
	}
}
