package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a harness.Sink that reports experiment sweep progress —
// trials done/total, per-trial wall time, throughput and ETA — to a
// writer (typically stderr). It is telemetry only: wall-clock readings
// never feed results, so fixed-seed reproducibility is untouched (the
// detsource audits below record that).
//
// Output is throttled to at most one line per interval, plus a final
// summary when the last trial completes.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	interval time.Duration
	begun    time.Time
	last     time.Time
	starts   map[int]time.Time
	maxTrial time.Duration
	sumTrial time.Duration
	finished int

	// OnDone, when set, receives (done, total) after every trial;
	// cmd/costsense uses it to publish expvar gauges.
	OnDone func(done, total int)
}

// NewProgress builds a progress meter writing to w, labeled (e.g. with
// the experiment id). A zero interval defaults to 250ms.
func NewProgress(w io.Writer, label string, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Progress{w: w, label: label, interval: interval, starts: make(map[int]time.Time)}
}

// TrialStart implements harness.Sink.
func (p *Progress) TrialStart(index int) {
	//costsense:nondet-ok telemetry only: wall time is printed, never fed back into results
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.begun.IsZero() {
		p.begun = now
		p.last = now // first progress line no sooner than one interval in
	}
	p.starts[index] = now
}

// TrialDone implements harness.Sink.
func (p *Progress) TrialDone(index, done, total int) {
	//costsense:nondet-ok telemetry only: wall time is printed, never fed back into results
	now := time.Now()
	p.mu.Lock()
	if st, ok := p.starts[index]; ok {
		d := now.Sub(st)
		delete(p.starts, index)
		p.sumTrial += d
		if d > p.maxTrial {
			p.maxTrial = d
		}
	}
	p.finished = done
	elapsed := now.Sub(p.begun)
	final := done == total
	throttled := !final && now.Sub(p.last) < p.interval
	if !throttled {
		p.last = now
	}
	avg := time.Duration(0)
	if done > 0 {
		avg = p.sumTrial / time.Duration(done)
	}
	maxT := p.maxTrial
	cb := p.OnDone
	p.mu.Unlock()

	if cb != nil {
		cb(done, total)
	}
	if throttled {
		return
	}
	if final {
		//costsense:err-ok best-effort progress line; a broken stderr must not fail the sweep
		fmt.Fprintf(p.w, "%s: %d trials in %s (avg %s/trial, max %s)\n",
			p.label, total, round(elapsed), round(avg), round(maxT))
		return
	}
	eta := time.Duration(0)
	if done > 0 {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(total-done))
	}
	//costsense:err-ok best-effort progress line; a broken stderr must not fail the sweep
	fmt.Fprintf(p.w, "%s: %d/%d trials (%.0f%%), avg %s/trial, ETA %s\n",
		p.label, done, total, 100*float64(done)/float64(total), round(avg), round(eta))
}

// round trims durations to a readable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
